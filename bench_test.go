// Top-level benchmark suite: one bench per experiment in EXPERIMENTS.md,
// plus micro-benchmarks for the ablation targets in DESIGN.md.
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/core/adversary"
	"repro/internal/ds"
	"repro/internal/ds/registry"
	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/all"
)

// BenchmarkERAMatrix regenerates EXP-ERA: the full matrix assembly,
// including both adversary executions and the robustness sweep per scheme.
func BenchmarkERAMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := core.BuildMatrix(400)
		if err != nil {
			b.Fatal(err)
		}
		if !m.TheoremHolds() {
			b.Fatal("theorem violated")
		}
	}
}

// BenchmarkFigure1 regenerates EXP-FIG1 per scheme: the Theorem 6.1
// lower-bound execution. The reported metric of interest is
// retired-per-churn (1.0 for the non-robust schemes, ~0 for the robust).
func BenchmarkFigure1(b *testing.B) {
	for _, scheme := range all.Names() {
		b.Run(scheme, func(b *testing.B) {
			var o *adversary.Outcome
			var err error
			for i := 0; i < b.N; i++ {
				o, err = adversary.Figure1(scheme, 600, mem.Unmap)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(o.PeakRetired)/600, "retired/churn")
			b.ReportMetric(float64(o.Faults+o.StaleUses), "violations")
		})
	}
}

// BenchmarkFigure2 regenerates EXP-FIG2 per scheme: the Appendix E
// incompatibility execution.
func BenchmarkFigure2(b *testing.B) {
	for _, scheme := range all.Names() {
		b.Run(scheme, func(b *testing.B) {
			var o *adversary.Outcome
			var err error
			for i := 0; i < b.N; i++ {
				o, err = adversary.Figure2(scheme, mem.Unmap)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(o.Faults+o.StaleUses), "violations")
		})
	}
}

// BenchmarkSpaceBound regenerates EXP-SPACE: the stalled-reader space
// bound per scheme.
func BenchmarkSpaceBound(b *testing.B) {
	for _, scheme := range all.SafeNames() {
		b.Run(scheme, func(b *testing.B) {
			var row bench.SpaceRow
			var err error
			for i := 0; i < b.N; i++ {
				row, err = bench.SpaceBound(scheme, 800)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.PerChurn, "retired/churn")
		})
	}
}

// BenchmarkScaleBound regenerates EXP-SCALE: the stalled-reader backlog as
// a function of structure size — the Definition 5.1 vs 5.2 separation.
func BenchmarkScaleBound(b *testing.B) {
	for _, scheme := range []string{"hp", "he", "ibr", "vbr", "nbr", "rc"} {
		b.Run(scheme, func(b *testing.B) {
			var row bench.ScaleRow
			var err error
			for i := 0; i < b.N; i++ {
				row, err = bench.ScaleBound(scheme, 1024)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.PerSize, "retired/size")
		})
	}
}

// BenchmarkStallGrowth regenerates EXP-STALL: the backlog-over-time curve;
// the metric is the final backlog after 1000 churn steps under a stall.
func BenchmarkStallGrowth(b *testing.B) {
	for _, scheme := range []string{"ebr", "qsbr", "hp", "ibr", "he", "vbr", "nbr", "rc"} {
		b.Run(scheme, func(b *testing.B) {
			var series []bench.StallSample
			var err error
			for i := 0; i < b.N; i++ {
				series, err = bench.StallSeries(scheme, 1000, 250)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(series[len(series)-1].Retired), "final-backlog")
		})
	}
}

// BenchmarkStallTraversal regenerates EXP-EXT: the Figure 1 script
// generalized to the skip list and the external tree (the Section 6
// open question about which structures behave like Harris's list).
func BenchmarkStallTraversal(b *testing.B) {
	for _, structure := range []string{"harris", "skiplist", "nmtree"} {
		for _, scheme := range []string{"ebr", "hp", "vbr"} {
			b.Run(structure+"/"+scheme, func(b *testing.B) {
				var o *adversary.Outcome
				var err error
				for i := 0; i < b.N; i++ {
					o, err = adversary.StallTraversal(scheme, structure, 600, mem.Unmap)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(o.PeakRetired)/600, "retired/churn")
				b.ReportMetric(float64(o.Faults+o.StaleUses), "violations")
			})
		}
	}
}

// BenchmarkThroughput regenerates EXP-THRU: scheme × structure × mix at a
// fixed thread count (the machine is single-core; thread scaling curves
// carry no signal here, mix and structure shape do).
func BenchmarkThroughput(b *testing.B) {
	mixes := map[string]bench.Mix{
		"read90": bench.MixReadHeavy,
		"mixed":  bench.MixBalanced,
		"update": bench.MixUpdateOnly,
	}
	for _, structure := range []string{"harris", "michael", "skiplist", "nmtree", "hashmap-harris"} {
		for mixName, mix := range mixes {
			for _, scheme := range all.SafeNames() {
				if !registry.Applicable(scheme, structure) {
					continue
				}
				b.Run(fmt.Sprintf("%s/%s/%s", structure, mixName, scheme), func(b *testing.B) {
					row, err := bench.Throughput(scheme, structure, bench.ThroughputConfig{
						Threads: 2, OpsPerThread: b.N/2 + 1000, KeyRange: 512, Mix: mix, Seed: 42,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(row.MopsPerSec, "Mops/s")
					b.ReportMetric(float64(row.PeakRetired), "peak-retired")
				})
			}
		}
	}
}

// BenchmarkHarrisVsMichael regenerates EXP-MICHAEL: the Section 6
// discussion comparison on a delete-heavy mix.
func BenchmarkHarrisVsMichael(b *testing.B) {
	for _, pair := range []struct{ scheme, structure string }{
		{"ebr", "harris"},
		{"hp", "michael"},
		{"ebr", "michael"},
	} {
		b.Run(pair.scheme+"-"+pair.structure, func(b *testing.B) {
			row, err := bench.Throughput(pair.scheme, pair.structure, bench.ThroughputConfig{
				Threads: 2, OpsPerThread: b.N/2 + 2000, KeyRange: 512,
				Mix: bench.MixUpdateOnly, Seed: 42,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(row.MopsPerSec, "Mops/s")
		})
	}
}

// BenchmarkApplicabilityHarness measures the Definition 5.4 checker
// itself (randomized workload + chained linearizability check).
func BenchmarkApplicabilityHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := core.CheckApplicability("ebr", "harris", core.WorkloadConfig{
			Seed: uint64(i), StressOps: 500,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Applicable {
			b.Fatal(rep.Detail)
		}
	}
}

// --- ablation micro-benchmarks (DESIGN.md "key design decisions") -------

// BenchmarkArenaAlloc measures the allocation fast path (per-thread cache
// hit) including the life-cycle bookkeeping.
func BenchmarkArenaAlloc(b *testing.B) {
	a := mem.NewArena(mem.Config{Slots: 1 << 16, PayloadWords: 2, Threads: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := a.Alloc(0)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Retire(0, r); err != nil {
			b.Fatal(err)
		}
		if err := a.Reclaim(0, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTagValidation quantifies the cost of the per-access tag check —
// the price of simulating manual memory on a GC runtime (ablation 1).
func BenchmarkTagValidation(b *testing.B) {
	a := mem.NewArena(mem.Config{Slots: 64, PayloadWords: 2, Threads: 1})
	r, err := a.Alloc(0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("validated-load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := a.Load(0, r, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("valid-check-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !a.Valid(r) {
				b.Fatal("ref must be valid")
			}
		}
	})
}

// BenchmarkSchemeReadPtr compares the guarded pointer-load cost across
// schemes — the read-barrier price each scheme charges (ablation 2).
func BenchmarkSchemeReadPtr(b *testing.B) {
	for _, scheme := range all.Names() {
		b.Run(scheme, func(b *testing.B) {
			a := mem.NewArena(mem.Config{
				Slots: 64, PayloadWords: 2, MetaWords: smr.MetaWords, Threads: 1,
			})
			s := all.MustNew(scheme, a, 1, 0)
			src, err := s.Alloc(0)
			if err != nil {
				b.Fatal(err)
			}
			tgt, err := s.Alloc(0)
			if err != nil {
				b.Fatal(err)
			}
			if !s.WritePtr(0, src, ds.WNext, tgt) {
				b.Fatal("init failed")
			}
			s.BeginOp(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := s.ReadPtr(0, 0, src, ds.WNext); !ok {
					b.Fatal("unexpected rollback")
				}
			}
			b.StopTimer()
			s.EndOp(0)
		})
	}
}

// BenchmarkLinearizabilityChecker measures the exhaustive checker on a
// 16-operation window (io.Discard swallows the rendering).
func BenchmarkLinearizabilityChecker(b *testing.B) {
	rep, err := core.CheckApplicability("none", "michael", core.WorkloadConfig{StressOps: -1})
	if err != nil || !rep.Applicable {
		b.Fatalf("setup: %v %v", err, rep.Detail)
	}
	_ = io.Discard
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.CheckApplicability("none", "michael", core.WorkloadConfig{
			Seed: uint64(i), StressOps: -1, Rounds: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Applicable {
			b.Fatal(rep.Detail)
		}
	}
}
