package repro_test

import (
	"strings"
	"testing"
	"time"

	"repro"
)

// TestFacadeEndToEnd drives the public surface: heap, scheme, structure,
// the scripted executions and the matrix.
func TestFacadeEndToEnd(t *testing.T) {
	h := repro.NewHeap(repro.HeapConfig{
		Slots:        1 << 12,
		PayloadWords: repro.MaxPayloadWords,
		MetaWords:    repro.SchemeMetaWords,
		Threads:      2,
		Mode:         repro.Reuse,
	})
	s, err := repro.NewScheme("ebr", h, 2)
	if err != nil {
		t.Fatal(err)
	}
	set, err := repro.NewSet("skiplist", s)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 50; k++ {
		if ok, err := set.Insert(0, k); err != nil || !ok {
			t.Fatalf("insert(%d) = %v, %v", k, ok, err)
		}
	}
	for k := int64(0); k < 50; k += 2 {
		if ok, err := set.Delete(1, k); err != nil || !ok {
			t.Fatalf("delete(%d) = %v, %v", k, ok, err)
		}
	}
	if ok, err := set.Contains(0, 3); err != nil || !ok {
		t.Fatalf("contains(3) = %v, %v", ok, err)
	}
	if h.Stats().Retires() == 0 {
		t.Fatal("no retirements recorded")
	}
}

// TestFacadeAdversaries runs both scripted executions through the facade.
func TestFacadeAdversaries(t *testing.T) {
	o, err := repro.RunFigure1("hp", 300)
	if err != nil {
		t.Fatal(err)
	}
	if o.Safe {
		t.Error("HP must violate safety in the Figure 1 execution")
	}
	o, err = repro.RunFigure2("ebr")
	if err != nil {
		t.Fatal(err)
	}
	if !o.Safe {
		t.Error("EBR must stay safe in the Figure 2 execution")
	}
}

// TestFacadeMatrix builds the matrix through the facade.
func TestFacadeMatrix(t *testing.T) {
	m, err := repro.BuildERAMatrix(300)
	if err != nil {
		t.Fatal(err)
	}
	if !m.TheoremHolds() {
		t.Fatalf("theorem violated:\n%s", m)
	}
	if len(m.Rows) != len(repro.SchemeNames())-1 { // minus the unsafe baseline
		t.Errorf("matrix has %d rows for %d schemes", len(m.Rows), len(repro.SchemeNames()))
	}
}

// TestFacadeEnumerations checks the name listings and error paths.
func TestFacadeEnumerations(t *testing.T) {
	if len(repro.SchemeNames()) != 11 {
		t.Errorf("SchemeNames = %v, want 11 schemes", repro.SchemeNames())
	}
	if len(repro.StructureNames()) != 8 {
		t.Errorf("StructureNames = %v, want 8 structures", repro.StructureNames())
	}
	h := repro.NewHeap(repro.HeapConfig{Slots: 64, PayloadWords: 2, MetaWords: repro.SchemeMetaWords, Threads: 1})
	if _, err := repro.NewScheme("gc", h, 1); err == nil {
		t.Error("unknown scheme accepted")
	}
	s, err := repro.NewScheme("ebr", h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.NewSet("msqueue", s); err == nil || !strings.Contains(err.Error(), "not a set") {
		t.Errorf("queue accepted as a set: %v", err)
	}
	if _, err := repro.NewSet("nosuch", s); err == nil {
		t.Error("unknown structure accepted")
	}
}

// TestFacadeExperiments exercises the report writer.
func TestFacadeExperiments(t *testing.T) {
	var sb strings.Builder
	if err := repro.WriteExperiments(&sb, 300); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "holds=true") {
		t.Errorf("report:\n%s", sb.String())
	}
}

// TestFacadeStore exercises the sharded service surface: a heterogeneous
// two-shard store through the facade, then a miniature service run with
// its JSON artifact.
func TestFacadeStore(t *testing.T) {
	st, err := repro.NewStore(repro.StoreConfig{
		Shards: []repro.StoreShardSpec{
			{Scheme: "hp", Structure: "hashmap"},
			{Scheme: "ebr", Structure: "hashmap"},
		},
		KeyRange: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := st.Insert(7); err != nil || !ok {
		t.Fatalf("insert: %v, %v", ok, err)
	}
	if ok, err := st.Contains(7); err != nil || !ok {
		t.Fatalf("contains: %v, %v", ok, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Ops != 2 || stats.Faults != 0 {
		t.Fatalf("stats: ops=%d faults=%d", stats.Ops, stats.Faults)
	}
	if _, err := st.Delete(7); err != repro.ErrStoreClosed {
		t.Fatalf("post-close delete: %v", err)
	}

	res, err := repro.RunService(repro.ServiceConfig{
		Shards: 2, Schemes: []string{"hp", "ebr"}, Clients: 2,
		OpsPerClient: 200, KeyRange: 128, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Ops != 400 || len(res.PerShard) != 2 {
		t.Fatalf("service: ops=%d shards=%d", res.Aggregate.Ops, len(res.PerShard))
	}
	var sb strings.Builder
	if err := repro.WriteServiceArtifact(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"experiment": "service"`) {
		t.Errorf("artifact:\n%s", sb.String())
	}
}

// TestFacadeExec exercises the scatter-gather surface: an executor over
// a small store serving a multi-key insert, a MultiGet, and a range
// scan; then the pipeline experiment at smoke scale with its artifact.
func TestFacadeExec(t *testing.T) {
	st, err := repro.NewStore(repro.StoreConfig{
		Shards: repro.UniformShards(2, repro.StoreShardSpec{
			Scheme: "ebr", Structure: "michael",
		}),
		KeyRange: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ex, err := repro.NewExecutor(st, repro.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ex.MultiInsert([]int64{3, 40, 77})
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Wait(); res.Partial() {
		t.Fatalf("healthy insert partial: %+v", res.ShardErrs)
	}
	h, err = ex.MultiGet([]int64{3, 40, 77, 99})
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	for i, want := range []bool{true, true, true, false} {
		if res.Results[i].Err != nil || res.Results[i].OK != want {
			t.Fatalf("get[%d]: %+v, want OK=%v", i, res.Results[i], want)
		}
	}
	h, err = ex.RangeScan(0, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if keys := h.Wait().Keys; len(keys) != 3 {
		t.Fatalf("range scan keys: %v", keys)
	}
	if stats := ex.Stats(); stats.Completed != 3 || stats.Partial != 0 {
		t.Fatalf("exec stats: %+v", stats)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.MultiGet([]int64{1}); err != repro.ErrExecClosed {
		t.Fatalf("post-close submit: %v", err)
	}

	if testing.Short() {
		t.Skip("pipeline experiment needs a real traffic window")
	}
	pres, err := repro.RunPipeline(repro.PipelineConfig{
		Shards: 4, Duration: 200 * time.Millisecond,
		ChaosDuration: 350 * time.Millisecond,
		KeyRange:      1024, LegTimeout: 20 * time.Millisecond, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pres.Pipelined.Requests == 0 || !pres.PartialChainsClosed {
		t.Fatalf("pipeline experiment: %+v", pres)
	}
	var sb strings.Builder
	if err := repro.WritePipelineArtifact(&sb, pres); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"experiment": "pipeline"`) {
		t.Errorf("artifact missing experiment tag")
	}
}

// TestFacadeChaos exercises the chaos-audit surface: a tiny stall run on
// two shards spanning the robustness extremes, its artifact, and the
// fault enumeration.
func TestFacadeChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run needs a real traffic window")
	}
	if len(repro.FaultNames()) == 0 {
		t.Fatal("no faults registered")
	}
	res, err := repro.RunChaos(repro.ChaosConfig{
		Schemes:  []string{"ebr", "hp"},
		Duration: 200 * time.Millisecond,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0].Audited == res.Rows[1].Audited {
		t.Errorf("audit did not separate ebr (%s) from hp (%s)",
			res.Rows[0].Audited, res.Rows[1].Audited)
	}
	var sb strings.Builder
	if err := repro.WriteChaosArtifact(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"experiment": "chaos"`) {
		t.Errorf("artifact missing experiment tag")
	}
}
