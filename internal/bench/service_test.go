package bench_test

import (
	"strings"
	"time"

	"repro/internal/adapt"
	"testing"

	"repro/internal/bench"
)

// TestRunServiceHeterogeneous runs a small sharded-service experiment
// with HP and EBR alternating across shards and checks the measurement
// accounting: every client op is counted exactly once, rates and
// latencies are populated, and no shard observed a safety event.
func TestRunServiceHeterogeneous(t *testing.T) {
	res, err := bench.RunService(bench.ServiceConfig{
		Shards:       4,
		Schemes:      []string{"hp", "ebr"},
		Structure:    "hashmap",
		Clients:      4,
		OpsPerClient: 800,
		Batch:        8,
		KeyRange:     512,
		Workload:     "zipfian",
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Aggregate
	if a.Ops != 4*800 {
		t.Fatalf("ops: %d", a.Ops)
	}
	if a.MopsPerSec <= 0 || a.Elapsed <= 0 {
		t.Fatalf("rate: %v over %v", a.MopsPerSec, a.Elapsed)
	}
	if a.P50 == 0 || a.P99 == 0 || a.P99 < a.P50 {
		t.Fatalf("latency: p50=%v p99=%v", a.P50, a.P99)
	}
	if len(res.PerShard) != 4 {
		t.Fatalf("per-shard rows: %d", len(res.PerShard))
	}
	var shardOps uint64
	for i, r := range res.PerShard {
		want := []string{"hp", "ebr"}[i%2]
		if r.Scheme != want {
			t.Fatalf("shard %d scheme %s, want %s", i, r.Scheme, want)
		}
		if r.Faults != 0 || r.UnsafeAccesses != 0 {
			t.Fatalf("shard %d: faults=%d unsafe=%d", i, r.Faults, r.UnsafeAccesses)
		}
		shardOps += r.Ops
	}
	if shardOps != uint64(a.Ops) {
		t.Fatalf("shard ops sum %d != aggregate %d", shardOps, a.Ops)
	}
}

// TestRunServiceFanoutLane runs the service experiment with a fan-out
// lane beside the point-op fleet: the executor-served requests must be
// counted into their own histogram (separate p50/p99), the lane must be
// clean on a healthy store (no partials, no op errors), and the
// point-op accounting must stay exactly as it is without the lane.
func TestRunServiceFanoutLane(t *testing.T) {
	res, err := bench.RunService(bench.ServiceConfig{
		Shards:       4,
		Schemes:      []string{"ebr"},
		Structure:    "michael", // ordered: range legs exercise the iterator
		Clients:      4,
		OpsPerClient: 600,
		Batch:        8,
		KeyRange:     512,
		FanoutPct:    50,
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Aggregate
	if a.Ops != 4*600 {
		t.Fatalf("point ops: %d", a.Ops)
	}
	if a.FanoutClients != 2 {
		t.Fatalf("fan-out clients: %d, want 2 (50%% of 4)", a.FanoutClients)
	}
	if a.FanoutReqs == 0 {
		t.Fatal("fan-out lane served no requests")
	}
	if a.FanoutP50 == 0 || a.FanoutP99 < a.FanoutP50 {
		t.Fatalf("fan-out latency: p50=%v p99=%v", a.FanoutP50, a.FanoutP99)
	}
	if a.FanoutPartial != 0 || a.FanoutErrs != 0 {
		t.Fatalf("healthy fan-out lane: partial=%d errs=%d", a.FanoutPartial, a.FanoutErrs)
	}

	var buf strings.Builder
	bench.WriteServiceTable(&buf, res)
	if !strings.Contains(buf.String(), "fan-out:") {
		t.Fatalf("service table missing fan-out row:\n%s", buf.String())
	}
}

// TestRunServiceRejectsBadScheme checks constructor errors surface.
func TestRunServiceRejectsBadScheme(t *testing.T) {
	if _, err := bench.RunService(bench.ServiceConfig{Schemes: []string{"nope"}}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

// TestRunServiceDurationBoxed checks the -duration mode: clients run
// until the deadline (no warmup, op errors tolerated), the elapsed time
// tracks the window, and accounting stays coherent.
func TestRunServiceDurationBoxed(t *testing.T) {
	if testing.Short() {
		t.Skip("duration-boxed run needs a real traffic window")
	}
	res, err := bench.RunService(bench.ServiceConfig{
		Shards:    2,
		Schemes:   []string{"ebr"},
		Structure: "michael",
		Clients:   2,
		Batch:     8,
		KeyRange:  256,
		Duration:  120 * time.Millisecond,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Aggregate
	if a.Ops == 0 {
		t.Fatal("duration-boxed run made no progress")
	}
	if a.Elapsed < 120*time.Millisecond {
		t.Fatalf("elapsed %v shorter than the window", a.Elapsed)
	}
	if a.OpErrs != 0 {
		t.Fatalf("healthy duration run produced %d op errors", a.OpErrs)
	}
	var shardOps uint64
	for _, r := range res.PerShard {
		shardOps += r.Ops
		if r.Migrations != 0 || r.Epoch != 0 {
			t.Fatalf("static duration run migrated: %+v", r)
		}
	}
	if shardOps != uint64(a.Ops) {
		t.Fatalf("shard ops sum %d != aggregate %d", shardOps, a.Ops)
	}
}

// TestRunServiceAdaptRequiresDuration checks the guard: the adaptive
// controller needs a deadline to live inside.
func TestRunServiceAdaptRequiresDuration(t *testing.T) {
	_, err := bench.RunService(bench.ServiceConfig{Adapt: &adapt.Config{}})
	if err == nil {
		t.Fatal("op-boxed adaptive run accepted")
	}
}

// TestRunServiceAdaptiveHealthy runs the adaptive service mode over
// healthy traffic: the controller must hold position (no pressure, no
// migrations) while the run completes and reports normally.
func TestRunServiceAdaptiveHealthy(t *testing.T) {
	if testing.Short() {
		t.Skip("duration-boxed run needs a real traffic window")
	}
	res, err := bench.RunService(bench.ServiceConfig{
		Shards:    2,
		Schemes:   []string{"ebr"},
		Structure: "hashmap",
		Clients:   2,
		Batch:     8,
		KeyRange:  256,
		Duration:  150 * time.Millisecond,
		Adapt:     &adapt.Config{Interval: 10 * time.Millisecond},
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Ops == 0 {
		t.Fatal("adaptive service run made no progress")
	}
	if len(res.Episodes) != 0 || res.Aggregate.Migrations != 0 {
		t.Fatalf("healthy traffic triggered migrations: %+v", res.Episodes)
	}
	for _, r := range res.PerShard {
		if r.Scheme != "ebr" {
			t.Fatalf("healthy shard moved off ebr: %+v", r)
		}
	}
}
