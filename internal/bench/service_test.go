package bench_test

import (
	"testing"

	"repro/internal/bench"
)

// TestRunServiceHeterogeneous runs a small sharded-service experiment
// with HP and EBR alternating across shards and checks the measurement
// accounting: every client op is counted exactly once, rates and
// latencies are populated, and no shard observed a safety event.
func TestRunServiceHeterogeneous(t *testing.T) {
	res, err := bench.RunService(bench.ServiceConfig{
		Shards:       4,
		Schemes:      []string{"hp", "ebr"},
		Structure:    "hashmap",
		Clients:      4,
		OpsPerClient: 800,
		Batch:        8,
		KeyRange:     512,
		Workload:     "zipfian",
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Aggregate
	if a.Ops != 4*800 {
		t.Fatalf("ops: %d", a.Ops)
	}
	if a.MopsPerSec <= 0 || a.Elapsed <= 0 {
		t.Fatalf("rate: %v over %v", a.MopsPerSec, a.Elapsed)
	}
	if a.P50 == 0 || a.P99 == 0 || a.P99 < a.P50 {
		t.Fatalf("latency: p50=%v p99=%v", a.P50, a.P99)
	}
	if len(res.PerShard) != 4 {
		t.Fatalf("per-shard rows: %d", len(res.PerShard))
	}
	var shardOps uint64
	for i, r := range res.PerShard {
		want := []string{"hp", "ebr"}[i%2]
		if r.Scheme != want {
			t.Fatalf("shard %d scheme %s, want %s", i, r.Scheme, want)
		}
		if r.Faults != 0 || r.UnsafeAccesses != 0 {
			t.Fatalf("shard %d: faults=%d unsafe=%d", i, r.Faults, r.UnsafeAccesses)
		}
		shardOps += r.Ops
	}
	if shardOps != uint64(a.Ops) {
		t.Fatalf("shard ops sum %d != aggregate %d", shardOps, a.Ops)
	}
}

// TestRunServiceRejectsBadScheme checks constructor errors surface.
func TestRunServiceRejectsBadScheme(t *testing.T) {
	if _, err := bench.RunService(bench.ServiceConfig{Schemes: []string{"nope"}}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
