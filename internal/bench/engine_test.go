package bench_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/workload"
)

// TestThroughputWorkloadMatrix drives the engine through every registered
// key distribution × op-mix schedule on one (scheme, structure) pair.
func TestThroughputWorkloadMatrix(t *testing.T) {
	for _, dist := range workload.DistNames() {
		for _, sched := range workload.ScheduleNames() {
			r, err := bench.Throughput("ebr", "michael", bench.ThroughputConfig{
				Threads: 2, OpsPerThread: 1500, KeyRange: 128, Mix: bench.MixBalanced,
				Workload: dist, Schedule: sched, Seed: 11,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", dist, sched, err)
			}
			if r.Workload != dist || r.Schedule != sched {
				t.Errorf("row names %s/%s, want %s/%s", r.Workload, r.Schedule, dist, sched)
			}
			if r.MopsPerSec <= 0 || r.Ops != 3000 {
				t.Errorf("%s/%s: row = %+v", dist, sched, r)
			}
			if r.P50 <= 0 || r.P99 < r.P50 {
				t.Errorf("%s/%s: latency percentiles p50=%v p99=%v", dist, sched, r.P50, r.P99)
			}
		}
	}
}

// TestThroughputRejectsUnknownWorkload: bad registry names surface as
// errors, not silent fallbacks.
func TestThroughputRejectsUnknownWorkload(t *testing.T) {
	if _, err := bench.Throughput("ebr", "michael", bench.ThroughputConfig{Workload: "nosuch"}); err == nil {
		t.Error("unknown distribution must error")
	}
	if _, err := bench.Throughput("ebr", "michael", bench.ThroughputConfig{Schedule: "nosuch"}); err == nil {
		t.Error("unknown schedule must error")
	}
}

// TestJSONReportRoundTrip: the machine-readable artifact preserves the rows.
func TestJSONReportRoundTrip(t *testing.T) {
	row, err := bench.Throughput("vbr", "michael", bench.ThroughputConfig{
		Threads: 2, OpsPerThread: 1500, KeyRange: 128, Workload: "zipfian", Schedule: "phased", Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := bench.WriteJSONReport(&sb, "throughput", []bench.ThroughputRow{row}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"experiment": "throughput"`, `"workload": "zipfian"`, `"schedule": "phased"`, `"p99_ns"`} {
		if !strings.Contains(out, want) {
			t.Errorf("artifact missing %s:\n%s", want, out)
		}
	}
	rep, err := bench.ReadJSONReport(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0] != row {
		t.Errorf("round trip changed the row:\n got %+v\nwant %+v", rep.Rows[0], row)
	}
}

// TestThroughputLatencyPercentilesOrdered: percentile columns behave on the
// classic path too (uniform/steady via the legacy config shape).
func TestThroughputLatencyPercentilesOrdered(t *testing.T) {
	r, err := bench.Throughput("hp", "michael", bench.ThroughputConfig{
		Threads: 2, OpsPerThread: 2000, KeyRange: 256, Mix: bench.MixReadHeavy, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "uniform" || r.Schedule != "steady" {
		t.Errorf("defaults: %s/%s", r.Workload, r.Schedule)
	}
	if !(r.P50 > 0 && r.P50 <= r.P99) {
		t.Errorf("percentiles p50=%v p99=%v", r.P50, r.P99)
	}
	var sb strings.Builder
	bench.WriteThroughputTable(&sb, []bench.ThroughputRow{r})
	if !strings.Contains(sb.String(), "p99") || !strings.Contains(sb.String(), "uniform/steady") {
		t.Errorf("table rendering lost workload/latency columns:\n%s", sb.String())
	}
}
