package bench

import (
	"fmt"

	"repro/internal/ds"
	"repro/internal/ds/harris"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/smr"
	"repro/internal/smr/all"
)

// ScaleRow is one point of the robustness-vs-structure-size experiment
// (EXP-SCALE). Definition 5.1 requires the backlog bound to be
// o(max_active): a robust scheme's stalled-reader backlog must NOT track
// the structure size, a weakly robust scheme's may be linear in it.
type ScaleRow struct {
	Scheme string
	// Size is the number of keys prefilled before the reader stalls.
	Size int
	// Backlog is the retired backlog after the whole prefix is deleted
	// under the stalled reader and scans have run.
	Backlog uint64
	// PerSize is Backlog/Size — flat near 0 for robust schemes, near 1
	// for weakly robust interval/era schemes (the stalled reservation
	// pins everything alive at the stall point).
	PerSize float64
}

// ScaleBound measures the stalled-reader backlog for one scheme at one
// prefill size: fill Harris's list with size keys, stall a reader at the
// start of a traversal, delete every key, churn to force scans, and read
// the backlog.
func ScaleBound(scheme string, size int) (ScaleRow, error) {
	const churn = 256
	a := mem.NewArena(mem.Config{
		Slots: 2*size + 2*churn + 256, PayloadWords: 2, MetaWords: smr.MetaWords,
		Threads: 2, Mode: mem.Reuse,
	})
	s, err := all.New(scheme, a, 2, 16)
	if err != nil {
		return ScaleRow{}, err
	}
	bp := sched.NewBreakpoints()
	l, err := harris.New(s, ds.Options{Gate: bp})
	if err != nil {
		return ScaleRow{}, err
	}
	for k := int64(0); k < int64(size); k++ {
		if ok, err := l.Insert(1, k); err != nil || !ok {
			return ScaleRow{}, fmt.Errorf("bench: scale prefill insert(%d) = %v, %v", k, ok, err)
		}
	}
	stall := bp.Arm(0, ds.PointSearchHead, nil, 0)
	t1 := sched.Go(func() error {
		_, err := l.Contains(0, int64(size)+10)
		return err
	})
	<-stall.Reached()
	defer func() {
		stall.Release()
		_ = t1.Wait()
	}()

	// Delete the whole prefix under the stall, then churn fresh keys to
	// keep scans firing, then flush.
	for k := int64(0); k < int64(size); k++ {
		if ok, err := l.Delete(1, k); err != nil || !ok {
			return ScaleRow{}, fmt.Errorf("bench: scale delete(%d) = %v, %v", k, ok, err)
		}
	}
	for i := int64(0); i < churn; i++ {
		key := int64(size) + 100 + i
		if ok, err := l.Insert(1, key); err != nil || !ok {
			return ScaleRow{}, fmt.Errorf("bench: scale churn insert = %v, %v", ok, err)
		}
		if ok, err := l.Delete(1, key); err != nil || !ok {
			return ScaleRow{}, fmt.Errorf("bench: scale churn delete = %v, %v", ok, err)
		}
	}
	s.Flush(1)
	backlog := a.Stats().Retired()
	return ScaleRow{
		Scheme:  scheme,
		Size:    size,
		Backlog: backlog,
		PerSize: float64(backlog) / float64(size),
	}, nil
}

// ScaleSweep measures schemes × sizes.
func ScaleSweep(schemes []string, sizes []int) ([]ScaleRow, error) {
	var rows []ScaleRow
	for _, scheme := range schemes {
		for _, size := range sizes {
			r, err := ScaleBound(scheme, size)
			if err != nil {
				return nil, fmt.Errorf("%s size %d: %w", scheme, size, err)
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}
