package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestRunObsChainsComplete is the acceptance path: a faulted adaptive
// run must produce one complete causal chain (fault → verdict →
// migration → heal) per injected fault, with finite latencies.
func TestRunObsChainsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("obs run needs a real traffic window")
	}
	res, err := RunObs(ObsConfig{
		Duration:       900 * time.Millisecond,
		OverheadRounds: -1, // the A/B is timing-sensitive; CI smoke owns it
		Seed:           42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Timeline.Incidents); got != res.Agg.Shards {
		t.Fatalf("got %d incidents, want one per shard (%d)", got, res.Agg.Shards)
	}
	for _, in := range res.Timeline.Incidents {
		if !in.Complete {
			t.Errorf("shard %d chain incomplete: %+v", in.Shard, in)
		}
		if in.DetectionLatency < 0 || in.ReactionLatency < 0 {
			t.Errorf("shard %d latencies not finite: det=%v rea=%v",
				in.Shard, in.DetectionLatency, in.ReactionLatency)
		}
		if in.Migration == "" || !strings.Contains(in.Migration, "→") {
			t.Errorf("shard %d migration label %q", in.Shard, in.Migration)
		}
	}
	if !res.Complete {
		t.Error("result not marked complete")
	}
	if err := CheckObs(res); err != nil {
		t.Errorf("CheckObs: %v", err)
	}
	if res.RecorderDrops != 0 {
		t.Errorf("recorder dropped %d events — capacity default too small for the window", res.RecorderDrops)
	}
	if res.Sampler.Ticks == 0 {
		t.Error("sampler health reports zero ticks")
	}
	if len(res.SLO.Points) == 0 {
		t.Error("SLO monitor produced no p99 points")
	}
	if len(res.Episodes) == 0 {
		t.Error("controller logged no migration episodes")
	}
}

// TestObsReportRoundTrip pins the BENCH_obs.json schema: what the writer
// emits, the reader (and the CI smoke's assertions) must get back.
func TestObsReportRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("obs run needs a real traffic window")
	}
	res, err := RunObs(ObsConfig{
		Duration:       400 * time.Millisecond,
		OverheadRounds: 1,
		// One short pair just to exercise the A/B fields; the delta
		// itself is asserted only by the dedicated CI smoke run.
		OverheadRoundDuration: 40 * time.Millisecond,
		Seed:                  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteObsReport(&buf, res); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadObsReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "obs" {
		t.Fatalf("experiment = %q", rep.Experiment)
	}
	if rep.Result.Agg.Shards != res.Agg.Shards ||
		len(rep.Result.Timeline.Incidents) != len(res.Timeline.Incidents) ||
		rep.Result.RecorderTotal != res.RecorderTotal {
		t.Fatal("round-trip lost fields")
	}
	for i, in := range rep.Result.Timeline.Incidents {
		if in.DetectionLatency != res.Timeline.Incidents[i].DetectionLatency {
			t.Fatalf("incident %d detection latency did not round-trip", i)
		}
	}
	if rep.Result.Overhead.Rounds != 1 ||
		rep.Result.Overhead.RecorderOnMops <= 0 || rep.Result.Overhead.RecorderOffMops <= 0 {
		t.Fatalf("overhead A/B did not run: %+v", rep.Result.Overhead)
	}

	// The Chrome trace must be well-formed JSON with span events.
	var trace bytes.Buffer
	if err := WriteObsTrace(&trace, res); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &tf); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
}
