package bench_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/mem"
	"repro/internal/smr"
)

// BenchmarkArenaAllocFree measures raw arena allocate/retire/reclaim
// throughput as the thread count grows — the harness's own scalability
// ceiling. Each thread churns bursts larger than its private free cache, so
// the shared free list and the stats counters are on the measured path (a
// cache-sized burst would hide them entirely).
//
// Before the free-list sharding this path funneled every overflow through
// one CAS'd global head; with per-thread stripes and steal-on-empty the
// threads only meet when a stripe runs dry.
func BenchmarkArenaAllocFree(b *testing.B) {
	const burst = 64 // 2x the default per-thread cache
	for _, threads := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			a := mem.NewArena(mem.Config{
				Slots:        threads*2*burst + 1024,
				PayloadWords: 2,
				MetaWords:    smr.MetaWords,
				Threads:      threads,
				Mode:         mem.Reuse,
			})
			rounds := b.N/(threads*burst) + 1
			b.ResetTimer()
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					refs := make([]mem.Ref, 0, burst)
					for r := 0; r < rounds; r++ {
						for i := 0; i < burst; i++ {
							ref, err := a.Alloc(tid)
							if err != nil {
								b.Error(err)
								return
							}
							refs = append(refs, ref)
						}
						for _, ref := range refs {
							if err := a.Retire(tid, ref); err != nil {
								b.Error(err)
								return
							}
							if err := a.Reclaim(tid, ref); err != nil {
								b.Error(err)
								return
							}
						}
						refs = refs[:0]
					}
				}(tid)
			}
			wg.Wait()
			b.StopTimer()
			ops := float64(rounds * threads * burst)
			b.ReportMetric(ops/b.Elapsed().Seconds()/1e6, "Mallocs/s")
		})
	}
}
