package bench_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/smr/all"
)

// TestThroughputRuns smoke-tests the runner for one scheme per family.
func TestThroughputRuns(t *testing.T) {
	for _, scheme := range []string{"ebr", "hp", "vbr", "none"} {
		structure := "michael"
		r, err := bench.Throughput(scheme, structure, bench.ThroughputConfig{
			Threads: 2, OpsPerThread: 3000, KeyRange: 128, Mix: bench.MixBalanced, Seed: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if r.Ops != 6000 || r.MopsPerSec <= 0 {
			t.Errorf("%s: row = %+v", scheme, r)
		}
	}
}

// TestThroughputRejectsNonSets: the runner only accepts set structures.
func TestThroughputRejectsNonSets(t *testing.T) {
	if _, err := bench.Throughput("ebr", "msqueue", bench.ThroughputConfig{}); err == nil {
		t.Fatal("expected an error for a queue structure")
	}
	if _, err := bench.Throughput("ebr", "nosuch", bench.ThroughputConfig{}); err == nil {
		t.Fatal("expected an error for an unknown structure")
	}
}

// TestSpaceSweepShape checks the experiment separates the robustness
// classes: per-churn backlog near 1 for EBR, near 0 for VBR.
func TestSpaceSweepShape(t *testing.T) {
	rows, err := bench.SpaceSweep(800)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]bench.SpaceRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	if r := byScheme["ebr"]; r.PerChurn < 0.8 {
		t.Errorf("ebr per-churn = %.3f, want near 1 (unbounded backlog)", r.PerChurn)
	}
	if r := byScheme["vbr"]; r.PerChurn > 0.1 {
		t.Errorf("vbr per-churn = %.3f, want near 0 (robust)", r.PerChurn)
	}
	if r := byScheme["none"]; r.PerChurn < 0.8 {
		t.Errorf("none per-churn = %.3f, want near 1", r.PerChurn)
	}
	var sb strings.Builder
	bench.WriteSpaceTable(&sb, rows)
	if !strings.Contains(sb.String(), "ebr") {
		t.Error("table rendering lost rows")
	}
}

// TestStallSeriesShape: the backlog curve grows for EBR and stays flat
// for VBR.
func TestStallSeriesShape(t *testing.T) {
	ebr, err := bench.StallSeries("ebr", 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	vbr, err := bench.StallSeries("vbr", 1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ebr) != len(vbr) || len(ebr) == 0 {
		t.Fatalf("series lengths: ebr %d, vbr %d", len(ebr), len(vbr))
	}
	if last := ebr[len(ebr)-1]; last.Retired < uint64(last.Step)-64 {
		t.Errorf("ebr backlog %d at step %d — should track the churn", last.Retired, last.Step)
	}
	first, last := vbr[0], vbr[len(vbr)-1]
	if last.Retired > first.Retired+32 {
		t.Errorf("vbr backlog grew from %d to %d — should stay flat", first.Retired, last.Retired)
	}
	var sb strings.Builder
	bench.WriteStallSeries(&sb, map[string][]bench.StallSample{"ebr": ebr, "vbr": vbr})
	if !strings.Contains(sb.String(), "step") {
		t.Error("series rendering lost header")
	}
}

// TestMichaelComparisonShape: the Section 6 claim — Harris+EBR beats
// Michael+HP on delete-heavy mixes. On a one-core box the margin can be
// thin, so assert the weaker, always-true part of the claim: the
// comparison runs and Harris+EBR is not drastically slower.
func TestMichaelComparisonShape(t *testing.T) {
	rows, err := bench.MichaelComparison(bench.ThroughputConfig{
		Threads: 2, OpsPerThread: 10000, KeyRange: 256, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	harrisEBR, michaelHP := rows[0], rows[1]
	if harrisEBR.Scheme != "ebr" || harrisEBR.Structure != "harris" {
		t.Fatalf("row order changed: %+v", rows)
	}
	if harrisEBR.MopsPerSec < 0.5*michaelHP.MopsPerSec {
		t.Errorf("harris+ebr %.3f Mops/s vs michael+hp %.3f Mops/s — shape inverted",
			harrisEBR.MopsPerSec, michaelHP.MopsPerSec)
	}
}

// TestThroughputSweep covers the sweep driver and the applicability
// filter (hp must be skipped on harris).
func TestThroughputSweep(t *testing.T) {
	rows, err := bench.ThroughputSweep("harris", all.SafeNames(), []bench.Mix{bench.MixReadHeavy},
		[]int{2}, bench.ThroughputConfig{OpsPerThread: 1500, KeyRange: 128, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Scheme == "hp" || r.Scheme == "ibr" || r.Scheme == "he" {
			t.Errorf("non-applicable scheme %s ran on harris", r.Scheme)
		}
	}
	if len(rows) == 0 {
		t.Fatal("sweep produced no rows")
	}
	var sb strings.Builder
	bench.WriteThroughputTable(&sb, rows)
	if !strings.Contains(sb.String(), "Mops/s") {
		t.Error("table rendering lost header")
	}
}

// TestScaleSweepShape is the Definition 5.1 vs 5.2 separation: a robust
// scheme's stalled-reader backlog must be independent of the structure
// size; a weakly robust scheme's is linear in it.
func TestScaleSweepShape(t *testing.T) {
	rows, err := bench.ScaleSweep([]string{"hp", "he", "ibr", "vbr", "nbr"}, []int{128, 1024})
	if err != nil {
		t.Fatal(err)
	}
	backlog := map[string]map[int]uint64{}
	for _, r := range rows {
		if backlog[r.Scheme] == nil {
			backlog[r.Scheme] = map[int]uint64{}
		}
		backlog[r.Scheme][r.Size] = r.Backlog
	}
	// Robust: flat in size.
	for _, s := range []string{"hp", "vbr", "nbr"} {
		if b := backlog[s]; b[1024] > b[128]+32 {
			t.Errorf("%s: backlog grew with size (%d -> %d) — not o(max_active)", s, b[128], b[1024])
		}
	}
	// Weakly robust: linear in size (the stalled era/interval pins the
	// whole structure alive at the stall).
	for _, s := range []string{"he", "ibr"} {
		b := backlog[s]
		if b[128] < 100 || b[1024] < 900 {
			t.Errorf("%s: backlog %v does not track structure size — expected weak robustness", s, b)
		}
	}
	var sb strings.Builder
	bench.WriteScaleTable(&sb, rows)
	if !strings.Contains(sb.String(), "per-size") {
		t.Error("table rendering lost header")
	}
}

// TestMatrixReport renders the ERA matrix end to end.
func TestMatrixReport(t *testing.T) {
	var sb strings.Builder
	if err := bench.MatrixReport(&sb, 300); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "holds=true") {
		t.Errorf("matrix report:\n%s", sb.String())
	}
}
