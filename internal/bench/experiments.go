package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/core/adversary"
	"repro/internal/ds"
	"repro/internal/ds/harris"
	"repro/internal/ds/registry"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/smr"
	"repro/internal/smr/all"
)

// SpaceRow is one line of the space-bound experiment (EXP-SPACE): the peak
// retired backlog under the Figure 1 stalled-reader workload, related to
// the robustness definitions' max_active·N budget.
type SpaceRow struct {
	Scheme      string
	K           int
	PeakRetired uint64
	MaxActive   uint64
	// PerChurn is PeakRetired/K — near 1 for the non-robust schemes,
	// near 0 for the (weakly) robust ones.
	PerChurn float64
	Safe     bool
}

// SpaceBound measures the stalled-reader backlog for one scheme.
func SpaceBound(scheme string, k int) (SpaceRow, error) {
	o, err := adversary.Figure1(scheme, k, mem.Reuse)
	if err != nil {
		return SpaceRow{}, err
	}
	return SpaceRow{
		Scheme:      scheme,
		K:           k,
		PeakRetired: o.PeakRetired,
		MaxActive:   o.MaxActive,
		PerChurn:    float64(o.PeakRetired) / float64(k),
		Safe:        o.Safe,
	}, nil
}

// SpaceSweep runs SpaceBound for every safe scheme.
func SpaceSweep(k int) ([]SpaceRow, error) {
	var rows []SpaceRow
	for _, scheme := range all.SafeNames() {
		r, err := SpaceBound(scheme, k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// StallSample is one point of the backlog-over-time series (EXP-STALL).
type StallSample struct {
	// Step is the churn progress (operations completed by the live thread).
	Step int
	// Retired is the backlog at that point.
	Retired uint64
}

// StallSeries drives the Figure 1 workload for one scheme and samples the
// retired backlog every sampleEvery churn steps, producing the
// backlog-over-time curve that separates EBR/QSBR from the robust family.
func StallSeries(scheme string, steps, sampleEvery int) ([]StallSample, error) {
	if steps <= 0 {
		steps = 2000
	}
	if sampleEvery <= 0 {
		sampleEvery = steps / 20
	}
	a := mem.NewArena(mem.Config{
		Slots: 2*steps + 128, PayloadWords: 2, MetaWords: smr.MetaWords, Threads: 2, Mode: mem.Reuse,
	})
	s, err := all.New(scheme, a, 2, 16)
	if err != nil {
		return nil, err
	}
	bp := sched.NewBreakpoints()
	l, err := harris.New(s, ds.Options{Gate: bp})
	if err != nil {
		return nil, err
	}
	for _, k := range []int64{1, 2} {
		if ok, err := l.Insert(1, k); err != nil || !ok {
			return nil, fmt.Errorf("bench: stall setup insert(%d) = %v, %v", k, ok, err)
		}
	}
	stall := bp.Arm(0, ds.PointSearchHead, nil, 0)
	t1 := sched.Go(func() error {
		_, err := l.Delete(0, 3)
		return err
	})
	<-stall.Reached()
	defer func() {
		stall.Release()
		_ = t1.Wait()
	}()

	var series []StallSample
	if ok, err := l.Delete(1, 1); err != nil || !ok {
		return nil, fmt.Errorf("bench: stall delete(1) = %v, %v", ok, err)
	}
	for n := int64(2); n <= int64(steps); n++ {
		if ok, err := l.Insert(1, n+1); err != nil || !ok {
			return nil, fmt.Errorf("bench: stall insert(%d) = %v, %v", n+1, ok, err)
		}
		if ok, err := l.Delete(1, n); err != nil || !ok {
			return nil, fmt.Errorf("bench: stall delete(%d) = %v, %v", n, ok, err)
		}
		if int(n)%sampleEvery == 0 {
			series = append(series, StallSample{Step: int(n), Retired: a.Stats().Retired()})
		}
	}
	return series, nil
}

// ThroughputSweep runs the scheme × mix × threads sweep on one structure.
// On error the rows measured so far are returned alongside it, so callers
// can still report or persist the partial sweep.
func ThroughputSweep(structure string, schemes []string, mixes []Mix, threads []int, cfg ThroughputConfig) ([]ThroughputRow, error) {
	var rows []ThroughputRow
	for _, scheme := range schemes {
		if !registry.Applicable(scheme, structure) {
			continue
		}
		for _, mix := range mixes {
			for _, n := range threads {
				c := cfg
				c.Threads = n
				c.Mix = mix
				r, err := Throughput(scheme, structure, c)
				if err != nil {
					return rows, fmt.Errorf("%s × %s: %w", scheme, structure, err)
				}
				rows = append(rows, r)
			}
		}
	}
	return rows, nil
}

// MichaelComparison is the Section 6 discussion experiment (EXP-MICHAEL):
// Harris's list under EBR versus Michael's HP-compatible modification
// under HP, on a delete-heavy mix. The paper's point: forcing a data
// structure into the shape a protection scheme needs costs performance.
func MichaelComparison(cfg ThroughputConfig) ([]ThroughputRow, error) {
	if cfg.Mix == (Mix{}) {
		cfg.Mix = MixUpdateOnly
	}
	var rows []ThroughputRow
	for _, pair := range []struct{ scheme, structure string }{
		{"ebr", "harris"},
		{"hp", "michael"},
		{"ebr", "michael"},
	} {
		r, err := Throughput(pair.scheme, pair.structure, cfg)
		if err != nil {
			return rows, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// MatrixReport builds and renders the ERA matrix (EXP-ERA).
func MatrixReport(w io.Writer, figureK int) error {
	m, err := core.BuildMatrix(figureK)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, m.String())
	return err
}
