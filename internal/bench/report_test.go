package bench_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/bench"
	"repro/internal/workload"
)

func sampleRows() []bench.ThroughputRow {
	return []bench.ThroughputRow{
		{
			Scheme: "ebr", Structure: "harris", Threads: 4,
			Mix: workload.MixReadHeavy, Workload: "zipfian", Schedule: "phased",
			KeyRange: 1024, Ops: 80000, Elapsed: 125 * time.Millisecond,
			MopsPerSec: 0.64, P50: 310 * time.Nanosecond, P99: 2150 * time.Nanosecond,
			PeakRetired: 96, Restarts: 0,
		},
		{
			Scheme: "vbr", Structure: "skiplist", Threads: 2,
			Mix: workload.MixUpdateOnly, Workload: "uniform", Schedule: "steady",
			KeyRange: 512, Ops: 40000, Elapsed: 90 * time.Millisecond,
			MopsPerSec: 0.44, PeakRetired: 31, Restarts: 17,
		},
	}
}

// TestWriteThroughputTable checks the rendered table carries every row's
// load-bearing fields, and that unmeasured latencies render as "-" rather
// than a misleading zero.
func TestWriteThroughputTable(t *testing.T) {
	var sb strings.Builder
	bench.WriteThroughputTable(&sb, sampleRows())
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines:\n%s", len(lines), out)
	}
	for _, want := range []string{"scheme", "Mops/s", "peak-retired", "ebr", "harris", "90/5/5",
		"zipfian/phased", "0.640", "310ns", "vbr", "skiplist"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// The second row recorded no latency samples; its percentile cells
	// must show the placeholder.
	if !strings.Contains(lines[2], " - ") {
		t.Errorf("unmeasured latency not rendered as '-': %s", lines[2])
	}
}

// TestJSONReportRoundTripStatic checks a BENCH_*.json artifact survives
// write → read unchanged, on hand-built rows (engine_test covers the
// measured path).
func TestJSONReportRoundTripStatic(t *testing.T) {
	rows := sampleRows()
	var sb strings.Builder
	if err := bench.WriteJSONReport(&sb, "throughput", rows); err != nil {
		t.Fatal(err)
	}
	rep, err := bench.ReadJSONReport(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "throughput" {
		t.Errorf("experiment: %q", rep.Experiment)
	}
	if len(rep.Rows) != len(rows) {
		t.Fatalf("rows: %d want %d", len(rep.Rows), len(rows))
	}
	for i := range rows {
		if rep.Rows[i] != rows[i] {
			t.Errorf("row %d: got %+v want %+v", i, rep.Rows[i], rows[i])
		}
	}
}

// TestReadJSONReportRejectsGarbage checks the artifact reader reports
// malformed input as such.
func TestReadJSONReportRejectsGarbage(t *testing.T) {
	if _, err := bench.ReadJSONReport(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func sampleService() bench.ServiceResult {
	return bench.ServiceResult{
		Aggregate: bench.ServiceRow{
			Shards: 2, Schemes: []string{"hp", "ebr"}, Structure: "hashmap",
			Clients: 4, Batch: 16, Workers: 1, Mix: workload.MixBalanced,
			Workload: "zipfian", Schedule: "steady", KeyRange: 4096,
			Ops: 80000, Elapsed: 210 * time.Millisecond, MopsPerSec: 0.38,
			P50: 95 * time.Microsecond, P99: 480 * time.Microsecond,
			PeakRetired: 64, Faults: 0, Restarts: 3,
		},
		PerShard: []bench.ServiceShardRow{
			{Shard: 0, Scheme: "hp", Ops: 41000, MopsPerSec: 0.195, MaxRetired: 16},
			{Shard: 1, Scheme: "ebr", Ops: 39000, MopsPerSec: 0.185, MaxRetired: 48, Restarts: 3},
		},
	}
}

// TestWriteServiceTable checks the per-shard rows and the aggregate lines
// both render.
func TestWriteServiceTable(t *testing.T) {
	var sb strings.Builder
	bench.WriteServiceTable(&sb, sampleService())
	out := sb.String()
	for _, want := range []string{"shard", "hp", "ebr", "aggregate:", "2 shards",
		"4 clients", "zipfian/steady", "p50 95µs", "p99 480µs", "peak-retired 64"} {
		if !strings.Contains(out, want) {
			t.Errorf("service table missing %q:\n%s", want, out)
		}
	}
}

// TestServiceReportRoundTrip checks the BENCH_service.json artifact
// survives write → read unchanged.
func TestServiceReportRoundTrip(t *testing.T) {
	res := sampleService()
	var sb strings.Builder
	if err := bench.WriteServiceReport(&sb, res); err != nil {
		t.Fatal(err)
	}
	rep, err := bench.ReadServiceReport(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "service" {
		t.Errorf("experiment: %q", rep.Experiment)
	}
	if !reflect.DeepEqual(rep.Aggregate, res.Aggregate) {
		t.Errorf("aggregate: got %+v want %+v", rep.Aggregate, res.Aggregate)
	}
	if len(rep.PerShard) != 2 {
		t.Fatalf("per-shard: %d", len(rep.PerShard))
	}
	for i := range res.PerShard {
		if rep.PerShard[i] != res.PerShard[i] {
			t.Errorf("shard %d: got %+v want %+v", i, rep.PerShard[i], res.PerShard[i])
		}
	}
	if _, err := bench.ReadServiceReport(strings.NewReader("{")); err == nil {
		t.Error("truncated artifact accepted")
	}
}

func sampleAdaptive() bench.AdaptiveResult {
	return bench.AdaptiveResult{
		Static: bench.AdaptiveArm{
			Arm: "static", StartScheme: "ebr", FinalScheme: "ebr",
			FaultedAudited: "not-robust", FaultedGrowth: "unbounded",
			FinalAudited: "not-robust", FinalGrowth: "unbounded",
			Migrations: []adapt.Episode{}, PeakRetired: 48211, Ops: 120000,
		},
		Adaptive: bench.AdaptiveArm{
			Arm: "adaptive", StartScheme: "ebr", FinalScheme: "ibr",
			FaultedAudited: "not-robust", FaultedGrowth: "unbounded",
			FinalAudited: "robust", FinalGrowth: "bounded",
			Migrations: []adapt.Episode{{
				Shard: 0, From: "ebr", To: "ibr", At: 190 * time.Millisecond,
				Audited: "not-robust", Reason: "escalate: audited not-robust over 2 windows",
			}},
			PeakRetired: 910, Ops: 310000, OpErrs: 4200,
			P99: 55 * time.Microsecond,
		},
		Agg: bench.AdaptiveAggregate{
			Ladder: []string{"ebr", "ibr", "hp"}, StartScheme: "ebr",
			Structure: "hashmap", Faults: []string{"delayed-release"},
			Workers: 2, Clients: 4, Batch: 16, KeyRange: 2048,
			Duration: 800 * time.Millisecond, Mix: workload.MixBalanced,
			Workload: "uniform", Schedule: "steady", Seed: 42,
		},
		Improved: true,
	}
}

// TestWriteAdaptiveTable checks both arms, the migration log, and the
// headline all render.
func TestWriteAdaptiveTable(t *testing.T) {
	var sb strings.Builder
	bench.WriteAdaptiveTable(&sb, sampleAdaptive())
	out := sb.String()
	for _, want := range []string{"arm", "static", "adaptive", "ebr", "ibr",
		"not-robust (unbounded)", "robust (bounded)",
		"migration: shard 0 ebr → ibr at 190ms", "improved on static: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("adaptive table missing %q:\n%s", want, out)
		}
	}
}

// TestAdaptiveReportRoundTrip checks the BENCH_adaptive.json artifact
// survives write → read unchanged, migration episodes included.
func TestAdaptiveReportRoundTrip(t *testing.T) {
	res := sampleAdaptive()
	var sb strings.Builder
	if err := bench.WriteAdaptiveReport(&sb, res); err != nil {
		t.Fatal(err)
	}
	rep, err := bench.ReadAdaptiveReport(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "adaptive" || !rep.Improved {
		t.Fatalf("round-trip header: %+v", rep.Aggregate)
	}
	if !reflect.DeepEqual(rep.Static, res.Static) {
		t.Errorf("static arm: got %+v want %+v", rep.Static, res.Static)
	}
	if !reflect.DeepEqual(rep.Adaptive, res.Adaptive) {
		t.Errorf("adaptive arm: got %+v want %+v", rep.Adaptive, res.Adaptive)
	}
	if !reflect.DeepEqual(rep.Aggregate, res.Agg) {
		t.Errorf("aggregate: got %+v want %+v", rep.Aggregate, res.Agg)
	}
	if _, err := bench.ReadAdaptiveReport(strings.NewReader("{")); err == nil {
		t.Error("truncated artifact accepted")
	}
}
