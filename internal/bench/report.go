package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/adapt"
	"repro/internal/chaos"
	"repro/internal/obs"
)

// WriteThroughputTable renders throughput rows.
func WriteThroughputTable(w io.Writer, rows []ThroughputRow) {
	fmt.Fprintf(w, "%-11s %-16s %7s %9s %-18s %9s %10s %10s %10s %13s %9s\n",
		"scheme", "structure", "threads", "mix", "workload", "keyrange", "Mops/s", "p50", "p99", "peak-retired", "restarts")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %-16s %7d %9s %-18s %9d %10.3f %10s %10s %13d %9d\n",
			r.Scheme, r.Structure, r.Threads, r.Mix, r.Workload+"/"+r.Schedule,
			r.KeyRange, r.MopsPerSec, fmtLatency(r.P50), fmtLatency(r.P99), r.PeakRetired, r.Restarts)
	}
}

func fmtLatency(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(10 * time.Nanosecond).String()
}

// WriteSpaceTable renders the space experiment.
func WriteSpaceTable(w io.Writer, rows []SpaceRow) {
	fmt.Fprintf(w, "%-11s %8s %13s %11s %9s %s\n", "scheme", "K", "peak-retired", "max-active", "per-churn", "safe")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %8d %13d %11d %9.3f %v\n",
			r.Scheme, r.K, r.PeakRetired, r.MaxActive, r.PerChurn, r.Safe)
	}
}

// WriteStallSeries renders backlog-over-time curves for several schemes.
func WriteStallSeries(w io.Writer, series map[string][]StallSample) {
	schemes := make([]string, 0, len(series))
	for s := range series {
		schemes = append(schemes, s)
	}
	sort.Strings(schemes)
	fmt.Fprintf(w, "%-8s", "step")
	for _, s := range schemes {
		fmt.Fprintf(w, " %12s", s)
	}
	fmt.Fprintln(w)
	if len(schemes) == 0 {
		return
	}
	for i := range series[schemes[0]] {
		fmt.Fprintf(w, "%-8d", series[schemes[0]][i].Step)
		for _, s := range schemes {
			fmt.Fprintf(w, " %12d", series[s][i].Retired)
		}
		fmt.Fprintln(w)
	}
}

// WriteScaleTable renders the scale experiment.
func WriteScaleTable(w io.Writer, rows []ScaleRow) {
	fmt.Fprintf(w, "%-11s %8s %10s %9s\n", "scheme", "size", "backlog", "per-size")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %8d %10d %9.3f\n", r.Scheme, r.Size, r.Backlog, r.PerSize)
	}
}

// WriteServiceTable renders the sharded-service measurement: the
// per-shard breakdown (scheme = the shard's *current* scheme), the
// adaptive migration log when there is one, then the aggregate lines.
func WriteServiceTable(w io.Writer, res ServiceResult) {
	fmt.Fprintf(w, "%-6s %-11s %12s %10s %10s %12s %8s %8s %9s %6s\n",
		"shard", "scheme", "ops", "Mops/s", "retired", "peak-retired", "faults", "unsafe", "restarts", "moves")
	for _, r := range res.PerShard {
		fmt.Fprintf(w, "%-6d %-11s %12d %10.3f %10d %12d %8d %8d %9d %6d\n",
			r.Shard, r.Scheme, r.Ops, r.MopsPerSec, r.Retired, r.MaxRetired,
			r.Faults, r.UnsafeAccesses, r.Restarts, r.Migrations)
	}
	writeEpisodes(w, res.Episodes)
	a := res.Aggregate
	fmt.Fprintf(w, "aggregate: %d shards × %d workers, %d clients × batch %d, %s %s/%s mix %s\n",
		a.Shards, a.Workers, a.Clients, a.Batch, a.Structure, a.Workload, a.Schedule, a.Mix)
	fmt.Fprintf(w, "           %d ops in %s = %.3f Mops/s, request p50 %s p99 %s, peak-retired %d, faults %d, restarts %d\n",
		a.Ops, a.Elapsed.Round(time.Millisecond), a.MopsPerSec,
		fmtLatency(a.P50), fmtLatency(a.P99), a.PeakRetired, a.Faults, a.Restarts)
	if a.OpErrs > 0 || a.Migrations > 0 {
		fmt.Fprintf(w, "           op-errors %d, migrations %d\n", a.OpErrs, a.Migrations)
	}
	if a.FanoutPct > 0 {
		fmt.Fprintf(w, "fan-out:   %d clients (%d%% of fleet) via pipelined executor: %d requests, p50 %s p99 %s\n",
			a.FanoutClients, a.FanoutPct, a.FanoutReqs, fmtLatency(a.FanoutP50), fmtLatency(a.FanoutP99))
		if a.FanoutPartial > 0 || a.FanoutErrs > 0 || a.FanoutSheds > 0 {
			fmt.Fprintf(w, "           fan-out partials %d, fan-out op-errors %d, fan-out sheds %d\n",
				a.FanoutPartial, a.FanoutErrs, a.FanoutSheds)
		}
		if a.FanoutRetries > 0 || a.FanoutHedges > 0 || a.FanoutRecovered > 0 {
			fmt.Fprintf(w, "resil:     %d retries (%d requests recovered), %d hedges (%d races won)\n",
				a.FanoutRetries, a.FanoutRecovered, a.FanoutHedges, a.FanoutHedgeWins)
		}
	}
}

// ServiceReport is the machine-readable sharded-service artifact (the
// BENCH_service.json file): the aggregate row plus the per-shard
// breakdown, under the same experiment/trajectory convention as Report.
type ServiceReport struct {
	Experiment string            `json:"experiment"`
	Aggregate  ServiceRow        `json:"aggregate"`
	PerShard   []ServiceShardRow `json:"per_shard"`
}

// WriteServiceReport emits the service measurement as an indented JSON
// benchmark artifact.
func WriteServiceReport(w io.Writer, res ServiceResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ServiceReport{Experiment: "service", Aggregate: res.Aggregate, PerShard: res.PerShard})
}

// ReadServiceReport parses an artifact written by WriteServiceReport.
func ReadServiceReport(r io.Reader) (ServiceReport, error) {
	var rep ServiceReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return ServiceReport{}, fmt.Errorf("bench: malformed service artifact: %w", err)
	}
	return rep, nil
}

// writeEpisodes renders a migration episode log, one line per decision,
// shared by the service and adaptive tables.
func writeEpisodes(w io.Writer, eps []adapt.Episode) {
	for _, ep := range eps {
		line := fmt.Sprintf("migration: shard %d %s → %s at %s (%s)",
			ep.Shard, ep.From, ep.To, ep.At.Round(time.Millisecond), ep.Reason)
		if ep.Err != "" {
			line += " FAILED: " + ep.Err
		}
		fmt.Fprintln(w, line)
	}
}

// WriteAdaptiveTable renders the adaptive experiment: one line per arm,
// the adaptive arm's migration episode log, its fault episodes, then the
// headline.
func WriteAdaptiveTable(w io.Writer, res AdaptiveResult) {
	fmt.Fprintf(w, "%-9s %-7s %-7s %5s %-18s %-18s %13s %10s %8s %6s %10s\n",
		"arm", "start", "final", "moves", "faulted-audited", "final-audited",
		"peak-retired", "ops", "op-errs", "ooms", "p99")
	for _, arm := range []AdaptiveArm{res.Static, res.Adaptive} {
		fmt.Fprintf(w, "%-9s %-7s %-7s %5d %-18s %-18s %13d %10d %8d %6d %10s\n",
			arm.Arm, arm.StartScheme, arm.FinalScheme, len(arm.Migrations),
			arm.FaultedAudited+" ("+arm.FaultedGrowth+")", arm.FinalAudited+" ("+arm.FinalGrowth+")",
			arm.PeakRetired, arm.Ops, arm.OpErrs, arm.OOMs, fmtLatency(arm.P99))
	}
	writeEpisodes(w, res.Adaptive.Migrations)
	for _, ev := range res.Adaptive.Events {
		fmt.Fprintf(w, "fault: %-16s shard %d at %s\n", ev.Fault, ev.Shard, ev.At.Round(time.Millisecond))
	}
	a := res.Agg
	fmt.Fprintf(w, "aggregate: ladder %v from %s, faults %v, %s window, %d clients × batch %d, %s/%s mix %s seed %d\n",
		a.Ladder, a.StartScheme, a.Faults, a.Duration, a.Clients, a.Batch,
		a.Workload, a.Schedule, a.Mix, a.Seed)
	fmt.Fprintf(w, "           adaptive improved on static: %v\n", res.Improved)
}

// AdaptiveReport is the machine-readable adaptive artifact (the
// BENCH_adaptive.json file): both arms — migration episode log, fault
// events, and evidence series included — under the same
// experiment/trajectory convention as Report.
type AdaptiveReport struct {
	Experiment string            `json:"experiment"`
	Static     AdaptiveArm       `json:"static"`
	Adaptive   AdaptiveArm       `json:"adaptive"`
	Aggregate  AdaptiveAggregate `json:"aggregate"`
	Improved   bool              `json:"improved"`
}

// WriteAdaptiveReport emits the adaptive experiment as an indented JSON
// benchmark artifact.
func WriteAdaptiveReport(w io.Writer, res AdaptiveResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(AdaptiveReport{
		Experiment: "adaptive",
		Static:     res.Static,
		Adaptive:   res.Adaptive,
		Aggregate:  res.Agg,
		Improved:   res.Improved,
	})
}

// ReadAdaptiveReport parses an artifact written by WriteAdaptiveReport.
func ReadAdaptiveReport(r io.Reader) (AdaptiveReport, error) {
	var rep AdaptiveReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return AdaptiveReport{}, fmt.Errorf("bench: malformed adaptive artifact: %w", err)
	}
	return rep, nil
}

// WriteTraverseTable renders EXP-TRAVERSE: the storm arms, the snapshot
// arms, then the headlines.
func WriteTraverseTable(w io.Writer, res TraverseResult) {
	fmt.Fprintf(w, "%-13s %10s %10s %10s %10s %11s %8s %13s %11s %13s\n",
		"storm-arm", "ops", "Mops/s", "p50", "p99", "restarts/kop", "head-rs", "max-op-steps", "guard-trips", "peak-retired")
	for _, a := range res.Storm {
		fmt.Fprintf(w, "%-13s %10d %10.3f %10s %10s %11.3f %8d %13d %11d %13d\n",
			a.Mode, a.Ops, a.MopsPerSec, fmtLatency(a.P50), fmtLatency(a.P99),
			a.RestartsPerKOp, a.TravHeadRestarts, a.MaxOpSteps, a.GuardTrips, a.PeakRetired)
	}
	fmt.Fprintf(w, "%-13s %14s %14s %14s\n", "snapshot-arm", "probes", "keys", "swap-window")
	for _, a := range res.Snap {
		fmt.Fprintf(w, "%-13s %14d %14d %14s\n",
			a.Mode, a.SnapshotProbes, a.SnapshotKeys, a.SwapWindow.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "aggregate: %d workers, %d clients, %s window, churn keyrange %d, snapshot %d universe / %d live, seed %d\n",
		res.Workers, res.Clients, res.Duration, res.ChurnKeyRange, res.SnapKeyRange, res.SnapLiveKeys, res.Seed)
	fmt.Fprintf(w, "           swap window improved %.1fx, probes bounded: %v, guard clean: %v\n",
		res.SwapImprovement, res.ProbesBounded, res.GuardClean)
}

// TraverseReport is the machine-readable traverse artifact (the
// BENCH_traverse.json file), under the same experiment/trajectory
// convention as Report.
type TraverseReport struct {
	Experiment string `json:"experiment"`
	TraverseResult
}

// WriteTraverseReport emits the traverse experiment as an indented JSON
// benchmark artifact.
func WriteTraverseReport(w io.Writer, res TraverseResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(TraverseReport{Experiment: "traverse", TraverseResult: res})
}

// ReadTraverseReport parses an artifact written by WriteTraverseReport.
func ReadTraverseReport(r io.Reader) (TraverseReport, error) {
	var rep TraverseReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return TraverseReport{}, fmt.Errorf("bench: malformed traverse artifact: %w", err)
	}
	return rep, nil
}

// WriteBatchTable renders EXP-BATCH: the throughput pairs, the
// allocation section, the parked-worker backlog pairs, then the
// headlines.
func WriteBatchTable(w io.Writer, res BatchResult) {
	fmt.Fprintf(w, "%-7s %6s %-7s %10s %10s %10s %10s %9s %11s %11s %7s\n",
		"scheme", "batch", "arm", "ops", "Mops/s", "p50", "p99", "fused", "rebrackets", "sorts", "ratio")
	for _, p := range res.Pairs {
		for _, a := range []BatchArm{p.Fused, p.Serial} {
			ratio := ""
			if a.Mode == "fused" {
				ratio = fmt.Sprintf("%.2fx", p.Ratio)
			}
			fmt.Fprintf(w, "%-7s %6d %-7s %10d %10.3f %10s %10s %9d %11d %11d %7s\n",
				p.Scheme, p.Batch, a.Mode, a.Ops, a.MopsPerSec, fmtLatency(a.P50), fmtLatency(a.P99),
				a.FusedBatches, a.Rebrackets, a.BatchSorts, ratio)
		}
	}
	fmt.Fprintf(w, "allocs: %d DoInto calls × batch %d: %.2f allocs/call, %.1f B/call (zero-alloc: %v)\n",
		res.Allocs.Rounds, res.Allocs.Batch, res.Allocs.AllocsPerOp, res.Allocs.BytesPerOp, res.Allocs.ZeroAlloc)
	fmt.Fprintf(w, "%-7s %-22s %-22s %8s\n", "scheme", "fused peak-retired/ops", "per-op peak-retired/ops", "bounded")
	for _, p := range res.Backlog {
		fmt.Fprintf(w, "%-7s %-22s %-22s %8v\n", p.Scheme,
			fmt.Sprintf("%d / %d", p.Fused.PeakRetired, p.Fused.Ops),
			fmt.Sprintf("%d / %d", p.Serial.PeakRetired, p.Serial.Ops),
			p.Bounded)
	}
	fmt.Fprintf(w, "aggregate: %d workers, %d clients, %s window, keyrange %d, stall %s, seed %d\n",
		res.Workers, res.Clients, res.Duration, res.KeyRange, res.StallDuration, res.Seed)
	fmt.Fprintf(w, "           best ratio %.2fx (fused beats serial: %v), zero-alloc: %v, backlog bounded: %v\n",
		res.BestRatio, res.FusedBeatsSerial, res.ZeroAlloc, res.BacklogBounded)
}

// BatchReport is the machine-readable batch artifact (the
// BENCH_batch.json file), under the same experiment convention as
// Report.
type BatchReport struct {
	Experiment string `json:"experiment"`
	BatchResult
}

// WriteBatchReport emits the batch experiment as an indented JSON
// benchmark artifact.
func WriteBatchReport(w io.Writer, res BatchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BatchReport{Experiment: "batch", BatchResult: res})
}

// ReadBatchReport parses an artifact written by WriteBatchReport.
func ReadBatchReport(r io.Reader) (BatchReport, error) {
	var rep BatchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return BatchReport{}, fmt.Errorf("bench: malformed batch artifact: %w", err)
	}
	return rep, nil
}

// WriteChaosTable renders the chaos audit: one verdict line per scheme
// shard, the fault episode log, then the client-side aggregate.
func WriteChaosTable(w io.Writer, res ChaosResult) {
	fmt.Fprintf(w, "%-6s %-11s %-13s %-13s %-18s %9s %9s %13s %10s %6s %s\n",
		"shard", "scheme", "declared", "audited", "growth", "slope/op", "plateau", "peak-retired", "ops", "ooms", "outcome")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-6d %-11s %-13s %-13s %-18s %9.4f %9.1f %13d %10d %6d %s\n",
			r.Shard, r.Scheme, r.Declared, r.Audited, r.Growth,
			r.Slope, r.Plateau, r.PeakRetired, r.Ops, r.OOMs, r.Outcome)
	}
	for _, ev := range res.Events {
		line := fmt.Sprintf("fault: %-16s shard %d episode %d at %s", ev.Fault, ev.Shard, ev.Episode, ev.At.Round(time.Millisecond))
		if ev.Err != "" {
			line += " FAILED: " + ev.Err
		} else if ev.Healed > 0 {
			line += fmt.Sprintf(" healed at %s", ev.Healed.Round(time.Millisecond))
		}
		fmt.Fprintln(w, line)
	}
	a := res.Agg
	fmt.Fprintf(w, "aggregate: %d shards × %d workers, %d clients × batch %d, faults %v, %s/%s mix %s seed %d\n",
		a.Shards, a.Workers, a.Clients, a.Batch, a.Faults, a.Workload, a.Schedule, a.Mix, a.Seed)
	fmt.Fprintf(w, "           %d ops (%d op-errors) in %s, request p50 %s p99 %s, verdicts consistent: %v\n",
		a.Ops, a.OpErrs, a.Elapsed.Round(time.Millisecond), fmtLatency(a.P50), fmtLatency(a.P99), res.Consistent)
}

// ChaosReport is the machine-readable chaos artifact (the
// BENCH_chaos.json file): the audited rows with their evidence series,
// the fault episode log, and the aggregate, under the same
// experiment/trajectory convention as Report.
type ChaosReport struct {
	Experiment string         `json:"experiment"`
	Rows       []ChaosRow     `json:"rows"`
	Events     []chaos.Event  `json:"events"`
	Aggregate  ChaosAggregate `json:"aggregate"`
	Consistent bool           `json:"consistent"`
}

// WriteChaosReport emits the chaos audit as an indented JSON benchmark
// artifact.
func WriteChaosReport(w io.Writer, res ChaosResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ChaosReport{
		Experiment: "chaos",
		Rows:       res.Rows,
		Events:     res.Events,
		Aggregate:  res.Agg,
		Consistent: res.Consistent,
	})
}

// ReadChaosReport parses an artifact written by WriteChaosReport.
func ReadChaosReport(r io.Reader) (ChaosReport, error) {
	var rep ChaosReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return ChaosReport{}, fmt.Errorf("bench: malformed chaos artifact: %w", err)
	}
	return rep, nil
}

// Report is the machine-readable benchmark artifact (a BENCH_*.json file):
// one experiment name plus its rows, so successive runs form a trajectory
// that tooling can diff and plot.
type Report struct {
	Experiment string          `json:"experiment"`
	Rows       []ThroughputRow `json:"rows"`
}

// WriteJSONReport emits rows as an indented JSON benchmark artifact.
func WriteJSONReport(w io.Writer, experiment string, rows []ThroughputRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{Experiment: experiment, Rows: rows})
}

// ReadJSONReport parses an artifact written by WriteJSONReport.
func ReadJSONReport(r io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("bench: malformed benchmark artifact: %w", err)
	}
	return rep, nil
}

// WriteObsTable renders EXP-OBS: one line per incident chain, the
// controller's migration log, then the plane's own accounting.
func WriteObsTable(w io.Writer, res ObsResult) {
	fmt.Fprintf(w, "%-5s %-16s %10s %10s %10s %10s %-14s %8s\n",
		"shard", "fault", "fired", "detect", "react", "healed", "migration", "complete")
	for _, in := range res.Timeline.Incidents {
		det, rea := "-", "-"
		if in.DetectionLatency >= 0 {
			det = fmtLatency(in.DetectionLatency)
		}
		if in.ReactionLatency >= 0 {
			rea = fmtLatency(in.ReactionLatency)
		}
		healed := "-"
		if in.HealedAt > 0 {
			healed = in.HealedAt.Round(time.Millisecond).String()
		}
		fmt.Fprintf(w, "%-5d %-16s %10s %10s %10s %10s %-14s %8v\n",
			in.Shard, in.Fault, in.FiredAt.Round(time.Millisecond),
			det, rea, healed, in.Migration, in.Complete)
	}
	writeEpisodes(w, res.Episodes)
	fmt.Fprintf(w, "flap: %d ladder moves, %d reversals, %.2f moves/s over %s\n",
		res.Timeline.LadderMoves, res.Timeline.Reversals,
		res.Timeline.FlapRatePerSec, res.Timeline.Span.Round(time.Millisecond))
	fmt.Fprintf(w, "slo: p99 %s vs target %s, breached=%v, %d breach transition(s), %d points\n",
		fmtLatency(res.SLO.P99), fmtLatency(res.SLO.Target), res.SLO.Breached,
		res.SLO.Breaches, len(res.SLO.Points))
	fmt.Fprintf(w, "recorder: %d events (%d dropped); sampler: %d ticks (%d skipped, %d late)\n",
		res.RecorderTotal, res.RecorderDrops,
		res.Sampler.Ticks, res.Sampler.SkippedTicks, res.Sampler.LateSamples)
	if res.Overhead.Rounds > 0 {
		fmt.Fprintf(w, "overhead: recorder on %.3f Mops/s vs off %.3f Mops/s, delta %.1f%% (ok=%v)\n",
			res.Overhead.RecorderOnMops, res.Overhead.RecorderOffMops,
			res.Overhead.DeltaPct, res.Overhead.OK)
	}
	a := res.Agg
	fmt.Fprintf(w, "aggregate: %d shards from %s on ladder %v, faults %v held %s, %s window, %d clients × batch %d, %d ops (%d errs), p99 %s\n",
		a.Shards, a.StartScheme, a.Ladder, a.Faults, a.Hold.Round(time.Millisecond),
		a.Duration, a.Clients, a.Batch, a.Ops, a.OpErrs, fmtLatency(a.P99))
	if res.ServedAt != "" {
		fmt.Fprintf(w, "           live plane served at %s\n", res.ServedAt)
	}
	fmt.Fprintf(w, "           all incident chains complete: %v\n", res.Complete)
}

// ObsReport is the machine-readable observability artifact (the
// BENCH_obs.json file): the full result under the experiment/trajectory
// convention the other artifacts follow.
type ObsReport struct {
	Experiment string    `json:"experiment"`
	Result     ObsResult `json:"result"`
}

// WriteObsReport emits the observability experiment as an indented JSON
// benchmark artifact.
func WriteObsReport(w io.Writer, res ObsResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ObsReport{Experiment: "obs", Result: res})
}

// ReadObsReport parses an artifact written by WriteObsReport.
func ReadObsReport(r io.Reader) (ObsReport, error) {
	var rep ObsReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return ObsReport{}, fmt.Errorf("bench: malformed obs artifact: %w", err)
	}
	return rep, nil
}

// WriteObsTrace emits the run's event tape and backlog series as a
// Chrome trace-event file (chrome://tracing, ui.perfetto.dev).
func WriteObsTrace(w io.Writer, res ObsResult) error {
	return obs.WriteChromeTrace(w, res.Events, res.Series)
}

// WritePipelineTable renders EXP-PIPELINE: one line per A/B arm, the
// partial-failure campaign summary, then the two acceptance headlines.
func WritePipelineTable(w io.Writer, res PipelineResult) {
	fmt.Fprintf(w, "%-10s %10s %12s %10s %10s %8s %7s %8s\n",
		"arm", "requests", "req/s", "p50", "p99", "partial", "sheds", "timeouts")
	for _, a := range []PipelineArmRow{res.Blocking, res.Pipelined} {
		fmt.Fprintf(w, "%-10s %10d %12.0f %10s %10s %8d %7d %8d\n",
			a.Arm, a.Requests, a.ReqPerSec, fmtLatency(a.P50), fmtLatency(a.P99),
			a.Partial, a.Sheds, a.Timeouts)
	}
	c := res.Chaos
	fmt.Fprintf(w, "chaos: shard %d stalled %s — %d requests, %d partial, %d sheds, %d timeouts, degraded seen %v\n",
		c.FaultShard, c.Window.Round(time.Millisecond), c.Requests, c.Partial, c.Sheds, c.Timeouts, c.DegradedSeen)
	fmt.Fprintf(w, "       healthy-request p50 %s p99 %s; fault fired %v healed %v clean-after-heal %v\n",
		fmtLatency(c.HealthyP50), fmtLatency(c.HealthyP99), c.FaultFired, c.FaultHeals, c.CleanAfterHeal)
	fmt.Fprintf(w, "       recorder: %d scatter / %d merge / %d shed events\n",
		c.ScatterEvents, c.MergeEvents, c.ShedEvents)
	fmt.Fprintf(w, "aggregate: %d shards × %d workers, %d clients, window %d, %s mix %s\n",
		res.Shards, res.Workers, res.Clients, res.Window, res.Structure, res.ReqMix)
	fmt.Fprintf(w, "           pipelined beats blocking: %v (%.2fx); partial chains closed: %v\n",
		res.PipelinedBeatsBlocking, res.Pipelined.ReqPerSecX, res.PartialChainsClosed)
}

// PipelineReport is the machine-readable EXP-PIPELINE artifact (the
// BENCH_pipeline.json file), under the same experiment convention as
// Report.
type PipelineReport struct {
	Experiment string `json:"experiment"`
	PipelineResult
}

// WritePipelineReport emits the pipeline experiment as an indented JSON
// benchmark artifact.
func WritePipelineReport(w io.Writer, res PipelineResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(PipelineReport{Experiment: "pipeline", PipelineResult: res})
}

// ReadPipelineReport parses an artifact written by WritePipelineReport.
func ReadPipelineReport(r io.Reader) (PipelineReport, error) {
	var rep PipelineReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return PipelineReport{}, fmt.Errorf("bench: malformed pipeline artifact: %w", err)
	}
	return rep, nil
}

// WriteResilTable renders EXP-RESIL: the goodput A/B rows, the hedge
// A/B rows, then the three acceptance headlines.
func WriteResilTable(w io.Writer, res ResilResult) {
	fmt.Fprintf(w, "%-10s %10s %10s %12s %12s %10s %10s\n",
		"arm", "requests", "clean", "win-reqs", "win-clean", "p50", "p99")
	for _, a := range []ResilArmRow{res.Naive, res.Resilient} {
		fmt.Fprintf(w, "%-10s %10d %10d %12d %12d %10s %10s\n",
			a.Arm, a.Requests, a.Clean, a.WindowRequests, a.WindowClean,
			fmtLatency(a.P50), fmtLatency(a.P99))
	}
	r := res.Resilient
	fmt.Fprintf(w, "retry:  %d retries, %d recovered, %d budget-exhausted, %d sheds, %d timeouts, amplification %.3fx\n",
		r.Retries, r.Recovered, r.BudgetExhausted, r.Sheds, r.Timeouts, r.Amplification)
	fmt.Fprintf(w, "%-10s %10s %8s %10s %10s %8s %8s %8s\n",
		"arm", "requests", "pulses", "p50", "p99", "hedges", "wins", "waste")
	for _, a := range []ResilHedgeRow{res.HedgeBase, res.Hedged} {
		fmt.Fprintf(w, "%-10s %10d %8d %10s %10s %8d %8d %8d\n",
			a.Arm, a.Requests, a.Pulses, fmtLatency(a.P50), fmtLatency(a.P99),
			a.Hedges, a.HedgeWins, a.HedgeWaste)
	}
	fmt.Fprintf(w, "aggregate: %d shards, %d clients, mix %s\n", res.Shards, res.Clients, res.ReqMix)
	fmt.Fprintf(w, "           goodput recovered: %v (%.2fx in fault windows); hedge bounds tail: %v (%.2fx p99); amplification bounded: %v\n",
		res.GoodputRecovered, res.GoodputX, res.HedgeBoundsTail, res.HedgeP99X, res.AmplificationBounded)
}

// ResilReport is the machine-readable EXP-RESIL artifact (the
// BENCH_resil.json file), under the same experiment convention as
// Report.
type ResilReport struct {
	Experiment string `json:"experiment"`
	ResilResult
}

// WriteResilReport emits the resilience experiment as an indented JSON
// benchmark artifact.
func WriteResilReport(w io.Writer, res ResilResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ResilReport{Experiment: "resil", ResilResult: res})
}

// ReadResilReport parses an artifact written by WriteResilReport.
func ReadResilReport(r io.Reader) (ResilReport, error) {
	var rep ResilReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return ResilReport{}, fmt.Errorf("bench: malformed resil artifact: %w", err)
	}
	return rep, nil
}

// CheckResil applies EXP-RESIL's acceptance criteria: typed retries
// recover fault-window goodput (≥1.5× the naive arm), hedging bounds
// the fan-out p99 under a one-slow-worker fault, and the retry budget
// keeps load amplification under 1.3× offered.
func CheckResil(res ResilResult) error {
	if !res.GoodputRecovered {
		return fmt.Errorf("bench: resilient fault-window goodput %d vs naive %d (%.2fx < 1.5x)",
			res.Resilient.WindowClean, res.Naive.WindowClean, res.GoodputX)
	}
	if !res.HedgeBoundsTail {
		return fmt.Errorf("bench: hedging did not bound the tail: p99 %s vs %s (%.2fx), %d hedges %d wins",
			res.Hedged.P99, res.HedgeBase.P99, res.HedgeP99X, res.Hedged.Hedges, res.Hedged.HedgeWins)
	}
	if !res.AmplificationBounded {
		return fmt.Errorf("bench: retry amplification %.3fx outside (0, 1.3]", res.Resilient.Amplification)
	}
	return nil
}

// CheckPipeline applies EXP-PIPELINE's acceptance criteria: the
// pipelined arm out-runs the blocking loop, and the partial-failure
// chain closed (fault fired → typed partial results → heal → clean
// full-width request).
func CheckPipeline(res PipelineResult) error {
	if !res.PipelinedBeatsBlocking {
		return fmt.Errorf("bench: pipelined arm (%.0f req/s) did not beat blocking (%.0f req/s)",
			res.Pipelined.ReqPerSec, res.Blocking.ReqPerSec)
	}
	if !res.PartialChainsClosed {
		return fmt.Errorf("bench: partial-failure chain open: fired=%v partial=%d healed=%v clean=%v",
			res.Chaos.FaultFired, res.Chaos.Partial, res.Chaos.FaultHeals, res.Chaos.CleanAfterHeal)
	}
	return nil
}
