package bench

import (
	"time"

	"repro/internal/adapt"
	"repro/internal/chaos"
	"repro/internal/sched"
	"repro/internal/smr"
	"repro/internal/smr/all"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// AdaptiveConfig sizes the adaptive-reclamation experiment (EXP-ADAPT):
// two identical single-shard fleets run the same seeded traffic under
// the same chaos fault — one pinned to its starting scheme (the static
// control), one with the adapt controller live — and the audit compares
// what each shard's backlog did before and after the controller acted.
// It is the ERA theorem as an A/B test: the control demonstrates the
// impossibility (a non-robust scheme under a reclamation-critical stall
// grows without bound), the adaptive arm demonstrates the escape hatch
// (detect it live, migrate the shard up the ladder, keep the data).
type AdaptiveConfig struct {
	// Ladder is the controller's migration ladder, cheapest first; the
	// default trio ebr → ibr → hp walks the paper's robustness classes.
	Ladder []string
	// StartScheme is both arms' initial scheme; empty selects the
	// ladder's bottom rung.
	StartScheme string
	// Structure is the shard's set structure; empty selects "hashmap".
	Structure string
	// WorkersPerShard sizes the worker pool; 0 selects one survivor
	// above the stall-family fault count (min 2), as in EXP-CHAOS.
	WorkersPerShard int
	// Clients is the closed-loop client count; 0 selects 4.
	Clients int
	// Batch is operations per service request; 0 selects 16.
	Batch int
	// KeyRange is the key universe; 0 selects 2048.
	KeyRange int
	// Threshold is the retire-scan threshold; 0 selects 16.
	Threshold int
	// SlotsPerShard sizes the shard heap; 0 selects a budget only a
	// genuinely unbounded backlog can exhaust (and an OOM is evidence).
	SlotsPerShard int
	// Duration is the traffic window; 0 selects 800ms — long enough for
	// fault → verdict → migration → post-migration window.
	Duration time.Duration
	// FaultAfter is the injection delay; 0 selects Duration/8.
	FaultAfter time.Duration
	// SampleInterval is the telemetry tick; 0 derives ~200 samples per
	// window clamped to [200µs, 5ms].
	SampleInterval time.Duration
	// DecideInterval is the controller tick; 0 selects Duration/32
	// clamped to [5ms, 25ms].
	DecideInterval time.Duration
	// Hysteresis is the controller's consecutive-verdict requirement;
	// 0 selects 2.
	Hysteresis int
	// Faults names the chaos faults injected into the shard; empty
	// selects ["delayed-release"] — the stall-plus-retire-storm that
	// punishes a non-robust scheme hardest.
	Faults []string
	// Mix, Workload, Schedule name the traffic shape; zero values select
	// balanced/uniform/steady.
	Mix      Mix
	Workload string
	Schedule string
	// Seed makes both arms replay identical client streams.
	Seed uint64
}

func (cfg *AdaptiveConfig) fill() {
	if len(cfg.Ladder) == 0 {
		cfg.Ladder = []string{"ebr", "ibr", "hp"}
	}
	if cfg.StartScheme == "" {
		cfg.StartScheme = cfg.Ladder[0]
	}
	if cfg.Structure == "" {
		cfg.Structure = "hashmap"
	}
	if cfg.Workload == "" {
		cfg.Workload = "uniform"
	}
	if cfg.Schedule == "" {
		cfg.Schedule = "steady"
	}
	if len(cfg.Faults) == 0 {
		cfg.Faults = []string{"delayed-release"}
	}
	if cfg.WorkersPerShard <= 0 {
		parks := 0
		for _, f := range cfg.Faults {
			if chaos.ParksWorker(f) {
				parks++
			}
		}
		cfg.WorkersPerShard = parks + 1
		if cfg.WorkersPerShard < 2 {
			cfg.WorkersPerShard = 2
		}
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 16
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 2048
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 16
	}
	if cfg.SlotsPerShard <= 0 {
		cfg.SlotsPerShard = 1 << 18
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 800 * time.Millisecond
	}
	if cfg.FaultAfter <= 0 {
		cfg.FaultAfter = cfg.Duration / 8
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = sampleEvery(cfg.Duration)
	}
	if cfg.DecideInterval <= 0 {
		cfg.DecideInterval = cfg.Duration / 32
		if cfg.DecideInterval < 5*time.Millisecond {
			cfg.DecideInterval = 5 * time.Millisecond
		}
		if cfg.DecideInterval > 25*time.Millisecond {
			cfg.DecideInterval = 25 * time.Millisecond
		}
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 2
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = MixBalanced
	}
}

// AdaptiveArm is one fleet's outcome: where its shard started and ended
// on the ladder, the audited class of its faulted window before any
// migration, the live windowed verdict at the deadline (the
// post-migration class for an arm that migrated), and the migration
// episode log behind the difference.
type AdaptiveArm struct {
	Arm         string `json:"arm"` // "static" | "adaptive"
	StartScheme string `json:"start_scheme"`
	FinalScheme string `json:"final_scheme"`
	// Faulted* audit the window from fault injection up to the first
	// migration (for arms that never migrate: up to the deadline) — the
	// "before" class. The fit stops at the migration's counter reset on
	// its own, so no explicit cut is needed.
	FaultedAudited string        `json:"faulted_audited"`
	FaultedGrowth  string        `json:"faulted_growth"`
	FaultedFit     telemetry.Fit `json:"faulted_fit"`
	// Final* is the monitor's live windowed verdict at the deadline —
	// the "after" class.
	FinalAudited string        `json:"final_audited"`
	FinalGrowth  string        `json:"final_growth"`
	FinalFit     telemetry.Fit `json:"final_fit"`
	// Migrations is the controller's episode log (empty for the static
	// arm — an adaptive arm that logged none did not adapt).
	Migrations []adapt.Episode `json:"migrations"`
	// Service-side counters: client operations completed over the
	// window, client op errors (including migration swap windows), heap
	// exhaustions and the backlog watermark of the *final* shard
	// incarnation, request latencies.
	Ops         uint64        `json:"ops"`
	OpErrs      uint64        `json:"op_errs"`
	OOMs        uint64        `json:"ooms"`
	PeakRetired uint64        `json:"peak_retired"`
	P50         time.Duration `json:"p50_ns"`
	P99         time.Duration `json:"p99_ns"`
	// Events is the arm's chaos episode log.
	Events []chaos.Event `json:"events"`
	// Series is the shard's sampled backlog trajectory (the evidence).
	Series []telemetry.Point `json:"series,omitempty"`
}

// AdaptiveAggregate echoes the shared configuration both arms ran under.
type AdaptiveAggregate struct {
	Ladder      []string      `json:"ladder"`
	StartScheme string        `json:"start_scheme"`
	Structure   string        `json:"structure"`
	Faults      []string      `json:"faults"`
	Workers     int           `json:"workers_per_shard"`
	Clients     int           `json:"clients"`
	Batch       int           `json:"batch"`
	KeyRange    int           `json:"key_range"`
	Duration    time.Duration `json:"duration_ns"`
	FaultAfter  time.Duration `json:"fault_after_ns"`
	Mix         Mix           `json:"mix"`
	Workload    string        `json:"workload"`
	Schedule    string        `json:"schedule"`
	Seed        uint64        `json:"seed"`
}

// AdaptiveResult is the experiment outcome: the static control, the
// adaptive arm, and the headline comparison.
type AdaptiveResult struct {
	Static   AdaptiveArm       `json:"static"`
	Adaptive AdaptiveArm       `json:"adaptive"`
	Agg      AdaptiveAggregate `json:"aggregate"`
	// Improved reports the headline: the adaptive arm's final audited
	// class is strictly better than the static control's.
	Improved bool `json:"improved"`
}

// runAdaptiveArm runs one fleet: a single gated shard on StartScheme,
// seeded closed-loop clients, the configured faults one-shot into the
// shard, a sampler feeding the online classifier throughout — and, for
// the adaptive arm, the controller deciding on it. The returned class
// is the arm's final audited class; conclusive reports whether it rests
// on real evidence (enough samples, or an OOM) rather than an empty
// window's default.
func runAdaptiveArm(cfg AdaptiveConfig, adaptive bool) (arm AdaptiveArm, class smr.RobustnessClass, conclusive bool, err error) {
	arm = AdaptiveArm{Arm: "static", StartScheme: cfg.StartScheme}
	if adaptive {
		arm.Arm = "adaptive"
	}
	// The migration grace scales with the window: a parked worker never
	// drains anyway, and every ms spent waiting is a ms the whole
	// single-shard fleet serves nothing but ErrShardClosed.
	grace := cfg.Duration / 16
	if grace < 10*time.Millisecond {
		grace = 10 * time.Millisecond
	}
	gate := sched.NewBreakpoints()
	st, err := store.New(store.Config{
		Shards: []store.ShardSpec{{
			Scheme:    cfg.StartScheme,
			Structure: cfg.Structure,
			Workers:   cfg.WorkersPerShard,
			Threshold: cfg.Threshold,
			Slots:     cfg.SlotsPerShard,
			Gate:      gate,
		}},
		KeyRange:     cfg.KeyRange,
		MigrateGrace: grace,
	})
	if err != nil {
		return arm, 0, false, err
	}
	defer st.Close()

	src, err := workload.New(workload.Config{
		Dist:     cfg.Workload,
		Schedule: cfg.Schedule,
		KeyRange: cfg.KeyRange,
		Mix:      cfg.Mix,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return arm, 0, false, err
	}
	if err := prefillHalf(st, cfg.KeyRange, cfg.Batch, cfg.Seed); err != nil {
		return arm, 0, false, err
	}

	startProps, err := all.Props(cfg.StartScheme)
	if err != nil {
		return arm, 0, false, err
	}
	budget := telemetry.Budget{Threads: cfg.WorkersPerShard, Threshold: cfg.Threshold}
	mon := telemetry.NewMonitor(telemetry.MonitorConfig{}, []telemetry.Domain{
		{Scheme: cfg.StartScheme, Declared: startProps.Robustness, Budget: budget},
	})
	sampler := telemetry.NewSampler(
		telemetry.Config{Interval: cfg.SampleInterval, Capacity: 4096, OnSample: mon.Observe},
		storeProbe(st))
	var ctl *adapt.Controller
	if adaptive {
		ctl, err = adapt.New(adapt.Config{
			Ladder:     cfg.Ladder,
			Interval:   cfg.DecideInterval,
			Hysteresis: cfg.Hysteresis,
		}, st, mon)
		if err != nil {
			return arm, 0, false, err
		}
	}

	target := &chaos.Target{Store: st, Gates: []*sched.Breakpoints{gate}, KeyRange: cfg.KeyRange}
	engine := chaos.NewEngine(target)
	for _, name := range cfg.Faults {
		if err := engine.Add(name, chaos.Params{Shard: 0}, chaos.OneShot(cfg.FaultAfter)); err != nil {
			return arm, 0, false, err
		}
	}

	sampler.Start()
	engine.Start()
	if ctl != nil {
		ctl.Start()
	}
	deadline := time.Now().Add(cfg.Duration)

	// Deadline watchdog, as in RunChaos: freeze the policy first (no
	// migration may race the evidence reads), snapshot the evidence, and
	// only then heal — a heal lets parked workers collapse the backlog,
	// which would contaminate the faulted window.
	var stats store.Stats
	var series []telemetry.Point
	var finalVerdict telemetry.Verdict
	healed := make(chan struct{})
	go func() {
		defer close(healed)
		time.Sleep(time.Until(deadline))
		if ctl != nil {
			ctl.Stop()
		}
		stats = st.Stats()
		series = sampler.Series(0).Points()
		finalVerdict = mon.Verdict(0)
		engine.Stop()
	}()
	ops, opErrs, lat, err := runTimedClients(st, src, cfg.Clients, cfg.Batch, deadline, nil)
	<-healed
	sampler.Stop()
	if err != nil {
		return arm, 0, false, err
	}
	if err := st.Close(); err != nil {
		return arm, 0, false, err
	}

	// The faulted "before" window: from the first successful injection
	// onward; the batch fit stops at a migration's counter reset on its
	// own, so it describes the pre-migration incarnation exactly.
	events := engine.Events()
	var faultAt time.Duration
	for _, ev := range events {
		if ev.Err == "" {
			faultAt = ev.At
			break
		}
	}
	faulted := telemetry.Audit(cfg.StartScheme, startProps.Robustness, series, faultAt, budget)
	faulted.Fit.Sanitize()

	arm.FinalScheme = stats.Shards[0].Scheme
	arm.FaultedAudited = faulted.Audited
	arm.FaultedGrowth = faulted.Fit.GrowthName
	arm.FaultedFit = faulted.Fit
	finalFit := finalVerdict.Fit
	finalFit.Sanitize()
	arm.FinalAudited = finalVerdict.Audited
	arm.FinalGrowth = finalFit.GrowthName
	arm.FinalFit = finalFit
	arm.Ops = ops
	arm.OpErrs = opErrs
	arm.OOMs = stats.Shards[0].OOMs
	arm.PeakRetired = stats.Shards[0].MaxRetired
	arm.P50 = lat.Percentile(0.50)
	arm.P99 = lat.Percentile(0.99)
	arm.Events = events
	arm.Series = series
	arm.Migrations = []adapt.Episode{}
	if ctl != nil {
		arm.Migrations = ctl.Episodes()
	}
	finalClass := finalVerdict.AuditedClass()
	finalConclusive := !finalVerdict.Inconclusive()
	if !finalConclusive {
		// A window with no real evidence (a migration landed just
		// before the deadline, or progress stalled entirely) must not
		// masquerade as a bounded verdict in the table or the headline.
		arm.FinalAudited = "inconclusive"
	}
	// Heap exhaustion outranks any fit: the backlog measurably ate the
	// heap. For an arm that never swapped incarnations the evidence
	// covers the whole run, so both windows collapse to not-robust.
	if stats.Shards[0].OOMs > 0 && stats.Shards[0].Epoch == 0 {
		arm.FaultedAudited = smr.NotRobust.String()
		arm.FaultedGrowth = telemetry.GrowthUnbounded.String()
		arm.FinalAudited = arm.FaultedAudited
		arm.FinalGrowth = arm.FaultedGrowth
		finalClass = smr.NotRobust
		finalConclusive = true
	}
	return arm, finalClass, finalConclusive, nil
}

// RunAdaptive runs the static control and the adaptive arm back to back
// on identical seeds and assembles the comparison.
func RunAdaptive(cfg AdaptiveConfig) (AdaptiveResult, error) {
	cfg.fill()
	// Validate the ladder once up front (both arms share it).
	for _, s := range cfg.Ladder {
		if _, err := all.Props(s); err != nil {
			return AdaptiveResult{}, err
		}
	}
	static, staticClass, staticOK, err := runAdaptiveArm(cfg, false)
	if err != nil {
		return AdaptiveResult{}, err
	}
	adaptiveArm, adaptiveClass, adaptiveOK, err := runAdaptiveArm(cfg, true)
	if err != nil {
		return AdaptiveResult{}, err
	}
	return AdaptiveResult{
		Static:   static,
		Adaptive: adaptiveArm,
		Agg: AdaptiveAggregate{
			Ladder:      cfg.Ladder,
			StartScheme: cfg.StartScheme,
			Structure:   cfg.Structure,
			Faults:      cfg.Faults,
			Workers:     cfg.WorkersPerShard,
			Clients:     cfg.Clients,
			Batch:       cfg.Batch,
			KeyRange:    cfg.KeyRange,
			Duration:    cfg.Duration,
			FaultAfter:  cfg.FaultAfter,
			Mix:         cfg.Mix,
			Workload:    cfg.Workload,
			Schedule:    cfg.Schedule,
			Seed:        cfg.Seed,
		},
		// The headline needs real evidence on both sides: a window too
		// thin to classify (migration just before the deadline, stalled
		// progress) must not default its way into an improvement claim.
		Improved: staticOK && adaptiveOK && adaptiveClass > staticClass,
	}, nil
}
