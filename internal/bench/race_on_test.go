//go:build race

package bench

// raceEnabled scales the chaos tests' traffic windows: under the race
// detector the simulator runs an order of magnitude slower, and the
// robustness audit needs a window with enough *work* in it to separate
// the classes.
const raceEnabled = true
