package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ds"
	"repro/internal/ds/registry"
	"repro/internal/hist"
	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/all"
	"repro/internal/workload"
)

// ThroughputConfig sizes a throughput run.
type ThroughputConfig struct {
	Threads      int
	OpsPerThread int
	KeyRange     int
	Mix          Mix
	Seed         uint64

	// Workload names the key distribution driving the run ("uniform",
	// "zipfian", "hotset", "shifting"); empty selects uniform.
	Workload string
	// Schedule names the op-mix schedule ("steady", "phased", "oversub");
	// empty selects steady around Mix.
	Schedule string
	// WarmupOpsPerThread is the untimed warmup run before measurement: 0
	// selects OpsPerThread/10, negative disables warmup entirely.
	WarmupOpsPerThread int
	// LatencySample times every n-th operation (default 5: sparse enough
	// that clock reads don't dominate a fast structure, and coprime to the
	// oversub schedule's yield period so post-yield ops aren't
	// systematically over-sampled).
	LatencySample int
}

// ThroughputRow is one measurement of the throughput experiment.
type ThroughputRow struct {
	Scheme    string `json:"scheme"`
	Structure string `json:"structure"`
	Threads   int    `json:"threads"`
	Mix       Mix    `json:"mix"`
	// Workload and Schedule name the key distribution and op-mix schedule
	// that drove the run.
	Workload string        `json:"workload"`
	Schedule string        `json:"schedule"`
	KeyRange int           `json:"key_range"`
	Ops      int           `json:"ops"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	// MopsPerSec is the headline number.
	MopsPerSec float64 `json:"mops_per_sec"`
	// P50 and P99 are operation latency percentiles over the sampled ops.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// PeakRetired is the largest retired backlog over the whole run
	// (prefill and warmup included — the backlog is cumulative state that
	// carries into the measured phase, so the whole-run peak is the honest
	// space cost accompanying the throughput).
	PeakRetired uint64 `json:"peak_retired"`
	// Restarts counts scheme rollbacks during the measured phase only (the
	// integration price of the optimistic schemes).
	Restarts uint64 `json:"restarts"`
}

// engine is one assembled throughput experiment: arena, scheme, structure
// and workload source, ready to run phases.
type engine struct {
	cfg   ThroughputConfig
	arena *mem.Arena
	s     smr.Scheme
	set   ds.Set
	src   *workload.Source
}

// newEngine resolves names and sizes the simulated heap. The heap is sized
// for the worst case: a non-robust scheme under oversubscription can delay
// reclamation for a whole scheduling quantum, and the leak baseline never
// reclaims at all — so the allocation upper bound (prefill + every op of
// warmup and measurement an insert) must fit.
func newEngine(scheme, structure string, cfg ThroughputConfig) (*engine, error) {
	info, err := registry.Get(structure)
	if err != nil {
		return nil, err
	}
	if info.Kind != registry.KindSet {
		return nil, fmt.Errorf("bench: throughput runs on set structures, %s is a %v", structure, info.Kind)
	}
	src, err := workload.New(workload.Config{
		Dist:     cfg.Workload,
		Schedule: cfg.Schedule,
		KeyRange: cfg.KeyRange,
		Mix:      cfg.Mix,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	slots := cfg.KeyRange + cfg.Threads*(cfg.OpsPerThread+warmupOps(cfg)) + 1024
	a := mem.NewArena(mem.Config{
		Slots:        slots,
		PayloadWords: info.PayloadWords,
		MetaWords:    smr.MetaWords,
		Threads:      cfg.Threads,
		Mode:         mem.Reuse,
	})
	s, err := all.New(scheme, a, cfg.Threads, 0)
	if err != nil {
		return nil, err
	}
	set, err := info.NewSet(s, ds.Options{})
	if err != nil {
		return nil, err
	}
	return &engine{cfg: cfg, arena: a, s: s, set: set, src: src}, nil
}

func warmupOps(cfg ThroughputConfig) int {
	switch {
	case cfg.WarmupOpsPerThread < 0:
		return 0
	case cfg.WarmupOpsPerThread == 0:
		return cfg.OpsPerThread / 10
	}
	return cfg.WarmupOpsPerThread
}

// prefill inserts random keys until the set holds about half the key range,
// so contains() hits about half the time.
func (e *engine) prefill() error {
	pre := workload.RNG(e.cfg.Seed ^ 0xf00d)
	for i := 0; i < e.cfg.KeyRange/2; i++ {
		if _, err := e.set.Insert(0, int64(pre.Next()%uint64(e.cfg.KeyRange))); err != nil {
			return err
		}
	}
	return nil
}

// runPhase drives ops operations per thread from src, one stream per
// thread. When lats is non-nil, thread tid records every sample-th
// operation's latency into lats[tid].
func (e *engine) runPhase(src *workload.Source, ops int, lats []hist.Latency) error {
	sample := e.cfg.LatencySample
	if sample <= 0 {
		sample = 5
	}
	var wg sync.WaitGroup
	errs := make([]error, e.cfg.Threads)
	for tid := 0; tid < e.cfg.Threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			stream := src.Thread(tid, ops)
			var lat *hist.Latency
			if lats != nil {
				lat = &lats[tid]
			}
			for i := 0; i < ops; i++ {
				op, key := stream.Next()
				timed := lat != nil && i%sample == 0
				var t0 time.Time
				if timed {
					t0 = time.Now()
				}
				var err error
				switch op {
				case workload.OpContains:
					_, err = e.set.Contains(tid, key)
				case workload.OpInsert:
					_, err = e.set.Insert(tid, key)
				default:
					_, err = e.set.Delete(tid, key)
				}
				if err != nil {
					errs[tid] = err
					return
				}
				if timed {
					lat.Record(time.Since(t0))
				}
			}
		}(tid)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// run executes warmup then the timed measurement phase and assembles the
// row.
func (e *engine) run(scheme, structure string) (ThroughputRow, error) {
	if err := e.prefill(); err != nil {
		return ThroughputRow{}, err
	}
	if w := warmupOps(e.cfg); w > 0 {
		// Warmup draws from a derived steady source so the measured phase
		// sees the schedule's full trajectory from its first operation.
		if err := e.runPhase(e.src.Steady(e.cfg.Seed^0xbadcafe), w, nil); err != nil {
			return ThroughputRow{}, err
		}
	}
	lats := make([]hist.Latency, e.cfg.Threads)
	restartsBefore := e.s.Stats().Snapshot().Restarts
	start := time.Now()
	if err := e.runPhase(e.src, e.cfg.OpsPerThread, lats); err != nil {
		return ThroughputRow{}, err
	}
	elapsed := time.Since(start)
	var lat hist.Latency
	for i := range lats {
		lat.Merge(&lats[i])
	}
	ops := e.cfg.Threads * e.cfg.OpsPerThread
	srcCfg := e.src.Config()
	return ThroughputRow{
		Scheme:      scheme,
		Structure:   structure,
		Threads:     e.cfg.Threads,
		Mix:         srcCfg.Mix,
		Workload:    srcCfg.Dist,
		Schedule:    srcCfg.Schedule,
		KeyRange:    e.cfg.KeyRange,
		Ops:         ops,
		Elapsed:     elapsed,
		MopsPerSec:  float64(ops) / elapsed.Seconds() / 1e6,
		P50:         lat.Percentile(0.50),
		P99:         lat.Percentile(0.99),
		PeakRetired: e.arena.Stats().MaxRetired(),
		Restarts:    e.s.Stats().Snapshot().Restarts - restartsBefore,
	}, nil
}

// Throughput runs the workload-driven concurrent experiment for one
// (scheme, structure) pair and reports the rate with its latency
// percentiles and space cost.
func Throughput(scheme, structure string, cfg ThroughputConfig) (ThroughputRow, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 2
	}
	if cfg.OpsPerThread <= 0 {
		cfg.OpsPerThread = 20000
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 1024
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = MixBalanced
	}
	e, err := newEngine(scheme, structure, cfg)
	if err != nil {
		return ThroughputRow{}, err
	}
	return e.run(scheme, structure)
}
