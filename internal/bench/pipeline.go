package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/exec"
	"repro/internal/hist"
	"repro/internal/obs/rec"
	"repro/internal/sched"
	"repro/internal/smr/all"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// PipelineConfig sizes EXP-PIPELINE: the blocking-loop vs pipelined
// scatter-gather A/B over a multi-key/range request mix, plus the
// partial-failure campaign that stalls one shard under chaos and checks
// the executor degrades it instead of the whole fan-out.
type PipelineConfig struct {
	// Shards is the shard count; 0 selects 4.
	Shards int
	// Schemes assigns reclamation schemes shard-by-shard (cycled); empty
	// selects ["ebr"].
	Schemes []string
	// Structure is the per-shard set structure; empty selects "michael"
	// (ordered iteration lets range legs early-stop at the upper bound).
	Structure string
	// WorkersPerShard sizes shard worker pools; 0 selects 1, so the
	// campaign's stall fully parks its shard — the case where partial
	// results and saturation shedding must carry the service.
	WorkersPerShard int
	// Clients is the closed-loop client count; 0 selects Shards.
	Clients int
	// Duration is each A/B arm's traffic window; 0 selects 1s.
	Duration time.Duration
	// ChaosDuration is the campaign window; 0 selects Duration.
	ChaosDuration time.Duration
	// Window is the pipelined arm's per-client in-flight budget; 0
	// selects 8. The blocking arm is Window = 1 by construction.
	Window int
	// KeyRange is the key universe; 0 selects 4096.
	KeyRange int
	// ReqMix shapes the request stream; zero selects ReqMixFanout (every
	// request scatters — the shape the executor exists for).
	ReqMix workload.ReqMix
	// Dist names the key distribution; empty selects "uniform".
	Dist string
	// MultiSize is the key count per multi-key request; 0 selects 8.
	MultiSize int
	// QueueDepth and DispatchersPerShard size the executor; 0 selects the
	// executor's defaults (the campaign narrows QueueDepth to 8 so
	// admission pressure is visible inside a short window).
	QueueDepth          int
	DispatchersPerShard int
	// LegTimeout is the campaign's leg completion budget; 0 selects 25ms.
	// The healthy A/B arms run with the executor default.
	LegTimeout time.Duration
	// FaultShard is the campaign's stalled shard; 0 selects 1.
	FaultShard int
	// Seed makes every request stream deterministic.
	Seed uint64
}

func (cfg *PipelineConfig) fill() {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = []string{"ebr"}
	}
	if cfg.Structure == "" {
		cfg.Structure = "michael"
	}
	if cfg.WorkersPerShard <= 0 {
		cfg.WorkersPerShard = 1
	}
	if cfg.Clients <= 0 {
		cfg.Clients = cfg.Shards
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.ChaosDuration <= 0 {
		cfg.ChaosDuration = cfg.Duration
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 4096
	}
	if cfg.ReqMix == (workload.ReqMix{}) {
		cfg.ReqMix = workload.ReqMixFanout
	}
	if cfg.Dist == "" {
		cfg.Dist = "uniform"
	}
	if cfg.MultiSize <= 0 {
		cfg.MultiSize = 8
	}
	if cfg.LegTimeout <= 0 {
		cfg.LegTimeout = 25 * time.Millisecond
	}
	if cfg.FaultShard <= 0 {
		cfg.FaultShard = 1
	}
}

// PipelineArmRow is one A/B arm's measurement. Requests are whole
// cross-shard requests (a multiget, a range scan); P50/P99 are
// request completion latencies — submit to merged result.
type PipelineArmRow struct {
	Arm        string        `json:"arm"`
	Requests   uint64        `json:"requests"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	ReqPerSec  float64       `json:"req_per_sec"`
	P50        time.Duration `json:"p50_ns"`
	P99        time.Duration `json:"p99_ns"`
	Partial    uint64        `json:"partial,omitempty"`
	Sheds      uint64        `json:"sheds,omitempty"`
	Timeouts   uint64        `json:"timeouts,omitempty"`
	ReqPerSecX float64       `json:"speedup_vs_blocking,omitempty"`
}

// PipelineChaosRow is the partial-failure campaign's measurement: the
// fan-out picture while one shard is chaos-stalled, and whether the
// failure chain closed (fault fired → typed partial results → heal →
// clean request).
type PipelineChaosRow struct {
	FaultShard int           `json:"fault_shard"`
	Window     time.Duration `json:"window_ns"`
	Requests   uint64        `json:"requests"`
	Partial    uint64        `json:"partial"`
	Sheds      uint64        `json:"sheds"`
	Timeouts   uint64        `json:"timeouts"`
	// DegradedSeen reports the stalled shard observed effectively
	// degraded during the window — the verdict loop flipping it, or its
	// stalled-call budget saturating (the fully-parked case).
	DegradedSeen bool `json:"degraded_seen"`
	// HealthyP50/P99 are completion latencies of the *non-partial*
	// requests in the window — the tail the surviving shards serve while
	// one shard is parked.
	HealthyP50 time.Duration `json:"healthy_p50_ns"`
	HealthyP99 time.Duration `json:"healthy_p99_ns"`
	FaultFired bool          `json:"fault_fired"`
	FaultHeals bool          `json:"fault_healed"`
	// CleanAfterHeal is the chain's last link: a full-width request after
	// heal with no partial errors.
	CleanAfterHeal bool `json:"clean_after_heal"`
	// ScatterEvents/MergeEvents/ShedEvents count the exec events on the
	// campaign's flight recorder.
	ScatterEvents int `json:"scatter_events"`
	MergeEvents   int `json:"merge_events"`
	ShedEvents    int `json:"shed_events"`
}

// PipelineResult is the full EXP-PIPELINE outcome.
type PipelineResult struct {
	Shards    int              `json:"shards"`
	Workers   int              `json:"workers_per_shard"`
	Clients   int              `json:"clients"`
	Window    int              `json:"window"`
	Structure string           `json:"structure"`
	ReqMix    workload.ReqMix  `json:"req_mix"`
	Blocking  PipelineArmRow   `json:"blocking"`
	Pipelined PipelineArmRow   `json:"pipelined"`
	Chaos     PipelineChaosRow `json:"chaos"`
	// PipelinedBeatsBlocking and PartialChainsClosed are the experiment's
	// two acceptance booleans (the CI smoke greps them).
	PipelinedBeatsBlocking bool `json:"pipelined_beats_blocking"`
	PartialChainsClosed    bool `json:"partial_chains_closed"`
}

// newPipelineStore builds the experiment store (gated when the campaign
// needs chaos hooks) and prefills it to half occupancy.
func newPipelineStore(cfg PipelineConfig, gated bool, recorder *rec.Recorder) (*store.Store, []*sched.Breakpoints, error) {
	specs := make([]store.ShardSpec, cfg.Shards)
	var gates []*sched.Breakpoints
	if gated {
		gates = make([]*sched.Breakpoints, cfg.Shards)
	}
	for i := range specs {
		specs[i] = store.ShardSpec{
			Scheme:    cfg.Schemes[i%len(cfg.Schemes)],
			Structure: cfg.Structure,
			Workers:   cfg.WorkersPerShard,
		}
		if gated {
			gates[i] = sched.NewBreakpoints()
			specs[i].Gate = gates[i]
		}
	}
	st, err := store.New(store.Config{Shards: specs, KeyRange: cfg.KeyRange, Recorder: recorder})
	if err != nil {
		return nil, nil, err
	}
	if err := prefillHalf(st, cfg.KeyRange, 64, cfg.Seed); err != nil {
		st.Close()
		return nil, nil, err
	}
	return st, gates, nil
}

func (cfg PipelineConfig) reqSource() (*workload.ReqSource, error) {
	return workload.NewReqSource(workload.ReqConfig{
		Dist:      cfg.Dist,
		KeyRange:  cfg.KeyRange,
		Mix:       cfg.ReqMix,
		MultiSize: cfg.MultiSize,
		Seed:      cfg.Seed,
	})
}

// runBlockingArm is the baseline: each client executes one request at a
// time against the store's native interface — a blocking Do for
// point/multi requests, a sequential shard-by-shard loop for ranges —
// and waits for the merged answer before drawing the next request.
func runBlockingArm(st *store.Store, src *workload.ReqSource, cfg PipelineConfig, deadline time.Time) (uint64, hist.Latency, error) {
	var wg sync.WaitGroup
	reqs := make([]uint64, cfg.Clients)
	lats := make([]hist.Latency, cfg.Clients)
	fail := make([]error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stream := src.Thread(c, 1<<20)
			for time.Now().Before(deadline) {
				req := stream.Next()
				t0 := time.Now()
				if err := blockingExecute(st, req); err != nil {
					fail[c] = err
					return
				}
				lats[c].Record(time.Since(t0))
				reqs[c]++
			}
		}(c)
	}
	wg.Wait()
	var total uint64
	var lat hist.Latency
	for c := 0; c < cfg.Clients; c++ {
		if fail[c] != nil {
			return 0, lat, fail[c]
		}
		total += reqs[c]
		lat.Merge(&lats[c])
	}
	return total, lat, nil
}

// blockingExecute serves one request the pre-exec way. Per-op errors are
// service behaviour (absorbed); only store-level failures propagate.
func blockingExecute(st *store.Store, req workload.Req) error {
	switch req.Kind {
	case workload.ReqPoint, workload.ReqMultiGet, workload.ReqMultiInsert, workload.ReqMultiDelete:
		ops := make([]store.Op, len(req.Keys))
		for i, k := range req.Keys {
			ops[i] = store.Op{Kind: workload.OpContains, Key: k}
			switch req.Kind {
			case workload.ReqPoint:
				ops[i].Kind = req.Ops[i]
			case workload.ReqMultiInsert:
				ops[i].Kind = workload.OpInsert
			case workload.ReqMultiDelete:
				ops[i].Kind = workload.OpDelete
			}
		}
		_, err := st.Do(ops)
		return err
	case workload.ReqRangeScan, workload.ReqRangeCount:
		for s := 0; s < st.Shards(); s++ {
			if _, _, err := st.ScanShard(s, req.Lo, req.Hi, 0, req.Kind == workload.ReqRangeCount); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("bench: unknown request kind %v", req.Kind)
	}
}

// runPipelinedArm drives the executor with a per-client window of
// asynchronous handles: submit until the window is full, then retire the
// oldest — the pipelining the exec layer buys. Returns requests
// completed, partial-result count, completion latencies for all
// requests, and for the fully-successful ("healthy") ones alone.
func runPipelinedArm(ex *exec.Executor, src *workload.ReqSource, cfg PipelineConfig, deadline time.Time) (uint64, uint64, hist.Latency, hist.Latency, error) {
	var wg sync.WaitGroup
	reqs := make([]uint64, cfg.Clients)
	partials := make([]uint64, cfg.Clients)
	lats := make([]hist.Latency, cfg.Clients)
	healthy := make([]hist.Latency, cfg.Clients)
	fail := make([]error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stream := src.Thread(c, 1<<20)
			window := make([]*exec.Handle, 0, cfg.Window)
			retire := func(h *exec.Handle) {
				res := h.Wait()
				lats[c].Record(res.Elapsed)
				reqs[c]++
				if res.Partial() {
					partials[c]++
				} else {
					healthy[c].Record(res.Elapsed)
				}
			}
			for time.Now().Before(deadline) {
				h, err := ex.Submit(stream.Next())
				if err != nil {
					fail[c] = err
					return
				}
				window = append(window, h)
				if len(window) == cfg.Window {
					retire(window[0])
					window = append(window[:0], window[1:]...)
				}
			}
			for _, h := range window {
				retire(h)
			}
		}(c)
	}
	wg.Wait()
	var total, partial uint64
	var lat, healthyLat hist.Latency
	for c := 0; c < cfg.Clients; c++ {
		if fail[c] != nil {
			return 0, 0, lat, healthyLat, fail[c]
		}
		total += reqs[c]
		partial += partials[c]
		lat.Merge(&lats[c])
		healthyLat.Merge(&healthy[c])
	}
	return total, partial, lat, healthyLat, nil
}

// RunPipeline runs EXP-PIPELINE: the blocking baseline arm, the
// pipelined arm on an identical fresh store, then the partial-failure
// campaign under a chaos stall with the verdict-driven admission loop
// live. Each phase uses the same seed, so the arms draw identical
// request streams.
func RunPipeline(cfg PipelineConfig) (PipelineResult, error) {
	cfg.fill()
	res := PipelineResult{
		Shards:    cfg.Shards,
		Workers:   cfg.WorkersPerShard,
		Clients:   cfg.Clients,
		Window:    cfg.Window,
		Structure: cfg.Structure,
		ReqMix:    cfg.ReqMix,
	}

	// Arm A: blocking loop over the store's native interface.
	{
		st, _, err := newPipelineStore(cfg, false, nil)
		if err != nil {
			return res, err
		}
		src, err := cfg.reqSource()
		if err != nil {
			st.Close()
			return res, err
		}
		start := time.Now()
		n, lat, err := runBlockingArm(st, src, cfg, start.Add(cfg.Duration))
		elapsed := time.Since(start)
		if cerr := st.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return res, err
		}
		res.Blocking = PipelineArmRow{
			Arm: "blocking", Requests: n, Elapsed: elapsed,
			ReqPerSec: float64(n) / elapsed.Seconds(),
			P50:       lat.Percentile(0.50), P99: lat.Percentile(0.99),
		}
	}

	// Arm B: pipelined scatter-gather on an identical fresh store.
	{
		st, _, err := newPipelineStore(cfg, false, nil)
		if err != nil {
			return res, err
		}
		// The healthy arm disables the leg budget: there is no fault to
		// bound, and the budget's watchdog goroutine would tax every leg.
		// The campaign re-enables it and pays for it there.
		ex, err := exec.New(st, exec.Config{
			QueueDepth:          cfg.QueueDepth,
			DispatchersPerShard: cfg.DispatchersPerShard,
			LegTimeout:          -1,
		})
		if err != nil {
			st.Close()
			return res, err
		}
		src, err := cfg.reqSource()
		if err != nil {
			ex.Close()
			st.Close()
			return res, err
		}
		start := time.Now()
		n, partial, lat, _, err := runPipelinedArm(ex, src, cfg, start.Add(cfg.Duration))
		elapsed := time.Since(start)
		stats := ex.Stats()
		if cerr := ex.Close(); err == nil {
			err = cerr
		}
		if cerr := st.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return res, err
		}
		res.Pipelined = PipelineArmRow{
			Arm: "pipelined", Requests: n, Elapsed: elapsed,
			ReqPerSec: float64(n) / elapsed.Seconds(),
			P50:       lat.Percentile(0.50), P99: lat.Percentile(0.99),
			Partial:   partial, Sheds: stats.Sheds, Timeouts: stats.Timeouts,
		}
		if res.Blocking.ReqPerSec > 0 {
			res.Pipelined.ReqPerSecX = res.Pipelined.ReqPerSec / res.Blocking.ReqPerSec
		}
	}
	res.PipelinedBeatsBlocking = res.Pipelined.ReqPerSec > res.Blocking.ReqPerSec

	// Campaign: stall one shard under live traffic with the full
	// admission loop (sampler → monitor → verdict → degrade) attached.
	chaosRow, err := runPipelineChaos(cfg)
	if err != nil {
		return res, err
	}
	res.Chaos = chaosRow
	res.PartialChainsClosed = chaosRow.FaultFired && chaosRow.Partial > 0 &&
		chaosRow.FaultHeals && chaosRow.CleanAfterHeal
	return res, nil
}

// runPipelineChaos is the partial-failure campaign: a gated store, the
// verdict-driven admission loop live, one shard chaos-stalled for the
// window, pipelined traffic throughout, then heal and a clean full-width
// probe.
func runPipelineChaos(cfg PipelineConfig) (PipelineChaosRow, error) {
	row := PipelineChaosRow{FaultShard: cfg.FaultShard, Window: cfg.ChaosDuration}
	recorder := rec.NewRecorder(nil, 0)
	st, gates, err := newPipelineStore(cfg, true, recorder)
	if err != nil {
		return row, err
	}
	defer st.Close()

	// The admission loop: gauge-tap sampler → online monitor →
	// VerdictAdmission, the same classifier the adaptive controller
	// trusts.
	domains := make([]telemetry.Domain, st.Shards())
	for s := range domains {
		spec, err := st.Spec(s)
		if err != nil {
			return row, err
		}
		props, err := all.Props(spec.Scheme)
		if err != nil {
			return row, err
		}
		domains[s] = telemetry.Domain{
			Scheme:   spec.Scheme,
			Declared: props.Robustness,
			Budget:   telemetry.Budget{Threads: spec.Workers, Threshold: spec.Threshold},
		}
	}
	mon := telemetry.NewMonitor(telemetry.MonitorConfig{}, domains)
	sampler := telemetry.NewSampler(
		telemetry.Config{Interval: sampleEvery(cfg.ChaosDuration), Capacity: 4096,
			OnSample: mon.Observe, Recorder: recorder},
		storeProbe(st))
	sampler.Start()
	defer sampler.Stop()

	queueDepth := cfg.QueueDepth
	if queueDepth <= 0 {
		queueDepth = 8 // narrow enough that a stalled shard's pressure shows
	}
	ex, err := exec.New(st, exec.Config{
		QueueDepth:          queueDepth,
		DispatchersPerShard: cfg.DispatchersPerShard,
		LegTimeout:          cfg.LegTimeout,
		Admission:           exec.VerdictAdmission{Mon: mon},
		Recorder:            recorder,
	})
	if err != nil {
		return row, err
	}
	defer ex.Close()

	target := &chaos.Target{Store: st, Gates: gates, KeyRange: cfg.KeyRange}
	engine := chaos.NewEngine(target)
	engine.SetObs(nil, recorder)
	if err := engine.Add("stall", chaos.Params{Shard: cfg.FaultShard}, chaos.OneShot(0)); err != nil {
		return row, err
	}
	engine.Start()

	src, err := cfg.reqSource()
	if err != nil {
		engine.Stop()
		return row, err
	}
	deadline := time.Now().Add(cfg.ChaosDuration)
	degraded := make(chan bool, 1)
	go func() {
		// Watch for the verdict loop flipping the stalled shard while
		// traffic runs; one observation is enough.
		for time.Now().Before(deadline) {
			if ex.Degraded(cfg.FaultShard) {
				degraded <- true
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		degraded <- false
	}()
	n, partial, _, healthyLat, err := runPipelinedArm(ex, src, cfg, deadline)
	row.DegradedSeen = <-degraded
	if err != nil {
		engine.Stop()
		return row, err
	}
	stats := ex.Stats()
	row.Requests = n
	row.Partial = partial
	row.Sheds = stats.Sheds
	row.Timeouts = stats.Timeouts
	row.HealthyP50 = healthyLat.Percentile(0.50)
	row.HealthyP99 = healthyLat.Percentile(0.99)

	for _, ev := range engine.Events() {
		if ev.Fault == "stall" {
			row.FaultFired = ev.Err == ""
		}
	}
	// Heal (Stop releases the held one-shot), then close the chain with a
	// full-width probe: every shard answers, no partial errors.
	engine.Stop()
	for _, ev := range engine.Events() {
		if ev.Fault == "stall" && ev.Healed > 0 {
			row.FaultHeals = true
		}
	}
	cleanDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(cleanDeadline) {
		h, err := ex.RangeCount(0, int64(cfg.KeyRange))
		if err != nil {
			return row, err
		}
		if !h.Wait().Partial() {
			row.CleanAfterHeal = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	for _, ev := range recorder.Snapshot() {
		switch ev.Kind {
		case rec.KindExecScatter:
			row.ScatterEvents++
		case rec.KindExecMerge:
			row.MergeEvents++
		case rec.KindExecShed:
			row.ShedEvents++
		}
	}
	return row, nil
}
