package bench

import (
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/ds"
	"repro/internal/exec"
	"repro/internal/hist"
	"repro/internal/obs/rec"
	"repro/internal/resil"
	"repro/internal/workload"
)

// ResilConfig sizes EXP-RESIL: the naive vs resilient goodput A/B under
// staggered shard faults, the hedge tail-latency A/B under a one-slow-
// worker fault, and the retry-amplification audit — the three gates the
// resilience layer must clear.
type ResilConfig struct {
	// Shards is the shard count; 0 selects 4.
	Shards int
	// Schemes assigns reclamation schemes shard-by-shard (cycled); empty
	// selects ["ebr"].
	Schemes []string
	// Structure is the per-shard set structure; empty selects "michael".
	Structure string
	// Clients is the open-loop client count of the goodput phase; 0
	// selects 4. Clients are *paced*, not closed-loop: each submits on a
	// fixed schedule regardless of completion, so a slow arm cannot shed
	// offered load by being slow — the property goodput comparisons need.
	Clients int
	// Pace is the per-client submission interval; 0 selects 500µs.
	Pace time.Duration
	// Duration is each goodput arm's traffic window; 0 selects 800ms.
	Duration time.Duration
	// KeyRange is the key universe; 0 selects 4096.
	KeyRange int
	// ReqMix shapes the request stream; zero selects ReqMixFanout.
	ReqMix workload.ReqMix
	// MultiSize is the key count per multi-key request; 0 selects 8.
	MultiSize int
	// LegTimeout is the goodput phase's leg completion budget; 0 selects
	// 6ms. Both arms run it — the naive arm sees the same typed failures,
	// it just never retries them.
	LegTimeout time.Duration
	// MaxAttempts / RetryBase / RetryCap / RetryBudget shape the
	// resilient arm's retry policy; 0 selects 3, 24ms, 48ms, 0.25. The
	// backoff is sized so the second retry of a request that failed at
	// any point inside a fault hold lands after the heal.
	MaxAttempts int
	RetryBase   time.Duration
	RetryCap    time.Duration
	RetryBudget float64
	// StallShard and ReleaseShard take the goodput phase's staggered
	// periodic faults (a worker-parking stall and a delayed-release
	// storm); 0 selects shards 1 and 2.
	StallShard   int
	ReleaseShard int
	// FaultPeriod and FaultHold pace the goodput faults; 0 selects 150ms
	// periods holding 36ms, staggered half a period apart.
	FaultPeriod time.Duration
	FaultHold   time.Duration

	// HedgeDuration is each hedge arm's traffic window; 0 selects 400ms.
	HedgeDuration time.Duration
	// HedgeClients and HedgePace pace the hedge phase; 0 selects 2
	// clients at 1ms — few enough requests that the per-pulse victims
	// clear the p99 mass.
	HedgeClients int
	HedgePace    time.Duration
	// HedgeWorkers sizes the hedge phase's shard pools; 0 selects 2: the
	// pulse parks one worker mid-call and the hedge's duplicate call must
	// have a surviving worker to land on.
	HedgeWorkers int
	// HedgeHold and HedgeGap shape the park pulses; 0 selects 4ms / 3ms.
	HedgeHold time.Duration
	HedgeGap  time.Duration
	// HedgeFaultShard is the pulsed shard; 0 selects 1.
	HedgeFaultShard int

	// Seed makes every request stream deterministic.
	Seed uint64
}

func (cfg *ResilConfig) fill() {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = []string{"ebr"}
	}
	if cfg.Structure == "" {
		cfg.Structure = "michael"
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Pace <= 0 {
		cfg.Pace = 500 * time.Microsecond
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 800 * time.Millisecond
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 4096
	}
	if cfg.ReqMix == (workload.ReqMix{}) {
		cfg.ReqMix = workload.ReqMixFanout
	}
	if cfg.MultiSize <= 0 {
		cfg.MultiSize = 8
	}
	if cfg.LegTimeout <= 0 {
		cfg.LegTimeout = 6 * time.Millisecond
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 24 * time.Millisecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 48 * time.Millisecond
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 0.25
	}
	if cfg.StallShard <= 0 {
		cfg.StallShard = 1
	}
	if cfg.ReleaseShard <= 0 {
		cfg.ReleaseShard = 2
	}
	if cfg.FaultPeriod <= 0 {
		cfg.FaultPeriod = 150 * time.Millisecond
	}
	if cfg.FaultHold <= 0 {
		cfg.FaultHold = 36 * time.Millisecond
	}
	if cfg.HedgeDuration <= 0 {
		cfg.HedgeDuration = 400 * time.Millisecond
	}
	if cfg.HedgeClients <= 0 {
		cfg.HedgeClients = 2
	}
	if cfg.HedgePace <= 0 {
		cfg.HedgePace = time.Millisecond
	}
	if cfg.HedgeWorkers <= 0 {
		cfg.HedgeWorkers = 2
	}
	if cfg.HedgeHold <= 0 {
		cfg.HedgeHold = 4 * time.Millisecond
	}
	if cfg.HedgeGap <= 0 {
		cfg.HedgeGap = 3 * time.Millisecond
	}
	if cfg.HedgeFaultShard <= 0 {
		cfg.HedgeFaultShard = 1
	}
}

// ResilArmRow is one goodput arm's measurement. Clean counts requests
// that completed with no per-shard error; the Window* pair restricts the
// ledger to requests *submitted while a fault was held* — the window the
// goodput gate compares.
type ResilArmRow struct {
	Arm      string        `json:"arm"`
	Requests uint64        `json:"requests"`
	Clean    uint64        `json:"clean"`
	P50      time.Duration `json:"p50_ns"`
	P99      time.Duration `json:"p99_ns"`

	WindowRequests uint64 `json:"window_requests"`
	WindowClean    uint64 `json:"window_clean"`

	Sheds    uint64 `json:"sheds"`
	Timeouts uint64 `json:"timeouts"`
	// The resilient arm's retry ledger (zero on the naive arm).
	Retries         uint64  `json:"retries,omitempty"`
	Recovered       uint64  `json:"recovered,omitempty"`
	BudgetExhausted uint64  `json:"budget_exhausted,omitempty"`
	Amplification   float64 `json:"amplification,omitempty"`
}

// ResilHedgeRow is one hedge arm's measurement: the request latency
// distribution under the park pulses, and (hedged arm only) the hedge
// race ledger.
type ResilHedgeRow struct {
	Arm        string        `json:"arm"`
	Requests   uint64        `json:"requests"`
	Pulses     int           `json:"pulses"`
	P50        time.Duration `json:"p50_ns"`
	P99        time.Duration `json:"p99_ns"`
	Hedges     uint64        `json:"hedges,omitempty"`
	HedgeWins  uint64        `json:"hedge_wins,omitempty"`
	HedgeWaste uint64        `json:"hedge_waste,omitempty"`
}

// ResilResult is the full EXP-RESIL outcome.
type ResilResult struct {
	Shards  int             `json:"shards"`
	Clients int             `json:"clients"`
	ReqMix  workload.ReqMix `json:"req_mix"`

	Naive     ResilArmRow `json:"naive"`
	Resilient ResilArmRow `json:"resilient"`
	// GoodputX is the resilient arm's fault-window clean-request count
	// over the naive arm's.
	GoodputX float64 `json:"goodput_x"`

	HedgeBase ResilHedgeRow `json:"hedge_base"`
	Hedged    ResilHedgeRow `json:"hedged"`
	// HedgeP99X is the hedged arm's p99 over the unhedged arm's.
	HedgeP99X float64 `json:"hedge_p99_x"`

	// The experiment's three acceptance booleans (the CI smoke greps
	// them): retries recover fault-window goodput, hedges bound the
	// fan-out tail, and the retry budget bounds load amplification.
	GoodputRecovered     bool `json:"goodput_recovered"`
	HedgeBoundsTail      bool `json:"hedge_bounds_tail"`
	AmplificationBounded bool `json:"amplification_bounded"`
}

// resilDoer is one arm's request path: submit, block, merged result.
type resilDoer func(req workload.Req) (*exec.Result, error)

// resilSample is one completed request: when it was submitted (shared
// run clock), whether it came back clean, and how long it took.
type resilSample struct {
	at    time.Duration
	clean bool
	lat   time.Duration
}

// runPacedClients drives the open-loop offered schedule: every client
// submits one request per pace tick — each served on its own goroutine,
// since a resilient do blocks through retries — and the offered schedule
// never slows down because completions lag. Samples are stamped with the
// shared clock so they can be joined against the fault episodes.
func runPacedClients(do resilDoer, src *workload.ReqSource, clients int, pace, dur time.Duration, clock *rec.Clock) ([]resilSample, error) {
	var (
		mu      sync.Mutex
		samples []resilSample
		firstEr error
	)
	var wg, inflight sync.WaitGroup
	deadline := time.Now().Add(dur)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stream := src.Thread(c, 1<<20)
			next := time.Now()
			for time.Now().Before(deadline) {
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				next = next.Add(pace)
				req := stream.Next()
				at := clock.Now()
				inflight.Add(1)
				go func() {
					defer inflight.Done()
					t0 := time.Now()
					res, err := do(req)
					lat := time.Since(t0)
					mu.Lock()
					defer mu.Unlock()
					if err != nil {
						if firstEr == nil {
							firstEr = err
						}
						return
					}
					samples = append(samples, resilSample{at: at, clean: !res.Partial(), lat: lat})
				}()
			}
		}(c)
	}
	wg.Wait()
	inflight.Wait()
	return samples, firstEr
}

// foldSamples aggregates one arm's samples into its row, classifying
// each against the fault episodes: a sample submitted inside a held
// episode counts toward the fault-window ledger.
func foldSamples(row *ResilArmRow, samples []resilSample, events []chaos.Event, hold time.Duration) {
	inWindow := func(at time.Duration) bool {
		for _, ev := range events {
			if ev.Err != "" {
				continue
			}
			end := ev.Healed
			if end <= 0 {
				end = ev.At + hold
			}
			if at >= ev.At && at <= end {
				return true
			}
		}
		return false
	}
	var lat hist.Latency
	for _, s := range samples {
		row.Requests++
		lat.Record(s.lat)
		if s.clean {
			row.Clean++
		}
		if inWindow(s.at) {
			row.WindowRequests++
			if s.clean {
				row.WindowClean++
			}
		}
	}
	row.P50 = lat.Percentile(0.50)
	row.P99 = lat.Percentile(0.99)
}

// resilReqSource builds the phase's deterministic request stream.
func (cfg ResilConfig) reqSource() (*workload.ReqSource, error) {
	return workload.NewReqSource(workload.ReqConfig{
		Dist:      "uniform",
		KeyRange:  cfg.KeyRange,
		Mix:       cfg.ReqMix,
		MultiSize: cfg.MultiSize,
		Seed:      cfg.Seed,
	})
}

// runResilGoodputArm runs one goodput arm: a gated store under the two
// staggered periodic faults, paced open-loop traffic, and either the
// bare executor (naive) or the retrying client (resilient) serving it.
func runResilGoodputArm(cfg ResilConfig, resilient bool) (ResilArmRow, error) {
	arm := "naive"
	if resilient {
		arm = "resilient"
	}
	row := ResilArmRow{Arm: arm}

	recorder := rec.NewRecorder(nil, 0)
	clock := rec.NewClock()
	pcfg := PipelineConfig{
		Shards: cfg.Shards, Schemes: cfg.Schemes, Structure: cfg.Structure,
		WorkersPerShard: 1, KeyRange: cfg.KeyRange, Seed: cfg.Seed,
	}
	st, gates, err := newPipelineStore(pcfg, true, recorder)
	if err != nil {
		return row, err
	}
	defer st.Close()

	execCfg := exec.Config{LegTimeout: cfg.LegTimeout, Recorder: recorder}
	var do resilDoer
	var client *resil.Client
	if resilient {
		client, err = resil.New(st, execCfg, resil.Config{
			MaxAttempts: cfg.MaxAttempts,
			RetryBase:   cfg.RetryBase,
			RetryCap:    cfg.RetryCap,
			RetryBudget: cfg.RetryBudget,
			BudgetBurst: 512,
			Seed:        cfg.Seed,
			Clock:       clock,
			Recorder:    recorder,
		})
		if err != nil {
			return row, err
		}
		defer client.Close()
		do = client.Do
	} else {
		ex, err := exec.New(st, execCfg)
		if err != nil {
			return row, err
		}
		defer ex.Close()
		do = func(req workload.Req) (*exec.Result, error) {
			h, err := ex.Submit(req)
			if err != nil {
				return nil, err
			}
			return h.Wait(), nil
		}
	}

	// Two staggered periodic faults: the stall parks the victim shard's
	// only worker for each hold; the delayed-release pulse adds a retire
	// storm on another shard half a period out of phase, so the fault
	// surface moves under the retry policy instead of sitting still.
	engine := chaos.NewEngine(&chaos.Target{Store: st, Gates: gates, KeyRange: cfg.KeyRange})
	engine.SetObs(clock, recorder)
	stagger := cfg.FaultPeriod / 2
	if err := engine.Add("stall", chaos.Params{Shard: cfg.StallShard},
		chaos.Periodic(30*time.Millisecond, cfg.FaultPeriod, cfg.FaultHold)); err != nil {
		return row, err
	}
	if err := engine.Add("delayed-release", chaos.Params{Shard: cfg.ReleaseShard},
		chaos.Periodic(30*time.Millisecond+stagger, cfg.FaultPeriod, cfg.FaultHold)); err != nil {
		return row, err
	}
	engine.Start()

	src, err := cfg.reqSource()
	if err != nil {
		engine.Stop()
		return row, err
	}
	samples, err := runPacedClients(do, src, cfg.Clients, cfg.Pace, cfg.Duration, clock)
	engine.Stop()
	if err != nil {
		return row, err
	}
	foldSamples(&row, samples, engine.Events(), cfg.FaultHold)

	if resilient {
		stats := client.Stats()
		row.Retries = stats.Retries
		row.Recovered = stats.Recovered
		row.BudgetExhausted = stats.BudgetExhausted
		row.Amplification = stats.Amplification()
		es := client.Executor().Stats()
		row.Sheds, row.Timeouts = es.Sheds, es.Timeouts
	}
	return row, nil
}

// runResilHedgeArm runs one hedge arm: worker pools of two per shard,
// no leg budget, and a pulse loop that arms a breakpoint on one worker
// of the victim shard — the next client call that worker picks up parks
// until release. Each pulse manufactures exactly the per-call bad luck
// hedging exists for: one slow call on an otherwise healthy shard, with
// a surviving worker free to serve the duplicate.
func runResilHedgeArm(cfg ResilConfig, hedged bool) (ResilHedgeRow, error) {
	arm := "unhedged"
	if hedged {
		arm = "hedged"
	}
	row := ResilHedgeRow{Arm: arm}

	clock := rec.NewClock()
	pcfg := PipelineConfig{
		Shards: cfg.Shards, Schemes: cfg.Schemes, Structure: cfg.Structure,
		WorkersPerShard: cfg.HedgeWorkers, KeyRange: cfg.KeyRange, Seed: cfg.Seed,
	}
	st, gates, err := newPipelineStore(pcfg, true, nil)
	if err != nil {
		return row, err
	}
	defer st.Close()

	execCfg := exec.Config{LegTimeout: -1}
	var do resilDoer
	var client *resil.Client
	if hedged {
		client, err = resil.New(st, execCfg, resil.Config{
			MaxAttempts: 1, RetryBudget: -1,
			Hedge: true, HedgeWindow: 32,
			Seed: cfg.Seed,
		})
		if err != nil {
			return row, err
		}
		defer client.Close()
		do = client.Do
	} else {
		ex, err := exec.New(st, execCfg)
		if err != nil {
			return row, err
		}
		defer ex.Close()
		do = func(req workload.Req) (*exec.Result, error) {
			h, err := ex.Submit(req)
			if err != nil {
				return nil, err
			}
			return h.Wait(), nil
		}
	}

	// The pulse loop. ArmIfFree on worker 0 of the victim shard, wait for
	// a client call to park on it, hold, release, breathe, repeat.
	gate := gates[cfg.HedgeFaultShard]
	stopPulse := make(chan struct{})
	var pulseWG sync.WaitGroup
	var pulses int
	pulseWG.Add(1)
	go func() {
		defer pulseWG.Done()
		for {
			select {
			case <-stopPulse:
				return
			default:
			}
			stall, ok := gate.ArmIfFree(0, ds.PointSearchHead, nil, 0)
			if !ok {
				time.Sleep(cfg.HedgeGap)
				continue
			}
			parked := false
			select {
			case <-stall.Reached():
				parked = true
			case <-time.After(10 * time.Millisecond):
			case <-stopPulse:
			}
			if parked {
				pulses++
				time.Sleep(cfg.HedgeHold)
			}
			gate.DisarmStall(0, stall)
			stall.Release()
			select {
			case <-stopPulse:
				return
			case <-time.After(cfg.HedgeGap):
			}
		}
	}()

	// MultiGet-only traffic: hedge duplicates re-execute their leg's
	// operations, so the phase keeps them idempotent.
	src, err := workload.NewReqSource(workload.ReqConfig{
		Dist: "uniform", KeyRange: cfg.KeyRange,
		Mix:       workload.ReqMix{MultiGetPct: 100},
		MultiSize: cfg.MultiSize, Seed: cfg.Seed,
	})
	if err != nil {
		close(stopPulse)
		pulseWG.Wait()
		return row, err
	}
	samples, err := runPacedClients(do, src, cfg.HedgeClients, cfg.HedgePace, cfg.HedgeDuration, clock)
	close(stopPulse)
	pulseWG.Wait()
	if err != nil {
		return row, err
	}

	var lat hist.Latency
	for _, s := range samples {
		row.Requests++
		lat.Record(s.lat)
	}
	row.Pulses = pulses
	row.P50 = lat.Percentile(0.50)
	row.P99 = lat.Percentile(0.99)
	if hedged {
		stats := client.Stats()
		row.Hedges = stats.Hedges
		row.HedgeWins = stats.HedgeWins
		row.HedgeWaste = stats.HedgeWaste
	}
	return row, nil
}

// RunResil runs EXP-RESIL: the goodput A/B under staggered faults, the
// hedge tail A/B under park pulses, then the three gates.
func RunResil(cfg ResilConfig) (ResilResult, error) {
	cfg.fill()
	res := ResilResult{Shards: cfg.Shards, Clients: cfg.Clients, ReqMix: cfg.ReqMix}

	var err error
	if res.Naive, err = runResilGoodputArm(cfg, false); err != nil {
		return res, err
	}
	if res.Resilient, err = runResilGoodputArm(cfg, true); err != nil {
		return res, err
	}
	if res.Naive.WindowClean > 0 {
		res.GoodputX = float64(res.Resilient.WindowClean) / float64(res.Naive.WindowClean)
	} else if res.Resilient.WindowClean > 0 {
		res.GoodputX = float64(res.Resilient.WindowClean)
	}
	res.GoodputRecovered = res.Resilient.WindowRequests > 0 &&
		res.GoodputX >= 1.5

	// The pulse pass is a tail measurement on a handful of pulses, so a
	// burst of scheduler noise (a loaded CI runner descheduling the
	// hedge launch itself) can fake a miss. One bounded re-measure of
	// both arms filters that false negative; a real regression fails
	// twice.
	for attempt := 0; attempt < 2; attempt++ {
		if res.HedgeBase, err = runResilHedgeArm(cfg, false); err != nil {
			return res, err
		}
		if res.Hedged, err = runResilHedgeArm(cfg, true); err != nil {
			return res, err
		}
		if res.HedgeBase.P99 > 0 {
			res.HedgeP99X = float64(res.Hedged.P99) / float64(res.HedgeBase.P99)
		}
		res.HedgeBoundsTail = res.Hedged.Hedges > 0 && res.Hedged.HedgeWins > 0 &&
			res.HedgeBase.P99 > 0 && res.Hedged.P99 <= res.HedgeBase.P99*7/10
		if res.HedgeBoundsTail {
			break
		}
	}

	res.AmplificationBounded = res.Resilient.Amplification > 0 &&
		res.Resilient.Amplification <= 1.3
	return res, nil
}
