package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/hist"
	"repro/internal/obs"
	"repro/internal/obs/rec"
	"repro/internal/sched"
	"repro/internal/smr/all"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// ChaosConfig sizes the chaos experiment (EXP-CHAOS): a sharded store
// with one shard per scheme under audit, closed-loop client traffic for a
// fixed wall-clock window, scheduled fault injection, and a telemetry
// sampler whose series are fitted into per-scheme robustness verdicts.
//
// The run is duration-boxed, not op-boxed: a client whose batch lands on
// a stalled worker blocks until the fault heals (that is the fault
// working), so "run until every client did N ops" could never terminate.
type ChaosConfig struct {
	// Schemes get one shard each, in order; the default trio spans the
	// three robustness classes (ebr not-robust, ibr weakly-robust, hp
	// robust).
	Schemes []string
	// Structure is the per-shard set structure; empty selects "hashmap"
	// (HP-compatible, so the widest scheme set applies).
	Structure string
	// WorkersPerShard sizes each shard's pool; 0 selects one more than
	// the number of stall-family faults (min 2) — every parking fault
	// claims a worker and the audit needs a survivor to keep the shard's
	// churn (and telemetry progress) alive.
	WorkersPerShard int
	// Clients is the closed-loop client count; 0 selects 2 × shards.
	Clients int
	// Batch is operations per service request; 0 selects 16.
	Batch int
	// KeyRange is the key universe; 0 selects 2048.
	KeyRange int
	// Threshold is every shard's retire-scan threshold; 0 selects 16.
	// Fixing it (rather than per-scheme defaults) fixes the audit's
	// bounded-backlog budget.
	Threshold int
	// SlotsPerShard sizes each shard heap; 0 selects a budget generous
	// enough that only a genuinely unbounded backlog can exhaust it —
	// and if one does, the OOM is reported as audit evidence, not a
	// crash.
	SlotsPerShard int
	// Duration is the traffic window; 0 selects 400ms.
	Duration time.Duration
	// FaultAfter is the injection delay from traffic start; 0 selects
	// Duration/8 (early, so most of the window is faulted — the growth
	// fit reads the faulted tail).
	FaultAfter time.Duration
	// SampleInterval is the telemetry tick; 0 derives Duration/200
	// clamped to [200µs, 5ms].
	SampleInterval time.Duration
	// Faults names the faults injected (chaos registry names); each is
	// applied to every shard. Empty selects ["stall"] — the
	// reclamation-critical stall that separates the robustness classes.
	Faults []string
	// Mix, Workload, Schedule name the traffic shape (workload
	// registries); zero values select balanced/uniform/steady.
	Mix      Mix
	Workload string
	Schedule string
	// Seed makes client streams deterministic.
	Seed uint64
	// ObsAddr, when non-empty, serves the live observability plane
	// (/metrics, /timeline, /debug/pprof/) on this address for the
	// duration of the run; shard scans, guard trips, and every fault
	// fire/heal land on a shared flight recorder the /timeline endpoint
	// exposes. The bound URL is reported in the result.
	ObsAddr string
}

func (cfg *ChaosConfig) fill() {
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = []string{"ebr", "ibr", "hp"}
	}
	if cfg.Structure == "" {
		cfg.Structure = "hashmap"
	}
	if len(cfg.Faults) == 0 {
		cfg.Faults = []string{"stall"}
	}
	if cfg.WorkersPerShard <= 0 {
		// One survivor above the stall-family fault count: every parking
		// fault claims a worker, and the audit needs a live worker to
		// keep the shard's churn (and telemetry progress) going.
		parks := 0
		for _, f := range cfg.Faults {
			if chaos.ParksWorker(f) {
				parks++
			}
		}
		cfg.WorkersPerShard = parks + 1
		if cfg.WorkersPerShard < 2 {
			cfg.WorkersPerShard = 2
		}
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 2 * len(cfg.Schemes)
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 16
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 2048
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 16
	}
	if cfg.SlotsPerShard <= 0 {
		cfg.SlotsPerShard = 1 << 18
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 400 * time.Millisecond
	}
	if cfg.FaultAfter <= 0 {
		cfg.FaultAfter = cfg.Duration / 8
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = sampleEvery(cfg.Duration)
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = MixBalanced
	}
}

// ChaosRow is one shard's audit: the scheme's declared robustness class
// against the class its telemetry evidences.
type ChaosRow struct {
	Shard    int    `json:"shard"`
	Scheme   string `json:"scheme"`
	Declared string `json:"declared"`
	Audited  string `json:"audited"`
	// Growth is the fitted backlog shape (bounded / linear-in-threads /
	// unbounded).
	Growth string `json:"growth"`
	// Slope is backlog growth per shard operation over the faulted
	// window; Plateau the window's mean backlog.
	Slope   float64 `json:"slope"`
	Plateau float64 `json:"plateau"`
	// PeakRetired is the shard's whole-run backlog watermark.
	PeakRetired uint64 `json:"peak_retired"`
	// Ops is the shard's total served operations; OOMs its failed
	// allocations (nonzero only when the backlog ate the heap).
	Ops  uint64 `json:"ops"`
	OOMs uint64 `json:"ooms"`
	// Outcome relates audited to declared: confirmed, stronger,
	// VIOLATED, or inconclusive.
	Outcome string `json:"outcome"`
	// Consistent is false exactly when Outcome is VIOLATED.
	Consistent bool `json:"consistent"`
	// Series is the shard's sampled backlog trajectory (the evidence).
	Series []telemetry.Point `json:"series,omitempty"`
}

// ChaosAggregate is the run's service-level summary: what the clients
// experienced while the faults were live.
type ChaosAggregate struct {
	Shards   int           `json:"shards"`
	Schemes  []string      `json:"schemes"`
	Faults   []string      `json:"faults"`
	Clients  int           `json:"clients"`
	Batch    int           `json:"batch"`
	Workers  int           `json:"workers_per_shard"`
	KeyRange int           `json:"key_range"`
	Mix      Mix           `json:"mix"`
	Workload string        `json:"workload"`
	Schedule string        `json:"schedule"`
	Seed     uint64        `json:"seed"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	Ops      uint64        `json:"ops"`
	// OpErrs counts per-operation errors clients absorbed (shard closed
	// during churn faults, OOM on an exhausted shard, ...).
	OpErrs uint64 `json:"op_errs"`
	// P50/P99 are service-request latencies with the faults live.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
}

// ChaosResult is the chaos experiment's outcome: one audited row per
// scheme shard, the fault episode log, and the client-side aggregate.
type ChaosResult struct {
	Rows   []ChaosRow     `json:"rows"`
	Events []chaos.Event  `json:"events"`
	Agg    ChaosAggregate `json:"aggregate"`
	// Consistent reports that no audit contradicted a declared class.
	Consistent bool `json:"consistent"`
	// ObsURL is the live plane's bound URL (ObsAddr runs only).
	ObsURL string `json:"obs_url,omitempty"`
}

// runTimedClients drives closed-loop clients until deadline, tolerating
// per-operation errors (they are what faults — and migration windows —
// look like from outside). Returns total ops, op errors, and merged
// request latencies. Shared by the chaos, adaptive, duration-boxed
// service, and observability experiments. each, when non-nil, receives
// every request latency live (the SLO monitor's feed); it is called from
// every client goroutine concurrently and must be cheap and thread-safe.
func runTimedClients(st *store.Store, src *workload.Source, clients, batchSize int, deadline time.Time, each func(time.Duration)) (uint64, uint64, hist.Latency, error) {
	var wg sync.WaitGroup
	ops := make([]uint64, clients)
	errs := make([]uint64, clients)
	lats := make([]hist.Latency, clients)
	fail := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stream := src.Thread(c, 1<<20)
			batch := make([]store.Op, 0, batchSize)
			for time.Now().Before(deadline) {
				batch = batch[:0]
				for len(batch) < batchSize {
					kind, key := stream.Next()
					batch = append(batch, store.Op{Kind: kind, Key: key})
				}
				t0 := time.Now()
				res, err := st.Do(batch)
				if err != nil {
					// Store-level failure (closed store): a harness bug,
					// not a fault outcome.
					fail[c] = err
					return
				}
				d := time.Since(t0)
				lats[c].Record(d)
				if each != nil {
					each(d)
				}
				ops[c] += uint64(len(batch))
				for _, r := range res {
					if r.Err != nil {
						errs[c]++
					}
				}
			}
		}(c)
	}
	wg.Wait()
	var lat hist.Latency
	var totalOps, totalErrs uint64
	for c := 0; c < clients; c++ {
		if fail[c] != nil {
			return 0, 0, lat, fail[c]
		}
		totalOps += ops[c]
		totalErrs += errs[c]
		lat.Merge(&lats[c])
	}
	return totalOps, totalErrs, lat, nil
}

// RunChaos builds a gated store with one shard per scheme, runs
// closed-loop traffic for the configured window while the chaos engine
// injects the configured faults into every shard, samples per-shard
// backlog telemetry throughout, and audits each scheme's declared
// robustness class against the fitted growth of its faulted window.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	cfg.fill()
	nshards := len(cfg.Schemes)
	gates := make([]*sched.Breakpoints, nshards)
	specs := make([]store.ShardSpec, nshards)
	for i, scheme := range cfg.Schemes {
		gates[i] = sched.NewBreakpoints()
		specs[i] = store.ShardSpec{
			Scheme:    scheme,
			Structure: cfg.Structure,
			Workers:   cfg.WorkersPerShard,
			Threshold: cfg.Threshold,
			Slots:     cfg.SlotsPerShard,
			Gate:      gates[i],
		}
	}
	// With ObsAddr set, the plane serves live throughout: shard scans and
	// guard trips from the store, fire/heal events from the engine, all
	// on one shared run clock.
	var (
		clock    *rec.Clock
		recorder *rec.Recorder
	)
	if cfg.ObsAddr != "" {
		clock = rec.NewClock()
		recorder = rec.NewRecorder(clock, 0)
	}
	st, err := store.New(store.Config{Shards: specs, KeyRange: cfg.KeyRange, Recorder: recorder})
	if err != nil {
		return ChaosResult{}, err
	}
	defer st.Close()

	src, err := workload.New(workload.Config{
		Dist:     cfg.Workload,
		Schedule: cfg.Schedule,
		KeyRange: cfg.KeyRange,
		Mix:      cfg.Mix,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return ChaosResult{}, err
	}

	// Prefill to half occupancy through the service, like any traffic.
	if err := prefillHalf(st, cfg.KeyRange, cfg.Batch, cfg.Seed); err != nil {
		return ChaosResult{}, err
	}

	sampler := telemetry.NewSampler(
		telemetry.Config{Interval: cfg.SampleInterval, Capacity: 4096,
			Clock: clock, Recorder: recorder},
		storeProbe(st))

	target := &chaos.Target{Store: st, Gates: gates, KeyRange: cfg.KeyRange}
	engine := chaos.NewEngine(target)
	engine.SetObs(clock, recorder)

	var obsURL string
	if cfg.ObsAddr != "" {
		srv, err := obs.Serve(cfg.ObsAddr, &obs.Registry{Store: st, Sampler: sampler, Recorder: recorder})
		if err != nil {
			return ChaosResult{}, err
		}
		defer srv.Close()
		obsURL = srv.URL
	}
	for _, name := range cfg.Faults {
		for s := 0; s < nshards; s++ {
			if err := engine.Add(name, chaos.Params{Shard: s}, chaos.OneShot(cfg.FaultAfter)); err != nil {
				return ChaosResult{}, err
			}
		}
	}

	sampler.Start()
	engine.Start()
	start := time.Now()
	deadline := start.Add(cfg.Duration)

	// Heal at the deadline from a watchdog: clients blocked on a stalled
	// worker only come back once the faults do, so the engine must stop
	// first, independent of client progress. The evidence — shard stats
	// and the telemetry series — is snapshotted at the deadline too,
	// *before* the heals run: a churn heal reopens its shard with zeroed
	// counters, and a stall heal lets the resumed worker collapse the
	// backlog, either of which would contaminate the faulted window if
	// read afterwards.
	var stats store.Stats
	series := make([][]telemetry.Point, nshards)
	healed := make(chan struct{})
	go func() {
		defer close(healed)
		time.Sleep(time.Until(deadline))
		stats = st.Stats()
		for s := 0; s < nshards; s++ {
			series[s] = sampler.Series(s).Points()
		}
		engine.Stop()
	}()
	ops, opErrs, lat, err := runTimedClients(st, src, cfg.Clients, cfg.Batch, deadline, nil)
	<-healed
	elapsed := time.Since(start)
	sampler.Stop()
	if err != nil {
		return ChaosResult{}, err
	}
	if err := st.Close(); err != nil {
		return ChaosResult{}, err
	}

	events := engine.Events()
	res := ChaosResult{
		Events:     events,
		Consistent: true,
		ObsURL:     obsURL,
		Agg: ChaosAggregate{
			Shards:   nshards,
			Schemes:  cfg.Schemes,
			Faults:   cfg.Faults,
			Clients:  cfg.Clients,
			Batch:    cfg.Batch,
			Workers:  cfg.WorkersPerShard,
			KeyRange: cfg.KeyRange,
			Mix:      src.Config().Mix,
			Workload: src.Config().Dist,
			Schedule: src.Config().Schedule,
			Seed:     cfg.Seed,
			Elapsed:  elapsed,
			Ops:      ops,
			OpErrs:   opErrs,
			P50:      lat.Percentile(0.50),
			P99:      lat.Percentile(0.99),
		},
	}
	budget := telemetry.Budget{Threads: cfg.WorkersPerShard, Threshold: cfg.Threshold}
	for s, scheme := range cfg.Schemes {
		props, err := all.Props(scheme)
		if err != nil {
			return ChaosResult{}, err
		}
		// Fit only the faulted window: from the first episode injected
		// into this shard onward.
		var from time.Duration
		for _, ev := range events {
			if ev.Shard == s && ev.Err == "" {
				from = ev.At
				break
			}
		}
		points := series[s]
		v := telemetry.Audit(scheme, props.Robustness, points, from, budget)
		v.Fit.Sanitize()
		row := ChaosRow{
			Shard:       s,
			Scheme:      scheme,
			Declared:    v.Declared,
			Audited:     v.Audited,
			Growth:      v.Fit.GrowthName,
			Slope:       v.Fit.Slope,
			Plateau:     v.Fit.Plateau,
			PeakRetired: stats.Shards[s].MaxRetired,
			Ops:         stats.Shards[s].Ops,
			OOMs:        stats.Shards[s].OOMs,
			Outcome:     v.Outcome,
			Consistent:  v.Consistent(),
			Series:      points,
		}
		// Heap exhaustion is stronger evidence than any fit: the backlog
		// literally ran the shard out of memory.
		if row.OOMs > 0 {
			row.Audited = "not-robust"
			row.Growth = "unbounded"
			if row.Declared == "not-robust" {
				row.Outcome = "confirmed"
				row.Consistent = true
			} else {
				row.Outcome = "VIOLATED"
				row.Consistent = false
			}
		}
		if !row.Consistent {
			res.Consistent = false
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// ChaosVerdictError is returned by CheckChaos when an audit contradicts a
// declared robustness class.
type ChaosVerdictError struct{ Rows []ChaosRow }

func (e *ChaosVerdictError) Error() string {
	return fmt.Sprintf("chaos: %d scheme(s) violated their declared robustness class", len(e.Rows))
}

// CheckChaos returns a ChaosVerdictError when the result holds
// violations, for drivers that want a nonzero exit under -strict.
func CheckChaos(res ChaosResult) error {
	var bad []ChaosRow
	for _, r := range res.Rows {
		if !r.Consistent {
			bad = append(bad, r)
		}
	}
	if len(bad) > 0 {
		return &ChaosVerdictError{Rows: bad}
	}
	return nil
}
