// Package bench implements the experiment harness: workload generation,
// fixed-size concurrent runs, and the table/series builders behind every
// figure and table in EXPERIMENTS.md.
//
// The paper itself is a theory paper with two proof illustrations and no
// measurement section; the harness therefore regenerates (a) the paper's
// two figures as deterministic executions (internal/core/adversary), and
// (b) the standard evaluation shape of the SMR literature the paper builds
// on — throughput under operation mixes, space bounds under stalls, and
// the Harris-vs-Michael comparison the Section 6 discussion cites.
package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ds"
	"repro/internal/ds/registry"
	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/all"
)

// Mix is an operation mix in percent; the three fields must sum to 100.
type Mix struct {
	ContainsPct int
	InsertPct   int
	DeletePct   int
}

// String renders the mix as "c/i/d".
func (m Mix) String() string {
	return fmt.Sprintf("%d/%d/%d", m.ContainsPct, m.InsertPct, m.DeletePct)
}

// Standard mixes used across the experiments (read-heavy, mixed,
// update-only), matching the sweeps in the IBR/NBR/VBR evaluations.
var (
	MixReadHeavy  = Mix{90, 5, 5}
	MixBalanced   = Mix{50, 25, 25}
	MixUpdateOnly = Mix{0, 50, 50}
)

type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// ThroughputRow is one measurement of the throughput experiment.
type ThroughputRow struct {
	Scheme    string
	Structure string
	Threads   int
	Mix       Mix
	KeyRange  int
	Ops       int
	Elapsed   time.Duration
	// MopsPerSec is the headline number.
	MopsPerSec float64
	// PeakRetired is the largest retired backlog during the run — the
	// space cost accompanying the throughput.
	PeakRetired uint64
	// Restarts counts scheme rollbacks (the integration price of the
	// optimistic schemes).
	Restarts uint64
}

// ThroughputConfig sizes a throughput run.
type ThroughputConfig struct {
	Threads      int
	OpsPerThread int
	KeyRange     int
	Mix          Mix
	Seed         uint64
}

// Throughput runs the fixed-op concurrent workload for one
// (scheme, structure) pair and reports the rate.
func Throughput(scheme, structure string, cfg ThroughputConfig) (ThroughputRow, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 2
	}
	if cfg.OpsPerThread <= 0 {
		cfg.OpsPerThread = 20000
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 1024
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = MixBalanced
	}
	info, err := registry.Get(structure)
	if err != nil {
		return ThroughputRow{}, err
	}
	if info.Kind != registry.KindSet {
		return ThroughputRow{}, fmt.Errorf("bench: throughput runs on set structures, %s is a %v", structure, info.Kind)
	}
	// Size the heap for the worst case: a non-robust scheme under
	// oversubscription can delay reclamation for a whole scheduling
	// quantum, and the leak baseline never reclaims at all — so the
	// allocation upper bound (prefill + every op an insert) must fit.
	a := mem.NewArena(mem.Config{
		Slots:        cfg.KeyRange + cfg.Threads*cfg.OpsPerThread + 1024,
		PayloadWords: info.PayloadWords,
		MetaWords:    smr.MetaWords,
		Threads:      cfg.Threads,
		Mode:         mem.Reuse,
	})
	s, err := all.New(scheme, a, cfg.Threads, 0)
	if err != nil {
		return ThroughputRow{}, err
	}
	set, err := info.NewSet(s, ds.Options{})
	if err != nil {
		return ThroughputRow{}, err
	}

	// Prefill to half occupancy so contains() hit about half the time.
	pre := rng(cfg.Seed ^ 0xf00d)
	for i := 0; i < cfg.KeyRange/2; i++ {
		if _, err := set.Insert(0, int64(pre.next()%uint64(cfg.KeyRange))); err != nil {
			return ThroughputRow{}, err
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, cfg.Threads)
	start := time.Now()
	for tid := 0; tid < cfg.Threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			r := rng(cfg.Seed + uint64(tid)<<32)
			for i := 0; i < cfg.OpsPerThread; i++ {
				key := int64(r.next() % uint64(cfg.KeyRange))
				roll := int(r.next() % 100)
				var err error
				switch {
				case roll < cfg.Mix.ContainsPct:
					_, err = set.Contains(tid, key)
				case roll < cfg.Mix.ContainsPct+cfg.Mix.InsertPct:
					_, err = set.Insert(tid, key)
				default:
					_, err = set.Delete(tid, key)
				}
				if err != nil {
					errs[tid] = err
					return
				}
			}
		}(tid)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ThroughputRow{}, err
		}
	}
	ops := cfg.Threads * cfg.OpsPerThread
	return ThroughputRow{
		Scheme:      scheme,
		Structure:   structure,
		Threads:     cfg.Threads,
		Mix:         cfg.Mix,
		KeyRange:    cfg.KeyRange,
		Ops:         ops,
		Elapsed:     elapsed,
		MopsPerSec:  float64(ops) / elapsed.Seconds() / 1e6,
		PeakRetired: a.Stats().MaxRetired(),
		Restarts:    s.Stats().Snapshot().Restarts,
	}, nil
}
