// Package bench implements the experiment harness behind every figure and
// table in EXPERIMENTS.md, split into three layers:
//
//   - internal/workload supplies the scenarios: key distributions and
//     op-mix schedules selected by name, so a new workload is a registry
//     entry rather than harness code;
//   - the engine (engine.go) assembles arena + scheme + structure, runs an
//     untimed warmup and a timed measurement phase with per-thread op
//     loops driven by a workload.Source, and samples operation latencies;
//   - reporting (report.go) renders the rows as fixed-width tables for
//     the terminal and as JSON benchmark artifacts for trajectories.
//
// The paper itself is a theory paper with two proof illustrations and no
// measurement section; the harness therefore regenerates (a) the paper's
// two figures as deterministic executions (internal/core/adversary), and
// (b) the standard evaluation shape of the SMR literature the paper builds
// on — throughput under operation mixes, space bounds under stalls, and
// the Harris-vs-Michael comparison the Section 6 discussion cites.
package bench

import "repro/internal/workload"

// Mix is an operation mix in percent; the three fields must sum to 100.
// It is an alias of workload.Mix — the schedules in internal/workload
// modulate it over a run.
type Mix = workload.Mix

// Standard mixes used across the experiments (read-heavy, mixed,
// update-only), matching the sweeps in the IBR/NBR/VBR evaluations.
var (
	MixReadHeavy  = workload.MixReadHeavy
	MixBalanced   = workload.MixBalanced
	MixUpdateOnly = workload.MixUpdateOnly
)
