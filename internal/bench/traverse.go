// EXP-TRAVERSE: the traversal hot-path experiment. Two sections, each an
// A/B pair over the same workload:
//
// Section 1 (storm) reproduces the restart storm of ROADMAP item 5: a
// single long-chain shard (Michael's list over the whole key range)
// under churning clients, once with the legacy head-restart finds
// (ShardSpec.HeadRestart) and once with the bounded cached-pred finds.
// Measured: throughput, request p50/p99, the traversal counters
// (restart rate, head-restart share, worst single-op steps), and the
// peak retired backlog — the quantity a storm balloons by pinning an
// epoch inside one operation bracket.
//
// Section 2 (snapshot) measures MigrateShard's swap window at a large
// key universe with few live keys, once with the legacy O(universe)
// Contains scan (Config.SnapshotScan) and once with the O(live-keys)
// iterator snapshot. Measured: membership probes, carried keys, and the
// wall-clock swap window; the headline is the window improvement ratio
// and the probes-track-live-keys bound CI asserts.

package bench

import (
	"fmt"
	"time"

	"repro/internal/store"
	"repro/internal/workload"
)

// TraverseConfig sizes EXP-TRAVERSE.
type TraverseConfig struct {
	// Workers is the storm shard's worker count; 0 selects 3.
	Workers int
	// Clients is the storm client count; 0 selects 4.
	Clients int
	// Duration is the storm window per arm; 0 selects 400ms.
	Duration time.Duration
	// Batch is the client batch size; 0 selects 16.
	Batch int
	// ChurnKeyRange is the storm key universe — the live chain is about
	// half of it; 0 selects 4096.
	ChurnKeyRange int
	// SnapKeyRange is the snapshot section's key universe; 0 selects
	// 1_000_000.
	SnapKeyRange int
	// SnapLiveKeys is how many live keys the snapshot section prefills,
	// spread evenly over the universe; 0 selects 10_000.
	SnapLiveKeys int
	// Seed makes the client streams deterministic.
	Seed uint64
}

func (cfg *TraverseConfig) fill() {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 400 * time.Millisecond
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 16
	}
	if cfg.ChurnKeyRange <= 0 {
		cfg.ChurnKeyRange = 4096
	}
	if cfg.SnapKeyRange <= 0 {
		cfg.SnapKeyRange = 1_000_000
	}
	if cfg.SnapLiveKeys <= 0 {
		cfg.SnapLiveKeys = 10_000
	}
}

// TraverseStormArm is one storm arm's measurement.
type TraverseStormArm struct {
	// Mode is "head-restart" (baseline) or "bounded".
	Mode       string        `json:"mode"`
	Ops        uint64        `json:"ops"`
	MopsPerSec float64       `json:"mops_per_sec"`
	P50        time.Duration `json:"p50_ns"`
	P99        time.Duration `json:"p99_ns"`
	// Traversal counters over the whole arm (prefill included).
	TravSteps        uint64 `json:"trav_steps"`
	TravRestarts     uint64 `json:"trav_restarts"`
	TravHeadRestarts uint64 `json:"trav_head_restarts"`
	GuardTrips       uint64 `json:"guard_trips"`
	MaxOpSteps       uint64 `json:"max_op_steps"`
	// RestartsPerKOp is the restart rate: traversal restarts per thousand
	// service operations.
	RestartsPerKOp float64 `json:"restarts_per_kop"`
	PeakRetired    uint64  `json:"peak_retired"`
}

// TraverseSnapArm is one snapshot arm's measurement.
type TraverseSnapArm struct {
	// Mode is "scan" (baseline: O(universe) Contains probes) or
	// "iterator" (O(live keys)).
	Mode           string        `json:"mode"`
	SnapshotProbes uint64        `json:"snapshot_probes"`
	SnapshotKeys   uint64        `json:"snapshot_keys"`
	SwapWindow     time.Duration `json:"swap_window_ns"`
}

// TraverseResult is the full EXP-TRAVERSE measurement.
type TraverseResult struct {
	Workers       int           `json:"workers"`
	Clients       int           `json:"clients"`
	Duration      time.Duration `json:"duration_ns"`
	ChurnKeyRange int           `json:"churn_key_range"`
	SnapKeyRange  int           `json:"snap_key_range"`
	SnapLiveKeys  int           `json:"snap_live_keys"`
	Seed          uint64        `json:"seed"`

	Storm []TraverseStormArm `json:"storm"`
	Snap  []TraverseSnapArm  `json:"snapshot"`

	// SwapImprovement is the snapshot headline: scan-arm swap window over
	// iterator-arm swap window (the acceptance bar is >= 10x at the full
	// universe-to-live-keys ratio).
	SwapImprovement float64 `json:"swap_improvement"`
	// ProbesBounded is the CI assertion: the iterator arm's snapshot
	// probes stayed within 2x its live keys.
	ProbesBounded bool `json:"snapshot_probes_bounded"`
	// GuardClean reports that no operation in either storm arm hit the
	// traversal step budget.
	GuardClean bool `json:"guard_clean"`
}

// runTraverseStorm runs one storm arm: a single Michael-list shard over
// the whole churn key range, duration-boxed clients, traversal counters
// read after close.
func runTraverseStorm(cfg TraverseConfig, headRestart bool) (TraverseStormArm, error) {
	mode := "bounded"
	if headRestart {
		mode = "head-restart"
	}
	st, err := store.New(store.Config{
		Shards: []store.ShardSpec{{
			Scheme:      "ebr",
			Structure:   "michael",
			Workers:     cfg.Workers,
			HeadRestart: headRestart,
		}},
		KeyRange: cfg.ChurnKeyRange,
	})
	if err != nil {
		return TraverseStormArm{}, err
	}
	defer st.Close()
	src, err := workload.New(workload.Config{
		KeyRange: cfg.ChurnKeyRange,
		Mix:      MixBalanced,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return TraverseStormArm{}, err
	}
	if err := prefillHalf(st, cfg.ChurnKeyRange, cfg.Batch, cfg.Seed); err != nil {
		return TraverseStormArm{}, err
	}
	start := time.Now()
	ops, _, lat, err := runTimedClients(st, src, cfg.Clients, cfg.Batch, start.Add(cfg.Duration), nil)
	if err != nil {
		return TraverseStormArm{}, err
	}
	elapsed := time.Since(start)
	if err := st.Close(); err != nil {
		return TraverseStormArm{}, err
	}
	s := st.Stats()
	arm := TraverseStormArm{
		Mode:             mode,
		Ops:              ops,
		MopsPerSec:       float64(ops) / elapsed.Seconds() / 1e6,
		P50:              lat.Percentile(0.50),
		P99:              lat.Percentile(0.99),
		TravSteps:        s.TravSteps,
		TravRestarts:     s.TravRestarts,
		TravHeadRestarts: s.TravHeadRestarts,
		GuardTrips:       s.GuardTrips,
		MaxOpSteps:       s.MaxOpSteps,
		PeakRetired:      s.MaxRetired,
	}
	if ops > 0 {
		arm.RestartsPerKOp = float64(s.TravRestarts) / float64(ops) * 1000
	}
	return arm, nil
}

// runTraverseSnap runs one snapshot arm: prefill SnapLiveKeys evenly
// over SnapKeyRange on a hashmap shard sized for the live keys (not the
// universe — the point), migrate it onto the same scheme, and read the
// migration cost observables.
func runTraverseSnap(cfg TraverseConfig, scan bool) (TraverseSnapArm, error) {
	mode := "iterator"
	if scan {
		mode = "scan"
	}
	st, err := store.New(store.Config{
		Shards: []store.ShardSpec{{
			Scheme:    "ebr",
			Structure: "hashmap",
			Slots:     4*cfg.SnapLiveKeys + 8192,
		}},
		KeyRange:     cfg.SnapKeyRange,
		SnapshotScan: scan,
	})
	if err != nil {
		return TraverseSnapArm{}, err
	}
	defer st.Close()
	stride := cfg.SnapKeyRange / cfg.SnapLiveKeys
	if stride < 1 {
		stride = 1
	}
	batch := make([]store.Op, 0, cfg.Batch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		res, err := st.Do(batch)
		if err != nil {
			return err
		}
		for _, r := range res {
			if r.Err != nil {
				return r.Err
			}
		}
		batch = batch[:0]
		return nil
	}
	for i := 0; i < cfg.SnapLiveKeys; i++ {
		batch = append(batch, store.Op{Kind: workload.OpInsert, Key: int64(i * stride)})
		if len(batch) == cfg.Batch {
			if err := flush(); err != nil {
				return TraverseSnapArm{}, err
			}
		}
	}
	if err := flush(); err != nil {
		return TraverseSnapArm{}, err
	}
	if err := st.MigrateShard(0, "ebr"); err != nil {
		return TraverseSnapArm{}, fmt.Errorf("bench: traverse snapshot (%s): %w", mode, err)
	}
	ss := st.Stats().Shards[0]
	return TraverseSnapArm{
		Mode:           mode,
		SnapshotProbes: ss.SnapshotProbes,
		SnapshotKeys:   ss.SnapshotKeys,
		SwapWindow:     time.Duration(ss.SwapWindowNanos),
	}, nil
}

// RunTraverse runs both sections of EXP-TRAVERSE, baseline arm first.
func RunTraverse(cfg TraverseConfig) (TraverseResult, error) {
	cfg.fill()
	res := TraverseResult{
		Workers:       cfg.Workers,
		Clients:       cfg.Clients,
		Duration:      cfg.Duration,
		ChurnKeyRange: cfg.ChurnKeyRange,
		SnapKeyRange:  cfg.SnapKeyRange,
		SnapLiveKeys:  cfg.SnapLiveKeys,
		Seed:          cfg.Seed,
	}
	for _, headRestart := range []bool{true, false} {
		arm, err := runTraverseStorm(cfg, headRestart)
		if err != nil {
			return TraverseResult{}, err
		}
		res.Storm = append(res.Storm, arm)
	}
	for _, scan := range []bool{true, false} {
		arm, err := runTraverseSnap(cfg, scan)
		if err != nil {
			return TraverseResult{}, err
		}
		res.Snap = append(res.Snap, arm)
	}
	scanArm, iterArm := res.Snap[0], res.Snap[1]
	if iterArm.SwapWindow > 0 {
		res.SwapImprovement = float64(scanArm.SwapWindow) / float64(iterArm.SwapWindow)
	}
	res.ProbesBounded = iterArm.SnapshotProbes <= 2*iterArm.SnapshotKeys
	res.GuardClean = true
	for _, arm := range res.Storm {
		if arm.GuardTrips != 0 {
			res.GuardClean = false
		}
	}
	return res, nil
}
