package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/adapt"
	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/obs/rec"
	"repro/internal/sched"
	"repro/internal/smr/all"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// ObsConfig sizes the observability experiment (EXP-OBS): an adaptive
// fleet under staggered, self-healing faults with the full plane wired —
// flight recorder on every subsystem, SLO monitor on the request path,
// optional live HTTP export — whose product is the causal timeline
// (fault fired → backlog inflection → verdict flip → migration → heal)
// with detection/reaction latencies, plus a recorder-on/off overhead A/B.
type ObsConfig struct {
	// Shards is the fleet size; 0 selects 2. Every shard starts on
	// StartScheme and carries its own staggered fault.
	Shards int
	// StartScheme is the (deliberately non-robust) starting rung; empty
	// selects the ladder's bottom.
	StartScheme string
	// Ladder is the controller's migration ladder; empty selects
	// ebr → ibr → hp.
	Ladder []string
	// Structure is the per-shard set structure; empty selects "hashmap".
	Structure string
	// WorkersPerShard sizes each pool; 0 selects one survivor above the
	// parking-fault count (min 2), as in EXP-CHAOS.
	WorkersPerShard int
	// Clients is the closed-loop client count; 0 selects 2 × Shards.
	Clients int
	// Batch is operations per service request; 0 selects 16.
	Batch int
	// KeyRange is the key universe; 0 selects 2048.
	KeyRange int
	// Threshold is the retire-scan threshold; 0 selects 16.
	Threshold int
	// SlotsPerShard sizes each shard heap; 0 selects 1<<18.
	SlotsPerShard int
	// Duration is the traffic window; 0 selects 1s — room for the last
	// staggered fault's full chain to close.
	Duration time.Duration
	// FaultAfter delays shard 0's fault; 0 selects Duration/8.
	FaultAfter time.Duration
	// Stagger spaces consecutive shards' faults; 0 selects Duration/16.
	Stagger time.Duration
	// Hold is each fault's held window before it self-heals; 0 selects
	// Duration/2 — the heal lands mid-run, so the chain closes on tape.
	Hold time.Duration
	// Faults names the chaos faults, one per shard each; empty selects
	// ["delayed-release"].
	Faults []string
	// SampleInterval is the telemetry tick; 0 derives ~200 samples per
	// window clamped to [200µs, 5ms].
	SampleInterval time.Duration
	// DecideInterval is the controller tick; 0 selects Duration/32
	// clamped to [5ms, 25ms].
	DecideInterval time.Duration
	// Hysteresis is the controller's consecutive-verdict requirement;
	// 0 selects 2.
	Hysteresis int
	// SLOTarget is the p99 service-request objective; 0 selects 50ms
	// (breaches are informative, not required — "robust but slow" is a
	// state the plane reports, not one the experiment engineers).
	SLOTarget time.Duration
	// RecorderCapacity is the per-stripe ring size; 0 selects 1<<15 —
	// large enough that a one-second window's scan events cannot wrap
	// the early fault fires out of the ring (the default rec capacity
	// is sized for always-on deployments, where a wrapped suffix is the
	// point; the experiment wants the whole tape).
	RecorderCapacity int
	// OverheadRounds is how many recorder-on/off round *pairs* the
	// overhead A/B runs (each arm's best round is compared); 0 selects
	// 3, negative disables the A/B.
	OverheadRounds int
	// OverheadRoundDuration is one A/B round's traffic window; 0 selects
	// 120ms.
	OverheadRoundDuration time.Duration
	// ObsAddr, when non-empty, serves the live plane (/metrics, /timeline,
	// pprof) on this address for the duration of the faulted run.
	ObsAddr string
	// Mix, Workload, Schedule name the traffic shape; zero values select
	// balanced/uniform/steady.
	Mix      Mix
	Workload string
	Schedule string
	// Seed makes client streams deterministic.
	Seed uint64
}

func (cfg *ObsConfig) fill() {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if len(cfg.Ladder) == 0 {
		cfg.Ladder = []string{"ebr", "ibr", "hp"}
	}
	if cfg.StartScheme == "" {
		cfg.StartScheme = cfg.Ladder[0]
	}
	if cfg.Structure == "" {
		cfg.Structure = "hashmap"
	}
	if len(cfg.Faults) == 0 {
		cfg.Faults = []string{"delayed-release"}
	}
	if cfg.WorkersPerShard <= 0 {
		parks := 0
		for _, f := range cfg.Faults {
			if chaos.ParksWorker(f) {
				parks++
			}
		}
		cfg.WorkersPerShard = parks + 1
		if cfg.WorkersPerShard < 2 {
			cfg.WorkersPerShard = 2
		}
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 2 * cfg.Shards
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 16
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 2048
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 16
	}
	if cfg.SlotsPerShard <= 0 {
		cfg.SlotsPerShard = 1 << 18
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.FaultAfter <= 0 {
		cfg.FaultAfter = cfg.Duration / 8
	}
	if cfg.Stagger <= 0 {
		cfg.Stagger = cfg.Duration / 16
	}
	if cfg.Hold <= 0 {
		cfg.Hold = cfg.Duration / 2
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = sampleEvery(cfg.Duration)
	}
	if cfg.DecideInterval <= 0 {
		cfg.DecideInterval = cfg.Duration / 32
		if cfg.DecideInterval < 5*time.Millisecond {
			cfg.DecideInterval = 5 * time.Millisecond
		}
		if cfg.DecideInterval > 25*time.Millisecond {
			cfg.DecideInterval = 25 * time.Millisecond
		}
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 2
	}
	if cfg.SLOTarget <= 0 {
		cfg.SLOTarget = 50 * time.Millisecond
	}
	if cfg.RecorderCapacity <= 0 {
		cfg.RecorderCapacity = 1 << 15
	}
	if cfg.OverheadRounds == 0 {
		cfg.OverheadRounds = 3
	}
	if cfg.OverheadRoundDuration <= 0 {
		cfg.OverheadRoundDuration = 120 * time.Millisecond
	}
	if cfg.Workload == "" {
		cfg.Workload = "uniform"
	}
	if cfg.Schedule == "" {
		cfg.Schedule = "steady"
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = MixBalanced
	}
}

// ObsOverhead is the recorder-on vs recorder-off throughput A/B: the
// plane's budget is ≤5% of throughput, and this is where the claim is
// measured rather than asserted.
type ObsOverhead struct {
	Rounds          int     `json:"rounds"`
	RecorderOnMops  float64 `json:"recorder_on_mops"`
	RecorderOffMops float64 `json:"recorder_off_mops"`
	// DeltaPct is the throughput lost with the recorder on, comparing
	// each arm's best round, as a percentage of the recorder-off rate;
	// clamped at 0 (a negative delta is measurement noise, not a
	// speedup).
	DeltaPct float64 `json:"delta_pct"`
	// OK reports DeltaPct ≤ 5.
	OK bool `json:"ok"`
}

// ObsAggregate echoes the configuration and the client-side measurement.
type ObsAggregate struct {
	Shards      int           `json:"shards"`
	StartScheme string        `json:"start_scheme"`
	Ladder      []string      `json:"ladder"`
	Structure   string        `json:"structure"`
	Faults      []string      `json:"faults"`
	Workers     int           `json:"workers_per_shard"`
	Clients     int           `json:"clients"`
	Batch       int           `json:"batch"`
	KeyRange    int           `json:"key_range"`
	Duration    time.Duration `json:"duration_ns"`
	FaultAfter  time.Duration `json:"fault_after_ns"`
	Stagger     time.Duration `json:"stagger_ns"`
	Hold        time.Duration `json:"hold_ns"`
	SLOTarget   time.Duration `json:"slo_target_ns"`
	Seed        uint64        `json:"seed"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	Ops         uint64        `json:"ops"`
	OpErrs      uint64        `json:"op_errs"`
	MopsPerSec  float64       `json:"mops_per_sec"`
	P50         time.Duration `json:"p50_ns"`
	P99         time.Duration `json:"p99_ns"`
}

// ObsResult is the observability experiment's outcome: the joined causal
// timeline, the SLO trace, the raw event tape (for the Chrome trace),
// the evidence series, and the overhead A/B.
type ObsResult struct {
	Agg      ObsAggregate `json:"aggregate"`
	Timeline obs.Timeline `json:"timeline"`
	// Complete reports every injected fault's chain closed (fault →
	// verdict → migration → heal) — the acceptance headline.
	Complete bool             `json:"complete"`
	SLO      obs.SLOSnapshot  `json:"slo"`
	Sampler  telemetry.Health `json:"sampler"`
	// RecorderTotal/Drops account for the tape itself; nonzero drops mean
	// the ring wrapped and the timeline read a suffix.
	RecorderTotal uint64 `json:"recorder_total"`
	RecorderDrops uint64 `json:"recorder_drops"`
	// Episodes is the controller's migration log; Events the raw recorder
	// tape (stamp-ordered); Series the per-shard sampled trajectories.
	Episodes []adapt.Episode           `json:"episodes"`
	Events   []rec.Event               `json:"events"`
	Series   map[int][]telemetry.Point `json:"series,omitempty"`
	Overhead ObsOverhead               `json:"overhead"`
	// ServedAt is the live plane's URL when ObsAddr was set.
	ServedAt string `json:"served_at,omitempty"`
}

// RunObs runs EXP-OBS: an adaptive fleet of Shards identical shards on
// the ladder's bottom rung, one staggered self-healing fault per shard,
// every subsystem stamping the shared flight recorder, the SLO monitor
// fed from the live request path — then joins the tape into per-incident
// causal chains and measures the recorder's own throughput cost.
func RunObs(cfg ObsConfig) (ObsResult, error) {
	cfg.fill()

	clock := rec.NewClock()
	recorder := rec.NewRecorder(clock, cfg.RecorderCapacity)

	grace := cfg.Duration / 16
	if grace < 10*time.Millisecond {
		grace = 10 * time.Millisecond
	}
	gates := make([]*sched.Breakpoints, cfg.Shards)
	specs := make([]store.ShardSpec, cfg.Shards)
	for i := range specs {
		gates[i] = sched.NewBreakpoints()
		specs[i] = store.ShardSpec{
			Scheme:    cfg.StartScheme,
			Structure: cfg.Structure,
			Workers:   cfg.WorkersPerShard,
			Threshold: cfg.Threshold,
			Slots:     cfg.SlotsPerShard,
			Gate:      gates[i],
		}
	}
	st, err := store.New(store.Config{
		Shards:       specs,
		KeyRange:     cfg.KeyRange,
		MigrateGrace: grace,
		Recorder:     recorder,
	})
	if err != nil {
		return ObsResult{}, err
	}
	defer st.Close()

	src, err := workload.New(workload.Config{
		Dist:     cfg.Workload,
		Schedule: cfg.Schedule,
		KeyRange: cfg.KeyRange,
		Mix:      cfg.Mix,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return ObsResult{}, err
	}
	if err := prefillHalf(st, cfg.KeyRange, cfg.Batch, cfg.Seed); err != nil {
		return ObsResult{}, err
	}

	// The monitor: domain i = shard i, verdict flips mirrored onto the
	// tape — the detection half of every incident chain.
	startProps, err := all.Props(cfg.StartScheme)
	if err != nil {
		return ObsResult{}, err
	}
	budget := telemetry.Budget{Threads: cfg.WorkersPerShard, Threshold: cfg.Threshold}
	domains := make([]telemetry.Domain, cfg.Shards)
	for i := range domains {
		domains[i] = telemetry.Domain{
			Scheme:   cfg.StartScheme,
			Declared: startProps.Robustness,
			Budget:   budget,
		}
	}
	mon := telemetry.NewMonitor(telemetry.MonitorConfig{
		OnFlip: obs.VerdictHook(recorder),
	}, domains)
	sampler := telemetry.NewSampler(telemetry.Config{
		Interval: cfg.SampleInterval,
		Capacity: 4096,
		OnSample: mon.Observe,
		Clock:    clock,
		Recorder: recorder,
	}, storeProbe(st))

	ctl, err := adapt.New(adapt.Config{
		Ladder:     cfg.Ladder,
		Interval:   cfg.DecideInterval,
		Hysteresis: cfg.Hysteresis,
		Clock:      clock,
		Recorder:   recorder,
	}, st, mon)
	if err != nil {
		return ObsResult{}, err
	}

	// One self-healing fault per shard, staggered so the incidents are
	// separable on the tape.
	target := &chaos.Target{Store: st, Gates: gates, KeyRange: cfg.KeyRange}
	engine := chaos.NewEngine(target)
	engine.SetObs(clock, recorder)
	for s := 0; s < cfg.Shards; s++ {
		fault := cfg.Faults[s%len(cfg.Faults)]
		after := cfg.FaultAfter + time.Duration(s)*cfg.Stagger
		if err := engine.Add(fault, chaos.Params{Shard: s}, chaos.Schedule{
			After:    after,
			Hold:     cfg.Hold,
			Episodes: 1,
		}); err != nil {
			return ObsResult{}, err
		}
	}

	slo := obs.NewSLO(cfg.SLOTarget, 512, clock, recorder)

	var srv *obs.Server
	if cfg.ObsAddr != "" {
		srv, err = obs.Serve(cfg.ObsAddr, &obs.Registry{
			Store:    st,
			Sampler:  sampler,
			Monitor:  mon,
			Recorder: recorder,
			SLO:      slo,
		})
		if err != nil {
			return ObsResult{}, err
		}
		defer srv.Close()
	}

	sampler.Start()
	engine.Start()
	ctl.Start()
	slo.Start(cfg.SampleInterval)
	start := time.Now()
	deadline := start.Add(cfg.Duration)

	// Deadline watchdog, as in the chaos and adaptive runs: freeze the
	// policy, snapshot the evidence, then stop the engine. The faults
	// self-heal at Hold, so by the deadline the engine is normally idle.
	series := make(map[int][]telemetry.Point, cfg.Shards)
	healed := make(chan struct{})
	go func() {
		defer close(healed)
		time.Sleep(time.Until(deadline))
		ctl.Stop()
		for s := 0; s < cfg.Shards; s++ {
			series[s] = sampler.Series(s).Points()
		}
		engine.Stop()
	}()
	ops, opErrs, lat, err := runTimedClients(st, src, cfg.Clients, cfg.Batch, deadline, slo.Observe)
	<-healed
	elapsed := time.Since(start)
	slo.Stop()
	sampler.Stop()
	if err != nil {
		return ObsResult{}, err
	}
	if err := st.Close(); err != nil {
		return ObsResult{}, err
	}

	events := recorder.Snapshot()
	tl := obs.BuildTimeline(events, series, elapsed)

	res := ObsResult{
		Agg: ObsAggregate{
			Shards:      cfg.Shards,
			StartScheme: cfg.StartScheme,
			Ladder:      cfg.Ladder,
			Structure:   cfg.Structure,
			Faults:      cfg.Faults,
			Workers:     cfg.WorkersPerShard,
			Clients:     cfg.Clients,
			Batch:       cfg.Batch,
			KeyRange:    cfg.KeyRange,
			Duration:    cfg.Duration,
			FaultAfter:  cfg.FaultAfter,
			Stagger:     cfg.Stagger,
			Hold:        cfg.Hold,
			SLOTarget:   cfg.SLOTarget,
			Seed:        cfg.Seed,
			Elapsed:     elapsed,
			Ops:         ops,
			OpErrs:      opErrs,
			MopsPerSec:  float64(ops) / elapsed.Seconds() / 1e6,
			P50:         lat.Percentile(0.50),
			P99:         lat.Percentile(0.99),
		},
		Timeline:      tl,
		Complete:      tl.Complete() && len(tl.Incidents) == cfg.Shards,
		SLO:           slo.Snapshot(),
		Sampler:       sampler.Health(),
		RecorderTotal: recorder.Total(),
		RecorderDrops: recorder.Drops(),
		Episodes:      ctl.Episodes(),
		Events:        events,
		Series:        series,
	}
	if srv != nil {
		res.ServedAt = srv.URL
	}

	if cfg.OverheadRounds > 0 {
		oh, err := measureObsOverhead(cfg)
		if err != nil {
			return ObsResult{}, err
		}
		res.Overhead = oh
	}
	return res, nil
}

// measureObsOverhead runs alternating recorder-on/recorder-off traffic
// rounds over a faultless clone of the fleet and compares each arm's
// best round. Interference on a shared box only ever subtracts
// throughput, so the per-arm maximum is the least-noise estimate of the
// arm's true rate; medians let one descheduled round swing the delta
// past the budget on small runners. Alternation (on, off, off, on, ...)
// spreads thermal and scheduler drift across both arms instead of
// donating it to whichever ran second.
func measureObsOverhead(cfg ObsConfig) (ObsOverhead, error) {
	round := func(withRecorder bool, seed uint64) (float64, error) {
		var recorder *rec.Recorder
		if withRecorder {
			recorder = rec.NewRecorder(nil, cfg.RecorderCapacity)
		}
		specs := make([]store.ShardSpec, cfg.Shards)
		for i := range specs {
			specs[i] = store.ShardSpec{
				Scheme:    cfg.StartScheme,
				Structure: cfg.Structure,
				Workers:   cfg.WorkersPerShard,
				Threshold: cfg.Threshold,
				Slots:     cfg.SlotsPerShard,
			}
		}
		st, err := store.New(store.Config{
			Shards:   specs,
			KeyRange: cfg.KeyRange,
			Recorder: recorder,
		})
		if err != nil {
			return 0, err
		}
		defer st.Close()
		src, err := workload.New(workload.Config{
			Dist:     cfg.Workload,
			Schedule: cfg.Schedule,
			KeyRange: cfg.KeyRange,
			Mix:      cfg.Mix,
			Seed:     seed,
		})
		if err != nil {
			return 0, err
		}
		if err := prefillHalf(st, cfg.KeyRange, cfg.Batch, seed); err != nil {
			return 0, err
		}
		start := time.Now()
		ops, _, _, err := runTimedClients(st, src, cfg.Clients, cfg.Batch,
			start.Add(cfg.OverheadRoundDuration), nil)
		elapsed := time.Since(start)
		if err != nil {
			return 0, err
		}
		return float64(ops) / elapsed.Seconds() / 1e6, nil
	}

	// One discarded warmup round: the first round after the faulted run
	// pays for cold caches and allocator growth, and whichever arm drew
	// it would eat a systematic penalty.
	if _, err := round(true, cfg.Seed^0xdead); err != nil {
		return ObsOverhead{}, err
	}

	var on, off []float64
	for i := 0; i < cfg.OverheadRounds; i++ {
		seed := cfg.Seed + uint64(i)*7919
		// Alternate within-pair order (on/off, off/on, ...): the process
		// keeps warming as rounds run, so a fixed order would donate the
		// warm-up to whichever arm always ran second.
		first := i%2 == 0
		runtime.GC()
		m1, err := round(first, seed)
		if err != nil {
			return ObsOverhead{}, err
		}
		runtime.GC()
		m2, err := round(!first, seed)
		if err != nil {
			return ObsOverhead{}, err
		}
		if first {
			on, off = append(on, m1), append(off, m2)
		} else {
			on, off = append(on, m2), append(off, m1)
		}
	}
	oh := ObsOverhead{
		Rounds:          cfg.OverheadRounds,
		RecorderOnMops:  best(on),
		RecorderOffMops: best(off),
	}
	if oh.RecorderOffMops > 0 {
		oh.DeltaPct = (oh.RecorderOffMops - oh.RecorderOnMops) / oh.RecorderOffMops * 100
	}
	if oh.DeltaPct < 0 {
		oh.DeltaPct = 0
	}
	oh.OK = oh.DeltaPct <= 5
	return oh, nil
}

func best(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// CheckObs returns an error when the result misses the acceptance bar:
// an unclosed incident chain, a non-finite detection latency, or a
// recorder overhead above budget. Drivers use it for -strict exits.
func CheckObs(res ObsResult) error {
	if len(res.Timeline.Incidents) == 0 {
		return fmt.Errorf("obs: no incidents on the tape (expected %d)", res.Agg.Shards)
	}
	for _, in := range res.Timeline.Incidents {
		if !in.Complete {
			return fmt.Errorf("obs: shard %d incident chain did not close (fault %q: verdict=%v migration=%v/%v heal=%v)",
				in.Shard, in.Fault, in.VerdictAt != 0, in.MigrationStartAt != 0, in.MigrationDoneAt != 0, in.HealedAt != 0)
		}
		if in.DetectionLatency < 0 {
			return fmt.Errorf("obs: shard %d detection latency is not finite", in.Shard)
		}
	}
	if res.Overhead.Rounds > 0 && !res.Overhead.OK {
		return fmt.Errorf("obs: recorder overhead %.1f%% exceeds the 5%% budget", res.Overhead.DeltaPct)
	}
	return nil
}
