package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

// shortPipelineConfig boxes EXP-PIPELINE to CI-sized windows: long
// enough for the stall to saturate the leg budget and shed, short
// enough for -race.
func shortPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Shards:        4,
		Duration:      250 * time.Millisecond,
		ChaosDuration: 400 * time.Millisecond,
		KeyRange:      1024,
		LegTimeout:    20 * time.Millisecond,
		Seed:          7,
	}
}

func TestRunPipelineShort(t *testing.T) {
	res, err := RunPipeline(shortPipelineConfig())
	if err != nil {
		t.Fatalf("RunPipeline: %v", err)
	}
	if res.Blocking.Requests == 0 || res.Pipelined.Requests == 0 {
		t.Fatalf("empty arm: blocking=%d pipelined=%d", res.Blocking.Requests, res.Pipelined.Requests)
	}
	if !res.PipelinedBeatsBlocking {
		t.Errorf("pipelined arm (%.0f req/s) did not beat blocking (%.0f req/s)",
			res.Pipelined.ReqPerSec, res.Blocking.ReqPerSec)
	}
	c := res.Chaos
	if c.Requests == 0 {
		t.Fatal("chaos campaign served no requests")
	}
	if c.Partial == 0 {
		t.Error("chaos-stalled shard produced no partial results")
	}
	if !c.FaultFired || !c.FaultHeals || !c.CleanAfterHeal {
		t.Errorf("partial-failure chain open: fired=%v healed=%v clean=%v",
			c.FaultFired, c.FaultHeals, c.CleanAfterHeal)
	}
	if !res.PartialChainsClosed {
		t.Error("PartialChainsClosed not set despite closed chain")
	}
	if c.ScatterEvents == 0 || c.MergeEvents == 0 {
		t.Errorf("recorder missing exec events: scatter=%d merge=%d", c.ScatterEvents, c.MergeEvents)
	}
	if err := CheckPipeline(res); err != nil {
		t.Errorf("CheckPipeline: %v", err)
	}

	var buf bytes.Buffer
	WritePipelineTable(&buf, res)
	for _, want := range []string{"blocking", "pipelined", "chaos:", "partial chains closed"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table missing %q:\n%s", want, buf.String())
		}
	}
}

func TestPipelineReportRoundTrip(t *testing.T) {
	res := PipelineResult{
		Shards: 4, Workers: 1, Clients: 4, Window: 8, Structure: "michael",
		ReqMix: workload.ReqMixFanout,
		Blocking:  PipelineArmRow{Arm: "blocking", Requests: 100, ReqPerSec: 400},
		Pipelined: PipelineArmRow{Arm: "pipelined", Requests: 300, ReqPerSec: 1200, ReqPerSecX: 3, Partial: 2},
		Chaos: PipelineChaosRow{
			FaultShard: 1, Requests: 50, Partial: 5, Sheds: 3,
			FaultFired: true, FaultHeals: true, CleanAfterHeal: true, DegradedSeen: true,
		},
		PipelinedBeatsBlocking: true,
		PartialChainsClosed:    true,
	}
	var buf bytes.Buffer
	if err := WritePipelineReport(&buf, res); err != nil {
		t.Fatalf("write: %v", err)
	}
	for _, want := range []string{`"experiment": "pipeline"`, `"pipelined_beats_blocking": true`, `"partial_chains_closed": true`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("artifact missing %q", want)
		}
	}
	rep, err := ReadPipelineReport(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if rep.Experiment != "pipeline" || rep.Pipelined.Requests != 300 || !rep.PartialChainsClosed {
		t.Errorf("round-trip mismatch: %+v", rep)
	}
	if err := CheckPipeline(rep.PipelineResult); err != nil {
		t.Errorf("CheckPipeline on round-tripped result: %v", err)
	}
}
