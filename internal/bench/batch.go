// EXP-BATCH: the batch-fusion experiment. Three sections over the same
// single-shard Michael-list deployment:
//
// Section 1 (throughput) A/Bs the fused hot path against the per-op
// baseline: for each scheme × client batch size, the same churn workload
// runs once with batch fusion (one amortized SMR bracket per request,
// key-sorted execution, cross-op predecessor reuse) and once with
// ShardSpec.NoFuse (every op under its own BeginOp/EndOp bracket).
// Measured: throughput, request p50/p99, and the fused-window counters;
// the headline is the best fused/per-op ratio (the acceptance bar is
// >= 1.15x at batch >= 16).
//
// Section 2 (allocs) measures steady-state allocations on the
// zero-alloc request spine: a warmed DoInto loop with a reused result
// slice on a contains-only stream, mallocs read before and after with GC
// parked so pool evictions cannot masquerade as serving-path churn. The
// headline is allocs per DoInto call — the acceptance bar is zero.
//
// Section 3 (backlog) is the robustness guard: for each scheme, a
// two-worker shard has one worker parked at a traversal breakpoint for a
// fixed window while the other serves fused (resp. per-op) traffic. The
// fused window's K-op bracket cadence must keep the peak retired backlog
// within 2x of the per-op arm's — amortization must not buy throughput
// by silently widening the reclamation pin.

package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/ds"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/workload"
)

// BatchConfig sizes EXP-BATCH.
type BatchConfig struct {
	// Workers is the shard's worker count; 0 selects 2.
	Workers int
	// Clients is the throughput-section client count; 0 selects 4.
	Clients int
	// Duration is the traffic window per throughput arm; 0 selects 300ms.
	Duration time.Duration
	// Batches is the client batch sizes to sweep; nil selects {16, 64}.
	Batches []int
	// KeyRange is the key universe (the live chain is about half of it);
	// 0 selects 4096.
	KeyRange int
	// Schemes is the scheme list for the throughput and backlog sections;
	// nil selects {ebr, hp, vbr} — one representative per reclamation
	// family (epoch, pointer, version).
	Schemes []string
	// AllocRounds is the measured DoInto call count in the allocation
	// section; 0 selects 2000.
	AllocRounds int
	// StallDuration is the parked-worker window per backlog arm; 0
	// selects 250ms.
	StallDuration time.Duration
	// Seed makes the client streams deterministic.
	Seed uint64
}

func (cfg *BatchConfig) fill() {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 300 * time.Millisecond
	}
	if len(cfg.Batches) == 0 {
		cfg.Batches = []int{16, 64}
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 4096
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = []string{"ebr", "hp", "vbr"}
	}
	if cfg.AllocRounds <= 0 {
		cfg.AllocRounds = 2000
	}
	if cfg.StallDuration <= 0 {
		cfg.StallDuration = 250 * time.Millisecond
	}
}

// BatchArm is one throughput arm's measurement.
type BatchArm struct {
	// Mode is "fused" or "per-op" (the ShardSpec.NoFuse baseline).
	Mode       string        `json:"mode"`
	Ops        uint64        `json:"ops"`
	MopsPerSec float64       `json:"mops_per_sec"`
	P50        time.Duration `json:"p50_ns"`
	P99        time.Duration `json:"p99_ns"`
	// Fused-window counters (zero on the per-op arm).
	FusedBatches uint64 `json:"fused_batches"`
	FusedOps     uint64 `json:"fused_ops"`
	Rebrackets   uint64 `json:"rebrackets"`
	BatchSorts   uint64 `json:"batch_sorts"`
}

// BatchPair is one scheme × batch-size A/B: the fused arm, the per-op
// arm, and their throughput ratio.
type BatchPair struct {
	Scheme string   `json:"scheme"`
	Batch  int      `json:"batch"`
	Fused  BatchArm `json:"fused"`
	Serial BatchArm `json:"serial"`
	// Ratio is fused over per-op throughput.
	Ratio float64 `json:"ratio"`
}

// BatchAllocs is the allocation section's measurement.
type BatchAllocs struct {
	// Rounds is the measured DoInto call count, Batch the ops per call.
	Rounds int `json:"rounds"`
	Batch  int `json:"batch"`
	// AllocsPerOp is mallocs per DoInto call over the measured window
	// (process-wide, so shard-worker allocations count too).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// ZeroAlloc is the headline, under testing.B's integer-division
	// convention (MemAllocsPerOp == 0): the serving path itself must not
	// allocate, while one-time runtime residue — a sync.Pool pinning a
	// per-P local the first time a migrated worker touches it — rounds
	// away just as it does in `go test -benchmem`.
	ZeroAlloc bool `json:"zero_alloc"`
}

// BatchBacklogArm is one parked-worker arm's measurement.
type BatchBacklogArm struct {
	Mode        string `json:"mode"`
	Ops         uint64 `json:"ops"`
	PeakRetired uint64 `json:"peak_retired"`
}

// BatchBacklogPair is one scheme's parked-worker A/B and its verdict.
type BatchBacklogPair struct {
	Scheme string          `json:"scheme"`
	Fused  BatchBacklogArm `json:"fused"`
	Serial BatchBacklogArm `json:"serial"`
	// Bounded reports the robustness guard: the fused arm's peak retired
	// backlog stayed within 2x the per-op arm's (plus a small absolute
	// floor so near-zero baselines don't flake the ratio).
	Bounded bool `json:"bounded"`
}

// backlogFloor absorbs scheduling noise when the per-op baseline's peak
// backlog is tiny (a few retire-list entries): the 2x bound is a growth
// argument, not a claim about sub-threshold jitter.
const backlogFloor = 64

// BatchResult is the full EXP-BATCH measurement.
type BatchResult struct {
	Workers       int           `json:"workers"`
	Clients       int           `json:"clients"`
	Duration      time.Duration `json:"duration_ns"`
	KeyRange      int           `json:"key_range"`
	StallDuration time.Duration `json:"stall_duration_ns"`
	Seed          uint64        `json:"seed"`

	Pairs   []BatchPair        `json:"pairs"`
	Allocs  BatchAllocs        `json:"allocs"`
	Backlog []BatchBacklogPair `json:"backlog"`

	// BestRatio is the throughput headline: the best fused/per-op ratio
	// across the sweep (the acceptance bar is >= 1.15 at batch >= 16).
	BestRatio float64 `json:"best_ratio"`
	// FusedBeatsSerial reports BestRatio >= 1.15.
	FusedBeatsSerial bool `json:"fused_beats_serial"`
	// ZeroAlloc mirrors the allocation section's headline.
	ZeroAlloc bool `json:"zero_alloc"`
	// BacklogBounded reports every scheme's parked-worker pair held the
	// 2x bound.
	BacklogBounded bool `json:"backlog_bounded"`
}

// runBatchArm runs one throughput arm: a single Michael-list shard over
// the whole key range, duration-boxed clients, fused-window counters read
// after close.
func runBatchArm(cfg BatchConfig, scheme string, batch int, nofuse bool) (BatchArm, error) {
	mode := "fused"
	if nofuse {
		mode = "per-op"
	}
	st, err := store.New(store.Config{
		Shards: []store.ShardSpec{{
			Scheme:    scheme,
			Structure: "michael",
			Workers:   cfg.Workers,
			NoFuse:    nofuse,
		}},
		KeyRange: cfg.KeyRange,
	})
	if err != nil {
		return BatchArm{}, err
	}
	defer st.Close()
	src, err := workload.New(workload.Config{
		KeyRange: cfg.KeyRange,
		Mix:      MixBalanced,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return BatchArm{}, err
	}
	if err := prefillHalf(st, cfg.KeyRange, batch, cfg.Seed); err != nil {
		return BatchArm{}, err
	}
	start := time.Now()
	ops, _, lat, err := runTimedClients(st, src, cfg.Clients, batch, start.Add(cfg.Duration), nil)
	if err != nil {
		return BatchArm{}, err
	}
	elapsed := time.Since(start)
	if err := st.Close(); err != nil {
		return BatchArm{}, err
	}
	s := st.Stats()
	return BatchArm{
		Mode:         mode,
		Ops:          ops,
		MopsPerSec:   float64(ops) / elapsed.Seconds() / 1e6,
		P50:          lat.Percentile(0.50),
		P99:          lat.Percentile(0.99),
		FusedBatches: s.FusedBatches,
		FusedOps:     s.FusedOps,
		Rebrackets:   s.Rebrackets,
		BatchSorts:   s.BatchSorts,
	}, nil
}

// runBatchAllocs measures the zero-alloc claim: a warmed DoInto loop on
// a contains-only batch with a reused result slice, process-wide mallocs
// differenced around the window. Contains-only keeps the structure and
// retire lists quiescent, so every malloc the window sees belongs to the
// request spine — the thing the claim is about. GC is parked for the
// window so a collection cannot evict the request/spine pools mid-count.
func runBatchAllocs(cfg BatchConfig) (BatchAllocs, error) {
	const batch = 64
	st, err := store.New(store.Config{
		Shards:   []store.ShardSpec{{Scheme: "ebr", Structure: "michael", Workers: cfg.Workers}},
		KeyRange: cfg.KeyRange,
	})
	if err != nil {
		return BatchAllocs{}, err
	}
	defer st.Close()
	if err := prefillHalf(st, cfg.KeyRange, batch, cfg.Seed); err != nil {
		return BatchAllocs{}, err
	}
	rng := workload.RNG(cfg.Seed ^ 0xbeef)
	ops := make([]store.Op, batch)
	for i := range ops {
		ops[i] = store.Op{Kind: workload.OpContains, Key: int64(rng.Next() % uint64(cfg.KeyRange))}
	}
	res := make([]store.Result, batch)
	do := func(n int) error {
		for i := 0; i < n; i++ {
			if err := st.DoInto(ops, res); err != nil {
				return err
			}
		}
		return nil
	}
	// Warm the pools and the worker scratch past their growth phase.
	if err := do(256); err != nil {
		return BatchAllocs{}, err
	}
	runtime.GC()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := do(cfg.AllocRounds); err != nil {
		return BatchAllocs{}, err
	}
	runtime.ReadMemStats(&after)
	mallocs := after.Mallocs - before.Mallocs
	bytes := after.TotalAlloc - before.TotalAlloc
	return BatchAllocs{
		Rounds:      cfg.AllocRounds,
		Batch:       batch,
		AllocsPerOp: float64(mallocs) / float64(cfg.AllocRounds),
		BytesPerOp:  float64(bytes) / float64(cfg.AllocRounds),
		ZeroAlloc:   mallocs/uint64(cfg.AllocRounds) == 0,
	}, nil
}

// runBatchBacklog runs one parked-worker arm: a two-worker gated shard,
// worker 0 parked at the traversal head breakpoint for the whole window,
// the surviving worker serving batched traffic. The stall releases at
// the deadline so the client blocked on the parked worker's request can
// drain and the shard closes clean.
func runBatchBacklog(cfg BatchConfig, scheme string, nofuse bool) (BatchBacklogArm, error) {
	mode := "fused"
	if nofuse {
		mode = "per-op"
	}
	bp := sched.NewBreakpoints()
	workers := cfg.Workers
	if workers < 2 {
		workers = 2 // one to park, one to serve
	}
	st, err := store.New(store.Config{
		Shards: []store.ShardSpec{{
			Scheme:    scheme,
			Structure: "michael",
			Workers:   workers,
			Gate:      bp,
			NoFuse:    nofuse,
		}},
		KeyRange: cfg.KeyRange,
	})
	if err != nil {
		return BatchBacklogArm{}, err
	}
	defer st.Close()
	src, err := workload.New(workload.Config{
		KeyRange: cfg.KeyRange,
		Mix:      MixBalanced,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return BatchBacklogArm{}, err
	}
	batch := 32
	if err := prefillHalf(st, cfg.KeyRange, batch, cfg.Seed); err != nil {
		return BatchBacklogArm{}, err
	}
	stall := bp.Arm(0, ds.PointSearchHead, nil, 0)
	timer := time.AfterFunc(cfg.StallDuration, stall.Release)
	defer timer.Stop()
	ops, _, _, err := runTimedClients(st, src, 2, batch, time.Now().Add(cfg.StallDuration), nil)
	stall.Release() // idempotent: frees the worker if the timer lost a race
	if err != nil {
		return BatchBacklogArm{}, err
	}
	if err := st.Close(); err != nil {
		return BatchBacklogArm{}, err
	}
	return BatchBacklogArm{
		Mode:        mode,
		Ops:         ops,
		PeakRetired: st.Stats().MaxRetired,
	}, nil
}

// RunBatch runs all three sections of EXP-BATCH, baseline arms last so
// each pair reads fused-first in the artifact.
func RunBatch(cfg BatchConfig) (BatchResult, error) {
	cfg.fill()
	res := BatchResult{
		Workers:       cfg.Workers,
		Clients:       cfg.Clients,
		Duration:      cfg.Duration,
		KeyRange:      cfg.KeyRange,
		StallDuration: cfg.StallDuration,
		Seed:          cfg.Seed,
	}
	for _, scheme := range cfg.Schemes {
		for _, batch := range cfg.Batches {
			fused, err := runBatchArm(cfg, scheme, batch, false)
			if err != nil {
				return BatchResult{}, err
			}
			serial, err := runBatchArm(cfg, scheme, batch, true)
			if err != nil {
				return BatchResult{}, err
			}
			pair := BatchPair{Scheme: scheme, Batch: batch, Fused: fused, Serial: serial}
			if serial.MopsPerSec > 0 {
				pair.Ratio = fused.MopsPerSec / serial.MopsPerSec
			}
			if pair.Ratio > res.BestRatio {
				res.BestRatio = pair.Ratio
			}
			res.Pairs = append(res.Pairs, pair)
		}
	}
	allocs, err := runBatchAllocs(cfg)
	if err != nil {
		return BatchResult{}, err
	}
	res.Allocs = allocs
	res.BacklogBounded = true
	for _, scheme := range cfg.Schemes {
		fused, err := runBatchBacklog(cfg, scheme, false)
		if err != nil {
			return BatchResult{}, err
		}
		serial, err := runBatchBacklog(cfg, scheme, true)
		if err != nil {
			return BatchResult{}, err
		}
		pair := BatchBacklogPair{Scheme: scheme, Fused: fused, Serial: serial}
		pair.Bounded = fused.PeakRetired <= 2*serial.PeakRetired+backlogFloor
		if !pair.Bounded {
			res.BacklogBounded = false
		}
		res.Backlog = append(res.Backlog, pair)
	}
	res.FusedBeatsSerial = res.BestRatio >= 1.15
	res.ZeroAlloc = allocs.ZeroAlloc
	return res, nil
}

// CheckBatch is the CI gate over a batch result: the fused path must
// beat the per-op baseline, the steady-state spine must not allocate,
// and amortization must not widen the parked-worker backlog past 2x.
func CheckBatch(res BatchResult) error {
	if !res.FusedBeatsSerial {
		return fmt.Errorf("batch: best fused/per-op ratio %.3f below the 1.15x bar", res.BestRatio)
	}
	if !res.ZeroAlloc {
		return fmt.Errorf("batch: steady-state DoInto allocated %.2f allocs/call (%.1f B/call); the spine must be zero-alloc",
			res.Allocs.AllocsPerOp, res.Allocs.BytesPerOp)
	}
	if !res.BacklogBounded {
		for _, p := range res.Backlog {
			if !p.Bounded {
				return fmt.Errorf("batch: %s fused peak retired backlog %d exceeds 2x per-op %d under a parked worker",
					p.Scheme, p.Fused.PeakRetired, p.Serial.PeakRetired)
			}
		}
	}
	return nil
}
