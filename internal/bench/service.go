package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/hist"
	"repro/internal/store"
	"repro/internal/workload"
)

// ServiceConfig sizes the sharded-service experiment (EXP-SERVICE): M
// closed-loop clients batching operations into a store whose shards may
// run different reclamation schemes.
type ServiceConfig struct {
	// Shards is the shard count; 0 selects 4.
	Shards int
	// Schemes assigns reclamation schemes to shards, cycled when shorter
	// than Shards (so ["hp","ebr"] alternates). Empty selects ["ebr"].
	Schemes []string
	// Structure is the per-shard set structure; empty selects "hashmap".
	Structure string
	// WorkersPerShard sizes each shard's worker pool; 0 selects 1.
	WorkersPerShard int
	// Clients is the number of closed-loop client goroutines; 0 selects
	// 2 × Shards.
	Clients int
	// OpsPerClient is the measured operation count per client; 0 selects
	// 20000.
	OpsPerClient int
	// WarmupOpsPerClient is the untimed warmup: 0 selects
	// OpsPerClient/10, negative disables.
	WarmupOpsPerClient int
	// Batch is how many operations a client packs into one service
	// request; 0 selects 16.
	Batch int
	// KeyRange is the key universe; 0 selects 4096.
	KeyRange int
	// Mix is the base operation mix; zero selects MixBalanced.
	Mix Mix
	// Workload and Schedule name the key distribution and op-mix schedule
	// (workload registries); empty selects uniform/steady.
	Workload string
	Schedule string
	// Seed makes every client stream deterministic.
	Seed uint64
}

func (cfg *ServiceConfig) fill() {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = []string{"ebr"}
	}
	if cfg.Structure == "" {
		cfg.Structure = "hashmap"
	}
	if cfg.WorkersPerShard <= 0 {
		cfg.WorkersPerShard = 1
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 2 * cfg.Shards
	}
	if cfg.OpsPerClient <= 0 {
		cfg.OpsPerClient = 20000
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 16
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 4096
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = MixBalanced
	}
}

// ServiceShardRow is one shard's slice of the service measurement. Ops
// and MopsPerSec cover the timed phase only; the backlog and fault
// counters are cumulative over the shard's lifetime (prefill and warmup
// included — backlog carries across phases).
type ServiceShardRow struct {
	Shard          int     `json:"shard"`
	Scheme         string  `json:"scheme"`
	Ops            uint64  `json:"ops"`
	MopsPerSec     float64 `json:"mops_per_sec"`
	Retired        uint64  `json:"retired"`
	MaxRetired     uint64  `json:"max_retired"`
	Faults         uint64  `json:"faults"`
	UnsafeAccesses uint64  `json:"unsafe_accesses"`
	Restarts       uint64  `json:"restarts"`
}

// ServiceRow is the aggregate service measurement. P50/P99 are
// *service-request* latencies — one batched Do as seen by a client,
// queueing included — which is what a service's tail means.
type ServiceRow struct {
	Shards     int           `json:"shards"`
	Schemes    []string      `json:"schemes"`
	Structure  string        `json:"structure"`
	Clients    int           `json:"clients"`
	Batch      int           `json:"batch"`
	Workers    int           `json:"workers_per_shard"`
	Mix        Mix           `json:"mix"`
	Workload   string        `json:"workload"`
	Schedule   string        `json:"schedule"`
	KeyRange   int           `json:"key_range"`
	Ops        int           `json:"ops"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	MopsPerSec float64       `json:"mops_per_sec"`
	P50        time.Duration `json:"p50_ns"`
	P99        time.Duration `json:"p99_ns"`

	PeakRetired    uint64 `json:"peak_retired"`
	Faults         uint64 `json:"faults"`
	UnsafeAccesses uint64 `json:"unsafe_accesses"`
	Restarts       uint64 `json:"restarts"`
}

// ServiceResult pairs the aggregate row with the per-shard breakdown.
type ServiceResult struct {
	Aggregate ServiceRow        `json:"aggregate"`
	PerShard  []ServiceShardRow `json:"per_shard"`
}

// runClients drives every client through ops operations from src,
// batching Batch at a time. When lats is non-nil, client c records each
// request's latency into lats[c].
func runClients(st *store.Store, src *workload.Source, cfg ServiceConfig, ops int, lats []hist.Latency) error {
	var wg sync.WaitGroup
	errs := make([]error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stream := src.Thread(c, ops)
			batch := make([]store.Op, 0, cfg.Batch)
			for done := 0; done < ops; {
				batch = batch[:0]
				for len(batch) < cfg.Batch && done+len(batch) < ops {
					kind, key := stream.Next()
					batch = append(batch, store.Op{Kind: kind, Key: key})
				}
				var t0 time.Time
				if lats != nil {
					t0 = time.Now()
				}
				res, err := st.Do(batch)
				if err != nil {
					errs[c] = err
					return
				}
				if lats != nil {
					lats[c].Record(time.Since(t0))
				}
				for i, r := range res {
					if r.Err != nil {
						errs[c] = fmt.Errorf("%v(%d): %w", batch[i].Kind, batch[i].Key, r.Err)
						return
					}
				}
				done += len(batch)
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunService builds the sharded store, prefills it to half the key range,
// runs the warmup and the timed closed-loop client phase, then drains the
// store and assembles the rows.
func RunService(cfg ServiceConfig) (ServiceResult, error) {
	cfg.fill()
	specs := make([]store.ShardSpec, cfg.Shards)
	for i := range specs {
		specs[i] = store.ShardSpec{
			Scheme:    cfg.Schemes[i%len(cfg.Schemes)],
			Structure: cfg.Structure,
			Workers:   cfg.WorkersPerShard,
		}
	}
	st, err := store.New(store.Config{Shards: specs, KeyRange: cfg.KeyRange})
	if err != nil {
		return ServiceResult{}, err
	}
	defer st.Close()
	src, err := workload.New(workload.Config{
		Dist:     cfg.Workload,
		Schedule: cfg.Schedule,
		KeyRange: cfg.KeyRange,
		Mix:      cfg.Mix,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return ServiceResult{}, err
	}

	// Prefill to half occupancy so contains() hits about half the time,
	// batched through the service like any other traffic.
	pre := workload.RNG(cfg.Seed ^ 0xf00d)
	batch := make([]store.Op, 0, cfg.Batch)
	for i := 0; i < cfg.KeyRange/2; i++ {
		batch = append(batch, store.Op{Kind: workload.OpInsert, Key: int64(pre.Next() % uint64(cfg.KeyRange))})
		if len(batch) == cfg.Batch || i == cfg.KeyRange/2-1 {
			res, err := st.Do(batch)
			if err != nil {
				return ServiceResult{}, err
			}
			for _, r := range res {
				if r.Err != nil {
					return ServiceResult{}, r.Err
				}
			}
			batch = batch[:0]
		}
	}

	warmup := cfg.WarmupOpsPerClient
	switch {
	case warmup < 0:
		warmup = 0
	case warmup == 0:
		warmup = cfg.OpsPerClient / 10
	}
	if warmup > 0 {
		if err := runClients(st, src.Steady(cfg.Seed^0xbadcafe), cfg, warmup, nil); err != nil {
			return ServiceResult{}, err
		}
	}

	before := st.Stats()
	lats := make([]hist.Latency, cfg.Clients)
	start := time.Now()
	if err := runClients(st, src, cfg, cfg.OpsPerClient, lats); err != nil {
		return ServiceResult{}, err
	}
	elapsed := time.Since(start)

	// Drain before the final read so Retired reflects the settled
	// backlog, then build rows from the post-close counters.
	if err := st.Close(); err != nil {
		return ServiceResult{}, err
	}
	after := st.Stats()

	var lat hist.Latency
	for i := range lats {
		lat.Merge(&lats[i])
	}
	srcCfg := src.Config()
	ops := cfg.Clients * cfg.OpsPerClient
	agg := ServiceRow{
		Shards:     cfg.Shards,
		Schemes:    cfg.Schemes,
		Structure:  cfg.Structure,
		Clients:    cfg.Clients,
		Batch:      cfg.Batch,
		Workers:    cfg.WorkersPerShard,
		Mix:        srcCfg.Mix,
		Workload:   srcCfg.Dist,
		Schedule:   srcCfg.Schedule,
		KeyRange:   cfg.KeyRange,
		Ops:        ops,
		Elapsed:    elapsed,
		MopsPerSec: float64(ops) / elapsed.Seconds() / 1e6,
		P50:        lat.Percentile(0.50),
		P99:        lat.Percentile(0.99),

		PeakRetired:    after.MaxRetired,
		Faults:         after.Faults,
		UnsafeAccesses: after.UnsafeAccesses,
		Restarts:       after.Restarts,
	}
	rows := make([]ServiceShardRow, cfg.Shards)
	for i, sh := range after.Shards {
		measured := sh.Ops - before.Shards[i].Ops
		rows[i] = ServiceShardRow{
			Shard:          sh.Shard,
			Scheme:         sh.Scheme,
			Ops:            measured,
			MopsPerSec:     float64(measured) / elapsed.Seconds() / 1e6,
			Retired:        sh.Retired,
			MaxRetired:     sh.MaxRetired,
			Faults:         sh.Faults,
			UnsafeAccesses: sh.UnsafeAccesses,
			Restarts:       sh.Restarts,
		}
	}
	return ServiceResult{Aggregate: agg, PerShard: rows}, nil
}
