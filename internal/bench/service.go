package bench

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/adapt"
	"repro/internal/hist"
	"repro/internal/obs"
	"repro/internal/obs/rec"
	"repro/internal/smr/all"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// ServiceConfig sizes the sharded-service experiment (EXP-SERVICE): M
// closed-loop clients batching operations into a store whose shards may
// run different reclamation schemes.
type ServiceConfig struct {
	// Shards is the shard count; 0 selects 4.
	Shards int
	// Schemes assigns reclamation schemes to shards, cycled when shorter
	// than Shards (so ["hp","ebr"] alternates). Empty selects ["ebr"].
	Schemes []string
	// Structure is the per-shard set structure; empty selects "hashmap".
	Structure string
	// WorkersPerShard sizes each shard's worker pool; 0 selects 1.
	WorkersPerShard int
	// Clients is the number of closed-loop client goroutines; 0 selects
	// 2 × Shards.
	Clients int
	// OpsPerClient is the measured operation count per client; 0 selects
	// 20000.
	OpsPerClient int
	// WarmupOpsPerClient is the untimed warmup: 0 selects
	// OpsPerClient/10, negative disables.
	WarmupOpsPerClient int
	// Batch is how many operations a client packs into one service
	// request; 0 selects 16.
	Batch int
	// KeyRange is the key universe; 0 selects 4096.
	KeyRange int
	// Mix is the base operation mix; zero selects MixBalanced.
	Mix Mix
	// Workload and Schedule name the key distribution and op-mix schedule
	// (workload registries); empty selects uniform/steady.
	Workload string
	Schedule string
	// Seed makes every client stream deterministic.
	Seed uint64
	// Duration, when positive, switches the run from op-boxed to
	// duration-boxed (the erachaos convention): clients batch until the
	// deadline, OpsPerClient and the warmup are ignored, and
	// per-operation errors are absorbed and counted instead of failing
	// the run — a live migration's swap window surfaces as a transient
	// ErrShardClosed, which is service behaviour, not harness failure.
	Duration time.Duration
	// Adapt, when non-nil, runs the adaptive-reclamation controller
	// (internal/adapt) over the store for the window: a telemetry
	// sampler feeds the online classifier, and shards whose scheme sits
	// on the controller's ladder are escalated/de-escalated live.
	// Requires Duration > 0 — an op-boxed run has no deadline for the
	// control loop to live inside.
	Adapt *adapt.Config
	// ObsAddr, when non-empty, serves the live observability plane
	// (/metrics, /timeline, /debug/pprof/) on this address for the
	// duration of the run: the store's shards stamp the flight recorder,
	// and — with Adapt — the sampler, monitor and controller share its
	// run clock. The bound URL is reported in the result.
	ObsAddr string
}

func (cfg *ServiceConfig) fill() {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = []string{"ebr"}
	}
	if cfg.Structure == "" {
		cfg.Structure = "hashmap"
	}
	if cfg.WorkersPerShard <= 0 {
		cfg.WorkersPerShard = 1
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 2 * cfg.Shards
	}
	if cfg.OpsPerClient <= 0 {
		cfg.OpsPerClient = 20000
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 16
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 4096
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = MixBalanced
	}
}

// ServiceShardRow is one shard's slice of the service measurement. Ops
// and MopsPerSec cover the timed phase only; the backlog and fault
// counters are cumulative over the shard's lifetime (prefill and warmup
// included — backlog carries across phases).
type ServiceShardRow struct {
	Shard int `json:"shard"`
	// Scheme is the shard's scheme *at measurement end* — after a live
	// migration it names the migrated-to scheme.
	Scheme         string  `json:"scheme"`
	Ops            uint64  `json:"ops"`
	MopsPerSec     float64 `json:"mops_per_sec"`
	Retired        uint64  `json:"retired"`
	MaxRetired     uint64  `json:"max_retired"`
	Faults         uint64  `json:"faults"`
	UnsafeAccesses uint64  `json:"unsafe_accesses"`
	Restarts       uint64  `json:"restarts"`
	// Migrations and Epoch record the shard's swap history (adaptive
	// runs; zero in static deployments).
	Migrations uint64 `json:"migrations,omitempty"`
	Epoch      uint64 `json:"epoch,omitempty"`
}

// ServiceRow is the aggregate service measurement. P50/P99 are
// *service-request* latencies — one batched Do as seen by a client,
// queueing included — which is what a service's tail means.
type ServiceRow struct {
	Shards     int           `json:"shards"`
	Schemes    []string      `json:"schemes"`
	Structure  string        `json:"structure"`
	Clients    int           `json:"clients"`
	Batch      int           `json:"batch"`
	Workers    int           `json:"workers_per_shard"`
	Mix        Mix           `json:"mix"`
	Workload   string        `json:"workload"`
	Schedule   string        `json:"schedule"`
	KeyRange   int           `json:"key_range"`
	Ops        int           `json:"ops"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	MopsPerSec float64       `json:"mops_per_sec"`
	P50        time.Duration `json:"p50_ns"`
	P99        time.Duration `json:"p99_ns"`

	PeakRetired    uint64 `json:"peak_retired"`
	Faults         uint64 `json:"faults"`
	UnsafeAccesses uint64 `json:"unsafe_accesses"`
	Restarts       uint64 `json:"restarts"`
	// OpErrs counts tolerated per-operation errors (duration-boxed runs
	// only; op-boxed runs fail on the first one).
	OpErrs uint64 `json:"op_errs,omitempty"`
	// Migrations totals the live scheme migrations across shards.
	Migrations uint64 `json:"migrations,omitempty"`
}

// ServiceResult pairs the aggregate row with the per-shard breakdown.
type ServiceResult struct {
	Aggregate ServiceRow        `json:"aggregate"`
	PerShard  []ServiceShardRow `json:"per_shard"`
	// Episodes is the adaptive controller's migration log (adaptive runs
	// only).
	Episodes []adapt.Episode `json:"episodes,omitempty"`
	// ObsURL is the live plane's bound URL (ObsAddr runs only).
	ObsURL string `json:"obs_url,omitempty"`
}

// runClients drives every client through ops operations from src,
// batching Batch at a time. When lats is non-nil, client c records each
// request's latency into lats[c].
func runClients(st *store.Store, src *workload.Source, cfg ServiceConfig, ops int, lats []hist.Latency) error {
	var wg sync.WaitGroup
	errs := make([]error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stream := src.Thread(c, ops)
			batch := make([]store.Op, 0, cfg.Batch)
			for done := 0; done < ops; {
				batch = batch[:0]
				for len(batch) < cfg.Batch && done+len(batch) < ops {
					kind, key := stream.Next()
					batch = append(batch, store.Op{Kind: kind, Key: key})
				}
				var t0 time.Time
				if lats != nil {
					t0 = time.Now()
				}
				res, err := st.Do(batch)
				if err != nil {
					errs[c] = err
					return
				}
				if lats != nil {
					lats[c].Record(time.Since(t0))
				}
				for i, r := range res {
					if r.Err != nil {
						errs[c] = fmt.Errorf("%v(%d): %w", batch[i].Kind, batch[i].Key, r.Err)
						return
					}
				}
				done += len(batch)
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// prefillHalf inserts ~KeyRange/2 random keys through the service, so
// contains() hits about half the time — shared by every store-driving
// experiment.
func prefillHalf(st *store.Store, keyRange, batchSize int, seed uint64) error {
	pre := workload.RNG(seed ^ 0xf00d)
	batch := make([]store.Op, 0, batchSize)
	for i := 0; i < keyRange/2; i++ {
		batch = append(batch, store.Op{Kind: workload.OpInsert, Key: int64(pre.Next() % uint64(keyRange))})
		if len(batch) == batchSize || i == keyRange/2-1 {
			res, err := st.Do(batch)
			if err != nil {
				return err
			}
			for _, r := range res {
				if r.Err != nil {
					return r.Err
				}
			}
			batch = batch[:0]
		}
	}
	return nil
}

// storeProbe adapts a store's gauge tap into the telemetry sampler's
// probe shape: point i is shard i — the domain-order convention the
// Monitor and the adapt controller both rely on.
func storeProbe(st *store.Store) telemetry.Probe {
	return func() []telemetry.Point {
		gs := st.Gauges()
		pts := make([]telemetry.Point, len(gs))
		for i, g := range gs {
			pts[i] = telemetry.Point{
				Ops:          g.Ops,
				Retired:      g.Retired,
				MaxRetired:   g.MaxRetired,
				Active:       g.Active,
				MaxActive:    g.MaxActive,
				TravSteps:    g.TravSteps,
				TravRestarts: g.TravRestarts,
				GuardTrips:   g.GuardTrips,
			}
		}
		return pts
	}
}

// attachAdapt wires the adaptive-reclamation loop onto a serving store:
// a gauge-tap sampler feeding the online classifier, and the controller
// deciding on it. The monitor's domain i is shard i; budgets come from
// the resolved shard specs. clock and recorder are optional (the
// observability plane's shared run clock and flight recorder — when
// given, all three loops stamp the same tape). Returns the started
// sampler, the monitor, and the controller.
func attachAdapt(st *store.Store, acfg adapt.Config, interval time.Duration, clock *rec.Clock, recorder *rec.Recorder) (*telemetry.Sampler, *telemetry.Monitor, *adapt.Controller, error) {
	domains := make([]telemetry.Domain, st.Shards())
	for s := range domains {
		spec, err := st.Spec(s)
		if err != nil {
			return nil, nil, nil, err
		}
		props, err := all.Props(spec.Scheme)
		if err != nil {
			return nil, nil, nil, err
		}
		domains[s] = telemetry.Domain{
			Scheme:   spec.Scheme,
			Declared: props.Robustness,
			Budget:   telemetry.Budget{Threads: spec.Workers, Threshold: spec.Threshold},
		}
	}
	mcfg := telemetry.MonitorConfig{}
	if recorder != nil {
		mcfg.OnFlip = obs.VerdictHook(recorder)
	}
	mon := telemetry.NewMonitor(mcfg, domains)
	sampler := telemetry.NewSampler(
		telemetry.Config{Interval: interval, Capacity: 4096, OnSample: mon.Observe,
			Clock: clock, Recorder: recorder},
		storeProbe(st))
	acfg.Clock = clock
	acfg.Recorder = recorder
	ctl, err := adapt.New(acfg, st, mon)
	if err != nil {
		return nil, nil, nil, err
	}
	sampler.Start()
	ctl.Start()
	return sampler, mon, ctl, nil
}

// sampleEvery derives a telemetry tick from a traffic window: ~200
// samples per run, clamped to [200µs, 5ms].
func sampleEvery(d time.Duration) time.Duration {
	iv := d / 200
	if iv < 200*time.Microsecond {
		iv = 200 * time.Microsecond
	}
	if iv > 5*time.Millisecond {
		iv = 5 * time.Millisecond
	}
	return iv
}

// RunService builds the sharded store, prefills it to half the key range,
// runs the measured closed-loop client phase — op-boxed with warmup by
// default, duration-boxed (optionally with the adaptive-reclamation
// controller live) when Duration is set — then drains the store and
// assembles the rows.
func RunService(cfg ServiceConfig) (ServiceResult, error) {
	cfg.fill()
	if cfg.Adapt != nil && cfg.Duration <= 0 {
		return ServiceResult{}, errors.New("bench: adaptive service runs need a Duration window")
	}
	specs := make([]store.ShardSpec, cfg.Shards)
	for i := range specs {
		specs[i] = store.ShardSpec{
			Scheme:    cfg.Schemes[i%len(cfg.Schemes)],
			Structure: cfg.Structure,
			Workers:   cfg.WorkersPerShard,
		}
	}
	// The observability plane is opt-in: with ObsAddr set, the shards
	// stamp a flight recorder and the plane serves live throughout.
	var (
		clock    *rec.Clock
		recorder *rec.Recorder
		srv      *obs.Server
	)
	if cfg.ObsAddr != "" {
		clock = rec.NewClock()
		recorder = rec.NewRecorder(clock, 0)
	}
	st, err := store.New(store.Config{Shards: specs, KeyRange: cfg.KeyRange, Recorder: recorder})
	if err != nil {
		return ServiceResult{}, err
	}
	defer st.Close()
	defer func() { _ = srv.Close() }()
	serveObs := func(reg *obs.Registry) error {
		if cfg.ObsAddr == "" {
			return nil
		}
		srv, err = obs.Serve(cfg.ObsAddr, reg)
		return err
	}
	src, err := workload.New(workload.Config{
		Dist:     cfg.Workload,
		Schedule: cfg.Schedule,
		KeyRange: cfg.KeyRange,
		Mix:      cfg.Mix,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return ServiceResult{}, err
	}

	if err := prefillHalf(st, cfg.KeyRange, cfg.Batch, cfg.Seed); err != nil {
		return ServiceResult{}, err
	}

	var (
		ops     uint64
		opErrs  uint64
		lat     hist.Latency
		elapsed time.Duration
		before  store.Stats
		ctl     *adapt.Controller
	)
	if cfg.Duration > 0 {
		// Duration-boxed: no warmup (the window owns its ramp), errors
		// tolerated, optional adaptive controller live over the store.
		var sampler *telemetry.Sampler
		var mon *telemetry.Monitor
		if cfg.Adapt != nil {
			sampler, mon, ctl, err = attachAdapt(st, *cfg.Adapt, sampleEvery(cfg.Duration), clock, recorder)
			if err != nil {
				return ServiceResult{}, err
			}
		}
		if err := serveObs(&obs.Registry{Store: st, Sampler: sampler, Monitor: mon, Recorder: recorder}); err != nil {
			return ServiceResult{}, err
		}
		before = st.Stats()
		start := time.Now()
		ops, opErrs, lat, err = runTimedClients(st, src, cfg.Clients, cfg.Batch, start.Add(cfg.Duration), nil)
		elapsed = time.Since(start)
		if ctl != nil {
			ctl.Stop()
			sampler.Stop()
		}
		if err != nil {
			return ServiceResult{}, err
		}
	} else {
		if err := serveObs(&obs.Registry{Store: st, Recorder: recorder}); err != nil {
			return ServiceResult{}, err
		}
		warmup := cfg.WarmupOpsPerClient
		switch {
		case warmup < 0:
			warmup = 0
		case warmup == 0:
			warmup = cfg.OpsPerClient / 10
		}
		if warmup > 0 {
			if err := runClients(st, src.Steady(cfg.Seed^0xbadcafe), cfg, warmup, nil); err != nil {
				return ServiceResult{}, err
			}
		}
		before = st.Stats()
		lats := make([]hist.Latency, cfg.Clients)
		start := time.Now()
		if err := runClients(st, src, cfg, cfg.OpsPerClient, lats); err != nil {
			return ServiceResult{}, err
		}
		elapsed = time.Since(start)
		for i := range lats {
			lat.Merge(&lats[i])
		}
		ops = uint64(cfg.Clients * cfg.OpsPerClient)
	}

	// Drain before the final read so Retired reflects the settled
	// backlog, then build rows from the post-close counters.
	if err := st.Close(); err != nil {
		return ServiceResult{}, err
	}
	after := st.Stats()

	srcCfg := src.Config()
	agg := ServiceRow{
		Shards:     cfg.Shards,
		Schemes:    cfg.Schemes,
		Structure:  cfg.Structure,
		Clients:    cfg.Clients,
		Batch:      cfg.Batch,
		Workers:    cfg.WorkersPerShard,
		Mix:        srcCfg.Mix,
		Workload:   srcCfg.Dist,
		Schedule:   srcCfg.Schedule,
		KeyRange:   cfg.KeyRange,
		Ops:        int(ops),
		Elapsed:    elapsed,
		MopsPerSec: float64(ops) / elapsed.Seconds() / 1e6,
		P50:        lat.Percentile(0.50),
		P99:        lat.Percentile(0.99),

		PeakRetired:    after.MaxRetired,
		Faults:         after.Faults,
		UnsafeAccesses: after.UnsafeAccesses,
		Restarts:       after.Restarts,
		OpErrs:         opErrs,
		Migrations:     after.Migrations,
	}
	rows := make([]ServiceShardRow, cfg.Shards)
	for i, sh := range after.Shards {
		measured := sh.Ops
		// A migrated shard restarted its counters mid-window; its
		// current count *is* the post-swap measurement, while an
		// unswapped shard subtracts the pre-window baseline as before.
		if sh.Epoch == before.Shards[i].Epoch {
			measured = sh.Ops - before.Shards[i].Ops
		}
		rows[i] = ServiceShardRow{
			Shard:          sh.Shard,
			Scheme:         sh.Scheme,
			Ops:            measured,
			MopsPerSec:     float64(measured) / elapsed.Seconds() / 1e6,
			Retired:        sh.Retired,
			MaxRetired:     sh.MaxRetired,
			Faults:         sh.Faults,
			UnsafeAccesses: sh.UnsafeAccesses,
			Restarts:       sh.Restarts,
			Migrations:     sh.Migrations,
			Epoch:          sh.Epoch,
		}
	}
	res := ServiceResult{Aggregate: agg, PerShard: rows}
	if ctl != nil {
		res.Episodes = ctl.Episodes()
	}
	if srv != nil {
		res.ObsURL = srv.URL
	}
	return res, nil
}
