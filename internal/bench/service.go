package bench

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/adapt"
	"repro/internal/exec"
	"repro/internal/hist"
	"repro/internal/obs"
	"repro/internal/obs/rec"
	"repro/internal/resil"
	"repro/internal/smr/all"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// ServiceConfig sizes the sharded-service experiment (EXP-SERVICE): M
// closed-loop clients batching operations into a store whose shards may
// run different reclamation schemes.
type ServiceConfig struct {
	// Shards is the shard count; 0 selects 4.
	Shards int
	// Schemes assigns reclamation schemes to shards, cycled when shorter
	// than Shards (so ["hp","ebr"] alternates). Empty selects ["ebr"].
	Schemes []string
	// Structure is the per-shard set structure; empty selects "hashmap".
	Structure string
	// WorkersPerShard sizes each shard's worker pool; 0 selects 1.
	WorkersPerShard int
	// Clients is the number of closed-loop client goroutines; 0 selects
	// 2 × Shards.
	Clients int
	// OpsPerClient is the measured operation count per client; 0 selects
	// 20000.
	OpsPerClient int
	// WarmupOpsPerClient is the untimed warmup: 0 selects
	// OpsPerClient/10, negative disables.
	WarmupOpsPerClient int
	// Batch is how many operations a client packs into one service
	// request; 0 selects 16.
	Batch int
	// KeyRange is the key universe; 0 selects 4096.
	KeyRange int
	// Mix is the base operation mix; zero selects MixBalanced.
	Mix Mix
	// Workload and Schedule name the key distribution and op-mix schedule
	// (workload registries); empty selects uniform/steady.
	Workload string
	Schedule string
	// Seed makes every client stream deterministic.
	Seed uint64
	// Duration, when positive, switches the run from op-boxed to
	// duration-boxed (the erachaos convention): clients batch until the
	// deadline, OpsPerClient and the warmup are ignored, and
	// per-operation errors are absorbed and counted instead of failing
	// the run — a live migration's swap window surfaces as a transient
	// ErrShardClosed, which is service behaviour, not harness failure.
	Duration time.Duration
	// Adapt, when non-nil, runs the adaptive-reclamation controller
	// (internal/adapt) over the store for the window: a telemetry
	// sampler feeds the online classifier, and shards whose scheme sits
	// on the controller's ladder are escalated/de-escalated live.
	// Requires Duration > 0 — an op-boxed run has no deadline for the
	// control loop to live inside.
	Adapt *adapt.Config
	// FanoutPct, when positive, adds a dedicated fan-out lane beside the
	// point-op fleet: FanoutPct percent of Clients (at least one
	// goroutine) drive cross-shard requests — multi-key gets, inserts,
	// deletes plus range scans and counts, workload.ReqMixFanout — through
	// the pipelined scatter-gather executor for the measured window.
	// Fan-out latency lands in its own histogram and reports as separate
	// p50/p99 rows beside the point-op request latency.
	FanoutPct int
	// FanoutKeys is the key count per multi-key fan-out request; 0
	// selects 8.
	FanoutKeys int
	// NoFuse disables every shard's batch-fused execution path, serving
	// each operation under its own SMR bracket — the per-op baseline arm
	// of the batch sweep (eraserve -nofuse).
	NoFuse bool
	// Retry, Hedge and Breaker route the fan-out lane through the
	// resilience client (internal/resil) instead of the bare executor:
	// typed-error-aware retries, p99-delay hedged legs, and per-shard
	// circuit breakers respectively. Any of the three switches the lane;
	// all require FanoutPct > 0.
	Retry   bool
	Hedge   bool
	Breaker bool
	// FanoutSLO, when positive with a resilient fan-out lane, runs a
	// per-shard tail-latency objective over the lane's settled leg
	// latencies. Breach/clear transitions land on the flight recorder,
	// and — in adaptive runs — are promoted into the telemetry verdict's
	// SLO dimension, so the controller can tell "robust but slow" from
	// "not robust".
	FanoutSLO time.Duration
	// ObsAddr, when non-empty, serves the live observability plane
	// (/metrics, /timeline, /debug/pprof/) on this address for the
	// duration of the run: the store's shards stamp the flight recorder,
	// and — with Adapt — the sampler, monitor and controller share its
	// run clock. The bound URL is reported in the result.
	ObsAddr string
}

func (cfg *ServiceConfig) fill() {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if len(cfg.Schemes) == 0 {
		cfg.Schemes = []string{"ebr"}
	}
	if cfg.Structure == "" {
		cfg.Structure = "hashmap"
	}
	if cfg.WorkersPerShard <= 0 {
		cfg.WorkersPerShard = 1
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 2 * cfg.Shards
	}
	if cfg.OpsPerClient <= 0 {
		cfg.OpsPerClient = 20000
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 16
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 4096
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = MixBalanced
	}
	if cfg.FanoutPct > 100 {
		cfg.FanoutPct = 100
	}
	if cfg.FanoutPct > 0 && cfg.FanoutKeys <= 0 {
		cfg.FanoutKeys = 8
	}
}

// ServiceShardRow is one shard's slice of the service measurement. Ops
// and MopsPerSec cover the timed phase only; the backlog and fault
// counters are cumulative over the shard's lifetime (prefill and warmup
// included — backlog carries across phases).
type ServiceShardRow struct {
	Shard int `json:"shard"`
	// Scheme is the shard's scheme *at measurement end* — after a live
	// migration it names the migrated-to scheme.
	Scheme         string  `json:"scheme"`
	Ops            uint64  `json:"ops"`
	MopsPerSec     float64 `json:"mops_per_sec"`
	Retired        uint64  `json:"retired"`
	MaxRetired     uint64  `json:"max_retired"`
	Faults         uint64  `json:"faults"`
	UnsafeAccesses uint64  `json:"unsafe_accesses"`
	Restarts       uint64  `json:"restarts"`
	// Migrations and Epoch record the shard's swap history (adaptive
	// runs; zero in static deployments).
	Migrations uint64 `json:"migrations,omitempty"`
	Epoch      uint64 `json:"epoch,omitempty"`
}

// ServiceRow is the aggregate service measurement. P50/P99 are
// *service-request* latencies — one batched Do as seen by a client,
// queueing included — which is what a service's tail means.
type ServiceRow struct {
	Shards     int           `json:"shards"`
	Schemes    []string      `json:"schemes"`
	Structure  string        `json:"structure"`
	Clients    int           `json:"clients"`
	Batch      int           `json:"batch"`
	Workers    int           `json:"workers_per_shard"`
	Mix        Mix           `json:"mix"`
	Workload   string        `json:"workload"`
	Schedule   string        `json:"schedule"`
	KeyRange   int           `json:"key_range"`
	Ops        int           `json:"ops"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	MopsPerSec float64       `json:"mops_per_sec"`
	P50        time.Duration `json:"p50_ns"`
	P99        time.Duration `json:"p99_ns"`

	PeakRetired    uint64 `json:"peak_retired"`
	Faults         uint64 `json:"faults"`
	UnsafeAccesses uint64 `json:"unsafe_accesses"`
	Restarts       uint64 `json:"restarts"`
	// OpErrs counts tolerated per-operation errors (duration-boxed runs
	// only; op-boxed runs fail on the first one).
	OpErrs uint64 `json:"op_errs,omitempty"`
	// Migrations totals the live scheme migrations across shards.
	Migrations uint64 `json:"migrations,omitempty"`

	// Fan-out lane measurement (FanoutPct runs only): cross-shard
	// requests scattered through the pipelined executor, with their own
	// percentiles beside the point-op P50/P99. FanoutPartial counts
	// requests that completed with at least one failed leg; FanoutErrs
	// counts tolerated per-key errors inside otherwise-complete results.
	FanoutPct     int           `json:"fanout_pct,omitempty"`
	FanoutClients int           `json:"fanout_clients,omitempty"`
	FanoutReqs    uint64        `json:"fanout_reqs,omitempty"`
	FanoutP50     time.Duration `json:"fanout_p50_ns,omitempty"`
	FanoutP99     time.Duration `json:"fanout_p99_ns,omitempty"`
	FanoutPartial uint64        `json:"fanout_partial,omitempty"`
	FanoutErrs    uint64        `json:"fanout_errs,omitempty"`
	// FanoutSheds counts legs the lane saw rejected under saturation
	// (exec.ErrShed anywhere in a result's error chain). The resilience
	// counters below are live only when the lane runs through the resil
	// client (Retry/Hedge/Breaker): retries re-submitted, requests
	// recovered clean by a retry, hedges launched, and hedge races won
	// by the duplicate.
	FanoutSheds     uint64 `json:"fanout_sheds,omitempty"`
	FanoutRetries   uint64 `json:"fanout_retries,omitempty"`
	FanoutRecovered uint64 `json:"fanout_recovered,omitempty"`
	FanoutHedges    uint64 `json:"fanout_hedges,omitempty"`
	FanoutHedgeWins uint64 `json:"fanout_hedge_wins,omitempty"`
}

// ServiceResult pairs the aggregate row with the per-shard breakdown.
type ServiceResult struct {
	Aggregate ServiceRow        `json:"aggregate"`
	PerShard  []ServiceShardRow `json:"per_shard"`
	// Episodes is the adaptive controller's migration log (adaptive runs
	// only).
	Episodes []adapt.Episode `json:"episodes,omitempty"`
	// ObsURL is the live plane's bound URL (ObsAddr runs only).
	ObsURL string `json:"obs_url,omitempty"`
}

// runClients drives every client through ops operations from src,
// batching Batch at a time. When lats is non-nil, client c records each
// request's latency into lats[c].
func runClients(st *store.Store, src *workload.Source, cfg ServiceConfig, ops int, lats []hist.Latency) error {
	var wg sync.WaitGroup
	errs := make([]error, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			stream := src.Thread(c, ops)
			batch := make([]store.Op, 0, cfg.Batch)
			for done := 0; done < ops; {
				batch = batch[:0]
				for len(batch) < cfg.Batch && done+len(batch) < ops {
					kind, key := stream.Next()
					batch = append(batch, store.Op{Kind: kind, Key: key})
				}
				var t0 time.Time
				if lats != nil {
					t0 = time.Now()
				}
				res, err := st.Do(batch)
				if err != nil {
					errs[c] = err
					return
				}
				if lats != nil {
					lats[c].Record(time.Since(t0))
				}
				for i, r := range res {
					if r.Err != nil {
						errs[c] = fmt.Errorf("%v(%d): %w", batch[i].Kind, batch[i].Key, r.Err)
						return
					}
				}
				done += len(batch)
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fanoutDoer abstracts the fan-out lane's submission path: the bare
// pipelined executor, or the resilience client wrapped around it when
// any of the Retry/Hedge/Breaker policies is on.
type fanoutDoer interface {
	Do(req workload.Req) (*exec.Result, error)
}

// execDoer adapts the raw executor to the blocking doer shape.
type execDoer struct{ ex *exec.Executor }

func (d execDoer) Do(req workload.Req) (*exec.Result, error) {
	h, err := d.ex.Submit(req)
	if err != nil {
		return nil, err
	}
	return h.Wait(), nil
}

// fanoutOutcome is the fan-out lane's measurement: requests completed,
// partial completions, tolerated per-key errors and sheds, and the
// lane's own latency histogram.
type fanoutOutcome struct {
	clients int
	reqs    uint64
	partial uint64
	errs    uint64
	sheds   uint64
	lat     hist.Latency
	err     error
}

// runFanoutLane drives the dedicated fan-out clients through the
// doer until stop closes. The point-op fleet runs concurrently on
// the same store, so the lane's tail includes cross-traffic queueing —
// which is what a service's fan-out tail means. Per-key errors and
// partial completions are absorbed and counted, never fatal: the lane
// measures the executor's service shape, and a shard mid-migration
// answering ErrShardClosed is service behaviour.
func runFanoutLane(do fanoutDoer, cfg ServiceConfig, stop <-chan struct{}) fanoutOutcome {
	n := cfg.Clients * cfg.FanoutPct / 100
	if n < 1 {
		n = 1
	}
	src, err := workload.NewReqSource(workload.ReqConfig{
		Dist:      cfg.Workload,
		KeyRange:  cfg.KeyRange,
		Mix:       workload.ReqMixFanout,
		MultiSize: cfg.FanoutKeys,
		Seed:      cfg.Seed ^ 0xfa0fa0,
	})
	if err != nil {
		return fanoutOutcome{err: err}
	}
	outs := make([]fanoutOutcome, n)
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			o := &outs[c]
			stream := src.Thread(c, 1<<20)
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				res, err := do.Do(stream.Next())
				if err != nil {
					// ErrClosed races the stop signal at shutdown; anything
					// else (a shed on a healthy store) still only costs the
					// one request.
					if errors.Is(err, exec.ErrClosed) {
						return
					}
					if errors.Is(err, exec.ErrShed) {
						o.sheds++
					}
					o.errs++
					continue
				}
				o.lat.Record(time.Since(t0))
				o.reqs++
				if res.Partial() {
					o.partial++
				}
				for _, serr := range res.ShardErrs {
					if errors.Is(serr.Reason, exec.ErrShed) {
						o.sheds++
					}
				}
				for _, r := range res.Results {
					if r.Err != nil {
						o.errs++
					}
				}
			}
		}(c)
	}
	wg.Wait()
	total := fanoutOutcome{clients: n}
	for i := range outs {
		total.reqs += outs[i].reqs
		total.partial += outs[i].partial
		total.errs += outs[i].errs
		total.sheds += outs[i].sheds
		total.lat.Merge(&outs[i].lat)
	}
	return total
}

// prefillHalf inserts ~KeyRange/2 random keys through the service, so
// contains() hits about half the time — shared by every store-driving
// experiment.
func prefillHalf(st *store.Store, keyRange, batchSize int, seed uint64) error {
	pre := workload.RNG(seed ^ 0xf00d)
	batch := make([]store.Op, 0, batchSize)
	for i := 0; i < keyRange/2; i++ {
		batch = append(batch, store.Op{Kind: workload.OpInsert, Key: int64(pre.Next() % uint64(keyRange))})
		if len(batch) == batchSize || i == keyRange/2-1 {
			res, err := st.Do(batch)
			if err != nil {
				return err
			}
			for _, r := range res {
				if r.Err != nil {
					return r.Err
				}
			}
			batch = batch[:0]
		}
	}
	return nil
}

// storeProbe adapts a store's gauge tap into the telemetry sampler's
// probe shape: point i is shard i — the domain-order convention the
// Monitor and the adapt controller both rely on.
func storeProbe(st *store.Store) telemetry.Probe {
	return func() []telemetry.Point {
		gs := st.Gauges()
		pts := make([]telemetry.Point, len(gs))
		for i, g := range gs {
			pts[i] = telemetry.Point{
				Ops:          g.Ops,
				Retired:      g.Retired,
				MaxRetired:   g.MaxRetired,
				Active:       g.Active,
				MaxActive:    g.MaxActive,
				TravSteps:    g.TravSteps,
				TravRestarts: g.TravRestarts,
				GuardTrips:   g.GuardTrips,
			}
		}
		return pts
	}
}

// adaptMonitor builds the verdict monitor over the store's resolved
// shard specs: domain i is shard i, with the shard's declared robustness
// class and worker/threshold budget.
func adaptMonitor(st *store.Store, recorder *rec.Recorder) (*telemetry.Monitor, error) {
	domains := make([]telemetry.Domain, st.Shards())
	for s := range domains {
		spec, err := st.Spec(s)
		if err != nil {
			return nil, err
		}
		props, err := all.Props(spec.Scheme)
		if err != nil {
			return nil, err
		}
		domains[s] = telemetry.Domain{
			Scheme:   spec.Scheme,
			Declared: props.Robustness,
			Budget:   telemetry.Budget{Threads: spec.Workers, Threshold: spec.Threshold},
		}
	}
	mcfg := telemetry.MonitorConfig{}
	if recorder != nil {
		mcfg.OnFlip = obs.VerdictHook(recorder)
	}
	return telemetry.NewMonitor(mcfg, domains), nil
}

// attachAdapt wires the adaptive-reclamation loop onto a serving store:
// a sampler driving probe into the monitor's online classifier, and the
// controller deciding on it. The monitor is built separately
// (adaptMonitor) so a resilience client can sit between — its breaker
// feeds on the monitor's verdicts while the sampler's probe carries its
// counters. clock and recorder are optional (the observability plane's
// shared run clock and flight recorder — when given, all three loops
// stamp the same tape). Returns the started sampler and controller.
func attachAdapt(st *store.Store, acfg adapt.Config, interval time.Duration, mon *telemetry.Monitor, probe telemetry.Probe, clock *rec.Clock, recorder *rec.Recorder) (*telemetry.Sampler, *adapt.Controller, error) {
	sampler := telemetry.NewSampler(
		telemetry.Config{Interval: interval, Capacity: 4096, OnSample: mon.Observe,
			Clock: clock, Recorder: recorder},
		probe)
	acfg.Clock = clock
	acfg.Recorder = recorder
	ctl, err := adapt.New(acfg, st, mon)
	if err != nil {
		return nil, nil, err
	}
	sampler.Start()
	ctl.Start()
	return sampler, ctl, nil
}

// sampleEvery derives a telemetry tick from a traffic window: ~200
// samples per run, clamped to [200µs, 5ms].
func sampleEvery(d time.Duration) time.Duration {
	iv := d / 200
	if iv < 200*time.Microsecond {
		iv = 200 * time.Microsecond
	}
	if iv > 5*time.Millisecond {
		iv = 5 * time.Millisecond
	}
	return iv
}

// RunService builds the sharded store, prefills it to half the key range,
// runs the measured closed-loop client phase — op-boxed with warmup by
// default, duration-boxed (optionally with the adaptive-reclamation
// controller live) when Duration is set — then drains the store and
// assembles the rows.
func RunService(cfg ServiceConfig) (ServiceResult, error) {
	cfg.fill()
	if cfg.Adapt != nil && cfg.Duration <= 0 {
		return ServiceResult{}, errors.New("bench: adaptive service runs need a Duration window")
	}
	specs := make([]store.ShardSpec, cfg.Shards)
	for i := range specs {
		specs[i] = store.ShardSpec{
			Scheme:    cfg.Schemes[i%len(cfg.Schemes)],
			Structure: cfg.Structure,
			Workers:   cfg.WorkersPerShard,
			NoFuse:    cfg.NoFuse,
		}
	}
	// The observability plane is opt-in: with ObsAddr set, the shards
	// stamp a flight recorder and the plane serves live throughout.
	var (
		clock    *rec.Clock
		recorder *rec.Recorder
		srv      *obs.Server
	)
	if cfg.ObsAddr != "" {
		clock = rec.NewClock()
		recorder = rec.NewRecorder(clock, 0)
	}
	st, err := store.New(store.Config{Shards: specs, KeyRange: cfg.KeyRange, Recorder: recorder})
	if err != nil {
		return ServiceResult{}, err
	}
	defer st.Close()
	defer func() { _ = srv.Close() }()
	serveObs := func(reg *obs.Registry) error {
		if cfg.ObsAddr == "" {
			return nil
		}
		srv, err = obs.Serve(cfg.ObsAddr, reg)
		return err
	}
	src, err := workload.New(workload.Config{
		Dist:     cfg.Workload,
		Schedule: cfg.Schedule,
		KeyRange: cfg.KeyRange,
		Mix:      cfg.Mix,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return ServiceResult{}, err
	}

	if err := prefillHalf(st, cfg.KeyRange, cfg.Batch, cfg.Seed); err != nil {
		return ServiceResult{}, err
	}

	var (
		ops     uint64
		opErrs  uint64
		lat     hist.Latency
		elapsed time.Duration
		before  store.Stats
		ctl     *adapt.Controller
	)
	// The fan-out lane brackets the measured phase: started right before
	// the clock, stopped right after, so its histogram covers the same
	// window as the point-op percentiles it sits beside in the table.
	var (
		fanEx    *exec.Executor
		fanResil *resil.Client
		fanSLO   *obs.SLOSet
		fanDo    fanoutDoer
		fanStop  chan struct{}
		fanDone  chan fanoutOutcome
		fanOut   fanoutOutcome
	)
	// buildFanout constructs the lane's submission path before the
	// observability plane binds, so a resilience client's counters and
	// breakers are on /metrics from the first scrape. mon may be nil
	// (non-adaptive runs): the breaker then trips on its failure EWMA
	// alone, without the verdict feed.
	buildFanout := func(mon *telemetry.Monitor) error {
		if cfg.FanoutPct <= 0 {
			return nil
		}
		// The serving lane disables the leg budget: the deployment is
		// healthy, so there is no fault to bound and no reason to tax
		// every leg with a watchdog (the chaos campaigns pay for the
		// budget where it earns its keep).
		ecfg := exec.Config{LegTimeout: -1, Clock: clock, Recorder: recorder}
		var err error
		if cfg.Retry || cfg.Hedge || cfg.Breaker {
			rcfg := resil.Config{
				Hedge:    cfg.Hedge,
				Breaker:  cfg.Breaker,
				Verdicts: mon,
				Seed:     cfg.Seed ^ 0x5e111e5,
				Clock:    clock,
				Recorder: recorder,
			}
			if !cfg.Retry {
				rcfg.MaxAttempts = 1
				rcfg.RetryBudget = -1
			}
			if fanSLO != nil {
				rcfg.OnLegLatency = fanSLO.Observe
			}
			if fanResil, err = resil.New(st, ecfg, rcfg); err != nil {
				return err
			}
			fanDo = fanResil
			return nil
		}
		if fanEx, err = exec.New(st, ecfg); err != nil {
			return err
		}
		fanDo = execDoer{fanEx}
		return nil
	}
	startFanout := func() {
		if fanDo == nil {
			return
		}
		fanStop = make(chan struct{})
		fanDone = make(chan fanoutOutcome, 1)
		go func() { fanDone <- runFanoutLane(fanDo, cfg, fanStop) }()
	}
	stopFanout := func() error {
		if fanDo == nil {
			return nil
		}
		if fanStop != nil {
			close(fanStop)
			fanOut = <-fanDone
		}
		var err error
		if fanResil != nil {
			err = fanResil.Close()
		} else {
			err = fanEx.Close()
		}
		fanDo = nil
		if fanOut.err != nil {
			return fanOut.err
		}
		return err
	}
	// Error returns between start and stop must still retire the lane —
	// the deferred stop is a no-op on the paths that stopped explicitly.
	defer func() { _ = stopFanout() }()
	if cfg.Duration > 0 {
		// Duration-boxed: no warmup (the window owns its ramp), errors
		// tolerated, optional adaptive controller live over the store.
		var sampler *telemetry.Sampler
		var mon *telemetry.Monitor
		if cfg.Adapt != nil {
			if mon, err = adaptMonitor(st, recorder); err != nil {
				return ServiceResult{}, err
			}
		}
		// The per-shard SLO objective rides the resilient lane's settled
		// leg latencies; with a monitor live, its transitions flip the
		// verdict plane's SLO dimension ("robust but slow").
		if cfg.FanoutSLO > 0 && cfg.FanoutPct > 0 && (cfg.Retry || cfg.Hedge || cfg.Breaker) {
			var hook func(shard int, breached bool)
			if mon != nil {
				hook = mon.SetSLO
			}
			fanSLO = obs.NewSLOSet(cfg.Shards, cfg.FanoutSLO, 0, clock, recorder, hook)
		}
		if err := buildFanout(mon); err != nil {
			return ServiceResult{}, err
		}
		if cfg.Adapt != nil {
			// The sampler's probe carries the lane's resilience counters
			// beside the store gauges, so the timeline join sees retries,
			// hedges and breaker positions as first-class points.
			probe := storeProbe(st)
			if fanResil != nil {
				probe = fanResil.AugmentProbe(probe)
			}
			sampler, ctl, err = attachAdapt(st, *cfg.Adapt, sampleEvery(cfg.Duration), mon, probe, clock, recorder)
			if err != nil {
				return ServiceResult{}, err
			}
		}
		if err := serveObs(&obs.Registry{Store: st, Sampler: sampler, Monitor: mon, Recorder: recorder, Resil: fanResil}); err != nil {
			return ServiceResult{}, err
		}
		fanSLO.Start(sampleEvery(cfg.Duration))
		startFanout()
		before = st.Stats()
		start := time.Now()
		ops, opErrs, lat, err = runTimedClients(st, src, cfg.Clients, cfg.Batch, start.Add(cfg.Duration), nil)
		elapsed = time.Since(start)
		if serr := stopFanout(); err == nil {
			err = serr
		}
		fanSLO.Stop()
		if ctl != nil {
			ctl.Stop()
			sampler.Stop()
		}
		if err != nil {
			return ServiceResult{}, err
		}
	} else {
		if err := buildFanout(nil); err != nil {
			return ServiceResult{}, err
		}
		if err := serveObs(&obs.Registry{Store: st, Recorder: recorder, Resil: fanResil}); err != nil {
			return ServiceResult{}, err
		}
		warmup := cfg.WarmupOpsPerClient
		switch {
		case warmup < 0:
			warmup = 0
		case warmup == 0:
			warmup = cfg.OpsPerClient / 10
		}
		if warmup > 0 {
			if err := runClients(st, src.Steady(cfg.Seed^0xbadcafe), cfg, warmup, nil); err != nil {
				return ServiceResult{}, err
			}
		}
		startFanout()
		before = st.Stats()
		lats := make([]hist.Latency, cfg.Clients)
		start := time.Now()
		err := runClients(st, src, cfg, cfg.OpsPerClient, lats)
		elapsed = time.Since(start)
		if serr := stopFanout(); err == nil {
			err = serr
		}
		if err != nil {
			return ServiceResult{}, err
		}
		for i := range lats {
			lat.Merge(&lats[i])
		}
		ops = uint64(cfg.Clients * cfg.OpsPerClient)
	}

	// Drain before the final read so Retired reflects the settled
	// backlog, then build rows from the post-close counters.
	if err := st.Close(); err != nil {
		return ServiceResult{}, err
	}
	after := st.Stats()

	srcCfg := src.Config()
	agg := ServiceRow{
		Shards:     cfg.Shards,
		Schemes:    cfg.Schemes,
		Structure:  cfg.Structure,
		Clients:    cfg.Clients,
		Batch:      cfg.Batch,
		Workers:    cfg.WorkersPerShard,
		Mix:        srcCfg.Mix,
		Workload:   srcCfg.Dist,
		Schedule:   srcCfg.Schedule,
		KeyRange:   cfg.KeyRange,
		Ops:        int(ops),
		Elapsed:    elapsed,
		MopsPerSec: float64(ops) / elapsed.Seconds() / 1e6,
		P50:        lat.Percentile(0.50),
		P99:        lat.Percentile(0.99),

		PeakRetired:    after.MaxRetired,
		Faults:         after.Faults,
		UnsafeAccesses: after.UnsafeAccesses,
		Restarts:       after.Restarts,
		OpErrs:         opErrs,
		Migrations:     after.Migrations,
	}
	if cfg.FanoutPct > 0 {
		agg.FanoutPct = cfg.FanoutPct
		agg.FanoutClients = fanOut.clients
		agg.FanoutReqs = fanOut.reqs
		agg.FanoutP50 = fanOut.lat.Percentile(0.50)
		agg.FanoutP99 = fanOut.lat.Percentile(0.99)
		agg.FanoutPartial = fanOut.partial
		agg.FanoutErrs = fanOut.errs
		agg.FanoutSheds = fanOut.sheds
		if fanResil != nil {
			rs := fanResil.Stats()
			agg.FanoutRetries = rs.Retries
			agg.FanoutRecovered = rs.Recovered
			agg.FanoutHedges = rs.Hedges
			agg.FanoutHedgeWins = rs.HedgeWins
		}
	}
	rows := make([]ServiceShardRow, cfg.Shards)
	for i, sh := range after.Shards {
		measured := sh.Ops
		// A migrated shard restarted its counters mid-window; its
		// current count *is* the post-swap measurement, while an
		// unswapped shard subtracts the pre-window baseline as before.
		if sh.Epoch == before.Shards[i].Epoch {
			measured = sh.Ops - before.Shards[i].Ops
		}
		rows[i] = ServiceShardRow{
			Shard:          sh.Shard,
			Scheme:         sh.Scheme,
			Ops:            measured,
			MopsPerSec:     float64(measured) / elapsed.Seconds() / 1e6,
			Retired:        sh.Retired,
			MaxRetired:     sh.MaxRetired,
			Faults:         sh.Faults,
			UnsafeAccesses: sh.UnsafeAccesses,
			Restarts:       sh.Restarts,
			Migrations:     sh.Migrations,
			Epoch:          sh.Epoch,
		}
	}
	res := ServiceResult{Aggregate: agg, PerShard: rows}
	if ctl != nil {
		res.Episodes = ctl.Episodes()
	}
	if srv != nil {
		res.ObsURL = srv.URL
	}
	return res, nil
}
