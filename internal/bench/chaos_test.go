package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestRunChaosSeparatesClasses is the subsystem's acceptance shape in
// miniature: a short stall-injection run over the three robustness
// classes must audit EBR as not-robust and HP as robust — the paper's
// prediction, read off live telemetry instead of declared metadata.
func TestRunChaosSeparatesClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run needs a real traffic window")
	}
	dur := 300 * time.Millisecond
	if raceEnabled {
		// The race detector slows the simulator ~10×; give the audit a
		// window with enough work in it to separate the classes.
		dur = 1200 * time.Millisecond
	}
	res, err := RunChaos(ChaosConfig{
		Schemes:  []string{"ebr", "ibr", "hp"},
		Duration: dur,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	byScheme := map[string]ChaosRow{}
	for _, r := range res.Rows {
		byScheme[r.Scheme] = r
	}
	ebr, hp := byScheme["ebr"], byScheme["hp"]
	if ebr.Audited != "not-robust" {
		t.Errorf("ebr audited %q (growth %s, slope %f), want not-robust", ebr.Audited, ebr.Growth, ebr.Slope)
	}
	if hp.Audited != "robust" {
		t.Errorf("hp audited %q (growth %s, plateau %f), want robust", hp.Audited, hp.Growth, hp.Plateau)
	}
	if ebr.Audited == hp.Audited {
		t.Error("audit failed to separate ebr from hp — the whole point")
	}
	for _, r := range res.Rows {
		if !r.Consistent {
			t.Errorf("%s: outcome %s — no scheme should violate its declaration", r.Scheme, r.Outcome)
		}
		if len(r.Series) < 4 {
			t.Errorf("%s: only %d telemetry points", r.Scheme, len(r.Series))
		}
	}
	if len(res.Events) != 3 {
		t.Errorf("events = %d, want one stall per shard", len(res.Events))
	}
	for _, ev := range res.Events {
		if ev.Err != "" {
			t.Errorf("fault %s on shard %d failed: %s", ev.Fault, ev.Shard, ev.Err)
		}
		if ev.Healed == 0 {
			t.Errorf("fault %s on shard %d never healed", ev.Fault, ev.Shard)
		}
	}
	if res.Agg.Ops == 0 {
		t.Error("clients made no progress under chaos")
	}
	if err := CheckChaos(res); err != nil {
		t.Errorf("CheckChaos: %v", err)
	}

	// The artifact round-trips.
	var buf bytes.Buffer
	if err := WriteChaosReport(&buf, res); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadChaosReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "chaos" || len(rep.Rows) != 3 || !rep.Consistent {
		t.Fatalf("artifact round-trip mangled: %+v", rep.Aggregate)
	}

	// And the table renders every verdict.
	var tbl strings.Builder
	WriteChaosTable(&tbl, res)
	for _, want := range []string{"ebr", "hp", "unbounded", "bounded", "confirmed"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}
}

// TestRunChaosChurnFault exercises the close/reopen fault through the
// full experiment: op errors are absorbed, the run completes, and the
// artifact stays well-formed.
func TestRunChaosChurnFault(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run needs a real traffic window")
	}
	res, err := RunChaos(ChaosConfig{
		Schemes:  []string{"ebr", "hp"},
		Faults:   []string{"churn"},
		Duration: 150 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.OpErrs == 0 {
		t.Error("churn fault produced no ErrShardClosed results — did it fire?")
	}
	var buf bytes.Buffer
	if err := WriteChaosReport(&buf, res); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadChaosReport(&buf); err != nil {
		t.Fatal(err)
	}
}
