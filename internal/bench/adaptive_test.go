package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestRunAdaptiveEscapesTheStorm is the acceptance scenario: under the
// delayed-release storm an adaptive fleet that starts on EBR must
// migrate off it without losing its role as a service — while the static
// EBR control's backlog stays unbounded — and the post-migration audited
// class must be bounded or linear-in-threads. The migration episode log
// lands in the artifact alongside both verdicts.
func TestRunAdaptiveEscapesTheStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive run needs a real traffic window")
	}
	dur := 700 * time.Millisecond
	if raceEnabled {
		// The race detector slows the simulator ~10×; the run needs
		// fault → verdict → migration → post-migration window to all
		// fit inside the budget.
		dur = 2800 * time.Millisecond
	}
	res, err := RunAdaptive(AdaptiveConfig{Duration: dur, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	// The control: static ebr under the storm audits not-robust (or ran
	// the heap dry, which is the same verdict with more conviction).
	st := res.Static
	if st.StartScheme != "ebr" || st.FinalScheme != "ebr" || len(st.Migrations) != 0 {
		t.Fatalf("static arm migrated: %+v", st)
	}
	if st.FaultedAudited != "not-robust" {
		t.Errorf("static faulted class = %s (growth %s), want not-robust", st.FaultedAudited, st.FaultedGrowth)
	}

	// The treatment: at least one successful migration off ebr, and a
	// post-migration window that is bounded or linear-in-threads.
	ad := res.Adaptive
	if len(ad.Migrations) == 0 {
		t.Fatal("adaptive arm never migrated")
	}
	first := ad.Migrations[0]
	if first.From != "ebr" || first.Err != "" {
		t.Fatalf("first migration = %+v, want a successful move off ebr", first)
	}
	if first.Audited != "not-robust" {
		t.Errorf("migration evidence = %q, want not-robust", first.Audited)
	}
	if ad.FinalScheme == "ebr" && len(ad.Migrations) == 1 {
		t.Fatalf("adaptive arm still on ebr after %+v", first)
	}
	// The pre-migration window is short by design — the controller acts
	// as soon as the evidence allows — so its batch re-fit may land on
	// either failing class; it must just not look healthy.
	if ad.FaultedFit.Samples >= 4 && ad.FaultedAudited == "robust" {
		t.Errorf("adaptive pre-migration window audited robust over %d samples — what drove the migration?",
			ad.FaultedFit.Samples)
	}
	if ad.FinalGrowth != "bounded" && ad.FinalGrowth != "linear-in-threads" {
		t.Errorf("post-migration growth = %s, want bounded or linear-in-threads", ad.FinalGrowth)
	}
	if !res.Improved {
		t.Errorf("improved = false (static %s vs adaptive %s)", st.FinalAudited, ad.FinalAudited)
	}
	// The migrated shard kept serving: clients made progress in both
	// arms, and the swap did not trip a safety event (OOMs are counted
	// separately as robustness evidence).
	if st.Ops == 0 || ad.Ops == 0 {
		t.Errorf("client progress: static %d, adaptive %d", st.Ops, ad.Ops)
	}
	if len(ad.Series) < 8 {
		t.Errorf("adaptive evidence series has %d points", len(ad.Series))
	}

	// The artifact round-trips with the episode log intact.
	var buf bytes.Buffer
	if err := WriteAdaptiveReport(&buf, res); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadAdaptiveReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "adaptive" || !rep.Improved || len(rep.Adaptive.Migrations) != len(ad.Migrations) {
		t.Fatalf("artifact round-trip mangled: %+v", rep.Aggregate)
	}

	// And the table renders both arms and the migration.
	var tbl strings.Builder
	WriteAdaptiveTable(&tbl, res)
	for _, want := range []string{"static", "adaptive", "ebr", "migration: shard 0", "improved on static: true"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}
}

// TestRunAdaptiveRejectsBadLadder checks validation surfaces before any
// traffic runs.
func TestRunAdaptiveRejectsBadLadder(t *testing.T) {
	if _, err := RunAdaptive(AdaptiveConfig{Ladder: []string{"ebr", "nope"}}); err == nil {
		t.Fatal("unknown ladder rung accepted")
	}
}
