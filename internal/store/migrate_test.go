package store_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/ds"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/workload"
)

// keysOn returns the first n keys in [0, keyRange) routed to shard s.
func keysOn(st *store.Store, s, n, keyRange int) []int64 {
	var keys []int64
	for k := int64(0); k < int64(keyRange) && len(keys) < n; k++ {
		if st.ShardFor(k) == s {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestMigrateShardPreservesContents is the core swap contract: a quiesced
// migration carries the shard's exact set contents onto the new scheme,
// updates every current-scheme surface (Stats, Spec), and bumps the
// slot's epoch and migration counters — while the neighbour shard is
// untouched.
func TestMigrateShardPreservesContents(t *testing.T) {
	st, err := store.New(store.Config{
		Shards:   store.Uniform(2, store.ShardSpec{Scheme: "ebr", Structure: "michael"}),
		KeyRange: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	keys := keysOn(st, 0, 1<<30, 256) // every shard-0 key
	present := make(map[int64]bool)
	for i, k := range keys {
		if i%2 == 0 {
			if ok, err := st.Insert(k); err != nil || !ok {
				t.Fatalf("insert(%d): %v, %v", k, ok, err)
			}
			present[k] = true
		}
	}
	// Churn a few so the old shard has retired nodes too.
	for i := 0; i < 30; i++ {
		if _, err := st.Delete(keys[1]); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Insert(keys[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Delete(keys[1]); err != nil {
		t.Fatal(err)
	}
	delete(present, keys[1])

	if err := st.MigrateShard(0, "hp"); err != nil {
		t.Fatal(err)
	}
	// Exact membership: present keys survived, absent keys stayed absent.
	for _, k := range keys {
		ok, err := st.Contains(k)
		if err != nil {
			t.Fatalf("contains(%d) post-migration: %v", k, err)
		}
		if ok != present[k] {
			t.Fatalf("key %d: present=%v post-migration, want %v", k, ok, present[k])
		}
	}
	// The migrated shard serves updates under the new scheme.
	if ok, err := st.Insert(keys[3]); err != nil || ok != !present[keys[3]] {
		t.Fatalf("post-migration insert: %v, %v", ok, err)
	}
	spec, err := st.Spec(0)
	if err != nil || spec.Scheme != "hp" {
		t.Fatalf("spec post-migration = %+v, %v", spec, err)
	}
	s := st.Stats()
	if s.Shards[0].Scheme != "hp" {
		t.Fatalf("stats scheme = %s, want hp (the current scheme, not the deploy spec)", s.Shards[0].Scheme)
	}
	if s.Shards[0].Migrations != 1 || s.Shards[0].Epoch != 1 {
		t.Fatalf("shard 0 migrations=%d epoch=%d, want 1/1", s.Shards[0].Migrations, s.Shards[0].Epoch)
	}
	if s.Shards[1].Migrations != 0 || s.Shards[1].Epoch != 0 || s.Shards[1].Scheme != "ebr" {
		t.Fatalf("neighbour shard disturbed: %+v", s.Shards[1])
	}
	if s.Migrations != 1 {
		t.Fatalf("aggregate migrations = %d", s.Migrations)
	}
	if s.Shards[0].Faults != 0 || s.Shards[0].UnsafeAccesses != 0 {
		t.Fatalf("migration produced safety events: %+v", s.Shards[0])
	}
}

// TestMigrateShardErrors checks every refusal path leaves the shard
// serving: bad shard index, unknown scheme, paper-inapplicable pair,
// already-drained shard, closed store.
func TestMigrateShardErrors(t *testing.T) {
	st, err := store.New(store.Config{
		// harris: the structure HP cannot guard (Appendix E).
		Shards:   store.Uniform(1, store.ShardSpec{Scheme: "ebr", Structure: "harris"}),
		KeyRange: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.MigrateShard(5, "hp"); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if err := st.MigrateShard(0, "nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := st.MigrateShard(0, "hp"); err == nil {
		t.Fatal("hp × harris accepted (Appendix E)")
	}
	// Every refusal above must leave the shard serving on ebr.
	if _, err := st.Insert(1); err != nil {
		t.Fatalf("shard stopped serving after refused migrations: %v", err)
	}
	if spec, _ := st.Spec(0); spec.Scheme != "ebr" {
		t.Fatalf("scheme changed by refused migration: %s", spec.Scheme)
	}
	if err := st.CloseShard(0); err != nil {
		t.Fatal(err)
	}
	if err := st.MigrateShard(0, "vbr"); !errors.Is(err, store.ErrShardClosed) {
		t.Fatalf("migrating a drained shard: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.MigrateShard(0, "vbr"); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("migrating on a closed store: %v", err)
	}
}

// TestMigrateShardRacingClients migrates a shard up the ladder twice
// while concurrent clients hammer the store (the -race satellite).
// Clients tolerate the transient ErrShardClosed a swap window produces;
// a set of pinned keys the clients never touch must survive both
// migrations; nothing may trip a safety counter.
func TestMigrateShardRacingClients(t *testing.T) {
	const keyRange = 512
	st, err := store.New(store.Config{
		Shards:   store.Uniform(2, store.ShardSpec{Scheme: "ebr", Structure: "michael", Workers: 2}),
		KeyRange: keyRange,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Pinned keys live in [256, 512): clients only mutate [0, 256).
	var pinned []int64
	for k := int64(256); k < keyRange; k++ {
		if st.ShardFor(k) == 0 {
			pinned = append(pinned, k)
		}
	}
	for _, k := range pinned {
		if ok, err := st.Insert(k); err != nil || !ok {
			t.Fatalf("pin insert(%d): %v, %v", k, ok, err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := workload.RNG(uint64(c) + 99)
			for {
				select {
				case <-stop:
					return
				default:
				}
				batch := make([]store.Op, 8)
				for i := range batch {
					batch[i] = store.Op{Kind: workload.Op(rng.Next() % 3), Key: int64(rng.Next() % 256)}
				}
				res, err := st.Do(batch)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				for _, r := range res {
					// ErrShardClosed is the migration window showing
					// through; anything else is a real failure.
					if r.Err != nil && !errors.Is(r.Err, store.ErrShardClosed) {
						t.Errorf("client %d: %v", c, r.Err)
						return
					}
				}
			}
		}(c)
	}
	for _, scheme := range []string{"ibr", "hp"} {
		time.Sleep(20 * time.Millisecond)
		if err := st.MigrateShard(0, scheme); err != nil {
			t.Fatalf("migrate → %s under load: %v", scheme, err)
		}
		for _, k := range pinned {
			if ok, err := st.Contains(k); err != nil || !ok {
				t.Fatalf("pinned key %d lost after → %s: %v, %v", k, scheme, ok, err)
			}
		}
	}
	close(stop)
	wg.Wait()
	s := st.Stats()
	if s.Shards[0].Scheme != "hp" || s.Shards[0].Migrations != 2 || s.Shards[0].Epoch != 2 {
		t.Fatalf("shard 0 after ladder: %+v", s.Shards[0])
	}
	if s.Faults != 0 || s.UnsafeAccesses != 0 || s.Violations != 0 || s.StaleUses != 0 {
		t.Fatalf("safety events under racing migration: %+v", s)
	}
}

// TestReopenRacesClose pits ReopenShard against CloseShard on the same
// shard: whoever loses must fail cleanly (ErrShardClosed / "is open" /
// swapped-concurrently), never race on the closed flag or leak workers.
func TestReopenRacesClose(t *testing.T) {
	for i := 0; i < 50; i++ {
		st, err := store.New(store.Config{
			Shards: store.Uniform(1, store.ShardSpec{Scheme: "ebr", Structure: "michael"}),
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); _ = st.CloseShard(0) }()
		go func() { defer wg.Done(); _ = st.ReopenShard(0) }()
		wg.Wait()
		_ = st.Close()
	}
}

// TestMigrateShardWithParkedWorker checks the grace path: a worker
// parked at a fault breakpoint cannot drain, and migration must proceed
// without it — contents preserved, new scheme serving — while the
// straggler stays parked on the orphaned incarnation until its fault
// heals.
func TestMigrateShardWithParkedWorker(t *testing.T) {
	bp := sched.NewBreakpoints()
	st, err := store.New(store.Config{
		Shards:       []store.ShardSpec{{Scheme: "ebr", Structure: "michael", Workers: 2, Gate: bp}},
		KeyRange:     64,
		MigrateGrace: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	keys := keysOn(st, 0, 6, 64)
	for _, k := range keys {
		if ok, err := st.Insert(k); err != nil || !ok {
			t.Fatalf("insert(%d): %v, %v", k, ok, err)
		}
	}
	// Park worker 0 mid-operation, exactly as the stall fault does: pump
	// single-op probes until worker 0 picks one up and parks (probes that
	// land on worker 1 complete normally). The probe that parks blocks in
	// Do until the release.
	stall := bp.Arm(0, ds.PointSearchHead, nil, 0)
	var probes sync.WaitGroup
	pumpStop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stall.Reached():
				return
			case <-pumpStop:
				return
			case <-time.After(200 * time.Microsecond):
			}
			probes.Add(1)
			go func() {
				defer probes.Done()
				_, _ = st.Contains(keys[0])
			}()
		}
	}()
	defer close(pumpStop)
	<-stall.Reached()

	start := time.Now()
	if err := st.MigrateShard(0, "ibr"); err != nil {
		t.Fatalf("migrate with parked worker: %v", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("migration blocked on the parked worker for %v", waited)
	}
	for _, k := range keys {
		if ok, err := st.Contains(k); err != nil || !ok {
			t.Fatalf("key %d lost migrating around the straggler: %v, %v", k, ok, err)
		}
	}
	if spec, _ := st.Spec(0); spec.Scheme != "ibr" {
		t.Fatalf("scheme = %s, want ibr", spec.Scheme)
	}
	// The straggler is still parked on the orphaned shard; healing the
	// fault releases it, it completes its probe against the old heap, and
	// every outstanding probe drains.
	stall.Release()
	drained := make(chan struct{})
	go func() {
		probes.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("straggler never drained after release")
	}
}
