// Package store composes the repository's lock-free structures and
// reclamation schemes into a sharded multi-tenant key-value service — the
// deployment shape the ERA theorem's trade-off is actually about. A Store
// hashes keys across N shards; each shard owns its *own* simulated heap,
// its own registry-selected data structure, and its own SMR domain, so
// scheme choice becomes a per-shard deployment decision: hazard pointers
// on the hot shards where robustness pays, epochs on the cold ones where
// ease of integration and raw throughput win.
//
// Clients talk to the store through batched requests (Do): a batch is
// split per shard and each sub-batch travels as one message to the
// shard's worker goroutines, which execute the operations with their own
// scheme thread ids. Per-shard isolation means a stalled or faulting
// shard cannot corrupt — or even delay reclamation on — its neighbours.
//
// Shards drain gracefully: CloseShard (and Close) stop new submissions,
// let every queued batch complete, then flush the shard's retire lists so
// the backlog settles before the final stats are read.
package store

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ds"
	"repro/internal/ds/registry"
	"repro/internal/mem"
	"repro/internal/obs/rec"
	"repro/internal/sched"
	"repro/internal/smr"
	"repro/internal/smr/all"
	"repro/internal/workload"
)

// Errors reported by submission paths.
var (
	// ErrClosed reports a submission to a closed store.
	ErrClosed = errors.New("store: closed")
	// ErrShardClosed reports an operation routed to a drained shard.
	ErrShardClosed = errors.New("store: shard closed")
)

// ShardSpec configures one shard: which reclamation scheme guards it,
// which structure it serves, and how much capacity it gets. Distinct
// shards may use distinct schemes — that heterogeneity is the point.
type ShardSpec struct {
	// Scheme is the reclamation scheme name ("ebr", "hp", ...), resolved
	// through smr/all. The scheme instance and its domain (retire lists,
	// epochs, hazard slots) are private to the shard.
	Scheme string
	// Structure is the set structure name, resolved through ds/registry
	// ("hashmap" is an alias for the HP-compatible hashmap-michael).
	Structure string
	// Workers is the number of worker goroutines (= scheme threads)
	// serving the shard; 0 selects 1.
	Workers int
	// Threshold is the scheme's retire-list scan threshold; 0 selects the
	// scheme default.
	Threshold int
	// Slots sizes the shard's heap; 0 derives a default from the store's
	// key range. Leaky schemes ("none") need an explicit size.
	Slots int
	// Gate, when non-nil, instruments the shard's structure with named
	// execution points (sched.Gate). This is the chaos-injection hook:
	// internal/chaos arms breakpoints on it to park shard workers at
	// reclamation-critical moments. Nil costs nothing on the serving path.
	Gate sched.Gate
	// HeadRestart forces the shard's structure back onto unbounded
	// head-restart finds (ds.Options.HeadRestart) — the restart-storm
	// baseline arm of the traverse benchmark. Leave false in deployments.
	HeadRestart bool
	// NoFuse disables the batch-fused execution path (one amortized SMR
	// bracket per request batch) and serves every op under its own
	// BeginOp/EndOp bracket — the per-op-bracket baseline arm of the
	// batch benchmark. Leave false in deployments.
	NoFuse bool
}

// Config assembles a store.
type Config struct {
	// Shards holds one spec per shard; Uniform builds the homogeneous
	// case. Must be non-empty.
	Shards []ShardSpec
	// KeyRange is the key universe [0, KeyRange) the store is expected to
	// serve; it sizes the default per-shard heap, and it is the universe
	// MigrateShard's snapshot scans — keys outside it survive a migration
	// only by accident. 0 selects 1024.
	KeyRange int
	// QueueDepth is the per-shard request-queue capacity (how many
	// batches may wait on a busy shard before submitters block). 0
	// selects 64.
	QueueDepth int
	// MigrateGrace bounds how long MigrateShard tolerates a *stalled*
	// drain: workers that keep completing operations are always waited
	// out (the queue is closed and bounded, so a merely busy shard
	// drains fully and its snapshot is exact), but once a full grace
	// window passes with zero operation progress the stragglers are
	// declared parked and the migration proceeds without them. A worker
	// parked at a fault breakpoint never exits on its own — robustness
	// faults are exactly threads that do not resume — so a bounded
	// stall wait is what keeps migration a remedy that works *during*
	// the fault it remedies. 0 selects 100ms.
	MigrateGrace time.Duration
	// SnapshotScan forces MigrateShard's snapshot back onto the legacy
	// O(universe) Contains probe of [0, KeyRange) instead of the
	// structures' O(live-keys) iterator. Kept as the traverse benchmark's
	// baseline arm; leave false in deployments.
	SnapshotScan bool
	// Recorder, when non-nil, is the observability plane's flight
	// recorder (internal/obs/rec): every shard's reclamation scans and
	// traversal guard trips, and the store's migrations and reopens, are
	// stamped onto its shared run clock. Nil keeps the serving path
	// hook-free.
	Recorder *rec.Recorder
}

// Uniform returns n copies of spec — the homogeneous deployment.
func Uniform(n int, spec ShardSpec) []ShardSpec {
	specs := make([]ShardSpec, n)
	for i := range specs {
		specs[i] = spec
	}
	return specs
}

// Op is one key-value service operation. The operation vocabulary is the
// set ADT's, shared with the workload generator so benchmark streams feed
// straight into batches.
type Op struct {
	Kind workload.Op
	Key  int64
}

// Result is one operation's outcome: OK is the set-operation result
// (present / inserted / removed) and Err any heap or routing error.
type Result struct {
	OK  bool
	Err error
}

// shardMeta is the slot-level history that survives shard replacement:
// the shard objects come and go across reopen/migrate swaps, the meta
// stays with the slot. Guarded by the store's mu.
type shardMeta struct {
	// epoch counts the slot's incarnations: 0 for the original build,
	// +1 per reopen or migration swap.
	epoch uint64
	// migrations counts completed live scheme migrations.
	migrations uint64
	// Last completed migration's cost observables: membership probes the
	// snapshot issued, live keys it carried over, and the swap window —
	// the span from admission stop to the rebuilt shard's attach, i.e.
	// how long clients saw ErrShardClosed.
	snapshotProbes uint64
	snapshotKeys   uint64
	swapWindow     time.Duration
}

// migrationRec carries one migration's cost observables into attachShard,
// which records them in the slot's meta under the same exclusive lock
// that installs the new shard.
type migrationRec struct {
	start  time.Time
	probes uint64
	keys   uint64
}

// Store is the sharded service frontend. All methods are safe for
// concurrent use.
type Store struct {
	shards   []*shard
	keyRange int
	// meta holds per-slot swap history (epochs, migration counts).
	meta []shardMeta
	// cfg is the defaults-filled construction config, kept so closed
	// shards can be rebuilt (ReopenShard, MigrateShard).
	cfg Config

	// mu orders submissions against shard/store close: submitters hold it
	// shared while checking closed flags and enqueueing, closers hold it
	// exclusively while flipping the flags.
	mu     sync.RWMutex
	closed bool
}

// New builds the store and starts every shard's workers. Scheme ×
// structure pairs the paper classifies as inapplicable (Appendix E) are
// rejected up front.
func New(cfg Config) (*Store, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("store: config needs at least one shard")
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 1024
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MigrateGrace <= 0 {
		cfg.MigrateGrace = 100 * time.Millisecond
	}
	st := &Store{keyRange: cfg.KeyRange, cfg: cfg, meta: make([]shardMeta, len(cfg.Shards))}
	for i, spec := range cfg.Shards {
		sh, err := newShard(i, spec, cfg)
		if err != nil {
			st.stop()
			return nil, fmt.Errorf("store: shard %d: %w", i, err)
		}
		st.shards = append(st.shards, sh)
	}
	return st, nil
}

// newShard resolves the spec and starts the shard's workers.
func newShard(id int, spec ShardSpec, cfg Config) (*shard, error) {
	info, err := registry.Get(spec.Structure)
	if err != nil {
		return nil, err
	}
	if info.Kind != registry.KindSet {
		return nil, fmt.Errorf("store serves set structures, %s is a %v", spec.Structure, info.Kind)
	}
	if !registry.Applicable(spec.Scheme, info.Name) {
		return nil, fmt.Errorf("scheme %s is not applicable to %s (Appendix E)", spec.Scheme, info.Name)
	}
	if spec.Workers <= 0 {
		spec.Workers = 1
	}
	if spec.Slots <= 0 {
		// A shard holds its hash slice of the key range (~KeyRange/N for
		// a mixed hash) plus the transient retired backlog; 2× the slice
		// plus fixed headroom covers sentinels, imbalance and backlog for
		// every reclaiming scheme.
		spec.Slots = 2*cfg.KeyRange/len(cfg.Shards) + 4096 + 64*spec.Workers
	}
	if spec.Threshold <= 0 {
		// Resolve the scheme-default scan threshold (smr.NewBase: 2 ×
		// threads × 8) into the spec, so Spec() — and the telemetry
		// budgets built from it — report the value the scheme actually
		// runs with. The scheme sees the same number either way.
		spec.Threshold = 2 * (spec.Workers + 1) * 8
	}
	// One scheme thread beyond the worker pool: the maintenance tid,
	// reserved for the shard's own drain/snapshot/replay machinery. It is
	// never driven concurrently with itself, and because it is not a
	// worker tid it stays usable even when a faulted worker never drains
	// (a parked worker owns its tid forever). Idle scheme threads are
	// free: an inactive announcement pins no epoch, an empty hazard slot
	// protects nothing.
	threads := spec.Workers + 1
	a := mem.NewArena(mem.Config{
		Slots:        spec.Slots,
		PayloadWords: info.PayloadWords,
		MetaWords:    smr.MetaWords,
		Threads:      threads,
		Mode:         mem.Reuse,
	})
	s, err := all.New(spec.Scheme, a, threads, spec.Threshold)
	if err != nil {
		return nil, err
	}
	opts := ds.Options{Gate: spec.Gate, HeadRestart: spec.HeadRestart}
	if r := cfg.Recorder; r != nil {
		// Guard trips and reclamation scans flow into the flight recorder
		// tagged with this slot id. Both hooks are installed before the
		// workers start, so the scan path reads them race-free.
		opts.OnGuardTrip = func(structure, op string, steps, restarts uint64) {
			r.Record(rec.KindGuardTrip, id, 0, steps, restarts, structure+"."+op)
		}
		if o, ok := s.(interface{ SetObserver(smr.Observer) }); ok {
			o.SetObserver(scanObserver{r: r, shard: id})
		}
	}
	set, err := info.NewSet(s, opts)
	if err != nil {
		return nil, err
	}
	sh := &shard{
		id:      id,
		spec:    spec,
		arena:   a,
		scheme:  s,
		set:     set,
		maint:   spec.Workers,
		ordered: !info.Partitioned,
		rec:     cfg.Recorder,
		reqs:    make(chan *request, cfg.QueueDepth),
		stripes: make([]opStripe, spec.Workers),
	}
	if !spec.NoFuse {
		sh.batch, _ = set.(ds.BatchSet)
	}
	for w := 0; w < spec.Workers; w++ {
		sh.wg.Add(1)
		go sh.worker(w)
	}
	return sh, nil
}

// scanObserver forwards one shard scheme's reclamation scans into the
// flight recorder: A = retired nodes examined, B = nodes reclaimed.
type scanObserver struct {
	r     *rec.Recorder
	shard int
}

func (o scanObserver) SMRScan(tid, scanned, reclaimed int) {
	o.r.Record(rec.KindSMRScan, o.shard, tid, uint64(scanned), uint64(reclaimed), "")
}

// Shards returns the shard count.
func (st *Store) Shards() int { return len(st.shards) }

// ShardFor returns the shard index serving key.
func (st *Store) ShardFor(key int64) int { return st.shardOf(key) }

// mix64 is the Murmur3 finalizer: it spreads adjacent (and zipfian-hot)
// keys across shards so the shard index exercises every bit of the key.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (st *Store) shardOf(key int64) int {
	return int(mix64(uint64(key)) % uint64(len(st.shards)))
}

// doSpine is the pooled partition state behind Do/DoInto: the flat
// two-pass partition arrays (the exec leg-compilation treatment applied
// to the store's own routing) and the WaitGroup, embedded so the
// completion handshake allocates nothing either. One spine serves one
// call, then returns to the pool.
type doSpine struct {
	wg    sync.WaitGroup
	count []int
	offs  []int
	ops   []Op
	idx   []int
}

var spinePool = sync.Pool{New: func() any { return new(doSpine) }}

// Do executes a batch: operations are grouped per shard, each group is
// submitted as one message, and the call returns once every shard has
// filled in its results (res[i] answers ops[i]). Operations routed to a
// drained shard report ErrShardClosed in their individual Result; a fully
// closed store fails the whole call with ErrClosed.
func (st *Store) Do(ops []Op) ([]Result, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	res := make([]Result, len(ops))
	if err := st.DoInto(ops, res); err != nil {
		return nil, err
	}
	return res, nil
}

// DoInto is Do with a caller-provided result slice (len(res) must be at
// least len(ops); res[i] answers ops[i]). With the envelope pool and
// the pooled partition spine this is the zero-alloc steady-state point
// of the service hot path: a caller that reuses res allocates nothing
// per request.
func (st *Store) DoInto(ops []Op, res []Result) error {
	if len(ops) == 0 {
		return nil
	}
	if len(res) < len(ops) {
		return fmt.Errorf("store: result slice too short (%d < %d)", len(res), len(ops))
	}
	ns := len(st.shards)
	sp := spinePool.Get().(*doSpine)
	var opsFlat []Op
	var idxFlat []int
	var offs []int
	if ns == 1 {
		// Single shard: no partition needed, the batch travels as-is.
		opsFlat = ops
	} else {
		// Flat two-pass partition: count per shard, prefix into offsets,
		// fill contiguous per-shard slices. mix64 is cheaper than a
		// cached shard-id array would be.
		if cap(sp.count) < ns {
			sp.count = make([]int, ns)
			sp.offs = make([]int, ns)
		}
		count := sp.count[:ns]
		offs = sp.offs[:ns]
		for s := range count {
			count[s] = 0
		}
		for _, op := range ops {
			count[st.shardOf(op.Key)]++
		}
		sum := 0
		for s, n := range count {
			offs[s] = sum
			sum += n
		}
		if cap(sp.ops) < len(ops) {
			sp.ops = make([]Op, 0, 2*len(ops))
			sp.idx = make([]int, 0, 2*len(ops))
		}
		opsFlat = sp.ops[:len(ops)]
		idxFlat = sp.idx[:len(ops)]
		for i, op := range ops {
			s := st.shardOf(op.Key)
			opsFlat[offs[s]] = op
			idxFlat[offs[s]] = i
			offs[s]++
		}
		// offs[s] now marks the end of shard s's segment.
	}
	st.mu.RLock()
	if st.closed {
		st.mu.RUnlock()
		spinePool.Put(sp)
		return ErrClosed
	}
	if ns == 1 {
		sh := st.shards[0]
		if sh.closed {
			st.mu.RUnlock()
			spinePool.Put(sp)
			for i := range ops {
				res[i] = Result{Err: ErrShardClosed}
			}
			return nil
		}
		sp.wg.Add(1)
		req := newRequest()
		req.ops, req.res, req.wg = opsFlat, res, &sp.wg
		sh.reqs <- req
		st.mu.RUnlock()
	} else {
		lo := 0
		for s := 0; s < ns; s++ {
			hi := offs[s]
			if hi == lo {
				continue
			}
			sh := st.shards[s]
			if sh.closed {
				for _, i := range idxFlat[lo:hi] {
					res[i] = Result{Err: ErrShardClosed}
				}
				lo = hi
				continue
			}
			sp.wg.Add(1)
			req := newRequest()
			req.ops, req.res, req.idx, req.wg = opsFlat[lo:hi], res, idxFlat[lo:hi], &sp.wg
			sh.reqs <- req
			lo = hi
		}
		st.mu.RUnlock()
	}
	sp.wg.Wait()
	// Every worker stripped and pooled its envelope before Done, so the
	// flat arrays are no longer referenced and the spine can be reused.
	spinePool.Put(sp)
	return nil
}

// DoShard executes one batch entirely on shard s — the scatter-leg
// submission path the exec layer (internal/exec) compiles cross-shard
// operations onto. Unlike Do it does not route: the caller has already
// grouped its operations by ShardFor, and the whole group travels as one
// message to shard s's workers. A drained shard fails the leg with
// ErrShardClosed (typed, so fan-out layers can surface it as a per-shard
// partial-failure instead of a failed fan-out); per-operation errors land
// in the individual Results exactly as with Do.
func (st *Store) DoShard(s int, ops []Op) ([]Result, error) {
	if s < 0 || s >= len(st.shards) {
		return nil, fmt.Errorf("store: no shard %d", s)
	}
	if len(ops) == 0 {
		return nil, nil
	}
	res := make([]Result, len(ops))
	var wg sync.WaitGroup
	st.mu.RLock()
	if st.closed {
		st.mu.RUnlock()
		return nil, ErrClosed
	}
	sh := st.shards[s]
	if sh.closed {
		st.mu.RUnlock()
		return nil, ErrShardClosed
	}
	wg.Add(1)
	req := newRequest()
	req.ops, req.res, req.wg = ops, res, &wg
	sh.reqs <- req
	st.mu.RUnlock()
	wg.Wait()
	return res, nil
}

// ScanShard walks shard s's live keys in the half-open interval [lo, hi)
// and returns them in the structure's iterator emission order, plus the
// match count. The leg travels the shard's request queue and executes on
// a worker tid through the structure's guarded iterator — O(live keys),
// epoch re-bracketed, subject to the same backpressure and faults as any
// batch — so it is the range-scatter primitive the exec layer fans
// RangeScan/RangeCount across shards with. limit > 0 caps the collected
// keys; countOnly skips collection and returns only the count. Ordered
// structures stop at the first key ≥ hi; partitioned ones sweep their
// buckets, so cross-shard callers must sort-merge (exec's merge stage
// does).
func (st *Store) ScanShard(s int, lo, hi int64, limit int, countOnly bool) ([]int64, uint64, error) {
	if s < 0 || s >= len(st.shards) {
		return nil, 0, fmt.Errorf("store: no shard %d", s)
	}
	if hi <= lo {
		return nil, 0, nil
	}
	sc := &scanRequest{lo: lo, hi: hi, limit: limit, countOnly: countOnly}
	var wg sync.WaitGroup
	st.mu.RLock()
	if st.closed {
		st.mu.RUnlock()
		return nil, 0, ErrClosed
	}
	sh := st.shards[s]
	if sh.closed {
		st.mu.RUnlock()
		return nil, 0, ErrShardClosed
	}
	wg.Add(1)
	req := newRequest()
	req.scan, req.wg = sc, &wg
	sh.reqs <- req
	st.mu.RUnlock()
	wg.Wait()
	if sc.err != nil {
		return nil, sc.count, sc.err
	}
	return sc.keys, sc.count, nil
}

// DoShardAsync is DoShard's asynchronous, non-blocking form: the batch
// is offered to shard s's request queue and the call returns
// immediately — accepted reports whether the queue had room. On
// acceptance, the worker that completes the batch writes each
// operation's outcome into res (at idx positions when idx is non-nil,
// res[i] answers ops[i] otherwise) and then runs done on its own
// goroutine; done observes every result write. done must be light — it
// occupies the shard worker. A refused batch (accepted == false, err ==
// nil) touched nothing and may be retried; a drained shard or closed
// store refuses with the same typed errors as DoShard. This is the
// submission path a pipelined fan-out layer needs: one goroutine can
// keep many legs in flight with no blocked thread per leg.
func (st *Store) DoShardAsync(s int, ops []Op, res []Result, idx []int, done func()) (accepted bool, err error) {
	if s < 0 || s >= len(st.shards) {
		return false, fmt.Errorf("store: no shard %d", s)
	}
	if len(ops) == 0 {
		done()
		return true, nil
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		return false, ErrClosed
	}
	sh := st.shards[s]
	if sh.closed {
		return false, ErrShardClosed
	}
	req := newRequest()
	req.ops, req.res, req.idx, req.done = ops, res, idx, done
	select {
	case sh.reqs <- req:
		return true, nil
	default:
		*req = request{}
		reqPool.Put(req)
		return false, nil
	}
}

// ScanShardAsync is ScanShard's asynchronous, non-blocking form: the
// range leg is offered to shard s's request queue; accepted reports
// whether the queue had room. On acceptance, the worker that ran the
// walk calls done with the leg's outcome. The same contract as
// DoShardAsync applies: a refusal touched nothing, done runs on the
// worker and must be light.
func (st *Store) ScanShardAsync(s int, lo, hi int64, limit int, countOnly bool, done func(keys []int64, count uint64, err error)) (accepted bool, err error) {
	if s < 0 || s >= len(st.shards) {
		return false, fmt.Errorf("store: no shard %d", s)
	}
	if hi <= lo {
		done(nil, 0, nil)
		return true, nil
	}
	sc := &scanRequest{lo: lo, hi: hi, limit: limit, countOnly: countOnly}
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		return false, ErrClosed
	}
	sh := st.shards[s]
	if sh.closed {
		return false, ErrShardClosed
	}
	req := newRequest()
	req.scan, req.done = sc, func() { done(sc.keys, sc.count, sc.err) }
	select {
	case sh.reqs <- req:
		return true, nil
	default:
		*req = request{}
		reqPool.Put(req)
		return false, nil
	}
}

// do1 runs a single operation through the batch path.
func (st *Store) do1(kind workload.Op, key int64) (bool, error) {
	res, err := st.Do([]Op{{Kind: kind, Key: key}})
	if err != nil {
		return false, err
	}
	return res[0].OK, res[0].Err
}

// Contains reports membership of key.
func (st *Store) Contains(key int64) (bool, error) { return st.do1(workload.OpContains, key) }

// Insert adds key; false if already present.
func (st *Store) Insert(key int64) (bool, error) { return st.do1(workload.OpInsert, key) }

// Delete removes key; false if absent.
func (st *Store) Delete(key int64) (bool, error) { return st.do1(workload.OpDelete, key) }

// detachShard is the front half of every shard swap: it stops new
// submissions to shard s (they start failing with ErrShardClosed) and
// closes the request queue so the workers drain what is already queued
// and exit. The caller decides how long to wait for that exit
// (shard.await) and what to install in the slot afterwards
// (attachShard), which is what lets CloseShard, ReopenShard, and
// MigrateShard share one drain core.
func (st *Store) detachShard(s int) (*shard, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, ErrClosed
	}
	sh := st.shards[s]
	if sh.closed {
		st.mu.Unlock()
		return nil, ErrShardClosed
	}
	sh.closed = true
	st.mu.Unlock()
	// No submitter can reach the queue anymore (they re-check the flag
	// under mu), so closing lets the workers drain what's left and exit.
	close(sh.reqs)
	return sh, nil
}

// attachShard is the back half of a swap: it installs repl as shard s,
// atomically under the exclusive lock, provided the slot still holds the
// shard the caller detached (a concurrent reopen may have raced the
// rebuild; the loser is torn down, not leaked). The slot's epoch always
// advances; a non-nil mig additionally bumps the migration count and
// records the migration's cost observables (probes, keys, swap window).
func (st *Store) attachShard(s int, old, repl *shard, mig *migrationRec) error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		repl.teardown()
		return ErrClosed
	}
	if st.shards[s] != old {
		st.mu.Unlock()
		repl.teardown()
		return fmt.Errorf("store: shard %d was swapped concurrently", s)
	}
	st.shards[s] = repl
	st.meta[s].epoch++
	if mig != nil {
		st.meta[s].migrations++
		st.meta[s].snapshotProbes = mig.probes
		st.meta[s].snapshotKeys = mig.keys
		st.meta[s].swapWindow = time.Since(mig.start)
	}
	st.mu.Unlock()
	return nil
}

// CloseShard drains one shard: new operations routed to it start failing
// with ErrShardClosed, every batch already queued completes, and the
// shard's retire lists are flushed so its backlog settles. The rest of
// the store keeps serving.
func (st *Store) CloseShard(s int) error {
	if s < 0 || s >= len(st.shards) {
		return fmt.Errorf("store: no shard %d", s)
	}
	sh, err := st.detachShard(s)
	if err != nil {
		return err
	}
	sh.await(0)
	sh.drain()
	return nil
}

// ReopenShard rebuilds a drained shard from its resolved spec and resumes
// serving on it. The rebuilt shard starts empty — reopening models a
// process restart (fresh heap, fresh SMR domain, cold data), which is
// exactly the fault surface the chaos churn fault exercises: clients see
// ErrShardClosed turn back into misses, not into stale data.
func (st *Store) ReopenShard(s int) error {
	if s < 0 || s >= len(st.shards) {
		return fmt.Errorf("store: no shard %d", s)
	}
	st.mu.RLock()
	if st.closed {
		st.mu.RUnlock()
		return ErrClosed
	}
	old := st.shards[s]
	// Read the flag under the lock (detachShard writes it under the
	// exclusive lock). It only ever transitions false→true on a given
	// shard object — swaps install a new object — so once observed true
	// here it stays true through the rebuild below.
	closed := old.closed
	st.mu.RUnlock()
	if !closed {
		return fmt.Errorf("store: shard %d is open", s)
	}
	sh, err := newShard(s, old.spec, st.cfg)
	if err != nil {
		return fmt.Errorf("store: reopen shard %d: %w", s, err)
	}
	if err := st.attachShard(s, old, sh, nil); err != nil {
		return fmt.Errorf("store: reopen shard %d: %w", s, err)
	}
	st.cfg.Recorder.Record(rec.KindReopen, s, 0, 0, 0, old.spec.Scheme)
	return nil
}

// MigrateShard live-migrates shard s onto a different reclamation
// scheme: it stops admissions, drains the in-flight batches, snapshots
// the shard's set contents, rebuilds heap + structure + SMR domain under
// the new scheme, replays the snapshot, and atomically swaps the rebuilt
// shard in. Operations routed to the shard while the swap is in flight
// fail with ErrShardClosed — the same transient clients already absorb
// across churn — and the rest of the store serves throughout. Migrating
// a shard to its current scheme is allowed: that is a restart that keeps
// the data.
//
// A worker parked at a fault breakpoint cannot be drained — a robustness
// fault is precisely a thread that does not resume — so after
// Config.MigrateGrace the migration proceeds without the straggler. The
// straggler keeps its tid on the *orphaned* incarnation: when (if) it
// resumes it completes its one in-flight batch against the old heap and
// exits, the client unblocks, and any effect of that batch stays behind
// on memory the store no longer serves. That is restart semantics for
// the stuck thread, bounded migration latency for everyone else — and it
// is exactly why escalating a shard off a non-robust scheme is possible
// *during* the stall that made escalation necessary.
//
// On a snapshot or rebuild failure the shard is left closed (ReopenShard
// recovers it, cold); the error reports which.
func (st *Store) MigrateShard(s int, scheme string) error {
	if s < 0 || s >= len(st.shards) {
		return fmt.Errorf("store: no shard %d", s)
	}
	// Validate the target before touching the shard: a typo'd scheme must
	// not leave the shard closed.
	if _, err := all.Props(scheme); err != nil {
		return err
	}
	spec, err := st.Spec(s)
	if err != nil {
		return err
	}
	info, err := registry.Get(spec.Structure)
	if err != nil {
		return err
	}
	if !registry.Applicable(scheme, info.Name) {
		return fmt.Errorf("store: migrate shard %d: scheme %s is not applicable to %s (Appendix E)", s, scheme, info.Name)
	}
	transition := spec.Scheme + "→" + scheme
	swapStart := time.Now()
	old, err := st.detachShard(s)
	if err != nil {
		return err
	}
	st.cfg.Recorder.Record(rec.KindMigrationStart, s, 0, 0, 0, transition)
	if clean := old.await(st.cfg.MigrateGrace); clean {
		// Fully quiesced: settle the backlog so the snapshot reads a
		// drained structure. With a straggler parked mid-operation the
		// flush is skipped — its tid is not ours to drive, and the old
		// heap is about to be orphaned wholesale anyway.
		old.drain()
	}
	keys, probes, err := old.snapshot(st.keyRange, st.shardOf, st.cfg.SnapshotScan)
	if err != nil {
		st.cfg.Recorder.Record(rec.KindMigrationFail, s, 0, 0, 0, "snapshot: "+err.Error())
		return fmt.Errorf("store: migrate shard %d: snapshot: %w (shard left closed)", s, err)
	}
	nspec := old.spec
	nspec.Scheme = scheme
	repl, err := newShard(s, nspec, st.cfg)
	if err != nil {
		st.cfg.Recorder.Record(rec.KindMigrationFail, s, 0, 0, 0, "rebuild: "+err.Error())
		return fmt.Errorf("store: migrate shard %d: rebuild: %w (shard left closed)", s, err)
	}
	if err := repl.replay(keys); err != nil {
		repl.teardown()
		st.cfg.Recorder.Record(rec.KindMigrationFail, s, 0, 0, 0, "replay: "+err.Error())
		return fmt.Errorf("store: migrate shard %d: replay: %w (shard left closed)", s, err)
	}
	mrec := &migrationRec{start: swapStart, probes: probes, keys: uint64(len(keys))}
	if err := st.attachShard(s, old, repl, mrec); err != nil {
		st.cfg.Recorder.Record(rec.KindMigrationFail, s, 0, 0, 0, err.Error())
		return fmt.Errorf("store: migrate shard %d: %w", s, err)
	}
	st.cfg.Recorder.Record(rec.KindMigrationDone, s, 0,
		uint64(len(keys)), uint64(time.Since(swapStart)), transition)
	return nil
}

// Spec returns shard s's resolved spec (defaults filled in).
func (st *Store) Spec(s int) (ShardSpec, error) {
	if s < 0 || s >= len(st.shards) {
		return ShardSpec{}, fmt.Errorf("store: no shard %d", s)
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.shards[s].spec, nil
}

// Close drains every shard and shuts the store down. Batches accepted
// before Close complete; later submissions fail with ErrClosed.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return ErrClosed
	}
	st.closed = true
	var open []*shard
	for _, sh := range st.shards {
		if !sh.closed {
			sh.closed = true
			open = append(open, sh)
		}
	}
	st.mu.Unlock()
	for _, sh := range open {
		close(sh.reqs)
	}
	for _, sh := range open {
		sh.await(0)
		sh.drain()
	}
	return nil
}

// stop tears down partially constructed shards on a New failure.
func (st *Store) stop() {
	for _, sh := range st.shards {
		close(sh.reqs)
		sh.wg.Wait()
	}
}
