package store_test

import (
	"errors"
	"sort"
	"testing"

	"repro/internal/store"
	"repro/internal/workload"
)

// TestDoShardExecutesOneGroup checks the scatter-leg submission path: a
// pre-grouped batch lands entirely on the named shard and its results
// align position-for-position with the submitted operations.
func TestDoShardExecutesOneGroup(t *testing.T) {
	st, err := store.New(store.Config{
		Shards:   store.Uniform(4, store.ShardSpec{Scheme: "ebr", Structure: "michael"}),
		KeyRange: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Group keys for shard 2 the way the exec layer would.
	var ops []store.Op
	for k := int64(0); k < 256 && len(ops) < 16; k++ {
		if st.ShardFor(k) == 2 {
			ops = append(ops, store.Op{Kind: workload.OpInsert, Key: k})
		}
	}
	res, err := st.DoShard(2, ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(ops) {
		t.Fatalf("got %d results for %d ops", len(res), len(ops))
	}
	for i, r := range res {
		if r.Err != nil || !r.OK {
			t.Fatalf("insert %d: ok=%v err=%v", ops[i].Key, r.OK, r.Err)
		}
	}
	// Membership must be visible through the routed path too.
	for _, op := range ops {
		ok, err := st.Contains(op.Key)
		if err != nil || !ok {
			t.Fatalf("Contains(%d) = %v, %v after DoShard insert", op.Key, ok, err)
		}
	}
	if err := st.CloseShard(2); err != nil {
		t.Fatal(err)
	}
	if _, err := st.DoShard(2, ops); !errors.Is(err, store.ErrShardClosed) {
		t.Fatalf("DoShard on a drained shard: got %v, want ErrShardClosed", err)
	}
}

// TestScanShardRangeLeg checks the range-scatter primitive on both an
// ordered structure (globally ascending emission, early upper-bound stop)
// and a partitioned one (bucket-ordered, full sweep): the collected keys
// are exactly the shard's live keys inside [lo, hi), limits cap
// collection, and countOnly still counts.
func TestScanShardRangeLeg(t *testing.T) {
	for _, structure := range []string{"michael", "hashmap"} {
		t.Run(structure, func(t *testing.T) {
			st, err := store.New(store.Config{
				Shards:   store.Uniform(2, store.ShardSpec{Scheme: "ebr", Structure: structure}),
				KeyRange: 512,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			want := map[int][]int64{}
			for k := int64(0); k < 512; k += 3 {
				if _, err := st.Insert(k); err != nil {
					t.Fatal(err)
				}
				if k >= 100 && k < 400 {
					s := st.ShardFor(k)
					want[s] = append(want[s], k)
				}
			}
			for s := 0; s < st.Shards(); s++ {
				keys, count, err := st.ScanShard(s, 100, 400, 0, false)
				if err != nil {
					t.Fatal(err)
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				if int(count) != len(want[s]) || len(keys) != len(want[s]) {
					t.Fatalf("shard %d: got %d keys (count %d), want %d", s, len(keys), count, len(want[s]))
				}
				for i, k := range want[s] {
					if keys[i] != k {
						t.Fatalf("shard %d key %d: got %d want %d", s, i, keys[i], k)
					}
				}
				// Limit caps collection; countOnly collects nothing.
				if len(want[s]) > 1 {
					keys, count, err = st.ScanShard(s, 100, 400, 1, false)
					if err != nil || len(keys) != 1 || count != 1 {
						t.Fatalf("shard %d limited scan: keys=%d count=%d err=%v", s, len(keys), count, err)
					}
				}
				keys, count, err = st.ScanShard(s, 100, 400, 0, true)
				if err != nil || keys != nil || int(count) != len(want[s]) {
					t.Fatalf("shard %d countOnly: keys=%v count=%d err=%v", s, keys, count, err)
				}
			}
			// Empty and inverted intervals are cheap no-ops.
			if keys, count, err := st.ScanShard(0, 400, 100, 0, false); err != nil || keys != nil || count != 0 {
				t.Fatalf("inverted interval: keys=%v count=%d err=%v", keys, count, err)
			}
		})
	}
}

// TestDoPartialOpErrors pins the blocking path's partial-failure
// contract: a batch spanning a drained shard still executes its other
// operations, the drained shard's operations report ErrShardClosed in
// their individual Results, and the call itself succeeds. This is the
// semantics the exec layer's per-shard partial results build on.
func TestDoPartialOpErrors(t *testing.T) {
	st, err := store.New(store.Config{
		Shards:   store.Uniform(4, store.ShardSpec{Scheme: "ebr", Structure: "michael"}),
		KeyRange: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.CloseShard(1); err != nil {
		t.Fatal(err)
	}
	batch := make([]store.Op, 0, 64)
	for k := int64(0); k < 256; k++ {
		batch = append(batch, store.Op{Kind: workload.OpInsert, Key: k})
	}
	res, err := st.Do(batch)
	if err != nil {
		t.Fatalf("Do over a partially drained store must not fail the call: %v", err)
	}
	var closed, served int
	for i, r := range res {
		if st.ShardFor(batch[i].Key) == 1 {
			if !errors.Is(r.Err, store.ErrShardClosed) {
				t.Fatalf("op %d routed to drained shard: err=%v, want ErrShardClosed", i, r.Err)
			}
			closed++
			continue
		}
		if r.Err != nil || !r.OK {
			t.Fatalf("op %d on live shard: ok=%v err=%v", i, r.OK, r.Err)
		}
		served++
	}
	if closed == 0 || served == 0 {
		t.Fatalf("degenerate routing: closed=%d served=%d", closed, served)
	}
}
