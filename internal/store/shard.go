package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ds"
	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/workload"
)

// request is one shard's slice of a client batch. The worker writes each
// operation's outcome straight into the caller's result slice at the
// caller's positions; the completion hand-off (WaitGroup for the
// blocking paths, done callback for the async ones) orders those writes
// before the caller reads them.
type request struct {
	ops []Op
	res []Result
	// idx maps ops positions into res; nil means identity (res[i]
	// answers ops[i]).
	idx []int
	// Exactly one of wg and done is set. wg serves the blocking paths
	// (Do, DoShard, ScanShard); done serves the async ones and runs on
	// the worker that completed the request.
	wg   *sync.WaitGroup
	done func()
	// scan, when non-nil, makes this request a range leg instead of a
	// point-op batch: the worker walks the shard structure's iterator on
	// its own tid and collects the live keys in [lo, hi). ops/res/idx are
	// unused for scan requests. Range legs travel the same queue as
	// point-op batches on purpose — they are subject to the same
	// backpressure, the same drain, and the same faults.
	scan *scanRequest
}

// complete publishes the request's results to its submitter: the
// blocking paths park on the WaitGroup, the async paths get their
// callback run right here on the worker.
func (r *request) complete() {
	if r.wg != nil {
		r.wg.Done()
		return
	}
	if r.done != nil {
		r.done()
	}
}

// scanRequest is one range leg: the half-open key interval, an optional
// collection limit, and the outcome fields the worker fills before the
// WaitGroup hand-off publishes them to the caller.
type scanRequest struct {
	lo, hi    int64
	limit     int // max keys collected; <= 0 is unbounded
	countOnly bool
	keys      []int64
	count     uint64
	err       error
}

// run executes the range leg on worker tid. The walk goes through the
// structure's guarded iterator (O(live keys), epoch re-bracketing), never
// a raw memory sweep, so it is safe against concurrent mutation and a
// never-draining faulted neighbour alike. On ordered structures emission
// is globally ascending, so the walk stops at the first key ≥ hi instead
// of sweeping the whole structure; partitioned structures are only
// bucket-ordered and must complete the sweep.
func (sc *scanRequest) run(sh *shard, tid int) {
	it, ok := sh.set.(ds.Iterator)
	if !ok {
		sc.err = fmt.Errorf("store: %s does not implement ds.Iterator", sh.set.Name())
		return
	}
	sc.err = it.Iterate(tid, func(k int64) bool {
		if k >= sc.hi {
			// Ascending emission: no later key can fall back inside the
			// interval, so an ordered structure's leg is O(keys ≤ hi).
			return !sh.ordered
		}
		if k < sc.lo {
			return true
		}
		sc.count++
		if !sc.countOnly {
			sc.keys = append(sc.keys, k)
		}
		return sc.limit <= 0 || sc.count < uint64(sc.limit)
	})
}

// opStripe is one worker's share of the shard's service counters, padded
// to a cache line so neighbouring workers never share (the mem.Stats
// treatment applied one layer up).
type opStripe struct {
	ops  atomic.Uint64 // operations completed
	hits atomic.Uint64 // operations returning true
	errs atomic.Uint64 // operations returning an error
	_    [40]byte
}

// shard is one service partition: a private heap, a private SMR domain,
// one structure instance, and the workers that execute on them.
type shard struct {
	id     int
	spec   ShardSpec // resolved: Workers/Slots defaults filled in
	arena  *mem.Arena
	scheme smr.Scheme
	set    ds.Set
	// maint is the reserved maintenance scheme tid (== spec.Workers):
	// drain, migration snapshot, and replay run on it, so they never
	// collide with a worker tid — not even with a faulted worker that
	// never drained.
	maint int
	// ordered reports that the structure's iterator emits keys in global
	// ascending order (ordered structures), which lets range legs stop at
	// the interval's upper bound; partitioned structures are only ordered
	// per bucket and must sweep fully.
	ordered bool

	reqs chan *request
	wg   sync.WaitGroup
	// closed is guarded by the store's mu.
	closed bool

	stripes []opStripe
}

// worker executes requests with scheme thread id tid. The tid doubles as
// the stripe index, so the hot counters never contend.
func (sh *shard) worker(tid int) {
	defer sh.wg.Done()
	stripe := &sh.stripes[tid]
	for req := range sh.reqs {
		if req.scan != nil {
			// A range leg counts as one operation for progress accounting
			// (await's stall detector watches the op stripes).
			req.scan.run(sh, tid)
			stripe.ops.Add(1)
			if req.scan.err != nil {
				stripe.errs.Add(1)
			}
			req.complete()
			continue
		}
		for i, op := range req.ops {
			var ok bool
			var err error
			switch op.Kind {
			case workload.OpContains:
				ok, err = sh.set.Contains(tid, op.Key)
			case workload.OpInsert:
				ok, err = sh.set.Insert(tid, op.Key)
			case workload.OpDelete:
				ok, err = sh.set.Delete(tid, op.Key)
			default:
				err = fmt.Errorf("store: invalid op kind %d", op.Kind)
			}
			pos := i
			if req.idx != nil {
				pos = req.idx[i]
			}
			req.res[pos] = Result{OK: ok, Err: err}
			stripe.ops.Add(1)
			if ok {
				stripe.hits.Add(1)
			}
			if err != nil {
				stripe.errs.Add(1)
			}
		}
		req.complete()
	}
}

// opCount sums the shard's op stripes — the progress signal await's
// bounded mode watches.
func (sh *shard) opCount() uint64 {
	var n uint64
	for i := range sh.stripes {
		n += sh.stripes[i].ops.Load()
	}
	return n
}

// await waits for the shard's workers to exit after the request queue
// closed. grace <= 0 waits indefinitely. A positive grace bounds only
// *stalls*, not work: as long as the workers keep completing operations
// the wait continues (the queue is closed and bounded, so live workers
// finish in finite time — giving up on a merely busy shard would let a
// snapshot race in-flight writes). Only when a full grace window passes
// with zero operation progress are the remaining workers declared
// parked — a worker stopped at a fault breakpoint holds its tid until
// the fault heals, which may be never — and await reports false.
func (sh *shard) await(grace time.Duration) bool {
	if grace <= 0 {
		sh.wg.Wait()
		return true
	}
	done := make(chan struct{})
	go func() {
		sh.wg.Wait()
		close(done)
	}()
	last := sh.opCount()
	for {
		select {
		case <-done:
			return true
		case <-time.After(grace):
			cur := sh.opCount()
			if cur == last {
				return false
			}
			last = cur
		}
	}
}

// teardown stops a shard that was never (or is no longer) installed in
// the store: close the queue, wait the workers out.
func (sh *shard) teardown() {
	close(sh.reqs)
	sh.wg.Wait()
}

// drain flushes every retire list — the workers' and the maintenance
// tid's — a few rounds after the workers have exited, letting
// epoch-style schemes advance past the last operations and reclaim the
// settled backlog. Quiescent use only: every worker must have exited.
func (sh *shard) drain() {
	for round := 0; round < 3; round++ {
		for tid := 0; tid <= sh.spec.Workers; tid++ {
			sh.scheme.Flush(tid)
		}
	}
}

// snapshot reads the shard's current set contents on the maintenance
// tid. The default path walks the structure's iterator — O(live keys),
// one probe per emitted key — so the cost no longer scales with the
// store's key universe. scan forces the legacy fallback: a Contains
// probe of every key in [0, keyRange) routed to this shard, O(universe)
// — kept as the EXP-TRAVERSE baseline arm and for any future structure
// without an iterator. Both paths go through guarded operations (never
// raw structure walks), so the snapshot stays safe even when a faulted
// worker never drained: a concurrent straggler and the snapshot are
// just two lock-free operations. probes counts membership reads either
// way — the observable the traverse bench and CI bound.
func (sh *shard) snapshot(keyRange int, route func(int64) int, scan bool) (keys []int64, probes uint64, err error) {
	it, ok := sh.set.(ds.Iterator)
	if !scan && ok {
		err = it.Iterate(sh.maint, func(k int64) bool {
			probes++
			if route(k) == sh.id {
				keys = append(keys, k)
			}
			return true
		})
		if err != nil {
			return nil, probes, err
		}
		return keys, probes, nil
	}
	for k := int64(0); k < int64(keyRange); k++ {
		if route(k) != sh.id {
			continue
		}
		probes++
		ok, err := sh.set.Contains(sh.maint, k)
		if err != nil {
			return nil, probes, err
		}
		if ok {
			keys = append(keys, k)
		}
	}
	return keys, probes, nil
}

// replay inserts a snapshot into the shard before it starts serving
// (the workers are idle until the shard is attached, so the maintenance
// tid has the structure to itself). Replayed inserts do not count as
// service operations: the op stripes stay at zero, which is also what
// signals the telemetry monitor that a new incarnation began.
func (sh *shard) replay(keys []int64) error {
	for _, k := range keys {
		if _, err := sh.set.Insert(sh.maint, k); err != nil {
			return err
		}
	}
	return nil
}

// gauges reads the shard's telemetry tap: arena level gauges and
// watermarks plus summed op stripes. See ShardGauges.
func (sh *shard) gauges() ShardGauges {
	g := ShardGauges{Shard: sh.id}
	for i := range sh.stripes {
		g.Ops += sh.stripes[i].ops.Load()
	}
	as := sh.arena.Stats()
	g.Retired = as.Retired()
	g.MaxRetired = as.MaxRetired()
	g.Active = as.Active()
	g.MaxActive = as.MaxActive()
	if tr, ok := sh.set.(ds.TravReporter); ok {
		tv := tr.TravSnapshot()
		g.TravSteps = tv.Steps
		g.TravRestarts = tv.Restarts
		g.GuardTrips = tv.GuardTrips
	}
	return g
}

// stats aggregates the shard's striped service counters with its arena
// and scheme counters.
func (sh *shard) stats() ShardStats {
	s := ShardStats{
		Shard:     sh.id,
		Scheme:    sh.scheme.Name(),
		Structure: sh.set.Name(),
		Workers:   sh.spec.Workers,
	}
	for i := range sh.stripes {
		st := &sh.stripes[i]
		s.Ops += st.ops.Load()
		s.Hits += st.hits.Load()
		s.Errs += st.errs.Load()
	}
	a := sh.arena.Stats().Snapshot()
	s.Retired = a.Retired
	s.MaxRetired = a.MaxRetired
	s.MaxActive = a.MaxActive
	s.Faults = a.Faults
	s.UnsafeAccesses = a.UnsafeAccesses()
	s.Violations = a.Violations
	s.OOMs = a.OOMs
	sc := sh.scheme.Stats().Snapshot()
	s.Restarts = sc.Restarts
	s.StaleUses = sc.StaleUses
	if tr, ok := sh.set.(ds.TravReporter); ok {
		tv := tr.TravSnapshot()
		s.TravSteps = tv.Steps
		s.TravRestarts = tv.Restarts
		s.TravHeadRestarts = tv.HeadRestarts
		s.GuardTrips = tv.GuardTrips
		s.MaxOpSteps = tv.MaxOpSteps
	}
	return s
}
