package store

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ds"
	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/workload"
)

// request is one shard's slice of a client batch. The worker writes each
// operation's outcome straight into the caller's result slice at the
// caller's positions; the WaitGroup hand-off orders those writes before
// the caller reads them.
type request struct {
	ops []Op
	res []Result
	idx []int
	wg  *sync.WaitGroup
}

// opStripe is one worker's share of the shard's service counters, padded
// to a cache line so neighbouring workers never share (the mem.Stats
// treatment applied one layer up).
type opStripe struct {
	ops  atomic.Uint64 // operations completed
	hits atomic.Uint64 // operations returning true
	errs atomic.Uint64 // operations returning an error
	_    [40]byte
}

// shard is one service partition: a private heap, a private SMR domain,
// one structure instance, and the workers that execute on them.
type shard struct {
	id     int
	spec   ShardSpec // resolved: Workers/Slots defaults filled in
	arena  *mem.Arena
	scheme smr.Scheme
	set    ds.Set

	reqs chan *request
	wg   sync.WaitGroup
	// closed is guarded by the store's mu.
	closed bool

	stripes []opStripe
}

// worker executes requests with scheme thread id tid. The tid doubles as
// the stripe index, so the hot counters never contend.
func (sh *shard) worker(tid int) {
	defer sh.wg.Done()
	stripe := &sh.stripes[tid]
	for req := range sh.reqs {
		for i, op := range req.ops {
			var ok bool
			var err error
			switch op.Kind {
			case workload.OpContains:
				ok, err = sh.set.Contains(tid, op.Key)
			case workload.OpInsert:
				ok, err = sh.set.Insert(tid, op.Key)
			case workload.OpDelete:
				ok, err = sh.set.Delete(tid, op.Key)
			default:
				err = fmt.Errorf("store: invalid op kind %d", op.Kind)
			}
			req.res[req.idx[i]] = Result{OK: ok, Err: err}
			stripe.ops.Add(1)
			if ok {
				stripe.hits.Add(1)
			}
			if err != nil {
				stripe.errs.Add(1)
			}
		}
		req.wg.Done()
	}
}

// drain flushes every worker's retire list a few rounds after the workers
// have exited, letting epoch-style schemes advance past the last
// operations and reclaim the settled backlog.
func (sh *shard) drain() {
	for round := 0; round < 3; round++ {
		for tid := 0; tid < sh.spec.Workers; tid++ {
			sh.scheme.Flush(tid)
		}
	}
}

// gauges reads the shard's telemetry tap: arena level gauges and
// watermarks plus summed op stripes. See ShardGauges.
func (sh *shard) gauges() ShardGauges {
	g := ShardGauges{Shard: sh.id}
	for i := range sh.stripes {
		g.Ops += sh.stripes[i].ops.Load()
	}
	as := sh.arena.Stats()
	g.Retired = as.Retired()
	g.MaxRetired = as.MaxRetired()
	g.Active = as.Active()
	g.MaxActive = as.MaxActive()
	return g
}

// stats aggregates the shard's striped service counters with its arena
// and scheme counters.
func (sh *shard) stats() ShardStats {
	s := ShardStats{
		Shard:     sh.id,
		Scheme:    sh.scheme.Name(),
		Structure: sh.set.Name(),
		Workers:   sh.spec.Workers,
	}
	for i := range sh.stripes {
		st := &sh.stripes[i]
		s.Ops += st.ops.Load()
		s.Hits += st.hits.Load()
		s.Errs += st.errs.Load()
	}
	a := sh.arena.Stats().Snapshot()
	s.Retired = a.Retired
	s.MaxRetired = a.MaxRetired
	s.MaxActive = a.MaxActive
	s.Faults = a.Faults
	s.UnsafeAccesses = a.UnsafeAccesses()
	s.Violations = a.Violations
	s.OOMs = a.OOMs
	sc := sh.scheme.Stats().Snapshot()
	s.Restarts = sc.Restarts
	s.StaleUses = sc.StaleUses
	return s
}
