package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ds"
	"repro/internal/mem"
	"repro/internal/obs/rec"
	"repro/internal/smr"
	"repro/internal/workload"
)

// request is one shard's slice of a client batch. The worker writes each
// operation's outcome straight into the caller's result slice at the
// caller's positions; the completion hand-off (WaitGroup for the
// blocking paths, done callback for the async ones) orders those writes
// before the caller reads them.
type request struct {
	ops []Op
	res []Result
	// idx maps ops positions into res; nil means identity (res[i]
	// answers ops[i]).
	idx []int
	// Exactly one of wg and done is set. wg serves the blocking paths
	// (Do, DoShard, ScanShard); done serves the async ones and runs on
	// the worker that completed the request.
	wg   *sync.WaitGroup
	done func()
	// scan, when non-nil, makes this request a range leg instead of a
	// point-op batch: the worker walks the shard structure's iterator on
	// its own tid and collects the live keys in [lo, hi). ops/res/idx are
	// unused for scan requests. Range legs travel the same queue as
	// point-op batches on purpose — they are subject to the same
	// backpressure, the same drain, and the same faults.
	scan *scanRequest
}

// reqPool recycles request envelopes across every submission path: the
// worker returns each envelope after serving it, so steady-state
// Do/DoShardAsync traffic allocates nothing per request.
var reqPool = sync.Pool{New: func() any { return new(request) }}

// newRequest returns a cleared request envelope from the pool.
func newRequest() *request { return reqPool.Get().(*request) }

// finish publishes the request's results to its submitter — the
// blocking paths park on the WaitGroup, the async paths get their
// callback run right here on the worker — and returns the envelope to
// the pool. The envelope is stripped *before* the completion signal:
// once wg.Done/done runs, the submitter may recycle its own buffers
// and the pool may hand the envelope to any other submitter, so
// nothing may touch req afterwards.
func finish(req *request) {
	wg, done := req.wg, req.done
	*req = request{}
	reqPool.Put(req)
	if wg != nil {
		wg.Done()
		return
	}
	if done != nil {
		done()
	}
}

// scanKeyPool recycles range-leg key buffers (see RecycleScanKeys), so
// range-heavy mixes stop churning the GC with one fresh slice per leg.
var scanKeyPool = sync.Pool{New: func() any { b := make([]int64, 0, 512); return &b }}

// maxRetainedScanCap bounds the capacity RecycleScanKeys keeps: a leg
// that ballooned past it is left to the GC instead of pinning its
// memory in the pool forever.
const maxRetainedScanCap = 1 << 16

// RecycleScanKeys returns a key slice obtained from ScanShard /
// ScanShardAsync to the scan-buffer pool. Recycling is optional —
// callers that drop the slice just pay GC churn — but a caller that
// recycles must not touch the slice afterwards.
func RecycleScanKeys(keys []int64) {
	if keys == nil || cap(keys) > maxRetainedScanCap {
		return
	}
	b := keys[:0]
	scanKeyPool.Put(&b)
}

// scanRequest is one range leg: the half-open key interval, an optional
// collection limit, and the outcome fields the worker fills before the
// WaitGroup hand-off publishes them to the caller.
type scanRequest struct {
	lo, hi    int64
	limit     int // max keys collected; <= 0 is unbounded
	countOnly bool
	keys      []int64
	count     uint64
	err       error
}

// run executes the range leg on worker tid. The walk goes through the
// structure's guarded iterator (O(live keys), epoch re-bracketing), never
// a raw memory sweep, so it is safe against concurrent mutation and a
// never-draining faulted neighbour alike. On ordered structures emission
// is globally ascending, so the walk stops at the first key ≥ hi instead
// of sweeping the whole structure; partitioned structures are only
// bucket-ordered and must complete the sweep.
func (sc *scanRequest) run(sh *shard, tid int) {
	it, ok := sh.set.(ds.Iterator)
	if !ok {
		sc.err = fmt.Errorf("store: %s does not implement ds.Iterator", sh.set.Name())
		return
	}
	if !sc.countOnly && sc.keys == nil {
		sc.keys = (*scanKeyPool.Get().(*[]int64))[:0]
	}
	sc.err = it.Iterate(tid, func(k int64) bool {
		if k >= sc.hi {
			// Ascending emission: no later key can fall back inside the
			// interval, so an ordered structure's leg is O(keys ≤ hi).
			return !sh.ordered
		}
		if k < sc.lo {
			return true
		}
		sc.count++
		if !sc.countOnly {
			sc.keys = append(sc.keys, k)
		}
		return sc.limit <= 0 || sc.count < uint64(sc.limit)
	})
}

// opStripe is one worker's share of the shard's service counters, padded
// to a cache line so neighbouring workers never share (the mem.Stats
// treatment applied one layer up). The worker accumulates a whole
// request's deltas locally and publishes each touched counter once per
// request, so the hot loop carries no per-op atomics.
type opStripe struct {
	ops  atomic.Uint64 // operations completed
	hits atomic.Uint64 // operations returning true
	errs atomic.Uint64 // operations returning an error
	// Fused-window accounting (the batch-fusion hot path).
	fusedBatches atomic.Uint64 // point-op batches served through ApplyBatch
	fusedOps     atomic.Uint64 // operations inside those batches
	rebrackets   atomic.Uint64 // bracket renewals fused windows paid
	batchSorts   atomic.Uint64 // batches the worker had to key-sort
	_            [8]byte
}

// shard is one service partition: a private heap, a private SMR domain,
// one structure instance, and the workers that execute on them.
type shard struct {
	id     int
	spec   ShardSpec // resolved: Workers/Slots defaults filled in
	arena  *mem.Arena
	scheme smr.Scheme
	set    ds.Set
	// maint is the reserved maintenance scheme tid (== spec.Workers):
	// drain, migration snapshot, and replay run on it, so they never
	// collide with a worker tid — not even with a faulted worker that
	// never drained.
	maint int
	// ordered reports that the structure's iterator emits keys in global
	// ascending order (ordered structures), which lets range legs stop at
	// the interval's upper bound; partitioned structures are only ordered
	// per bucket and must sweep fully.
	ordered bool
	// batch is the structure's fused fast path, nil when the structure
	// does not implement ds.BatchSet or the spec set NoFuse.
	batch ds.BatchSet
	// rec is the flight recorder (nil-safe), for sparse fused-window
	// events.
	rec *rec.Recorder

	reqs chan *request
	wg   sync.WaitGroup
	// closed is guarded by the store's mu.
	closed bool

	stripes []opStripe
}

// workerScratch is one worker's long-lived batch-conversion state:
// the fused path copies each request into these buffers (so sorting
// never mutates caller memory) and reuses them request after request —
// the steady-state serving path allocates nothing.
type workerScratch struct {
	ops []ds.BatchOp
	pos []int
	res []ds.BatchResult
}

func (sc *workerScratch) size(n int) {
	if cap(sc.ops) < n {
		sc.ops = make([]ds.BatchOp, 0, 2*n)
		sc.pos = make([]int, 0, 2*n)
		sc.res = make([]ds.BatchResult, 0, 2*n)
	}
}

// sortBatch stable-insertion-sorts the batch by key in place, carrying
// the result positions along. Stability preserves per-key op order,
// which is what makes the sorted execution result-identical to the
// serial loop (point ops on distinct keys commute). Service batches are
// small and exec legs arrive pre-sorted, so insertion sort — the only
// stable zero-alloc sort — is the right tool.
func sortBatch(ops []ds.BatchOp, pos []int) {
	for i := 1; i < len(ops); i++ {
		op, p := ops[i], pos[i]
		j := i
		for j > 0 && ops[j-1].Key > op.Key {
			ops[j], pos[j] = ops[j-1], pos[j-1]
			j--
		}
		ops[j], pos[j] = op, p
	}
}

// worker executes requests with scheme thread id tid. The tid doubles as
// the stripe index, so the hot counters never contend.
func (sh *shard) worker(tid int) {
	defer sh.wg.Done()
	stripe := &sh.stripes[tid]
	var scratch workerScratch
	for req := range sh.reqs {
		if req.scan != nil {
			// A range leg counts as one operation for progress accounting
			// (await's stall detector watches the op stripes).
			req.scan.run(sh, tid)
			stripe.ops.Add(1)
			if req.scan.err != nil {
				stripe.errs.Add(1)
			}
			finish(req)
			continue
		}
		sh.serve(tid, stripe, req, &scratch)
		finish(req)
	}
}

// serve executes one point-op request: through the structure's fused
// ApplyBatch when it has one (one amortized SMR bracket for the whole
// batch, key-sorted for predecessor locality), falling back to the
// per-op loop otherwise. Either way the stripe counters are published
// once per request, not per op.
func (sh *shard) serve(tid int, stripe *opStripe, req *request, scratch *workerScratch) {
	var hits, errs uint64
	n := len(req.ops)
	if sh.batch != nil && n > 1 && batchable(req.ops) {
		scratch.size(n)
		bops := scratch.ops[:n]
		pos := scratch.pos[:n]
		bres := scratch.res[:n]
		sorted := true
		for i, op := range req.ops {
			// The kind spaces line up by construction (ds.BatchKind
			// mirrors workload.Op), so conversion is a cast.
			bops[i] = ds.BatchOp{Kind: ds.BatchKind(op.Kind), Key: op.Key}
			if req.idx != nil {
				pos[i] = req.idx[i]
			} else {
				pos[i] = i
			}
			if i > 0 && op.Key < req.ops[i-1].Key {
				sorted = false
			}
		}
		if !sorted {
			sortBatch(bops, pos)
			stripe.batchSorts.Add(1)
		}
		rb := sh.batch.ApplyBatch(tid, bops, bres)
		for i := range bres {
			req.res[pos[i]] = Result{OK: bres[i].OK, Err: bres[i].Err}
			if bres[i].OK {
				hits++
			}
			if bres[i].Err != nil {
				errs++
			}
		}
		stripe.fusedBatches.Add(1)
		stripe.fusedOps.Add(uint64(n))
		if rb > 0 {
			stripe.rebrackets.Add(rb)
			sh.rec.Record(rec.KindBatchWindow, sh.id, tid, uint64(n), rb, "")
		}
	} else {
		for i, op := range req.ops {
			var ok bool
			var err error
			switch op.Kind {
			case workload.OpContains:
				ok, err = sh.set.Contains(tid, op.Key)
			case workload.OpInsert:
				ok, err = sh.set.Insert(tid, op.Key)
			case workload.OpDelete:
				ok, err = sh.set.Delete(tid, op.Key)
			default:
				err = fmt.Errorf("store: invalid op kind %d", op.Kind)
			}
			pos := i
			if req.idx != nil {
				pos = req.idx[i]
			}
			req.res[pos] = Result{OK: ok, Err: err}
			if ok {
				hits++
			}
			if err != nil {
				errs++
			}
		}
	}
	stripe.ops.Add(uint64(n))
	if hits > 0 {
		stripe.hits.Add(hits)
	}
	if errs > 0 {
		stripe.errs.Add(errs)
	}
}

// batchable reports that every op kind is in the set vocabulary, so the
// fused path can run the whole batch; a malformed kind falls back to
// the serial loop, which reports the store's per-op error for it.
func batchable(ops []Op) bool {
	for _, op := range ops {
		if op.Kind > workload.OpDelete {
			return false
		}
	}
	return true
}

// opCount sums the shard's op stripes — the progress signal await's
// bounded mode watches.
func (sh *shard) opCount() uint64 {
	var n uint64
	for i := range sh.stripes {
		n += sh.stripes[i].ops.Load()
	}
	return n
}

// await waits for the shard's workers to exit after the request queue
// closed. grace <= 0 waits indefinitely. A positive grace bounds only
// *stalls*, not work: as long as the workers keep completing operations
// the wait continues (the queue is closed and bounded, so live workers
// finish in finite time — giving up on a merely busy shard would let a
// snapshot race in-flight writes). Only when a full grace window passes
// with zero operation progress are the remaining workers declared
// parked — a worker stopped at a fault breakpoint holds its tid until
// the fault heals, which may be never — and await reports false.
func (sh *shard) await(grace time.Duration) bool {
	if grace <= 0 {
		sh.wg.Wait()
		return true
	}
	done := make(chan struct{})
	go func() {
		sh.wg.Wait()
		close(done)
	}()
	last := sh.opCount()
	for {
		select {
		case <-done:
			return true
		case <-time.After(grace):
			cur := sh.opCount()
			if cur == last {
				return false
			}
			last = cur
		}
	}
}

// teardown stops a shard that was never (or is no longer) installed in
// the store: close the queue, wait the workers out.
func (sh *shard) teardown() {
	close(sh.reqs)
	sh.wg.Wait()
}

// drain flushes every retire list — the workers' and the maintenance
// tid's — a few rounds after the workers have exited, letting
// epoch-style schemes advance past the last operations and reclaim the
// settled backlog. Quiescent use only: every worker must have exited.
func (sh *shard) drain() {
	for round := 0; round < 3; round++ {
		for tid := 0; tid <= sh.spec.Workers; tid++ {
			sh.scheme.Flush(tid)
		}
	}
}

// snapshot reads the shard's current set contents on the maintenance
// tid. The default path walks the structure's iterator — O(live keys),
// one probe per emitted key — so the cost no longer scales with the
// store's key universe. scan forces the legacy fallback: a Contains
// probe of every key in [0, keyRange) routed to this shard, O(universe)
// — kept as the EXP-TRAVERSE baseline arm and for any future structure
// without an iterator. Both paths go through guarded operations (never
// raw structure walks), so the snapshot stays safe even when a faulted
// worker never drained: a concurrent straggler and the snapshot are
// just two lock-free operations. probes counts membership reads either
// way — the observable the traverse bench and CI bound.
func (sh *shard) snapshot(keyRange int, route func(int64) int, scan bool) (keys []int64, probes uint64, err error) {
	it, ok := sh.set.(ds.Iterator)
	if !scan && ok {
		err = it.Iterate(sh.maint, func(k int64) bool {
			probes++
			if route(k) == sh.id {
				keys = append(keys, k)
			}
			return true
		})
		if err != nil {
			return nil, probes, err
		}
		return keys, probes, nil
	}
	for k := int64(0); k < int64(keyRange); k++ {
		if route(k) != sh.id {
			continue
		}
		probes++
		ok, err := sh.set.Contains(sh.maint, k)
		if err != nil {
			return nil, probes, err
		}
		if ok {
			keys = append(keys, k)
		}
	}
	return keys, probes, nil
}

// replay inserts a snapshot into the shard before it starts serving
// (the workers are idle until the shard is attached, so the maintenance
// tid has the structure to itself). Replayed inserts do not count as
// service operations: the op stripes stay at zero, which is also what
// signals the telemetry monitor that a new incarnation began.
func (sh *shard) replay(keys []int64) error {
	for _, k := range keys {
		if _, err := sh.set.Insert(sh.maint, k); err != nil {
			return err
		}
	}
	return nil
}

// gauges reads the shard's telemetry tap: arena level gauges and
// watermarks plus summed op stripes. See ShardGauges.
func (sh *shard) gauges() ShardGauges {
	g := ShardGauges{Shard: sh.id}
	for i := range sh.stripes {
		g.Ops += sh.stripes[i].ops.Load()
	}
	as := sh.arena.Stats()
	g.Retired = as.Retired()
	g.MaxRetired = as.MaxRetired()
	g.Active = as.Active()
	g.MaxActive = as.MaxActive()
	if tr, ok := sh.set.(ds.TravReporter); ok {
		tv := tr.TravSnapshot()
		g.TravSteps = tv.Steps
		g.TravRestarts = tv.Restarts
		g.GuardTrips = tv.GuardTrips
	}
	return g
}

// stats aggregates the shard's striped service counters with its arena
// and scheme counters.
func (sh *shard) stats() ShardStats {
	s := ShardStats{
		Shard:     sh.id,
		Scheme:    sh.scheme.Name(),
		Structure: sh.set.Name(),
		Workers:   sh.spec.Workers,
	}
	for i := range sh.stripes {
		st := &sh.stripes[i]
		s.Ops += st.ops.Load()
		s.Hits += st.hits.Load()
		s.Errs += st.errs.Load()
		s.FusedBatches += st.fusedBatches.Load()
		s.FusedOps += st.fusedOps.Load()
		s.Rebrackets += st.rebrackets.Load()
		s.BatchSorts += st.batchSorts.Load()
	}
	a := sh.arena.Stats().Snapshot()
	s.Retired = a.Retired
	s.MaxRetired = a.MaxRetired
	s.MaxActive = a.MaxActive
	s.Faults = a.Faults
	s.UnsafeAccesses = a.UnsafeAccesses()
	s.Violations = a.Violations
	s.OOMs = a.OOMs
	sc := sh.scheme.Stats().Snapshot()
	s.Restarts = sc.Restarts
	s.StaleUses = sc.StaleUses
	if tr, ok := sh.set.(ds.TravReporter); ok {
		tv := tr.TravSnapshot()
		s.TravSteps = tv.Steps
		s.TravRestarts = tv.Restarts
		s.TravHeadRestarts = tv.HeadRestarts
		s.GuardTrips = tv.GuardTrips
		s.MaxOpSteps = tv.MaxOpSteps
	}
	return s
}
