package store_test

import (
	"sync"
	"testing"

	"repro/internal/ds"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestFusedBatchStats checks the fused hot path engages and its counters
// move: multi-op point batches must fuse (and key-sort when unsorted),
// single ops and NoFuse shards must not.
func TestFusedBatchStats(t *testing.T) {
	for _, tc := range []struct {
		name   string
		nofuse bool
	}{{"fused", false}, {"nofuse", true}} {
		t.Run(tc.name, func(t *testing.T) {
			st, err := store.New(store.Config{
				Shards:   []store.ShardSpec{{Scheme: "ebr", Structure: "michael", NoFuse: tc.nofuse}},
				KeyRange: 256,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			// Descending keys: the fused worker must sort before executing.
			ops := make([]store.Op, 16)
			for i := range ops {
				ops[i] = store.Op{Kind: workload.OpInsert, Key: int64(len(ops) - i)}
			}
			res, err := st.Do(ops)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range res {
				if r.Err != nil || !r.OK {
					t.Fatalf("insert %d: ok=%v err=%v", i, r.OK, r.Err)
				}
			}
			// A single-op batch never fuses.
			if _, err := st.Contains(1); err != nil {
				t.Fatal(err)
			}
			s := st.Stats()
			if tc.nofuse {
				if s.FusedBatches != 0 || s.FusedOps != 0 {
					t.Fatalf("NoFuse shard fused anyway: %d batches, %d ops", s.FusedBatches, s.FusedOps)
				}
				return
			}
			if s.FusedBatches != 1 || s.FusedOps != 16 {
				t.Fatalf("fused counters: %d batches, %d ops; want 1, 16", s.FusedBatches, s.FusedOps)
			}
			if s.BatchSorts != 1 {
				t.Fatalf("descending batch recorded %d sorts, want 1", s.BatchSorts)
			}
			if s.Ops != 17 || s.Hits != 17 {
				t.Fatalf("stripe totals: ops=%d hits=%d, want 17, 17", s.Ops, s.Hits)
			}
		})
	}
}

// TestDoIntoEquivalence checks DoInto against Do across shard counts:
// same ops, same results, caller-owned result slice filled in submission
// order regardless of the key-sorted fused execution underneath.
func TestDoIntoEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4} {
		st, err := store.New(store.Config{
			Shards:   store.Uniform(shards, store.ShardSpec{Scheme: "ebr", Structure: "michael"}),
			KeyRange: 512,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := workload.RNG(7)
		ops := make([]store.Op, 48)
		for i := range ops {
			ops[i] = store.Op{Kind: workload.Op(rng.Next() % 3), Key: int64(rng.Next() % 512)}
		}
		model := make(map[int64]bool)
		want := make([]bool, len(ops))
		for i, op := range ops {
			switch op.Kind {
			case workload.OpContains:
				want[i] = model[op.Key]
			case workload.OpInsert:
				want[i] = !model[op.Key]
				model[op.Key] = true
			case workload.OpDelete:
				want[i] = model[op.Key]
				delete(model, op.Key)
			}
		}
		res := make([]store.Result, len(ops))
		if err := st.DoInto(ops, res); err != nil {
			t.Fatal(err)
		}
		for i := range res {
			if res[i].Err != nil {
				t.Fatalf("%d shards, op %d: %v", shards, i, res[i].Err)
			}
			if res[i].OK != want[i] {
				t.Fatalf("%d shards, op %d (kind %d, key %d) = %v, model says %v",
					shards, i, ops[i].Kind, ops[i].Key, res[i].OK, want[i])
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// runParkedBacklog serves a fixed volume of batched churn through a
// two-worker shard whose worker 0 is parked at the traversal head
// breakpoint the whole time, and returns the peak retired backlog. Fixed
// work (not fixed time) makes the fused/per-op comparison fair: both
// arms retire the same node volume, so any widening of the peak is the
// bracket cadence's doing.
func runParkedBacklog(t *testing.T, scheme string, nofuse bool) uint64 {
	t.Helper()
	bp := sched.NewBreakpoints()
	st, err := store.New(store.Config{
		Shards: []store.ShardSpec{{
			Scheme:    scheme,
			Structure: "michael",
			Workers:   2,
			Gate:      bp,
			NoFuse:    nofuse,
		}},
		KeyRange: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stall := bp.Arm(0, ds.PointSearchHead, nil, 0)
	// A sacrificial client churns single-op requests until one lands on
	// worker 0 and parks there; it stays blocked in Do until Release.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := st.Contains(1); err != nil {
					t.Errorf("sacrificial contains: %v", err)
					return
				}
			}
		}
	}()
	<-stall.Reached()
	// Worker 0 is parked holding an open bracket; drive the fixed churn
	// volume through the surviving worker.
	rng := workload.RNG(99)
	ops := make([]store.Op, 32)
	res := make([]store.Result, 32)
	for round := 0; round < 200; round++ {
		for i := range ops {
			kind := workload.OpInsert
			if rng.Next()%2 == 0 {
				kind = workload.OpDelete
			}
			ops[i] = store.Op{Kind: kind, Key: int64(rng.Next() % 512)}
		}
		if err := st.DoInto(ops, res); err != nil {
			t.Fatal(err)
		}
		for i := range res {
			if res[i].Err != nil {
				t.Fatalf("round %d op %d: %v", round, i, res[i].Err)
			}
		}
	}
	close(stop)
	stall.Release()
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return st.Stats().MaxRetired
}

// TestBatchBacklogParkedNeighbor is the robustness guard on bracket
// amortization: with a neighbour worker parked mid-operation, the fused
// arm's peak retired backlog must stay within 2x of the per-op-bracket
// arm's over identical work — the K-op re-bracket cadence, not the
// batch length, bounds how long a fused window pins reclamation.
func TestBatchBacklogParkedNeighbor(t *testing.T) {
	// One scheme per reclamation family: epoch (ebr), pointer (hp),
	// version (vbr).
	for _, scheme := range []string{"ebr", "hp", "vbr"} {
		t.Run(scheme, func(t *testing.T) {
			fused := runParkedBacklog(t, scheme, false)
			serial := runParkedBacklog(t, scheme, true)
			// The small additive floor absorbs retire-list jitter when the
			// baseline peak is a handful of nodes.
			if fused > 2*serial+64 {
				t.Fatalf("fused peak retired backlog %d exceeds 2x per-op %d under a parked neighbour", fused, serial)
			}
		})
	}
}
