package store_test

import (
	"testing"

	"repro/internal/store"
	"repro/internal/workload"
)

// benchStore builds a warmed single-shard store and a contains-only
// batch for the steady-state spine benchmarks.
func benchStore(b *testing.B, nofuse bool, batch int) (*store.Store, []store.Op, []store.Result) {
	b.Helper()
	const keyRange = 4096
	st, err := store.New(store.Config{
		Shards:   []store.ShardSpec{{Scheme: "ebr", Structure: "michael", Workers: 2, NoFuse: nofuse}},
		KeyRange: keyRange,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	rng := workload.RNG(42)
	ops := make([]store.Op, batch)
	for i := range ops {
		ops[i] = store.Op{Kind: workload.OpInsert, Key: int64(rng.Next() % keyRange)}
	}
	res := make([]store.Result, batch)
	if err := st.DoInto(ops, res); err != nil {
		b.Fatal(err)
	}
	for i := range ops {
		ops[i].Kind = workload.OpContains
	}
	// Warm the request/spine pools and the worker scratch past growth.
	for i := 0; i < 64; i++ {
		if err := st.DoInto(ops, res); err != nil {
			b.Fatal(err)
		}
	}
	return st, ops, res
}

// BenchmarkDoInto measures the steady-state request spine: allocs/op is
// the headline (the fused arm's bar is zero — the pooled envelopes,
// spine, and worker scratch must absorb the whole round trip).
func BenchmarkDoInto(b *testing.B) {
	for _, arm := range []struct {
		name   string
		nofuse bool
	}{{"fused", false}, {"per-op", true}} {
		b.Run(arm.name, func(b *testing.B) {
			st, ops, res := benchStore(b, arm.nofuse, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.DoInto(ops, res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDo measures the allocating convenience wrapper for contrast:
// one result-slice allocation per call is its expected floor.
func BenchmarkDo(b *testing.B) {
	st, ops, _ := benchStore(b, false, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Do(ops); err != nil {
			b.Fatal(err)
		}
	}
}
