package store

// ShardStats is one shard's service-level counters: the striped op
// counters aggregated on read, plus the shard's heap and scheme counters.
// Ops/Hits/Errs are cumulative over the shard's lifetime; rate reporting
// belongs to the driver, which differences snapshots around its timed
// window.
type ShardStats struct {
	Shard int `json:"shard"`
	// Scheme is the shard's *current* reclamation scheme, read from the
	// live scheme instance — after a MigrateShard swap it names the
	// migrated-to scheme, not the spec the shard was deployed with.
	Scheme    string `json:"scheme"`
	Structure string `json:"structure"`
	Workers   int    `json:"workers"`
	// Epoch counts the slot's incarnations (0 = original build; each
	// reopen or migration swap increments it); Migrations counts
	// completed live scheme migrations. Counters above this line reset
	// with each incarnation, so an Epoch bump explains an Ops regression.
	Epoch      uint64 `json:"epoch"`
	Migrations uint64 `json:"migrations"`

	// Service counters (striped per worker, summed here).
	Ops  uint64 `json:"ops"`
	Hits uint64 `json:"hits"`
	Errs uint64 `json:"errs"`

	// Batch-fusion counters. FusedBatches counts request batches served
	// under one amortized SMR bracket, FusedOps the operations inside
	// them, Rebrackets the mid-window epoch/slot renewals the K-cadence
	// forced, and BatchSorts the batches the worker had to key-sort
	// before fusing (pre-sorted submissions skip the sort).
	FusedBatches uint64 `json:"fused_batches"`
	FusedOps     uint64 `json:"fused_ops"`
	Rebrackets   uint64 `json:"rebrackets"`
	BatchSorts   uint64 `json:"batch_sorts"`

	// Heap counters: the retired backlog is the robustness observable,
	// the fault/unsafe counters the safety observable. MaxActive is the
	// paper's max_active — the budget the robustness definitions bound
	// the backlog by.
	Retired        uint64 `json:"retired"`
	MaxRetired     uint64 `json:"max_retired"`
	MaxActive      uint64 `json:"max_active"`
	Faults         uint64 `json:"faults"`
	UnsafeAccesses uint64 `json:"unsafe_accesses"`
	Violations     uint64 `json:"violations"`
	// OOMs counts failed allocations: a backlog that exhausts the shard
	// heap is the robustness failure made concrete.
	OOMs uint64 `json:"ooms"`

	// Scheme counters.
	Restarts  uint64 `json:"restarts"`
	StaleUses uint64 `json:"stale_uses"`

	// Traversal counters (ds.TravSnapshot): the hot-path observables the
	// bounded-restart overhaul adds. TravRestarts counts every traversal
	// restart, TravHeadRestarts the subset that rewound to the head;
	// bounded finds keep the latter near zero under pure contention.
	// GuardTrips counts operations aborted at the maxSteps budget, and
	// MaxOpSteps is the worst single-operation traversal — the p99 proxy
	// the restart-storm regression bounds.
	TravSteps        uint64 `json:"trav_steps"`
	TravRestarts     uint64 `json:"trav_restarts"`
	TravHeadRestarts uint64 `json:"trav_head_restarts"`
	GuardTrips       uint64 `json:"guard_trips"`
	MaxOpSteps       uint64 `json:"max_op_steps"`

	// Last completed migration's cost observables (zero until the slot
	// migrates): membership probes the snapshot issued, live keys it
	// carried, and how long clients saw ErrShardClosed. With the iterator
	// snapshot, SnapshotProbes tracks SnapshotKeys instead of KeyRange.
	SnapshotProbes  uint64 `json:"snapshot_probes"`
	SnapshotKeys    uint64 `json:"snapshot_keys"`
	SwapWindowNanos int64  `json:"swap_window_nanos"`
}

// Stats is the service-level view: every shard's counters plus their
// aggregate. Like mem.Stats, nothing is maintained centrally — the
// aggregate is computed on read from the per-worker stripes, so the
// serving path never touches shared counters.
type Stats struct {
	Shards []ShardStats `json:"shards"`

	Ops            uint64 `json:"ops"`
	Hits           uint64 `json:"hits"`
	Errs           uint64 `json:"errs"`
	FusedBatches   uint64 `json:"fused_batches"`
	FusedOps       uint64 `json:"fused_ops"`
	Rebrackets     uint64 `json:"rebrackets"`
	BatchSorts     uint64 `json:"batch_sorts"`
	Retired        uint64 `json:"retired"`
	MaxRetired     uint64 `json:"max_retired"`
	MaxActive      uint64 `json:"max_active"`
	Faults         uint64 `json:"faults"`
	UnsafeAccesses uint64 `json:"unsafe_accesses"`
	Violations     uint64 `json:"violations"`
	OOMs           uint64 `json:"ooms"`
	Restarts       uint64 `json:"restarts"`
	StaleUses      uint64 `json:"stale_uses"`
	Migrations     uint64 `json:"migrations"`

	// Traversal aggregate: sums across shards, except MaxOpSteps which is
	// the store-wide worst single operation.
	TravSteps        uint64 `json:"trav_steps"`
	TravRestarts     uint64 `json:"trav_restarts"`
	TravHeadRestarts uint64 `json:"trav_head_restarts"`
	GuardTrips       uint64 `json:"guard_trips"`
	MaxOpSteps       uint64 `json:"max_op_steps"`
}

// Stats aggregates every shard's counters on read. Safe to call while
// the store serves; counters are individually atomic, so the snapshot has
// the usual mid-run slack and is exact at quiescence. The read lock
// orders the shard-slice read against reopen/migration swaps, so every
// row is internally consistent: a row describes exactly one incarnation
// (its Scheme, Epoch, and counters all belong together), never a blend
// of the outgoing and incoming shard.
func (st *Store) Stats() Stats {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var s Stats
	s.Shards = make([]ShardStats, 0, len(st.shards))
	for i, sh := range st.shards {
		ss := sh.stats()
		ss.Epoch = st.meta[i].epoch
		ss.Migrations = st.meta[i].migrations
		ss.SnapshotProbes = st.meta[i].snapshotProbes
		ss.SnapshotKeys = st.meta[i].snapshotKeys
		ss.SwapWindowNanos = st.meta[i].swapWindow.Nanoseconds()
		s.Shards = append(s.Shards, ss)
		s.Ops += ss.Ops
		s.Hits += ss.Hits
		s.Errs += ss.Errs
		s.FusedBatches += ss.FusedBatches
		s.FusedOps += ss.FusedOps
		s.Rebrackets += ss.Rebrackets
		s.BatchSorts += ss.BatchSorts
		s.Retired += ss.Retired
		s.MaxRetired += ss.MaxRetired
		s.MaxActive += ss.MaxActive
		s.Faults += ss.Faults
		s.UnsafeAccesses += ss.UnsafeAccesses
		s.Violations += ss.Violations
		s.OOMs += ss.OOMs
		s.Restarts += ss.Restarts
		s.StaleUses += ss.StaleUses
		s.Migrations += ss.Migrations
		s.TravSteps += ss.TravSteps
		s.TravRestarts += ss.TravRestarts
		s.TravHeadRestarts += ss.TravHeadRestarts
		s.GuardTrips += ss.GuardTrips
		if ss.MaxOpSteps > s.MaxOpSteps {
			s.MaxOpSteps = ss.MaxOpSteps
		}
	}
	return s
}

// ShardGauges is the telemetry tap: the per-shard level gauges and
// watermarks the robustness audit samples on every tick, plus the shard's
// operation progress. Unlike ShardStats it reads only the global gauges
// and the op stripes — no scheme snapshot, no error/hit aggregation — so
// a millisecond-tick sampler stays off the serving path's cache lines.
type ShardGauges struct {
	Shard      int    `json:"shard"`
	Ops        uint64 `json:"ops"`
	Retired    uint64 `json:"retired"`
	MaxRetired uint64 `json:"max_retired"`
	Active     uint64 `json:"active"`
	MaxActive  uint64 `json:"max_active"`
	// Traversal gauges: cumulative steps and restarts plus guard trips,
	// so the monitor can spot a restart storm (restart rate spiking while
	// op progress stalls) as it happens, not post-mortem.
	TravSteps    uint64 `json:"trav_steps"`
	TravRestarts uint64 `json:"trav_restarts"`
	GuardTrips   uint64 `json:"guard_trips"`
}

// Gauges snapshots every shard's gauge view. Safe to call while the store
// serves and across ReopenShard swaps.
func (st *Store) Gauges() []ShardGauges {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]ShardGauges, len(st.shards))
	for i, sh := range st.shards {
		out[i] = sh.gauges()
	}
	return out
}
