package store

// ShardStats is one shard's service-level counters: the striped op
// counters aggregated on read, plus the shard's heap and scheme counters.
// Ops/Hits/Errs are cumulative over the shard's lifetime; rate reporting
// belongs to the driver, which differences snapshots around its timed
// window.
type ShardStats struct {
	Shard     int    `json:"shard"`
	Scheme    string `json:"scheme"`
	Structure string `json:"structure"`
	Workers   int    `json:"workers"`

	// Service counters (striped per worker, summed here).
	Ops  uint64 `json:"ops"`
	Hits uint64 `json:"hits"`
	Errs uint64 `json:"errs"`

	// Heap counters: the retired backlog is the robustness observable,
	// the fault/unsafe counters the safety observable.
	Retired        uint64 `json:"retired"`
	MaxRetired     uint64 `json:"max_retired"`
	Faults         uint64 `json:"faults"`
	UnsafeAccesses uint64 `json:"unsafe_accesses"`
	Violations     uint64 `json:"violations"`

	// Scheme counters.
	Restarts  uint64 `json:"restarts"`
	StaleUses uint64 `json:"stale_uses"`
}

// Stats is the service-level view: every shard's counters plus their
// aggregate. Like mem.Stats, nothing is maintained centrally — the
// aggregate is computed on read from the per-worker stripes, so the
// serving path never touches shared counters.
type Stats struct {
	Shards []ShardStats `json:"shards"`

	Ops            uint64 `json:"ops"`
	Hits           uint64 `json:"hits"`
	Errs           uint64 `json:"errs"`
	Retired        uint64 `json:"retired"`
	MaxRetired     uint64 `json:"max_retired"`
	Faults         uint64 `json:"faults"`
	UnsafeAccesses uint64 `json:"unsafe_accesses"`
	Violations     uint64 `json:"violations"`
	Restarts       uint64 `json:"restarts"`
	StaleUses      uint64 `json:"stale_uses"`
}

// Stats aggregates every shard's counters on read. Safe to call while
// the store serves; counters are individually atomic, so the snapshot has
// the usual mid-run slack and is exact at quiescence.
func (st *Store) Stats() Stats {
	var s Stats
	s.Shards = make([]ShardStats, 0, len(st.shards))
	for _, sh := range st.shards {
		ss := sh.stats()
		s.Shards = append(s.Shards, ss)
		s.Ops += ss.Ops
		s.Hits += ss.Hits
		s.Errs += ss.Errs
		s.Retired += ss.Retired
		s.MaxRetired += ss.MaxRetired
		s.Faults += ss.Faults
		s.UnsafeAccesses += ss.UnsafeAccesses
		s.Violations += ss.Violations
		s.Restarts += ss.Restarts
		s.StaleUses += ss.StaleUses
	}
	return s
}
