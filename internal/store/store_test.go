package store_test

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/ds"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/workload"
)

// ref is a locked model set used as the correctness oracle.
type ref struct {
	mu sync.Mutex
	m  map[int64]bool
}

func (r *ref) apply(op store.Op) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch op.Kind {
	case workload.OpContains:
		return r.m[op.Key]
	case workload.OpInsert:
		if r.m[op.Key] {
			return false
		}
		r.m[op.Key] = true
		return true
	default:
		if !r.m[op.Key] {
			return false
		}
		delete(r.m, op.Key)
		return true
	}
}

// TestBatchesMatchReference drives one client's batched operations through
// a sharded store and checks every result against a model set. With a
// single client the store is sequential, so the model is an exact oracle.
func TestBatchesMatchReference(t *testing.T) {
	st, err := store.New(store.Config{
		Shards:   store.Uniform(4, store.ShardSpec{Scheme: "ebr", Structure: "michael"}),
		KeyRange: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	oracle := &ref{m: make(map[int64]bool)}
	rng := workload.RNG(7)
	for round := 0; round < 200; round++ {
		batch := make([]store.Op, 1+rng.Next()%17)
		for i := range batch {
			batch[i] = store.Op{
				Kind: workload.Op(rng.Next() % 3),
				Key:  int64(rng.Next() % 128),
			}
		}
		res, err := st.Do(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("round %d op %d: %v", round, i, r.Err)
			}
			if want := oracle.apply(batch[i]); r.OK != want {
				t.Fatalf("round %d op %d %v(%d): got %v want %v",
					round, i, batch[i].Kind, batch[i].Key, r.OK, want)
			}
		}
	}
}

// TestHeterogeneousShards is the acceptance scenario: two shards running
// *different* SMR schemes (HP and EBR) serve concurrent clients with zero
// validation faults — per-shard SMR domains never interfere.
func TestHeterogeneousShards(t *testing.T) {
	st, err := store.New(store.Config{
		Shards: []store.ShardSpec{
			{Scheme: "hp", Structure: "hashmap", Workers: 2},
			{Scheme: "ebr", Structure: "hashmap", Workers: 2},
		},
		KeyRange: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	const clients, opsPer, batch = 4, 2000, 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := workload.RNG(uint64(c) + 1)
			for done := 0; done < opsPer; done += batch {
				ops := make([]store.Op, batch)
				for i := range ops {
					ops[i] = store.Op{Kind: workload.Op(rng.Next() % 3), Key: int64(rng.Next() % 256)}
				}
				res, err := st.Do(ops)
				if err != nil {
					errs[c] = err
					return
				}
				for _, r := range res {
					if r.Err != nil {
						errs[c] = r.Err
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if len(s.Shards) != 2 {
		t.Fatalf("shards: %d", len(s.Shards))
	}
	if s.Shards[0].Scheme != "hp" || s.Shards[1].Scheme != "ebr" {
		t.Fatalf("schemes: %s, %s", s.Shards[0].Scheme, s.Shards[1].Scheme)
	}
	if want := uint64(clients * opsPer); s.Ops != want {
		t.Fatalf("ops: %d want %d", s.Ops, want)
	}
	for _, sh := range s.Shards {
		if sh.Ops == 0 {
			t.Fatalf("shard %d served no ops", sh.Shard)
		}
		if sh.Faults != 0 || sh.UnsafeAccesses != 0 || sh.Violations != 0 || sh.StaleUses != 0 {
			t.Fatalf("shard %d (%s): faults=%d unsafe=%d violations=%d stale=%d",
				sh.Shard, sh.Scheme, sh.Faults, sh.UnsafeAccesses, sh.Violations, sh.StaleUses)
		}
	}
}

// TestShardRouting checks the routing hash is deterministic, in range,
// and actually spreads a contiguous key block over every shard.
func TestShardRouting(t *testing.T) {
	st, err := store.New(store.Config{
		Shards:   store.Uniform(8, store.ShardSpec{Scheme: "ebr", Structure: "michael"}),
		KeyRange: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	seen := make(map[int]int)
	for k := int64(0); k < 1024; k++ {
		s := st.ShardFor(k)
		if s < 0 || s >= st.Shards() {
			t.Fatalf("key %d routed to %d", k, s)
		}
		if s != st.ShardFor(k) {
			t.Fatalf("key %d routing is unstable", k)
		}
		seen[s]++
	}
	if len(seen) != 8 {
		t.Fatalf("1024 keys reached only %d/8 shards", len(seen))
	}
}

// TestCloseShardDrains closes one shard and checks the partial-degradation
// contract: its keys fail with ErrShardClosed while other shards serve,
// and the drained shard's backlog has settled.
func TestCloseShardDrains(t *testing.T) {
	st, err := store.New(store.Config{
		Shards:   store.Uniform(2, store.ShardSpec{Scheme: "ebr", Structure: "michael"}),
		KeyRange: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Find keys on both shards and churn them so shard 0 has a lifecycle
	// to drain.
	var k0, k1 int64 = -1, -1
	for k := int64(0); k < 64 && (k0 < 0 || k1 < 0); k++ {
		switch st.ShardFor(k) {
		case 0:
			if k0 < 0 {
				k0 = k
			}
		case 1:
			if k1 < 0 {
				k1 = k
			}
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := st.Insert(k0); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Delete(k0); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CloseShard(0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert(k0); !errors.Is(err, store.ErrShardClosed) {
		t.Fatalf("insert on closed shard: %v", err)
	}
	if ok, err := st.Insert(k1); err != nil || !ok {
		t.Fatalf("open shard insert: %v, %v", ok, err)
	}
	if err := st.CloseShard(0); !errors.Is(err, store.ErrShardClosed) {
		t.Fatalf("double shard close: %v", err)
	}
	s := st.Stats()
	if s.Shards[0].Retired != 0 {
		t.Fatalf("drained shard still holds %d retired nodes", s.Shards[0].Retired)
	}
	if s.Shards[0].MaxRetired == 0 {
		t.Fatal("churn never retired anything — test exercised nothing")
	}
}

// TestCloseRejectsLateSubmissions checks the store-wide close contract.
func TestCloseRejectsLateSubmissions(t *testing.T) {
	st, err := store.New(store.Config{
		Shards: store.Uniform(2, store.ShardSpec{Scheme: "hp", Structure: "michael"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert(1); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Contains(1); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("post-close op: %v", err)
	}
	if err := st.Close(); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

// TestRejectsInvalidOpKind checks an out-of-range Op.Kind surfaces as a
// per-op error instead of silently executing some other operation.
func TestRejectsInvalidOpKind(t *testing.T) {
	st, err := store.New(store.Config{
		Shards: store.Uniform(1, store.ShardSpec{Scheme: "ebr", Structure: "michael"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Insert(5); err != nil {
		t.Fatal(err)
	}
	res, err := st.Do([]store.Op{{Kind: 9, Key: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err == nil {
		t.Fatal("invalid op kind executed")
	}
	if ok, err := st.Contains(5); err != nil || !ok {
		t.Fatalf("key 5 disturbed by invalid op: %v, %v", ok, err)
	}
}

// TestRejectsInapplicablePair checks construction refuses scheme ×
// structure pairs the paper rules out (HP over Harris's list).
func TestRejectsInapplicablePair(t *testing.T) {
	_, err := store.New(store.Config{
		Shards: store.Uniform(1, store.ShardSpec{Scheme: "hp", Structure: "harris"}),
	})
	if err == nil {
		t.Fatal("hp × harris accepted")
	}
}

// TestReopenShard checks the churn-fault surface: a drained shard can be
// rebuilt and serves again (empty — reopening models a restart).
func TestReopenShard(t *testing.T) {
	st, err := store.New(store.Config{
		Shards:   store.Uniform(2, store.ShardSpec{Scheme: "ebr", Structure: "michael"}),
		KeyRange: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var key int64 = -1
	for k := int64(0); k < 64; k++ {
		if st.ShardFor(k) == 0 {
			key = k
			break
		}
	}
	if ok, err := st.Insert(key); err != nil || !ok {
		t.Fatalf("insert: %v, %v", ok, err)
	}
	if err := st.ReopenShard(0); err == nil {
		t.Fatal("reopening an open shard must fail")
	}
	if err := st.CloseShard(0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Contains(key); !errors.Is(err, store.ErrShardClosed) {
		t.Fatalf("closed shard served: %v", err)
	}
	if err := st.ReopenShard(0); err != nil {
		t.Fatal(err)
	}
	// Reopened shard serves, and serves *empty*.
	if ok, err := st.Contains(key); err != nil || ok {
		t.Fatalf("reopened shard contains(%d) = %v, %v; want miss on fresh shard", key, ok, err)
	}
	if ok, err := st.Insert(key); err != nil || !ok {
		t.Fatalf("reopened shard insert: %v, %v", ok, err)
	}
	// The resolved spec survives the rebuild.
	spec, err := st.Spec(0)
	if err != nil || spec.Scheme != "ebr" || spec.Workers <= 0 || spec.Slots <= 0 {
		t.Fatalf("reopened spec = %+v, %v", spec, err)
	}
}

// TestGaugesTrackLifecycle checks the telemetry tap: ops progress and the
// retired gauge move with traffic, per shard.
func TestGaugesTrackLifecycle(t *testing.T) {
	st, err := store.New(store.Config{
		Shards:   store.Uniform(2, store.ShardSpec{Scheme: "none", Structure: "michael"}),
		KeyRange: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var key int64 = -1
	for k := int64(0); k < 64; k++ {
		if st.ShardFor(k) == 0 {
			key = k
			break
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := st.Insert(key); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Delete(key); err != nil {
			t.Fatal(err)
		}
	}
	g := st.Gauges()
	if len(g) != 2 {
		t.Fatalf("gauges for %d shards, want 2", len(g))
	}
	if g[0].Shard != 0 || g[1].Shard != 1 {
		t.Fatalf("gauge shard ids %d,%d", g[0].Shard, g[1].Shard)
	}
	if g[0].Ops != 40 {
		t.Fatalf("shard 0 ops = %d, want 40", g[0].Ops)
	}
	// The leak baseline never reclaims: every delete's node stays retired.
	if g[0].Retired != 20 || g[0].MaxRetired != 20 {
		t.Fatalf("shard 0 retired = %d (max %d), want 20", g[0].Retired, g[0].MaxRetired)
	}
	if g[0].MaxActive == 0 {
		t.Fatal("shard 0 max_active gauge never moved")
	}
	if g[1].Ops != 0 || g[1].Retired != 0 {
		t.Fatalf("idle shard 1 gauges moved: %+v", g[1])
	}
}

// TestShardGateParksWorker checks the chaos-injection hook end to end: a
// breakpoint armed on a shard's gate parks that worker mid-operation
// while the shard's other worker keeps serving.
func TestShardGateParksWorker(t *testing.T) {
	bp := sched.NewBreakpoints()
	st, err := store.New(store.Config{
		Shards:   []store.ShardSpec{{Scheme: "ebr", Structure: "michael", Workers: 2, Gate: bp}},
		KeyRange: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stall := bp.Arm(0, ds.PointSearchHead, nil, 0)
	// Churn single-op batches from async clients until worker 0 picks one
	// up and parks; whatever worker 1 serves completes normally. The
	// client whose op parked stays blocked in Do until Release.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if _, err := st.Contains(int64(c)); err != nil {
						t.Errorf("client %d contains: %v", c, err)
						return
					}
				}
			}
		}(c)
	}
	<-stall.Reached()
	// Worker 0 is parked; the shard still serves through worker 1.
	if ok, err := st.Insert(3); err != nil || !ok {
		t.Fatalf("insert while worker parked: %v, %v", ok, err)
	}
	close(stop)
	stall.Release()
	wg.Wait()
}
