package store_test

import (
	"sync"
	"testing"

	"repro/internal/store"
	"repro/internal/workload"
)

// TestSnapshotProbesBounded pins MigrateShard's snapshot cost: with the
// iterator path the membership probes must track the live keys (O(live
// keys)), not the key universe, and the legacy scan arm must still probe
// the whole universe share — the contrast the traverse benchmark
// measures. Contents survive either way.
func TestSnapshotProbesBounded(t *testing.T) {
	const keyRange = 1 << 16
	const live = 200
	for _, scan := range []bool{false, true} {
		st, err := store.New(store.Config{
			Shards:       store.Uniform(1, store.ShardSpec{Scheme: "ebr", Structure: "michael"}),
			KeyRange:     keyRange,
			SnapshotScan: scan,
		})
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(0); k < live; k++ {
			if ok, err := st.Insert(k * 7); err != nil || !ok {
				t.Fatalf("insert(%d): %v, %v", k*7, ok, err)
			}
		}
		if err := st.MigrateShard(0, "ebr"); err != nil {
			t.Fatalf("migrate (scan=%v): %v", scan, err)
		}
		for k := int64(0); k < live; k++ {
			if ok, err := st.Contains(k * 7); err != nil || !ok {
				t.Fatalf("key %d lost across migration (scan=%v): %v, %v", k*7, scan, ok, err)
			}
		}
		ss := st.Stats().Shards[0]
		if ss.SnapshotKeys != live {
			t.Fatalf("snapshot carried %d keys, want %d (scan=%v)", ss.SnapshotKeys, live, scan)
		}
		if ss.SwapWindowNanos <= 0 {
			t.Fatalf("swap window not recorded (scan=%v): %+v", scan, ss)
		}
		if scan {
			if ss.SnapshotProbes != keyRange {
				t.Fatalf("legacy scan probed %d keys, want the full universe %d", ss.SnapshotProbes, keyRange)
			}
		} else if ss.SnapshotProbes > 2*ss.SnapshotKeys {
			t.Fatalf("iterator snapshot probed %d for %d live keys, want <= 2x", ss.SnapshotProbes, ss.SnapshotKeys)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreRestartStorm is the service-level restart-storm regression:
// concurrent clients churn a shared key range through batched requests
// while others sweep far keys, and the traversal counters surfaced
// through Stats must show bounded finds — no guard trips, worst
// single-op traversal within a small multiple of the key range — with
// the EBR backlog settled near its threshold rather than ballooned.
func TestStoreRestartStorm(t *testing.T) {
	const keyRange = 512
	st, err := store.New(store.Config{
		Shards:   store.Uniform(1, store.ShardSpec{Scheme: "ebr", Structure: "michael", Workers: 2}),
		KeyRange: keyRange,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for k := int64(0); k < keyRange; k += 2 {
		if _, err := st.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	rounds := 300
	if testing.Short() {
		rounds = 100
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := workload.RNG(uint64(c) + 11)
			for r := 0; r < rounds; r++ {
				batch := make([]store.Op, 16)
				for i := range batch {
					if i%4 == 3 {
						// Far-key membership sweeps: the long traversals a
						// restart storm starves.
						batch[i] = store.Op{Kind: workload.OpContains, Key: keyRange - 2}
					} else {
						batch[i] = store.Op{Kind: workload.Op(rng.Next() % 3), Key: int64(rng.Next() % keyRange)}
					}
				}
				res, err := st.Do(batch)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				for _, r := range res {
					if r.Err != nil {
						t.Errorf("client %d: %v", c, r.Err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	s := st.Stats()
	if s.GuardTrips != 0 {
		t.Errorf("%d traversal guard trips under churn", s.GuardTrips)
	}
	if bound := uint64(64 * keyRange); s.MaxOpSteps > bound {
		t.Errorf("worst single-op traversal took %d steps, want <= %d: restart storm", s.MaxOpSteps, bound)
	}
	if s.TravSteps == 0 {
		t.Error("traversal counters not flowing through Stats")
	}
	if s.MaxRetired > 8192 {
		t.Errorf("peak retired backlog %d ballooned with no fault injected", s.MaxRetired)
	}
	// The same counters must reach the telemetry tap.
	g := st.Gauges()
	if len(g) != 1 || g[0].TravSteps == 0 {
		t.Errorf("traversal gauges not flowing: %+v", g)
	}
}
