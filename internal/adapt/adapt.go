// Package adapt closes the adaptive-reclamation loop: live robustness
// verdicts in, live scheme migrations out.
//
// The ERA theorem says no reclamation scheme provides ease of
// integration, robustness, and wide applicability at once — so the right
// scheme for a shard is not a deployment constant, it is a function of
// the adversity that shard is actually seeing. The Controller turns the
// impossibility result into a runtime scheduling problem: it consumes
// the online per-shard verdicts (telemetry.Monitor) plus the store's
// striped service stats, and walks each shard along a configurable
// escalation ladder — a cheap, easily-integrated scheme while telemetry
// stays flat, a robust one the moment backlog growth or heap exhaustion
// evidences a live stall, and back down once the evidence says the
// pressure is gone.
//
// The smr.Props ERA sheets are the controller's cost model: the ladder
// must climb in declared robustness (each rung buys a stronger bound,
// typically paying integration ease or applicability for it, which is
// why the default ladder ebr → ibr → hp walks exactly the paper's
// trade-off), and an escalation picks the *cheapest* rung whose declared
// class beats what the current scheme just demonstrated — pay for
// exactly as much robustness as the evidence demands, and not more.
package adapt

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ds/registry"
	"repro/internal/obs/rec"
	"repro/internal/smr"
	"repro/internal/smr/all"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Config tunes the controller.
type Config struct {
	// Ladder is the migration ladder, cheapest first; resolved through
	// smr/all, and its declared robustness must be non-decreasing.
	// Empty selects ebr → ibr → hp (not-robust → weakly-robust →
	// robust). Shards serving a scheme not on the ladder are left
	// alone, as are shards whose structure rejects any rung (Appendix
	// E) — the incompatibility is detected at construction, not one
	// failed migration at a time.
	Ladder []string
	// Interval is the decision tick; 0 selects 25ms.
	Interval time.Duration
	// Hysteresis is how many consecutive pressure verdicts a shard needs
	// before it escalates — one bad window must not trigger a drain.
	// 0 selects 2. Heap exhaustion bypasses it: an OOM'd shard has no
	// budget left to be patient with.
	Hysteresis int
	// Calm is how many consecutive bounded (robust-looking) verdicts a
	// shard needs before it de-escalates one rung. De-escalation is
	// deliberately much slower than escalation: a migration is a drain,
	// and flapping costs more than a rung of robustness. 0 selects 40.
	Calm int
	// SLOCalm is the fast de-escalation threshold used instead of Calm
	// while a robust shard's verdict carries a breached tail-latency SLO
	// ("robust but slow"): the ladder's upper rungs buy robustness with
	// latency, so a shard that is demonstrably over-protected *and* over
	// its latency objective walks down sooner. 0 selects 8.
	SLOCalm int
	// Cooldown is how many decision ticks a freshly migrated shard is
	// left alone while its new incarnation accumulates evidence; 0
	// selects 4.
	Cooldown int
	// EscalateOnLinear widens the pressure definition: by default only an
	// audited not-robust class (unbounded growth, or OOM) escalates;
	// with EscalateOnLinear a linear-in-threads plateau does too, buying
	// the Definition 5.2 bound at the price of extra migrations.
	EscalateOnLinear bool
	// MaxMigrations caps migrations per shard (a flapping valve); 0
	// selects 16, negative removes the cap.
	MaxMigrations int
	// Clock, when non-nil, is the shared run clock episode timestamps
	// are stamped on (the controller used to keep a private time.Since
	// zero, which skewed its log against the sampler's and the chaos
	// engine's). Nil starts a private clock at Start.
	Clock *rec.Clock
	// Recorder, when non-nil, mirrors every ladder move into the flight
	// recorder as it is decided.
	Recorder *rec.Recorder
}

func (cfg *Config) fill() {
	if len(cfg.Ladder) == 0 {
		cfg.Ladder = []string{"ebr", "ibr", "hp"}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 25 * time.Millisecond
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 2
	}
	if cfg.Calm <= 0 {
		cfg.Calm = 40
	}
	if cfg.SLOCalm <= 0 {
		cfg.SLOCalm = 8
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 4
	}
	if cfg.MaxMigrations == 0 {
		cfg.MaxMigrations = 16
	}
}

// Episode records one migration decision for the run report: which
// shard moved where, when, and on what evidence. Failed migrations are
// recorded too (Err non-empty) — a controller that hides its misses is
// not auditable.
type Episode struct {
	Shard int    `json:"shard"`
	From  string `json:"from"`
	To    string `json:"to"`
	// At is the decision time relative to Controller.Start.
	At time.Duration `json:"at_ns"`
	// Audited is the verdict class that drove the decision.
	Audited string `json:"audited"`
	Reason  string `json:"reason"`
	Err     string `json:"err,omitempty"`
}

// shardState is the controller's per-shard decision memory.
type shardState struct {
	pressure int
	calm     int
	cooldown int
	// migrations counts attempts, failed ones included — together with
	// MaxMigrations it is the flap valve, and a rung that always fails
	// must not retry (and grow the episode log) forever.
	migrations int
	lastOOMs   uint64
	seenOOMs   bool
	// unmanaged marks a shard whose structure rejects part of the
	// ladder (Appendix E): the controller leaves it alone entirely
	// rather than discovering the incompatibility one failed migration
	// at a time.
	unmanaged bool
}

// Controller is the policy loop. Build with New, Start it alongside the
// sampler feeding its monitor, Stop it before reading the episode log's
// final state.
type Controller struct {
	cfg   Config
	st    *store.Store
	mon   *telemetry.Monitor
	rung  map[string]int // scheme name → ladder index
	props []smr.Props    // per ladder rung
	state []shardState

	clock    *rec.Clock
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu       sync.Mutex
	episodes []Episode
}

// New builds a controller over the store and its monitor (monitor domain
// i must describe store shard i — the store.Gauges probe convention).
// The ladder is validated against the smr.Props sheets: every rung must
// resolve, and declared robustness must be non-decreasing along it.
func New(cfg Config, st *store.Store, mon *telemetry.Monitor) (*Controller, error) {
	cfg.fill()
	if len(cfg.Ladder) < 2 {
		return nil, errors.New("adapt: a ladder needs at least two rungs")
	}
	c := &Controller{
		cfg:   cfg,
		st:    st,
		mon:   mon,
		rung:  make(map[string]int, len(cfg.Ladder)),
		props: make([]smr.Props, len(cfg.Ladder)),
		state: make([]shardState, st.Shards()),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for i, scheme := range cfg.Ladder {
		p, err := all.Props(scheme)
		if err != nil {
			return nil, fmt.Errorf("adapt: ladder rung %d: %w", i, err)
		}
		if _, dup := c.rung[scheme]; dup {
			return nil, fmt.Errorf("adapt: ladder repeats %s", scheme)
		}
		if i > 0 && p.Robustness < c.props[i-1].Robustness {
			return nil, fmt.Errorf("adapt: ladder must climb in declared robustness, %s (%s) follows %s (%s)",
				scheme, p.Robustness, cfg.Ladder[i-1], c.props[i-1].Robustness)
		}
		c.rung[scheme] = i
		c.props[i] = p
	}
	// A shard whose structure rejects any rung (Appendix E) is marked
	// unmanaged now, so the controller never discovers an
	// incompatibility one failed migration at a time (an always-failing
	// rung would otherwise retry every few ticks for the life of the
	// service).
	for s := 0; s < st.Shards(); s++ {
		spec, err := st.Spec(s)
		if err != nil {
			return nil, err
		}
		info, err := registry.Get(spec.Structure)
		if err != nil {
			return nil, err
		}
		for _, scheme := range cfg.Ladder {
			if !registry.Applicable(scheme, info.Name) {
				c.state[s].unmanaged = true
				break
			}
		}
	}
	return c, nil
}

// Ladder returns the resolved ladder.
func (c *Controller) Ladder() []string { return append([]string(nil), c.cfg.Ladder...) }

// Episodes returns a copy of the migration log, in decision order.
func (c *Controller) Episodes() []Episode {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Episode, len(c.episodes))
	copy(out, c.episodes)
	return out
}

// Start launches the decision loop.
func (c *Controller) Start() {
	if c.clock = c.cfg.Clock; c.clock == nil {
		c.clock = rec.NewClock()
	}
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.decide()
			}
		}
	}()
}

// Stop halts the loop and waits for any in-flight decision (migration
// included) to finish. Idempotent.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() {
		close(c.stop)
		<-c.done
	})
}

// decide runs one tick over every shard.
func (c *Controller) decide() {
	stats := c.st.Stats()
	for s := range stats.Shards {
		if s < len(c.state) {
			c.decideShard(s, stats.Shards[s])
		}
	}
}

// decideShard applies the policy to one shard's verdict and counters.
func (c *Controller) decideShard(s int, ss store.ShardStats) {
	st := &c.state[s]
	// OOM delta since the last tick. A migration swaps in fresh counters,
	// so a regression means "new incarnation", not "negative OOMs".
	var ooms uint64
	if st.seenOOMs && ss.OOMs >= st.lastOOMs {
		ooms = ss.OOMs - st.lastOOMs
	}
	st.lastOOMs, st.seenOOMs = ss.OOMs, true

	if st.unmanaged {
		return
	}
	if st.cooldown > 0 {
		st.cooldown--
		return
	}
	cur, managed := c.rung[ss.Scheme]
	if !managed {
		return
	}
	if c.cfg.MaxMigrations >= 0 && st.migrations >= c.cfg.MaxMigrations {
		return
	}
	v := c.mon.Verdict(s)
	if v.Inconclusive() && ooms == 0 {
		// No evidence either way; hold position and hold the counters —
		// an idle shard must not decay toward a migration.
		return
	}
	audited := v.AuditedClass()
	pressure := ooms > 0 ||
		audited == smr.NotRobust ||
		(c.cfg.EscalateOnLinear && audited == smr.WeaklyRobust)
	switch {
	case pressure:
		st.calm = 0
		st.pressure++
		if ooms > 0 {
			// The backlog already ate the heap; there is nothing left to
			// wait for.
			st.pressure = c.cfg.Hysteresis
		}
		if st.pressure < c.cfg.Hysteresis {
			return
		}
		target := c.escalation(cur, audited)
		if target < 0 {
			st.pressure = 0
			return // top of the ladder: nothing stronger to buy
		}
		reason := fmt.Sprintf("escalate: audited %s over %d windows", v.Audited, st.pressure)
		if ooms > 0 {
			reason = fmt.Sprintf("escalate: %d failed allocations (heap exhausted)", ooms)
		}
		c.migrate(s, cur, target, v, reason)
	case audited == smr.Robust && cur > 0:
		st.pressure = 0
		st.calm++
		// "Robust but slow" — the SLO verdict dimension — de-escalates on
		// the fast threshold: the shard provably doesn't need this rung's
		// protection and is paying for it in tail latency.
		need, reason := c.cfg.Calm, "audited robust"
		if v.SLOBreached {
			need, reason = c.cfg.SLOCalm, "audited robust but SLO-breached (robust but slow)"
		}
		if st.calm < need {
			return
		}
		c.migrate(s, cur, cur-1, v,
			fmt.Sprintf("de-escalate: %s for %d windows", reason, st.calm))
	default:
		// Tolerated middle ground (a weakly-robust plateau, or robust at
		// the bottom rung): reset both streaks.
		st.pressure, st.calm = 0, 0
	}
}

// escalation picks the cheapest rung above cur whose declared robustness
// beats the class the current scheme just demonstrated — the Props cost
// model. When no rung clears that bar but the ladder continues, the next
// rung up is the fallback (climb anyway; standing still is the one move
// the evidence has ruled out).
func (c *Controller) escalation(cur int, audited smr.RobustnessClass) int {
	for j := cur + 1; j < len(c.props); j++ {
		if c.props[j].Robustness > audited {
			return j
		}
	}
	if cur+1 < len(c.cfg.Ladder) {
		return cur + 1
	}
	return -1
}

// migrate executes one ladder move and records the episode.
func (c *Controller) migrate(s, from, to int, v telemetry.Verdict, reason string) {
	st := &c.state[s]
	ep := Episode{
		Shard:   s,
		From:    c.cfg.Ladder[from],
		To:      c.cfg.Ladder[to],
		At:      c.clock.Now(),
		Audited: v.Audited,
		Reason:  reason,
	}
	c.cfg.Recorder.Record(rec.KindLadderMove, s, 0, uint64(to), uint64(from),
		ep.From+"→"+ep.To+": "+reason)
	// Attempts count either way, and either way the shard cools down:
	// a migration that keeps failing must back off and eventually stop
	// (MaxMigrations), not retry on every tick forever.
	st.migrations++
	st.cooldown = c.cfg.Cooldown
	if err := c.st.MigrateShard(s, c.cfg.Ladder[to]); err != nil {
		ep.Err = err.Error()
		// A snapshot/rebuild/replay failure leaves the shard closed —
		// the controller triggered it, so the controller restores
		// availability: reopen cold (data lost, like a restart) rather
		// than serve ErrShardClosed for the rest of the service's life.
		// ReopenShard on a still-open shard (validation failures never
		// detach) fails harmlessly.
		if rerr := c.st.ReopenShard(s); rerr == nil {
			ep.Err += " (shard reopened cold)"
		}
	} else {
		c.mon.SetDomain(s, c.cfg.Ladder[to], c.props[to].Robustness)
		// The swapped-in shard restarts its counters.
		st.lastOOMs, st.seenOOMs = 0, false
	}
	st.pressure, st.calm = 0, 0
	c.mu.Lock()
	c.episodes = append(c.episodes, ep)
	c.mu.Unlock()
}
