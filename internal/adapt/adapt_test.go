package adapt_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/ds"
	"repro/internal/sched"
	"repro/internal/smr"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestNewValidatesLadder checks the Props-sheet cost-model guardrails:
// unknown rungs, robustness inversions, duplicates, and trivial ladders
// are all construction errors.
func TestNewValidatesLadder(t *testing.T) {
	st, err := store.New(store.Config{
		Shards: store.Uniform(1, store.ShardSpec{Scheme: "ebr", Structure: "michael"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mon := telemetry.NewMonitor(telemetry.MonitorConfig{}, nil)
	bad := [][]string{
		{"ebr", "nope", "hp"}, // unknown rung
		{"hp", "ebr"},         // robustness inversion: robust before not-robust
		{"ebr", "ibr", "ebr"}, // duplicate rung
		{"ebr"},               // nothing to climb
	}
	for _, ladder := range bad {
		if _, err := adapt.New(adapt.Config{Ladder: ladder}, st, mon); err == nil {
			t.Errorf("ladder %v accepted", ladder)
		}
	}
	c, err := adapt.New(adapt.Config{}, st, mon)
	if err != nil {
		t.Fatalf("default ladder rejected: %v", err)
	}
	if got := c.Ladder(); len(got) != 3 || got[0] != "ebr" || got[2] != "hp" {
		t.Fatalf("default ladder = %v", got)
	}
	// A shard whose structure rejects part of the ladder (harris cannot
	// take ibr/hp, Appendix E) does not fail construction — it is left
	// unmanaged instead of discovering the incompatibility one failed
	// migration at a time.
	hst, err := store.New(store.Config{
		Shards: store.Uniform(1, store.ShardSpec{Scheme: "ebr", Structure: "harris"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hst.Close()
	if _, err := adapt.New(adapt.Config{}, hst, mon); err != nil {
		t.Fatalf("ladder over an inapplicable structure must leave the shard unmanaged, got: %v", err)
	}
}

// TestControllerEscalatesUnderStall closes the loop end to end: a parked
// worker pins the EBR shard's epoch, client churn turns every delete
// into backlog, the monitor's live window audits not-robust, and the
// controller must migrate the shard up the ladder to ibr — all while
// traffic keeps flowing.
func TestControllerEscalatesUnderStall(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive escalation needs a real traffic window")
	}
	const keyRange = 256
	bp := sched.NewBreakpoints()
	st, err := store.New(store.Config{
		Shards:       []store.ShardSpec{{Scheme: "ebr", Structure: "michael", Workers: 2, Threshold: 16, Gate: bp}},
		KeyRange:     keyRange,
		MigrateGrace: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for k := int64(0); k < keyRange/2; k++ {
		if _, err := st.Insert(k); err != nil {
			t.Fatal(err)
		}
	}

	budget := telemetry.Budget{Threads: 2, Threshold: 16}
	mon := telemetry.NewMonitor(telemetry.MonitorConfig{Window: 128}, []telemetry.Domain{
		{Scheme: "ebr", Declared: smr.NotRobust, Budget: budget},
	})
	sampler := telemetry.NewSampler(
		telemetry.Config{Interval: time.Millisecond, Capacity: 4096, OnSample: mon.Observe},
		func() []telemetry.Point {
			gs := st.Gauges()
			pts := make([]telemetry.Point, len(gs))
			for i, g := range gs {
				pts[i] = telemetry.Point{Ops: g.Ops, Retired: g.Retired,
					MaxRetired: g.MaxRetired, Active: g.Active, MaxActive: g.MaxActive}
			}
			return pts
		})
	ctl, err := adapt.New(adapt.Config{
		Interval:   5 * time.Millisecond,
		Hysteresis: 2,
	}, st, mon)
	if err != nil {
		t.Fatal(err)
	}

	// Park worker 0 mid-operation (the reclamation-critical stall), then
	// churn updates through the surviving worker so the pinned epoch
	// converts deletes into backlog.
	stall := bp.Arm(0, ds.PointSearchHead, nil, 0)
	var aux sync.WaitGroup
	stop := make(chan struct{})
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stall.Reached():
				return
			case <-stop:
				return
			case <-time.After(200 * time.Microsecond):
			}
			aux.Add(1)
			go func() {
				defer aux.Done()
				_, _ = st.Contains(0)
			}()
		}
	}()
	<-stall.Reached()
	aux.Add(1)
	go func() {
		defer aux.Done()
		rng := workload.RNG(11)
		for {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]store.Op, 0, 16)
			for len(batch) < cap(batch) {
				k := int64(rng.Next() % keyRange)
				batch = append(batch,
					store.Op{Kind: workload.OpInsert, Key: k},
					store.Op{Kind: workload.OpDelete, Key: k})
			}
			_, _ = st.Do(batch)
		}
	}()

	sampler.Start()
	ctl.Start()
	deadline := time.Now().Add(20 * time.Second)
	var eps []adapt.Episode
	for time.Now().Before(deadline) {
		if eps = ctl.Episodes(); len(eps) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctl.Stop()
	sampler.Stop()
	stall.Release()
	close(stop)
	aux.Wait()

	if len(eps) == 0 {
		t.Fatal("controller never escalated the stalled ebr shard")
	}
	ep := eps[0]
	if ep.Shard != 0 || ep.From != "ebr" || ep.To != "ibr" || ep.Err != "" {
		t.Fatalf("first episode = %+v, want shard 0 ebr→ibr", ep)
	}
	if ep.Audited != "not-robust" {
		t.Fatalf("episode evidence = %q, want not-robust", ep.Audited)
	}
	s := st.Stats()
	if s.Shards[0].Scheme != "ibr" || s.Shards[0].Migrations == 0 {
		t.Fatalf("shard after escalation: %+v", s.Shards[0])
	}
	// The store must still be serving on the migrated shard.
	if _, err := st.Contains(1); err != nil {
		t.Fatalf("post-escalation op: %v", err)
	}
}
