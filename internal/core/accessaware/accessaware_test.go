package accessaware_test

import (
	"testing"

	"repro/internal/core/accessaware"
	"repro/internal/ds"
	"repro/internal/ds/harris"
	"repro/internal/ds/michael"
	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/all"
)

func tracingEnv(t *testing.T, scheme string, n int) (*mem.Arena, smr.Scheme) {
	t.Helper()
	a := mem.NewArena(mem.Config{
		Slots: 1 << 12, PayloadWords: 2, MetaWords: smr.MetaWords,
		Threads: n, Mode: mem.Reuse, Trace: true,
	})
	s, err := all.New(scheme, a, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	return a, s
}

// TestHarrisAccessAware mechanically replays Appendix D: every Harris
// operation, traced, respects the read/write phase discipline.
func TestHarrisAccessAware(t *testing.T) {
	a, s := tracingEnv(t, "ebr", 1)
	l, err := harris.New(s, ds.Options{Phases: true})
	if err != nil {
		t.Fatal(err)
	}
	// A workload covering every code path: fresh inserts, duplicate
	// inserts, deletes of present and absent keys, contains hits and
	// misses, and traversals over marked runs.
	for k := int64(0); k < 40; k++ {
		if _, err := l.Insert(0, k*2); err != nil {
			t.Fatal(err)
		}
	}
	for k := int64(0); k < 40; k++ {
		l.Insert(0, k*2)      // duplicates
		l.Delete(0, k*4)      // every other present key
		l.Delete(0, k*4+1)    // absent keys
		l.Contains(0, k*2)    // hits and misses
		l.Contains(0, k*2+1)  // misses
		l.Insert(0, 1000+k*3) // fresh region
		l.Delete(0, 1000+k*3) // immediate removal
	}
	vs := accessaware.Verify(a, 1, accessaware.Config{
		Entries:   []mem.Ref{l.Head(), l.Tail()},
		LinkWords: []int{ds.WNext},
	})
	for _, v := range vs {
		t.Errorf("violation: %s", v)
	}
}

// TestHarrisAccessAwareConcurrent repeats the check under concurrency,
// where traversals cross marked runs created by other threads.
func TestHarrisAccessAwareConcurrent(t *testing.T) {
	a, s := tracingEnv(t, "ebr", 4)
	l, err := harris.New(s, ds.Options{Phases: true})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for tid := 0; tid < 4; tid++ {
		go func(tid int) {
			var err error
			for i := 0; i < 400 && err == nil; i++ {
				key := int64((i*7 + tid*13) % 32)
				switch i % 3 {
				case 0:
					_, err = l.Insert(tid, key)
				case 1:
					_, err = l.Delete(tid, key)
				default:
					_, err = l.Contains(tid, key)
				}
			}
			done <- err
		}(tid)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	vs := accessaware.Verify(a, 4, accessaware.Config{
		Entries:   []mem.Ref{l.Head(), l.Tail()},
		LinkWords: []int{ds.WNext},
	})
	for _, v := range vs {
		t.Errorf("violation: %s", v)
	}
}

// TestMichaelAccessAware: Michael's list also divides into phases (it is
// in the NBR paper's applicable class).
func TestMichaelAccessAware(t *testing.T) {
	a, s := tracingEnv(t, "ebr", 1)
	l, err := michael.New(s, ds.Options{Phases: true})
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 30; k++ {
		l.Insert(0, k)
	}
	for k := int64(0); k < 30; k++ {
		l.Delete(0, k*2)
		l.Contains(0, k)
	}
	vs := accessaware.Verify(a, 1, accessaware.Config{
		Entries:   []mem.Ref{l.Head(), l.Tail()},
		LinkWords: []int{ds.WNext},
	})
	for _, v := range vs {
		t.Errorf("violation: %s", v)
	}
}

// TestViolationDetected: a synthetic trace that dereferences a node in a
// read phase without having obtained it in that phase must be rejected.
func TestViolationDetected(t *testing.T) {
	a := mem.NewArena(mem.Config{
		Slots: 16, PayloadWords: 2, Threads: 1, Trace: true,
	})
	entry, _ := a.Alloc(0)
	_ = a.MarkShared(entry)
	n, _ := a.Alloc(0)
	_ = a.MarkShared(n)
	_ = a.Store(0, entry, ds.WNext, uint64(n))

	tr := a.Tracer()
	tr.Reset()

	// Phase 1: legally obtain n through the entry point.
	tr.Annotate(0, ds.PhaseRead)
	_, _ = a.Load(0, entry, ds.WNext)
	_, _ = a.Load(0, n, 0)
	// Phase 2: a fresh read phase — the old permission must be void, so
	// dereferencing n without re-obtaining it breaks condition 1.
	tr.Annotate(0, ds.PhaseRead)
	_, _ = a.Load(0, n, 0)

	vs := accessaware.VerifyThread(0, tr.Events(0), accessaware.Config{
		Entries:   []mem.Ref{entry},
		LinkWords: []int{ds.WNext},
	})
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly the stale-permission load", vs)
	}
}

// TestWriteInReadPhaseDetected: shared writes during a read-only phase
// are rejected.
func TestWriteInReadPhaseDetected(t *testing.T) {
	a := mem.NewArena(mem.Config{
		Slots: 16, PayloadWords: 2, Threads: 1, Trace: true,
	})
	entry, _ := a.Alloc(0)
	_ = a.MarkShared(entry)
	tr := a.Tracer()
	tr.Reset()

	tr.Annotate(0, ds.PhaseRead)
	_ = a.Store(0, entry, 0, 42)

	vs := accessaware.VerifyThread(0, tr.Events(0), accessaware.Config{
		Entries: []mem.Ref{entry},
	})
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly the read-phase store", vs)
	}
}

// TestWritePhaseUnsealedDetected: write-phase accesses to nodes obtained
// only after the read phase ended are rejected (condition 2/3).
func TestWritePhaseUnsealedDetected(t *testing.T) {
	a := mem.NewArena(mem.Config{
		Slots: 16, PayloadWords: 2, Threads: 1, Trace: true,
	})
	entry, _ := a.Alloc(0)
	_ = a.MarkShared(entry)
	n, _ := a.Alloc(0)
	_ = a.MarkShared(n)
	_ = a.Store(0, entry, ds.WNext, uint64(n))
	tr := a.Tracer()
	tr.Reset()

	tr.Annotate(0, ds.PhaseRead)
	_, _ = a.Load(0, entry, ds.WNext) // permits n
	tr.Annotate(0, ds.PhaseWrite)
	_ = a.Store(0, n, 0, 1) // sealed: fine
	tr.Annotate(0, ds.PhaseRead)
	tr.Annotate(0, ds.PhaseWrite) // sealed set now empty
	_ = a.Store(0, n, 0, 2)       // violation

	vs := accessaware.VerifyThread(0, tr.Events(0), accessaware.Config{
		Entries:   []mem.Ref{entry},
		LinkWords: []int{ds.WNext},
	})
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly the unsealed write", vs)
	}
}

// TestUntracedArena: verifying a non-tracing arena reports a setup error.
func TestUntracedArena(t *testing.T) {
	a := mem.NewArena(mem.Config{Slots: 8, PayloadWords: 1, Threads: 1})
	vs := accessaware.Verify(a, 1, accessaware.Config{})
	if len(vs) != 1 || vs[0].Thread != -1 {
		t.Fatalf("want a single setup violation, got %v", vs)
	}
}
