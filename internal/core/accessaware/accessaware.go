// Package accessaware implements the Appendix C verifier: it checks, from
// recorded per-thread access traces, that a data-structure implementation
// respects the read-phase/write-phase discipline that defines the class of
// access-aware implementations (originally from the NBR paper, formalized
// in Appendix C of the ERA paper).
//
// The two conditions, operationally:
//
//  1. During a read-only phase, a shared node may be dereferenced only if
//     a reference to it was obtained during the current phase — from an
//     entry point, a fresh allocation, or a link word of a node already
//     permitted in this phase (the paper's j-permitted chain).
//
//  2. During a write phase, every dereference (read or write) must target
//     a node that was permitted when the last read-only phase ended, or a
//     node still local to the thread.
//
// Retirements are not shared accesses and are exempt (Appendix C).
//
// Appendix D proves Harris's linked-list access-aware; the test suite
// replays that proof mechanically by tracing every operation and running
// this verifier, and shows a discipline-violating trace is rejected.
package accessaware

import (
	"fmt"

	"repro/internal/ds"
	"repro/internal/mem"
)

// Violation is one discipline breach found in a trace.
type Violation struct {
	// Thread is the violating thread id.
	Thread int
	// Index is the event's position in the thread's stream.
	Index int
	// Event is the violating access.
	Event mem.TraceEvent
	// Reason explains which condition broke.
	Reason string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("T%d event %d (%s slot %d word %d): %s",
		v.Thread, v.Index, v.Event.Kind, v.Event.Slot, v.Event.Word, v.Reason)
}

// Config configures a verification pass.
type Config struct {
	// Entries are the structure's entry-point nodes (sentinels, anchors):
	// dereferencing them is always permitted (they are global variables in
	// the paper's model and are never retired).
	Entries []mem.Ref
	// LinkWords are the payload word indices that hold node references;
	// loading one of them extends the permitted set with its target.
	LinkWords []int
}

type phase uint8

const (
	phaseRead phase = iota
	phaseWrite
)

// VerifyThread checks one thread's event stream against the discipline.
func VerifyThread(tid int, events []mem.TraceEvent, cfg Config) []Violation {
	entry := make(map[int]bool, len(cfg.Entries))
	for _, e := range cfg.Entries {
		entry[e.Slot()] = true
	}
	link := make(map[int]bool, len(cfg.LinkWords))
	for _, w := range cfg.LinkWords {
		link[w] = true
	}

	var violations []Violation
	local := make(map[int]bool)     // thread-allocated, assumed still local
	permitted := make(map[int]bool) // permitted in the current read phase
	sealed := make(map[int]bool)    // permitted when the last read phase ended
	ph := phaseRead

	allowed := func(set map[int]bool, slot int) bool {
		return entry[slot] || local[slot] || set[slot]
	}
	report := func(i int, ev mem.TraceEvent, reason string) {
		violations = append(violations, Violation{Thread: tid, Index: i, Event: ev, Reason: reason})
	}

	for i, ev := range events {
		switch ev.Kind {
		case mem.EvNote:
			switch ev.Note {
			case ds.PhaseRead:
				ph = phaseRead
				permitted = make(map[int]bool)
			case ds.PhaseWrite:
				ph = phaseWrite
				sealed = make(map[int]bool, len(permitted))
				for s := range permitted {
					sealed[s] = true
				}
			}
		case mem.EvAlloc:
			local[ev.Slot] = true
			permitted[ev.Slot] = true
		case mem.EvRetire:
			// Retirement is not a shared access (Appendix C); but a node
			// retired by this thread is certainly no longer local to it.
			delete(local, ev.Slot)
		case mem.EvReclaim:
			// Reclamation recycles the slot: any permission attached to
			// the old node is void.
			delete(local, ev.Slot)
			delete(permitted, ev.Slot)
			delete(sealed, ev.Slot)
		case mem.EvLoad:
			switch ph {
			case phaseRead:
				if !allowed(permitted, ev.Slot) {
					report(i, ev, "read-phase load of a node not permitted in this phase (condition 1)")
				}
				if link[ev.Word] {
					if r := mem.Ref(ev.Value).WithoutMark(); !r.IsNil() {
						permitted[r.Slot()] = true
					}
				}
			case phaseWrite:
				if !allowed(sealed, ev.Slot) {
					report(i, ev, "write-phase load of a node not permitted at the last read-phase end (condition 2)")
				}
			}
		case mem.EvStore, mem.EvCAS:
			switch ph {
			case phaseRead:
				if !local[ev.Slot] {
					report(i, ev, "shared-memory write during a read-only phase")
				}
			case phaseWrite:
				if !allowed(sealed, ev.Slot) {
					report(i, ev, "write-phase update of a node not permitted at the last read-phase end (condition 3)")
				}
			}
		}
	}
	return violations
}

// Verify checks every thread's stream of a tracing arena.
func Verify(a *mem.Arena, threads int, cfg Config) []Violation {
	tr := a.Tracer()
	if tr == nil {
		return []Violation{{Thread: -1, Reason: "arena does not trace (mem.Config.Trace=false)"}}
	}
	var all []Violation
	for tid := 0; tid < threads; tid++ {
		all = append(all, VerifyThread(tid, tr.Events(tid), cfg)...)
	}
	return all
}
