package core

import (
	"fmt"
	"strings"

	"repro/internal/core/adversary"
	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/all"
)

// MatrixRow is one scheme's line in the ERA matrix: the claimed classes,
// the empirical validations, and the two-of-three verdict.
type MatrixRow struct {
	Scheme string

	// Easy is the Definition 5.3 classification.
	Easy bool
	// Integration is the full condition breakdown.
	Integration IntegrationReport

	// ClaimedRobustness is the scheme's declared class.
	ClaimedRobustness smr.RobustnessClass
	// MeasuredBounded is the Figure 1 backlog measurement.
	MeasuredBounded bool
	// Robust is the ERA-theorem-relevant bit: at least weak robustness,
	// confirmed by measurement.
	Robust bool

	// ClaimedApplicability is the scheme's declared class.
	ClaimedApplicability smr.ApplicabilityClass
	// HarrisSafe aggregates the deterministic adversary executions on
	// Harris's list — the access-aware witness of Definition 5.6.
	HarrisSafe bool
	// Wide is the ERA-theorem-relevant bit: applicable to the
	// access-aware class, confirmed on its witness.
	Wide bool

	// Consistent reports that measurements agree with claims.
	Consistent bool
}

// Count returns how many of the three ERA properties the row has.
func (r MatrixRow) Count() int {
	n := 0
	if r.Easy {
		n++
	}
	if r.Robust {
		n++
	}
	if r.Wide {
		n++
	}
	return n
}

// Matrix is the full ERA matrix.
type Matrix struct {
	Rows []MatrixRow
	// FigureK is the churn length the measurements used.
	FigureK int
}

// TheoremHolds reports that no scheme achieved all three properties —
// the empirical statement of Theorem 6.1.
func (m Matrix) TheoremHolds() bool {
	for _, r := range m.Rows {
		if r.Count() == 3 {
			return false
		}
	}
	return true
}

// String renders the matrix as an aligned table.
func (m Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %-5s %-14s %-14s %-6s %s\n",
		"scheme", "easy", "robustness", "applicability", "count", "evidence")
	yn := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	for _, r := range m.Rows {
		rb := r.ClaimedRobustness.String()
		if !r.MeasuredBounded {
			rb += "*"
		}
		ap := r.ClaimedApplicability.String()
		if !r.HarrisSafe {
			ap += "!"
		}
		fmt.Fprintf(&b, "%-11s %-5s %-14s %-14s %-6d bounded=%s harris-safe=%s consistent=%s\n",
			r.Scheme, yn(r.Easy), rb, ap, r.Count(),
			yn(r.MeasuredBounded), yn(r.HarrisSafe), yn(r.Consistent))
	}
	fmt.Fprintf(&b, "ERA theorem (no all-yes row): holds=%v\n", m.TheoremHolds())
	return b.String()
}

// BuildMatrix assembles the ERA matrix across every safe scheme: static
// integration classification, Figure 1 robustness measurement, and the
// two deterministic Harris executions for the applicability bit. figureK
// <= 0 selects a default churn.
func BuildMatrix(figureK int) (Matrix, error) {
	if figureK <= 0 {
		figureK = 600
	}
	m := Matrix{FigureK: figureK}
	for _, scheme := range all.SafeNames() {
		props, err := all.Props(scheme)
		if err != nil {
			return m, err
		}
		row := MatrixRow{
			Scheme:               scheme,
			Integration:          ClassifyIntegration(scheme, props),
			ClaimedRobustness:    props.Robustness,
			ClaimedApplicability: props.Applicability,
		}
		row.Easy = row.Integration.Easy

		rob, err := MeasureRobustness(scheme, []int{figureK / 4, figureK})
		if err != nil {
			return m, err
		}
		row.MeasuredBounded = rob.Bounded
		row.Robust = props.Robustness != smr.NotRobust && rob.Bounded

		f1, err := adversary.Figure1(scheme, figureK, mem.Unmap)
		if err != nil {
			return m, err
		}
		f2, err := adversary.Figure2(scheme, mem.Unmap)
		if err != nil {
			return m, err
		}
		row.HarrisSafe = f1.Safe && f2.Safe
		claimedWide := props.Applicability == smr.WidelyApplicable ||
			props.Applicability == smr.StronglyApplicable
		row.Wide = claimedWide && row.HarrisSafe

		row.Consistent = rob.MatchesClaim && (claimedWide == row.HarrisSafe)
		m.Rows = append(m.Rows, row)
	}
	return m, nil
}
