package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ds/registry"
	"repro/internal/smr"
	"repro/internal/smr/all"
)

// TestClassifyIntegration pins Definition 5.3 per scheme: only the
// rollback/phase-free schemes are easy.
func TestClassifyIntegration(t *testing.T) {
	wantEasy := map[string]bool{
		"ebr": true, "qsbr": true, "hp": true, "ibr": true, "he": true,
		"rc": true, "none": true, "unsafefree": true,
		"vbr": false, "nbr": false, "pebr": false,
	}
	for _, scheme := range all.Names() {
		p, err := all.Props(scheme)
		if err != nil {
			t.Fatal(err)
		}
		rep := core.ClassifyIntegration(scheme, p)
		if rep.Easy != wantEasy[scheme] {
			t.Errorf("%s: easy = %v, want %v", scheme, rep.Easy, wantEasy[scheme])
		}
		if rep.Easy != p.EasyIntegration() {
			t.Errorf("%s: report and Props disagree", scheme)
		}
	}
	rep := core.ClassifyIntegration("nbr", smr.Props{RequiresRollback: true, RequiresPhases: true})
	if rep.WellFormed {
		t.Error("rollbacks must break Condition 4 (well-formedness)")
	}
	if !rep.PhaseDiscipline {
		t.Error("phase requirement not reported")
	}
}

// TestSafetyReport covers the verdict logic.
func TestSafetyReport(t *testing.T) {
	if !(core.SafetyReport{UnsafeLoads: 5}).Safe() {
		t.Error("discarded unsafe loads alone must not make a run unsafe")
	}
	if (core.SafetyReport{Faults: 1}).Safe() {
		t.Error("faults must make a run unsafe")
	}
	if (core.SafetyReport{StaleUses: 1}).Safe() {
		t.Error("stale uses must make a run unsafe")
	}
	if (core.SafetyReport{Violations: 1}).Safe() {
		t.Error("life-cycle violations must make a run unsafe")
	}
	if !strings.Contains((core.SafetyReport{Faults: 2}).String(), "UNSAFE") {
		t.Error("String must flag unsafe runs")
	}
}

// TestMeasureRobustness checks the measured class against the claims for
// one scheme of each class.
func TestMeasureRobustness(t *testing.T) {
	for scheme, wantBounded := range map[string]bool{
		"ebr": false, // not robust
		"ibr": true,  // weakly robust
		"vbr": true,  // robust
		"rc":  false, // chain pinning
	} {
		r, err := core.MeasureRobustness(scheme, []int{200, 800})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if r.Bounded != wantBounded {
			t.Errorf("%s: bounded = %v, want %v (%s)", scheme, r.Bounded, wantBounded, r)
		}
		if !r.MatchesClaim {
			t.Errorf("%s: measurement contradicts claimed class (%s)", scheme, r)
		}
	}
}

// TestEBRStrongApplicability is the Appendix A experiment: EBR is
// applicable to every structure in the repository — safety, linearizable
// history, and completed operations on each.
func TestEBRStrongApplicability(t *testing.T) {
	for _, structure := range registry.Names() {
		rep, err := core.CheckApplicability("ebr", structure, core.WorkloadConfig{Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", structure, err)
		}
		if !rep.Applicable {
			t.Errorf("EBR not applicable to %s: %s", structure, rep.Detail)
		}
	}
}

// TestApplicabilityAcrossSchemes validates Definition 5.4 positively for
// every (scheme, structure) pair the paper classifies as applicable.
func TestApplicabilityAcrossSchemes(t *testing.T) {
	if testing.Short() {
		// The full pairwise randomized stress matrix is minutes of work
		// under the race detector, and the optimistic schemes' retry loops
		// can livelock under its scheduling perturbation on small boxes.
		t.Skip("skipping the pairwise applicability stress matrix in short mode")
	}
	for _, scheme := range all.SafeNames() {
		for _, structure := range registry.Names() {
			if !registry.Applicable(scheme, structure) {
				continue
			}
			rep, err := core.CheckApplicability(scheme, structure, core.WorkloadConfig{Seed: 11})
			if err != nil {
				t.Fatalf("%s × %s: %v", scheme, structure, err)
			}
			if !rep.Applicable {
				t.Errorf("%s × %s: %s", scheme, structure, rep.Detail)
			}
		}
	}
}

// TestUnsafeBaselineDetected: the failure-injection scheme must be caught
// by the applicability harness (it frees immediately under live readers).
func TestUnsafeBaselineDetected(t *testing.T) {
	// A long unrecorded stress phase at maximum contention. Detection is
	// probabilistic (on a single core use-after-free only surfaces at
	// goroutine preemption points), so retry across seeds; missing it in
	// eight independent long runs would indicate a broken harness.
	for seed := uint64(1); seed <= 8; seed++ {
		rep, err := core.CheckApplicability("unsafefree", "harris", core.WorkloadConfig{
			Threads: 8, Rounds: 4, OpsPerThread: 3, KeyRange: 2, Seed: seed, StressOps: 150000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Applicable {
			return // detected
		}
	}
	t.Error("immediate free classified applicable in 8 runs — the harness missed use-after-free")
}

// TestERAMatrix builds the matrix and checks Theorem 6.1 empirically: two
// properties are achievable in every combination, three never.
func TestERAMatrix(t *testing.T) {
	m, err := core.BuildMatrix(400)
	if err != nil {
		t.Fatal(err)
	}
	if !m.TheoremHolds() {
		t.Fatalf("a scheme achieved all three ERA properties:\n%s", m)
	}
	// Every two-of-three combination is witnessed (Section 6: EBR, NBR,
	// HP are the three witnesses).
	type combo struct{ e, r, a bool }
	seen := map[combo]string{}
	for _, row := range m.Rows {
		seen[combo{row.Easy, row.Robust, row.Wide}] = row.Scheme
	}
	for _, c := range []combo{
		{true, false, true},  // EBR: easy + widely applicable
		{true, true, false},  // HP: easy + robust
		{false, true, true},  // NBR/VBR: robust + widely applicable
	} {
		if _, ok := seen[c]; !ok {
			t.Errorf("missing two-of-three witness %+v; have %v", c, seen)
		}
	}
	// All rows must be self-consistent (claims match measurements).
	for _, row := range m.Rows {
		if !row.Consistent {
			t.Errorf("%s: claims and measurements disagree", row.Scheme)
		}
	}
	if !strings.Contains(m.String(), "holds=true") {
		t.Error("matrix rendering must state the theorem verdict")
	}
}
