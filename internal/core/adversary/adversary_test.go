package adversary_test

import (
	"testing"

	"repro/internal/core/adversary"
	"repro/internal/mem"
	"repro/internal/smr/all"
)

// expectations encode the paper's analysis of each scheme on Harris's
// linked-list under the Theorem 6.1 execution:
//
//   - safe && bounded: only the rollback-requiring schemes (VBR, NBR) —
//     robustness + wide applicability, bought with hard integration.
//   - safe && !bounded: the easy + widely applicable schemes (EBR, QSBR)
//     and the chain-pinning ones (RC), plus the leak baseline.
//   - !safe: the protection-based easy + robust schemes (HP, HE, IBR) and
//     the failure-injection baseline.
type expectation struct {
	safe    bool
	bounded bool
}

var figure1Want = map[string]expectation{
	"ebr":        {safe: true, bounded: false},
	"qsbr":       {safe: true, bounded: false},
	"none":       {safe: true, bounded: false},
	"rc":         {safe: true, bounded: false},
	"hp":         {safe: false},
	"he":         {safe: false},
	"ibr":        {safe: false},
	"unsafefree": {safe: false},
	"vbr":        {safe: true, bounded: true},
	"nbr":        {safe: true, bounded: true},
	"pebr":       {safe: true, bounded: true},
}

// TestTheoremERA runs the Figure 1 execution for every scheme and checks
// the trichotomy above — no scheme is simultaneously safe on Harris's
// list (applicable), bounded (robust), and rollback-free (easy).
func TestTheoremERA(t *testing.T) {
	const K = 600
	for _, scheme := range all.Names() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			o, err := adversary.Figure1(scheme, K, mem.Unmap)
			if err != nil {
				t.Fatalf("figure1: %v", err)
			}
			want, ok := figure1Want[scheme]
			if !ok {
				t.Fatalf("no expectation recorded for scheme %q", scheme)
			}
			if o.Safe != want.safe {
				t.Errorf("safe = %v, want %v (%s)", o.Safe, want.safe, o)
			}
			if want.safe && o.Bounded != want.bounded {
				t.Errorf("bounded = %v, want %v (%s)", o.Bounded, want.bounded, o)
			}
			if o.MaxActive != 4 {
				t.Errorf("max_active = %d, want the paper's 4", o.MaxActive)
			}
			if want.safe && o.StalledOpErr != nil {
				t.Errorf("stalled operation failed on a safe scheme: %v", o.StalledOpErr)
			}
			// The theorem itself: safe + bounded implies rollbacks were
			// taken (the scheme is not easily integrated).
			if o.Safe && o.Bounded && o.Restarts == 0 && o.Neutralizations == 0 {
				t.Errorf("scheme is safe, bounded, and rollback-free on Harris's list — contradicts Theorem 6.1 (%s)", o)
			}
		})
	}
}

// TestTheoremERAReuseMode re-runs Figure 1 with reclaimed slots recycled
// into program space: the unsafe schemes now read recycled memory instead
// of faulting — still a Definition 4.2 violation (stale value use).
func TestTheoremERAReuseMode(t *testing.T) {
	for _, scheme := range []string{"ebr", "hp", "vbr", "nbr"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			o, err := adversary.Figure1(scheme, 600, mem.Reuse)
			if err != nil {
				t.Fatalf("figure1: %v", err)
			}
			want := figure1Want[scheme]
			if o.Safe != want.safe {
				t.Errorf("safe = %v, want %v (%s)", o.Safe, want.safe, o)
			}
			if !want.safe && o.Faults != 0 {
				t.Errorf("reuse mode should not fault (got %d); violations surface as stale uses", o.Faults)
			}
		})
	}
}

// TestFigure1GrowthTracksChurn: for the non-robust schemes the backlog is
// linear in K — the execution-length-dependent growth that robustness
// definitions exclude.
func TestFigure1GrowthTracksChurn(t *testing.T) {
	for _, scheme := range []string{"ebr", "qsbr", "none"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			var prev uint64
			for _, k := range []int{200, 400, 800} {
				o, err := adversary.Figure1(scheme, k, mem.Unmap)
				if err != nil {
					t.Fatal(err)
				}
				if o.FinalRetired < uint64(k)-64 {
					t.Errorf("K=%d: backlog %d does not track churn", k, o.FinalRetired)
				}
				if o.FinalRetired <= prev {
					t.Errorf("K=%d: backlog %d did not grow from %d", k, o.FinalRetired, prev)
				}
				prev = o.FinalRetired
			}
		})
	}
}

// TestFigure1RobustBoundIndependentOfChurn: for the robust schemes the
// backlog is flat in K.
func TestFigure1RobustBoundIndependentOfChurn(t *testing.T) {
	for _, scheme := range []string{"vbr", "nbr"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			var backlogs []uint64
			for _, k := range []int{200, 800} {
				o, err := adversary.Figure1(scheme, k, mem.Unmap)
				if err != nil {
					t.Fatal(err)
				}
				backlogs = append(backlogs, o.PeakRetired)
			}
			if backlogs[1] > 2*backlogs[0]+16 {
				t.Errorf("peak backlog grew with churn: %v", backlogs)
			}
		})
	}
}

var figure2Want = map[string]bool{ // scheme -> safe?
	"ebr": true, "qsbr": true, "none": true, "rc": true,
	"vbr": true, "nbr": true, "pebr": true,
	"hp": false, "he": false, "ibr": false, "unsafefree": false,
}

// TestFigure2Incompatibility runs the Appendix E execution: the
// protection-based schemes validate a stable source pointer and still
// dereference reclaimed memory.
func TestFigure2Incompatibility(t *testing.T) {
	for _, scheme := range all.Names() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			o, err := adversary.Figure2(scheme, mem.Unmap)
			if err != nil {
				t.Fatalf("figure2: %v", err)
			}
			want, ok := figure2Want[scheme]
			if !ok {
				t.Fatalf("no expectation recorded for scheme %q", scheme)
			}
			if o.Safe != want {
				t.Errorf("safe = %v, want %v (%s)", o.Safe, want, o)
			}
			if want && o.StalledOpErr != nil {
				t.Errorf("insert(58) failed on a safe scheme: %v", o.StalledOpErr)
			}
		})
	}
}

// TestFigure1Deterministic: same inputs, same outcome — the scripted
// executions are replayable.
func TestFigure1Deterministic(t *testing.T) {
	a, err := adversary.Figure1("hp", 300, mem.Unmap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := adversary.Figure1("hp", 300, mem.Unmap)
	if err != nil {
		t.Fatal(err)
	}
	if a.Safe != b.Safe || a.Bounded != b.Bounded || a.MaxActive != b.MaxActive {
		t.Errorf("outcomes differ:\n  %s\n  %s", a, b)
	}
}

// TestBadInputs covers the error paths.
func TestBadInputs(t *testing.T) {
	if _, err := adversary.Figure1("nosuch", 100, mem.Unmap); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := adversary.Figure1("ebr", 1, mem.Unmap); err == nil {
		t.Error("K=1 accepted")
	}
	if _, err := adversary.Figure2("nosuch", mem.Unmap); err == nil {
		t.Error("unknown scheme accepted")
	}
}
