package adversary

import (
	"fmt"

	"repro/internal/ds"
	"repro/internal/ds/registry"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/smr"
	"repro/internal/smr/all"
)

// StallTraversal generalizes the Figure 1 execution beyond Harris's list —
// the Section 6 discussion's open question is exactly which structures
// "behave like Harris's list" under the theorem. The script is structure
// agnostic: T1's traversal stalls at its first level-zero visit of the
// stall key, T2 churns insert(n+1)/delete(n) keeping the structure tiny
// while retiring K nodes, scans run, and T1 resumes solo.
//
// The per-structure outcomes differ in instructive ways (measured by the
// tests and EXPERIMENTS.md): the skip list reproduces Harris's trichotomy
// exactly; the Natarajan-Mittal tree keeps protection-based schemes safe
// under *this* script (each traversal step protects the node it lands on,
// and the tree detaches small units rather than chains), while the
// non-robust backlog shape is unchanged — and RC, chain-pinning on the
// lists, is bounded on the tree because detached units do not link to
// each other.
func StallTraversal(scheme, structure string, K int, mode mem.ReclaimMode) (*Outcome, error) {
	if K < 2 {
		return nil, fmt.Errorf("adversary: K must be at least 2")
	}
	info, err := registry.Get(structure)
	if err != nil {
		return nil, err
	}
	if info.Kind != registry.KindSet {
		return nil, fmt.Errorf("adversary: %s is not a set structure", structure)
	}
	mode = effectiveMode(scheme, mode)
	// Trees allocate two nodes per insert.
	slots := 4*K + 256
	a := mem.NewArena(mem.Config{
		Slots: slots, PayloadWords: info.PayloadWords, MetaWords: smr.MetaWords,
		Threads: 2, Mode: mode,
	})
	s, err := all.New(scheme, a, 2, 16)
	if err != nil {
		return nil, err
	}
	bp := sched.NewBreakpoints()
	set, err := info.NewSet(s, ds.Options{Gate: bp})
	if err != nil {
		return nil, err
	}

	const t1, t2 = 0, 1
	for _, k := range []int64{1, 2} {
		if ok, err := set.Insert(t2, k); err != nil || !ok {
			return nil, fmt.Errorf("adversary: stall setup insert(%d) = %v, %v", k, ok, err)
		}
	}

	// Key 2 is on every structure's search path for 3: the lists visit it
	// directly, the skip list enters through it at its top level (key 1's
	// tower may sit below the descent path), and the external tree's
	// search for 3 lands on leaf 2.
	stall := bp.Arm(t1, ds.PointSearchVisit, func(arg uint64) bool { return arg == 2 }, 0)
	t1Task := sched.Go(func() error {
		_, err := set.Contains(t1, 3)
		return err
	})
	<-stall.Reached()

	// Era/epoch separation (as in Figure 2): advance the era clocks so
	// the churn nodes that get linked under the stalled traversal are
	// born strictly after any era T1 reserved.
	for i := int64(0); i < 16; i++ {
		if ok, err := set.Insert(t2, 1000+i); err != nil || !ok {
			return nil, fmt.Errorf("adversary: stall filler insert = %v, %v", ok, err)
		}
		if ok, err := set.Delete(t2, 1000+i); err != nil || !ok {
			return nil, fmt.Errorf("adversary: stall filler delete = %v, %v", ok, err)
		}
	}

	if ok, err := set.Delete(t2, 1); err != nil || !ok {
		return nil, fmt.Errorf("adversary: stall delete(1) = %v, %v", ok, err)
	}
	for n := int64(2); n <= int64(K); n++ {
		if ok, err := set.Insert(t2, n+1); err != nil || !ok {
			return nil, fmt.Errorf("adversary: stall insert(%d) = %v, %v", n+1, ok, err)
		}
		if ok, err := set.Delete(t2, n); err != nil || !ok {
			return nil, fmt.Errorf("adversary: stall delete(%d) = %v, %v", n, ok, err)
		}
	}
	s.Flush(t2)

	o := &Outcome{Scheme: scheme, Scenario: "stall-" + structure, K: K}
	backlogAtResume := a.Stats().Retired()

	stall.Release()
	o.StalledOpErr = t1Task.Wait()

	fill(o, a, s)
	o.Bounded = backlogAtResume < uint64(K)/4
	return o, nil
}
