package adversary_test

import (
	"testing"

	"repro/internal/core/adversary"
	"repro/internal/mem"
	"repro/internal/smr/all"
)

// The Section 6 discussion asks which structures "behave like Harris's
// list" under the theorem. The generic stalled-traversal script answers it
// empirically for the two other traversal-through-retired-nodes structures
// in the repository.
//
// The skip list reproduces Harris's trichotomy exactly: a stalled tower
// descent holds stale lower-level links, so the protection-based schemes
// dereference reclaimed memory while the non-robust schemes pin the churn.
var skiplistWant = map[string]expectation{
	"ebr":        {safe: true, bounded: false},
	"qsbr":       {safe: true, bounded: false},
	"none":       {safe: true, bounded: false},
	"rc":         {safe: true, bounded: false}, // held towers pin the marked chain
	"hp":         {safe: false},
	"he":         {safe: false},
	"ibr":        {safe: false},
	"unsafefree": {safe: false},
	"vbr":        {safe: true, bounded: true},
	"nbr":        {safe: true, bounded: true},
	"pebr":       {safe: true, bounded: true},
}

// The external tree's profile differs in two instructive ways under THIS
// script: (1) every traversal step protects exactly the node it stands on
// and the resumed search reads nothing else, so even HP stays safe — the
// tree needs a Figure 2-style marked-run script to break protection, which
// the paper's open question leaves for structure-specific analysis; and
// (2) RC is *bounded* here because the tree detaches {internal, leaf}
// units that do not link to each other, unlike the lists' pinned chains.
var nmtreeWant = map[string]expectation{
	"ebr":        {safe: true, bounded: false},
	"qsbr":       {safe: true, bounded: false},
	"none":       {safe: true, bounded: false},
	"rc":         {safe: true, bounded: true},
	"hp":         {safe: true, bounded: true},
	"he":         {safe: true, bounded: true},
	"ibr":        {safe: true, bounded: true},
	"unsafefree": {safe: true, bounded: true},
	"vbr":        {safe: true, bounded: true},
	"nbr":        {safe: true, bounded: true},
	"pebr":       {safe: true, bounded: true},
}

// TestStallTraversalSkiplist pins the skip list's Harris-like trichotomy.
func TestStallTraversalSkiplist(t *testing.T) {
	runStallTable(t, "skiplist", skiplistWant)
}

// TestStallTraversalNMTree pins the external tree's contrasting profile.
func TestStallTraversalNMTree(t *testing.T) {
	runStallTable(t, "nmtree", nmtreeWant)
}

// TestStallTraversalHarris cross-checks the generic script against the
// dedicated Figure 1 execution on the robustness column (the safety
// column needs Figure 1's head-of-traversal stall: stalling at a visited
// node leaves only sentinel reads ahead, which every scheme survives).
func TestStallTraversalHarris(t *testing.T) {
	for _, scheme := range []string{"ebr", "hp", "vbr"} {
		o, err := adversary.StallTraversal(scheme, "harris", 600, mem.Unmap)
		if err != nil {
			t.Fatal(err)
		}
		f1, err := adversary.Figure1(scheme, 600, mem.Unmap)
		if err != nil {
			t.Fatal(err)
		}
		if o.Bounded != f1.Bounded {
			t.Errorf("%s: stall bounded=%v, figure1 bounded=%v", scheme, o.Bounded, f1.Bounded)
		}
	}
}

func runStallTable(t *testing.T, structure string, want map[string]expectation) {
	t.Helper()
	for _, scheme := range all.Names() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			o, err := adversary.StallTraversal(scheme, structure, 600, mem.Unmap)
			if err != nil {
				t.Fatalf("stall traversal: %v", err)
			}
			w, ok := want[scheme]
			if !ok {
				t.Fatalf("no expectation recorded for scheme %q", scheme)
			}
			if o.Safe != w.safe {
				t.Errorf("safe = %v, want %v (%s)", o.Safe, w.safe, o)
			}
			if w.safe && o.Bounded != w.bounded {
				t.Errorf("bounded = %v, want %v (%s)", o.Bounded, w.bounded, o)
			}
		})
	}
}

// TestStallTraversalBadInputs covers the error paths.
func TestStallTraversalBadInputs(t *testing.T) {
	if _, err := adversary.StallTraversal("ebr", "msqueue", 100, mem.Unmap); err == nil {
		t.Error("queue structure accepted")
	}
	if _, err := adversary.StallTraversal("ebr", "nosuch", 100, mem.Unmap); err == nil {
		t.Error("unknown structure accepted")
	}
	if _, err := adversary.StallTraversal("nosuch", "harris", 100, mem.Unmap); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := adversary.StallTraversal("ebr", "harris", 1, mem.Unmap); err == nil {
		t.Error("K=1 accepted")
	}
}
