// Package adversary builds the paper's two scripted executions as
// replayable, deterministic runs parameterized by reclamation scheme:
//
//   - Figure1 is the lower-bound execution proving Theorem 6.1: thread T1
//     stalls at the start of a traversal of Harris's linked-list while T2
//     runs an alternating insert(n+1)/delete(n) workload, keeping the data
//     structure at four active nodes while retiring n nodes. A scheme that
//     is (weakly) robust must eventually reclaim part of T1's path; when
//     T1 resumes solo, an easily-integrated scheme has no way to stop it
//     from dereferencing the reclaimed node.
//
//   - Figure2 is the Appendix E execution showing protection-based schemes
//     (HP, HE, IBR) are not applicable to Harris's list: T1 protects node
//     15 and stalls before reading its next pointer; deleters mark 15 and
//     43 without unlinking; a traversal bulk-unlinks both; 43 is reclaimed
//     (15 survives via T1's protection); T1 resumes, validates a perfectly
//     stable pointer, and still dereferences freed memory.
//
// Every run reports a structured Outcome; the per-scheme expectations are
// what the ERA matrix (internal/core) validates empirically.
package adversary

import (
	"errors"
	"fmt"

	"repro/internal/ds"
	"repro/internal/ds/harris"
	"repro/internal/mem"
	"repro/internal/sched"
	"repro/internal/smr"
	"repro/internal/smr/all"
)

// Outcome is the structured result of one adversarial execution.
type Outcome struct {
	// Scheme is the reclamation scheme under test.
	Scheme string
	// Scenario is "figure1" or "figure2".
	Scenario string
	// K is the churn length (figure1 only).
	K int

	// MaxActive is the arena's max_active_E — the paper pins it at 4 for
	// Figure 1 (head, tail and at most two list nodes).
	MaxActive uint64
	// PeakRetired is the largest retired backlog observed.
	PeakRetired uint64
	// FinalRetired is the backlog when the run ended.
	FinalRetired uint64

	// Faults counts simulated segmentation faults (accesses to system
	// space) — hard safety violations.
	Faults uint64
	// StaleUses counts values read through invalid references that the
	// scheme handed to the data structure — Definition 4.2 violations.
	StaleUses uint64
	// UnsafeLoads and UnsafeStores count all unsafe accesses, including
	// the tolerated ones of optimistic schemes.
	UnsafeLoads, UnsafeStores uint64
	// Restarts counts scheme-demanded rollbacks, Neutralizations the
	// simulated signals taken.
	Restarts, Neutralizations uint64

	// StalledOpErr is the error the stalled operation returned after its
	// solo-run resume (nil when it completed normally).
	StalledOpErr error

	// Safe reports Definition 4.2 compliance: no faults, no stale uses,
	// no life-cycle violations.
	Safe bool
	// Bounded reports that the final backlog did not track the churn
	// length (figure1; always true for figure2).
	Bounded bool
}

// String renders a one-line summary.
func (o *Outcome) String() string {
	verdict := "SAFE"
	if !o.Safe {
		verdict = "UNSAFE"
	}
	growth := "bounded"
	if !o.Bounded {
		growth = "UNBOUNDED"
	}
	return fmt.Sprintf("%-10s %s: %s, backlog %s (peak %d, final %d, max_active %d), faults=%d staleUses=%d restarts=%d neut=%d",
		o.Scheme, o.Scenario, verdict, growth, o.PeakRetired, o.FinalRetired, o.MaxActive,
		o.Faults, o.StaleUses, o.Restarts, o.Neutralizations)
}

func fill(o *Outcome, a *mem.Arena, s smr.Scheme) {
	sn := a.Stats().Snapshot()
	st := s.Stats().Snapshot()
	o.PeakRetired = sn.MaxRetired
	o.FinalRetired = sn.Retired
	o.MaxActive = sn.MaxActive
	o.Faults = sn.Faults
	o.StaleUses = st.StaleUses
	o.UnsafeLoads = sn.UnsafeLoads
	o.UnsafeStores = sn.UnsafeStores
	o.Restarts = st.Restarts
	o.Neutralizations = st.Neutralizations
	o.Safe = sn.Faults == 0 && st.StaleUses == 0 && sn.Violations == 0
}

// effectiveMode honours a scheme's type-preservation requirement: the
// optimistic schemes (VBR, NBR) are only defined over program-space
// reclamation — their discarded stale reads must not hit system space.
func effectiveMode(scheme string, mode mem.ReclaimMode) mem.ReclaimMode {
	if p, err := all.Props(scheme); err == nil && p.TypePreserving {
		return mem.Reuse
	}
	return mode
}

func mustOp(name string, ok bool, want bool, err error) error {
	if err != nil {
		return fmt.Errorf("adversary: %s: %w", name, err)
	}
	if ok != want {
		return fmt.Errorf("adversary: %s returned %v, script expects %v", name, ok, want)
	}
	return nil
}

// Figure1 runs the Theorem 6.1 lower-bound execution for the named scheme
// with churn length K. mode selects what reclaimed memory does (Unmap
// reproduces the segmentation-fault reading; Reuse the read-another-node
// reading — both are unsafe per Definition 4.1).
func Figure1(scheme string, K int, mode mem.ReclaimMode) (*Outcome, error) {
	if K < 2 {
		return nil, errors.New("adversary: K must be at least 2")
	}
	mode = effectiveMode(scheme, mode)
	slots := 2*K + 64
	a := mem.NewArena(mem.Config{
		Slots: slots, PayloadWords: 2, MetaWords: smr.MetaWords, Threads: 2, Mode: mode,
	})
	s, err := all.New(scheme, a, 2, 16)
	if err != nil {
		return nil, err
	}
	bp := sched.NewBreakpoints()
	l, err := harris.New(s, ds.Options{Gate: bp})
	if err != nil {
		return nil, err
	}

	// Stage a: two reachable nodes besides the sentinels.
	const t1, t2 = 0, 1
	for _, k := range []int64{1, 2} {
		ok, err := l.Insert(t2, k)
		if err := mustOp(fmt.Sprintf("insert(%d)", k), ok, true, err); err != nil {
			return nil, err
		}
	}

	// T1 starts delete(3) and parks right after reading head's next
	// pointer (its local pointer references node 1).
	stall := bp.Arm(t1, ds.PointSearchHead, nil, 0)
	t1Task := sched.Go(func() error {
		_, err := l.Delete(t1, 3)
		return err
	})
	<-stall.Reached()

	// Stages b-f: T2 deletes 1, then alternates insert(n+1)/delete(n).
	if ok, err := l.Delete(t2, 1); err != nil || !ok {
		return nil, fmt.Errorf("adversary: delete(1) = %v, %v", ok, err)
	}
	for n := int64(2); n <= int64(K); n++ {
		if ok, err := l.Insert(t2, n+1); err != nil || !ok {
			return nil, fmt.Errorf("adversary: insert(%d) = %v, %v", n+1, ok, err)
		}
		if ok, err := l.Delete(t2, n); err != nil || !ok {
			return nil, fmt.Errorf("adversary: delete(%d) = %v, %v", n, ok, err)
		}
	}
	s.Flush(t2)

	o := &Outcome{Scheme: scheme, Scenario: "figure1", K: K}
	backlogAtResume := a.Stats().Retired()

	// Solo-run: T1 resumes and traverses its (possibly reclaimed) path.
	stall.Release()
	o.StalledOpErr = t1Task.Wait()

	fill(o, a, s)
	// Bounded: the backlog at C_in did not track the churn length. The
	// paper's bound is f(i)*N with f = o(max_active); with max_active
	// pinned at 4 any backlog growing with K is unbounded. K/4 separates
	// the two regimes cleanly (robust schemes stay below ~threshold+N*K_hp).
	o.Bounded = backlogAtResume < uint64(K)/4
	return o, nil
}

// Figure2Keys are the keys of the Appendix E scenario, exported for the
// example binaries' narration.
var Figure2Keys = struct {
	A, B, C int64 // nodes 15, 43, 76
	Probe   int64 // T4's absent key 44
	Insert  int64 // T1's key 58
}{15, 43, 76, 44, 58}

// Figure2 runs the Appendix E execution for the named scheme.
func Figure2(scheme string, mode mem.ReclaimMode) (*Outcome, error) {
	mode = effectiveMode(scheme, mode)
	a := mem.NewArena(mem.Config{
		Slots: 4096, PayloadWords: 2, MetaWords: smr.MetaWords, Threads: 4, Mode: mode,
	})
	s, err := all.New(scheme, a, 4, 8)
	if err != nil {
		return nil, err
	}
	bp := sched.NewBreakpoints()
	l, err := harris.New(s, ds.Options{Gate: bp})
	if err != nil {
		return nil, err
	}
	const t1, t2, t3, t4 = 0, 1, 2, 3
	k := Figure2Keys

	// Stage a: the list contains {15, 76}.
	for _, key := range []int64{k.A, k.C} {
		if ok, err := l.Insert(t4, key); err != nil || !ok {
			return nil, fmt.Errorf("adversary: initial insert(%d) = %v, %v", key, ok, err)
		}
	}
	ref15, ok := findRef(a, l, k.A)
	if !ok {
		return nil, errors.New("adversary: node 15 not found after insert")
	}

	// T1 invokes insert(58), obtains (and protects) a pointer to node 15,
	// and parks before reading 15's next pointer.
	stall := bp.Arm(t1, ds.PointSearchStep, func(arg uint64) bool {
		return mem.Ref(arg).SameNode(ref15)
	}, 0)
	t1Task := sched.Go(func() error {
		_, err := l.Insert(t1, k.Insert)
		return err
	})
	<-stall.Reached()

	// Era/epoch separation: drive allocations and retirements so that a
	// node inserted *after* T1's protection is born in a strictly later
	// era than any era T1 reserved (IBR and HE advance their clocks on
	// allocation/retirement counts).
	for i := int64(0); i < 16; i++ {
		if ok, err := l.Insert(t4, 1000+i); err != nil || !ok {
			return nil, fmt.Errorf("adversary: filler insert = %v, %v", ok, err)
		}
		if ok, err := l.Delete(t4, 1000+i); err != nil || !ok {
			return nil, fmt.Errorf("adversary: filler delete = %v, %v", ok, err)
		}
	}

	// Stage b: node 43 is inserted between 15 and 76.
	if ok, err := l.Insert(t4, k.B); err != nil || !ok {
		return nil, fmt.Errorf("adversary: insert(43) = %v, %v", ok, err)
	}

	// Stage c: T2 and T3 mark 43 and 15 respectively, both parking after
	// the mark and before the unlink.
	stall2 := bp.Arm(t2, ds.PointDeleteMarked, nil, 0)
	t2Task := sched.Go(func() error {
		ok, err := l.Delete(t2, k.B)
		if err == nil && !ok {
			return errors.New("delete(43) lost its victim")
		}
		return err
	})
	<-stall2.Reached()

	stall3 := bp.Arm(t3, ds.PointDeleteMarked, nil, 0)
	t3Task := sched.Go(func() error {
		ok, err := l.Delete(t3, k.A)
		if err == nil && !ok {
			return errors.New("delete(15) lost its victim")
		}
		return err
	})
	<-stall3.Reached()

	// Stage d: T4's delete(44) traversal bulk-unlinks the marked run
	// 15 -> 43 with a single CAS on head's next pointer, then reports 44
	// absent.
	if ok, err := l.Delete(t4, k.Probe); err != nil || ok {
		return nil, fmt.Errorf("adversary: delete(44) = %v, %v (want absent)", ok, err)
	}

	// The deleters finish: each fails its own unlink (already done),
	// re-finds, and retires its victim.
	stall3.Release()
	if err := t3Task.Wait(); err != nil {
		return nil, fmt.Errorf("adversary: T3: %w", err)
	}
	stall2.Release()
	if err := t2Task.Wait(); err != nil {
		return nil, fmt.Errorf("adversary: T2: %w", err)
	}

	// Reclamation scans: 43 is unprotected and reclaims; 15 is covered by
	// T1's protection under the protection-based schemes.
	for i := 0; i < 3; i++ {
		for tid := 0; tid < 4; tid++ {
			s.Flush(tid)
		}
	}

	o := &Outcome{Scheme: scheme, Scenario: "figure2"}

	// T1 resumes: it re-reads 15's next pointer (perfectly stable: a
	// marked reference to node 43), protects 43, validates, and
	// dereferences.
	stall.Release()
	o.StalledOpErr = t1Task.Wait()

	fill(o, a, s)
	o.Bounded = true
	return o, nil
}

// findRef walks the list raw and returns the reference to the node with
// the given key. Only used on quiescent structures by the director.
func findRef(a *mem.Arena, l *harris.List, key int64) (mem.Ref, bool) {
	cur, err := a.Load(0, l.Head(), ds.WNext)
	for err == nil {
		r := mem.Ref(cur).WithoutMark()
		if r.IsNil() {
			break
		}
		k, kerr := a.Load(0, r, ds.WKey)
		if kerr != nil {
			break
		}
		if int64(k) == key {
			return r, true
		}
		cur, err = a.Load(0, r, ds.WNext)
	}
	return mem.NilRef, false
}
