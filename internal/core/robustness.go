package core

import (
	"fmt"

	"repro/internal/core/adversary"
	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/all"
)

// RobustnessSample is one point of the backlog-vs-churn curve.
type RobustnessSample struct {
	// Churn is the Figure 1 churn length K.
	Churn int
	// PeakRetired is the largest retired backlog during the run.
	PeakRetired uint64
}

// RobustnessReport classifies a scheme's measured robustness under the
// Theorem 6.1 workload: a stalled reader on Harris's list while the data
// structure is held at four active nodes. Definitions 5.1–5.2 bound the
// backlog by a function of max_active; with max_active pinned, any growth
// with the churn length disqualifies even weak robustness.
type RobustnessReport struct {
	Scheme  string
	Claimed string
	Samples []RobustnessSample
	// Bounded reports that the peak backlog did not track the churn.
	Bounded bool
	// MatchesClaim reports that the measurement agrees with the scheme's
	// claimed robustness class.
	MatchesClaim bool
}

// String renders the report.
func (r RobustnessReport) String() string {
	s := fmt.Sprintf("%-10s claimed %-13s measured ", r.Scheme, r.Claimed)
	if r.Bounded {
		s += "bounded  "
	} else {
		s += "UNBOUNDED"
	}
	for _, p := range r.Samples {
		s += fmt.Sprintf("  K=%d:%d", p.Churn, p.PeakRetired)
	}
	return s
}

// MeasureRobustness runs the Figure 1 execution at increasing churn
// lengths and classifies the backlog growth. churns must be increasing;
// nil selects a default sweep.
func MeasureRobustness(scheme string, churns []int) (RobustnessReport, error) {
	if len(churns) == 0 {
		churns = []int{250, 1000}
	}
	p, err := all.Props(scheme)
	if err != nil {
		return RobustnessReport{}, err
	}
	r := RobustnessReport{Scheme: scheme, Claimed: p.Robustness.String()}
	for _, k := range churns {
		o, err := adversary.Figure1(scheme, k, mem.Reuse)
		if err != nil {
			return RobustnessReport{}, err
		}
		r.Samples = append(r.Samples, RobustnessSample{Churn: k, PeakRetired: o.PeakRetired})
	}
	first, last := r.Samples[0], r.Samples[len(r.Samples)-1]
	// Bounded: quadrupling the churn must not (even close to) quadruple
	// the backlog; the slack absorbs retire-list thresholds.
	r.Bounded = last.PeakRetired <= 2*first.PeakRetired+64
	wantBounded := p.Robustness != smr.NotRobust // weak robustness suffices
	r.MatchesClaim = r.Bounded == wantBounded
	return r, nil
}
