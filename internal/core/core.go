// Package core implements the paper's formal machinery as executable
// checks: the safety condition of Definition 4.2, the robustness bounds of
// Definitions 5.1–5.2, the easy-integration conditions of Definition 5.3,
// the applicability conditions of Definition 5.4, and the ERA matrix whose
// empty all-yes row is Theorem 6.1.
package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/smr"
)

// SafetyReport aggregates the Definition 4.2 accounting of one run.
type SafetyReport struct {
	// UnsafeLoads and UnsafeStores count dereferences of invalid
	// references (Definition 4.1). They are tolerable when the scheme
	// discards the results (optimistic schemes).
	UnsafeLoads, UnsafeStores uint64
	// Faults counts accesses to system space — Condition 1 violations.
	Faults uint64
	// StaleUses counts stale values handed to the data structure —
	// Condition 3 violations.
	StaleUses uint64
	// Violations counts node life-cycle violations (double retire,
	// alloc of a live slot, ...).
	Violations uint64
}

// Safe reports Definition 4.2 compliance: unsafe accesses may exist, but
// no access faulted, no stale value escaped, and the life-cycle held.
func (r SafetyReport) Safe() bool {
	return r.Faults == 0 && r.StaleUses == 0 && r.Violations == 0
}

// String renders the report.
func (r SafetyReport) String() string {
	verdict := "safe"
	if !r.Safe() {
		verdict = "UNSAFE"
	}
	return fmt.Sprintf("%s (unsafe loads %d, unsafe stores %d, faults %d, stale uses %d, violations %d)",
		verdict, r.UnsafeLoads, r.UnsafeStores, r.Faults, r.StaleUses, r.Violations)
}

// Safety collects the report for a scheme bound to arena a.
func Safety(a *mem.Arena, s smr.Scheme) SafetyReport {
	sn := a.Stats().Snapshot()
	st := s.Stats().Snapshot()
	return SafetyReport{
		UnsafeLoads:  sn.UnsafeLoads,
		UnsafeStores: sn.UnsafeStores,
		Faults:       sn.Faults,
		StaleUses:    st.StaleUses,
		Violations:   sn.Violations,
	}
}

// IntegrationReport is the Definition 5.3 check list for one scheme. In
// this repository conditions 1–3 and 5 hold by construction (all schemes
// are objects behind one barrier interface and only touch their private
// metadata words); condition 4 — well-formedness of the integrated
// implementation — fails exactly when the scheme demands rollbacks, and
// the phase discipline of NBR-style schemes adds integration work beyond
// the allowed insertion points.
type IntegrationReport struct {
	Scheme string
	// ProvidedAsObject is Condition 1.
	ProvidedAsObject bool
	// InsertionPointsOnly is Condition 2 (begin/end, alloc/retire,
	// primitive replacements).
	InsertionPointsOnly bool
	// LinearizablePrimitives is Condition 3.
	LinearizablePrimitives bool
	// WellFormed is Condition 4: no control transfer out of a scheme
	// operation back into data-structure code (no rollbacks).
	WellFormed bool
	// LayoutRespected is Condition 5: only scheme-added fields accessed.
	LayoutRespected bool
	// PhaseDiscipline notes an extra integration obligation outside the
	// Definition's insertion points (read/write phase restructuring).
	PhaseDiscipline bool
	// Easy is the conjunction: the scheme is easily integrated.
	Easy bool
}

// ClassifyIntegration derives the Definition 5.3 report from a scheme's
// property sheet.
func ClassifyIntegration(name string, p smr.Props) IntegrationReport {
	r := IntegrationReport{
		Scheme:                 name,
		ProvidedAsObject:       true,
		InsertionPointsOnly:    true,
		LinearizablePrimitives: true,
		WellFormed:             !p.RequiresRollback,
		LayoutRespected:        true,
		PhaseDiscipline:        p.RequiresPhases,
	}
	r.Easy = r.ProvidedAsObject && r.InsertionPointsOnly && r.LinearizablePrimitives &&
		r.WellFormed && r.LayoutRespected && !r.PhaseDiscipline
	return r
}
