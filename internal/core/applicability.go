package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/ds"
	"repro/internal/ds/registry"
	"repro/internal/hist"
	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/all"
)

// WorkloadConfig sizes the randomized applicability workload.
type WorkloadConfig struct {
	// Threads is the concurrency level (default 4).
	Threads int
	// Rounds is the number of barrier-separated rounds (default 8).
	Rounds int
	// OpsPerThread is the operation count per thread per round
	// (default 3; Threads*OpsPerThread must stay within the
	// linearizability checker's window limit).
	OpsPerThread int
	// KeyRange is the key universe for set workloads (default 8).
	KeyRange int
	// Mode is the reclamation mode (type-preserving schemes force Reuse).
	Mode mem.ReclaimMode
	// Seed perturbs the workload.
	Seed uint64
	// StressOps is the per-thread length of the unrecorded high-contention
	// stress phase that precedes the linearizability-checked rounds. The
	// stress phase is what surfaces safety violations (condition 1 of
	// Definition 5.4) — use-after-free needs sustained concurrency, not
	// barrier-separated bursts. Default 4000; negative disables.
	StressOps int
}

func (c *WorkloadConfig) fill() {
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.Rounds <= 0 {
		c.Rounds = 8
	}
	if c.OpsPerThread <= 0 {
		c.OpsPerThread = 3
	}
	if c.KeyRange <= 0 {
		c.KeyRange = 8
	}
	if c.StressOps == 0 {
		c.StressOps = 4000
	}
}

// ApplicabilityReport is the Definition 5.4 verdict for one
// (scheme, structure) pair on one randomized concurrent run.
type ApplicabilityReport struct {
	Scheme    string
	Structure string
	// Safety is condition (1): the scheme is safe with respect to the
	// plain implementation.
	Safety SafetyReport
	// Linearizable is condition (2): the integrated implementation is
	// linearizable.
	Linearizable bool
	// Completed is the progress proxy for condition (3): every operation
	// returned without the structure detecting corruption or livelock.
	// (Lock-freedom itself is not decidable from a finite run; the
	// deterministic adversary executions cover the negative cases.)
	Completed bool
	// Applicable is the conjunction.
	Applicable bool
	// Detail carries the first failure description.
	Detail string
}

// String renders the report.
func (r ApplicabilityReport) String() string {
	verdict := "applicable"
	if !r.Applicable {
		verdict = "NOT applicable"
	}
	s := fmt.Sprintf("%s × %s: %s", r.Scheme, r.Structure, verdict)
	if r.Detail != "" {
		s += " (" + r.Detail + ")"
	}
	return s
}

type workRNG uint64

func (r *workRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// CheckApplicability runs the randomized concurrent workload for the pair
// and evaluates Definition 5.4. It validates the positive direction
// (Appendix A: EBR is applicable to everything); the negative direction
// for the protection-based schemes is deterministic only under the
// adversary executions, which the ERA matrix combines with this check.
func CheckApplicability(scheme, structure string, cfg WorkloadConfig) (ApplicabilityReport, error) {
	cfg.fill()
	info, err := registry.Get(structure)
	if err != nil {
		return ApplicabilityReport{}, err
	}
	props, err := all.Props(scheme)
	if err != nil {
		return ApplicabilityReport{}, err
	}
	mode := cfg.Mode
	if props.TypePreserving {
		mode = mem.Reuse
	}
	a := mem.NewArena(mem.Config{
		Slots:        1 << 15,
		PayloadWords: info.PayloadWords,
		MetaWords:    smr.MetaWords,
		Threads:      cfg.Threads,
		Mode:         mode,
	})
	s, err := all.New(scheme, a, cfg.Threads, 0)
	if err != nil {
		return ApplicabilityReport{}, err
	}

	rep := ApplicabilityReport{Scheme: scheme, Structure: structure, Completed: true}
	var spec hist.Spec
	var run func(tid int, r *workRNG, rec *hist.Recorder) error
	// quiesce empties the structure single-threaded so the checked rounds
	// start from the empty abstract state after the stress phase.
	var quiesce func() error

	switch info.Kind {
	case registry.KindSet:
		set, err := info.NewSet(s, ds.Options{})
		if err != nil {
			return rep, err
		}
		spec = hist.SetSpec{}
		run = func(tid int, r *workRNG, rec *hist.Recorder) error {
			key := int64(r.next() % uint64(cfg.KeyRange))
			switch r.next() % 3 {
			case 0:
				p := rec.Begin(tid, hist.OpInsert, key)
				ok, err := set.Insert(tid, key)
				if err != nil {
					return err
				}
				rec.End(tid, p, ok, 0)
			case 1:
				p := rec.Begin(tid, hist.OpDelete, key)
				ok, err := set.Delete(tid, key)
				if err != nil {
					return err
				}
				rec.End(tid, p, ok, 0)
			default:
				p := rec.Begin(tid, hist.OpContains, key)
				ok, err := set.Contains(tid, key)
				if err != nil {
					return err
				}
				rec.End(tid, p, ok, 0)
			}
			return nil
		}
		quiesce = func() error {
			for key := int64(0); key < int64(cfg.KeyRange); key++ {
				if _, err := set.Delete(0, key); err != nil {
					return err
				}
			}
			return nil
		}
	case registry.KindQueue:
		q, err := info.NewQueue(s, ds.Options{})
		if err != nil {
			return rep, err
		}
		spec = hist.QueueSpec{}
		run = func(tid int, r *workRNG, rec *hist.Recorder) error {
			if r.next()%2 == 0 {
				v := int64(r.next() % 1 << 16)
				p := rec.Begin(tid, hist.OpEnqueue, v)
				if err := q.Enqueue(tid, v); err != nil {
					return err
				}
				rec.End(tid, p, true, 0)
			} else {
				p := rec.Begin(tid, hist.OpDequeue, 0)
				v, ok, err := q.Dequeue(tid)
				if err != nil {
					return err
				}
				rec.End(tid, p, ok, v)
			}
			return nil
		}
		quiesce = func() error {
			for {
				_, ok, err := q.Dequeue(0)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
		}
	case registry.KindStack:
		st, err := info.NewStack(s, ds.Options{})
		if err != nil {
			return rep, err
		}
		spec = hist.StackSpec{}
		run = func(tid int, r *workRNG, rec *hist.Recorder) error {
			if r.next()%2 == 0 {
				v := int64(r.next() % 1 << 16)
				p := rec.Begin(tid, hist.OpPush, v)
				if err := st.Push(tid, v); err != nil {
					return err
				}
				rec.End(tid, p, true, 0)
			} else {
				p := rec.Begin(tid, hist.OpPop, 0)
				v, ok, err := st.Pop(tid)
				if err != nil {
					return err
				}
				rec.End(tid, p, ok, v)
			}
			return nil
		}
		quiesce = func() error {
			for {
				_, ok, err := st.Pop(0)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
		}
	default:
		return rep, fmt.Errorf("core: unknown structure kind %v", info.Kind)
	}

	rec := hist.NewRecorder(cfg.Threads)
	var windows [][]hist.Op
	var mu sync.Mutex
	var firstErr error

	// Phase 1: unrecorded stress. A throwaway recorder absorbs the
	// history; only safety and completion are evaluated.
	if cfg.StressOps > 0 {
		sink := hist.NewRecorder(cfg.Threads)
		var wg sync.WaitGroup
		for tid := 0; tid < cfg.Threads; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				r := workRNG(cfg.Seed ^ 0xabcdef ^ uint64(tid)<<48)
				for i := 0; i < cfg.StressOps; i++ {
					if err := run(tid, &r, sink); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}(tid)
		}
		wg.Wait()
		if firstErr == nil {
			if err := quiesce(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}

	// Phase 2: barrier-separated rounds with full history recording.
	for round := 0; firstErr == nil && round < cfg.Rounds; round++ {
		var wg sync.WaitGroup
		for tid := 0; tid < cfg.Threads; tid++ {
			wg.Add(1)
			go func(tid, round int) {
				defer wg.Done()
				r := workRNG(cfg.Seed + uint64(tid)<<40 + uint64(round)<<20)
				for i := 0; i < cfg.OpsPerThread; i++ {
					if err := run(tid, &r, rec); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}(tid, round)
		}
		wg.Wait()
		windows = append(windows, rec.History())
		rec.Reset()
	}

	if firstErr != nil {
		rep.Completed = false
		rep.Detail = "operation failed: " + firstErr.Error()
		if errors.Is(firstErr, ds.ErrCorrupted) {
			rep.Detail = "structure corrupted (livelock or recycled-memory cycle)"
		}
	}
	rep.Safety = Safety(a, s)
	if rep.Completed {
		ok, err := hist.CheckChained(spec, windows)
		if err != nil {
			return rep, err
		}
		rep.Linearizable = ok
		if !ok && rep.Detail == "" {
			rep.Detail = "history not linearizable"
		}
	}
	if !rep.Safety.Safe() && rep.Detail == "" {
		rep.Detail = rep.Safety.String()
	}
	rep.Applicable = rep.Safety.Safe() && rep.Linearizable && rep.Completed
	return rep, nil
}
