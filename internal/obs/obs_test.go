package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/obs/rec"
	"repro/internal/smr"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func newTestStore(t *testing.T, r *rec.Recorder) *store.Store {
	t.Helper()
	st, err := store.New(store.Config{
		Shards:   store.Uniform(2, store.ShardSpec{Scheme: "ebr", Structure: "hashmap", Workers: 2}),
		KeyRange: 256,
		Recorder: r,
	})
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	return st
}

// TestMetricsDuringLiveMigration is the acceptance check: /metrics keeps
// rendering every ShardGauges field and a coherent current-scheme label
// while a migration swaps a shard under live traffic. Run with -race.
func TestMetricsDuringLiveMigration(t *testing.T) {
	r := rec.NewRecorder(nil, 0)
	st := newTestStore(t, r)
	defer st.Close()
	reg := &Registry{Store: st, Recorder: r}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			k := seed
			for !stop.Load() {
				k = (k*1103515245 + 12345) % 256
				if k < 0 {
					k = -k
				}
				_, _ = st.Insert(k)
				_, _ = st.Contains(k)
				_, _ = st.Delete(k)
			}
		}(int64(w + 1))
	}

	wg.Add(1)
	migErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		schemes := []string{"ibr", "hp", "ebr"}
		for i, s := range schemes {
			if err := st.MigrateShard(i%2, s); err != nil {
				migErr <- fmt.Errorf("migrate %d -> %s: %w", i%2, s, err)
				return
			}
		}
		migErr <- nil
	}()

	wanted := []string{
		"era_shard_info", "era_shard_ops_total", "era_shard_retired",
		"era_shard_retired_max", "era_shard_active", "era_shard_active_max",
		"era_shard_trav_steps_total", "era_shard_trav_restarts_total",
		"era_shard_guard_trips_total", "era_shard_epoch",
		"era_shard_migrations_total", "era_recorder_events_total",
	}
	deadline := time.After(2 * time.Second)
	rendered := 0
renderLoop:
	for {
		select {
		case err := <-migErr:
			if err != nil {
				t.Fatal(err)
			}
			break renderLoop
		case <-deadline:
			t.Fatal("migrations did not finish in 2s")
		default:
			var buf bytes.Buffer
			if err := reg.WriteMetrics(&buf); err != nil {
				t.Fatalf("WriteMetrics: %v", err)
			}
			out := buf.String()
			for _, w := range wanted {
				if !strings.Contains(out, w) {
					t.Fatalf("metrics output missing %q", w)
				}
			}
			// Exactly one scheme label per shard, even mid-swap.
			for s := 0; s < 2; s++ {
				if n := strings.Count(out, fmt.Sprintf(`era_shard_info{shard="%d"`, s)); n != 1 {
					t.Fatalf("shard %d has %d info rows, want 1\n%s", s, n, out)
				}
			}
			rendered++
		}
	}
	stop.Store(true)
	wg.Wait()
	if rendered == 0 {
		t.Fatal("no metrics renders overlapped the migrations")
	}

	// The recorder saw the swaps.
	var starts, dones int
	for _, ev := range r.Snapshot() {
		switch ev.Kind {
		case rec.KindMigrationStart:
			starts++
		case rec.KindMigrationDone:
			dones++
		}
	}
	if starts != 3 || dones != 3 {
		t.Fatalf("recorded %d starts / %d dones, want 3/3", starts, dones)
	}

	var buf bytes.Buffer
	if err := reg.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	// After ibr→hp→ebr round-trips the final schemes are hp (shard 0) and
	// hp? — shard assignment is i%2: 0→ibr, 1→hp, 0→ebr. Check labels.
	out := buf.String()
	if !strings.Contains(out, `shard="0",scheme="ebr"`) {
		t.Fatalf("shard 0 should end on ebr:\n%s", out)
	}
	if !strings.Contains(out, `shard="1",scheme="hp"`) {
		t.Fatalf("shard 1 should end on hp:\n%s", out)
	}
}

func TestBuildTimelineCompleteChain(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	events := []rec.Event{
		{At: ms(10), Kind: rec.KindFaultFire, Shard: 0, A: 1, B: 500, Label: "delayed-release"},
		{At: ms(14), Kind: rec.KindSMRScan, Shard: 0, A: 40, B: 0},
		{At: ms(18), Kind: rec.KindVerdict, Shard: 0, A: 0, B: 2, Label: "ebr:robust→not-robust"},
		{At: ms(20), Kind: rec.KindLadderMove, Shard: 0, A: 1, B: 0, Label: "ebr→ibr: audit"},
		{At: ms(21), Kind: rec.KindMigrationStart, Shard: 0, Label: "ebr→ibr"},
		{At: ms(25), Kind: rec.KindMigrationDone, Shard: 0, A: 120, B: 50_000},
		{At: ms(40), Kind: rec.KindFaultHeal, Shard: 0, A: 1, Label: "delayed-release"},
	}
	series := map[int][]telemetry.Point{
		0: {
			{Elapsed: ms(5), Retired: 10},
			{Elapsed: ms(12), Retired: 12},
			{Elapsed: ms(16), Retired: 60},
		},
	}
	tl := BuildTimeline(events, series, ms(100))
	if len(tl.Incidents) != 1 {
		t.Fatalf("got %d incidents, want 1", len(tl.Incidents))
	}
	in := tl.Incidents[0]
	if !in.Complete || !tl.Complete() {
		t.Fatalf("chain should be complete: %+v", in)
	}
	if in.DetectionLatency != ms(8) {
		t.Fatalf("detection latency = %v, want 8ms", in.DetectionLatency)
	}
	if in.ReactionLatency != ms(3) {
		t.Fatalf("reaction latency = %v, want 3ms", in.ReactionLatency)
	}
	if in.InflectionAt != ms(16) {
		t.Fatalf("inflection = %v, want 16ms", in.InflectionAt)
	}
	if in.HealedAt != ms(40) || in.Migration != "ebr→ibr" {
		t.Fatalf("bad stages: %+v", in)
	}
	if tl.LadderMoves != 1 || tl.Reversals != 0 {
		t.Fatalf("moves=%d reversals=%d, want 1/0", tl.LadderMoves, tl.Reversals)
	}
	if tl.FlapRatePerSec != 10 { // 1 move / 0.1s
		t.Fatalf("flap rate = %v, want 10", tl.FlapRatePerSec)
	}
}

func TestBuildTimelineIncompleteAndReversal(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	events := []rec.Event{
		{At: ms(10), Kind: rec.KindFaultFire, Shard: 1, A: 1, Label: "leaker"},
		{At: ms(15), Kind: rec.KindVerdict, Shard: 1, A: 0, B: 2, Label: "ebr:robust→not-robust"},
		// No migration, no heal: the chain must read incomplete with -1
		// reaction latency.
		{At: ms(20), Kind: rec.KindLadderMove, Shard: 1, A: 1, B: 0, Label: "ebr→ibr: audit"},
		{At: ms(30), Kind: rec.KindLadderMove, Shard: 1, A: 0, B: 1, Label: "ibr→ebr: recovered"},
	}
	tl := BuildTimeline(events, nil, ms(100))
	if len(tl.Incidents) != 1 {
		t.Fatalf("got %d incidents, want 1", len(tl.Incidents))
	}
	in := tl.Incidents[0]
	if in.Complete || tl.Complete() {
		t.Fatal("chain should be incomplete")
	}
	if in.DetectionLatency != ms(5) {
		t.Fatalf("detection latency = %v, want 5ms", in.DetectionLatency)
	}
	if in.ReactionLatency != -1 {
		t.Fatalf("reaction latency = %v, want -1", in.ReactionLatency)
	}
	if tl.LadderMoves != 2 || tl.Reversals != 1 {
		t.Fatalf("moves=%d reversals=%d, want 2/1", tl.LadderMoves, tl.Reversals)
	}
	// Improving verdicts (A > B) must not key detection.
	tl2 := BuildTimeline([]rec.Event{
		{At: ms(10), Kind: rec.KindFaultFire, Shard: 0, A: 1, Label: "x"},
		{At: ms(12), Kind: rec.KindVerdict, Shard: 0, A: 2, B: 0, Label: "improving"},
	}, nil, ms(50))
	if tl2.Incidents[0].VerdictAt != 0 {
		t.Fatal("improving verdict must not count as detection")
	}
}

func TestTimelineEmpty(t *testing.T) {
	tl := BuildTimeline(nil, nil, time.Second)
	if tl.Complete() {
		t.Fatal("empty timeline must not read complete")
	}
}

func TestServerEndpoints(t *testing.T) {
	r := rec.NewRecorder(nil, 0)
	st := newTestStore(t, r)
	defer st.Close()
	_, _ = st.Insert(1)
	r.Record(rec.KindMark, -1, 0, 0, 0, "boot")

	srv, err := Serve("127.0.0.1:0", &Registry{Store: st, Recorder: r})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "era_shard_ops_total") {
		t.Fatalf("/metrics: code=%d body=%.120s", code, body)
	}
	code, body := get("/timeline")
	if code != 200 {
		t.Fatalf("/timeline: code=%d", code)
	}
	var view TimelineView
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("/timeline not JSON: %v\n%s", err, body)
	}
	found := false
	for _, ev := range view.Events {
		if ev.Kind == rec.KindMark && ev.Label == "boot" {
			found = true
		}
	}
	if !found {
		t.Fatalf("/timeline missing the mark event: %s", body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code=%d body=%.120s", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("/nope: code=%d, want 404", code)
	}
}

func TestSLOMonitorBreachAndClear(t *testing.T) {
	clock := rec.NewClock()
	r := rec.NewRecorder(clock, 0)
	m := NewSLO(time.Millisecond, 64, clock, r)
	for i := 0; i < 32; i++ {
		m.Observe(10 * time.Millisecond) // all over target
	}
	m.Eval()
	s := m.Snapshot()
	if !s.Breached || s.Breaches != 1 {
		t.Fatalf("expected breach: %+v", s)
	}
	for i := 0; i < 64; i++ {
		m.Observe(10 * time.Microsecond)
	}
	m.Eval()
	s = m.Snapshot()
	if s.Breached || s.Breaches != 1 {
		t.Fatalf("expected clear: %+v", s)
	}
	var breach, clear int
	for _, ev := range r.Snapshot() {
		switch ev.Kind {
		case rec.KindSLOBreach:
			breach++
		case rec.KindSLOClear:
			clear++
		}
	}
	if breach != 1 || clear != 1 {
		t.Fatalf("recorded breach=%d clear=%d, want 1/1", breach, clear)
	}
	if len(s.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(s.Points))
	}
	// Stop without Start must not hang.
	m.Stop()
}

func TestWriteChromeTrace(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	events := []rec.Event{
		{At: ms(10), Kind: rec.KindFaultFire, Shard: 0, A: 1, B: 500, Label: "stall"},
		{At: ms(12), Kind: rec.KindVerdict, Shard: 0, A: 0, B: 2, Label: "flip"},
		{At: ms(14), Kind: rec.KindMigrationStart, Shard: 0, Label: "ebr→hp"},
		{At: ms(18), Kind: rec.KindMigrationDone, Shard: 0, A: 10, B: 1000},
		{At: ms(30), Kind: rec.KindFaultHeal, Shard: 0, A: 1, Label: "stall"},
		{At: ms(11), Kind: rec.KindSMRScan, Shard: 0, Tid: 1, A: 8, B: 4},
	}
	series := map[int][]telemetry.Point{0: {{Elapsed: ms(9), Retired: 3}}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, series); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	var faultDur, migDur float64
	for _, ev := range tf.TraceEvents {
		name, _ := ev["name"].(string)
		switch {
		case strings.HasPrefix(name, "fault:"):
			faultDur, _ = ev["dur"].(float64)
		case strings.HasPrefix(name, "migrate:"):
			migDur, _ = ev["dur"].(float64)
		}
	}
	if faultDur != 20_000 { // 10ms→30ms in µs
		t.Fatalf("fault span dur = %v µs, want 20000", faultDur)
	}
	if migDur != 4000 {
		t.Fatalf("migration span dur = %v µs, want 4000", migDur)
	}
}

func TestVerdictHookRecords(t *testing.T) {
	r := rec.NewRecorder(nil, 0)
	hook := VerdictHook(r)
	hook(3, smr.Robust, smr.NotRobust, telemetry.Verdict{Scheme: "ebr"})
	evs := r.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Kind != rec.KindVerdict || ev.Shard != 3 || ev.A != 0 || ev.B != 2 {
		t.Fatalf("bad verdict event: %+v", ev)
	}
	if !strings.Contains(ev.Label, "ebr:") {
		t.Fatalf("bad label: %q", ev.Label)
	}
}

// TestExecMetricsFamilies checks the execution-layer export: after real
// fan-out traffic (including sheds on a degraded shard), /metrics
// renders the request ledger by kind and the per-shard admission
// picture.
func TestExecMetricsFamilies(t *testing.T) {
	st := newTestStore(t, nil)
	defer st.Close()
	ex, err := exec.New(st, exec.Config{QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if h, err := ex.MultiInsert([]int64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	} else if h.Wait().Partial() {
		t.Fatal("healthy multiinsert partial")
	}
	if h, err := ex.RangeScan(0, 256, 0); err != nil {
		t.Fatal(err)
	} else {
		h.Wait()
	}
	// Shed accounting itself is pinned by the exec package's own tests;
	// here only the degradation gauge needs to move.
	ex.SetDegraded(0, true)

	var buf bytes.Buffer
	reg := &Registry{Store: st, Exec: ex}
	if err := reg.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`era_exec_requests_total{kind="multiinsert"} 1`,
		`era_exec_requests_total{kind="rangescan"} 1`,
		"era_exec_completed_total 2",
		"era_exec_partial_total 0",
		`era_exec_legs_total{shard="0"}`,
		`era_exec_sheds_total{shard="1"} 0`,
		`era_exec_leg_timeouts_total{shard="0"} 0`,
		`era_exec_queue_cap{shard="0"} 1`,
		`era_exec_degraded{shard="0"} 1`,
		`era_exec_degraded{shard="1"} 0`,
		`era_exec_stalled_calls{shard="0"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
}
