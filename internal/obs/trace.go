package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/obs/rec"
	"repro/internal/telemetry"
)

// traceEvent is one Chrome trace-event (the chrome://tracing / Perfetto
// JSON format): ph "X" spans carry a dur, "i" instants a scope, "C"
// counters a numeric args map. Timestamps are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Metadata        map[string]string `json:"otherData,omitempty"`
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChromeTrace renders a recorder snapshot (plus, when given, the
// per-shard telemetry series as counter tracks) as a Chrome trace-event
// file: load it at chrome://tracing or ui.perfetto.dev. Each shard is a
// process row; faults and migrations appear as spans, verdict flips and
// guard trips as instants, and the retired backlog as a counter track.
func WriteChromeTrace(w io.Writer, events []rec.Event, series map[int][]telemetry.Point) error {
	evs := append([]rec.Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })

	var out []traceEvent
	pid := func(shard int) int { return shard + 1 } // pid 0 renders oddly

	// Span pairing state: fires await heals, migration starts await
	// done/fail, breaches await clears.
	type open struct {
		idx int // index in out of the provisional span
	}
	openFault := map[[2]any]open{} // {shard, episode}
	openMig := map[int]open{}      // shard
	openSLO := -1

	for _, ev := range evs {
		switch ev.Kind {
		case rec.KindFaultFire:
			out = append(out, traceEvent{
				Name: "fault:" + ev.Label, Ph: "X", Ts: us(ev.At), Dur: 0,
				Pid: pid(ev.Shard), Tid: 0,
				Args: map[string]any{"episode": ev.A, "intensity_milli": ev.B},
			})
			openFault[[2]any{ev.Shard, ev.A}] = open{idx: len(out) - 1}
		case rec.KindFaultHeal:
			if o, ok := openFault[[2]any{ev.Shard, ev.A}]; ok {
				out[o.idx].Dur = us(ev.At) - out[o.idx].Ts
				delete(openFault, [2]any{ev.Shard, ev.A})
			}
		case rec.KindMigrationStart:
			out = append(out, traceEvent{
				Name: "migrate:" + ev.Label, Ph: "X", Ts: us(ev.At), Dur: 0,
				Pid: pid(ev.Shard), Tid: 1,
			})
			openMig[ev.Shard] = open{idx: len(out) - 1}
		case rec.KindMigrationDone, rec.KindMigrationFail:
			if o, ok := openMig[ev.Shard]; ok {
				out[o.idx].Dur = us(ev.At) - out[o.idx].Ts
				if ev.Kind == rec.KindMigrationFail {
					out[o.idx].Name = "migrate-fail:" + ev.Label
				} else {
					out[o.idx].Args = map[string]any{"keys": ev.A, "swap_window_ns": ev.B}
				}
				delete(openMig, ev.Shard)
			}
		case rec.KindSLOBreach:
			out = append(out, traceEvent{
				Name: "slo-breach", Ph: "X", Ts: us(ev.At), Dur: 0, Pid: 0, Tid: 0,
				Args: map[string]any{"p99_ns": ev.A, "target_ns": ev.B},
			})
			openSLO = len(out) - 1
		case rec.KindSLOClear:
			if openSLO >= 0 {
				out[openSLO].Dur = us(ev.At) - out[openSLO].Ts
				openSLO = -1
			}
		case rec.KindSMRScan:
			// Scan batches are dense; a per-thread instant each would
			// drown the view. Only reclaiming scans are worth a mark.
			if ev.B > 0 {
				out = append(out, traceEvent{
					Name: "scan", Ph: "i", Ts: us(ev.At), Pid: pid(ev.Shard),
					Tid: ev.Tid, S: "t",
					Args: map[string]any{"scanned": ev.A, "reclaimed": ev.B},
				})
			}
		default:
			out = append(out, traceEvent{
				Name: ev.Kind.String() + labelSuffix(ev.Label), Ph: "i",
				Ts: us(ev.At), Pid: pid(ev.Shard), Tid: ev.Tid, S: "p",
				Args: map[string]any{"a": ev.A, "b": ev.B},
			})
		}
	}

	// The retired backlog as a per-shard counter track: the trajectory
	// Definitions 5.1–5.2 are about, beside the events that bent it.
	var shards []int
	for s := range series {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	for _, s := range shards {
		for _, p := range series[s] {
			out = append(out, traceEvent{
				Name: "retired", Ph: "C", Ts: us(p.Elapsed), Pid: pid(s),
				Args: map[string]any{"retired": p.Retired},
			})
		}
	}

	// Name the process rows.
	meta := make([]traceEvent, 0, len(shards)+1)
	named := map[int]bool{}
	for _, ev := range out {
		if ev.Pid > 0 && !named[ev.Pid] {
			named[ev.Pid] = true
			meta = append(meta, traceEvent{
				Name: "process_name", Ph: "M", Pid: ev.Pid,
				Args: map[string]any{"name": fmt.Sprintf("shard %d", ev.Pid-1)},
			})
		}
	}
	meta = append(meta, traceEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "service"},
	})

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{
		TraceEvents:     append(meta, out...),
		DisplayTimeUnit: "ms",
	})
}

func labelSuffix(l string) string {
	if l == "" {
		return ""
	}
	return ":" + l
}
