package obs

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs/rec"
)

// SLOMonitor tracks the windowed p99 service-request latency against an
// objective, turning "robust but slow" into a detectable state: breach
// and clear transitions are stamped into the flight recorder next to the
// backlog verdicts, and the p99 series is kept for the obs report.
//
// Clients feed it raw request latencies (Observe, from the request path,
// striped to stay cheap); Eval computes the p99 over the last Window
// observations and latches the breach state. Drive Eval from a ticker
// (Start/Stop) or call it directly from a harness loop.
type SLOMonitor struct {
	target   time.Duration
	window   int
	rec      *rec.Recorder
	clock    *rec.Clock
	interval time.Duration

	mu    sync.Mutex
	ring  []time.Duration
	head  int
	n     int
	tmp   []time.Duration // reused sort scratch, under mu
	p99   time.Duration
	over  bool
	trans uint64
	pts   []SLOPoint

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// SLOPoint is one p99 evaluation for the report series.
type SLOPoint struct {
	At  time.Duration `json:"at_ns"`
	P99 time.Duration `json:"p99_ns"`
	// Breached marks evaluations whose p99 sat above the objective.
	Breached bool `json:"breached,omitempty"`
}

// SLOSnapshot is the monitor's live state.
type SLOSnapshot struct {
	Target   time.Duration `json:"target_ns"`
	P99      time.Duration `json:"p99_ns"`
	Breached bool          `json:"breached"`
	// Breaches counts clear→breach transitions, not breached windows.
	Breaches uint64     `json:"breaches"`
	Points   []SLOPoint `json:"points,omitempty"`
}

// NewSLO builds a monitor with the given p99 objective over a ring of
// window observations (0 selects 512). Clock and recorder are optional:
// nil clock starts a private one, nil recorder drops the transition
// events.
func NewSLO(target time.Duration, window int, clock *rec.Clock, r *rec.Recorder) *SLOMonitor {
	if window <= 0 {
		window = 512
	}
	if clock == nil {
		clock = rec.NewClock()
	}
	return &SLOMonitor{
		target: target,
		window: window,
		rec:    r,
		clock:  clock,
		ring:   make([]time.Duration, window),
		tmp:    make([]time.Duration, 0, window),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Observe records one service-request latency.
func (m *SLOMonitor) Observe(d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.ring[m.head] = d
	m.head = (m.head + 1) % len(m.ring)
	if m.n < len(m.ring) {
		m.n++
	}
	m.mu.Unlock()
}

// Eval recomputes the windowed p99 and latches breach transitions. A
// window with fewer than 8 observations is skipped — a p99 of three
// requests is noise, and a breach latched on it would flap.
func (m *SLOMonitor) Eval() {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.n < 8 {
		m.mu.Unlock()
		return
	}
	m.tmp = m.tmp[:0]
	for i := 0; i < m.n; i++ {
		m.tmp = append(m.tmp, m.ring[i])
	}
	sort.Slice(m.tmp, func(i, j int) bool { return m.tmp[i] < m.tmp[j] })
	p99 := m.tmp[(len(m.tmp)*99)/100]
	m.p99 = p99
	over := m.target > 0 && p99 > m.target
	fire, clear := false, false
	if over != m.over {
		m.over = over
		if over {
			m.trans++
			fire = true
		} else {
			clear = true
		}
	}
	m.pts = append(m.pts, SLOPoint{At: m.clock.Now(), P99: p99, Breached: over})
	m.mu.Unlock()
	if fire {
		m.rec.Record(rec.KindSLOBreach, -1, 0, uint64(p99), uint64(m.target), "")
	}
	if clear {
		m.rec.Record(rec.KindSLOClear, -1, 0, uint64(p99), uint64(m.target), "")
	}
}

// Start drives Eval on a ticker until Stop; interval 0 selects 5ms.
func (m *SLOMonitor) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	m.interval = interval
	go func() {
		defer close(m.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.Eval()
			}
		}
	}()
}

// Stop halts the ticker, takes a final evaluation, and waits for the
// goroutine. Idempotent; safe without Start only via direct Eval use.
func (m *SLOMonitor) Stop() {
	m.stopOnce.Do(func() {
		close(m.stop)
		if m.interval > 0 {
			<-m.done
		}
		m.Eval()
	})
}

// Snapshot copies the live state, p99 series included.
func (m *SLOMonitor) Snapshot() SLOSnapshot {
	if m == nil {
		return SLOSnapshot{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return SLOSnapshot{
		Target:   m.target,
		P99:      m.p99,
		Breached: m.over,
		Breaches: m.trans,
		Points:   append([]SLOPoint(nil), m.pts...),
	}
}
