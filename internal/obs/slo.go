package obs

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs/rec"
)

// SLOMonitor tracks the windowed p99 service-request latency against an
// objective, turning "robust but slow" into a detectable state: breach
// and clear transitions are stamped into the flight recorder next to the
// backlog verdicts, and the p99 series is kept for the obs report.
//
// Clients feed it raw request latencies (Observe, from the request path,
// striped to stay cheap); Eval computes the p99 over the last Window
// observations and latches the breach state. Drive Eval from a ticker
// (Start/Stop) or call it directly from a harness loop.
type SLOMonitor struct {
	target   time.Duration
	window   int
	rec      *rec.Recorder
	clock    *rec.Clock
	interval time.Duration
	// shard scopes the monitor's transition events: -1 for the classic
	// store-wide monitor, a shard id inside an SLOSet.
	shard int
	// onTransition, when set, fires outside the lock on every
	// breach/clear flip — the bridge that promotes SLO state into the
	// telemetry verdict dimension.
	onTransition func(breached bool)

	mu    sync.Mutex
	ring  []time.Duration
	head  int
	n     int
	tmp   []time.Duration // reused sort scratch, under mu
	p99   time.Duration
	over  bool
	trans uint64
	pts   []SLOPoint

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// SLOPoint is one p99 evaluation for the report series.
type SLOPoint struct {
	At  time.Duration `json:"at_ns"`
	P99 time.Duration `json:"p99_ns"`
	// Breached marks evaluations whose p99 sat above the objective.
	Breached bool `json:"breached,omitempty"`
}

// SLOSnapshot is the monitor's live state.
type SLOSnapshot struct {
	Target   time.Duration `json:"target_ns"`
	P99      time.Duration `json:"p99_ns"`
	Breached bool          `json:"breached"`
	// Breaches counts clear→breach transitions, not breached windows.
	Breaches uint64     `json:"breaches"`
	Points   []SLOPoint `json:"points,omitempty"`
}

// NewSLO builds a monitor with the given p99 objective over a ring of
// window observations (0 selects 512). Clock and recorder are optional:
// nil clock starts a private one, nil recorder drops the transition
// events.
func NewSLO(target time.Duration, window int, clock *rec.Clock, r *rec.Recorder) *SLOMonitor {
	if window <= 0 {
		window = 512
	}
	if clock == nil {
		clock = rec.NewClock()
	}
	return &SLOMonitor{
		target: target,
		window: window,
		rec:    r,
		clock:  clock,
		shard:  -1,
		ring:   make([]time.Duration, window),
		tmp:    make([]time.Duration, 0, window),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// NewShardSLO is NewSLO scoped to one shard: its breach/clear events
// carry the shard id, and fn (optional) fires on every transition —
// typically telemetry.Monitor.SetSLO, promoting the breach into the
// shard's verdict dimension.
func NewShardSLO(shard int, target time.Duration, window int, clock *rec.Clock, r *rec.Recorder, fn func(breached bool)) *SLOMonitor {
	m := NewSLO(target, window, clock, r)
	m.shard = shard
	m.onTransition = fn
	return m
}

// Observe records one service-request latency.
func (m *SLOMonitor) Observe(d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.ring[m.head] = d
	m.head = (m.head + 1) % len(m.ring)
	if m.n < len(m.ring) {
		m.n++
	}
	m.mu.Unlock()
}

// Eval recomputes the windowed p99 and latches breach transitions. A
// window with fewer than 8 observations is skipped — a p99 of three
// requests is noise, and a breach latched on it would flap.
func (m *SLOMonitor) Eval() {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.n < 8 {
		m.mu.Unlock()
		return
	}
	m.tmp = m.tmp[:0]
	for i := 0; i < m.n; i++ {
		m.tmp = append(m.tmp, m.ring[i])
	}
	sort.Slice(m.tmp, func(i, j int) bool { return m.tmp[i] < m.tmp[j] })
	p99 := m.tmp[(len(m.tmp)*99)/100]
	m.p99 = p99
	over := m.target > 0 && p99 > m.target
	fire, clear := false, false
	if over != m.over {
		m.over = over
		if over {
			m.trans++
			fire = true
		} else {
			clear = true
		}
	}
	m.pts = append(m.pts, SLOPoint{At: m.clock.Now(), P99: p99, Breached: over})
	m.mu.Unlock()
	if fire {
		m.rec.Record(rec.KindSLOBreach, m.shard, 0, uint64(p99), uint64(m.target), "")
	}
	if clear {
		m.rec.Record(rec.KindSLOClear, m.shard, 0, uint64(p99), uint64(m.target), "")
	}
	if (fire || clear) && m.onTransition != nil {
		m.onTransition(fire)
	}
}

// Start drives Eval on a ticker until Stop; interval 0 selects 5ms.
func (m *SLOMonitor) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	m.interval = interval
	go func() {
		defer close(m.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.Eval()
			}
		}
	}()
}

// Stop halts the ticker, takes a final evaluation, and waits for the
// goroutine. Idempotent; safe without Start only via direct Eval use.
func (m *SLOMonitor) Stop() {
	m.stopOnce.Do(func() {
		close(m.stop)
		if m.interval > 0 {
			<-m.done
		}
		m.Eval()
	})
}

// SLOSet fans the SLO out per shard: one SLOMonitor per shard over the
// per-shard leg-latency feed (resil.Config.OnLegLatency), each wired to
// a transition hook — typically telemetry.Monitor.SetSLO — so the
// verdict plane can distinguish a shard that is "robust but slow" from
// one that is not robust. A nil *SLOSet is usable and inert.
type SLOSet struct {
	mons []*SLOMonitor
}

// NewSLOSet builds shards per-shard monitors with a shared objective.
// fn (optional) receives every (shard, breached) transition.
func NewSLOSet(shards int, target time.Duration, window int, clock *rec.Clock, r *rec.Recorder, fn func(shard int, breached bool)) *SLOSet {
	set := &SLOSet{}
	for s := 0; s < shards; s++ {
		shard := s
		var hook func(bool)
		if fn != nil {
			hook = func(breached bool) { fn(shard, breached) }
		}
		set.mons = append(set.mons, NewShardSLO(shard, target, window, clock, r, hook))
	}
	return set
}

// Observe records one latency against shard s's objective — the
// signature matches resil.Config.OnLegLatency.
func (set *SLOSet) Observe(s int, d time.Duration) {
	if set == nil || s < 0 || s >= len(set.mons) {
		return
	}
	set.mons[s].Observe(d)
}

// Start drives every shard monitor's evaluation ticker.
func (set *SLOSet) Start(interval time.Duration) {
	if set == nil {
		return
	}
	for _, m := range set.mons {
		m.Start(interval)
	}
}

// Stop halts every shard monitor (final evaluations included).
func (set *SLOSet) Stop() {
	if set == nil {
		return
	}
	for _, m := range set.mons {
		m.Stop()
	}
}

// Breached reports shard s's current latch.
func (set *SLOSet) Breached(s int) bool {
	if set == nil || s < 0 || s >= len(set.mons) {
		return false
	}
	m := set.mons[s]
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.over
}

// Snapshots returns every shard monitor's snapshot, indexed by shard.
func (set *SLOSet) Snapshots() []SLOSnapshot {
	if set == nil {
		return nil
	}
	out := make([]SLOSnapshot, len(set.mons))
	for s, m := range set.mons {
		out[s] = m.Snapshot()
	}
	return out
}

// Snapshot copies the live state, p99 series included.
func (m *SLOMonitor) Snapshot() SLOSnapshot {
	if m == nil {
		return SLOSnapshot{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return SLOSnapshot{
		Target:   m.target,
		P99:      m.p99,
		Breached: m.over,
		Breaches: m.trans,
		Points:   append([]SLOPoint(nil), m.pts...),
	}
}
