package obs

import (
	"sort"
	"time"

	"repro/internal/obs/rec"
	"repro/internal/telemetry"
)

// Incident is one joined fault lifecycle: the chain the recorder's
// streams evidence for a single injected episode on a single shard.
// Times are run-clock stamps; absent stages read zero and the latencies
// read -1, so "finite" means "the chain actually closed".
type Incident struct {
	Shard   int           `json:"shard"`
	Fault   string        `json:"fault"`
	Episode int           `json:"episode"`
	FiredAt time.Duration `json:"fired_at_ns"`
	// InflectionAt is when the shard's sampled retired backlog first
	// rose clearly above its pre-fault baseline (zero when it never did
	// — a fault a robust scheme absorbs leaves no inflection).
	InflectionAt time.Duration `json:"inflection_at_ns,omitempty"`
	// VerdictAt is the first worsening audited-class flip at or after
	// the fire — the moment the monitor *detected* the fault.
	VerdictAt time.Duration `json:"verdict_at_ns,omitempty"`
	Verdict   string        `json:"verdict,omitempty"`
	// MigrationStartAt/DoneAt bracket the controller's reaction.
	MigrationStartAt time.Duration `json:"migration_start_at_ns,omitempty"`
	MigrationDoneAt  time.Duration `json:"migration_done_at_ns,omitempty"`
	Migration        string        `json:"migration,omitempty"`
	HealedAt         time.Duration `json:"healed_at_ns,omitempty"`
	// DetectionLatency = VerdictAt − FiredAt; ReactionLatency =
	// MigrationStartAt − VerdictAt. −1 when the stage never happened.
	DetectionLatency time.Duration `json:"detection_latency_ns"`
	ReactionLatency  time.Duration `json:"reaction_latency_ns"`
	// Complete reports the full fault → verdict → migration → heal
	// chain closed.
	Complete bool `json:"complete"`
}

// Timeline is the causality report: per-incident chains plus the
// controller-stability metrics ROADMAP item 4 asks for.
type Timeline struct {
	Incidents []Incident `json:"incidents"`
	// LadderMoves counts adaptive migration decisions in the window;
	// Reversals counts A→B moves later undone by B→A on the same shard
	// — the flap signature.
	LadderMoves int `json:"ladder_moves"`
	Reversals   int `json:"reversals"`
	// FlapRatePerSec is LadderMoves over the observed span.
	FlapRatePerSec float64 `json:"flap_rate_per_sec"`
	// Span is the window the rate is normalized by.
	Span time.Duration `json:"span_ns"`
}

// Complete reports whether every incident's chain closed.
func (t Timeline) Complete() bool {
	for _, in := range t.Incidents {
		if !in.Complete {
			return false
		}
	}
	return len(t.Incidents) > 0
}

// BuildTimeline joins a recorder snapshot (and, when given, the
// per-shard telemetry series for backlog inflections) into per-incident
// causal chains. span is the run window flap rate is normalized by;
// pass the traffic duration.
func BuildTimeline(events []rec.Event, series map[int][]telemetry.Point, span time.Duration) Timeline {
	evs := append([]rec.Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })

	var tl Timeline
	tl.Span = span
	for i, ev := range evs {
		if ev.Kind != rec.KindFaultFire {
			continue
		}
		in := Incident{
			Shard:            ev.Shard,
			Fault:            ev.Label,
			Episode:          int(ev.A),
			FiredAt:          ev.At,
			DetectionLatency: -1,
			ReactionLatency:  -1,
		}
		// Walk forward from the fire, claiming the first matching stage
		// of each kind on this shard. Later fires re-scan from their own
		// position, so overlapping episodes attribute stages to the
		// earliest fire that explains them — the conservative join.
		for _, e := range evs[i+1:] {
			if e.Shard != in.Shard {
				continue
			}
			switch e.Kind {
			case rec.KindVerdict:
				// A = new class, B = old class; worsening = detection.
				if in.VerdictAt == 0 && e.A < e.B {
					in.VerdictAt, in.Verdict = e.At, e.Label
				}
			case rec.KindMigrationStart:
				if in.MigrationStartAt == 0 && (in.VerdictAt == 0 || e.At >= in.VerdictAt) {
					in.MigrationStartAt, in.Migration = e.At, e.Label
				}
			case rec.KindMigrationDone:
				if in.MigrationDoneAt == 0 && in.MigrationStartAt != 0 && e.At >= in.MigrationStartAt {
					in.MigrationDoneAt = e.At
				}
			case rec.KindFaultHeal:
				if in.HealedAt == 0 && e.Label == in.Fault && int(e.A) == in.Episode {
					in.HealedAt = e.At
				}
			}
		}
		if pts := series[in.Shard]; len(pts) > 0 {
			in.InflectionAt = inflection(pts, in.FiredAt)
		}
		if in.VerdictAt != 0 {
			in.DetectionLatency = in.VerdictAt - in.FiredAt
		}
		if in.VerdictAt != 0 && in.MigrationStartAt != 0 {
			in.ReactionLatency = in.MigrationStartAt - in.VerdictAt
		}
		in.Complete = in.VerdictAt != 0 && in.MigrationStartAt != 0 &&
			in.MigrationDoneAt != 0 && in.HealedAt != 0
		tl.Incidents = append(tl.Incidents, in)
	}

	// Flap metrics from the ladder-move stream: every decision counts,
	// and a later move that exactly undoes an earlier one on the same
	// shard is a reversal.
	type move struct{ from, to uint64 }
	prev := map[int][]move{}
	for _, ev := range evs {
		if ev.Kind != rec.KindLadderMove {
			continue
		}
		tl.LadderMoves++
		m := move{from: ev.B, to: ev.A}
		for _, p := range prev[ev.Shard] {
			if p.from == m.to && p.to == m.from {
				tl.Reversals++
				break
			}
		}
		prev[ev.Shard] = append(prev[ev.Shard], m)
	}
	if span > 0 {
		tl.FlapRatePerSec = float64(tl.LadderMoves) / span.Seconds()
	}
	return tl
}

// inflection finds the first sample after firedAt whose retired backlog
// clearly exceeds the pre-fault baseline (last sample at or before the
// fire): baseline + max(16, baseline). Zero when the backlog never
// inflected.
func inflection(pts []telemetry.Point, firedAt time.Duration) time.Duration {
	var baseline uint64
	for _, p := range pts {
		if p.Elapsed > firedAt {
			break
		}
		baseline = p.Retired
	}
	bump := baseline
	if bump < 16 {
		bump = 16
	}
	threshold := baseline + bump
	for _, p := range pts {
		if p.Elapsed <= firedAt {
			continue
		}
		if p.Retired >= threshold {
			return p.Elapsed
		}
	}
	return 0
}
