// Package obs is the unified observability plane over the sharded
// service: one flight recorder (internal/obs/rec) that every subsystem
// stamps its events onto, a metrics registry that renders the store's
// live gauges and verdicts as Prometheus text, an opt-in HTTP server
// exposing /metrics, /timeline and pprof mid-run, and a causality
// reporter that joins the recorded streams into per-shard incident
// timelines (fault fired → backlog inflection → verdict flip → migration
// → heal) with detection/reaction latencies and a flap-rate metric.
//
// The paper's robustness claim (Definitions 5.1–5.2) is a claim about
// trajectories; this package is what makes the repository's trajectories
// observable while they happen instead of reconstructable afterwards.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/exec"
	"repro/internal/obs/rec"
	"repro/internal/resil"
	"repro/internal/smr"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Registry bundles the live sources the exporters read. Every field is
// optional except Store; nil fields simply render nothing.
type Registry struct {
	Store    *store.Store
	Sampler  *telemetry.Sampler
	Monitor  *telemetry.Monitor
	Recorder *rec.Recorder
	SLO      *SLOMonitor
	Exec     *exec.Executor
	Resil    *resil.Client
}

// VerdictHook adapts the flight recorder into a telemetry
// MonitorConfig.OnFlip hook: every conclusive audited-class change
// becomes a KindVerdict event (A = new class, B = previous class,
// Label = "scheme:old→new"). The A<B ordering is what the causality
// reporter keys detection on: a worsening flip is a detection.
func VerdictHook(r *rec.Recorder) func(domain int, old, new smr.RobustnessClass, v telemetry.Verdict) {
	return func(domain int, old, new smr.RobustnessClass, v telemetry.Verdict) {
		r.Record(rec.KindVerdict, domain, 0, uint64(new), uint64(old),
			v.Scheme+":"+old.String()+"→"+new.String())
	}
}

// metric writes one Prometheus-text metric family: a HELP/TYPE header
// followed by the sample lines the caller appends through add.
type metric struct {
	w    io.Writer
	name string
	err  error
}

func (r *Registry) family(w io.Writer, name, typ, help string) *metric {
	m := &metric{w: w, name: name}
	_, m.err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return m
}

func (m *metric) add(labels string, v float64) {
	if m.err != nil {
		return
	}
	if labels == "" {
		_, m.err = fmt.Fprintf(m.w, "%s %g\n", m.name, v)
		return
	}
	_, m.err = fmt.Fprintf(m.w, "%s{%s} %g\n", m.name, labels, v)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// WriteMetrics renders the registry as Prometheus text exposition
// format. Safe to call while the store serves and migrates: the gauge
// and stat snapshots are taken under the store's locks, so every
// per-shard row describes exactly one shard incarnation — a migration
// in flight shows either the outgoing or the incoming scheme, never a
// blend.
func (r *Registry) WriteMetrics(w io.Writer) error {
	// Shard identity first: the current-scheme label is the migration
	// observable ("which rung is shard 3 on right now").
	stats := r.Store.Stats()
	info := r.family(w, "era_shard_info", "gauge",
		"Shard identity: current scheme and structure (value is constant 1).")
	for _, s := range stats.Shards {
		info.add(fmt.Sprintf(`shard="%d",scheme="%s",structure="%s"`,
			s.Shard, escapeLabel(s.Scheme), escapeLabel(s.Structure)), 1)
	}
	if info.err != nil {
		return info.err
	}

	// Every ShardGauges field, under the same lock discipline the
	// telemetry sampler uses.
	gauges := r.Store.Gauges()
	for _, g := range []struct {
		name, typ, help string
		val             func(store.ShardGauges) float64
	}{
		{"era_shard_ops_total", "counter", "Cumulative operations served by the shard incarnation.",
			func(g store.ShardGauges) float64 { return float64(g.Ops) }},
		{"era_shard_retired", "gauge", "Current retired-but-unreclaimed backlog (Definitions 5.1-5.2).",
			func(g store.ShardGauges) float64 { return float64(g.Retired) }},
		{"era_shard_retired_max", "gauge", "Historical backlog watermark.",
			func(g store.ShardGauges) float64 { return float64(g.MaxRetired) }},
		{"era_shard_active", "gauge", "Current allocated-and-not-retired node count.",
			func(g store.ShardGauges) float64 { return float64(g.Active) }},
		{"era_shard_active_max", "gauge", "The paper's max_active - the robustness bound's budget.",
			func(g store.ShardGauges) float64 { return float64(g.MaxActive) }},
		{"era_shard_trav_steps_total", "counter", "Cumulative traversal steps (node visits).",
			func(g store.ShardGauges) float64 { return float64(g.TravSteps) }},
		{"era_shard_trav_restarts_total", "counter", "Cumulative traversal restarts.",
			func(g store.ShardGauges) float64 { return float64(g.TravRestarts) }},
		{"era_shard_guard_trips_total", "counter", "Operations aborted at the traversal step budget.",
			func(g store.ShardGauges) float64 { return float64(g.GuardTrips) }},
	} {
		fam := r.family(w, g.name, g.typ, g.help)
		for _, sg := range gauges {
			fam.add(fmt.Sprintf(`shard="%d"`, sg.Shard), g.val(sg))
		}
		if fam.err != nil {
			return fam.err
		}
	}

	// The slower ShardStats-only counters: faults, safety, incarnation
	// history and the full traversal block (head restarts and worst-op
	// steps are not in the gauge tap).
	for _, g := range []struct {
		name, typ, help string
		val             func(store.ShardStats) float64
	}{
		{"era_shard_epoch", "gauge", "Shard slot incarnation count (reopen or migration swaps).",
			func(s store.ShardStats) float64 { return float64(s.Epoch) }},
		{"era_shard_migrations_total", "counter", "Completed live scheme migrations of the slot.",
			func(s store.ShardStats) float64 { return float64(s.Migrations) }},
		{"era_shard_errs_total", "counter", "Operations that returned an error.",
			func(s store.ShardStats) float64 { return float64(s.Errs) }},
		{"era_shard_faults_total", "counter", "Simulated segmentation faults.",
			func(s store.ShardStats) float64 { return float64(s.Faults) }},
		{"era_shard_unsafe_accesses_total", "counter", "Unsafe accesses detected by the arena.",
			func(s store.ShardStats) float64 { return float64(s.UnsafeAccesses) }},
		{"era_shard_ooms_total", "counter", "Failed allocations - the backlog exhausting the shard heap.",
			func(s store.ShardStats) float64 { return float64(s.OOMs) }},
		{"era_shard_trav_head_restarts_total", "counter", "Traversal restarts that rewound to the head.",
			func(s store.ShardStats) float64 { return float64(s.TravHeadRestarts) }},
		{"era_shard_trav_max_op_steps", "gauge", "Worst single-operation traversal step count.",
			func(s store.ShardStats) float64 { return float64(s.MaxOpSteps) }},
		{"era_shard_swap_window_ns", "gauge", "Last migration's admission-stop-to-attach window.",
			func(s store.ShardStats) float64 { return float64(s.SwapWindowNanos) }},
		{"era_batch_fused_total", "counter", "Request batches served under one amortized SMR bracket.",
			func(s store.ShardStats) float64 { return float64(s.FusedBatches) }},
		{"era_batch_fused_ops_total", "counter", "Operations executed inside fused batch windows.",
			func(s store.ShardStats) float64 { return float64(s.FusedOps) }},
		{"era_batch_rebrackets_total", "counter", "Mid-window bracket renewals forced by the K-op cadence.",
			func(s store.ShardStats) float64 { return float64(s.Rebrackets) }},
		{"era_batch_sorts_total", "counter", "Fused batches the worker had to key-sort before execution.",
			func(s store.ShardStats) float64 { return float64(s.BatchSorts) }},
	} {
		fam := r.family(w, g.name, g.typ, g.help)
		for _, s := range stats.Shards {
			fam.add(fmt.Sprintf(`shard="%d"`, s.Shard), g.val(s))
		}
		if fam.err != nil {
			return fam.err
		}
	}

	// Live robustness verdicts: numeric classes so dashboards can alert
	// on audited < declared, plus the verdict outcome as a label.
	if r.Monitor != nil {
		decl := r.family(w, "era_shard_declared_class", "gauge",
			"Declared robustness class (0 not-robust, 1 weakly-robust, 2 robust).")
		aud := r.family(w, "era_shard_audited_class", "gauge",
			"Audited robustness class from the live window fit; -1 inconclusive.")
		for i, v := range r.Monitor.Verdicts() {
			labels := fmt.Sprintf(`shard="%d",scheme="%s"`, i, escapeLabel(v.Scheme))
			decl.add(labels, float64(declaredClass(v)))
			a := -1.0
			if !v.Inconclusive() {
				a = float64(v.AuditedClass())
			}
			aud.add(fmt.Sprintf(`%s,outcome="%s"`, labels, escapeLabel(v.Outcome)), a)
		}
		if decl.err != nil {
			return decl.err
		}
		if aud.err != nil {
			return aud.err
		}
	}

	// Sampler tick health: a gap here says the series under the verdicts
	// are thinner than their tick pretends.
	if r.Sampler != nil {
		h := r.Sampler.Health()
		for _, m := range []struct {
			name, help string
			v          uint64
		}{
			{"era_sampler_ticks_total", "Telemetry sampler ticks that fired.", h.Ticks},
			{"era_sampler_skipped_ticks_total", "Ticker ticks dropped because sampling fell behind.", h.SkippedTicks},
			{"era_sampler_late_samples_total", "Samples whose probe outran the sampling interval.", h.LateSamples},
		} {
			fam := r.family(w, m.name, "counter", m.help)
			fam.add("", float64(m.v))
			if fam.err != nil {
				return fam.err
			}
		}
	}

	// Recorder accounting: drops make ring overflow visible.
	if r.Recorder != nil {
		for _, m := range []struct {
			name, typ, help string
			v               float64
		}{
			{"era_recorder_events_total", "counter", "Events ever appended to the flight recorder.", float64(r.Recorder.Total())},
			{"era_recorder_dropped_total", "counter", "Events overwritten by ring wrap (exact).", float64(r.Recorder.Drops())},
			{"era_recorder_buffered", "gauge", "Events currently buffered.", float64(r.Recorder.Len())},
		} {
			fam := r.family(w, m.name, m.typ, m.help)
			fam.add("", m.v)
			if fam.err != nil {
				return fam.err
			}
		}
	}

	// Execution-layer ledgers: the scatter-gather request mix, and the
	// per-shard admission picture (queue pressure, degradation, sheds,
	// stalled legs) that explains why fan-out latency moved.
	if r.Exec != nil {
		es := r.Exec.Stats()
		req := r.family(w, "era_exec_requests_total", "counter",
			"Cross-shard requests accepted by the execution layer, by request kind.")
		for _, kind := range sortedKeys(es.Submitted) {
			req.add(fmt.Sprintf(`kind="%s"`, escapeLabel(kind)), float64(es.Submitted[kind]))
		}
		if req.err != nil {
			return req.err
		}
		for _, m := range []struct {
			name, typ, help string
			v               float64
		}{
			{"era_exec_completed_total", "counter", "Requests whose merge stage has run.", float64(es.Completed)},
			{"era_exec_partial_total", "counter", "Completed requests carrying at least one per-shard error.", float64(es.Partial)},
		} {
			fam := r.family(w, m.name, m.typ, m.help)
			fam.add("", m.v)
			if fam.err != nil {
				return fam.err
			}
		}
		for _, g := range []struct {
			name, typ, help string
			val             func(exec.ShardExecStats) float64
		}{
			{"era_exec_legs_total", "counter", "Scatter legs accepted onto the shard's queue.",
				func(s exec.ShardExecStats) float64 { return float64(s.Legs) }},
			{"era_exec_sheds_total", "counter", "Scatter legs refused by admission control.",
				func(s exec.ShardExecStats) float64 { return float64(s.Sheds) }},
			{"era_exec_leg_timeouts_total", "counter", "Scatter legs that exceeded their completion budget.",
				func(s exec.ShardExecStats) float64 { return float64(s.Timeouts) }},
			{"era_exec_leg_errs_total", "counter", "Scatter legs whose store call failed wholesale.",
				func(s exec.ShardExecStats) float64 { return float64(s.LegErrs) }},
			{"era_exec_queue_depth", "gauge", "Scatter legs currently queued on the shard.",
				func(s exec.ShardExecStats) float64 { return float64(s.Queued) }},
			{"era_exec_queue_cap", "gauge", "The shard's leg-queue capacity.",
				func(s exec.ShardExecStats) float64 { return float64(s.QueueCap) }},
			{"era_exec_degraded", "gauge", "1 while admission control has the shard degraded.",
				func(s exec.ShardExecStats) float64 { return b2f(s.Degraded) }},
			{"era_exec_stalled_calls", "gauge", "Store calls still running past their leg's budget.",
				func(s exec.ShardExecStats) float64 { return float64(s.Stalled) }},
		} {
			fam := r.family(w, g.name, g.typ, g.help)
			for _, s := range es.Shards {
				fam.add(fmt.Sprintf(`shard="%d"`, s.Shard), g.val(s))
			}
			if fam.err != nil {
				return fam.err
			}
		}
	}

	// Resilience-layer ledgers: retry rounds and their budget, the hedge
	// race outcome split, and the per-shard breaker position — the "what
	// did the policy layer do about it" companion to the era_exec block.
	if r.Resil != nil {
		rs := r.Resil.Stats()
		for _, m := range []struct {
			name, typ, help string
			v               float64
		}{
			{"era_resil_requests_total", "counter", "Requests accepted by the resilience client.", float64(rs.Requests)},
			{"era_resil_attempts_total", "counter", "Executor submissions, retry rounds included.", float64(rs.Attempts)},
			{"era_resil_retries_total", "counter", "Backoff-and-resubmit rounds taken.", float64(rs.Retries)},
			{"era_resil_recovered_total", "counter", "Requests that ended clean after at least one retry.", float64(rs.Recovered)},
			{"era_resil_budget_exhausted_total", "counter", "Retry rounds refused by the retry-budget token bucket.", float64(rs.BudgetExhausted)},
			{"era_resil_fast_fails_total", "counter", "Keys refused locally by an open circuit breaker.", float64(rs.FastFails)},
			{"era_resil_offered_units_total", "counter", "Operation units offered by callers (amplification denominator).", float64(rs.OfferedUnits)},
			{"era_resil_attempt_units_total", "counter", "Operation units dispatched to the store, retries included.", float64(rs.AttemptUnits)},
			{"era_resil_hedges_total", "counter", "Hedge calls launched against slow legs.", float64(rs.Hedges)},
			{"era_resil_hedge_wins_total", "counter", "Legs settled by the hedge call rather than the primary.", float64(rs.HedgeWins)},
			{"era_resil_wasted_work_total", "counter", "Hedge-race losers discarded through the late-call path.", float64(rs.HedgeWaste)},
			{"era_resil_hedge_delay_ns", "gauge", "Current hedge trigger delay from the leg-latency quantile (0 = cold or disabled).", float64(rs.HedgeDelay)},
		} {
			fam := r.family(w, m.name, m.typ, m.help)
			fam.add("", m.v)
			if fam.err != nil {
				return fam.err
			}
		}
		if len(rs.Breakers) > 0 {
			for _, g := range []struct {
				name, typ, help string
				val             func(resil.BreakerStats) float64
			}{
				{"era_resil_breaker_state", "gauge", "Circuit breaker position (0 closed, 1 open, 2 half-open).",
					func(b resil.BreakerStats) float64 { return float64(b.State) }},
				{"era_resil_breaker_opens_total", "counter", "Transitions into the open state.",
					func(b resil.BreakerStats) float64 { return float64(b.Opens) }},
				{"era_resil_breaker_failure_ewma", "gauge", "Smoothed recent leg-failure rate feeding the breaker.",
					func(b resil.BreakerStats) float64 { return b.EWMA }},
			} {
				fam := r.family(w, g.name, g.typ, g.help)
				for _, b := range rs.Breakers {
					fam.add(fmt.Sprintf(`shard="%d"`, b.Shard), g.val(b))
				}
				if fam.err != nil {
					return fam.err
				}
			}
		}
	}

	// Tail-latency SLO: "robust but slow" as a first-class state.
	if r.SLO != nil {
		s := r.SLO.Snapshot()
		for _, m := range []struct {
			name, typ, help string
			v               float64
		}{
			{"era_slo_target_ns", "gauge", "The p99 service-request latency objective.", float64(s.Target)},
			{"era_slo_p99_ns", "gauge", "Windowed p99 service-request latency.", float64(s.P99)},
			{"era_slo_breached", "gauge", "1 while the windowed p99 sits above the objective.", b2f(s.Breached)},
			{"era_slo_breaches_total", "counter", "Breach transitions observed.", float64(s.Breaches)},
		} {
			fam := r.family(w, m.name, m.typ, m.help)
			fam.add("", m.v)
			if fam.err != nil {
				return fam.err
			}
		}
	}
	return nil
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// declaredClass digs the declared class back out of a rendered verdict.
func declaredClass(v telemetry.Verdict) smr.RobustnessClass {
	for _, c := range []smr.RobustnessClass{smr.NotRobust, smr.WeaklyRobust, smr.Robust} {
		if c.String() == v.Declared {
			return c
		}
	}
	return smr.NotRobust
}

// TimelineView is the /timeline JSON payload: the recorder's buffered
// events plus its accounting, the live verdicts, and the sampler health.
type TimelineView struct {
	Events   []rec.Event         `json:"events"`
	Dropped  uint64              `json:"dropped"`
	Total    uint64              `json:"total"`
	Verdicts []telemetry.Verdict `json:"verdicts,omitempty"`
	Sampler  *telemetry.Health   `json:"sampler,omitempty"`
}

// Timeline assembles the live timeline view. Events are stamp-ordered.
func (r *Registry) Timeline() TimelineView {
	v := TimelineView{
		Events:  r.Recorder.Snapshot(),
		Dropped: r.Recorder.Drops(),
		Total:   r.Recorder.Total(),
	}
	sort.SliceStable(v.Events, func(i, j int) bool { return v.Events[i].At < v.Events[j].At })
	if r.Monitor != nil {
		v.Verdicts = r.Monitor.Verdicts()
	}
	if r.Sampler != nil {
		h := r.Sampler.Health()
		v.Sampler = &h
	}
	return v
}
