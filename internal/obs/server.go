package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in live export endpoint: Prometheus text on
// /metrics, the recorder's merged event stream on /timeline, and the
// standard pprof surface under /debug/pprof/ — profiling a reclamation
// stall *while it happens* is half the point of the plane.
type Server struct {
	// URL is the reachable base ("http://127.0.0.1:8080"), with the
	// kernel-assigned port resolved when the caller bound ":0".
	URL string

	ln  net.Listener
	srv *http.Server
}

// Handler builds the plane's HTTP mux over the registry.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "era observability plane\n\n"+
			"  /metrics        Prometheus text exposition\n"+
			"  /timeline       flight-recorder event stream (JSON)\n"+
			"  /debug/pprof/   live profiling\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteMetrics(w); err != nil {
			// Headers are gone; all that is left is to stop writing.
			return
		}
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Timeline())
	})
	// net/http/pprof registers on DefaultServeMux; wire its handlers
	// onto this private mux instead so the plane works with any server.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (":8080", "127.0.0.1:0", ...) and serves the plane
// until Close. It returns once the listener is bound, so the reported
// URL is immediately curl-able.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second},
	}
	host, port, _ := net.SplitHostPort(ln.Addr().String())
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	s.URL = "http://" + net.JoinHostPort(host, port)
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the server and releases the port.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
