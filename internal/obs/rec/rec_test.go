package rec

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// All events on one shard land in one stripe, so overflow semantics are
// exact: capacity C, N appends → the last C survive oldest-first and the
// drop counter reads N−C.
func TestRecorderOverflowOldestDropped(t *testing.T) {
	const cap, n = 8, 29
	r := NewRecorder(NewClock(), cap)
	for i := 0; i < n; i++ {
		r.RecordEvent(Event{At: time.Duration(i), Kind: KindMark, Shard: 3, A: uint64(i)})
	}
	if got, want := r.Drops(), uint64(n-cap); got != want {
		t.Fatalf("Drops() = %d, want exactly %d", got, want)
	}
	if got, want := r.Total(), uint64(n); got != want {
		t.Fatalf("Total() = %d, want %d", got, want)
	}
	evs := r.Snapshot()
	if len(evs) != cap {
		t.Fatalf("Snapshot() kept %d events, want %d", len(evs), cap)
	}
	for i, ev := range evs {
		if want := uint64(n - cap + i); ev.A != want {
			t.Fatalf("event %d: A = %d, want %d (oldest must be dropped first)", i, ev.A, want)
		}
	}
}

func TestRecorderNoDropsUnderCapacity(t *testing.T) {
	r := NewRecorder(nil, 16)
	for i := 0; i < 16; i++ {
		r.Record(KindSMRScan, i%4, 0, 1, 1, "")
	}
	if d := r.Drops(); d != 0 {
		t.Fatalf("Drops() = %d before any wrap", d)
	}
	if got := r.Len(); got != 16 {
		t.Fatalf("Len() = %d, want 16", got)
	}
}

// Concurrent appenders across shards plus snapshot/drop readers; run
// under -race. Counters must balance exactly: buffered + dropped = total.
func TestRecorderConcurrent(t *testing.T) {
	const goroutines, per = 8, 500
	r := NewRecorder(NewClock(), 64)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(KindSMRScan, g, g, uint64(i), 0, "")
				if i%100 == 0 {
					_ = r.Snapshot()
					_ = r.Drops()
				}
			}
		}(g)
	}
	wg.Wait()
	if got, want := r.Total(), uint64(goroutines*per); got != want {
		t.Fatalf("Total() = %d, want %d", got, want)
	}
	if got, want := uint64(r.Len())+r.Drops(), r.Total(); got != want {
		t.Fatalf("Len()+Drops() = %d, want Total() = %d", got, want)
	}
	evs := r.Snapshot()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("Snapshot() out of order at %d: %v after %v", i, evs[i].At, evs[i-1].At)
		}
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(KindMark, 0, 0, 0, 0, "")
	r.RecordEvent(Event{})
	if r.Snapshot() != nil || r.Drops() != 0 || r.Total() != 0 || r.Len() != 0 || r.Clock() != nil {
		t.Fatal("nil recorder must read as empty")
	}
	var c *Clock
	if c.Now() != 0 || !c.Origin().IsZero() {
		t.Fatal("nil clock must read zero")
	}
}

// The artifact files serialize kinds by name; every kind must survive a
// JSON round trip and unknown names must be rejected.
func TestKindJSONRoundTrip(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		b, err := json.Marshal(Event{Kind: k, Shard: 1})
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			t.Fatalf("unmarshal %v: %v", k, err)
		}
		if ev.Kind != k {
			t.Fatalf("kind %v round-tripped to %v", k, ev.Kind)
		}
	}
	var ev Event
	if err := json.Unmarshal([]byte(`{"kind":"no-such-kind"}`), &ev); err == nil {
		t.Fatal("unknown kind name must fail to unmarshal")
	}
}

func TestClockMonotone(t *testing.T) {
	c := NewClock()
	a := c.Now()
	b := c.Now()
	if b < a || a < 0 {
		t.Fatalf("clock went backwards: %v then %v", a, b)
	}
}
