// Package rec is the flight-recorder core of the observability plane:
// a shared run clock and a striped, fixed-capacity ring of typed events.
//
// Every subsystem that emits history — SMR scan batches, traversal guard
// trips, store migrations, chaos fault fire/heal, adaptive ladder moves,
// telemetry verdict flips, SLO breaches — stamps its events on ONE Clock
// and appends them to ONE Recorder, so the streams merge into a single
// ordered timeline without per-subsystem zero-point skew. The package is
// deliberately dependency-free: the producers (internal/smr, internal/ds,
// internal/store, internal/chaos, internal/adapt, internal/telemetry) can
// all import it without cycles; the consumers (internal/obs, internal/bench)
// join and export what it captured.
//
// The recorder is built to be left on in the hot path: appends take one
// striped mutex, never allocate after construction, and never block on
// readers. When a stripe's ring wraps, the oldest event in that stripe is
// overwritten and an exact per-stripe drop counter advances — overflow is
// visible, not silent.
package rec

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Clock is the shared run clock: one t=0 for every event stream in a run.
// A nil *Clock is usable and reads zero — components hold one
// unconditionally and only wire a real origin when observability is on.
type Clock struct {
	t0 time.Time
}

// NewClock starts a run clock at the current instant.
func NewClock() *Clock { return &Clock{t0: time.Now()} }

// ClockAt builds a run clock with an explicit origin (replay/tests).
func ClockAt(t0 time.Time) *Clock { return &Clock{t0: t0} }

// Now returns the elapsed run time. Zero on a nil clock.
func (c *Clock) Now() time.Duration {
	if c == nil || c.t0.IsZero() {
		return 0
	}
	return time.Since(c.t0)
}

// Origin returns the wall-clock instant of t=0 (zero time on nil).
func (c *Clock) Origin() time.Time {
	if c == nil {
		return time.Time{}
	}
	return c.t0
}

// Kind is the typed event tag. It marshals to and from its string name in
// JSON, so recorded timelines round-trip through the artifact files.
type Kind uint8

const (
	// KindMark is a free-form annotation (harness phase boundaries etc.).
	KindMark Kind = iota
	// KindSMRScan is one reclamation scan: A = retired nodes examined,
	// B = nodes reclaimed.
	KindSMRScan
	// KindGuardTrip is one traversal aborted at its step budget:
	// A = steps walked, B = restarts taken, Label = "structure.op".
	KindGuardTrip
	// KindMigrationStart opens a live scheme migration: Label = "from→to".
	KindMigrationStart
	// KindMigrationDone closes a successful migration: A = keys carried,
	// B = swap-window nanoseconds, Label = "from→to".
	KindMigrationDone
	// KindMigrationFail records a failed migration attempt: Label = error.
	KindMigrationFail
	// KindReopen records a shard rebuilt in place on its own scheme.
	KindReopen
	// KindFaultFire records a chaos fault injection: Label = fault name,
	// A = episode index, B = intensity in thousandths.
	KindFaultFire
	// KindFaultHeal records the matching heal: Label = fault name,
	// A = episode index.
	KindFaultHeal
	// KindVerdict records an audited-robustness-class flip from the online
	// classifier: A = new class, B = previous class (smr.RobustnessClass
	// values), Label = "scheme:old→new".
	KindVerdict
	// KindLadderMove records one adaptive-controller migration decision:
	// A = target rung, B = source rung, Label = "from→to: reason".
	KindLadderMove
	// KindSLOBreach records the p99 latency crossing above the SLO:
	// A = observed p99 nanoseconds, B = the SLO in nanoseconds.
	KindSLOBreach
	// KindSLOClear records the p99 settling back under the SLO.
	KindSLOClear
	// KindSamplerGap records telemetry ticks lost in one sampling window:
	// A = skipped ticks, B = late ticks.
	KindSamplerGap
	// KindExecScatter records one cross-shard request fanned out by the
	// exec layer: A = scatter legs, B = operations carried,
	// Label = request kind ("multiget", "rangescan", ...).
	KindExecScatter
	// KindExecMerge records the matching merge-stage completion:
	// A = merged results/keys, B = scatter→merge latency in nanoseconds,
	// Label = request kind. Shard is -1 (the merge spans shards).
	KindExecMerge
	// KindExecShed records one scatter leg refused by admission control:
	// A = the shard's queued legs at the shed, B = that queue's capacity,
	// Label = request kind.
	KindExecShed
	// KindHedge records one hedge leg launched against a shard whose
	// primary leg outlived the hedge delay: A = the leg's operation count
	// (0 for range legs), B = the hedge delay in nanoseconds,
	// Label = request kind.
	KindHedge
	// KindRetry records one typed-error-gated retry sub-request issued by
	// the resilience layer: A = the retry attempt number (1 = first
	// retry), B = the keys (or shards, for range requests) being retried,
	// Label = request kind.
	KindRetry
	// KindBreaker records a per-shard circuit-breaker transition:
	// A = new state, B = previous state (0 closed, 1 open, 2 half-open),
	// Label = the transition's reason ("verdict not-robust",
	// "failure ewma 0.83", "probes ok", ...).
	KindBreaker
	// KindBatchWindow records one fused batch window executed by a shard
	// worker: A = operations served under the window's amortized SMR
	// bracket, B = mid-window re-brackets (epoch/slot renewals) the
	// window's K-cadence forced.
	KindBatchWindow
	kindCount
)

var kindNames = [kindCount]string{
	KindMark:           "mark",
	KindSMRScan:        "smr-scan",
	KindGuardTrip:      "guard-trip",
	KindMigrationStart: "migration-start",
	KindMigrationDone:  "migration-done",
	KindMigrationFail:  "migration-fail",
	KindReopen:         "reopen",
	KindFaultFire:      "fault-fire",
	KindFaultHeal:      "fault-heal",
	KindVerdict:        "verdict",
	KindLadderMove:     "ladder-move",
	KindSLOBreach:      "slo-breach",
	KindSLOClear:       "slo-clear",
	KindSamplerGap:     "sampler-gap",
	KindExecScatter:    "exec-scatter",
	KindExecMerge:      "exec-merge",
	KindExecShed:       "exec-shed",
	KindHedge:          "hedge",
	KindRetry:          "retry",
	KindBreaker:        "breaker",
	KindBatchWindow:    "batch-window",
}

// String returns the kind's wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON writes the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON reads a kind back from its string name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range kindNames {
		if name == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("rec: unknown event kind %q", s)
}

// Event is one recorded occurrence. The A/B payload words are
// kind-specific (documented on each Kind); Label carries the human
// identity (fault name, scheme transition, structure.op).
type Event struct {
	// At is the run-clock stamp.
	At time.Duration `json:"at_ns"`
	// Kind tags the payload interpretation.
	Kind Kind `json:"kind"`
	// Shard is the store shard the event belongs to, or -1 for
	// store-wide/harness events.
	Shard int `json:"shard"`
	// Tid is the emitting thread/worker id where meaningful, else 0.
	Tid int `json:"tid,omitempty"`
	// A and B are the kind-specific payload words.
	A uint64 `json:"a,omitempty"`
	B uint64 `json:"b,omitempty"`
	// Label is the kind-specific human identity.
	Label string `json:"label,omitempty"`
}

// stripes is the fixed stripe count: enough to keep shard-parallel
// producers off each other's locks, small enough that a snapshot merge
// stays cheap.
const stripes = 8

// DefaultCapacity is the per-stripe ring capacity when NewRecorder is
// given a non-positive one.
const DefaultCapacity = 4096

type stripe struct {
	mu    sync.Mutex
	buf   []Event
	head  int    // next write position
	n     int    // valid events (≤ len(buf))
	drops uint64 // events overwritten after wrap — exact
	total uint64 // events ever appended
	_     [24]byte
}

// Recorder is the striped flight recorder. All methods are safe on a nil
// *Recorder (they no-op or return zero values), so producers can hold one
// unconditionally and emit without guards.
type Recorder struct {
	clock *Clock
	s     [stripes]stripe
}

// NewRecorder builds a recorder over clock (nil starts a fresh clock) with
// the given per-stripe ring capacity (<= 0 selects DefaultCapacity).
func NewRecorder(clock *Clock, capacity int) *Recorder {
	if clock == nil {
		clock = NewClock()
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := &Recorder{clock: clock}
	for i := range r.s {
		r.s[i].buf = make([]Event, capacity)
	}
	return r
}

// Clock returns the recorder's run clock (nil on a nil recorder).
func (r *Recorder) Clock() *Clock {
	if r == nil {
		return nil
	}
	return r.clock
}

// stripeFor maps a shard id onto a stripe; store-wide events (shard < 0)
// share stripe 0.
func stripeFor(shard int) int {
	if shard < 0 {
		return 0
	}
	return shard % stripes
}

// Record stamps an event on the run clock and appends it. No-op on nil.
func (r *Recorder) Record(kind Kind, shard, tid int, a, b uint64, label string) {
	if r == nil {
		return
	}
	r.append(Event{At: r.clock.Now(), Kind: kind, Shard: shard, Tid: tid, A: a, B: b, Label: label})
}

// RecordEvent appends a pre-stamped event (replay and tests). No-op on nil.
func (r *Recorder) RecordEvent(ev Event) {
	if r == nil {
		return
	}
	r.append(ev)
}

func (r *Recorder) append(ev Event) {
	st := &r.s[stripeFor(ev.Shard)]
	st.mu.Lock()
	st.buf[st.head] = ev
	st.head = (st.head + 1) % len(st.buf)
	if st.n < len(st.buf) {
		st.n++
	} else {
		st.drops++ // the slot just claimed held the stripe's oldest event
	}
	st.total++
	st.mu.Unlock()
}

// Drops returns the exact number of events overwritten by ring wrap
// across all stripes. Zero on nil.
func (r *Recorder) Drops() uint64 {
	if r == nil {
		return 0
	}
	var d uint64
	for i := range r.s {
		st := &r.s[i]
		st.mu.Lock()
		d += st.drops
		st.mu.Unlock()
	}
	return d
}

// Total returns the number of events ever appended (dropped ones
// included). Zero on nil.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	var t uint64
	for i := range r.s {
		st := &r.s[i]
		st.mu.Lock()
		t += st.total
		st.mu.Unlock()
	}
	return t
}

// Len returns the number of events currently buffered. Zero on nil.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.s {
		st := &r.s[i]
		st.mu.Lock()
		n += st.n
		st.mu.Unlock()
	}
	return n
}

// Snapshot returns a stamp-ordered copy of every buffered event. Safe to
// call while producers keep appending; each stripe is copied under its
// own lock and the merge sorts by At (stable, so equal stamps keep
// stripe-append order). Nil recorder returns nil.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.s {
		st := &r.s[i]
		st.mu.Lock()
		start := st.head - st.n
		if start < 0 {
			start += len(st.buf)
		}
		for j := 0; j < st.n; j++ {
			out = append(out, st.buf[(start+j)%len(st.buf)])
		}
		st.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
