package telemetry

import (
	"fmt"
	"math"
	"time"

	"repro/internal/smr"
)

// GrowthClass is the audited shape of a retired-backlog series, the
// empirical counterpart of the robustness taxonomy: unbounded growth is
// what Definition 5.1 forbids, a plateau at the per-thread protection
// budget is what a robust scheme promises, and a plateau far above it —
// on the max_active × threads scale — is the weakly-robust regime of
// Definition 5.2.
type GrowthClass uint8

// Growth classes, ordered from best to worst.
const (
	// GrowthBounded: the backlog plateaus within the per-thread budget.
	GrowthBounded GrowthClass = iota
	// GrowthLinearThreads: the backlog plateaus, but at a level that
	// tracks max_active × threads rather than the per-thread budget.
	GrowthLinearThreads
	// GrowthUnbounded: the backlog keeps growing with operation count.
	GrowthUnbounded
)

// String returns the class name.
func (g GrowthClass) String() string {
	switch g {
	case GrowthBounded:
		return "bounded"
	case GrowthLinearThreads:
		return "linear-in-threads"
	}
	return "unbounded"
}

// Budget is the reference frame a fit is judged against: what "small"
// means for the monitored domain.
type Budget struct {
	// Threads is the domain's executing thread count (shard workers).
	Threads int
	// Threshold is the schemes' retire-list scan threshold: a healthy
	// thread may hold up to ~Threshold retired nodes it has not scanned
	// yet, so the robust plateau is O(Threads × Threshold).
	Threshold int
}

// robustPlateau is the largest backlog plateau still consistent with a
// robust bound: every thread's un-scanned retire list plus a handful of
// protected nodes each, with 2× slack for scan raciness.
func (b Budget) robustPlateau() float64 {
	threads := b.Threads
	if threads <= 0 {
		threads = 1
	}
	threshold := b.Threshold
	if threshold <= 0 {
		threshold = 64
	}
	return 2 * float64(threads) * float64(threshold+8)
}

// Fit is the summary of a backlog series: a linear fit of retired against
// operations over the analysis window, and the growth class it implies.
type Fit struct {
	// Slope is the fitted backlog growth in retired nodes per operation.
	Slope float64 `json:"slope"`
	// Plateau is the mean backlog over the window.
	Plateau float64 `json:"plateau"`
	// PeakRetired is the window's largest observed backlog.
	PeakRetired uint64 `json:"peak_retired"`
	// Ops is the operation progress covered by the window.
	Ops uint64 `json:"ops"`
	// Samples is how many points the window held.
	Samples int `json:"samples"`
	// Growth is the classification.
	Growth GrowthClass `json:"-"`
	// GrowthName is Growth's name (the JSON face of the class).
	GrowthName string `json:"growth"`
}

// minFitSamples is the fewest points a conclusive fit needs; below it the
// audit reports Inconclusive rather than guessing from noise.
const minFitSamples = 4

// slopeEps is the unbounded-growth cutoff in retired nodes per operation.
// A non-robust scheme under a reclamation-critical stall retains on the
// order of one node per update (slope ≈ the delete fraction of the mix);
// a robust scheme's tail slope is scan noise around zero. 1/50 sits well
// between the two regimes.
const slopeEps = 0.02

// classify fills Growth from the fitted numbers plus the window's
// endpoint, midpoint, and final points — the one rule set shared by the
// batch fit (FitPoints) and the incremental one (WindowFit).
func (f *Fit) classify(first, mid, last Point, budget Budget) {
	// Unbounded growth must be *sustained*: still climbing across the
	// window's second half. A weakly-robust scheme's backlog rises to its
	// plateau right after a fault lands — that rise can tilt the
	// least-squares slope, but its tail is flat.
	tailGrowth := float64(last.Retired) - float64(mid.Retired)
	growth := float64(last.Retired) - float64(first.Retired)
	// An unbounded verdict must also outgrow the weakly-robust *scale*:
	// Definitions 5.1–5.2 bound the backlog by functions of max_active,
	// so any plateau-bound scheme tops out on the max_active scale while
	// genuinely unbounded growth sails past it. Without this gate, a
	// window that ends inside a weakly-robust scheme's onset ramp (slow
	// machine, short run) would read as unbounded. When the probe does
	// not report max_active the gate falls away.
	maxActiveScale := 2 * float64(last.MaxActive)
	switch {
	case f.Samples >= minFitSamples && f.Ops > 0 && f.Slope > slopeEps &&
		growth > budget.robustPlateau() &&
		growth > maxActiveScale &&
		tailGrowth > budget.robustPlateau()/2:
		// Growing per-op, past both the robust budget and the
		// weakly-robust scale, and still growing through the tail — not
		// a threshold-crossing blip, not a plateau's onset ramp.
		f.Growth = GrowthUnbounded
	case f.Plateau > budget.robustPlateau():
		f.Growth = GrowthLinearThreads
	default:
		f.Growth = GrowthBounded
	}
	f.GrowthName = f.Growth.String()
}

// FitPoints fits the backlog growth over points (oldest-first) against
// budget. Points before the window of interest — e.g. before a fault was
// injected — should be trimmed by the caller; FitWindow does that.
//
// An Ops regression inside the window marks a domain restart (a churned
// shard reopened with fresh counters, or a migrated shard swapped in);
// the fit covers only the points before the reset, since later points
// describe a different incarnation.
//
// FitPoints is the batch face of the incremental WindowFit: the points
// are streamed through a window sized to hold them all, so both paths
// compute identical sums and share one classification rule set.
func FitPoints(points []Point, budget Budget) Fit {
	for i := 1; i < len(points); i++ {
		if points[i].Ops < points[i-1].Ops {
			points = points[:i]
			break
		}
	}
	w := NewWindowFit(len(points))
	for _, p := range points {
		w.Push(p)
	}
	return w.Fit(budget)
}

// FitWindow trims points to those at or after from (sampler-relative
// elapsed time) and fits the remainder. It is how audits restrict the fit
// to the faulted portion of a run.
func FitWindow(points []Point, from time.Duration, budget Budget) Fit {
	i := 0
	for i < len(points) && points[i].Elapsed < from {
		i++
	}
	return FitPoints(points[i:], budget)
}

// Consistency is the relation between a scheme's audited robustness and
// its declared class.
type Consistency uint8

// Consistency outcomes.
const (
	// Inconclusive: the window held too few points or no progress.
	Inconclusive Consistency = iota
	// Confirmed: the audit reproduced the declared class.
	Confirmed
	// Stronger: the audit observed strictly better behaviour than
	// declared (expected for a weakly-robust scheme whose worst case the
	// run did not provoke).
	Stronger
	// Violated: the audit observed strictly worse behaviour than
	// declared — the scheme does not deliver its claimed bound.
	Violated
)

// String returns the outcome name.
func (c Consistency) String() string {
	switch c {
	case Confirmed:
		return "confirmed"
	case Stronger:
		return "stronger"
	case Violated:
		return "VIOLATED"
	}
	return "inconclusive"
}

// Verdict is one scheme's robustness audit: declared class, audited
// class, the fit behind it, and their relation.
type Verdict struct {
	Scheme string `json:"scheme"`
	// Declared is the scheme's claimed RobustnessClass.
	Declared string `json:"declared"`
	// Audited is the class the series evidences.
	Audited string `json:"audited"`
	Fit     Fit    `json:"fit"`
	// Outcome relates audited to declared.
	Outcome string `json:"outcome"`
	// SLOBreached is the orthogonal tail-latency dimension: true while
	// the domain's latency SLO is breached (Monitor.SetSLO). A verdict
	// can be robust *and* SLO-breached — "robust but slow" — which is a
	// de-escalation signal, not an escalation one.
	SLOBreached bool `json:"slo_breached,omitempty"`

	declared, audited smr.RobustnessClass
	outcome           Consistency
}

// AuditedClass returns the audited class as a RobustnessClass.
func (v Verdict) AuditedClass() smr.RobustnessClass { return v.audited }

// Consistent reports that the audit did not contradict the declaration.
func (v Verdict) Consistent() bool { return v.outcome != Violated }

// Inconclusive reports that the window held too little evidence to
// classify — controllers must not act on an inconclusive verdict.
func (v Verdict) Inconclusive() bool { return v.outcome == Inconclusive }

// String renders the verdict as one line.
func (v Verdict) String() string {
	return fmt.Sprintf("%-10s declared %-13s audited %-13s (slope %.4f/op, plateau %.0f) %s",
		v.Scheme, v.Declared, v.Audited, v.Fit.Slope, v.Fit.Plateau, v.Outcome)
}

// auditedClass maps a growth class to the robustness class it evidences.
func auditedClass(g GrowthClass) smr.RobustnessClass {
	switch g {
	case GrowthBounded:
		return smr.Robust
	case GrowthLinearThreads:
		return smr.WeaklyRobust
	}
	return smr.NotRobust
}

// NewVerdict relates an already-computed fit to a declared class — the
// shared back half of the batch Audit and the Monitor's live verdicts.
func NewVerdict(scheme string, declared smr.RobustnessClass, fit Fit) Verdict {
	v := Verdict{
		Scheme:   scheme,
		Declared: declared.String(),
		Fit:      fit,
		declared: declared,
		audited:  auditedClass(fit.Growth),
	}
	v.Audited = v.audited.String()
	switch {
	case fit.Samples < minFitSamples || fit.Ops == 0:
		v.outcome = Inconclusive
	case v.audited == v.declared:
		v.outcome = Confirmed
	case v.audited > v.declared:
		// RobustnessClass orders NotRobust < WeaklyRobust < Robust, so
		// greater means better than claimed.
		v.outcome = Stronger
	default:
		v.outcome = Violated
	}
	v.Outcome = v.outcome.String()
	return v
}

// Audit fits the window and relates the audited class to the declared
// one. from trims the points to the faulted portion of the run
// (sampler-relative elapsed; 0 keeps everything).
func Audit(scheme string, declared smr.RobustnessClass, points []Point, from time.Duration, budget Budget) Verdict {
	return NewVerdict(scheme, declared, FitWindow(points, from, budget))
}

// NaN-proofing for JSON: a fit over a degenerate window can in principle
// produce non-finite numbers; Sanitize zeroes them so artifacts always
// encode.
func (f *Fit) Sanitize() {
	if math.IsNaN(f.Slope) || math.IsInf(f.Slope, 0) {
		f.Slope = 0
	}
	if math.IsNaN(f.Plateau) || math.IsInf(f.Plateau, 0) {
		f.Plateau = 0
	}
}
