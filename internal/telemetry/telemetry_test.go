package telemetry

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/smr"
)

func TestSeriesRingOrder(t *testing.T) {
	s := NewSeries(4)
	for i := 0; i < 6; i++ {
		s.Push(Point{Ops: uint64(i)})
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	pts := s.Points()
	for i, p := range pts {
		if want := uint64(i + 2); p.Ops != want {
			t.Fatalf("point %d has ops %d, want %d (oldest-first after wrap)", i, p.Ops, want)
		}
	}
	last, ok := s.Last()
	if !ok || last.Ops != 5 {
		t.Fatalf("last = %v, %v", last, ok)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries(2)
	if s.Len() != 0 || len(s.Points()) != 0 {
		t.Fatal("fresh series must be empty")
	}
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty series must report !ok")
	}
}

func TestSamplerCollects(t *testing.T) {
	var ops atomic.Uint64
	probe := func() []Point {
		v := ops.Add(10)
		return []Point{
			{Ops: v, Retired: v / 2},
			{Ops: v, Retired: 1},
		}
	}
	s := NewSampler(Config{Interval: time.Millisecond, Capacity: 64}, probe)
	if s.Domains() != 2 {
		t.Fatalf("domains = %d, want 2", s.Domains())
	}
	s.Start()
	time.Sleep(10 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent
	for d := 0; d < 2; d++ {
		pts := s.Series(d).Points()
		// Start and Stop each force a sample, so ≥ 2 regardless of tick
		// timing.
		if len(pts) < 2 {
			t.Fatalf("domain %d: %d points, want at least 2", d, len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Ops < pts[i-1].Ops {
				t.Fatalf("domain %d: ops regressed at %d", d, i)
			}
			if pts[i].Elapsed < pts[i-1].Elapsed {
				t.Fatalf("domain %d: elapsed regressed at %d", d, i)
			}
		}
	}
}

// synth builds a series of n points with the given backlog function.
func synth(n int, opsPer uint64, retired func(i int) uint64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			Elapsed: time.Duration(i) * time.Millisecond,
			Ops:     uint64(i) * opsPer,
			Retired: retired(i),
		}
	}
	return pts
}

func TestFitUnbounded(t *testing.T) {
	// Backlog tracks ops one-for-one: the EBR-under-stall shape.
	pts := synth(20, 100, func(i int) uint64 { return uint64(i) * 100 })
	f := FitPoints(pts, Budget{Threads: 2, Threshold: 16})
	if f.Growth != GrowthUnbounded {
		t.Fatalf("growth = %v (slope %f), want unbounded", f.Growth, f.Slope)
	}
	if f.Slope < 0.9 || f.Slope > 1.1 {
		t.Fatalf("slope = %f, want ≈1", f.Slope)
	}
}

func TestFitBounded(t *testing.T) {
	// Backlog oscillates under the scan threshold: the HP shape.
	pts := synth(20, 100, func(i int) uint64 { return uint64(4 + i%7) })
	f := FitPoints(pts, Budget{Threads: 2, Threshold: 16})
	if f.Growth != GrowthBounded {
		t.Fatalf("growth = %v (plateau %f), want bounded", f.Growth, f.Plateau)
	}
}

func TestFitLinearThreads(t *testing.T) {
	// Backlog plateaus far above the per-thread budget: bounded, but on
	// the max_active × threads scale.
	budget := Budget{Threads: 2, Threshold: 16}
	high := uint64(budget.robustPlateau()) * 4
	pts := synth(20, 100, func(i int) uint64 { return high + uint64(i%3) })
	f := FitPoints(pts, budget)
	if f.Growth != GrowthLinearThreads {
		t.Fatalf("growth = %v (plateau %f), want linear-in-threads", f.Growth, f.Plateau)
	}
}

func TestFitWindowTrims(t *testing.T) {
	// Unbounded before the cut, flat after: the window must see only the
	// flat tail.
	pts := synth(20, 100, func(i int) uint64 {
		if i < 10 {
			return uint64(i) * 100
		}
		return 5
	})
	f := FitWindow(pts, 10*time.Millisecond, Budget{Threads: 2, Threshold: 16})
	if f.Samples != 10 {
		t.Fatalf("window samples = %d, want 10", f.Samples)
	}
	if f.Growth != GrowthBounded {
		t.Fatalf("growth = %v, want bounded after trim", f.Growth)
	}
}

func TestAuditOutcomes(t *testing.T) {
	budget := Budget{Threads: 2, Threshold: 16}
	grow := synth(20, 100, func(i int) uint64 { return uint64(i) * 100 })
	flat := synth(20, 100, func(i int) uint64 { return uint64(6 + i%5) })

	cases := []struct {
		name     string
		declared smr.RobustnessClass
		pts      []Point
		want     Consistency
	}{
		{"ebr-confirmed", smr.NotRobust, grow, Confirmed},
		{"hp-confirmed", smr.Robust, flat, Confirmed},
		{"claims-robust-but-grows", smr.Robust, grow, Violated},
		{"weak-looks-robust", smr.WeaklyRobust, flat, Stronger},
	}
	for _, c := range cases {
		v := Audit(c.name, c.declared, c.pts, 0, budget)
		if v.outcome != c.want {
			t.Errorf("%s: outcome = %v, want %v (audited %s)", c.name, v.outcome, c.want, v.Audited)
		}
		if c.want == Violated && v.Consistent() {
			t.Errorf("%s: Consistent() must be false on violation", c.name)
		}
	}
}

func TestAuditInconclusive(t *testing.T) {
	pts := synth(2, 100, func(i int) uint64 { return 1 })
	v := Audit("tiny", smr.Robust, pts, 0, Budget{Threads: 1, Threshold: 16})
	if v.outcome != Inconclusive {
		t.Fatalf("outcome = %v, want inconclusive on %d samples", v.outcome, len(pts))
	}
	if !v.Consistent() {
		t.Fatal("inconclusive must not count as a violation")
	}
}

func TestFitRiseThenPlateauIsNotUnbounded(t *testing.T) {
	// The weakly-robust shape right after a fault lands: a fast climb to
	// a high plateau, then flat. The climb tilts the least-squares slope,
	// but the flat tail must keep this out of "unbounded".
	budget := Budget{Threads: 2, Threshold: 16}
	high := uint64(budget.robustPlateau()) * 5
	pts := synth(20, 100, func(i int) uint64 {
		if i < 5 {
			return uint64(i) * high / 5
		}
		return high
	})
	f := FitPoints(pts, budget)
	if f.Growth == GrowthUnbounded {
		t.Fatalf("onset ramp classified unbounded (slope %f)", f.Slope)
	}
	if f.Growth != GrowthLinearThreads {
		t.Fatalf("growth = %v (plateau %f), want linear-in-threads", f.Growth, f.Plateau)
	}
}

func TestFitTrimsAtCounterReset(t *testing.T) {
	// A churned shard reopens with fresh counters mid-window: the points
	// after the Ops regression belong to a different shard incarnation
	// and must not poison the fit (Ops=0 would read as "no progress" →
	// inconclusive).
	budget := Budget{Threads: 2, Threshold: 16}
	pts := synth(20, 100, func(i int) uint64 { return uint64(i) * 100 })
	pts = append(pts, Point{Elapsed: 21 * time.Millisecond, Ops: 3, Retired: 0})
	f := FitPoints(pts, budget)
	if f.Samples != 20 {
		t.Fatalf("samples = %d, want 20 (post-reset point trimmed)", f.Samples)
	}
	if f.Growth != GrowthUnbounded || f.Ops == 0 {
		t.Fatalf("growth = %v ops = %d, want unbounded fit of the pre-reset incarnation", f.Growth, f.Ops)
	}
}

func TestFitUnboundedRequiresMaxActiveScale(t *testing.T) {
	// A backlog that climbs through the window but stays on the
	// max_active scale is a weakly-robust plateau still forming (short
	// window, slow machine) — it must not read as unbounded. The same
	// curve far past that scale must.
	budget := Budget{Threads: 2, Threshold: 16}
	onScale := synth(20, 100, func(i int) uint64 { return uint64(i) * 20 })
	for i := range onScale {
		onScale[i].MaxActive = 400 // growth tops out at 380 < 2×max_active
	}
	if f := FitPoints(onScale, budget); f.Growth == GrowthUnbounded {
		t.Fatalf("growth on the max_active scale audited unbounded (slope %f)", f.Slope)
	}
	pastScale := synth(20, 100, func(i int) uint64 { return uint64(i) * 100 })
	for i := range pastScale {
		pastScale[i].MaxActive = 400 // growth reaches 1900 > 2×max_active
	}
	if f := FitPoints(pastScale, budget); f.Growth != GrowthUnbounded {
		t.Fatalf("growth past the max_active scale audited %v", f.Growth)
	}
}
