package telemetry

// WindowFit is the incremental form of the growth fit: a sliding window
// over the most recent points with the least-squares sums maintained as
// running totals, so each new sample costs O(1) amortized instead of a
// whole-series refit. It is what lets the robustness audit run *while*
// the store serves — the Monitor keeps one WindowFit per shard and reads
// a fresh classification off it on every decision tick — and it is also
// the engine under the end-of-run FitPoints, so the batch and online
// paths share one set of classification rules.
//
// An Ops regression between consecutive pushes marks a domain restart (a
// churned shard reopened, or a shard migrated to a new scheme, with
// fresh counters): the window resets, because points from the previous
// incarnation describe a heap that no longer exists.
//
// WindowFit is not safe for concurrent use; the Monitor adds the lock.
type WindowFit struct {
	buf  []Point
	head int    // next write position
	n    int    // valid points (≤ len(buf))
	seq  uint64 // points pushed since the last reset

	// origin re-centers x at the incarnation's first Ops reading: the
	// fitted slope is shift-invariant, and small x keeps the x² sums
	// exactly representable where raw cumulative op counts would not be.
	origin uint64
	// Running least-squares sums over the window: x = Ops−origin,
	// y = Retired.
	sx, sy, sxx, sxy float64

	// peak is a monotonically decreasing deque over the window, so the
	// window maximum survives evictions without a rescan.
	peak []peakEntry

	resets int
}

type peakEntry struct {
	seq     uint64
	retired uint64
}

// NewWindowFit builds a fit over a sliding window of at most capacity
// points; capacity <= 0 selects 1.
func NewWindowFit(capacity int) *WindowFit {
	if capacity <= 0 {
		capacity = 1
	}
	return &WindowFit{buf: make([]Point, capacity)}
}

// at returns the i-th point of the window, oldest-first.
func (w *WindowFit) at(i int) Point {
	start := w.head - w.n
	if start < 0 {
		start += len(w.buf)
	}
	return w.buf[(start+i)%len(w.buf)]
}

// Len returns the number of points in the window.
func (w *WindowFit) Len() int { return w.n }

// Resets returns how many domain restarts (Ops regressions) the window
// has absorbed.
func (w *WindowFit) Resets() int { return w.resets }

// Reset empties the window, marking a new domain incarnation.
func (w *WindowFit) Reset() {
	w.head, w.n, w.seq = 0, 0, 0
	w.sx, w.sy, w.sxx, w.sxy = 0, 0, 0, 0
	w.peak = w.peak[:0]
	w.resets++
}

// Push slides the window forward by one sample. A point whose Ops
// regresses below the previous sample's resets the window first.
func (w *WindowFit) Push(p Point) {
	if w.n > 0 && p.Ops < w.at(w.n-1).Ops {
		w.Reset()
	}
	if w.seq == 0 {
		w.origin = p.Ops
	}
	if w.n == len(w.buf) {
		old := w.at(0)
		x, y := float64(old.Ops-w.origin), float64(old.Retired)
		w.sx -= x
		w.sy -= y
		w.sxx -= x * x
		w.sxy -= x * y
		if len(w.peak) > 0 && w.peak[0].seq == w.seq-uint64(w.n) {
			w.peak = w.peak[1:]
		}
		w.n--
	}
	w.buf[w.head] = p
	w.head = (w.head + 1) % len(w.buf)
	w.n++
	x, y := float64(p.Ops-w.origin), float64(p.Retired)
	w.sx += x
	w.sy += y
	w.sxx += x * x
	w.sxy += x * y
	for len(w.peak) > 0 && w.peak[len(w.peak)-1].retired <= p.Retired {
		w.peak = w.peak[:len(w.peak)-1]
	}
	w.peak = append(w.peak, peakEntry{seq: w.seq, retired: p.Retired})
	w.seq++
}

// Fit classifies the current window against budget. An empty window
// reports zero samples and bounded growth (no evidence of anything
// else), which the verdict layer maps to an inconclusive outcome.
func (w *WindowFit) Fit(budget Budget) Fit {
	f := Fit{Samples: w.n}
	if w.n == 0 {
		f.Growth = GrowthBounded
		f.GrowthName = f.Growth.String()
		return f
	}
	first, mid, last := w.at(0), w.at(w.n/2), w.at(w.n-1)
	if last.Ops >= first.Ops {
		f.Ops = last.Ops - first.Ops
	}
	f.PeakRetired = w.peak[0].retired
	n := float64(w.n)
	f.Plateau = w.sy / n
	if det := n*w.sxx - w.sx*w.sx; det > 0 {
		f.Slope = (n*w.sxy - w.sx*w.sy) / det
	}
	f.classify(first, mid, last, budget)
	return f
}
