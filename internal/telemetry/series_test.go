package telemetry

import (
	"sync"
	"testing"
	"time"
)

// Series is shared between the sampler goroutine (Push) and arbitrary
// readers (Points, Last, Len) — the live /metrics and /timeline handlers
// read it mid-run. Run with -race.
func TestSeriesConcurrentPushPointsLast(t *testing.T) {
	s := NewSeries(64)
	const writers, readers, per = 2, 4, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Push(Point{Elapsed: time.Duration(i), Ops: uint64(i)})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				pts := s.Points()
				if len(pts) > 64 {
					t.Errorf("Points() returned %d points from a 64-ring", len(pts))
					return
				}
				// Within one writer's stream Ops is monotone; with two
				// interleaved writers the invariant that must hold is just
				// internal consistency: the copy's length matches Len's
				// bound and Last agrees with some pushed point.
				if p, ok := s.Last(); ok && p.Ops >= per {
					t.Errorf("Last() returned never-pushed point %+v", p)
					return
				}
				_ = s.Len()
			}
		}()
	}
	wg.Wait()
	if got := s.Len(); got != 64 {
		t.Fatalf("Len() = %d after %d pushes into a 64-ring", got, writers*per)
	}
}

// A single writer's view must stay ordered no matter how many readers
// are copying the ring underneath it.
func TestSeriesSingleWriterOrdered(t *testing.T) {
	s := NewSeries(128)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				pts := s.Points()
				for i := 1; i < len(pts); i++ {
					if pts[i].Ops < pts[i-1].Ops {
						t.Errorf("Points() out of order: %d after %d", pts[i].Ops, pts[i-1].Ops)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		s.Push(Point{Ops: uint64(i)})
	}
	close(done)
	wg.Wait()
}

// Sampler tick health: a probe that outruns the interval must surface
// skipped/late ticks rather than silently thinning the series.
func TestSamplerHealthCountsOverrun(t *testing.T) {
	probe := func() []Point {
		time.Sleep(3 * time.Millisecond)
		return []Point{{}}
	}
	s := NewSampler(Config{Interval: 500 * time.Microsecond, Capacity: 64}, probe)
	s.Start()
	time.Sleep(30 * time.Millisecond)
	s.Stop()
	h := s.Health()
	if h.Ticks == 0 {
		t.Fatal("no ticks fired")
	}
	if h.LateSamples == 0 {
		t.Fatalf("probe sleeps 6× the interval, LateSamples = 0 (health %+v)", h)
	}
	if h.SkippedTicks == 0 {
		t.Fatalf("probe sleeps 6× the interval, SkippedTicks = 0 (health %+v)", h)
	}
}

// A probe faster than the interval must not report phantom gaps.
func TestSamplerHealthCleanRun(t *testing.T) {
	s := NewSampler(Config{Interval: 2 * time.Millisecond, Capacity: 64},
		func() []Point { return []Point{{}} })
	s.Start()
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	if h := s.Health(); h.LateSamples != 0 {
		t.Fatalf("instant probe reported %d late samples", h.LateSamples)
	}
}
