// Package telemetry turns the repository's counters into time series and
// the time series into robustness verdicts.
//
// The ERA theorem's robustness axis (Definitions 5.1–5.2) bounds the
// retired-but-unreclaimed backlog by a function of max_active; every
// scheme in internal/smr *declares* a RobustnessClass, but a declaration
// is not evidence. This package supplies the evidence side: a low-overhead
// Sampler snapshots per-domain gauges (the retired backlog and its
// watermarks, plus operation progress) on a configurable tick into
// ring-buffered Series, and the growth-fit analysis (fit.go) classifies
// each series — bounded, linear-in-threads, or unbounded — and compares
// the audited class against the declared one. The chaos engine
// (internal/chaos) supplies the adversity the classification needs: under
// healthy traffic every scheme looks bounded; only under a
// reclamation-critical stall do the classes separate.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/rec"
)

// Point is one sampled observation of a monitored domain (typically one
// store shard: its arena gauges plus its service-progress counter).
type Point struct {
	// Elapsed is the time since the sampler started.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Ops is the cumulative operation count of the domain — the x-axis of
	// the growth fit (backlog growth per *operation*, not per second,
	// is what the definitions bound).
	Ops uint64 `json:"ops"`
	// Retired is the current retired-but-unreclaimed backlog, the
	// quantity Definitions 5.1–5.2 bound.
	Retired uint64 `json:"retired"`
	// MaxRetired is the backlog's historical watermark.
	MaxRetired uint64 `json:"max_retired"`
	// Active is the current allocated-and-not-retired node count.
	Active uint64 `json:"active"`
	// MaxActive is the paper's max_active — the robustness bound's budget.
	MaxActive uint64 `json:"max_active"`
	// TravSteps and TravRestarts are the domain's cumulative traversal
	// step and restart counters, and GuardTrips counts operations aborted
	// at the traversal step budget. A restart storm shows as TravRestarts
	// (or GuardTrips) climbing while Ops stalls — the live signal that a
	// ballooning Retired backlog is traversal-induced, not a scheme fault.
	TravSteps    uint64 `json:"trav_steps"`
	TravRestarts uint64 `json:"trav_restarts"`
	GuardTrips   uint64 `json:"guard_trips"`
	// Resilience activity on the domain, when an exec/resil layer serves
	// it: cumulative scatter legs shed by admission control, retry legs
	// re-submitted, hedge calls launched, and the shard breaker's current
	// position (BreakerState values; 0 = closed/none). These make
	// resilience *activity* — not just its symptoms — visible to the
	// Monitor and the timeline join.
	Sheds        uint64 `json:"sheds,omitempty"`
	Retries      uint64 `json:"retries,omitempty"`
	Hedges       uint64 `json:"hedges,omitempty"`
	BreakerState uint8  `json:"breaker_state,omitempty"`
}

// Series is a fixed-capacity ring buffer of Points: the sampler pushes,
// readers take ordered copies. Old points are overwritten once the ring is
// full — for the growth fit only the recent window matters, and a bounded
// buffer is what keeps long-lived sampling low-overhead.
type Series struct {
	mu   sync.Mutex
	buf  []Point
	head int // next write position
	n    int // number of valid points (≤ len(buf))
}

// NewSeries builds a series holding at most capacity points; capacity <= 0
// selects 1024.
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Series{buf: make([]Point, capacity)}
}

// Push appends a point, overwriting the oldest once full.
func (s *Series) Push(p Point) {
	s.mu.Lock()
	s.buf[s.head] = p
	s.head = (s.head + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
}

// Len returns the number of buffered points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Points returns the buffered points oldest-first. The copy is safe to
// read while the sampler keeps pushing.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, s.n)
	start := s.head - s.n
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.n; i++ {
		out[i] = s.buf[(start+i)%len(s.buf)]
	}
	return out
}

// Last returns the most recent point, or a zero point when empty.
func (s *Series) Last() (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Point{}, false
	}
	i := s.head - 1
	if i < 0 {
		i += len(s.buf)
	}
	return s.buf[i], true
}

// Probe reads one point per monitored domain. The sampler calls it on
// every tick; the slice must keep the same length and domain order across
// calls (domain i feeds series i). The store's telemetry tap
// (store.Gauges) is the canonical probe.
type Probe func() []Point

// Config sizes a Sampler.
type Config struct {
	// Interval is the sampling tick; 0 selects 1ms.
	Interval time.Duration
	// Capacity is the per-domain ring capacity; 0 selects 1024.
	Capacity int
	// OnSample, when non-nil, receives every point right after it is
	// pushed into domain i's series — the hook the online classifier
	// (Monitor.Observe) feeds from. Called on the sampler goroutine, so
	// it must not block on the sampler itself.
	OnSample func(domain int, p Point)
	// Clock, when non-nil, supplies t=0 for Point.Elapsed stamps. Share
	// one rec.Clock with the chaos engine and the adapt controller and
	// the three logs merge without per-subsystem zero-point skew; nil
	// keeps the old behaviour (a private zero taken at Start).
	Clock *rec.Clock
	// Recorder, when non-nil, receives a KindSamplerGap event whenever
	// ticks are found to have been skipped — sampling gaps become part
	// of the recorded timeline instead of silently flattening series.
	Recorder *rec.Recorder
}

// Sampler polls a Probe on a tick into one Series per domain. Start it
// once; Stop is idempotent and takes a final sample so short runs always
// end with fresh data.
type Sampler struct {
	cfg    Config
	probe  Probe
	series []*Series

	clock    *rec.Clock
	startOff time.Duration // clock reading at Start, for expected-tick math
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	// Tick-health counters. The ticker (time.Ticker) silently drops
	// ticks when the probe outruns the interval; these make every lost
	// or overrunning tick countable so a sampling gap cannot masquerade
	// as a flat series. Written only on the sampler goroutine, read
	// anywhere via Health().
	ticks   atomic.Uint64
	skipped atomic.Uint64
	late    atomic.Uint64
}

// Health is the sampler's self-diagnosis: ticks that fired, ticks the
// ticker dropped because sampling fell behind, and samples whose probe
// took longer than the interval (each of those is about to cause drops).
type Health struct {
	Ticks        uint64 `json:"ticks"`
	SkippedTicks uint64 `json:"skipped_ticks"`
	LateSamples  uint64 `json:"late_samples"`
}

// Health returns the live tick-health counters. Safe to call while the
// sampler runs.
func (s *Sampler) Health() Health {
	return Health{
		Ticks:        s.ticks.Load(),
		SkippedTicks: s.skipped.Load(),
		LateSamples:  s.late.Load(),
	}
}

// NewSampler builds a sampler over probe. The probe is called once here to
// size the per-domain series, so it must already be safe to call.
func NewSampler(cfg Config, probe Probe) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Millisecond
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	s := &Sampler{
		cfg:   cfg,
		probe: probe,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for range probe() {
		s.series = append(s.series, NewSeries(cfg.Capacity))
	}
	return s
}

// Domains returns the number of monitored domains.
func (s *Sampler) Domains() int { return len(s.series) }

// Series returns domain i's series (live: the sampler keeps pushing into
// it until Stop).
func (s *Sampler) Series(i int) *Series { return s.series[i] }

// sample takes one probe reading and distributes it to the series.
func (s *Sampler) sample() {
	pts := s.probe()
	el := s.clock.Now()
	for i, p := range pts {
		if i >= len(s.series) {
			break
		}
		p.Elapsed = el
		s.series[i].Push(p)
		if s.cfg.OnSample != nil {
			s.cfg.OnSample(i, p)
		}
	}
}

// Start launches the sampling goroutine and records t=0 (the shared
// clock's zero when Config.Clock is set, else now). It samples once
// immediately so every series has a baseline point.
func (s *Sampler) Start() {
	if s.clock = s.cfg.Clock; s.clock == nil {
		s.clock = rec.NewClock()
	}
	s.startOff = s.clock.Now()
	s.sample()
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				t0 := time.Now()
				s.sample()
				if time.Since(t0) > s.cfg.Interval {
					s.late.Add(1)
				}
				fired := s.ticks.Add(1)
				// The ticker drops ticks it could not deliver; the gap
				// between elapsed/interval and the fired count is exactly
				// how many.
				expected := uint64((s.clock.Now() - s.startOff) / s.cfg.Interval)
				if expected > fired {
					if miss := expected - fired; miss > s.skipped.Load() {
						newly := miss - s.skipped.Load()
						s.skipped.Store(miss)
						s.cfg.Recorder.Record(rec.KindSamplerGap, -1, 0, newly, s.late.Load(), "")
					}
				}
			}
		}
	}()
}

// Stop halts sampling, takes one final sample, and waits for the
// goroutine to exit. Idempotent.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() {
		close(s.stop)
		<-s.done
		s.sample()
	})
}
