package telemetry

import (
	"sync"

	"repro/internal/smr"
)

// Domain describes one monitored domain (typically one store shard) for
// the online classifier: which scheme currently serves it, what that
// scheme declares, and what "bounded" means for it.
type Domain struct {
	// Scheme is the domain's current reclamation scheme name.
	Scheme string
	// Declared is the scheme's claimed RobustnessClass.
	Declared smr.RobustnessClass
	// Budget frames the domain's fit (workers × retire-scan threshold).
	Budget Budget
}

// MonitorConfig sizes a Monitor.
type MonitorConfig struct {
	// Window is the sliding fit window in points; 0 selects 256. The
	// window is the monitor's memory: verdicts describe the last Window
	// samples, not the whole run, which is what lets a migrated shard's
	// fresh behaviour replace its old scheme's record.
	Window int
	// OnFlip, when non-nil, fires whenever a domain's *conclusive*
	// audited class changes from its previous conclusive reading (the
	// first conclusive reading sets the baseline silently). Called from
	// Observe — i.e. on the sampler goroutine — outside the monitor's
	// lock; it must be cheap and non-blocking. This is how audited-class
	// transitions become flight-recorder events with a timestamp, rather
	// than states someone has to poll for.
	OnFlip func(domain int, old, new smr.RobustnessClass, v Verdict)
}

// Monitor is the online robustness classifier: it consumes sampled
// points as they arrive (wire Observe as the Sampler's OnSample hook)
// and keeps one incremental WindowFit per domain, so a per-shard Verdict
// is readable at any instant mid-run — the evidence feed the adaptive
// controller (internal/adapt) decides on. An Ops regression (shard
// reopened or migrated) resets that domain's window automatically.
type Monitor struct {
	window int
	onFlip func(domain int, old, new smr.RobustnessClass, v Verdict)

	mu      sync.Mutex
	domains []Domain
	fits    []*WindowFit
	// lastClass/lastValid track each domain's previous conclusive audited
	// class, the flip detector's memory. SetDomain clears them: a fresh
	// incarnation re-baselines.
	lastClass []smr.RobustnessClass
	lastValid []bool
	// slo marks domains whose tail-latency SLO is currently breached —
	// the orthogonal verdict dimension that distinguishes "robust but
	// slow" from "not robust". Fed by SetSLO (typically from an
	// obs.SLOSet transition hook), copied into every Verdict.
	slo []bool
}

// NewMonitor builds a monitor over the given domains; domain i consumes
// the sampler's domain-i points (store shard i under the store.Gauges
// probe convention).
func NewMonitor(cfg MonitorConfig, domains []Domain) *Monitor {
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	m := &Monitor{window: cfg.Window, onFlip: cfg.OnFlip, domains: append([]Domain(nil), domains...)}
	m.fits = make([]*WindowFit, len(m.domains))
	m.lastClass = make([]smr.RobustnessClass, len(m.domains))
	m.lastValid = make([]bool, len(m.domains))
	m.slo = make([]bool, len(m.domains))
	for i := range m.fits {
		m.fits[i] = NewWindowFit(cfg.Window)
	}
	return m
}

// Domains returns the number of monitored domains.
func (m *Monitor) Domains() int { return len(m.domains) }

// Observe feeds one sampled point into domain i's window. Its signature
// matches the Sampler's OnSample hook. When an OnFlip hook is installed,
// the window is re-fitted after the push (O(1), window.go) and a changed
// conclusive audited class fires the hook.
func (m *Monitor) Observe(domain int, p Point) {
	if domain < 0 || domain >= len(m.fits) {
		return
	}
	m.mu.Lock()
	m.fits[domain].Push(p)
	if m.onFlip == nil {
		m.mu.Unlock()
		return
	}
	d := m.domains[domain]
	fit := m.fits[domain].Fit(d.Budget)
	fit.Sanitize()
	v := NewVerdict(d.Scheme, d.Declared, fit)
	fire := false
	var old, cls smr.RobustnessClass
	if !v.Inconclusive() {
		cls = v.AuditedClass()
		if m.lastValid[domain] && m.lastClass[domain] != cls {
			fire, old = true, m.lastClass[domain]
		}
		m.lastClass[domain], m.lastValid[domain] = cls, true
	}
	m.mu.Unlock()
	if fire {
		m.onFlip(domain, old, cls, v)
	}
}

// SetDomain rebinds domain i to a new scheme — called after a live
// migration — and resets its window: the old scheme's evidence does not
// transfer to the new heap.
func (m *Monitor) SetDomain(domain int, scheme string, declared smr.RobustnessClass) {
	if domain < 0 || domain >= len(m.domains) {
		return
	}
	m.mu.Lock()
	m.domains[domain].Scheme = scheme
	m.domains[domain].Declared = declared
	m.fits[domain].Reset()
	m.lastValid[domain] = false
	m.mu.Unlock()
}

// Restarts returns how many window resets (domain incarnations) domain i
// has absorbed, SetDomain rebinds included.
func (m *Monitor) Restarts(domain int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if domain < 0 || domain >= len(m.fits) {
		return 0
	}
	return m.fits[domain].Resets()
}

// SetSLO flips domain i's tail-latency SLO dimension: breached marks
// the domain "slow" orthogonally to its backlog-growth class, so a
// consumer can tell "robust but slow" (de-escalation candidate) from
// "not robust" (escalation candidate). Typically wired from an
// obs.SLOSet transition hook.
func (m *Monitor) SetSLO(domain int, breached bool) {
	if domain < 0 || domain >= len(m.slo) {
		return
	}
	m.mu.Lock()
	m.slo[domain] = breached
	m.mu.Unlock()
}

// SLOBreached reports domain i's current SLO dimension.
func (m *Monitor) SLOBreached(domain int) bool {
	if domain < 0 || domain >= len(m.slo) {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.slo[domain]
}

// Verdict returns domain i's live windowed verdict: the current window's
// fit related to the domain's declared class, carrying the domain's SLO
// dimension. Safe to call while the sampler keeps observing.
func (m *Monitor) Verdict(domain int) Verdict {
	m.mu.Lock()
	defer m.mu.Unlock()
	if domain < 0 || domain >= len(m.fits) {
		return Verdict{}
	}
	d := m.domains[domain]
	fit := m.fits[domain].Fit(d.Budget)
	fit.Sanitize()
	v := NewVerdict(d.Scheme, d.Declared, fit)
	v.SLOBreached = m.slo[domain]
	return v
}

// Verdicts returns every domain's live verdict.
func (m *Monitor) Verdicts() []Verdict {
	out := make([]Verdict, len(m.fits))
	for i := range out {
		out[i] = m.Verdict(i)
	}
	return out
}
