package telemetry

import (
	"sync"

	"repro/internal/smr"
)

// Domain describes one monitored domain (typically one store shard) for
// the online classifier: which scheme currently serves it, what that
// scheme declares, and what "bounded" means for it.
type Domain struct {
	// Scheme is the domain's current reclamation scheme name.
	Scheme string
	// Declared is the scheme's claimed RobustnessClass.
	Declared smr.RobustnessClass
	// Budget frames the domain's fit (workers × retire-scan threshold).
	Budget Budget
}

// MonitorConfig sizes a Monitor.
type MonitorConfig struct {
	// Window is the sliding fit window in points; 0 selects 256. The
	// window is the monitor's memory: verdicts describe the last Window
	// samples, not the whole run, which is what lets a migrated shard's
	// fresh behaviour replace its old scheme's record.
	Window int
}

// Monitor is the online robustness classifier: it consumes sampled
// points as they arrive (wire Observe as the Sampler's OnSample hook)
// and keeps one incremental WindowFit per domain, so a per-shard Verdict
// is readable at any instant mid-run — the evidence feed the adaptive
// controller (internal/adapt) decides on. An Ops regression (shard
// reopened or migrated) resets that domain's window automatically.
type Monitor struct {
	window int

	mu      sync.Mutex
	domains []Domain
	fits    []*WindowFit
}

// NewMonitor builds a monitor over the given domains; domain i consumes
// the sampler's domain-i points (store shard i under the store.Gauges
// probe convention).
func NewMonitor(cfg MonitorConfig, domains []Domain) *Monitor {
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	m := &Monitor{window: cfg.Window, domains: append([]Domain(nil), domains...)}
	m.fits = make([]*WindowFit, len(m.domains))
	for i := range m.fits {
		m.fits[i] = NewWindowFit(cfg.Window)
	}
	return m
}

// Domains returns the number of monitored domains.
func (m *Monitor) Domains() int { return len(m.domains) }

// Observe feeds one sampled point into domain i's window. Its signature
// matches the Sampler's OnSample hook.
func (m *Monitor) Observe(domain int, p Point) {
	if domain < 0 || domain >= len(m.fits) {
		return
	}
	m.mu.Lock()
	m.fits[domain].Push(p)
	m.mu.Unlock()
}

// SetDomain rebinds domain i to a new scheme — called after a live
// migration — and resets its window: the old scheme's evidence does not
// transfer to the new heap.
func (m *Monitor) SetDomain(domain int, scheme string, declared smr.RobustnessClass) {
	if domain < 0 || domain >= len(m.domains) {
		return
	}
	m.mu.Lock()
	m.domains[domain].Scheme = scheme
	m.domains[domain].Declared = declared
	m.fits[domain].Reset()
	m.mu.Unlock()
}

// Restarts returns how many window resets (domain incarnations) domain i
// has absorbed, SetDomain rebinds included.
func (m *Monitor) Restarts(domain int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if domain < 0 || domain >= len(m.fits) {
		return 0
	}
	return m.fits[domain].Resets()
}

// Verdict returns domain i's live windowed verdict: the current window's
// fit related to the domain's declared class. Safe to call while the
// sampler keeps observing.
func (m *Monitor) Verdict(domain int) Verdict {
	m.mu.Lock()
	defer m.mu.Unlock()
	if domain < 0 || domain >= len(m.fits) {
		return Verdict{}
	}
	d := m.domains[domain]
	fit := m.fits[domain].Fit(d.Budget)
	fit.Sanitize()
	return NewVerdict(d.Scheme, d.Declared, fit)
}

// Verdicts returns every domain's live verdict.
func (m *Monitor) Verdicts() []Verdict {
	out := make([]Verdict, len(m.fits))
	for i := range out {
		out[i] = m.Verdict(i)
	}
	return out
}
