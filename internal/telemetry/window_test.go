package telemetry

import (
	"testing"
	"time"

	"repro/internal/smr"
)

// feed pushes points into a fresh WindowFit of the given capacity.
func feed(capacity int, pts []Point) *WindowFit {
	w := NewWindowFit(capacity)
	for _, p := range pts {
		w.Push(p)
	}
	return w
}

// TestWindowFitMatchesBatchFit checks the incremental fit agrees with
// the batch FitPoints on the same window — unbounded, bounded, and
// plateau shapes alike — since the online classifier's verdicts carry
// exactly as much weight as the batch audit's.
func TestWindowFitMatchesBatchFit(t *testing.T) {
	budget := Budget{Threads: 2, Threshold: 16}
	shapes := map[string]func(i int) uint64{
		"unbounded": func(i int) uint64 { return uint64(i) * 100 },
		"bounded":   func(i int) uint64 { return uint64(4 + i%7) },
		"plateau":   func(i int) uint64 { return uint64(budget.robustPlateau())*4 + uint64(i%3) },
	}
	for name, retired := range shapes {
		pts := synth(20, 100, retired)
		batch := FitPoints(pts, budget)
		win := feed(len(pts), pts).Fit(budget)
		if win != batch {
			t.Errorf("%s: window fit %+v != batch fit %+v", name, win, batch)
		}
	}
}

// TestWindowFitSlides checks eviction: after pushing 2×capacity points
// the fit must equal the batch fit of the last capacity points — sums
// subtracted exactly, the peak deque following the window.
func TestWindowFitSlides(t *testing.T) {
	budget := Budget{Threads: 2, Threshold: 16}
	// An early spike the window must forget once it slides past.
	retired := func(i int) uint64 {
		if i == 3 {
			return 100000
		}
		return uint64(5 + i%4)
	}
	pts := synth(40, 100, retired)
	w := feed(20, pts)
	if w.Len() != 20 {
		t.Fatalf("window len = %d, want 20", w.Len())
	}
	got := w.Fit(budget)
	want := FitPoints(pts[20:], budget)
	if got != want {
		t.Fatalf("slid window fit %+v != batch fit of tail %+v", got, want)
	}
	if got.PeakRetired == 100000 {
		t.Fatal("evicted spike still reported as the window peak")
	}
}

// TestWindowFitEmptyWindow checks the degenerate no-data case: zero
// samples, bounded growth, and a verdict that refuses to conclude.
func TestWindowFitEmptyWindow(t *testing.T) {
	w := NewWindowFit(8)
	f := w.Fit(Budget{Threads: 1, Threshold: 16})
	if f.Samples != 0 || f.Growth != GrowthBounded || f.Ops != 0 {
		t.Fatalf("empty window fit = %+v", f)
	}
	v := NewVerdict("ebr", smr.NotRobust, f)
	if !v.Inconclusive() {
		t.Fatalf("empty window verdict = %s, want inconclusive", v.Outcome)
	}
	// Capacity 0 must clamp, not panic.
	if NewWindowFit(0).Fit(Budget{}).Samples != 0 {
		t.Fatal("zero-capacity window misbehaved")
	}
}

// TestWindowFitSingleTick checks a one-point window: no ops progress, no
// slope, inconclusive verdict.
func TestWindowFitSingleTick(t *testing.T) {
	w := feed(8, []Point{{Ops: 500, Retired: 40, MaxActive: 100}})
	f := w.Fit(Budget{Threads: 2, Threshold: 16})
	if f.Samples != 1 || f.Ops != 0 || f.Slope != 0 {
		t.Fatalf("single-tick fit = %+v", f)
	}
	if v := NewVerdict("hp", smr.Robust, f); !v.Inconclusive() {
		t.Fatalf("single-tick verdict = %s, want inconclusive", v.Outcome)
	}
}

// TestWindowFitConstantSeries checks a flat, progress-free series (a
// stalled or idle domain): the degenerate determinant must yield slope 0
// (not NaN), and identical Ops across the window means inconclusive, not
// a fabricated class.
func TestWindowFitConstantSeries(t *testing.T) {
	pts := make([]Point, 10)
	for i := range pts {
		pts[i] = Point{Ops: 1000, Retired: 50}
	}
	f := feed(10, pts).Fit(Budget{Threads: 2, Threshold: 16})
	if f.Slope != 0 {
		t.Fatalf("constant series slope = %v, want 0", f.Slope)
	}
	if f.Plateau != 50 || f.PeakRetired != 50 {
		t.Fatalf("constant series plateau = %v peak = %d", f.Plateau, f.PeakRetired)
	}
	if f.Ops != 0 {
		t.Fatalf("constant series ops progress = %d, want 0", f.Ops)
	}
	if v := NewVerdict("ebr", smr.NotRobust, f); !v.Inconclusive() {
		t.Fatalf("progress-free verdict = %s, want inconclusive", v.Outcome)
	}
}

// TestWindowFitResetsOnOpsRegression checks the online restart
// semantics: a migrated or reopened domain's fresh counters reset the
// window, and the fit describes only the new incarnation.
func TestWindowFitResetsOnOpsRegression(t *testing.T) {
	w := NewWindowFit(64)
	for _, p := range synth(20, 100, func(i int) uint64 { return uint64(i) * 100 }) {
		w.Push(p)
	}
	if w.Resets() != 0 {
		t.Fatalf("resets before regression = %d", w.Resets())
	}
	// The new incarnation: counters restart near zero and stay flat.
	for i := 0; i < 10; i++ {
		w.Push(Point{Ops: uint64(i) * 50, Retired: 3})
	}
	if w.Resets() != 1 {
		t.Fatalf("resets after regression = %d, want 1", w.Resets())
	}
	if w.Len() != 10 {
		t.Fatalf("window len after reset = %d, want 10", w.Len())
	}
	f := w.Fit(Budget{Threads: 2, Threshold: 16})
	if f.Growth != GrowthBounded {
		t.Fatalf("post-reset growth = %v (plateau %v), want bounded", f.Growth, f.Plateau)
	}
}

// TestMonitorEmitsMidRunVerdicts drives the full online path: sampler
// hook → monitor window → live verdict, then a SetDomain rebind after a
// simulated migration.
func TestMonitorEmitsMidRunVerdicts(t *testing.T) {
	budget := Budget{Threads: 2, Threshold: 16}
	m := NewMonitor(MonitorConfig{Window: 64}, []Domain{
		{Scheme: "ebr", Declared: smr.NotRobust, Budget: budget},
		{Scheme: "hp", Declared: smr.Robust, Budget: budget},
	})
	if m.Domains() != 2 {
		t.Fatalf("domains = %d", m.Domains())
	}
	// Mid-run: the ebr domain grows unbounded, the hp domain stays flat.
	for i := 0; i < 20; i++ {
		el := time.Duration(i) * time.Millisecond
		m.Observe(0, Point{Elapsed: el, Ops: uint64(i) * 100, Retired: uint64(i) * 100})
		m.Observe(1, Point{Elapsed: el, Ops: uint64(i) * 100, Retired: uint64(4 + i%5)})
	}
	v0, v1 := m.Verdict(0), m.Verdict(1)
	if v0.Audited != "not-robust" || v0.Outcome != "confirmed" {
		t.Fatalf("ebr mid-run verdict = %s/%s", v0.Audited, v0.Outcome)
	}
	if v1.Audited != "robust" || v1.Outcome != "confirmed" {
		t.Fatalf("hp mid-run verdict = %s/%s", v1.Audited, v1.Outcome)
	}
	// Migration: domain 0 rebinds to ibr and its evidence restarts.
	m.SetDomain(0, "ibr", smr.WeaklyRobust)
	if got := m.Verdict(0); !got.Inconclusive() || got.Scheme != "ibr" {
		t.Fatalf("post-rebind verdict = %+v, want inconclusive ibr", got)
	}
	if m.Restarts(0) != 1 {
		t.Fatalf("restarts = %d, want 1", m.Restarts(0))
	}
	// The new incarnation's flat telemetry earns ibr a "stronger".
	for i := 0; i < 20; i++ {
		m.Observe(0, Point{Ops: uint64(i) * 100, Retired: uint64(2 + i%3)})
	}
	if got := m.Verdict(0); got.Audited != "robust" || got.Outcome != "stronger" {
		t.Fatalf("post-migration verdict = %s/%s", got.Audited, got.Outcome)
	}
	if vs := m.Verdicts(); len(vs) != 2 {
		t.Fatalf("verdicts = %d", len(vs))
	}
	// Out-of-range domains are ignored, not panics.
	m.Observe(9, Point{})
	if v := m.Verdict(9); v.Scheme != "" {
		t.Fatalf("out-of-range verdict = %+v", v)
	}
}
