package workload

// RNG is a splitmix64 pseudo-random generator: cheap, seedable, and
// stateless enough to live in each stream without synchronization.
type RNG uint64

const golden = 0x9e3779b97f4a7c15

// Next returns the next 64 pseudo-random bits: the finalizer applied to
// the advancing state (mix64 folds the golden-ratio step in).
func (r *RNG) Next() uint64 {
	v := mix64(uint64(*r))
	*r += golden
	return v
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// mix64 is a stateless splitmix64 finalizer, used to scramble ranks into
// keys without a stored permutation. The golden-ratio salt keeps 0 from
// being a fixed point — rank 0 is zipfian's hottest rank, and an unsalted
// finalizer would pin it to key 0, the head of every sorted structure.
func mix64(z uint64) uint64 {
	z += golden
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}
