package workload

import (
	"encoding/json"
	"fmt"
)

// ReqKind is an abstract *request* shape — one level above Op. Where an
// Op stream models point-op traffic, a Req stream models the service
// request graph the exec layer serves: point batches, multi-key fan-out
// operations, and range queries that scatter across every shard.
type ReqKind uint8

// Request shapes, in mix order.
const (
	// ReqPoint is a batch of independent point operations (the classic
	// store.Do shape).
	ReqPoint ReqKind = iota
	// ReqMultiGet reads membership of several keys as one operation.
	ReqMultiGet
	// ReqMultiInsert inserts several keys as one operation.
	ReqMultiInsert
	// ReqMultiDelete deletes several keys as one operation.
	ReqMultiDelete
	// ReqRangeScan collects the live keys inside [Lo, Hi).
	ReqRangeScan
	// ReqRangeCount counts the live keys inside [Lo, Hi).
	ReqRangeCount
	reqKindCount
)

var reqKindNames = [reqKindCount]string{
	ReqPoint:       "point",
	ReqMultiGet:    "multiget",
	ReqMultiInsert: "multiinsert",
	ReqMultiDelete: "multidelete",
	ReqRangeScan:   "rangescan",
	ReqRangeCount:  "rangecount",
}

// String returns the request-kind name.
func (k ReqKind) String() string {
	if int(k) < len(reqKindNames) {
		return reqKindNames[k]
	}
	return fmt.Sprintf("reqkind(%d)", uint8(k))
}

// ReqMix is a request-shape mix in percent; the six fields must sum to
// 100. It is to Req streams what Mix is to Op streams.
type ReqMix struct {
	PointPct       int
	MultiGetPct    int
	MultiInsertPct int
	MultiDeletePct int
	RangeScanPct   int
	RangeCountPct  int
}

// String renders the mix as "p/g/i/d/s/c".
func (m ReqMix) String() string {
	return fmt.Sprintf("%d/%d/%d/%d/%d/%d",
		m.PointPct, m.MultiGetPct, m.MultiInsertPct, m.MultiDeletePct, m.RangeScanPct, m.RangeCountPct)
}

// Validate reports whether the mix is a well-formed percentage set:
// non-negative components summing to 100.
func (m ReqMix) Validate() error {
	parts := []int{m.PointPct, m.MultiGetPct, m.MultiInsertPct, m.MultiDeletePct, m.RangeScanPct, m.RangeCountPct}
	sum := 0
	for _, p := range parts {
		if p < 0 {
			return fmt.Errorf("workload: request mix %v has a negative component", m)
		}
		sum += p
	}
	if sum != 100 {
		return fmt.Errorf("workload: request mix %v sums to %d, want 100", m, sum)
	}
	return nil
}

// MarshalJSON renders the mix as its "p/g/i/d/s/c" string.
func (m ReqMix) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", m.String())), nil
}

// UnmarshalJSON parses the "p/g/i/d/s/c" string form.
func (m *ReqMix) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseReqMix(s)
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// ParseReqMix parses a "p/g/i/d/s/c" percentage sextuple.
func ParseReqMix(s string) (ReqMix, error) {
	var m ReqMix
	if _, err := fmt.Sscanf(s, "%d/%d/%d/%d/%d/%d",
		&m.PointPct, &m.MultiGetPct, &m.MultiInsertPct, &m.MultiDeletePct, &m.RangeScanPct, &m.RangeCountPct); err != nil {
		return ReqMix{}, fmt.Errorf("workload: request mix %q is not p/g/i/d/s/c percentages: %v", s, err)
	}
	if err := m.Validate(); err != nil {
		return ReqMix{}, err
	}
	return m, nil
}

// Standard request mixes for the pipeline experiments: pure fan-out
// (every request scatters), a mixed service shape, and range-heavy
// analytic traffic.
var (
	ReqMixFanout     = ReqMix{0, 40, 20, 20, 10, 10}
	ReqMixMixed      = ReqMix{50, 20, 10, 10, 5, 5}
	ReqMixRangeHeavy = ReqMix{20, 10, 5, 5, 40, 20}
)

// Req is one drawn service request: a kind, the keys a multi-key request
// touches (point batches reuse Keys with per-key Ops), or the [Lo, Hi)
// interval a range request covers.
type Req struct {
	Kind ReqKind
	// Ops holds the per-key point operations for ReqPoint requests.
	Ops []Op
	// Keys are the multi-key request's targets (ReqMultiGet/Insert/Delete).
	Keys []int64
	// Lo and Hi bound a range request's half-open interval.
	Lo, Hi int64
}

// ReqConfig names a request workload: the key distribution the keys come
// from, the request-shape mix, and the fan-out geometry.
type ReqConfig struct {
	// Dist is the key distribution name; empty selects "uniform".
	Dist string
	// KeyRange is the key universe size [0, KeyRange).
	KeyRange int
	// Mix is the request-shape mix; zero selects ReqMixMixed.
	Mix ReqMix
	// OpMix is the point-batch operation mix; zero selects MixBalanced.
	OpMix Mix
	// BatchSize is the point-batch length; 0 selects 16.
	BatchSize int
	// MultiSize is the key count per multi-key request; 0 selects 8.
	MultiSize int
	// RangeSpan is the width of range-request intervals; 0 selects
	// KeyRange/16 (min 16).
	RangeSpan int
	// Seed makes every stream deterministic.
	Seed uint64
}

func (cfg *ReqConfig) fill() error {
	if cfg.Dist == "" {
		cfg.Dist = "uniform"
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 1024
	}
	if cfg.Mix == (ReqMix{}) {
		cfg.Mix = ReqMixMixed
	}
	if err := cfg.Mix.Validate(); err != nil {
		return err
	}
	if cfg.OpMix == (Mix{}) {
		cfg.OpMix = MixBalanced
	}
	if err := cfg.OpMix.Validate(); err != nil {
		return err
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.MultiSize <= 0 {
		cfg.MultiSize = 8
	}
	if cfg.RangeSpan <= 0 {
		cfg.RangeSpan = cfg.KeyRange / 16
		if cfg.RangeSpan < 16 {
			cfg.RangeSpan = 16
		}
	}
	return nil
}

// ReqSource builds per-client request streams for one request workload.
type ReqSource struct {
	dist Dist
	cfg  ReqConfig
}

// NewReqSource resolves the named distribution into a request source.
func NewReqSource(cfg ReqConfig) (*ReqSource, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	dist, err := NewDist(cfg.Dist, cfg.KeyRange)
	if err != nil {
		return nil, err
	}
	return &ReqSource{dist: dist, cfg: cfg}, nil
}

// Config returns the resolved configuration.
func (s *ReqSource) Config() ReqConfig { return s.cfg }

// Thread returns client tid's request stream of the given nominal length
// (the length only parameterizes phase-aware distributions; streams keep
// drawing past it). Streams for distinct (tid, seed) pairs are
// independent and deterministic.
func (s *ReqSource) Thread(tid, total int) *ReqStream {
	return &ReqStream{
		src:   s,
		rng:   RNG(s.cfg.Seed + 0x9e3779b9 + uint64(tid)<<32),
		total: total,
	}
}

// ReqStream is one client's deterministic request sequence.
type ReqStream struct {
	src   *ReqSource
	rng   RNG
	i     int
	total int
}

// Next draws the stream's next request. The returned Req's slices are
// freshly allocated and owned by the caller.
func (st *ReqStream) Next() Req {
	cfg := &st.src.cfg
	m := cfg.Mix
	roll := int(st.rng.Next() % 100)
	var kind ReqKind
	switch {
	case roll < m.PointPct:
		kind = ReqPoint
	case roll < m.PointPct+m.MultiGetPct:
		kind = ReqMultiGet
	case roll < m.PointPct+m.MultiGetPct+m.MultiInsertPct:
		kind = ReqMultiInsert
	case roll < m.PointPct+m.MultiGetPct+m.MultiInsertPct+m.MultiDeletePct:
		kind = ReqMultiDelete
	case roll < m.PointPct+m.MultiGetPct+m.MultiInsertPct+m.MultiDeletePct+m.RangeScanPct:
		kind = ReqRangeScan
	default:
		kind = ReqRangeCount
	}
	req := Req{Kind: kind}
	switch kind {
	case ReqPoint:
		req.Ops = make([]Op, cfg.BatchSize)
		req.Keys = make([]int64, cfg.BatchSize)
		for i := range req.Keys {
			opRoll := int(st.rng.Next() % 100)
			switch {
			case opRoll < cfg.OpMix.ContainsPct:
				req.Ops[i] = OpContains
			case opRoll < cfg.OpMix.ContainsPct+cfg.OpMix.InsertPct:
				req.Ops[i] = OpInsert
			default:
				req.Ops[i] = OpDelete
			}
			req.Keys[i] = st.src.dist.Key(&st.rng, st.i, st.total)
		}
	case ReqMultiGet, ReqMultiInsert, ReqMultiDelete:
		req.Keys = make([]int64, cfg.MultiSize)
		for i := range req.Keys {
			req.Keys[i] = st.src.dist.Key(&st.rng, st.i, st.total)
		}
	case ReqRangeScan, ReqRangeCount:
		// Anchor the interval at a distribution-drawn key so range traffic
		// concentrates where point traffic does (a zipfian-hot region gets
		// zipfian-hot scans), clamped inside the universe.
		lo := st.src.dist.Key(&st.rng, st.i, st.total)
		if max := int64(cfg.KeyRange - cfg.RangeSpan); lo > max {
			lo = max
		}
		if lo < 0 {
			lo = 0
		}
		req.Lo, req.Hi = lo, lo+int64(cfg.RangeSpan)
	}
	st.i++
	return req
}
