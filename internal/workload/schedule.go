package workload

import (
	"fmt"
	"sort"
)

// Schedule modulates the operation mix over the life of a stream.
type Schedule interface {
	// Name is the registry key.
	Name() string
	// MixAt returns the mix in force at operation i of a total-operation
	// stream.
	MixAt(i, total int) Mix
	// YieldEvery returns k > 0 when the schedule simulates an
	// oversubscribed machine by yielding the processor every k operations;
	// 0 means never.
	YieldEvery() int
}

// ScheduleFactory builds a schedule around a base mix.
type ScheduleFactory func(base Mix) Schedule

var schedules = map[string]ScheduleFactory{
	"steady":  func(base Mix) Schedule { return steady{base: base} },
	"phased":  func(base Mix) Schedule { return phased{base: base, phases: 8} },
	"oversub": func(base Mix) Schedule { return oversub{base: base, every: 64} },
}

// RegisterSchedule adds a schedule to the registry; later registrations
// under the same name win.
func RegisterSchedule(name string, f ScheduleFactory) { schedules[name] = f }

// ScheduleNames returns every registered schedule name, sorted.
func ScheduleNames() []string {
	names := make([]string, 0, len(schedules))
	for n := range schedules {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewSchedule builds the named schedule around base.
func NewSchedule(name string, base Mix) (Schedule, error) {
	f, ok := schedules[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown schedule %q (have %v)", name, ScheduleNames())
	}
	return f(base), nil
}

// --- steady -----------------------------------------------------------------

type steady struct{ base Mix }

func (steady) Name() string         { return "steady" }
func (s steady) MixAt(_, _ int) Mix { return s.base }
func (steady) YieldEvery() int      { return 0 }

// --- phased -----------------------------------------------------------------

// phased alternates read-burst phases (96% contains) with base-mix phases,
// the diurnal read-burst shape: reclamation schemes accumulate retirements
// during the update phases and must drain them under read pressure.
type phased struct {
	base   Mix
	phases int
}

// MixReadBurst is the mix of the read phases of the phased schedule.
var MixReadBurst = Mix{96, 2, 2}

func (phased) Name() string { return "phased" }

func (p phased) MixAt(i, total int) Mix {
	if total <= 0 {
		return p.base
	}
	phase := i * p.phases / total
	if phase >= p.phases {
		phase = p.phases - 1
	}
	if phase%2 == 0 {
		return MixReadBurst
	}
	return p.base
}

func (phased) YieldEvery() int { return 0 }

// --- oversub ----------------------------------------------------------------

// oversub runs the base mix but surrenders the processor every few
// operations, the behaviour of a thread on a machine with more runnable
// threads than cores. Schemes whose bounds depend on threads making
// progress (epochs advancing, scans completing) feel this schedule the
// most — it is the benign cousin of the paper's fully stalled thread.
type oversub struct {
	base  Mix
	every int
}

func (oversub) Name() string         { return "oversub" }
func (o oversub) MixAt(_, _ int) Mix { return o.base }
func (o oversub) YieldEvery() int    { return o.every }
