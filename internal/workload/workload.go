// Package workload composes benchmark scenarios from two orthogonal,
// by-name-selectable parts: a key distribution (which keys an operation
// stream touches) and an op-mix schedule (which operations it performs,
// possibly changing over the run). The benchmark engine asks a Source for
// one Stream per thread and drives its data structure from the stream, so
// a new scenario is a registry entry — data, not harness code.
//
// The built-in distributions are uniform, zipfian (YCSB-style scrambled
// zipf, theta 0.99), hotset (90% of operations on 10% of the keys), and
// shifting (a uniform window that slides across the key space as the run
// progresses — churn in the working set). The built-in schedules are
// steady (a constant mix), phased (alternating read-burst and base-mix
// phases), and oversub (a steady mix with forced processor yields,
// standing in for more runnable threads than cores).
package workload

import (
	"encoding/json"
	"fmt"
	"runtime"
)

// Op is an abstract set operation drawn from a stream.
type Op uint8

// Operations of the set abstract data type, in mix order.
const (
	OpContains Op = iota
	OpInsert
	OpDelete
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return "contains"
}

// Mix is an operation mix in percent; the three fields must sum to 100.
type Mix struct {
	ContainsPct int
	InsertPct   int
	DeletePct   int
}

// String renders the mix as "c/i/d".
func (m Mix) String() string {
	return fmt.Sprintf("%d/%d/%d", m.ContainsPct, m.InsertPct, m.DeletePct)
}

// Validate reports whether the mix is a well-formed percentage triple:
// non-negative components summing to 100.
func (m Mix) Validate() error {
	if m.ContainsPct < 0 || m.InsertPct < 0 || m.DeletePct < 0 {
		return fmt.Errorf("workload: mix %v has a negative component", m)
	}
	if sum := m.ContainsPct + m.InsertPct + m.DeletePct; sum != 100 {
		return fmt.Errorf("workload: mix %v sums to %d, want 100", m, sum)
	}
	return nil
}

// MarshalJSON renders the mix as its "c/i/d" string.
func (m Mix) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", m.String())), nil
}

// UnmarshalJSON parses the "c/i/d" string form.
func (m *Mix) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseMix(s)
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// ParseMix parses a "c/i/d" percentage triple.
func ParseMix(s string) (Mix, error) {
	var m Mix
	if _, err := fmt.Sscanf(s, "%d/%d/%d", &m.ContainsPct, &m.InsertPct, &m.DeletePct); err != nil {
		return Mix{}, fmt.Errorf("workload: mix %q is not c/i/d percentages: %v", s, err)
	}
	if err := m.Validate(); err != nil {
		return Mix{}, err
	}
	return m, nil
}

// Standard mixes used across the experiments (read-heavy, mixed,
// update-only), matching the sweeps in the IBR/NBR/VBR evaluations.
var (
	MixReadHeavy  = Mix{90, 5, 5}
	MixBalanced   = Mix{50, 25, 25}
	MixUpdateOnly = Mix{0, 50, 50}
)

// Config names a workload: a key distribution and an op-mix schedule by
// registry name, plus their shared parameters.
type Config struct {
	// Dist is the key distribution name; empty selects "uniform".
	Dist string
	// Schedule is the op-mix schedule name; empty selects "steady".
	Schedule string
	// KeyRange is the key universe size [0, KeyRange).
	KeyRange int
	// Mix is the base operation mix the schedule modulates.
	Mix Mix
	// Seed makes every stream deterministic.
	Seed uint64
}

// Source builds per-thread operation streams for one workload.
type Source struct {
	dist  Dist
	sched Schedule
	cfg   Config
}

// New resolves the named distribution and schedule into a Source.
func New(cfg Config) (*Source, error) {
	if cfg.Dist == "" {
		cfg.Dist = "uniform"
	}
	if cfg.Schedule == "" {
		cfg.Schedule = "steady"
	}
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 1024
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = MixBalanced
	}
	if err := cfg.Mix.Validate(); err != nil {
		return nil, err
	}
	dist, err := NewDist(cfg.Dist, cfg.KeyRange)
	if err != nil {
		return nil, err
	}
	sched, err := NewSchedule(cfg.Schedule, cfg.Mix)
	if err != nil {
		return nil, err
	}
	return &Source{dist: dist, sched: sched, cfg: cfg}, nil
}

// Config returns the resolved configuration.
func (s *Source) Config() Config { return s.cfg }

// Steady derives a source sharing this source's key distribution but with
// a steady schedule around the base mix and its own seed — the benchmark
// engine's warmup shape. Sharing the distribution avoids repeating its
// construction cost (zipfian's zeta sum is O(KeyRange)).
func (s *Source) Steady(seed uint64) *Source {
	cfg := s.cfg
	cfg.Schedule = "steady"
	cfg.Seed = seed
	return &Source{dist: s.dist, sched: steady{base: cfg.Mix}, cfg: cfg}
}

// Name renders the workload as "dist/schedule".
func (s *Source) Name() string { return s.dist.Name() + "/" + s.sched.Name() }

// Thread returns thread tid's operation stream of the given length. Streams
// for distinct (tid, seed) pairs are independent and deterministic.
func (s *Source) Thread(tid, total int) *Stream {
	return &Stream{
		src:   s,
		rng:   RNG(s.cfg.Seed + uint64(tid)<<32),
		total: total,
		yield: s.sched.YieldEvery(),
	}
}

// Stream is one thread's deterministic operation sequence.
type Stream struct {
	src   *Source
	rng   RNG
	i     int
	total int
	yield int
}

// Next draws the stream's next operation and key. After the declared total
// the stream keeps drawing with the final phase's mix.
func (st *Stream) Next() (Op, int64) {
	mix := st.src.sched.MixAt(st.i, st.total)
	roll := int(st.rng.Next() % 100)
	var op Op
	switch {
	case roll < mix.ContainsPct:
		op = OpContains
	case roll < mix.ContainsPct+mix.InsertPct:
		op = OpInsert
	default:
		op = OpDelete
	}
	key := st.src.dist.Key(&st.rng, st.i, st.total)
	st.i++
	if st.yield > 0 && st.i%st.yield == 0 {
		// The oversubscription schedule: give up the processor mid-quantum,
		// as a descheduled thread on an oversubscribed box would.
		runtime.Gosched()
	}
	return op, key
}
