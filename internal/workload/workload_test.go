package workload

import (
	"testing"
)

func drawKeys(t *testing.T, dist, sched string, n int) ([]int64, []Op) {
	t.Helper()
	src, err := New(Config{Dist: dist, Schedule: sched, KeyRange: 1024, Mix: MixBalanced, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	st := src.Thread(0, n)
	keys := make([]int64, n)
	ops := make([]Op, n)
	for i := range keys {
		ops[i], keys[i] = st.Next()
	}
	return keys, ops
}

func TestStreamsAreDeterministic(t *testing.T) {
	for _, dist := range DistNames() {
		a, aops := drawKeys(t, dist, "steady", 2000)
		b, bops := drawKeys(t, dist, "steady", 2000)
		for i := range a {
			if a[i] != b[i] || aops[i] != bops[i] {
				t.Fatalf("%s: draw %d differs: (%v,%d) vs (%v,%d)", dist, i, aops[i], a[i], bops[i], b[i])
			}
		}
	}
}

func TestThreadsAreIndependent(t *testing.T) {
	src, err := New(Config{Dist: "uniform", KeyRange: 1 << 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := src.Thread(0, 100), src.Thread(1, 100)
	same := 0
	for i := 0; i < 100; i++ {
		_, k0 := s0.Next()
		_, k1 := s1.Next()
		if k0 == k1 {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("threads drew %d/100 identical keys over a 2^20 range", same)
	}
}

func TestKeysInRange(t *testing.T) {
	for _, dist := range DistNames() {
		keys, _ := drawKeys(t, dist, "steady", 5000)
		for _, k := range keys {
			if k < 0 || k >= 1024 {
				t.Fatalf("%s: key %d out of [0,1024)", dist, k)
			}
		}
	}
}

// TestZipfianSkew: the most popular key must absorb far more draws than a
// uniform distribution would give it, and the top decile the bulk.
func TestZipfianSkew(t *testing.T) {
	keys, _ := drawKeys(t, "zipfian", "steady", 20000)
	counts := map[int64]int{}
	for _, k := range keys {
		counts[k]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Uniform expectation is ~20 draws per key over 1024 keys.
	if max < 200 {
		t.Errorf("zipfian: hottest key drew %d/20000, want heavy skew", max)
	}
	uni, _ := drawKeys(t, "uniform", "steady", 20000)
	ucounts := map[int64]int{}
	umax := 0
	for _, k := range uni {
		ucounts[k]++
		if ucounts[k] > umax {
			umax = ucounts[k]
		}
	}
	if max < 4*umax {
		t.Errorf("zipfian max %d not clearly above uniform max %d", max, umax)
	}
}

// TestHotsetConcentration: ~90% of draws land on ~10% of the keys.
func TestHotsetConcentration(t *testing.T) {
	keys, _ := drawKeys(t, "hotset", "steady", 20000)
	counts := map[int64]int{}
	for _, k := range keys {
		counts[k]++
	}
	// The hot keys are the ~102 scrambled ranks; measure how many draws the
	// 128 most popular keys absorbed.
	pop := make([]int, 0, len(counts))
	for _, c := range counts {
		pop = append(pop, c)
	}
	for i := 0; i < len(pop); i++ {
		for j := i + 1; j < len(pop); j++ {
			if pop[j] > pop[i] {
				pop[i], pop[j] = pop[j], pop[i]
			}
		}
		if i == 127 {
			break
		}
	}
	hot := 0
	for i := 0; i < 128 && i < len(pop); i++ {
		hot += pop[i]
	}
	if hot < 16000 {
		t.Errorf("hotset: top-128 keys drew %d/20000, want >= 16000", hot)
	}
}

// TestShiftingWindowMoves: early and late draws come from disjoint regions.
func TestShiftingWindowMoves(t *testing.T) {
	keys, _ := drawKeys(t, "shifting", "steady", 10000)
	early := keys[:500]
	late := keys[len(keys)-500:]
	var earlyMax, lateMin int64 = 0, 1 << 62
	for _, k := range early {
		if k > earlyMax {
			earlyMax = k
		}
	}
	for _, k := range late {
		if k < lateMin {
			lateMin = k
		}
	}
	if lateMin <= earlyMax-128 {
		t.Errorf("shifting: late window [min %d] overlaps early window [max %d]", lateMin, earlyMax)
	}
}

// TestPhasedSchedule: read-burst phases are contains-heavy, base phases
// follow the base mix.
func TestPhasedSchedule(t *testing.T) {
	s, err := NewSchedule("phased", MixUpdateOnly)
	if err != nil {
		t.Fatal(err)
	}
	if m := s.MixAt(0, 8000); m != MixReadBurst {
		t.Errorf("phase 0 mix = %v, want read burst", m)
	}
	if m := s.MixAt(1500, 8000); m != MixUpdateOnly {
		t.Errorf("phase 1 mix = %v, want base", m)
	}
	// Past the declared total the final phase's mix stays in force.
	if m := s.MixAt(9000, 8000); m != MixUpdateOnly {
		t.Errorf("post-total mix = %v, want final phase", m)
	}
}

func TestOversubYields(t *testing.T) {
	s, err := NewSchedule("oversub", MixBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if s.YieldEvery() <= 0 {
		t.Fatal("oversub must yield")
	}
	if m := s.MixAt(5, 100); m != MixBalanced {
		t.Errorf("oversub mix = %v, want base", m)
	}
}

func TestMixOpSplit(t *testing.T) {
	src, err := New(Config{Dist: "uniform", KeyRange: 64, Mix: Mix{80, 10, 10}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := src.Thread(0, 20000)
	var n [3]int
	for i := 0; i < 20000; i++ {
		op, _ := st.Next()
		n[op]++
	}
	if n[OpContains] < 15000 || n[OpInsert] > 3000 || n[OpDelete] > 3000 {
		t.Errorf("op split %v does not track mix 80/10/10", n)
	}
}

func TestRegistryErrors(t *testing.T) {
	if _, err := New(Config{Dist: "nosuch"}); err == nil {
		t.Error("unknown distribution must error")
	}
	if _, err := New(Config{Schedule: "nosuch"}); err == nil {
		t.Error("unknown schedule must error")
	}
	if _, err := New(Config{Mix: Mix{50, 50, 50}}); err == nil {
		t.Error("mix not summing to 100 must error")
	}
	if _, err := New(Config{Mix: Mix{-10, 110, 0}}); err == nil {
		t.Error("mix with a negative component must error")
	}
	if _, err := ParseMix("-10/110/0"); err == nil {
		t.Error("ParseMix must reject negative components")
	}
	// A non-positive range clamps to the default instead of arming a
	// divide-by-zero in the first draw.
	d, err := NewDist("uniform", 0)
	if err != nil {
		t.Fatal(err)
	}
	r := RNG(1)
	if k := d.Key(&r, 0, 1); k < 0 || k >= 1024 {
		t.Errorf("clamped range drew key %d outside [0,1024)", k)
	}
}

func TestRegistryNames(t *testing.T) {
	wantD := []string{"hotset", "shifting", "uniform", "zipfian"}
	got := DistNames()
	for _, w := range wantD {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("distribution %q missing from %v", w, got)
		}
	}
	wantS := []string{"oversub", "phased", "steady"}
	gotS := ScheduleNames()
	for _, w := range wantS {
		found := false
		for _, g := range gotS {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("schedule %q missing from %v", w, gotS)
		}
	}
}
