package workload

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestReqMixParseRoundTrip(t *testing.T) {
	m, err := ParseReqMix("50/20/10/10/5/5")
	if err != nil {
		t.Fatal(err)
	}
	if m != ReqMixMixed {
		t.Fatalf("parsed %v, want %v", m, ReqMixMixed)
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back ReqMix
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Fatalf("JSON round trip: %v != %v", back, m)
	}
	for _, bad := range []string{"50/50/10/10/5/5", "101/0/0/0/0/-1", "nope"} {
		if _, err := ParseReqMix(bad); err == nil {
			t.Fatalf("ParseReqMix(%q) accepted an invalid mix", bad)
		}
	}
	for _, std := range []ReqMix{ReqMixFanout, ReqMixMixed, ReqMixRangeHeavy} {
		if err := std.Validate(); err != nil {
			t.Fatalf("standard mix %v invalid: %v", std, err)
		}
	}
}

// TestReqStreamDeterministicAndShaped checks that equal (seed, tid) pairs
// replay identical request sequences, distinct tids diverge, every drawn
// request is well-formed, and a long draw covers every shape the mix
// names.
func TestReqStreamDeterministicAndShaped(t *testing.T) {
	cfg := ReqConfig{Dist: "zipfian", KeyRange: 2048, Mix: ReqMixMixed, Seed: 9}
	src, err := NewReqSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resolved := src.Config()
	a, b := src.Thread(0, 1000), src.Thread(0, 1000)
	other := src.Thread(1, 1000)
	seen := map[ReqKind]int{}
	diverged := false
	for i := 0; i < 1000; i++ {
		ra, rb, ro := a.Next(), b.Next(), other.Next()
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("draw %d: same (seed,tid) diverged: %+v vs %+v", i, ra, rb)
		}
		if !reflect.DeepEqual(ra, ro) {
			diverged = true
		}
		seen[ra.Kind]++
		switch ra.Kind {
		case ReqPoint:
			if len(ra.Ops) != resolved.BatchSize || len(ra.Keys) != resolved.BatchSize {
				t.Fatalf("point request sized %d/%d, want %d", len(ra.Ops), len(ra.Keys), resolved.BatchSize)
			}
		case ReqMultiGet, ReqMultiInsert, ReqMultiDelete:
			if len(ra.Keys) != resolved.MultiSize {
				t.Fatalf("multi request sized %d, want %d", len(ra.Keys), resolved.MultiSize)
			}
			for _, k := range ra.Keys {
				if k < 0 || k >= int64(resolved.KeyRange) {
					t.Fatalf("multi key %d outside universe", k)
				}
			}
		case ReqRangeScan, ReqRangeCount:
			if ra.Lo < 0 || ra.Hi > int64(resolved.KeyRange) || ra.Hi-ra.Lo != int64(resolved.RangeSpan) {
				t.Fatalf("range [%d,%d) malformed for span %d", ra.Lo, ra.Hi, resolved.RangeSpan)
			}
		}
	}
	if !diverged {
		t.Fatal("distinct tids drew identical sequences")
	}
	for k := ReqPoint; k < reqKindCount; k++ {
		if seen[k] == 0 {
			t.Fatalf("1000 mixed draws never produced %v", k)
		}
	}
}

func TestReqSourceRejectsBadConfig(t *testing.T) {
	if _, err := NewReqSource(ReqConfig{Dist: "no-such-dist"}); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	if _, err := NewReqSource(ReqConfig{Mix: ReqMix{PointPct: 99}}); err == nil {
		t.Fatal("non-100 mix accepted")
	}
}
