package workload

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Dist draws keys from [0, KeyRange). Implementations must be safe for
// concurrent use from multiple streams: any per-draw state lives in the
// stream's RNG, anything precomputed at construction is read-only.
type Dist interface {
	// Name is the registry key.
	Name() string
	// Key draws the key for operation i of a total-operation stream using
	// the stream's rng. Distributions that evolve over the run (shifting)
	// use i/total as their clock.
	Key(r *RNG, i, total int) int64
}

// DistFactory builds a distribution over a key universe.
type DistFactory func(keyRange int) Dist

var dists = map[string]DistFactory{
	"uniform":  func(n int) Dist { return uniform{n: uint64(n)} },
	"zipfian":  func(n int) Dist { return newZipfian(n, 0.99) },
	"hotset":   func(n int) Dist { return hotset{n: uint64(n), hot: hotCount(n), pctHot: 90} },
	"shifting": func(n int) Dist { return shifting{n: n, window: windowSize(n)} },
}

// RegisterDist adds a distribution to the registry; later registrations
// under the same name win, so callers can override the built-ins.
func RegisterDist(name string, f DistFactory) { dists[name] = f }

// DistNames returns every registered distribution name, sorted.
func DistNames() []string {
	names := make([]string, 0, len(dists))
	for n := range dists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewDist builds the named distribution over [0, keyRange). A
// non-positive keyRange selects the same 1024 default as New, so a
// misconfigured range cannot surface later as a divide-by-zero draw.
func NewDist(name string, keyRange int) (Dist, error) {
	f, ok := dists[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown key distribution %q (have %v)", name, DistNames())
	}
	if keyRange <= 0 {
		keyRange = 1024
	}
	return f(keyRange), nil
}

// --- uniform ----------------------------------------------------------------

type uniform struct{ n uint64 }

func (uniform) Name() string                 { return "uniform" }
func (u uniform) Key(r *RNG, _, _ int) int64 { return int64(r.Next() % u.n) }

// --- zipfian ----------------------------------------------------------------

// zipfian is the YCSB-style scrambled zipfian generator (Gray et al.,
// "Quickly Generating Billion-Record Synthetic Databases"): rank
// popularity follows 1/rank^theta, and ranks are hashed into the key space
// so the hot keys are spread across the structure rather than clustered at
// its low end (adjacent hot keys would shorten sorted-structure traversals
// and flatter the measurement).
type zipfian struct {
	n            uint64
	theta        float64
	alpha        float64
	zetan, eta   float64
	halfPowTheta float64
}

// zetaCache memoizes the O(n) zeta sums: sweeps build one distribution per
// row and would otherwise recompute the identical sum every time.
var zetaCache sync.Map // zetaKey -> float64

type zetaKey struct {
	n     uint64
	theta float64
}

func zetaMemo(n uint64, theta float64) float64 {
	k := zetaKey{n, theta}
	if v, ok := zetaCache.Load(k); ok {
		return v.(float64)
	}
	z := zeta(n, theta)
	zetaCache.Store(k, z)
	return z
}

func newZipfian(n int, theta float64) zipfian {
	zetan := zetaMemo(uint64(n), theta)
	return zipfian{
		n:            uint64(n),
		theta:        theta,
		alpha:        1 / (1 - theta),
		zetan:        zetan,
		eta:          (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/zetan),
		halfPowTheta: 1 + math.Pow(0.5, theta),
	}
}

func zeta(n uint64, theta float64) float64 {
	var z float64
	for i := uint64(1); i <= n; i++ {
		z += 1 / math.Pow(float64(i), theta)
	}
	return z
}

func (zipfian) Name() string { return "zipfian" }

func (z zipfian) Key(r *RNG, _, _ int) int64 {
	u := r.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < z.halfPowTheta:
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
	}
	// Scramble the rank into the key space (collisions just merge weight).
	return int64(mix64(rank) % z.n)
}

// --- hotset -----------------------------------------------------------------

// hotset sends pctHot percent of the draws to a small hot set of keys
// spread across the key space by the same rank scrambling as zipfian.
type hotset struct {
	n      uint64
	hot    uint64
	pctHot uint64
}

func hotCount(n int) uint64 {
	h := uint64(n / 10)
	if h == 0 {
		h = 1
	}
	return h
}

func (hotset) Name() string { return "hotset" }

func (h hotset) Key(r *RNG, _, _ int) int64 {
	if r.Next()%100 < h.pctHot {
		return int64(mix64(r.Next()%h.hot) % h.n)
	}
	return int64(r.Next() % h.n)
}

// --- shifting ---------------------------------------------------------------

// shifting draws uniformly from a window that slides once across the key
// space over the stream's lifetime — the working set churns, so structures
// and schemes face a stream of cold keys instead of a stable hot set.
type shifting struct {
	n      int
	window int
}

func windowSize(n int) int {
	w := n / 8
	if w == 0 {
		w = 1
	}
	return w
}

func (shifting) Name() string { return "shifting" }

func (s shifting) Key(r *RNG, i, total int) int64 {
	start := 0
	if total > 0 && s.n > s.window {
		// Draws past the declared total hold the final window rather than
		// wrapping to a cold restart (matching Stream.Next's overrun rule).
		if i >= total {
			i = total - 1
		}
		start = int(uint64(i) * uint64(s.n-s.window) / uint64(total))
	}
	return int64(start + int(r.Next()%uint64(s.window)))
}
