package exec_test

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/exec"
	"repro/internal/obs/rec"
	"repro/internal/sched"
	"repro/internal/smr"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// newGatedStore builds a store whose shards are chaos-instrumentable.
func newGatedStore(t *testing.T, shards, workers, keyRange int) (*store.Store, []*sched.Breakpoints, *rec.Recorder) {
	return newGatedStoreDepth(t, shards, workers, keyRange, 0)
}

// newGatedStoreDepth is newGatedStore with an explicit shard
// request-queue capacity — queue-accounting tests narrow it so a parked
// worker wedges the shard queue with a handful of requests.
func newGatedStoreDepth(t *testing.T, shards, workers, keyRange, queueDepth int) (*store.Store, []*sched.Breakpoints, *rec.Recorder) {
	t.Helper()
	recorder := rec.NewRecorder(nil, 0)
	gates := make([]*sched.Breakpoints, shards)
	specs := make([]store.ShardSpec, shards)
	for i := range specs {
		gates[i] = sched.NewBreakpoints()
		specs[i] = store.ShardSpec{Scheme: "ebr", Structure: "michael", Workers: workers, Gate: gates[i]}
	}
	st, err := store.New(store.Config{Shards: specs, KeyRange: keyRange, QueueDepth: queueDepth, Recorder: recorder})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, gates, recorder
}

// keysOnShard returns n keys the store routes to shard s.
func keysOnShard(t *testing.T, st *store.Store, s, keyRange, n int) []int64 {
	t.Helper()
	var keys []int64
	for k := int64(0); k < int64(keyRange) && len(keys) < n; k++ {
		if st.ShardFor(k) == s {
			keys = append(keys, k)
		}
	}
	if len(keys) < n {
		t.Fatalf("only %d of %d keys route to shard %d", len(keys), n, s)
	}
	return keys
}

// awaitParked waits until shard s's worker is demonstrably parked: a
// probe op fails to return within the grace window. The blocked probe
// goroutine drains once the fault heals.
func awaitParked(t *testing.T, st *store.Store, key int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := make(chan struct{})
		go func() {
			_, _ = st.Contains(key)
			close(done)
		}()
		select {
		case <-done:
			time.Sleep(2 * time.Millisecond)
		case <-time.After(150 * time.Millisecond):
			return // probe is stuck behind the parked worker
		}
	}
	t.Fatal("stall fault never parked the shard worker")
}

func TestCompileGroupsByShard(t *testing.T) {
	st, _, _ := newGatedStore(t, 4, 2, 256)
	ex, err := exec.New(st, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	keys := []int64{0, 1, 2, 3, 100, 101, 102, 200}
	p, err := ex.Compile(workload.Req{Kind: workload.ReqMultiGet, Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops != len(keys) {
		t.Fatalf("plan carries %d ops, want %d", p.Ops, len(keys))
	}
	want := map[int]int{}
	for _, k := range keys {
		want[st.ShardFor(k)]++
	}
	if len(p.Legs) != len(want) {
		t.Fatalf("plan has %d legs, want %d", len(p.Legs), len(want))
	}
	for i, leg := range p.Legs {
		if leg.Range {
			t.Fatalf("point plan produced a range leg")
		}
		if leg.Ops != want[leg.Shard] {
			t.Fatalf("leg %d: %d ops on shard %d, want %d", i, leg.Ops, leg.Shard, want[leg.Shard])
		}
		if i > 0 && p.Legs[i-1].Shard >= leg.Shard {
			t.Fatalf("legs not in shard order: %v", p.Legs)
		}
	}

	p, err = ex.Compile(workload.Req{Kind: workload.ReqRangeScan, Lo: 10, Hi: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Legs) != st.Shards() {
		t.Fatalf("range plan has %d legs, want one per shard (%d)", len(p.Legs), st.Shards())
	}
	for _, leg := range p.Legs {
		if !leg.Range {
			t.Fatalf("range plan produced a point leg")
		}
	}
	// Inverted intervals compile to the empty scatter.
	p, err = ex.Compile(workload.Req{Kind: workload.ReqRangeCount, Lo: 20, Hi: 10})
	if err != nil || len(p.Legs) != 0 {
		t.Fatalf("inverted interval: legs=%d err=%v", len(p.Legs), err)
	}
	if _, err := ex.Compile(workload.Req{Kind: workload.ReqKind(99)}); err == nil {
		t.Fatal("unknown request kind compiled")
	}
}

// TestMergeDeterminism checks that the merge stage's output is a pure
// function of the data, not of leg completion order: concurrent repeats
// of the same scan agree exactly, multi-key results align with submitted
// positions, limits trim the *merged* ascending order, and counts match.
func TestMergeDeterminism(t *testing.T) {
	w := waiter{t}
	st, _, _ := newGatedStore(t, 4, 2, 1024)
	ex, err := exec.New(st, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	var want []int64
	for k := int64(0); k < 1024; k += 3 {
		if _, err := st.Insert(k); err != nil {
			t.Fatal(err)
		}
		if k >= 100 && k < 700 {
			want = append(want, k)
		}
	}

	const repeats = 16
	results := make([][]int64, repeats)
	var wg sync.WaitGroup
	for i := 0; i < repeats; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := ex.RangeScan(100, 700, 0)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = h.Wait().Keys
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if len(got) != len(want) {
			t.Fatalf("repeat %d: %d keys, want %d", i, len(got), len(want))
		}
		if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
			t.Fatalf("repeat %d: merged keys not ascending", i)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("repeat %d key %d: got %d want %d", i, j, got[j], want[j])
			}
		}
	}

	// Position alignment: mixed present/absent keys in arbitrary order.
	keys := []int64{999, 0, 500, 301, 3, 7, 600, 11}
	res := w.wait(ex.MultiGet(keys))
	if res.Partial() {
		t.Fatalf("healthy multiget partial: %v", res.ShardErrs)
	}
	for i, k := range keys {
		present := k%3 == 0
		if res.Results[i].Err != nil || res.Results[i].OK != present {
			t.Fatalf("key %d: ok=%v err=%v, want ok=%v", k, res.Results[i].OK, res.Results[i].Err, present)
		}
	}

	// Limit trims the merged ascending order, not per-shard arrival.
	res = w.wait(ex.RangeScan(100, 700, 5))
	if len(res.Keys) != 5 || res.Count != 5 {
		t.Fatalf("limited scan: %d keys count %d, want 5", len(res.Keys), res.Count)
	}
	for j := 0; j < 5; j++ {
		if res.Keys[j] != want[j] {
			t.Fatalf("limited scan key %d: got %d want %d", j, res.Keys[j], want[j])
		}
	}

	res = w.wait(ex.RangeCount(100, 700))
	if res.Count != uint64(len(want)) || res.Keys != nil {
		t.Fatalf("range count = %d (keys %v), want %d", res.Count, res.Keys, len(want))
	}

	// Write fan-out round trip with position-aligned outcomes.
	fresh := []int64{1, 2, 4, 5, 8, 10}
	res = w.wait(ex.MultiInsert(fresh))
	for i, r := range res.Results {
		if r.Err != nil || !r.OK {
			t.Fatalf("insert %d: ok=%v err=%v", fresh[i], r.OK, r.Err)
		}
	}
	res = w.wait(ex.MultiDelete(fresh))
	for i, r := range res.Results {
		if r.Err != nil || !r.OK {
			t.Fatalf("delete %d: ok=%v err=%v", fresh[i], r.OK, r.Err)
		}
	}
	res = w.wait(ex.MultiDelete(fresh))
	for i, r := range res.Results {
		if r.Err != nil || r.OK {
			t.Fatalf("re-delete %d: ok=%v err=%v, want miss", fresh[i], r.OK, r.Err)
		}
	}
}

// waiter lets call sites write w.wait(ex.MultiGet(...)) — a method call
// accepts a multi-value inner call where a plain function with a leading
// *testing.T parameter would not.
type waiter struct{ t *testing.T }

func (w waiter) wait(h *exec.Handle, err error) *exec.Result {
	w.t.Helper()
	if err != nil {
		w.t.Fatal(err)
	}
	return h.Wait()
}

// TestAsyncCompletion checks the handle/callback contract: submission
// does not block on completion, a window of requests completes in any
// order, and the callback fires exactly once before Done closes.
func TestAsyncCompletion(t *testing.T) {
	w := waiter{t}
	st, _, _ := newGatedStore(t, 4, 2, 512)
	ex, err := exec.New(st, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	var fired atomic.Int32
	h, err := ex.SubmitCallback(
		workload.Req{Kind: workload.ReqMultiInsert, Keys: []int64{1, 2, 3}},
		func(r *exec.Result) {
			if r == nil || len(r.Results) != 3 {
				t.Error("callback saw a malformed result")
			}
			fired.Add(1)
		})
	if err != nil {
		t.Fatal(err)
	}
	<-h.Done()
	if fired.Load() != 1 {
		t.Fatalf("callback fired %d times", fired.Load())
	}
	if r, ok := h.Result(); !ok || r == nil {
		t.Fatal("Result() not available after Done")
	}

	// A pipelined window: 64 requests in flight, all complete.
	const window = 64
	handles := make([]*exec.Handle, window)
	for i := range handles {
		handles[i], err = ex.MultiGet([]int64{int64(i), int64(i + 100), int64(i + 300)})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, h := range handles {
		res := h.Wait()
		if res.Partial() || len(res.Results) != 3 {
			t.Fatalf("window handle %d: partial=%v results=%d", i, res.Partial(), len(res.Results))
		}
		if res.Elapsed <= 0 {
			t.Fatalf("window handle %d: zero elapsed", i)
		}
	}

	// The empty scatter completes immediately.
	res := w.wait(ex.MultiGet(nil))
	if res.Partial() || len(res.Results) != 0 {
		t.Fatalf("empty multiget: %+v", res)
	}

	st2 := ex.Stats()
	if st2.Completed != st2.Requests || st2.Requests < window+2 {
		t.Fatalf("stats: completed %d of %d requests", st2.Completed, st2.Requests)
	}
}

// TestShedAndQueueAccounting drives the admission machinery
// deterministically: a chaos-parked worker wedges the shard's depth-1
// request queue, so the lone pump holds one leg in a hand-off retry (no
// leg budget), two more legs fill the bounded exec queue under healthy
// backpressure, the shard is then degraded, and the next submissions
// shed with the typed error — counted, recorded, and visible in the
// partial results — while the queued legs survive to complete after
// heal.
func TestShedAndQueueAccounting(t *testing.T) {
	w := waiter{t}
	const keyRange = 256
	st, gates, recorder := newGatedStoreDepth(t, 2, 1, keyRange, 1)
	ex, err := exec.New(st, exec.Config{
		QueueDepth:          2,
		DispatchersPerShard: 1,
		LegTimeout:          -1, // no budget: the pump retries hand-off indefinitely
		Recorder:            recorder,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	target := &chaos.Target{Store: st, Gates: gates, KeyRange: keyRange}
	fault, err := chaos.New("stall", chaos.Params{Shard: 0})
	if err != nil {
		t.Fatal(err)
	}
	heal, err := fault.Inject(target, 1)
	if err != nil {
		t.Fatal(err)
	}
	healed := false
	defer func() {
		if !healed {
			heal()
		}
	}()

	keys := keysOnShard(t, st, 0, keyRange, 5)
	awaitParked(t, st, keys[0])

	// Wedge the shard's depth-1 request queue deterministically: the
	// parked worker may or may not have left the buffer occupied (the
	// parking op could have been any probe), so fill it through the async
	// path until the store reports refusal.
	for {
		accepted, err := st.DoShardAsync(0,
			[]store.Op{{Kind: workload.OpContains, Key: keys[0]}},
			make([]store.Result, 1), nil, func() {})
		if err != nil {
			t.Fatal(err)
		}
		if !accepted {
			break
		}
	}

	// Leg A: pulled by the lone pump, which retries hand-off against the
	// wedged shard queue.
	hA, err := ex.MultiGet(keys[:1])
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pump to pull the first leg", func() bool {
		s := ex.Stats().Shards[0]
		return s.Legs == 1 && s.Queued == 0
	})

	// Legs B, C: fill the healthy queue (room exists, sends don't block).
	hB, err := ex.MultiGet(keys[1:2])
	if err != nil {
		t.Fatal(err)
	}
	hC, err := ex.MultiGet(keys[2:3])
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "queue to hold two legs", func() bool {
		return ex.Stats().Shards[0].Queued == 2
	})

	// Degrade: the full queue now sheds instead of blocking.
	ex.SetDegraded(0, true)
	if !ex.Degraded(0) {
		t.Fatal("SetDegraded did not stick")
	}
	for i := 3; i < 5; i++ {
		res := w.wait(ex.MultiGet(keys[i : i+1])) // completes immediately: shed
		if !res.Partial() || len(res.ShardErrs) != 1 {
			t.Fatalf("shed request %d not partial: %+v", i, res)
		}
		se := res.ShardErrs[0]
		if se.Shard != 0 || !errors.Is(&se, exec.ErrShed) {
			t.Fatalf("shed request %d: shard %d err %v, want shard 0 ErrShed", i, se.Shard, se.Reason)
		}
		if !errors.Is(res.Results[0].Err, exec.ErrShed) {
			t.Fatalf("shed request %d: per-key err %v, want ErrShed", i, res.Results[0].Err)
		}
	}

	stats := ex.Stats()
	sh := stats.Shards[0]
	if sh.Sheds != 2 || sh.Legs != 3 || sh.Timeouts != 0 || sh.Queued != 2 || sh.QueueCap != 2 || !sh.Degraded {
		t.Fatalf("shard 0 ledger: %+v, want 2 sheds / 3 legs / full 2-cap queue", sh)
	}
	if stats.Sheds != 2 || stats.Partial != 2 {
		t.Fatalf("aggregate ledger: sheds=%d partial=%d, want 2/2", stats.Sheds, stats.Partial)
	}
	sheds := 0
	for _, ev := range recorder.Snapshot() {
		if ev.Kind == rec.KindExecShed {
			sheds++
			if ev.Shard != 0 || ev.B != 2 {
				t.Fatalf("shed event misdescribed: %+v", ev)
			}
		}
	}
	if sheds != 2 {
		t.Fatalf("recorder holds %d shed events, want 2", sheds)
	}

	// Heal: the parked worker resumes, A–C complete successfully.
	heal()
	healed = true
	ex.SetDegraded(0, false)
	for i, h := range []*exec.Handle{hA, hB, hC} {
		res := h.Wait()
		if res.Partial() || res.Results[0].Err != nil {
			t.Fatalf("queued leg %d after heal: %+v", i, res)
		}
	}

	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.MultiGet(keys[:1]); !errors.Is(err, exec.ErrClosed) {
		t.Fatalf("submit after Close: %v, want ErrClosed", err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPartialResultsUnderChaosStall is the headline failure-semantics
// test: a chaos-stalled shard converts its legs into typed ErrLegStalled
// per-shard errors inside otherwise successful results — point slots on
// the healthy shards stay correct, range merges carry the surviving
// shards' keys — and after heal the same requests run clean (late store
// results from timed-out legs are discarded, never spliced into
// completed handles).
func TestPartialResultsUnderChaosStall(t *testing.T) {
	w := waiter{t}
	const keyRange = 512
	st, gates, recorder := newGatedStore(t, 4, 1, keyRange)
	var want []int64
	for k := int64(0); k < keyRange; k += 2 {
		if _, err := st.Insert(k); err != nil {
			t.Fatal(err)
		}
		want = append(want, k)
	}

	ex, err := exec.New(st, exec.Config{LegTimeout: 75 * time.Millisecond, Recorder: recorder})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	const stalled = 1
	target := &chaos.Target{Store: st, Gates: gates, KeyRange: keyRange}
	engine := chaos.NewEngine(target)
	if err := engine.Add("stall", chaos.Params{Shard: stalled}, chaos.OneShot(0)); err != nil {
		t.Fatal(err)
	}
	engine.Start()
	defer engine.Stop()
	awaitParked(t, st, keysOnShard(t, st, stalled, keyRange, 1)[0])

	// One present key per shard: the stalled shard's slot carries the
	// typed error, every other slot answers correctly.
	var keys []int64
	for s := 0; s < st.Shards(); s++ {
		for _, k := range keysOnShard(t, st, s, keyRange, 8) {
			if k%2 == 0 {
				keys = append(keys, k)
				break
			}
		}
	}
	if len(keys) != st.Shards() {
		t.Fatalf("picked %d probe keys for %d shards", len(keys), st.Shards())
	}
	res := w.wait(ex.MultiGet(keys))
	if !res.Partial() || len(res.ShardErrs) != 1 || res.ShardErrs[0].Shard != stalled {
		t.Fatalf("stalled multiget: partial=%v errs=%+v, want exactly shard %d", res.Partial(), res.ShardErrs, stalled)
	}
	if !errors.Is(&res.ShardErrs[0], exec.ErrLegStalled) {
		t.Fatalf("stalled shard error %v, want ErrLegStalled", res.ShardErrs[0].Reason)
	}
	for i, k := range keys {
		r := res.Results[i]
		if st.ShardFor(k) == stalled {
			if !errors.Is(r.Err, exec.ErrLegStalled) {
				t.Fatalf("stalled slot %d: err=%v, want ErrLegStalled", i, r.Err)
			}
			continue
		}
		if r.Err != nil || !r.OK {
			t.Fatalf("healthy slot %d (key %d): ok=%v err=%v", i, k, r.OK, r.Err)
		}
	}

	// The range merge carries exactly the surviving shards' keys.
	res = w.wait(ex.RangeScan(0, keyRange, 0))
	if !res.Partial() || len(res.ShardErrs) != 1 || res.ShardErrs[0].Shard != stalled {
		t.Fatalf("stalled scan: partial=%v errs=%+v", res.Partial(), res.ShardErrs)
	}
	var surviving []int64
	for _, k := range want {
		if st.ShardFor(k) != stalled {
			surviving = append(surviving, k)
		}
	}
	if len(res.Keys) != len(surviving) {
		t.Fatalf("stalled scan merged %d keys, want the %d on healthy shards", len(res.Keys), len(surviving))
	}
	for i, k := range surviving {
		if res.Keys[i] != k {
			t.Fatalf("stalled scan key %d: got %d want %d", i, res.Keys[i], k)
		}
	}

	stats := ex.Stats()
	if stats.Timeouts < 2 || stats.Partial < 2 {
		t.Fatalf("ledger after stall: timeouts=%d partial=%d, want ≥2 each", stats.Timeouts, stats.Partial)
	}

	// Heal (Stop releases the held one-shot), then the same traffic runs
	// clean end to end.
	engine.Stop()
	waitFor(t, "post-heal multiget to run clean", func() bool {
		res, err := ex.MultiGet(keys)
		if err != nil {
			return false
		}
		return !res.Wait().Partial()
	})
	res = w.wait(ex.RangeScan(0, keyRange, 0))
	if res.Partial() || len(res.Keys) != len(want) {
		t.Fatalf("post-heal scan: partial=%v keys=%d want %d", res.Partial(), len(res.Keys), len(want))
	}

	var scatters, merges int
	for _, ev := range recorder.Snapshot() {
		switch ev.Kind {
		case rec.KindExecScatter:
			scatters++
		case rec.KindExecMerge:
			merges++
		}
	}
	if scatters == 0 || merges == 0 {
		t.Fatalf("recorder: %d scatter / %d merge events, want both present", scatters, merges)
	}
}

// TestVerdictAdmission checks the monitor adapter and its polling loop:
// a domain whose live verdict audits NotRobust degrades its shard, a
// bounded domain does not, and the executor's poller copies the signal
// into the submission path.
func TestVerdictAdmission(t *testing.T) {
	budget := telemetry.Budget{Threads: 2, Threshold: 16}
	m := telemetry.NewMonitor(telemetry.MonitorConfig{Window: 64}, []telemetry.Domain{
		{Scheme: "ebr", Declared: smr.NotRobust, Budget: budget},
		{Scheme: "hp", Declared: smr.Robust, Budget: budget},
	})
	adm := exec.VerdictAdmission{Mon: m}
	if adm.Degraded(0) || adm.Degraded(1) {
		t.Fatal("fresh (inconclusive) monitor must not degrade anything")
	}
	for i := 0; i < 20; i++ {
		el := time.Duration(i) * time.Millisecond
		m.Observe(0, telemetry.Point{Elapsed: el, Ops: uint64(i) * 100, Retired: uint64(i) * 100})
		m.Observe(1, telemetry.Point{Elapsed: el, Ops: uint64(i) * 100, Retired: uint64(4 + i%5)})
	}
	if !adm.Degraded(0) {
		t.Fatal("unbounded-growth domain not degraded")
	}
	if adm.Degraded(1) {
		t.Fatal("bounded domain degraded")
	}
	if adm.Degraded(-1) || adm.Degraded(7) {
		t.Fatal("out-of-range shard degraded")
	}
	if (exec.VerdictAdmission{}).Degraded(0) {
		t.Fatal("nil monitor degraded a shard")
	}

	st, _, _ := newGatedStore(t, 2, 2, 256)
	ex, err := exec.New(st, exec.Config{Admission: adm, AdmitEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	waitFor(t, "admission poller to copy the verdicts", func() bool {
		return ex.Degraded(0) && !ex.Degraded(1)
	})
}

// fixedHedge is a stub hedge policy with a constant delay — every leg
// that outlives it gets a speculative duplicate.
type fixedHedge struct {
	d   time.Duration
	obs atomic.Uint64
}

func (f *fixedHedge) Delay(int) time.Duration    { return f.d }
func (f *fixedHedge) Observe(int, time.Duration) { f.obs.Add(1) }

// TestHedgeLoserDiscardAccounting floods a healthy store with hedges (a
// near-zero fixed delay duplicates almost every leg) and checks the
// wasted-work ledger at quiescence: every launched hedge produced
// exactly one discarded completion — whichever side lost the settle
// race — with no double-merges and no corrupted results. Run under
// -race this doubles as the hedge/primary completion-race test.
func TestHedgeLoserDiscardAccounting(t *testing.T) {
	st, _, _ := newGatedStore(t, 4, 2, 1024)
	for k := int64(0); k < 1024; k += 2 {
		if _, err := st.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	hp := &fixedHedge{d: time.Nanosecond}
	ex, err := exec.New(st, exec.Config{LegTimeout: -1, Hedge: hp})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	const clients, reqs = 8, 200
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := workload.RNG(uint64(c)*7919 + 1)
			for i := 0; i < reqs; i++ {
				keys := make([]int64, 8)
				for j := range keys {
					keys[j] = int64(rng.Next() % 1024)
				}
				h, err := ex.Submit(workload.Req{Kind: workload.ReqMultiGet, Keys: keys})
				if err != nil {
					errc <- err
					return
				}
				res := h.Wait()
				if res.Partial() {
					errc <- &res.ShardErrs[0]
					return
				}
				for j, r := range res.Results {
					if r.Err != nil {
						errc <- r.Err
						return
					}
					if want := keys[j]%2 == 0; r.OK != want {
						errc <- fmt.Errorf("key %d: got %v, want %v (hedge merged the wrong slot?)", keys[j], r.OK, want)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Wait() unblocks when the winning call merges; the loser's discard
	// still lands on a shard worker afterwards, so give in-flight
	// completions a bounded moment to drain before auditing the ledger.
	s := ex.Stats()
	for deadline := time.Now().Add(2 * time.Second); s.HedgeWaste != s.Hedges && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
		s = ex.Stats()
	}
	if s.Hedges == 0 {
		t.Fatal("near-zero hedge delay launched no hedges")
	}
	// At quiescence every hedged leg completed twice: one call settled
	// it, the other was discarded — so waste equals hedges exactly, and
	// hedge wins are a subset.
	if s.HedgeWaste != s.Hedges {
		t.Fatalf("wasted-work ledger off: %d hedges, %d discards", s.Hedges, s.HedgeWaste)
	}
	if s.HedgeWins > s.Hedges {
		t.Fatalf("hedge wins %d exceed hedges %d", s.HedgeWins, s.Hedges)
	}
	if s.LegErrs != 0 || s.Timeouts != 0 {
		t.Fatalf("healthy-store hedging produced leg errors %d / timeouts %d", s.LegErrs, s.Timeouts)
	}
	// Only settling calls feed the policy: one observation per leg, so
	// the count can never exceed legs executed (it would with losers
	// observed too, since almost every leg completes twice here).
	if got, legs := hp.obs.Load(), s.Legs; got > legs {
		t.Fatalf("hedge policy observed %d completions for %d legs: losers leaked into the quantile", got, legs)
	}
}
