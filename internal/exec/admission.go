package exec

import (
	"repro/internal/smr"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// VerdictAdmission derives the executor's per-shard degradation signal
// from the live telemetry monitor: a shard is degraded while its backlog
// verdict is conclusive and audits NotRobust — the same unbounded-growth
// evidence that makes the adaptive controller climb the reclamation
// ladder. An inconclusive window (too little evidence) never degrades a
// shard: admission control reacts to demonstrated pathology, not to
// silence.
type VerdictAdmission struct {
	Mon *telemetry.Monitor
}

// Degraded reports whether shard's live verdict audits NotRobust.
func (a VerdictAdmission) Degraded(shard int) bool {
	if a.Mon == nil || shard < 0 || shard >= a.Mon.Domains() {
		return false
	}
	v := a.Mon.Verdict(shard)
	return !v.Inconclusive() && v.AuditedClass() == smr.NotRobust
}

// Stats is a point-in-time snapshot of the executor's accounting: the
// request ledger (submitted by kind, completed, partial) and the
// per-shard scatter-leg ledger (executed, shed, stalled).
type Stats struct {
	// Submitted counts requests accepted, by request-kind name.
	Submitted map[string]uint64
	// Requests, Completed and Partial count whole requests; Partial are
	// completed requests carrying at least one per-shard error.
	Requests  uint64
	Completed uint64
	Partial   uint64
	// Legs, Sheds, Timeouts and LegErrs aggregate the per-shard ledgers.
	Legs     uint64
	Sheds    uint64
	Timeouts uint64
	LegErrs  uint64
	// Hedges, HedgeWins and HedgeWaste aggregate the hedging ledgers;
	// HedgeUnits weighs the hedges by operation count (1 per range leg).
	Hedges     uint64
	HedgeWins  uint64
	HedgeWaste uint64
	HedgeUnits uint64
	// Shards holds one entry per store shard.
	Shards []ShardExecStats
}

// ShardExecStats is one shard's scatter-leg ledger.
type ShardExecStats struct {
	Shard int
	// Queued and QueueCap are the leg queue's depth gauge and capacity.
	Queued   int
	QueueCap int
	// Degraded is the shard's current admission state.
	Degraded bool
	// Stalled gauges store calls still running past their leg's budget.
	Stalled int
	// Legs counts legs accepted onto the queue; Sheds legs refused by
	// admission control; Timeouts legs that exceeded their budget (failed
	// fast included); LegErrs legs whose store call failed wholesale.
	Legs     uint64
	Sheds    uint64
	Timeouts uint64
	LegErrs  uint64
	// Hedges counts speculative calls launched by the hedge policy;
	// HedgeWins hedge calls that won their leg's completion latch;
	// HedgeWaste completions discarded because the leg's other call won —
	// the wasted-work ledger. HedgeUnits weighs the hedges by operation
	// count (1 per range leg).
	Hedges     uint64
	HedgeWins  uint64
	HedgeWaste uint64
	HedgeUnits uint64
}

// Stats snapshots the executor's accounting. Safe to call concurrently
// with traffic; counters are read individually, so the snapshot is
// approximate under load but every counter is exact.
func (ex *Executor) Stats() Stats {
	st := Stats{Submitted: make(map[string]uint64, len(ex.submitted))}
	for k := range ex.submitted {
		if n := ex.submitted[k].Load(); n > 0 {
			st.Submitted[workload.ReqKind(k).String()] = n
		}
		st.Requests += ex.submitted[k].Load()
	}
	st.Completed = ex.completed.Load()
	st.Partial = ex.partial.Load()
	for s, q := range ex.queues {
		sh := ShardExecStats{
			Shard:      s,
			Queued:     len(q.legs),
			QueueCap:   cap(q.legs),
			Degraded:   q.degraded.Load() || ex.saturated(q),
			Stalled:    int(q.stalled.Load()),
			Legs:       q.legsTotal.Load(),
			Sheds:      q.sheds.Load(),
			Timeouts:   q.timeouts.Load(),
			LegErrs:    q.legErrs.Load(),
			Hedges:     q.hedges.Load(),
			HedgeWins:  q.hedgeWins.Load(),
			HedgeWaste: q.hedgeWaste.Load(),
			HedgeUnits: q.hedgeUnits.Load(),
		}
		st.Legs += sh.Legs
		st.Sheds += sh.Sheds
		st.Timeouts += sh.Timeouts
		st.LegErrs += sh.LegErrs
		st.Hedges += sh.Hedges
		st.HedgeWins += sh.HedgeWins
		st.HedgeWaste += sh.HedgeWaste
		st.HedgeUnits += sh.HedgeUnits
		st.Shards = append(st.Shards, sh)
	}
	return st
}
