// Package exec is the pipelined scatter-gather execution layer over the
// sharded store: the subsystem that turns the one request shape the store
// serves natively (a blocking, single-shard-batched point-op Do) into the
// request graph a production service actually sees — multi-key
// operations, range queries, and asynchronous completion.
//
// A cross-shard request compiles into a Plan: one scatter leg per
// touched shard (a point-op sub-batch, or a range walk over the shard
// structure's iterator) plus a merge stage that assembles the legs'
// outcomes into one Result. Submission is asynchronous end to end: the
// caller gets a completion Handle (or registers a callback), each leg is
// handed to its shard through the store's non-blocking async submission
// path (DoShardAsync / ScanShardAsync), and the shard worker that
// completes a request's last leg runs the merge stage itself. No
// goroutine blocks per in-flight leg, so a client can keep a deep window
// of requests in flight instead of paying a scatter→merge round trip —
// and two scheduler hand-offs — per request. That is the pipelining
// EXP-PIPELINE measures.
//
// Failure is partial by construction. A leg that cannot complete — its
// shard drained for migration, its scan guard-tripped, its worker parked
// at a chaos fault past the leg's completion budget — yields a *typed
// per-shard error* (ShardError wrapping ErrShed, ErrLegStalled,
// store.ErrShardClosed, or the structure's guard error) inside an
// otherwise successful Result; the fan-out as a whole never fails because
// one shard did.
//
// Admission control is what keeps fan-out traffic from amplifying a
// single-shard stall into a fleet-wide pileup: every shard has a bounded
// leg queue, and when the shard's live backlog verdict degrades
// (Admission, typically VerdictAdmission over the telemetry monitor) the
// executor stops blocking on that queue — new legs are queued only if
// there is room and shed with a typed error otherwise, counted and
// stamped onto the flight recorder. A shard whose stalled-call budget is
// exhausted (Config.MaxStalled) sheds outright — the admission signal
// for a fully-parked shard the verdict cannot see. Healthy shards keep
// classic backpressure: a full queue blocks the submitter.
package exec

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/rec"
	"repro/internal/store"
	"repro/internal/workload"
)

// Errors reported by the execution layer.
var (
	// ErrClosed reports a submission to a closed executor.
	ErrClosed = errors.New("exec: executor closed")
	// ErrShed reports a scatter leg refused by admission control: the
	// shard's backlog verdict is degraded and its leg queue is full.
	ErrShed = errors.New("exec: scatter leg shed by admission control")
	// ErrLegStalled reports a scatter leg that exceeded its completion
	// budget — the fan-out shape a fault-parked shard worker produces.
	ErrLegStalled = errors.New("exec: scatter leg exceeded its completion budget")
)

// ShardError is a typed per-shard partial failure: which shard's leg
// failed and why. It unwraps to the underlying reason, so errors.Is
// matches ErrShed / ErrLegStalled / store.ErrShardClosed /
// ds.ErrTraversalGuard through it.
type ShardError struct {
	Shard  int
	Reason error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("exec: shard %d: %v", e.Shard, e.Reason)
}

func (e *ShardError) Unwrap() error { return e.Reason }

// Admission is the executor's live degradation signal: Degraded(s)
// reports that shard s's backlog verdict has worsened and its scatter
// legs must stop applying blocking backpressure (queue if room, shed
// otherwise). Implementations must be cheap and safe for concurrent use;
// the executor polls on Config.AdmitEvery and caches the answer on the
// submission path.
type Admission interface {
	Degraded(shard int) bool
}

// HedgePolicy is the executor's tail-latency speculation signal,
// supplied by the resilience layer. Delay(s) returns how long shard s's
// scatter leg may run before one hedge call is launched against the same
// shard (<= 0 disables hedging for that leg — the cold-start state while
// the policy's quantile tracker has no data). Observe feeds back the
// latency of each call that settles its leg — hedge-race losers and
// failed calls are excluded, so a fault latency that hedging masked
// cannot poison the tracked quantile and chase the delay upward.
// Implementations must be cheap and safe for concurrent use; both
// methods are called on hot paths.
type HedgePolicy interface {
	Delay(shard int) time.Duration
	Observe(shard int, d time.Duration)
}

// Config assembles an Executor.
type Config struct {
	// QueueDepth is the per-shard scatter-leg queue capacity; 0 selects 64.
	QueueDepth int
	// DispatchersPerShard sizes the per-shard pump pool that drains the
	// leg queue into the store's async submission path; 0 selects 2. The
	// pumps only hand legs off (completion is the shard worker's), so the
	// pool needs no depth — extra pumps merely parallelize retries when
	// the shard's own request queue is full.
	DispatchersPerShard int
	// LegTimeout is a scatter leg's completion budget: a leg still running
	// after it completes with a typed ErrLegStalled ShardError while the
	// store call finishes (and is discarded) in the background. 0 selects
	// 1s; negative disables the budget (legs wait indefinitely).
	LegTimeout time.Duration
	// MaxStalled bounds how many timed-out store calls may linger per
	// shard; 0 selects 8. A shard at the bound is *saturated*: admission
	// refuses its new legs outright (typed ErrShed) and dispatchers fail
	// queued ones fast, so a never-healing fault neither accumulates
	// unbounded blocked goroutines nor keeps burning a leg budget per
	// request. Saturation is the admission signal for a fully-parked
	// shard, whose frozen ops counter keeps the backlog verdict
	// inconclusive forever.
	MaxStalled int
	// Admission, when non-nil, supplies the per-shard degradation signal
	// (see VerdictAdmission). Nil keeps every shard on blocking
	// backpressure; SetDegraded still works for manual control.
	Admission Admission
	// AdmitEvery is the admission poll interval; 0 selects 1ms.
	AdmitEvery time.Duration
	// Hedge, when non-nil, enables hedged legs: a scatter leg still
	// running past the policy's delay launches one speculative duplicate
	// call against the same shard; the first completion wins the leg's
	// latch and the loser is discarded through the late-call discard
	// path, counted as wasted work. Hedges are refused while the shard is
	// degraded or saturated — speculation must never amplify a struggling
	// shard's load.
	Hedge HedgePolicy
	// Clock and Recorder, when set, stamp scatter/merge/shed events onto
	// the observability plane's shared tape. Nil keeps the layer silent.
	Clock    *rec.Clock
	Recorder *rec.Recorder
}

func (cfg *Config) fill() {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.DispatchersPerShard <= 0 {
		cfg.DispatchersPerShard = 2
	}
	if cfg.LegTimeout == 0 {
		cfg.LegTimeout = time.Second
	}
	if cfg.MaxStalled <= 0 {
		cfg.MaxStalled = 8
	}
	if cfg.AdmitEvery <= 0 {
		cfg.AdmitEvery = time.Millisecond
	}
}

// Plan is a compiled cross-shard request: the scatter legs submission
// will fan out plus the merge arity. Compile exposes it for
// introspection; Submit compiles internally.
type Plan struct {
	Kind workload.ReqKind
	Legs []PlanLeg
	// Ops is the total operation count across point/multi legs.
	Ops int
}

// PlanLeg describes one scatter leg.
type PlanLeg struct {
	Shard int
	// Ops is the leg's point-operation count (0 for range legs).
	Ops int
	// Range marks an iterator-walk leg.
	Range bool
}

// Result is a cross-shard request's merged outcome.
type Result struct {
	Kind workload.ReqKind
	// Results align position-for-position with the submitted keys
	// (point and multi-key requests). A key whose leg failed wholesale
	// carries that leg's ShardError in its Err.
	Results []store.Result
	// Keys is the merged range-scan payload, sorted ascending and trimmed
	// to the request's limit. Nil for non-scan requests.
	Keys []int64
	// Count is the range match count (for RangeScan after trimming,
	// len(Keys)).
	Count uint64
	// ShardErrs are the per-shard partial failures, in shard order.
	ShardErrs []ShardError
	// Elapsed is the scatter→merge latency.
	Elapsed time.Duration
}

// Partial reports that at least one scatter leg failed wholesale.
func (r *Result) Partial() bool { return len(r.ShardErrs) > 0 }

// Hits counts the true point/multi results.
func (r *Result) Hits() int {
	n := 0
	for _, res := range r.Results {
		if res.OK && res.Err == nil {
			n++
		}
	}
	return n
}

// legState is a leg's single-completion latch.
const (
	legPending int32 = iota
	legDone
	legStalled
)

// callState is one store call's landing latch. A leg may have up to two
// calls in flight (primary + hedge); the per-call latch keeps the
// shard's stalled gauge exact — each call is counted overdue at most
// once, and decremented exactly when that same call finally lands.
const (
	callRunning int32 = iota
	callLanded        // finish ran for this call
	callCounted       // the completion budget counted this call into the stalled gauge
)

// call is one store call issued for a leg: the primary hand-off or its
// hedge. Each call owns a private result buffer, so two calls racing on
// the same leg can never scribble on each other's (or the caller's)
// results; only the call that wins the leg's completion latch applies
// its payload to the handle.
type call struct {
	l     *leg
	hedge bool
	state atomic.Int32
	// out is a point/multi call's private result buffer; nil on the
	// direct-write path (no budget, no hedging), where the worker fills
	// the handle's slice in place.
	out []store.Result
	// start stamps the hand-off for the hedge policy's latency feed.
	start time.Time
}

// leg is one scatter leg in flight.
type leg struct {
	h     *Handle
	shard int
	kind  workload.ReqKind
	state atomic.Int32
	// Point/multi legs: the grouped ops and their positions in the
	// request's result slice.
	ops []store.Op
	idx []int
	// Range legs.
	scan      bool
	lo, hi    int64
	limit     int
	countOnly bool
	// calls are the leg's store calls: slot 0 the primary, slot 1 the
	// hedge (if one launched). Published after store acceptance; the
	// budget's overdue sweep walks them.
	calls [2]atomic.Pointer[call]
	// timer is the leg's armed completion budget, published after the
	// store accepted the hand-off so finish can disarm it.
	timer atomic.Pointer[time.Timer]
	// hedgeTimer is the armed hedge delay (only with a HedgePolicy).
	hedgeTimer atomic.Pointer[time.Timer]
}

// Handle is a submitted request's completion handle. Wait (or Done) and
// the optional callback observe the merged Result exactly once; all
// methods are safe for concurrent use.
type Handle struct {
	ex      *Executor
	pending atomic.Int32
	start   time.Time
	limit   int

	mu  sync.Mutex // guards res assembly from concurrently completing legs
	res *Result    // points at resv; one handle, one allocation
	cb  func(*Result)

	resv Result

	done chan struct{}
}

// Done returns a channel closed when the merge stage has run.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Wait blocks until the merge stage has run and returns the Result.
func (h *Handle) Wait() *Result {
	<-h.done
	return h.res
}

// Result returns the merged result, or (nil, false) while legs are still
// in flight.
func (h *Handle) Result() (*Result, bool) {
	select {
	case <-h.done:
		return h.res, true
	default:
		return nil, false
	}
}

// shardQueue is one shard's admission-controlled leg queue plus its
// execution accounting.
type shardQueue struct {
	legs     chan *leg
	degraded atomic.Bool
	// stalled counts store calls that outlived their leg's budget and are
	// still running — the fail-fast valve's gauge.
	stalled atomic.Int32

	legsTotal atomic.Uint64
	sheds     atomic.Uint64
	timeouts  atomic.Uint64
	legErrs   atomic.Uint64

	// Hedging accounting: hedge calls launched, hedge calls that won
	// their leg's latch, and discarded completions of hedged legs (every
	// hedged leg that completes lands exactly one wasted call).
	// hedgeUnits weighs the hedges by operation count (1 per range leg)
	// for the resilience layer's load-amplification ledger.
	hedges     atomic.Uint64
	hedgeWins  atomic.Uint64
	hedgeWaste atomic.Uint64
	hedgeUnits atomic.Uint64
}

// Executor is the scatter-gather execution layer over one store. All
// methods are safe for concurrent use.
type Executor struct {
	st  *store.Store
	cfg Config

	queues []*shardQueue
	wg     sync.WaitGroup
	stop   chan struct{}

	// mu orders submissions against Close the way the store orders
	// submissions against shard close.
	mu     sync.RWMutex
	closed bool

	submitted [6]atomic.Uint64 // by workload.ReqKind
	completed atomic.Uint64
	partial   atomic.Uint64
}

// New builds an executor over st and starts its dispatcher pools (and,
// with Config.Admission set, its admission poller).
func New(st *store.Store, cfg Config) (*Executor, error) {
	if st == nil {
		return nil, errors.New("exec: executor needs a store")
	}
	cfg.fill()
	ex := &Executor{st: st, cfg: cfg, stop: make(chan struct{})}
	for s := 0; s < st.Shards(); s++ {
		q := &shardQueue{legs: make(chan *leg, cfg.QueueDepth)}
		ex.queues = append(ex.queues, q)
		for d := 0; d < cfg.DispatchersPerShard; d++ {
			ex.wg.Add(1)
			go ex.dispatch(q)
		}
	}
	if cfg.Admission != nil {
		ex.wg.Add(1)
		go ex.pollAdmission()
	}
	return ex, nil
}

// Store returns the store the executor serves.
func (ex *Executor) Store() *store.Store { return ex.st }

// SetDegraded manually flips shard s's admission state — the test hook,
// and the override for deployments without a telemetry monitor. A
// configured Admission re-polls on its own interval and will overwrite
// manual state.
func (ex *Executor) SetDegraded(s int, degraded bool) {
	if s >= 0 && s < len(ex.queues) {
		ex.queues[s].degraded.Store(degraded)
	}
}

// Degraded reports shard s's *effective* admission state: the verdict
// (or manual) degradation flag, or saturation of the stalled-call
// budget.
func (ex *Executor) Degraded(s int) bool {
	if s < 0 || s >= len(ex.queues) {
		return false
	}
	q := ex.queues[s]
	return q.degraded.Load() || ex.saturated(q)
}

// saturated reports that the shard has exhausted its stalled-call
// budget (only meaningful while a leg budget is configured).
func (ex *Executor) saturated(q *shardQueue) bool {
	return ex.cfg.LegTimeout >= 0 && int(q.stalled.Load()) >= ex.cfg.MaxStalled
}

// pollAdmission copies the Admission signal into the per-shard flags the
// submission hot path reads, so Degraded() never takes the monitor's
// locks per leg.
func (ex *Executor) pollAdmission() {
	defer ex.wg.Done()
	t := time.NewTicker(ex.cfg.AdmitEvery)
	defer t.Stop()
	for {
		select {
		case <-ex.stop:
			return
		case <-t.C:
			for s, q := range ex.queues {
				q.degraded.Store(ex.cfg.Admission.Degraded(s))
			}
		}
	}
}

// Compile groups a request into its per-shard scatter plan without
// submitting it.
func (ex *Executor) Compile(req workload.Req) (Plan, error) {
	p := Plan{Kind: req.Kind}
	switch req.Kind {
	case workload.ReqPoint, workload.ReqMultiGet, workload.ReqMultiInsert, workload.ReqMultiDelete:
		perShard := map[int]int{}
		for _, k := range req.Keys {
			perShard[ex.st.ShardFor(k)]++
		}
		shards := make([]int, 0, len(perShard))
		for s := range perShard {
			shards = append(shards, s)
		}
		sort.Ints(shards)
		for _, s := range shards {
			p.Legs = append(p.Legs, PlanLeg{Shard: s, Ops: perShard[s]})
			p.Ops += perShard[s]
		}
	case workload.ReqRangeScan, workload.ReqRangeCount:
		if req.Hi <= req.Lo {
			return p, nil
		}
		// A hash-routed range touches every shard: the scatter is total.
		for s := 0; s < ex.st.Shards(); s++ {
			p.Legs = append(p.Legs, PlanLeg{Shard: s, Range: true})
		}
	default:
		return Plan{}, fmt.Errorf("exec: unknown request kind %d", req.Kind)
	}
	return p, nil
}

// MultiGet reads membership of keys across shards; results align with
// keys.
func (ex *Executor) MultiGet(keys []int64) (*Handle, error) {
	return ex.Submit(workload.Req{Kind: workload.ReqMultiGet, Keys: keys})
}

// MultiInsert inserts keys across shards; results align with keys.
func (ex *Executor) MultiInsert(keys []int64) (*Handle, error) {
	return ex.Submit(workload.Req{Kind: workload.ReqMultiInsert, Keys: keys})
}

// MultiDelete deletes keys across shards; results align with keys.
func (ex *Executor) MultiDelete(keys []int64) (*Handle, error) {
	return ex.Submit(workload.Req{Kind: workload.ReqMultiDelete, Keys: keys})
}

// RangeScan collects the live keys in [lo, hi), merged ascending across
// shards; limit > 0 caps the merged payload.
func (ex *Executor) RangeScan(lo, hi int64, limit int) (*Handle, error) {
	return ex.Submit(workload.Req{Kind: workload.ReqRangeScan, Lo: lo, Hi: hi, Keys: keysLimit(limit)})
}

// keysLimit smuggles a scan limit through workload.Req without adding a
// field the generator never draws: a one-element Keys slice carries it.
func keysLimit(limit int) []int64 {
	if limit <= 0 {
		return nil
	}
	return []int64{int64(limit)}
}

// RangeCount counts the live keys in [lo, hi) across shards.
func (ex *Executor) RangeCount(lo, hi int64) (*Handle, error) {
	return ex.Submit(workload.Req{Kind: workload.ReqRangeCount, Lo: lo, Hi: hi})
}

// Submit compiles req into scatter legs, enqueues them under admission
// control, and returns the completion handle. The call blocks only for
// backpressure on healthy shards; degraded shards shed instead of
// blocking.
func (ex *Executor) Submit(req workload.Req) (*Handle, error) {
	return ex.SubmitCallback(req, nil)
}

// SubmitCallback is Submit with a completion callback: fn (when non-nil)
// runs exactly once, on the goroutine that completes the request's last
// leg, right before the handle's Done channel closes. It must not block.
func (ex *Executor) SubmitCallback(req workload.Req, fn func(*Result)) (*Handle, error) {
	kind := req.Kind
	if int(kind) >= len(ex.submitted) {
		return nil, fmt.Errorf("exec: unknown request kind %d", kind)
	}
	h := &Handle{ex: ex, start: time.Now(), done: make(chan struct{}), cb: fn}
	h.res = &h.resv
	h.res.Kind = kind

	// legs live in one contiguous allocation; enqueue takes their
	// addresses.
	var legs []leg
	totalOps := 0
	switch kind {
	case workload.ReqPoint, workload.ReqMultiGet, workload.ReqMultiInsert, workload.ReqMultiDelete:
		if kind == workload.ReqPoint && len(req.Ops) != len(req.Keys) {
			return nil, fmt.Errorf("exec: point request has %d ops for %d keys", len(req.Ops), len(req.Keys))
		}
		n := len(req.Keys)
		totalOps = n
		h.res.Results = make([]store.Result, n)
		// Flat two-pass partition: count per shard, prefix offsets, then
		// slice one ops array and one index array — the grouping Do does,
		// minus the per-shard append growth.
		shards := ex.st.Shards()
		count := make([]int, 2*shards)
		offs := count[shards:]
		for _, k := range req.Keys {
			count[ex.st.ShardFor(k)]++
		}
		sum, touched := 0, 0
		for s := 0; s < shards; s++ {
			offs[s] = sum
			sum += count[s]
			if count[s] > 0 {
				touched++
			}
		}
		opsFlat := make([]store.Op, n)
		idxFlat := make([]int, n)
		for i, k := range req.Keys {
			op := store.Op{Key: k}
			if kind == workload.ReqPoint {
				op.Kind = req.Ops[i]
			} else {
				op.Kind = multiOpKind(kind)
			}
			s := ex.st.ShardFor(k)
			opsFlat[offs[s]] = op
			idxFlat[offs[s]] = i
			offs[s]++
		}
		legs = make([]leg, 0, touched)
		for s := 0; s < shards; s++ {
			if count[s] == 0 {
				continue
			}
			lo := offs[s] - count[s]
			// Key-sort each leg in place so the shard worker's fused path
			// sees ascending keys and its predecessor cache holds across
			// consecutive ops; idx travels with its op, so results still
			// land at the caller's positions. The sort is stable, which
			// preserves submission order between duplicate keys.
			sortLeg(opsFlat[lo:offs[s]], idxFlat[lo:offs[s]])
			legs = append(legs, leg{
				h: h, shard: s, kind: kind,
				ops: opsFlat[lo:offs[s]], idx: idxFlat[lo:offs[s]],
			})
		}
	case workload.ReqRangeScan, workload.ReqRangeCount:
		if req.Hi > req.Lo {
			limit := 0
			if kind == workload.ReqRangeScan && len(req.Keys) == 1 && req.Keys[0] > 0 {
				limit = int(req.Keys[0])
			}
			h.limit = limit
			legs = make([]leg, ex.st.Shards())
			for s := range legs {
				legs[s] = leg{
					h: h, shard: s, kind: kind, scan: true,
					lo: req.Lo, hi: req.Hi, limit: limit,
					countOnly: kind == workload.ReqRangeCount,
				}
			}
		}
	default:
		return nil, fmt.Errorf("exec: unknown request kind %d", kind)
	}

	ex.mu.RLock()
	if ex.closed {
		ex.mu.RUnlock()
		return nil, ErrClosed
	}
	ex.submitted[kind].Add(1)
	ex.cfg.Recorder.Record(rec.KindExecScatter, -1, 0, uint64(len(legs)), uint64(totalOps), kind.String())
	if len(legs) == 0 {
		ex.mu.RUnlock()
		h.pending.Store(1)
		h.complete()
		return h, nil
	}
	h.pending.Store(int32(len(legs)))
	// Enqueue under the read lock (Close flips closed under the write
	// lock, so no leg lands on a queue Close has already drained).
	for i := range legs {
		ex.enqueue(&legs[i])
	}
	ex.mu.RUnlock()
	return h, nil
}

// sortLeg stable-sorts one leg's (ops, idx) segment by key with a plain
// insertion sort: zero allocations, O(n) on the nearly-sorted segments
// sequential key generators produce, and legs are small (a request's keys
// divided across shards). Strict > comparison keeps duplicate keys in
// submission order.
func sortLeg(ops []store.Op, idx []int) {
	for i := 1; i < len(ops); i++ {
		op, ix := ops[i], idx[i]
		j := i
		for j > 0 && ops[j-1].Key > op.Key {
			ops[j] = ops[j-1]
			idx[j] = idx[j-1]
			j--
		}
		if j != i {
			ops[j], idx[j] = op, ix
		}
	}
}

// multiOpKind maps a multi-key request kind to its per-key operation.
func multiOpKind(k workload.ReqKind) workload.Op {
	switch k {
	case workload.ReqMultiInsert:
		return workload.OpInsert
	case workload.ReqMultiDelete:
		return workload.OpDelete
	default:
		return workload.OpContains
	}
}

// enqueue places one leg on its shard's queue under the admission
// policy: healthy shards apply blocking backpressure (re-checking the
// degradation flag while waiting, so a mid-wait verdict flip converts
// the wait into a shed), degraded shards queue without blocking and shed
// on overflow.
func (ex *Executor) enqueue(l *leg) {
	q := ex.queues[l.shard]
	// Fast path: healthy shard, no queued backlog — hand the leg straight
	// to the store from the submitter, skipping the pump hop entirely.
	if len(q.legs) == 0 && !q.degraded.Load() && !ex.saturated(q) {
		ok, err := ex.launch(q, l)
		if err != nil {
			q.legErrs.Add(1)
			l.fail(&ShardError{Shard: l.shard, Reason: err})
			return
		}
		if ok {
			q.legsTotal.Add(1)
			return
		}
		// The shard's own request queue is full: fall through to the
		// queued path and let a pump wait the backpressure out.
	}
	for {
		if ex.saturated(q) {
			// The shard's stalled-call budget is gone: every leg already
			// dispatched is stuck in the store. Executing this one could
			// only grow the pile, so admission refuses it outright.
			ex.shed(q, l)
			return
		}
		if q.degraded.Load() {
			select {
			case q.legs <- l:
				q.legsTotal.Add(1)
			default:
				ex.shed(q, l)
			}
			return
		}
		select {
		case q.legs <- l:
			q.legsTotal.Add(1)
			return
		case <-time.After(time.Millisecond):
			// Full healthy queue: keep blocking, but stay responsive to a
			// degradation flip — that is exactly the moment backpressure
			// must turn into shedding.
		}
	}
}

// shed refuses one leg with the typed admission error and completes it.
func (ex *Executor) shed(q *shardQueue, l *leg) {
	q.sheds.Add(1)
	ex.cfg.Recorder.Record(rec.KindExecShed, l.shard, 0, uint64(len(q.legs)), uint64(cap(q.legs)), l.kind.String())
	l.fail(&ShardError{Shard: l.shard, Reason: ErrShed})
}

// dispatch is one pump's loop: drive queued legs to hand-off until
// Close drains the queue.
func (ex *Executor) dispatch(q *shardQueue) {
	defer ex.wg.Done()
	for l := range q.legs {
		ex.pump(q, l)
	}
}

// legOut is one executed leg's raw outcome, held until the completion
// latch decides whether it may touch the handle.
type legOut struct {
	res   []store.Result
	keys  []int64
	count uint64
	err   error
}

// pump drives one queued leg to hand-off: non-blocking offers to the
// shard's request queue, retried under the leg's completion budget.
// The wait-for-room time counts against the budget — a parked shard
// whose queue never drains fails its queued legs here instead of
// wedging the pump forever.
func (ex *Executor) pump(q *shardQueue, l *leg) {
	budget := ex.cfg.LegTimeout >= 0
	var deadline time.Time
	if budget {
		deadline = time.Now().Add(ex.cfg.LegTimeout)
	}
	for {
		if budget && int(q.stalled.Load()) >= ex.cfg.MaxStalled {
			// The shard has eaten its stalled-call budget; launching
			// another leg would just grow the pile. Fail fast with the
			// same typed error a fresh stall would produce.
			q.timeouts.Add(1)
			l.fail(&ShardError{Shard: l.shard, Reason: ErrLegStalled})
			return
		}
		ok, err := ex.launch(q, l)
		if err != nil {
			q.legErrs.Add(1)
			l.fail(&ShardError{Shard: l.shard, Reason: err})
			return
		}
		if ok {
			return
		}
		// The shard's request queue is full: wait the backpressure out,
		// bounded by the completion budget.
		if budget && !time.Now().Before(deadline) {
			q.timeouts.Add(1)
			l.fail(&ShardError{Shard: l.shard, Reason: ErrLegStalled})
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// submitCall offers one call to the store without blocking. On
// acceptance, the call's payload routes back through finish on the shard
// worker's done callback.
func (ex *Executor) submitCall(q *shardQueue, c *call) (bool, error) {
	l := c.l
	c.start = time.Now()
	if l.scan {
		return ex.st.ScanShardAsync(l.shard, l.lo, l.hi, l.limit, l.countOnly,
			func(keys []int64, count uint64, scanErr error) {
				ex.finish(q, c, legOut{keys: keys, count: count, err: scanErr})
			})
	}
	if c.out == nil {
		// Direct-write path (no budget, no hedging): a leg has exactly one
		// call and it can only complete through the worker, so the worker
		// may write results straight into the handle at their final
		// positions — no private buffer, no copy.
		return ex.st.DoShardAsync(l.shard, l.ops, l.h.res.Results, l.idx,
			func() { ex.finish(q, c, legOut{}) })
	}
	return ex.st.DoShardAsync(l.shard, l.ops, c.out, nil,
		func() { ex.finish(q, c, legOut{res: c.out}) })
}

// launch offers one leg's primary call to the store without blocking.
// On acceptance it arms the completion budget (and the hedge delay) and
// returns true; the shard worker that completes the call routes through
// finish. A refusal (false, nil) left the leg untouched and may be
// retried.
func (ex *Executor) launch(q *shardQueue, l *leg) (bool, error) {
	c := &call{l: l}
	if !l.scan && (ex.cfg.LegTimeout >= 0 || ex.cfg.Hedge != nil) {
		// A leg that can settle away from its call (budget) or carry two
		// calls (hedge) needs a private buffer per call: the worker fills
		// it, and finish copies it into the handle only after winning the
		// completion latch — a losing call can never scribble on a result
		// the caller is already reading.
		c.out = make([]store.Result, len(l.ops))
	}
	ok, err := ex.submitCall(q, c)
	if !ok || err != nil {
		return false, err
	}
	l.calls[0].Store(c)
	if ex.cfg.LegTimeout >= 0 {
		// Armed only after acceptance, so the budget can never tick for a
		// leg the store refused. A worker so fast that finish already ran
		// leaves a timer firing into a settled latch — a counted no-op.
		l.timer.Store(time.AfterFunc(ex.cfg.LegTimeout, func() { ex.overdue(q, l) }))
	}
	if hp := ex.cfg.Hedge; hp != nil {
		if d := hp.Delay(l.shard); d > 0 {
			l.hedgeTimer.Store(time.AfterFunc(d, func() { ex.hedge(q, l, d) }))
		}
	}
	return true, nil
}

// hedge is the hedge delay firing: the leg's primary call has outlived
// the policy's quantile, so one speculative duplicate is offered to the
// same shard. The offer is best-effort and strictly bounded — refused
// without retry when the leg already settled, the shard is degraded or
// saturated, or the shard's request queue is full — because speculation
// against a shard that is struggling (rather than merely unlucky) would
// amplify exactly the load admission control exists to shed.
func (ex *Executor) hedge(q *shardQueue, l *leg, delay time.Duration) {
	if l.state.Load() != legPending || q.degraded.Load() || ex.saturated(q) {
		return
	}
	c := &call{l: l, hedge: true}
	if !l.scan {
		c.out = make([]store.Result, len(l.ops))
	}
	ok, err := ex.submitCall(q, c)
	if !ok || err != nil {
		return // no room for speculative work
	}
	l.calls[1].Store(c)
	q.hedges.Add(1)
	units := uint64(len(l.ops))
	if units == 0 {
		units = 1 // a range leg weighs one unit
	}
	q.hedgeUnits.Add(units)
	ex.cfg.Recorder.Record(rec.KindHedge, l.shard, 0, uint64(len(l.ops)), uint64(delay), l.kind.String())
}

// overdue is the completion budget firing: the leg completes with a
// typed stall while its store calls keep running — the stalled gauge,
// not a blocked goroutine, tracks the pile until each call finally lands
// in finish. Calls still running are counted individually through their
// landing latch, so a call completing inside the race window is never
// double-counted.
func (ex *Executor) overdue(q *shardQueue, l *leg) {
	if l.fail(&ShardError{Shard: l.shard, Reason: ErrLegStalled}) {
		q.timeouts.Add(1)
	}
	for i := range l.calls {
		if c := l.calls[i].Load(); c != nil && c.state.CompareAndSwap(callRunning, callCounted) {
			q.stalled.Add(1)
		}
	}
}

// finish completes a call whose store hand-off returned: wholesale
// errors become the typed per-shard failure; a successful call applies
// its payload to the handle — but only after winning the leg's
// completion latch, so a call that lost (to the budget, or to the leg's
// other call) can never touch a handle whose merge stage (and caller)
// have already moved on. That losing path is the late-call discard:
// hedge losers are counted as wasted work there. finish runs on the
// shard worker that completed the call.
func (ex *Executor) finish(q *shardQueue, c *call, o legOut) {
	l := c.l
	if !c.state.CompareAndSwap(callRunning, callLanded) {
		// The budget counted this call into the stalled gauge; it has
		// landed now, so the shard's overdue pile drops.
		q.stalled.Add(-1)
	}
	if t := l.timer.Load(); t != nil {
		t.Stop()
	}
	if t := l.hedgeTimer.Load(); t != nil {
		t.Stop()
	}
	if o.err != nil {
		if l.fail(&ShardError{Shard: l.shard, Reason: o.err}) {
			q.legErrs.Add(1)
		}
		return
	}
	if !l.state.CompareAndSwap(legPending, legDone) {
		if l.state.Load() == legDone {
			// The leg's other call won the latch: this completion is the
			// hedge loser, discarded.
			q.hedgeWaste.Add(1)
		}
		if l.scan {
			store.RecycleScanKeys(o.keys)
		}
		return
	}
	if hp := ex.cfg.Hedge; hp != nil {
		// Only the call that settles the leg feeds the hedge policy: a
		// discarded loser's latency never reached the caller, and letting
		// it in would drag the tracked quantile up to the very fault
		// latency hedging exists to mask.
		hp.Observe(l.shard, time.Since(c.start))
	}
	if c.hedge {
		q.hedgeWins.Add(1)
	}
	if l.scan {
		l.h.mergeScan(o.keys, o.count)
		// mergeScan copies, so the shard's pooled key buffer goes back.
		store.RecycleScanKeys(o.keys)
	} else if c.out != nil {
		for i, r := range o.res {
			l.h.res.Results[l.idx[i]] = r
		}
	}
	l.h.complete()
}

// fail completes a leg with a typed per-shard error and reports whether
// it won the completion latch: the leg's point slots (if any) carry the
// error per key, and the handle's ShardErrs gain one entry.
func (l *leg) fail(serr *ShardError) bool {
	if !l.state.CompareAndSwap(legPending, legStalled) {
		return false
	}
	h := l.h
	for _, i := range l.idx {
		h.res.Results[i] = store.Result{Err: serr}
	}
	h.mu.Lock()
	h.res.ShardErrs = append(h.res.ShardErrs, *serr)
	h.mu.Unlock()
	h.complete()
	return true
}

// mergeScan folds one range leg's payload into the handle under its
// lock (scan legs from different shards complete concurrently).
func (h *Handle) mergeScan(keys []int64, count uint64) {
	h.mu.Lock()
	h.res.Keys = append(h.res.Keys, keys...)
	h.res.Count += count
	h.mu.Unlock()
}

// complete retires one leg; the goroutine that retires the last leg runs
// the merge stage.
func (h *Handle) complete() {
	if h.pending.Add(-1) != 0 {
		return
	}
	h.merge()
}

// merge is the fan-in stage: deterministic assembly of the legs'
// outcomes, independent of completion order. Point/multi results are
// position-aligned already; range payloads sort ascending (shards hold
// disjoint key sets and each shard's iterator emits a key at most once,
// so the sorted union needs no dedup) and trim to the request limit;
// ShardErrs sort by shard.
func (h *Handle) merge() {
	r := h.res
	if r.Kind == workload.ReqRangeScan {
		if len(r.Keys) > 1 {
			sort.Slice(r.Keys, func(i, j int) bool { return r.Keys[i] < r.Keys[j] })
		}
		if h.limit > 0 && len(r.Keys) > h.limit {
			r.Keys = r.Keys[:h.limit]
		}
		r.Count = uint64(len(r.Keys))
	}
	if len(r.ShardErrs) > 1 {
		sort.Slice(r.ShardErrs, func(i, j int) bool { return r.ShardErrs[i].Shard < r.ShardErrs[j].Shard })
	}
	r.Elapsed = time.Since(h.start)
	ex := h.ex
	ex.completed.Add(1)
	if r.Partial() {
		ex.partial.Add(1)
	}
	merged := uint64(len(r.Results))
	if r.Kind == workload.ReqRangeScan || r.Kind == workload.ReqRangeCount {
		merged = r.Count
	}
	ex.cfg.Recorder.Record(rec.KindExecMerge, -1, 0, merged, uint64(r.Elapsed), r.Kind.String())
	if h.cb != nil {
		h.cb(r)
	}
	close(h.done)
}

// Close stops the executor: new submissions fail with ErrClosed, queued
// legs drain through the pumps, dispatchers exit. Legs stalled past
// their budget have already completed their handles; their in-flight
// store requests are the store's to finish (their callbacks fire into
// settled latches). With the budget disabled, a pump retrying into a
// never-healing shard holds Close until the shard heals. Close does not
// close the store.
func (ex *Executor) Close() error {
	ex.mu.Lock()
	if ex.closed {
		ex.mu.Unlock()
		return ErrClosed
	}
	ex.closed = true
	ex.mu.Unlock()
	close(ex.stop)
	for _, q := range ex.queues {
		close(q.legs)
	}
	ex.wg.Wait()
	return nil
}
