package resil

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hist"
)

// hedgePolicy is the client's exec.HedgePolicy: a log-bucketed latency
// histogram of every landed store call, refreshed into a hedge delay at
// the configured quantile every HedgeWindow observations. Until the
// first refresh the delay is zero and the executor hedges nothing — the
// cold-start guard that keeps a fresh client from hedging every leg.
//
// The same Observe stream doubles as the per-shard latency feed for the
// SLO verdict dimension (onLat), so deployments that only want SLO
// observation run the policy with hedging disabled.
type hedgePolicy struct {
	enabled  bool
	quantile float64
	min      time.Duration
	every    uint64
	onLat    func(shard int, d time.Duration)

	mu sync.Mutex
	h  hist.Latency
	n  uint64

	delay atomic.Int64 // current hedge delay, ns; 0 = cold
}

// Delay returns the hedge delay for shard legs (the policy tracks one
// store-wide distribution — a leg is hedged because it is an outlier
// against the fleet, not against its own struggling shard).
func (p *hedgePolicy) Delay(shard int) time.Duration {
	if !p.enabled {
		return 0
	}
	return time.Duration(p.delay.Load())
}

// Observe feeds one landed call's latency into the quantile tracker and
// the SLO latency feed.
func (p *hedgePolicy) Observe(shard int, d time.Duration) {
	if p.onLat != nil {
		p.onLat(shard, d)
	}
	if !p.enabled {
		return
	}
	p.mu.Lock()
	p.h.Record(d)
	p.n++
	if p.n%p.every == 0 {
		q := p.h.Percentile(p.quantile)
		if q < p.min {
			q = p.min
		}
		p.delay.Store(int64(q))
	}
	p.mu.Unlock()
}
