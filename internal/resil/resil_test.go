package resil_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/obs/rec"
	"repro/internal/resil"
	"repro/internal/store"
	"repro/internal/workload"
)

// newStore builds a plain (ungated) sharded store for policy tests.
func newStore(t *testing.T, shards, workers, keyRange int) *store.Store {
	t.Helper()
	specs := make([]store.ShardSpec, shards)
	for i := range specs {
		specs[i] = store.ShardSpec{Scheme: "ebr", Structure: "hashmap", Workers: workers}
	}
	st, err := store.New(store.Config{Shards: specs, KeyRange: keyRange})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// keysOnShard returns n keys the store routes to shard s.
func keysOnShard(t *testing.T, st *store.Store, s, keyRange, n int) []int64 {
	t.Helper()
	var keys []int64
	for k := int64(0); k < int64(keyRange) && len(keys) < n; k++ {
		if st.ShardFor(k) == s {
			keys = append(keys, k)
		}
	}
	if len(keys) < n {
		t.Fatalf("only %d of %d keys route to shard %d", len(keys), n, s)
	}
	return keys
}

// TestRetryErrorUnwraps pins the error-chain contract: the typed leg
// failures stay matchable through RetryError and exec.ShardError
// wrapping, in both synthetic chains and chains assembled by a real
// gave-up retry loop.
func TestRetryErrorUnwraps(t *testing.T) {
	syn := &resil.RetryError{Attempts: 3, Err: &exec.ShardError{Shard: 2, Reason: exec.ErrShed}}
	if !errors.Is(syn, exec.ErrShed) {
		t.Fatal("RetryError does not unwrap to the shed sentinel")
	}
	var serr *exec.ShardError
	if !errors.As(syn, &serr) || serr.Shard != 2 {
		t.Fatalf("RetryError does not unwrap to the shard error: %v", syn)
	}

	st := newStore(t, 4, 1, 256)
	cl, err := resil.New(st, exec.Config{}, resil.Config{
		MaxAttempts: 2,
		RetryBase:   100 * time.Microsecond,
		RetryCap:    200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := st.CloseShard(1); err != nil {
		t.Fatal(err)
	}
	keys := keysOnShard(t, st, 1, 256, 4)
	res, err := cl.Do(workload.Req{Kind: workload.ReqMultiGet, Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial() || len(res.ShardErrs) != 1 {
		t.Fatalf("closed shard did not surface as a partial result: %+v", res)
	}
	chain := error(&res.ShardErrs[0])
	if !errors.Is(chain, store.ErrShardClosed) {
		t.Fatalf("final shard error does not unwrap to ErrShardClosed: %v", chain)
	}
	var rerr *resil.RetryError
	if !errors.As(chain, &rerr) || rerr.Attempts != 2 {
		t.Fatalf("final shard error does not carry the retry record: %v", chain)
	}
	// Per-key result slots must tell the same story as ShardErrs.
	for i, r := range res.Results {
		if r.Err == nil {
			t.Fatalf("key %d on the closed shard reported success", i)
		}
		if !errors.Is(r.Err, store.ErrShardClosed) {
			t.Fatalf("key %d error does not unwrap to ErrShardClosed: %v", i, r.Err)
		}
	}
}

// TestRetryRecoversAfterReopen wedges one shard, heals it mid-backoff,
// and checks the retry loop merges the recovered keys back clean.
func TestRetryRecoversAfterReopen(t *testing.T) {
	st := newStore(t, 4, 1, 256)
	cl, err := resil.New(st, exec.Config{}, resil.Config{
		MaxAttempts: 3,
		RetryBase:   50 * time.Millisecond, // jittered [25ms, 50ms): reopen far earlier
		RetryCap:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := st.CloseShard(1); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		_ = st.ReopenShard(1)
	}()
	keys := append(keysOnShard(t, st, 1, 256, 4), keysOnShard(t, st, 0, 256, 4)...)
	res, err := cl.Do(workload.Req{Kind: workload.ReqMultiGet, Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial() {
		t.Fatalf("retry did not recover the healed shard: %+v", res.ShardErrs)
	}
	for i, r := range res.Results {
		if r.Err != nil {
			t.Fatalf("key %d still failing after recovery: %v", i, r.Err)
		}
	}
	s := cl.Stats()
	if s.Retries == 0 || s.Recovered != 1 {
		t.Fatalf("recovery not accounted: retries %d recovered %d", s.Retries, s.Recovered)
	}
	if rs := cl.RetriesByShard(); rs[1] == 0 {
		t.Fatalf("per-shard retry ledger missed the faulted shard: %v", rs)
	}
}

// TestRetryBudgetExhaustion pins the amplification bound: with the
// token bucket drained, retry rounds are refused — and a negative
// budget disables retries outright.
func TestRetryBudgetExhaustion(t *testing.T) {
	st := newStore(t, 4, 1, 256)
	cl, err := resil.New(st, exec.Config{}, resil.Config{
		MaxAttempts: 3,
		RetryBase:   100 * time.Microsecond,
		RetryCap:    200 * time.Microsecond,
		RetryBudget: 0.01, // earns ~nothing per request
		BudgetBurst: 1,    // one token: any multi-key retry round overdraws
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := st.CloseShard(1); err != nil {
		t.Fatal(err)
	}
	keys := keysOnShard(t, st, 1, 256, 4)
	res, err := cl.Do(workload.Req{Kind: workload.ReqMultiGet, Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial() {
		t.Fatal("exhausted budget still produced a clean result on a closed shard")
	}
	s := cl.Stats()
	if s.BudgetExhausted == 0 {
		t.Fatalf("drained bucket did not refuse the retry round: %+v", s)
	}
	if s.Retries != 0 {
		t.Fatalf("refused round still retried %d times", s.Retries)
	}
	// ShardErrs must NOT carry a RetryError: the request never got a
	// second attempt, so there is no retry record to report.
	var rerr *resil.RetryError
	if errors.As(&res.ShardErrs[0], &rerr) {
		t.Fatalf("unretried failure wrapped in RetryError: %v", &res.ShardErrs[0])
	}

	// Negative budget: retries disabled entirely, no exhaustion noise.
	cl2, err := resil.New(st, exec.Config{}, resil.Config{
		MaxAttempts: 3,
		RetryBase:   100 * time.Microsecond,
		RetryCap:    200 * time.Microsecond,
		RetryBudget: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if _, err := cl2.Do(workload.Req{Kind: workload.ReqMultiGet, Keys: keys}); err != nil {
		t.Fatal(err)
	}
	if s := cl2.Stats(); s.Retries != 0 {
		t.Fatalf("negative budget still retried %d times", s.Retries)
	}
}

// TestBreakerLifecycle drives one shard's breaker around the full loop
// — closed, tripped open by the failure EWMA, half-open probes after
// the heal, closed again — against a deterministically wedged shard,
// and checks the transitions landed on the flight recorder.
func TestBreakerLifecycle(t *testing.T) {
	st := newStore(t, 4, 1, 256)
	clock := rec.NewClock()
	recorder := rec.NewRecorder(clock, 0)
	cl, err := resil.New(st, exec.Config{}, resil.Config{
		MaxAttempts:    1, // isolate the breaker: no retries
		RetryBudget:    -1,
		Breaker:        true,
		BreakerEWMA:    0.5,
		BreakerMinObs:  2,
		BreakerOpenAt:  0.6,
		OpenFor:        10 * time.Millisecond,
		HalfOpenProbes: 2,
		Clock:          clock,
		Recorder:       recorder,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := st.CloseShard(1); err != nil {
		t.Fatal(err)
	}
	keys := keysOnShard(t, st, 1, 256, 2)
	req := workload.Req{Kind: workload.ReqMultiGet, Keys: keys}

	// Failures accumulate EWMA 0.5 → 0.75 → trips past 0.6 with obs ≥ 2.
	deadline := time.Now().Add(2 * time.Second)
	for cl.Stats().Breakers[1].State != resil.BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened: %+v", cl.Stats().Breakers[1])
		}
		if _, err := cl.Do(req); err != nil {
			t.Fatal(err)
		}
	}

	// Open breaker fast-fails locally with the typed sentinel.
	res, err := cl.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(&res.ShardErrs[0], resil.ErrBreakerOpen) {
		t.Fatalf("open breaker did not fast-fail: %v", &res.ShardErrs[0])
	}
	if cl.Stats().FastFails == 0 {
		t.Fatal("fast-fail ledger empty with an open breaker")
	}

	// Heal the shard; after OpenFor the next requests are half-open
	// probes, and HalfOpenProbes successes close the breaker.
	if err := st.ReopenShard(1); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for cl.Stats().Breakers[1].State != resil.BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after heal: %+v", cl.Stats().Breakers[1])
		}
		if _, err := cl.Do(req); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	bs := cl.Stats().Breakers[1]
	if bs.Opens != 1 {
		t.Fatalf("breaker opened %d times, want exactly 1", bs.Opens)
	}

	// The recorder holds the transition walk for shard 1, in order:
	// closed→open, open→half-open, half-open→closed.
	var walk [][2]uint64
	for _, ev := range recorder.Snapshot() {
		if ev.Kind == rec.KindBreaker && ev.Shard == 1 {
			walk = append(walk, [2]uint64{ev.B, ev.A}) // prev → next
		}
	}
	want := [][2]uint64{
		{uint64(resil.BreakerClosed), uint64(resil.BreakerOpen)},
		{uint64(resil.BreakerOpen), uint64(resil.BreakerHalfOpen)},
		{uint64(resil.BreakerHalfOpen), uint64(resil.BreakerClosed)},
	}
	if len(walk) != len(want) {
		t.Fatalf("breaker stamped %d transitions, want %d: %v", len(walk), len(want), walk)
	}
	for i := range want {
		if walk[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, walk[i], want[i])
		}
	}
}
