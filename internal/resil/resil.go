// Package resil is the resilience policy layer between callers and the
// scatter-gather executor: the subsystem that turns the executor's typed
// partial failures into recovered requests, and bounds how much recovery
// itself may cost.
//
// The paper's robustness classes bound *memory* under delayed threads;
// the production counterpart this layer supplies is bounding *request
// outcomes* under the same faults. Three policies compose per request:
//
//   - Typed-error-aware retries. Only legs that failed for a transient,
//     shard-side reason — shed by admission control (exec.ErrShed),
//     stalled past the leg budget (exec.ErrLegStalled), or landing on a
//     closed/migrating shard (store.ErrShardClosed) — are retried, and
//     only the failed keys are re-submitted; results already merged are
//     never re-executed. Backoff is exponential with deterministic
//     per-request jitter, capped by a per-request attempt limit and a
//     store-wide retry *budget* (token bucket denominated in operation
//     units), so a retry storm cannot amplify a degraded shard's load.
//
//   - Hedged legs. The client installs a p99-tracking hedge policy
//     (hist.Latency quantile, not a constant) into the executor, which
//     launches one speculative duplicate call for a leg that outlives
//     the delay; first completion wins, the loser is discarded through
//     the executor's late-call discard path and counted as wasted work.
//
//   - Per-shard circuit breakers. A closed/open/half-open state machine
//     fed by a recent-failure EWMA and by the live telemetry verdict
//     (a conclusive NotRobust audit forces the breaker open). While a
//     shard's breaker is open, its keys fail fast with ErrBreakerOpen
//     before touching the executor, and the executor's admission sees
//     the shard as degraded (range legs queue-or-shed instead of
//     blocking). Half-open admits a bounded number of probe requests;
//     probe successes close the breaker, a probe failure re-opens it.
//
// The package deliberately does not import internal/obs: the
// observability plane imports *it* to render era_resil_* metric
// families, and the flight recorder (internal/obs/rec) is dependency-
// free, so breaker transitions, retries and hedges stamp the same
// shared tape as every other subsystem.
package resil

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/obs/rec"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// ErrBreakerOpen reports a key refused locally because its shard's
// circuit breaker is open. It reaches callers wrapped in an
// exec.ShardError (and, after exhausted retries, a RetryError), so
// errors.Is matches it through the chain.
var ErrBreakerOpen = errors.New("resil: circuit breaker open")

// RetryError wraps a shard's final error after the retry policy gave up
// on it: how many attempts the request made, and the last typed failure.
// It unwraps to the underlying error, so errors.Is/errors.As chains that
// match exec.ShardError, exec.ErrShed, exec.ErrLegStalled,
// store.ErrShardClosed or ErrBreakerOpen keep matching through it.
type RetryError struct {
	Attempts int
	Err      error
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("resil: gave up after %d attempts: %v", e.Attempts, e.Err)
}

func (e *RetryError) Unwrap() error { return e.Err }

// retryable reports whether err is a transient, shard-side failure the
// retry policy may re-submit. Guard trips, unknown errors and executor
// shutdown are terminal.
func retryable(err error) bool {
	return errors.Is(err, exec.ErrShed) ||
		errors.Is(err, exec.ErrLegStalled) ||
		errors.Is(err, store.ErrShardClosed) ||
		errors.Is(err, ErrBreakerOpen)
}

// Config assembles a Client. The zero value selects usable defaults for
// every knob; the policy booleans (Hedge, Breaker) and MaxAttempts
// choose which policies are active.
type Config struct {
	// MaxAttempts caps a request's total executor submissions (first
	// attempt included); 0 selects 3, 1 disables retries.
	MaxAttempts int
	// RetryBase and RetryCap shape the exponential backoff between
	// attempts: base·2^(retry-1), capped, with deterministic per-request
	// jitter in [d/2, d). 0 selects 500µs and 8ms.
	RetryBase time.Duration
	RetryCap  time.Duration
	// RetryBudget is the store-wide retry token fill rate: tokens granted
	// per *offered* operation unit (a key, or one shard of a range
	// fan-out), spent per re-submitted unit. It bounds retry load
	// amplification to 1+RetryBudget of offered load (plus BudgetBurst).
	// 0 selects 0.25; negative disables retries entirely.
	RetryBudget float64
	// BudgetBurst is the token bucket's capacity in units; 0 selects 256.
	BudgetBurst int
	// Seed derives each request's jitter stream; requests are numbered
	// internally, so one seed yields one deterministic schedule.
	Seed uint64

	// Hedge enables hedged legs through the executor.
	Hedge bool
	// HedgeQuantile is the tracked latency quantile that sets the hedge
	// delay; 0 selects 0.99.
	HedgeQuantile float64
	// HedgeMin floors the hedge delay so a microsecond-fast store cannot
	// hedge every leg; 0 selects 200µs.
	HedgeMin time.Duration
	// HedgeWindow is how many landed calls pass between quantile
	// refreshes; hedging stays disabled until the first refresh (cold
	// start). 0 selects 64.
	HedgeWindow int

	// Breaker enables per-shard circuit breakers.
	Breaker bool
	// BreakerEWMA is the failure-rate smoothing factor; 0 selects 0.2.
	BreakerEWMA float64
	// BreakerOpenAt is the smoothed failure rate that opens a closed
	// breaker; 0 selects 0.5, >1 disables EWMA trips (verdict-only).
	BreakerOpenAt float64
	// BreakerMinObs is the leg-outcome count a shard must accumulate
	// before its EWMA may trip; 0 selects 8.
	BreakerMinObs int
	// OpenFor is how long an open breaker waits before admitting
	// half-open probes; 0 selects 50ms.
	OpenFor time.Duration
	// HalfOpenProbes is how many consecutive probe successes close a
	// half-open breaker (and how many probes may be in flight); 0
	// selects 3.
	HalfOpenProbes int
	// Verdicts, when set with Breaker, feeds the breaker from the live
	// telemetry monitor: a conclusive NotRobust audit on a shard's
	// domain forces its breaker open for as long as the verdict holds.
	Verdicts *telemetry.Monitor
	// VerdictEvery is the verdict poll interval; 0 selects 2ms.
	VerdictEvery time.Duration

	// OnLegLatency, when set, receives the (shard, latency) of every
	// store call that settled its scatter leg — the per-shard feed the
	// SLO verdict dimension observes. Hedge-race losers and failed
	// calls are excluded. Works with or without hedging enabled.
	OnLegLatency func(shard int, d time.Duration)

	// Clock and Recorder stamp retry and breaker events onto the
	// observability plane's shared tape. Nil keeps the layer silent.
	Clock    *rec.Clock
	Recorder *rec.Recorder
}

func (cfg *Config) fill() {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 500 * time.Microsecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 8 * time.Millisecond
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 0.25
	}
	if cfg.RetryBudget < 0 {
		cfg.RetryBudget = 0
	}
	if cfg.BudgetBurst <= 0 {
		cfg.BudgetBurst = 256
	}
	if cfg.HedgeQuantile <= 0 || cfg.HedgeQuantile >= 1 {
		cfg.HedgeQuantile = 0.99
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = 200 * time.Microsecond
	}
	if cfg.HedgeWindow <= 0 {
		cfg.HedgeWindow = 64
	}
	if cfg.BreakerEWMA <= 0 {
		cfg.BreakerEWMA = 0.2
	}
	if cfg.BreakerOpenAt <= 0 {
		cfg.BreakerOpenAt = 0.5
	}
	if cfg.BreakerMinObs <= 0 {
		cfg.BreakerMinObs = 8
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = 50 * time.Millisecond
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 3
	}
	if cfg.VerdictEvery <= 0 {
		cfg.VerdictEvery = 2 * time.Millisecond
	}
}

// Client is the resilience layer over one executor. All methods are safe
// for concurrent use; Do blocks the calling goroutine through retries,
// so pipelined callers run one goroutine (or semaphore slot) per
// in-flight request.
type Client struct {
	st  *store.Store
	ex  *exec.Executor
	cfg Config

	hp       *hedgePolicy
	breakers []breaker
	bud      budget

	seq             atomic.Uint64
	requests        atomic.Uint64
	attempts        atomic.Uint64
	retries         atomic.Uint64
	recovered       atomic.Uint64
	budgetExhausted atomic.Uint64
	fastFails       atomic.Uint64
	offeredUnits    atomic.Uint64
	attemptUnits    atomic.Uint64
	retriesByShard  []atomic.Uint64

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// New builds a resilience client over st: it wires the hedge policy and
// (with Breaker set) the breaker's degradation signal into execCfg, then
// starts the executor and, when a verdict monitor is configured, the
// breaker's verdict poller. Close stops both.
func New(st *store.Store, execCfg exec.Config, cfg Config) (*Client, error) {
	if st == nil {
		return nil, errors.New("resil: client needs a store")
	}
	cfg.fill()
	c := &Client{st: st, cfg: cfg, stop: make(chan struct{})}
	c.bud.fill = cfg.RetryBudget
	if cfg.RetryBudget > 0 {
		c.bud.cap = float64(cfg.BudgetBurst)
		c.bud.tokens = c.bud.cap
	}
	c.retriesByShard = make([]atomic.Uint64, st.Shards())
	if cfg.Hedge || cfg.OnLegLatency != nil {
		c.hp = &hedgePolicy{
			enabled:  cfg.Hedge,
			quantile: cfg.HedgeQuantile,
			min:      cfg.HedgeMin,
			every:    uint64(cfg.HedgeWindow),
			onLat:    cfg.OnLegLatency,
		}
		execCfg.Hedge = c.hp
	}
	if cfg.Breaker {
		c.breakers = make([]breaker, st.Shards())
		execCfg.Admission = breakerAdmission{c: c, inner: execCfg.Admission}
	}
	ex, err := exec.New(st, execCfg)
	if err != nil {
		return nil, err
	}
	c.ex = ex
	if cfg.Breaker && cfg.Verdicts != nil {
		c.wg.Add(1)
		go c.pollVerdicts()
	}
	return c, nil
}

// Executor returns the executor the client drives (for un-resilient
// traffic and stats).
func (c *Client) Executor() *exec.Executor { return c.ex }

// Close stops the verdict poller and the executor.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		close(c.stop)
		c.wg.Wait()
		c.closeErr = c.ex.Close()
	})
	return c.closeErr
}

// reqUnits weighs a request for the retry budget and the amplification
// ledger: one unit per key, or one per shard of a range fan-out.
func (c *Client) reqUnits(req workload.Req) uint64 {
	switch req.Kind {
	case workload.ReqRangeScan, workload.ReqRangeCount:
		return uint64(c.st.Shards())
	default:
		return uint64(len(req.Keys))
	}
}

// backoff sleeps the exponential, jittered delay before retry number
// rn (1-based). The jitter draws from the request's own deterministic
// stream: half-to-full of the exponential step.
func (c *Client) backoff(rn int, rng *workload.RNG) {
	d := c.cfg.RetryBase << uint(rn-1)
	if d > c.cfg.RetryCap || d <= 0 {
		d = c.cfg.RetryCap
	}
	half := d / 2
	if half > 0 {
		d = half + time.Duration(rng.Next()%uint64(half))
	}
	time.Sleep(d)
}

// Do executes one request under the client's policies and returns its
// merged result. The call blocks through retries and backoff; the
// returned error is reserved for terminal submission failures
// (exec.ErrClosed, malformed requests) — per-shard failures surface
// inside the Result as typed ShardErrs, wrapped in RetryError once the
// retry policy has given up on them.
func (c *Client) Do(req workload.Req) (*exec.Result, error) {
	id := c.seq.Add(1)
	rng := workload.RNG(c.cfg.Seed ^ (id * 0x9e3779b97f4a7c15))
	c.requests.Add(1)
	c.offeredUnits.Add(c.reqUnits(req))
	c.bud.earn(float64(c.reqUnits(req)))
	switch req.Kind {
	case workload.ReqRangeScan, workload.ReqRangeCount:
		return c.doRange(req, &rng)
	default:
		return c.doKeyed(req, &rng)
	}
}

// doKeyed runs a point/multi request: failed keys — and only failed
// keys — are re-submitted on retry, and recovered results merge back
// into the master result at their original positions.
func (c *Client) doKeyed(req workload.Req, rng *workload.RNG) (*exec.Result, error) {
	start := time.Now()
	master := &exec.Result{Kind: req.Kind, Results: make([]store.Result, len(req.Keys))}
	// failing tracks the currently-failing shards; pending the master
	// positions still awaiting a clean result.
	failing := map[int]exec.ShardError{}
	pending := make([]int, len(req.Keys))
	for i := range pending {
		pending[i] = i
	}
	attempt := 0
	for len(pending) > 0 {
		attempt++
		sub, blocked, probes := c.buildAttempt(req, pending)
		for s := range blocked.shards {
			failing[s] = exec.ShardError{Shard: s, Reason: ErrBreakerOpen}
		}
		for _, i := range blocked.pos {
			master.Results[i] = store.Result{Err: &exec.ShardError{Shard: c.st.ShardFor(req.Keys[i]), Reason: ErrBreakerOpen}}
		}
		c.fastFails.Add(uint64(len(blocked.pos)))
		if len(sub.pos) > 0 {
			h, err := c.ex.Submit(sub.req())
			if err != nil {
				return nil, err
			}
			res := h.Wait()
			c.attempts.Add(1)
			c.attemptUnits.Add(uint64(len(sub.pos)))
			// Merge this attempt's outcomes into the master positions.
			for j, i := range sub.pos {
				master.Results[i] = res.Results[j]
			}
			errShards := map[int]exec.ShardError{}
			for _, serr := range res.ShardErrs {
				errShards[serr.Shard] = serr
			}
			for s := range sub.shards {
				serr, failed := errShards[s]
				if failed {
					failing[s] = serr
				} else {
					delete(failing, s)
				}
				c.observeBreaker(s, !failed, probes[s])
			}
		}
		// Decide what (if anything) to retry.
		next := pending[:0]
		for _, i := range pending {
			err := master.Results[i].Err
			if err == nil {
				continue
			}
			if retryable(err) {
				next = append(next, i)
			}
		}
		pending = next
		if len(pending) == 0 || attempt >= c.cfg.MaxAttempts {
			break
		}
		if !c.bud.take(float64(len(pending))) {
			c.budgetExhausted.Add(1)
			break
		}
		c.retries.Add(1)
		for _, i := range pending {
			c.retriesByShard[c.st.ShardFor(req.Keys[i])].Add(1)
		}
		c.cfg.Recorder.Record(rec.KindRetry, -1, 0, uint64(attempt), uint64(len(pending)), req.Kind.String())
		c.backoff(attempt, rng)
	}
	c.finalizeKeyed(master, failing, attempt, len(pending) == 0)
	master.Elapsed = time.Since(start)
	return master, nil
}

// finalizeKeyed assembles the master result's ShardErrs from the
// still-failing shards, wrapping each reason in a RetryError when the
// request burned retries on it, and counts a recovery when a retried
// request ended clean.
func (c *Client) finalizeKeyed(master *exec.Result, failing map[int]exec.ShardError, attempts int, clean bool) {
	if attempts > 1 && clean && len(failing) == 0 {
		c.recovered.Add(1)
	}
	if len(failing) == 0 {
		return
	}
	wrapped := map[int]*exec.ShardError{}
	for s, serr := range failing {
		out := serr
		if attempts > 1 {
			out.Reason = &RetryError{Attempts: attempts, Err: serr.Reason}
		}
		wrapped[s] = &out
		master.ShardErrs = append(master.ShardErrs, out)
	}
	sort.Slice(master.ShardErrs, func(i, j int) bool {
		return master.ShardErrs[i].Shard < master.ShardErrs[j].Shard
	})
	// Point slots carrying a stale per-attempt error get the final
	// wrapped one, so result slots and ShardErrs tell the same story.
	for i, r := range master.Results {
		if r.Err == nil {
			continue
		}
		var serr *exec.ShardError
		if errors.As(r.Err, &serr) {
			if w, ok := wrapped[serr.Shard]; ok {
				master.Results[i] = store.Result{Err: w}
			}
		}
	}
}

// doRange runs a range request: a shard-partial scan cannot splice
// per-shard payloads across attempts (the merged Keys are already
// sorted and trimmed), so retries re-submit the whole fan-out and the
// last attempt's result wins.
func (c *Client) doRange(req workload.Req, rng *workload.RNG) (*exec.Result, error) {
	start := time.Now()
	var last *exec.Result
	units := float64(c.st.Shards())
	attempt := 0
	for {
		attempt++
		h, err := c.ex.Submit(req)
		if err != nil {
			return nil, err
		}
		last = h.Wait()
		c.attempts.Add(1)
		c.attemptUnits.Add(uint64(units))
		errShards := map[int]bool{}
		retry := false
		for _, serr := range last.ShardErrs {
			errShards[serr.Shard] = true
			if retryable(serr.Reason) {
				retry = true
			}
		}
		for s := 0; s < c.st.Shards(); s++ {
			c.observeBreaker(s, !errShards[s], false)
		}
		if !retry || attempt >= c.cfg.MaxAttempts {
			break
		}
		if !c.bud.take(units) {
			c.budgetExhausted.Add(1)
			break
		}
		c.retries.Add(1)
		for s := range errShards {
			c.retriesByShard[s].Add(1)
		}
		c.cfg.Recorder.Record(rec.KindRetry, -1, 0, uint64(attempt), uint64(len(errShards)), req.Kind.String())
		c.backoff(attempt, rng)
	}
	if attempt > 1 {
		if len(last.ShardErrs) == 0 {
			c.recovered.Add(1)
		}
		for i := range last.ShardErrs {
			last.ShardErrs[i].Reason = &RetryError{Attempts: attempt, Err: last.ShardErrs[i].Reason}
		}
	}
	last.Elapsed = time.Since(start)
	return last, nil
}

// subRequest is one attempt's submitted subset of a keyed request: the
// master positions it carries and the shards it touches.
type subRequest struct {
	kind   workload.ReqKind
	pos    []int
	keys   []int64
	ops    []workload.Op
	shards map[int]bool
}

func (s *subRequest) req() workload.Req {
	return workload.Req{Kind: s.kind, Keys: s.keys, Ops: s.ops}
}

// blockedSet is the attempt's breaker-refused complement.
type blockedSet struct {
	shards map[int]bool
	pos    []int
}

// buildAttempt partitions the pending master positions by breaker
// admission: keys on shards whose breaker admits (or grants a half-open
// probe to) this attempt go into the sub-request; keys on open shards
// are blocked for local fast-failure. probes marks the shards whose
// admission was a half-open probe grant, so the outcome feeds the probe
// ledger rather than the EWMA alone.
func (c *Client) buildAttempt(req workload.Req, pending []int) (subRequest, blockedSet, map[int]bool) {
	sub := subRequest{kind: req.Kind, shards: map[int]bool{}}
	blocked := blockedSet{shards: map[int]bool{}}
	probes := map[int]bool{}
	decided := map[int]bool{}
	for _, i := range pending {
		s := c.st.ShardFor(req.Keys[i])
		if _, ok := decided[s]; !ok {
			admit, probe := c.allowShard(s)
			decided[s] = admit
			if probe {
				probes[s] = true
			}
		}
		if !decided[s] {
			blocked.shards[s] = true
			blocked.pos = append(blocked.pos, i)
			continue
		}
		sub.shards[s] = true
		sub.pos = append(sub.pos, i)
		sub.keys = append(sub.keys, req.Keys[i])
		if req.Kind == workload.ReqPoint {
			sub.ops = append(sub.ops, req.Ops[i])
		}
	}
	return sub, blocked, probes
}

// budget is the store-wide retry token bucket, denominated in operation
// units. Offered traffic earns fill·units; retries spend their own
// units, so retry load is bounded to fill·offered + burst regardless of
// how hard the fault surface pushes back.
type budget struct {
	mu     sync.Mutex
	tokens float64
	cap    float64
	fill   float64
}

func (b *budget) earn(units float64) {
	if b.fill == 0 {
		return
	}
	b.mu.Lock()
	b.tokens += units * b.fill
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

func (b *budget) take(units float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < units {
		return false
	}
	b.tokens -= units
	return true
}

// Stats is a point-in-time snapshot of the client's resilience ledger,
// the executor's hedge counters folded in.
type Stats struct {
	// Requests counts Do calls; Attempts executor submissions (retries
	// included); Retries backoff-and-resubmit rounds; Recovered requests
	// that ended clean after at least one retry.
	Requests  uint64 `json:"requests"`
	Attempts  uint64 `json:"attempts"`
	Retries   uint64 `json:"retries"`
	Recovered uint64 `json:"recovered"`
	// BudgetExhausted counts retry rounds refused by the token bucket;
	// FastFails keys refused locally by an open breaker.
	BudgetExhausted uint64 `json:"budget_exhausted"`
	FastFails       uint64 `json:"fast_fails"`
	// OfferedUnits and AttemptUnits are the amplification ledger:
	// operation units offered by callers vs dispatched to the store
	// (retries and hedges included). Their ratio is the load
	// amplification the retry budget bounds.
	OfferedUnits uint64 `json:"offered_units"`
	AttemptUnits uint64 `json:"attempt_units"`
	// Hedges, HedgeWins and HedgeWaste mirror the executor's hedging
	// ledger (wasted work = discarded hedge-race completions);
	// HedgeUnits is the same load weighted in operation units for the
	// amplification ratio.
	Hedges     uint64 `json:"hedges"`
	HedgeWins  uint64 `json:"hedge_wins"`
	HedgeWaste uint64 `json:"hedge_waste"`
	HedgeUnits uint64 `json:"hedge_units"`
	// HedgeDelay is the hedge policy's current delay (0 = cold/disabled).
	HedgeDelay time.Duration `json:"hedge_delay_ns"`
	// Breakers holds one entry per shard when breakers are enabled.
	Breakers []BreakerStats `json:"breakers,omitempty"`
}

// Amplification returns dispatched-over-offered operation units —
// retries and hedges included — (1.0 when nothing was ever retried or
// hedged; 0 before any traffic).
func (s Stats) Amplification() float64 {
	if s.OfferedUnits == 0 {
		return 0
	}
	return float64(s.AttemptUnits+s.HedgeUnits) / float64(s.OfferedUnits)
}

// Stats snapshots the client's ledger. Safe under load; counters are
// read individually.
func (c *Client) Stats() Stats {
	es := c.ex.Stats()
	st := Stats{
		Requests:        c.requests.Load(),
		Attempts:        c.attempts.Load(),
		Retries:         c.retries.Load(),
		Recovered:       c.recovered.Load(),
		BudgetExhausted: c.budgetExhausted.Load(),
		FastFails:       c.fastFails.Load(),
		OfferedUnits:    c.offeredUnits.Load(),
		AttemptUnits:    c.attemptUnits.Load(),
		Hedges:          es.Hedges,
		HedgeWins:       es.HedgeWins,
		HedgeWaste:      es.HedgeWaste,
		HedgeUnits:      es.HedgeUnits,
	}
	if c.hp != nil {
		st.HedgeDelay = time.Duration(c.hp.delay.Load())
	}
	for s := range c.breakers {
		st.Breakers = append(st.Breakers, c.breakerStats(s))
	}
	return st
}

// RetriesByShard returns the per-shard retry-leg counter (shards whose
// failed legs a retry round re-submitted).
func (c *Client) RetriesByShard() []uint64 {
	out := make([]uint64, len(c.retriesByShard))
	for i := range c.retriesByShard {
		out[i] = c.retriesByShard[i].Load()
	}
	return out
}

// AugmentProbe wraps a telemetry probe (typically the store-gauges
// probe) so every domain's point also carries the shard's resilience
// counters — sheds, retries, hedges, breaker position — making
// resilience activity itself, not just its symptoms, visible to the
// Monitor and the timeline join.
func (c *Client) AugmentProbe(p telemetry.Probe) telemetry.Probe {
	return func() []telemetry.Point {
		pts := p()
		es := c.ex.Stats()
		retries := c.RetriesByShard()
		for s := range pts {
			if s < len(es.Shards) {
				pts[s].Sheds = es.Shards[s].Sheds
				pts[s].Hedges = es.Shards[s].Hedges
			}
			if s < len(retries) {
				pts[s].Retries = retries[s]
			}
			pts[s].BreakerState = uint8(c.breakerState(s))
		}
		return pts
	}
}
