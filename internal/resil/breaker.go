package resil

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/obs/rec"
	"repro/internal/smr"
)

// BreakerState is a per-shard circuit breaker's position.
type BreakerState uint8

const (
	// BreakerClosed admits traffic and watches the failure EWMA.
	BreakerClosed BreakerState = iota
	// BreakerOpen fast-fails the shard's keys locally and marks the
	// shard degraded for the executor's admission control.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe requests whose
	// outcomes decide between closing and re-opening.
	BreakerHalfOpen
)

// String returns the state's metric/event name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// breaker is one shard's circuit-breaker state machine. Two signals
// open it: the recent-failure EWMA crossing its threshold, and the live
// telemetry verdict auditing the shard NotRobust (the poller re-stamps
// the open window while the verdict holds, so a not-robust shard cannot
// half-open early). All fields are guarded by mu; the state machine is
// far off the hot path (one transition per fault episode, one mutex op
// per touched shard per attempt).
type breaker struct {
	mu       sync.Mutex
	state    BreakerState
	ewma     float64
	obs      int
	openedAt time.Time
	// verdictHeld marks an open forced by the NotRobust verdict; it
	// clears when the verdict does, releasing the OpenFor countdown.
	verdictHeld bool
	// probes / okProbes track half-open admission grants and their
	// successes.
	probes   int
	okProbes int

	opens       uint64
	transitions uint64
}

// BreakerStats is one shard's breaker snapshot.
type BreakerStats struct {
	Shard int          `json:"shard"`
	State BreakerState `json:"state"`
	// EWMA is the smoothed recent failure rate in [0,1].
	EWMA float64 `json:"ewma"`
	// Opens counts transitions into BreakerOpen; Transitions all state
	// changes.
	Opens       uint64 `json:"opens"`
	Transitions uint64 `json:"transitions"`
}

// transition moves b (locked) to next, stamping the flight recorder.
func (c *Client) transition(shard int, b *breaker, next BreakerState, reason string) {
	if b.state == next {
		return
	}
	prev := b.state
	b.state = next
	b.transitions++
	switch next {
	case BreakerOpen:
		b.opens++
		b.openedAt = time.Now()
		b.probes, b.okProbes = 0, 0
	case BreakerHalfOpen:
		b.probes, b.okProbes = 0, 0
	case BreakerClosed:
		b.ewma, b.obs = 0, 0
	}
	c.cfg.Recorder.Record(rec.KindBreaker, shard, 0, uint64(next), uint64(prev), reason)
}

// allowShard asks shard s's breaker whether this attempt may touch the
// shard; probe reports that the grant is a half-open probe whose
// outcome must feed the probe ledger. Without breakers every shard
// admits.
func (c *Client) allowShard(s int) (admit, probe bool) {
	if c.breakers == nil || s < 0 || s >= len(c.breakers) {
		return true, false
	}
	b := &c.breakers[s]
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if !b.verdictHeld && time.Since(b.openedAt) >= c.cfg.OpenFor {
			c.transition(s, b, BreakerHalfOpen, "open window elapsed")
			b.probes++
			return true, true
		}
		return false, false
	default: // BreakerHalfOpen
		if b.probes < c.cfg.HalfOpenProbes {
			b.probes++
			return true, true
		}
		return false, false
	}
}

// observeBreaker feeds one shard-touch outcome back into the shard's
// breaker: probes drive the half-open ledger, every outcome drives the
// failure EWMA, and a closed breaker trips once the smoothed rate
// crosses the threshold with enough evidence behind it.
func (c *Client) observeBreaker(s int, ok, probe bool) {
	if c.breakers == nil || s < 0 || s >= len(c.breakers) {
		return
	}
	b := &c.breakers[s]
	b.mu.Lock()
	defer b.mu.Unlock()
	x := 1.0
	if ok {
		x = 0
	}
	b.ewma += c.cfg.BreakerEWMA * (x - b.ewma)
	b.obs++
	switch b.state {
	case BreakerClosed:
		if b.obs >= c.cfg.BreakerMinObs && b.ewma > c.cfg.BreakerOpenAt {
			c.transition(s, b, BreakerOpen, fmt.Sprintf("failure ewma %.2f", b.ewma))
		}
	case BreakerHalfOpen:
		if !probe {
			return
		}
		if !ok {
			c.transition(s, b, BreakerOpen, "probe failed")
			return
		}
		b.okProbes++
		if b.okProbes >= c.cfg.HalfOpenProbes {
			c.transition(s, b, BreakerClosed, "probes ok")
		}
	}
}

// breakerState returns shard s's current breaker position.
func (c *Client) breakerState(s int) BreakerState {
	if c.breakers == nil || s < 0 || s >= len(c.breakers) {
		return BreakerClosed
	}
	b := &c.breakers[s]
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// breakerStats snapshots shard s's breaker.
func (c *Client) breakerStats(s int) BreakerStats {
	b := &c.breakers[s]
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{Shard: s, State: b.state, EWMA: b.ewma, Opens: b.opens, Transitions: b.transitions}
}

// pollVerdicts is the breaker's telemetry feed: a conclusive NotRobust
// audit on a shard's domain forces its breaker open and holds it there
// (re-stamping the open window) until the verdict clears.
func (c *Client) pollVerdicts() {
	defer c.wg.Done()
	mon := c.cfg.Verdicts
	t := time.NewTicker(c.cfg.VerdictEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			n := mon.Domains()
			if n > len(c.breakers) {
				n = len(c.breakers)
			}
			for s := 0; s < n; s++ {
				v := mon.Verdict(s)
				notRobust := !v.Inconclusive() && v.AuditedClass() == smr.NotRobust
				b := &c.breakers[s]
				b.mu.Lock()
				if notRobust {
					if b.state != BreakerOpen {
						c.transition(s, b, BreakerOpen, "verdict not-robust")
					}
					b.verdictHeld = true
					b.openedAt = time.Now()
				} else if b.verdictHeld {
					b.verdictHeld = false
					b.openedAt = time.Now() // OpenFor counts from the clear
				}
				b.mu.Unlock()
			}
		}
	}
}

// breakerAdmission fuses the breaker state into the executor's
// admission signal: a shard with an open breaker is degraded (its range
// legs queue-or-shed instead of blocking), on top of whatever inner
// signal — typically the verdict admission — already reports.
type breakerAdmission struct {
	c     *Client
	inner exec.Admission
}

func (a breakerAdmission) Degraded(shard int) bool {
	if a.inner != nil && a.inner.Degraded(shard) {
		return true
	}
	return a.c.breakerState(shard) == BreakerOpen
}
