package sched

import (
	"testing"
	"time"
)

func TestBreakpointParksAndReleases(t *testing.T) {
	b := NewBreakpoints()
	stall := b.Arm(1, "p", nil, 0)
	var order []string
	task := Go(func() error {
		order = append(order, "before")
		b.Hit(1, "p", 0)
		order = append(order, "after")
		return nil
	})
	<-stall.Reached()
	if len(order) != 1 || order[0] != "before" {
		t.Fatalf("order at stall: %v", order)
	}
	if task.Done() {
		t.Fatal("task must be parked")
	}
	stall.Release()
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[1] != "after" {
		t.Fatalf("order: %v", order)
	}
}

func TestBreakpointMatchAndSkip(t *testing.T) {
	b := NewBreakpoints()
	// Park at the second visit with arg==7.
	stall := b.Arm(0, "p", func(a uint64) bool { return a == 7 }, 1)
	visits := 0
	task := Go(func() error {
		for _, a := range []uint64{1, 7, 2, 7, 7} {
			b.Hit(0, "p", a)
			visits++
		}
		return nil
	})
	<-stall.Reached()
	if visits != 3 { // stalled inside the 4th Hit (second arg==7)
		t.Fatalf("visits at stall: %d", visits)
	}
	stall.Release()
	_ = task.Wait()
	if visits != 5 {
		t.Fatalf("visits: %d", visits)
	}
}

func TestBreakpointOtherThreadUnaffected(t *testing.T) {
	b := NewBreakpoints()
	_ = b.Arm(0, "p", nil, 0)
	done := make(chan struct{})
	go func() {
		b.Hit(1, "p", 0) // different tid: must not block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("thread 1 blocked on thread 0's breakpoint")
	}
}

func TestDisarm(t *testing.T) {
	b := NewBreakpoints()
	_ = b.Arm(0, "p", nil, 0)
	b.Disarm(0)
	done := make(chan struct{})
	go func() {
		b.Hit(0, "p", 0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("disarmed breakpoint still parks")
	}
}

func TestHitWithNoArm(t *testing.T) {
	b := NewBreakpoints()
	b.Hit(3, "anything", 42) // must be a no-op
}

// TestReleaseIdempotent: directors commonly release once on the happy path
// and again in a deferred cleanup; the second call must be a no-op, not a
// double-close panic.
func TestReleaseIdempotent(t *testing.T) {
	b := NewBreakpoints()
	stall := b.Arm(0, "p", nil, 0)
	task := Go(func() error {
		b.Hit(0, "p", 0)
		return nil
	})
	<-stall.Reached()
	stall.Release()
	stall.Release() // must not panic
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	// Releasing concurrently from several goroutines is equally safe.
	stall2 := b.Arm(0, "p", nil, 0)
	task2 := Go(func() error {
		b.Hit(0, "p", 0)
		return nil
	})
	<-stall2.Reached()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			stall2.Release()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if err := task2.Wait(); err != nil {
		t.Fatal(err)
	}
}
