package sched

import (
	"sync"
	"testing"
	"time"
)

func TestBreakpointParksAndReleases(t *testing.T) {
	b := NewBreakpoints()
	stall := b.Arm(1, "p", nil, 0)
	var order []string
	task := Go(func() error {
		order = append(order, "before")
		b.Hit(1, "p", 0)
		order = append(order, "after")
		return nil
	})
	<-stall.Reached()
	if len(order) != 1 || order[0] != "before" {
		t.Fatalf("order at stall: %v", order)
	}
	if task.Done() {
		t.Fatal("task must be parked")
	}
	stall.Release()
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[1] != "after" {
		t.Fatalf("order: %v", order)
	}
}

func TestBreakpointMatchAndSkip(t *testing.T) {
	b := NewBreakpoints()
	// Park at the second visit with arg==7.
	stall := b.Arm(0, "p", func(a uint64) bool { return a == 7 }, 1)
	visits := 0
	task := Go(func() error {
		for _, a := range []uint64{1, 7, 2, 7, 7} {
			b.Hit(0, "p", a)
			visits++
		}
		return nil
	})
	<-stall.Reached()
	if visits != 3 { // stalled inside the 4th Hit (second arg==7)
		t.Fatalf("visits at stall: %d", visits)
	}
	stall.Release()
	_ = task.Wait()
	if visits != 5 {
		t.Fatalf("visits: %d", visits)
	}
}

func TestBreakpointOtherThreadUnaffected(t *testing.T) {
	b := NewBreakpoints()
	_ = b.Arm(0, "p", nil, 0)
	done := make(chan struct{})
	go func() {
		b.Hit(1, "p", 0) // different tid: must not block
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("thread 1 blocked on thread 0's breakpoint")
	}
}

func TestDisarm(t *testing.T) {
	b := NewBreakpoints()
	_ = b.Arm(0, "p", nil, 0)
	b.Disarm(0)
	done := make(chan struct{})
	go func() {
		b.Hit(0, "p", 0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("disarmed breakpoint still parks")
	}
}

func TestHitWithNoArm(t *testing.T) {
	b := NewBreakpoints()
	b.Hit(3, "anything", 42) // must be a no-op
}

// TestReleaseIdempotent: directors commonly release once on the happy path
// and again in a deferred cleanup; the second call must be a no-op, not a
// double-close panic.
func TestReleaseIdempotent(t *testing.T) {
	b := NewBreakpoints()
	stall := b.Arm(0, "p", nil, 0)
	task := Go(func() error {
		b.Hit(0, "p", 0)
		return nil
	})
	<-stall.Reached()
	stall.Release()
	stall.Release() // must not panic
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	// Releasing concurrently from several goroutines is equally safe.
	stall2 := b.Arm(0, "p", nil, 0)
	task2 := Go(func() error {
		b.Hit(0, "p", 0)
		return nil
	})
	<-stall2.Reached()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			stall2.Release()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if err := task2.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestRearmReplaces: arming a second breakpoint for the same thread
// replaces the first — only the newest parks, and the orphaned stall
// never fires.
func TestRearmReplaces(t *testing.T) {
	b := NewBreakpoints()
	old := b.Arm(0, "p", nil, 0)
	cur := b.Arm(0, "q", nil, 0)
	task := Go(func() error {
		b.Hit(0, "p", 0) // replaced: must not park
		b.Hit(0, "q", 0) // current: parks
		return nil
	})
	<-cur.Reached()
	select {
	case <-old.Reached():
		t.Fatal("replaced breakpoint fired")
	default:
	}
	cur.Release()
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReachedWaiters: many directors may wait on the same
// stall's Reached (the chaos engine's fault and its watchdog both do);
// all of them must wake.
func TestConcurrentReachedWaiters(t *testing.T) {
	b := NewBreakpoints()
	stall := b.Arm(0, "p", nil, 0)
	var woke sync.WaitGroup
	for i := 0; i < 8; i++ {
		woke.Add(1)
		go func() {
			defer woke.Done()
			<-stall.Reached()
		}()
	}
	task := Go(func() error {
		b.Hit(0, "p", 0)
		return nil
	})
	woke.Wait()
	stall.Release()
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseBeforeReached: the chaos heal path releases defensively even
// when the park never happened — the thread arriving *after* the release
// must sail through without blocking once the breakpoint is disarmed,
// and a pre-release park must not deadlock.
func TestReleaseBeforeReached(t *testing.T) {
	b := NewBreakpoints()
	stall := b.Arm(0, "p", nil, 0)
	// Heal-without-park: disarm then release, as chaos does.
	b.Disarm(0)
	stall.Release()
	done := make(chan struct{})
	go func() {
		b.Hit(0, "p", 0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("thread blocked after disarm+release")
	}

	// Park racing the release: the hit that claims the breakpoint before
	// the release must unblock on the closed channel, not hang.
	stall2 := b.Arm(0, "p", nil, 0)
	task := Go(func() error {
		b.Hit(0, "p", 0)
		return nil
	})
	stall2.Release() // possibly before, possibly after the park
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentHitsAndDisarms hammers Arm/Hit/Disarm from many
// goroutines: no panics, no lost releases, every parked thread drains.
// This is the exact contention shape of a chaos run — gate hits on every
// shard operation while the engine arms and heals.
func TestConcurrentHitsAndDisarms(t *testing.T) {
	b := NewBreakpoints()
	const threads = 4
	stop := make(chan struct{})
	var hitters sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		hitters.Add(1)
		go func(tid int) {
			defer hitters.Done()
			for {
				select {
				case <-stop:
					return
				default:
					b.Hit(tid, "p", uint64(tid))
				}
			}
		}(tid)
	}
	for round := 0; round < 50; round++ {
		tid := round % threads
		stall := b.Arm(tid, "p", nil, round%3)
		select {
		case <-stall.Reached():
		case <-time.After(2 * time.Second):
			t.Fatal("armed breakpoint never reached under churn")
		}
		stall.Release()
		b.Disarm(tid) // already fired: must be a harmless no-op
	}
	close(stop)
	hitters.Wait()
}

// TestArmIfFreeAndDisarmStall: claiming arms refuse to replace, and the
// targeted disarm removes only its own breakpoint.
func TestArmIfFreeAndDisarmStall(t *testing.T) {
	b := NewBreakpoints()
	first, ok := b.ArmIfFree(0, "p", nil, 0)
	if !ok || first == nil {
		t.Fatal("first claim refused")
	}
	if _, ok := b.ArmIfFree(0, "q", nil, 0); ok {
		t.Fatal("second claim replaced an armed breakpoint")
	}
	// DisarmStall with a stranger's stall must not remove first's.
	stranger, _ := b.ArmIfFree(1, "p", nil, 0)
	b.DisarmStall(0, stranger)
	task := Go(func() error {
		b.Hit(0, "p", 0)
		return nil
	})
	select {
	case <-first.Reached():
	case <-time.After(2 * time.Second):
		t.Fatal("first's breakpoint was removed by a mismatched DisarmStall")
	}
	first.Release()
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	// After first fired, its slot is free again; a new owner claims it
	// and first's (now stale) DisarmStall must not remove the new one.
	second, ok := b.ArmIfFree(0, "p", nil, 0)
	if !ok {
		t.Fatal("slot not free after fire")
	}
	b.DisarmStall(0, first) // stale: no-op
	task2 := Go(func() error {
		b.Hit(0, "p", 0)
		return nil
	})
	select {
	case <-second.Reached():
	case <-time.After(2 * time.Second):
		t.Fatal("stale DisarmStall removed the new owner's breakpoint")
	}
	second.Release()
	if err := task2.Wait(); err != nil {
		t.Fatal(err)
	}
	b.DisarmStall(1, stranger)
}
