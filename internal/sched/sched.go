// Package sched provides the deterministic execution control used to build
// the paper's adversarial executions.
//
// The proofs of Theorem 6.1 (Figure 1) and of Appendix E (Figure 2) are
// driven by a scheduler: "at this stage, the scheduler moves control to
// T2", "T1 is halted after reading head's next pointer", "starting from
// C_in, the scheduler applies a solo-run by T1". This package realizes that
// scheduler as breakpoints: data-structure operations are instrumented with
// named yield points, a director arms a breakpoint for a specific thread at
// a specific point, and the thread parks there until released. Threads that
// run whole operations to completion need no machinery at all — the
// director simply invokes their operations inline.
package sched

import "sync"

// Gate is the instrumentation hook data-structure code calls at named
// execution points. The zero-value usage is a nil *Breakpoints, which every
// call site must guard (a nil gate means free running); the data-structure
// packages wrap that guard.
type Gate interface {
	// Hit reports that thread tid reached the named point with an
	// auxiliary argument (typically the key of the node in hand). Hit
	// may block the calling goroutine if a breakpoint is armed.
	Hit(tid int, point string, arg uint64)
}

// Stall is an armed breakpoint: the director waits on Reached, the parked
// thread waits for Release.
type Stall struct {
	reached     chan struct{}
	release     chan struct{}
	releaseOnce sync.Once
}

// Reached is closed when some thread parks at the breakpoint.
func (s *Stall) Reached() <-chan struct{} { return s.reached }

// Release unparks the thread. It is idempotent: only the first call
// releases, later calls are no-ops, so directors may release defensively
// on every exit path.
func (s *Stall) Release() {
	s.releaseOnce.Do(func() { close(s.release) })
}

type bp struct {
	point string
	match func(arg uint64) bool
	skip  int
	stall *Stall
}

// Breakpoints is a Gate that can park threads at armed points. It is the
// paper's adversarial scheduler.
type Breakpoints struct {
	mu    sync.Mutex
	armed map[int]*bp
}

// NewBreakpoints builds an empty breakpoint set.
func NewBreakpoints() *Breakpoints {
	return &Breakpoints{armed: make(map[int]*bp)}
}

// Arm arms a breakpoint for thread tid at the named point. The thread will
// park at its (skip+1)-th future visit to the point for which match(arg)
// holds; a nil match accepts every visit. Only one breakpoint per thread
// may be armed at a time; re-arming replaces the previous one.
func (b *Breakpoints) Arm(tid int, point string, match func(arg uint64) bool, skip int) *Stall {
	s := &Stall{reached: make(chan struct{}), release: make(chan struct{})}
	b.mu.Lock()
	b.armed[tid] = &bp{point: point, match: match, skip: skip, stall: s}
	b.mu.Unlock()
	return s
}

// ArmIfFree arms like Arm but refuses to replace: when tid already has a
// breakpoint armed it returns (nil, false) and leaves it in place.
// Concurrent directors sharing one Breakpoints (the chaos engine's
// stall-family faults) use it to claim distinct threads without
// clobbering each other.
func (b *Breakpoints) ArmIfFree(tid int, point string, match func(arg uint64) bool, skip int) (*Stall, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, taken := b.armed[tid]; taken {
		return nil, false
	}
	s := &Stall{reached: make(chan struct{}), release: make(chan struct{})}
	b.armed[tid] = &bp{point: point, match: match, skip: skip, stall: s}
	return s, true
}

// Disarm removes any breakpoint armed for tid.
func (b *Breakpoints) Disarm(tid int) {
	b.mu.Lock()
	delete(b.armed, tid)
	b.mu.Unlock()
}

// DisarmStall removes tid's breakpoint only if it is the one whose Arm
// returned s — the safe form for a director that may be racing other
// directors (its own breakpoint may have fired and the slot been re-armed
// by someone else; a plain Disarm would remove theirs).
func (b *Breakpoints) DisarmStall(tid int, s *Stall) {
	b.mu.Lock()
	if p := b.armed[tid]; p != nil && p.stall == s {
		delete(b.armed, tid)
	}
	b.mu.Unlock()
}

// Hit implements Gate.
func (b *Breakpoints) Hit(tid int, point string, arg uint64) {
	b.mu.Lock()
	p := b.armed[tid]
	if p == nil || p.point != point || (p.match != nil && !p.match(arg)) {
		b.mu.Unlock()
		return
	}
	if p.skip > 0 {
		p.skip--
		b.mu.Unlock()
		return
	}
	delete(b.armed, tid)
	b.mu.Unlock()
	close(p.stall.reached)
	<-p.stall.release
}

// Task is a handle on an asynchronously running operation.
type Task struct {
	done chan struct{}
	err  error
}

// Go runs fn on its own goroutine and returns a handle. It is how the
// director launches the thread that will park at a breakpoint.
func Go(fn func() error) *Task {
	t := &Task{done: make(chan struct{})}
	go func() {
		defer close(t.done)
		t.err = fn()
	}()
	return t
}

// Wait blocks until the task finishes and returns its error.
func (t *Task) Wait() error {
	<-t.done
	return t.err
}

// Done reports without blocking whether the task has finished.
func (t *Task) Done() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}
