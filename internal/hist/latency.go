package hist

import (
	"math/bits"
	"time"
)

// latencySubBits sets the resolution of the latency histogram: each
// power-of-two magnitude is split into 2^latencySubBits sub-buckets, giving
// a worst-case quantization error of 1/16th of the reported value.
const latencySubBits = 4

const latencyBuckets = 64 * (1 << latencySubBits)

// Latency is a log-scaled histogram of operation latencies. It is built
// for the benchmark engine's hot loop: Record is a shift, a mask and an
// increment on a plain (unsynchronized) counter array, so each measuring
// thread owns a Latency and the engine merges them once the run is over.
// The zero value is ready to use.
type Latency struct {
	count   uint64
	buckets [latencyBuckets]uint64
}

// bucketOf maps a duration to its bucket: high bits select the magnitude
// (bit length of the nanosecond count), low bits the linear sub-bucket
// within that magnitude.
func bucketOf(d time.Duration) int {
	ns := uint64(d.Nanoseconds())
	if ns < 1<<latencySubBits {
		return int(ns)
	}
	msb := bits.Len64(ns) - 1
	sub := (ns >> (uint(msb) - latencySubBits)) & (1<<latencySubBits - 1)
	return (msb-latencySubBits+1)<<latencySubBits + int(sub)
}

// midOf returns the representative duration of bucket b (its lower bound).
func midOf(b int) time.Duration {
	if b < 1<<latencySubBits {
		return time.Duration(b)
	}
	exp := uint(b>>latencySubBits) + latencySubBits - 1
	sub := uint64(b & (1<<latencySubBits - 1))
	return time.Duration(1<<exp | sub<<(exp-latencySubBits))
}

// Record adds one latency observation.
func (l *Latency) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	l.buckets[bucketOf(d)]++
	l.count++
}

// Count returns the number of recorded observations.
func (l *Latency) Count() uint64 { return l.count }

// Merge folds other into l.
func (l *Latency) Merge(other *Latency) {
	if other == nil {
		return
	}
	l.count += other.count
	for i, c := range other.buckets {
		l.buckets[i] += c
	}
}

// Percentile returns the latency at quantile p in [0, 1] (0.5 is the
// median). An empty histogram reports zero.
func (l *Latency) Percentile(p float64) time.Duration {
	if l.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(l.count-1))
	var seen uint64
	for b, c := range l.buckets {
		seen += c
		if c > 0 && seen > rank {
			return midOf(b)
		}
	}
	return midOf(latencyBuckets - 1)
}
