// Package hist records operation histories and checks them for
// linearizability against sequential specifications; it also provides the
// log-bucketed latency histogram (Latency) the benchmark engine samples
// operation timings into.
//
// It implements the formalism of Section 3 of the paper: an execution is
// modelled by its history (the sub-sequence of operation invocation and
// response steps); a complete history is linearizable if some sequential
// ordering of its operations (a) belongs to the object's sequential
// specification and (b) respects the real-time order of non-overlapping
// operations. The checker is used by the applicability harness to validate
// condition (2) of Definition 5.4: the integrated implementation must be
// linearizable.
package hist

import (
	"fmt"
	"sync/atomic"
)

// OpKind names an abstract-data-type operation.
type OpKind uint8

// Operations of the set, queue and stack abstract data types.
const (
	OpInsert OpKind = iota
	OpDelete
	OpContains
	OpEnqueue
	OpDequeue
	OpPush
	OpPop
)

// String returns the operation name.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpContains:
		return "contains"
	case OpEnqueue:
		return "enqueue"
	case OpDequeue:
		return "dequeue"
	case OpPush:
		return "push"
	case OpPop:
		return "pop"
	}
	return "?"
}

// Op is one complete operation in a history: an invocation step and its
// matching response step, with logical timestamps drawn from a global
// atomic counter (Inv < Res always; two operations overlap iff neither's
// Res precedes the other's Inv).
type Op struct {
	Tid  int
	Kind OpKind
	Key  int64
	// Ok is the boolean result (insert/delete/contains success, or
	// whether dequeue/pop returned a value).
	Ok bool
	// Val is the value returned by dequeue/pop when Ok.
	Val int64
	Inv int64
	Res int64
}

func (o Op) String() string {
	return fmt.Sprintf("T%d %s(%d)=%v,%d [%d,%d]", o.Tid, o.Kind, o.Key, o.Ok, o.Val, o.Inv, o.Res)
}

// Recorder collects per-thread operation records with globally ordered
// timestamps. Each thread id must be driven by one goroutine at a time;
// recording is then synchronization-free apart from the timestamp counter.
type Recorder struct {
	clock     atomic.Int64
	perThread [][]Op
}

// NewRecorder builds a recorder for n threads.
func NewRecorder(n int) *Recorder {
	return &Recorder{perThread: make([][]Op, n)}
}

// PendingOp is a started-but-unfinished operation.
type PendingOp struct {
	op Op
}

// Begin records the invocation step of an operation by thread tid.
func (r *Recorder) Begin(tid int, kind OpKind, key int64) PendingOp {
	return PendingOp{op: Op{Tid: tid, Kind: kind, Key: key, Inv: r.clock.Add(1)}}
}

// End records the matching response step. Operations that never End (a
// stalled thread) simply do not appear in the history, which matches the
// paper's completion rule for pending operations without visible effects.
func (r *Recorder) End(tid int, p PendingOp, ok bool, val int64) {
	p.op.Ok = ok
	p.op.Val = val
	p.op.Res = r.clock.Add(1)
	r.perThread[tid] = append(r.perThread[tid], p.op)
}

// History returns all complete operations of all threads.
func (r *Recorder) History() []Op {
	var all []Op
	for _, ops := range r.perThread {
		all = append(all, ops...)
	}
	return all
}

// Reset clears the recorder (the clock keeps advancing, which is harmless).
func (r *Recorder) Reset() {
	for i := range r.perThread {
		r.perThread[i] = r.perThread[i][:0]
	}
}

// WellFormed checks that each thread's sub-history is sequential: an
// alternating sequence of invocations and matching responses (Section 3 of
// the paper). The Recorder produces well-formed histories by construction;
// the check exists to validate externally assembled histories.
func WellFormed(ops []Op) error {
	perThread := map[int][]Op{}
	for _, o := range ops {
		perThread[o.Tid] = append(perThread[o.Tid], o)
	}
	for tid, tops := range perThread {
		var last int64 = -1
		for _, o := range tops {
			if o.Inv >= o.Res {
				return fmt.Errorf("hist: T%d operation %v has Inv >= Res", tid, o)
			}
			if o.Inv <= last {
				return fmt.Errorf("hist: T%d overlapping own operations at %v", tid, o)
			}
			last = o.Res
		}
	}
	return nil
}
