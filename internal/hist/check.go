package hist

import (
	"fmt"
	"sort"
)

// MaxCheckOps is the largest single window the checker accepts (the
// linearized subset is tracked as a 64-bit mask).
const MaxCheckOps = 64

type memoKey struct {
	mask uint64
	hash uint64
}

func sortByInv(ops []Op) []Op {
	sorted := make([]Op, len(ops))
	copy(sorted, ops)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Inv < sorted[j].Inv })
	return sorted
}

// finalStates explores every linearization of ops starting from state
// start (Wing & Gong search with memoization) and returns the distinct
// (by hash) abstract states a legal linearization can end in. An empty
// result means ops is not linearizable from start.
func finalStates(spec Spec, start State, ops []Op) []State {
	if len(ops) == 0 {
		return []State{start}
	}
	sorted := sortByInv(ops)
	full := uint64(1)<<len(sorted) - 1
	memo := make(map[memoKey]bool)
	var finals []State
	seenFinal := make(map[uint64]bool)

	var search func(mask uint64, st State)
	search = func(mask uint64, st State) {
		if mask == full {
			if !seenFinal[st.Hash()] {
				seenFinal[st.Hash()] = true
				finals = append(finals, st)
			}
			return
		}
		key := memoKey{mask: mask, hash: st.Hash()}
		if memo[key] {
			return
		}
		memo[key] = true
		// firstRes: the earliest response among unlinearized operations.
		// An operation may be linearized next only if it was invoked
		// before every unlinearized operation's response; otherwise some
		// completed operation would be ordered after one that started
		// after it finished, violating real-time order.
		firstRes := int64(1<<62 - 1)
		for i, o := range sorted {
			if mask&(1<<i) == 0 && o.Res < firstRes {
				firstRes = o.Res
			}
		}
		for i, o := range sorted {
			if mask&(1<<i) != 0 {
				continue
			}
			if o.Inv > firstRes {
				break // sorted by Inv: no later candidates either
			}
			if next, ok := spec.Apply(st, o); ok {
				search(mask|1<<i, next)
			}
		}
	}
	search(0, start)
	return finals
}

// Check decides whether the complete history ops is linearizable with
// respect to spec, starting from the initial (empty) object state. It is
// exhaustive for histories of at most MaxCheckOps operations.
func Check(spec Spec, ops []Op) (bool, error) {
	if err := WellFormed(ops); err != nil {
		return false, err
	}
	if len(ops) > MaxCheckOps {
		return false, fmt.Errorf("hist: history of %d ops exceeds MaxCheckOps=%d", len(ops), MaxCheckOps)
	}
	return len(finalStates(spec, spec.Init(), ops)) > 0, nil
}

// CheckChained checks a history split into real-time-ordered windows:
// every operation of window i must respond before any operation of window
// i+1 is invoked (the harness enforces this with barriers between rounds).
// The possible abstract states are threaded across windows, so the check
// is exhaustive over the whole history while each search stays bounded by
// the window size.
func CheckChained(spec Spec, windows [][]Op) (bool, error) {
	states := []State{spec.Init()}
	var lastRes int64 = -1
	for wi, w := range windows {
		if err := WellFormed(w); err != nil {
			return false, err
		}
		if len(w) > MaxCheckOps {
			return false, fmt.Errorf("hist: window %d has %d ops, exceeds MaxCheckOps=%d", wi, len(w), MaxCheckOps)
		}
		for _, o := range w {
			if o.Inv <= lastRes {
				return false, fmt.Errorf("hist: window %d overlaps previous window (op %v)", wi, o)
			}
		}
		for _, o := range w {
			if o.Res > lastRes {
				lastRes = o.Res
			}
		}
		var next []State
		seen := make(map[uint64]bool)
		for _, st := range states {
			for _, f := range finalStates(spec, st, w) {
				if !seen[f.Hash()] {
					seen[f.Hash()] = true
					next = append(next, f)
				}
			}
		}
		if len(next) == 0 {
			return false, nil
		}
		states = next
	}
	return true, nil
}
