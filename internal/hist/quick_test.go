package hist_test

import (
	"testing"
	"testing/quick"

	"repro/internal/hist"
)

// genHistory builds a history that is linearizable by construction: the
// operations are applied to a model set in a chosen order, results taken
// from the model, and each operation gets its own thread with an interval
// straddling its linearization point — so every real-time constraint the
// checker derives is satisfiable.
func genHistory(opKinds []uint8, keys []uint8) []hist.Op {
	n := len(opKinds)
	if len(keys) < n {
		n = len(keys)
	}
	if n > 10 {
		n = 10
	}
	model := make(map[int64]bool)
	ops := make([]hist.Op, 0, n)
	for i := 0; i < n; i++ {
		key := int64(keys[i] % 5)
		var kind hist.OpKind
		var ok bool
		switch opKinds[i] % 3 {
		case 0:
			kind = hist.OpInsert
			ok = !model[key]
			model[key] = true
		case 1:
			kind = hist.OpDelete
			ok = model[key]
			delete(model, key)
		default:
			kind = hist.OpContains
			ok = model[key]
		}
		// Linearization point at 100+10*i; the interval extends up to 9
		// ticks on either side, overlapping the neighbours. (Timestamps
		// stay positive: the well-formedness check treats them as such.)
		spread := int64(opKinds[i] % 10)
		ops = append(ops, hist.Op{
			Tid:  i, // one thread per op: per-thread well-formedness is free
			Kind: kind,
			Key:  key,
			Ok:   ok,
			Inv:  int64(100+10*i) - spread,
			Res:  int64(100+10*i) + spread + 1,
		})
	}
	return ops
}

// TestCheckAcceptsConstructedLinearizable: any history generated with
// results taken from a sequential model application must check out.
func TestCheckAcceptsConstructedLinearizable(t *testing.T) {
	f := func(opKinds []uint8, keys []uint8) bool {
		ops := genHistory(opKinds, keys)
		ok, err := hist.Check(hist.SetSpec{}, ops)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckRejectsImpossibleObservation: a contains(k)=true with no
// insert(k) anywhere is never linearizable.
func TestCheckRejectsImpossibleObservation(t *testing.T) {
	ops := []hist.Op{
		{Tid: 0, Kind: hist.OpContains, Key: 1, Ok: true, Inv: 1, Res: 2},
	}
	ok, err := hist.Check(hist.SetSpec{}, ops)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("accepted contains(1)=true on an empty set")
	}
}

// TestCheckRejectsRealTimeViolation: two sequential (non-overlapping)
// inserts of the same key cannot both succeed... unless a delete fits
// between them — so pin the order with real time and no delete.
func TestCheckRejectsRealTimeViolation(t *testing.T) {
	ops := []hist.Op{
		{Tid: 0, Kind: hist.OpInsert, Key: 7, Ok: true, Inv: 1, Res: 2},
		{Tid: 1, Kind: hist.OpInsert, Key: 7, Ok: true, Inv: 3, Res: 4},
	}
	ok, err := hist.Check(hist.SetSpec{}, ops)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("accepted two sequential successful inserts of the same key")
	}
	// The same two operations overlapping are still not linearizable for
	// a set (no interleaving makes both inserts succeed).
	ops[1].Inv = 1
	ops[1].Res = 5
	ok, err = hist.Check(hist.SetSpec{}, ops)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("accepted two overlapping successful inserts of the same key")
	}
}

// TestQueueFIFOViolation: out-of-order dequeues are rejected.
func TestQueueFIFOViolation(t *testing.T) {
	ops := []hist.Op{
		{Tid: 0, Kind: hist.OpEnqueue, Key: 1, Ok: true, Inv: 1, Res: 2},
		{Tid: 0, Kind: hist.OpEnqueue, Key: 2, Ok: true, Inv: 3, Res: 4},
		{Tid: 1, Kind: hist.OpDequeue, Ok: true, Val: 2, Inv: 5, Res: 6},
		{Tid: 1, Kind: hist.OpDequeue, Ok: true, Val: 1, Inv: 7, Res: 8},
	}
	ok, err := hist.Check(hist.QueueSpec{}, ops)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("accepted LIFO behaviour from a queue")
	}
	// The same values in FIFO order are accepted.
	ops[2].Val, ops[3].Val = 1, 2
	ok, err = hist.Check(hist.QueueSpec{}, ops)
	if err != nil || !ok {
		t.Fatalf("rejected a legal FIFO history: %v %v", ok, err)
	}
}

// TestStackLIFOViolation: FIFO pops from a stack are rejected when order
// is pinned by real time.
func TestStackLIFOViolation(t *testing.T) {
	ops := []hist.Op{
		{Tid: 0, Kind: hist.OpPush, Key: 1, Ok: true, Inv: 1, Res: 2},
		{Tid: 0, Kind: hist.OpPush, Key: 2, Ok: true, Inv: 3, Res: 4},
		{Tid: 1, Kind: hist.OpPop, Ok: true, Val: 1, Inv: 5, Res: 6},
		{Tid: 1, Kind: hist.OpPop, Ok: true, Val: 2, Inv: 7, Res: 8},
	}
	ok, err := hist.Check(hist.StackSpec{}, ops)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("accepted FIFO behaviour from a stack")
	}
	ops[2].Val, ops[3].Val = 2, 1
	ok, err = hist.Check(hist.StackSpec{}, ops)
	if err != nil || !ok {
		t.Fatalf("rejected a legal LIFO history: %v %v", ok, err)
	}
}
