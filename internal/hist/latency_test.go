package hist

import (
	"testing"
	"time"
)

func TestLatencyEmpty(t *testing.T) {
	var l Latency
	if l.Percentile(0.5) != 0 || l.Count() != 0 {
		t.Fatal("empty histogram must report zero")
	}
}

func TestLatencyBucketRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{
		0, 1, 15, 16, 17, 100, 999, 1000, 12345,
		time.Microsecond, 3 * time.Microsecond, time.Millisecond, 250 * time.Millisecond, time.Second,
	} {
		b := bucketOf(d)
		m := midOf(b)
		if m > d {
			t.Errorf("bucket lower bound %v above sample %v", m, d)
		}
		// Log-bucket quantization must stay within 1/16th of the value.
		if d > 16 && m < d-d/16-1 {
			t.Errorf("bucket for %v reports %v — more than 1/16 low", d, m)
		}
		if got := bucketOf(m); got != b {
			t.Errorf("midOf(%d) = %v maps back to bucket %d", b, m, got)
		}
	}
}

func TestLatencyPercentiles(t *testing.T) {
	var l Latency
	for i := 1; i <= 1000; i++ {
		l.Record(time.Duration(i) * time.Microsecond)
	}
	p50 := l.Percentile(0.50)
	p99 := l.Percentile(0.99)
	if p50 < 450*time.Microsecond || p50 > 550*time.Microsecond {
		t.Errorf("p50 = %v, want ~500µs", p50)
	}
	if p99 < 900*time.Microsecond || p99 > 1000*time.Microsecond {
		t.Errorf("p99 = %v, want ~990µs", p99)
	}
	if l.Percentile(0) > l.Percentile(1) {
		t.Error("p0 above p100")
	}
}

func TestLatencyMerge(t *testing.T) {
	var a, b Latency
	for i := 0; i < 100; i++ {
		a.Record(time.Microsecond)
		b.Record(time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("count = %d", a.Count())
	}
	if p := a.Percentile(0.25); p > 2*time.Microsecond {
		t.Errorf("p25 = %v, want the microsecond mass", p)
	}
	if p := a.Percentile(0.90); p < 900*time.Microsecond {
		t.Errorf("p90 = %v, want the millisecond mass", p)
	}
	a.Merge(nil) // must not panic
}
