package hist

import "encoding/binary"

// State is an immutable abstract-object state used by the checker. Apply
// must return fresh states; Hash is used to memoize explored search nodes.
type State interface {
	Hash() uint64
}

// Spec is a sequential specification: a prefix-closed set of sequential
// histories, presented operationally as a transition function.
type Spec interface {
	// Name identifies the abstract data type.
	Name() string
	// Init returns the initial state (the empty object).
	Init() State
	// Apply plays op on s. It returns the successor state and whether
	// the operation's recorded result is legal in s.
	Apply(s State, op Op) (State, bool)
}

func fnv(h uint64, v uint64) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	for _, x := range b {
		h ^= uint64(x)
		h *= 1099511628211
	}
	return h
}

const fnvOffset = 14695981039346656037

// --- set ---------------------------------------------------------------------

type setState struct {
	keys []int64 // sorted ascending
	hash uint64
}

func (s *setState) Hash() uint64 { return s.hash }

func setHash(keys []int64) uint64 {
	h := uint64(fnvOffset)
	for _, k := range keys {
		h = fnv(h, uint64(k))
	}
	return fnv(h, uint64(len(keys)))
}

func (s *setState) find(key int64) int {
	lo, hi := 0, len(s.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (s *setState) contains(key int64) bool {
	i := s.find(key)
	return i < len(s.keys) && s.keys[i] == key
}

// SetSpec is the sequential specification of the integer set object of
// Section 3: insert(key) succeeds iff absent, delete(key) succeeds iff
// present, contains(key) reports presence.
type SetSpec struct{}

// Name implements Spec.
func (SetSpec) Name() string { return "set" }

// Init implements Spec.
func (SetSpec) Init() State { return &setState{hash: setHash(nil)} }

// Apply implements Spec.
func (SetSpec) Apply(st State, op Op) (State, bool) {
	s := st.(*setState)
	switch op.Kind {
	case OpInsert:
		present := s.contains(op.Key)
		if op.Ok == present {
			return nil, false
		}
		if present {
			return s, true // failed insert: no state change (op.Ok false handled above)
		}
		i := s.find(op.Key)
		keys := make([]int64, 0, len(s.keys)+1)
		keys = append(keys, s.keys[:i]...)
		keys = append(keys, op.Key)
		keys = append(keys, s.keys[i:]...)
		return &setState{keys: keys, hash: setHash(keys)}, true
	case OpDelete:
		present := s.contains(op.Key)
		if op.Ok != present {
			return nil, false
		}
		if !present {
			return s, true
		}
		i := s.find(op.Key)
		keys := make([]int64, 0, len(s.keys)-1)
		keys = append(keys, s.keys[:i]...)
		keys = append(keys, s.keys[i+1:]...)
		return &setState{keys: keys, hash: setHash(keys)}, true
	case OpContains:
		return s, op.Ok == s.contains(op.Key)
	}
	return nil, false
}

// --- queue -------------------------------------------------------------------

type seqState struct {
	vals []int64
	hash uint64
	salt uint64
}

func (s *seqState) Hash() uint64 { return s.hash }

func seqHash(vals []int64, salt uint64) uint64 {
	h := fnv(fnvOffset, salt)
	for _, v := range vals {
		h = fnv(h, uint64(v))
	}
	return fnv(h, uint64(len(vals)))
}

// QueueSpec is the sequential FIFO queue specification: dequeue returns the
// oldest enqueued value, or reports emptiness.
type QueueSpec struct{}

// Name implements Spec.
func (QueueSpec) Name() string { return "queue" }

// Init implements Spec.
func (QueueSpec) Init() State { return &seqState{salt: 'q', hash: seqHash(nil, 'q')} }

// Apply implements Spec.
func (QueueSpec) Apply(st State, op Op) (State, bool) {
	s := st.(*seqState)
	switch op.Kind {
	case OpEnqueue:
		if !op.Ok {
			return nil, false
		}
		vals := append(append(make([]int64, 0, len(s.vals)+1), s.vals...), op.Key)
		return &seqState{vals: vals, salt: s.salt, hash: seqHash(vals, s.salt)}, true
	case OpDequeue:
		if len(s.vals) == 0 {
			return s, !op.Ok
		}
		if !op.Ok || op.Val != s.vals[0] {
			return nil, false
		}
		vals := append(make([]int64, 0, len(s.vals)-1), s.vals[1:]...)
		return &seqState{vals: vals, salt: s.salt, hash: seqHash(vals, s.salt)}, true
	}
	return nil, false
}

// StackSpec is the sequential LIFO stack specification.
type StackSpec struct{}

// Name implements Spec.
func (StackSpec) Name() string { return "stack" }

// Init implements Spec.
func (StackSpec) Init() State { return &seqState{salt: 's', hash: seqHash(nil, 's')} }

// Apply implements Spec.
func (StackSpec) Apply(st State, op Op) (State, bool) {
	s := st.(*seqState)
	switch op.Kind {
	case OpPush:
		if !op.Ok {
			return nil, false
		}
		vals := append(append(make([]int64, 0, len(s.vals)+1), s.vals...), op.Key)
		return &seqState{vals: vals, salt: s.salt, hash: seqHash(vals, s.salt)}, true
	case OpPop:
		if len(s.vals) == 0 {
			return s, !op.Ok
		}
		top := s.vals[len(s.vals)-1]
		if !op.Ok || op.Val != top {
			return nil, false
		}
		vals := append(make([]int64, 0, len(s.vals)-1), s.vals[:len(s.vals)-1]...)
		return &seqState{vals: vals, salt: s.salt, hash: seqHash(vals, s.salt)}, true
	}
	return nil, false
}
