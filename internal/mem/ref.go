// Package mem provides a simulated manually-managed heap for safe memory
// reclamation (SMR) research on top of Go's garbage-collected runtime.
//
// The paper this repository reproduces (Sheffi & Petrank, "The ERA Theorem
// for Safe Memory Reclamation", PPoPP 2023) is stated in a model where
// reclaimed memory can be reused or returned to the operating system, and
// where dereferencing an invalid pointer is an unsafe access (Definition
// 4.1). Go's GC makes real use-after-free impossible, so this package
// recreates the model: nodes live in a fixed slab of slots, references are
// tagged with the slot's allocation sequence number, and every dereference
// validates the tag. A dereference through a reference whose node has been
// reclaimed since the reference was created is detected and accounted as an
// unsafe access; if the slot was returned to "system space" the access is a
// simulated segmentation fault.
//
// Nodes follow the life-cycle of Section 4.1 of the paper:
// unallocated -> local -> shared -> retired -> unallocated.
package mem

import "fmt"

// Ref is a tagged reference to a node in an Arena. It plays the role of a
// (possibly marked) pointer in the paper's model.
//
// Encoding (64 bits):
//
//	bit  0       mark bit (Harris-style logical deletion; the
//	             Natarajan-Mittal tree's edge FLAG)
//	bit  1       aux bit (a second structure-usable control bit; the
//	             Natarajan-Mittal tree's edge TAG)
//	bits 2..33   slot index + 1 (0 means nil)
//	bits 34..63  low 30 bits of the slot's allocation sequence (the tag)
//
// The zero Ref is the nil reference. The sequence tag is what makes
// use-after-free detectable: reclaiming a slot bumps its sequence number,
// so stale references disagree with the slot header and are classified
// invalid per Definition 4.1.
type Ref uint64

const (
	markBit   = 1 << 0
	auxBit    = 1 << 1
	ctrlMask  = markBit | auxBit
	slotShift = 2
	slotBits  = 32
	slotMask  = (1 << slotBits) - 1
	tagShift  = slotShift + slotBits
	tagBits   = 30
	// TagMask selects the bits of an allocation sequence number that are
	// embedded in a Ref. The free list is LIFO, so hot slots recycle
	// often; 30 bits of tag push the wraparound false-negative (an unsafe
	// access missed because the sequence wrapped exactly 2^30 times
	// between creation and dereference) beyond a billion recycles of one
	// slot — unreachable even for the longest benchmark runs. 32 slot
	// bits still address 4 billion nodes.
	TagMask = (1 << tagBits) - 1
)

// NilRef is the nil reference.
const NilRef Ref = 0

// MakeRef builds a clean (no control bits) reference to slot with the
// given allocation sequence number. Only the low 22 bits of seq are
// retained.
func MakeRef(slot int, seq uint64) Ref {
	return Ref(uint64(slot+1)<<slotShift | (seq&TagMask)<<tagShift)
}

// IsNil reports whether r is the nil reference (ignoring control bits).
func (r Ref) IsNil() bool { return uint64(r)>>slotShift&slotMask == 0 }

// Slot returns the slot index the reference points to. It must not be
// called on a nil reference.
func (r Ref) Slot() int { return int(uint64(r)>>slotShift&slotMask) - 1 }

// Tag returns the 30-bit allocation-sequence tag embedded in the reference.
func (r Ref) Tag() uint64 { return uint64(r) >> tagShift & TagMask }

// Marked reports whether the mark bit is set. Following Harris's list, a
// marked next-reference means the containing node is logically deleted;
// the Natarajan-Mittal tree uses it as the edge FLAG.
func (r Ref) Marked() bool { return uint64(r)&markBit != 0 }

// WithMark returns the reference with the mark bit set.
func (r Ref) WithMark() Ref { return r | markBit }

// WithoutMark returns the reference with the mark bit cleared. This is the
// paper's getRef().
func (r Ref) WithoutMark() Ref { return r &^ markBit }

// Aux reports whether the aux bit is set (the Natarajan-Mittal edge TAG).
func (r Ref) Aux() bool { return uint64(r)&auxBit != 0 }

// WithAux returns the reference with the aux bit set.
func (r Ref) WithAux() Ref { return r | auxBit }

// WithoutAux returns the reference with the aux bit cleared.
func (r Ref) WithoutAux() Ref { return r &^ auxBit }

// Bare returns the reference with both control bits cleared.
func (r Ref) Bare() Ref { return r &^ ctrlMask }

// SameNode reports whether r and o reference the same slot with the same
// tag, ignoring control bits.
func (r Ref) SameNode(o Ref) bool { return r.Bare() == o.Bare() }

// String formats the reference for debugging.
func (r Ref) String() string {
	suffix := ""
	if r.Marked() {
		suffix += "!m"
	}
	if r.Aux() {
		suffix += "!a"
	}
	if r.IsNil() {
		return "nil" + suffix
	}
	return fmt.Sprintf("ref(%d#%d)%s", r.Slot(), r.Tag(), suffix)
}
