package mem

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func newTestArena(slots int, mode ReclaimMode) *Arena {
	return NewArena(Config{Slots: slots, PayloadWords: 2, MetaWords: 2, Threads: 4, Mode: mode})
}

func TestAllocLifecycle(t *testing.T) {
	a := newTestArena(8, Reuse)
	r, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.StateOf(r.Slot()); got != Local {
		t.Fatalf("state after alloc: %v", got)
	}
	if !a.Valid(r) {
		t.Fatal("fresh ref must be valid")
	}
	if err := a.MarkShared(r); err != nil {
		t.Fatal(err)
	}
	if got := a.StateOf(r.Slot()); got != Shared {
		t.Fatalf("state after share: %v", got)
	}
	if err := a.Retire(0, r); err != nil {
		t.Fatal(err)
	}
	if got := a.StateOf(r.Slot()); got != Retired {
		t.Fatalf("state after retire: %v", got)
	}
	if !a.Valid(r) {
		t.Fatal("retired (not reclaimed) ref must remain valid")
	}
	if err := a.Reclaim(0, r); err != nil {
		t.Fatal(err)
	}
	if a.Valid(r) {
		t.Fatal("reclaimed ref must be invalid")
	}
	if got := a.StateOf(r.Slot()); got != Unallocated {
		t.Fatalf("state after reclaim: %v", got)
	}
}

func TestAllocZeroesPayloadPreservesMeta(t *testing.T) {
	a := newTestArena(1, Reuse)
	r, _ := a.Alloc(0)
	if err := a.Store(0, r, 0, 42); err != nil {
		t.Fatal(err)
	}
	a.MetaStore(r.Slot(), 1, 77)
	if err := a.Retire(0, r); err != nil {
		t.Fatal(err)
	}
	if err := a.Reclaim(0, r); err != nil {
		t.Fatal(err)
	}
	r2, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Slot() != r.Slot() {
		t.Fatalf("expected slot reuse, got %d then %d", r.Slot(), r2.Slot())
	}
	if v, err := a.Load(0, r2, 0); err != nil || v != 0 {
		t.Fatalf("payload not zeroed: v=%d err=%v", v, err)
	}
	if v := a.MetaLoad(r2.Slot(), 1); v != 77 {
		t.Fatalf("meta not preserved: %d", v)
	}
	if r2.Tag() == r.Tag() {
		t.Fatal("reallocation must change the tag")
	}
}

func TestUnsafeLoadAfterReclaimReuse(t *testing.T) {
	a := newTestArena(4, Reuse)
	r, _ := a.Alloc(0)
	_ = a.Store(0, r, 0, 11)
	_ = a.Retire(0, r)
	_ = a.Reclaim(0, r)

	v, err := a.Load(0, r, 0)
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("want ErrInvalid, got %v", err)
	}
	// Stale contents are still returned in Reuse mode.
	if v != 11 {
		t.Fatalf("stale read: got %d", v)
	}
	if a.Stats().UnsafeLoads() != 1 {
		t.Fatalf("unsafe loads: %d", a.Stats().UnsafeLoads())
	}
}

func TestSegfaultAfterReclaimUnmap(t *testing.T) {
	a := newTestArena(4, Unmap)
	r, _ := a.Alloc(0)
	_ = a.Retire(0, r)
	_ = a.Reclaim(0, r)
	if got := a.StateOf(r.Slot()); got != System {
		t.Fatalf("state: %v", got)
	}
	if _, err := a.Load(0, r, 0); !errors.Is(err, ErrFault) {
		t.Fatalf("want ErrFault, got %v", err)
	}
	if a.Stats().Faults() != 1 {
		t.Fatalf("faults: %d", a.Stats().Faults())
	}
	// Unmapped slots are never re-allocated: exhaust the heap.
	for i := 0; i < 3; i++ {
		r, err := a.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		_ = a.Retire(0, r)
		_ = a.Reclaim(0, r)
	}
	if _, err := a.Alloc(0); !errors.Is(err, ErrOOM) {
		t.Fatalf("want ErrOOM, got %v", err)
	}
}

func TestUnsafeStoreRefused(t *testing.T) {
	a := newTestArena(4, Reuse)
	r, _ := a.Alloc(0)
	_ = a.Store(0, r, 0, 5)
	_ = a.Retire(0, r)
	_ = a.Reclaim(0, r)
	if err := a.Store(0, r, 0, 99); !errors.Is(err, ErrInvalid) {
		t.Fatalf("want ErrInvalid, got %v", err)
	}
	// Refused: a fresh allocation of the same slot must not see 99.
	r2, _ := a.Alloc(0)
	if v, _ := a.Load(0, r2, 0); v == 99 {
		t.Fatal("unsafe store took effect")
	}
	if ok, err := a.CAS(0, r, 0, 5, 99); ok || !errors.Is(err, ErrInvalid) {
		t.Fatalf("unsafe CAS must fail: ok=%v err=%v", ok, err)
	}
	if a.Stats().UnsafeStores() != 2 {
		t.Fatalf("unsafe stores: %d", a.Stats().UnsafeStores())
	}
}

func TestDoubleRetireViolation(t *testing.T) {
	a := newTestArena(4, Reuse)
	r, _ := a.Alloc(0)
	if err := a.Retire(0, r); err != nil {
		t.Fatal(err)
	}
	if err := a.Retire(0, r); !errors.Is(err, ErrLifecycle) {
		t.Fatalf("want ErrLifecycle, got %v", err)
	}
	if a.Stats().Violations() == 0 {
		t.Fatal("violation not counted")
	}
}

func TestReclaimRequiresRetired(t *testing.T) {
	a := newTestArena(4, Reuse)
	r, _ := a.Alloc(0)
	if err := a.Reclaim(0, r); !errors.Is(err, ErrLifecycle) {
		t.Fatalf("want ErrLifecycle, got %v", err)
	}
}

func TestActiveRetiredAccounting(t *testing.T) {
	a := newTestArena(16, Reuse)
	refs := make([]Ref, 0, 10)
	for i := 0; i < 10; i++ {
		r, err := a.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	s := a.Stats()
	if s.Active() != 10 || s.MaxActive() != 10 {
		t.Fatalf("active=%d max=%d", s.Active(), s.MaxActive())
	}
	for _, r := range refs[:4] {
		_ = a.Retire(0, r)
	}
	if s.Active() != 6 || s.Retired() != 4 {
		t.Fatalf("active=%d retired=%d", s.Active(), s.Retired())
	}
	for _, r := range refs[:2] {
		_ = a.Reclaim(0, r)
	}
	if s.Retired() != 2 {
		t.Fatalf("retired=%d", s.Retired())
	}
	if s.MaxRetired() != 4 {
		t.Fatalf("maxRetired=%d", s.MaxRetired())
	}
	sn := s.Snapshot()
	if sn.Allocs != 10 || sn.Retires != 4 || sn.Reclaims != 2 {
		t.Fatalf("snapshot %+v", sn)
	}
}

func TestCASValid(t *testing.T) {
	a := newTestArena(2, Reuse)
	r, _ := a.Alloc(0)
	if ok, err := a.CAS(0, r, 1, 0, 7); !ok || err != nil {
		t.Fatalf("CAS: %v %v", ok, err)
	}
	if ok, _ := a.CAS(0, r, 1, 0, 8); ok {
		t.Fatal("CAS with wrong expected must fail")
	}
	if v, _ := a.Load(0, r, 1); v != 7 {
		t.Fatalf("v=%d", v)
	}
}

func TestOOMAndRecovery(t *testing.T) {
	a := NewArena(Config{Slots: 3, PayloadWords: 1, Threads: 1})
	refs := make([]Ref, 0, 3)
	for i := 0; i < 3; i++ {
		r, err := a.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	if _, err := a.Alloc(0); !errors.Is(err, ErrOOM) {
		t.Fatalf("want OOM, got %v", err)
	}
	_ = a.Retire(0, refs[0])
	_ = a.Reclaim(0, refs[0])
	if _, err := a.Alloc(0); err != nil {
		t.Fatalf("alloc after reclaim: %v", err)
	}
}

func TestConcurrentAllocReclaim(t *testing.T) {
	const threads, rounds = 4, 2000
	a := NewArena(Config{Slots: threads * 8, PayloadWords: 2, Threads: threads})
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				r, err := a.Alloc(tid)
				if err != nil {
					continue // transient OOM under contention is fine
				}
				if err := a.Store(tid, r, 0, uint64(tid)); err != nil {
					t.Errorf("store: %v", err)
					return
				}
				if v, err := a.Load(tid, r, 0); err != nil || v != uint64(tid) {
					t.Errorf("load: v=%d err=%v", v, err)
					return
				}
				if err := a.Retire(tid, r); err != nil {
					t.Errorf("retire: %v", err)
					return
				}
				if err := a.Reclaim(tid, r); err != nil {
					t.Errorf("reclaim: %v", err)
					return
				}
			}
		}(tid)
	}
	wg.Wait()
	s := a.Stats().Snapshot()
	if s.Violations != 0 || s.UnsafeAccesses() != 0 {
		t.Fatalf("violations=%d unsafe=%d", s.Violations, s.UnsafeAccesses())
	}
	if s.Active != 0 || s.Retired != 0 {
		t.Fatalf("leak: active=%d retired=%d", s.Active, s.Retired)
	}
	if s.Allocs != s.Reclaims {
		t.Fatalf("allocs=%d reclaims=%d", s.Allocs, s.Reclaims)
	}
}

// Property: any interleaving of alloc/retire/reclaim keeps
// active+retired+free == Slots, and reclaimed refs are invalid.
func TestQuickLifecycleConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		a := NewArena(Config{Slots: 8, PayloadWords: 1, Threads: 1})
		live := []Ref{}
		retired := []Ref{}
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if r, err := a.Alloc(0); err == nil {
					live = append(live, r)
				}
			case 1:
				if len(live) > 0 {
					r := live[len(live)-1]
					live = live[:len(live)-1]
					if a.Retire(0, r) != nil {
						return false
					}
					retired = append(retired, r)
				}
			case 2:
				if len(retired) > 0 {
					r := retired[len(retired)-1]
					retired = retired[:len(retired)-1]
					if a.Reclaim(0, r) != nil {
						return false
					}
					if a.Valid(r) {
						return false
					}
				}
			}
			s := a.Stats()
			if s.Active() != uint64(len(live)) || s.Retired() != uint64(len(retired)) {
				return false
			}
		}
		return a.Stats().Violations() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTracer(t *testing.T) {
	a := NewArena(Config{Slots: 4, PayloadWords: 1, Threads: 2, Trace: true})
	r, _ := a.Alloc(1)
	_ = a.Store(1, r, 0, 3)
	_, _ = a.Load(1, r, 0)
	a.Tracer().Annotate(1, "phase:read")
	_ = a.Retire(1, r)
	evs := a.Tracer().Events(1)
	kinds := make([]EventKind, len(evs))
	for i, e := range evs {
		kinds[i] = e.Kind
	}
	want := []EventKind{EvAlloc, EvStore, EvLoad, EvNote, EvRetire}
	if len(kinds) != len(want) {
		t.Fatalf("events: %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d: got %v want %v", i, kinds[i], want[i])
		}
	}
	if len(a.Tracer().Events(0)) != 0 {
		t.Fatal("thread 0 must have no events")
	}
	a.Tracer().Reset()
	if len(a.Tracer().Events(1)) != 0 {
		t.Fatal("reset failed")
	}
}

func TestMetaOps(t *testing.T) {
	a := newTestArena(2, Reuse)
	a.MetaStore(1, 0, 5)
	if !a.MetaCAS(1, 0, 5, 6) {
		t.Fatal("meta CAS failed")
	}
	if a.MetaCAS(1, 0, 5, 7) {
		t.Fatal("meta CAS with stale expected succeeded")
	}
	if v := a.MetaAdd(1, 0, 4); v != 10 {
		t.Fatalf("meta add: %d", v)
	}
}
