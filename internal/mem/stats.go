package mem

import "sync/atomic"

// Stats holds the arena's accounting counters. The counters are the raw
// material for the paper's property monitors: active and retired node
// counts drive the robustness bound of Definitions 5.1–5.2, and the unsafe
// access counters drive the safety check of Definitions 4.1–4.2.
//
// Counters are padded to separate cache lines: they are on the allocation
// and retirement hot paths of every benchmark.
type Stats struct {
	allocs       atomic.Uint64
	_            pad
	reclaims     atomic.Uint64
	_            pad
	retires      atomic.Uint64
	_            pad
	active       atomic.Uint64 // allocated and not yet retired
	_            pad
	retired      atomic.Uint64 // retired and not yet reclaimed
	_            pad
	maxActive    atomic.Uint64
	maxRetired   atomic.Uint64
	_            pad
	unsafeLoads  atomic.Uint64
	unsafeStores atomic.Uint64
	faults       atomic.Uint64
	violations   atomic.Uint64
	oom          atomic.Uint64
}

func (s *Stats) bumpMaxActive(v uint64) {
	for {
		m := s.maxActive.Load()
		if v <= m || s.maxActive.CompareAndSwap(m, v) {
			return
		}
	}
}

func (s *Stats) bumpMaxRetired(v uint64) {
	for {
		m := s.maxRetired.Load()
		if v <= m || s.maxRetired.CompareAndSwap(m, v) {
			return
		}
	}
}

// Active returns the current number of active (allocated, not retired)
// nodes — the paper's active_E(i).
func (s *Stats) Active() uint64 { return s.active.Load() }

// Allocs returns the total number of allocations.
func (s *Stats) Allocs() uint64 { return s.allocs.Load() }

// Reclaims returns the total number of reclamations.
func (s *Stats) Reclaims() uint64 { return s.reclaims.Load() }

// Retires returns the total number of retirements.
func (s *Stats) Retires() uint64 { return s.retires.Load() }

// Retired returns the current number of retired-but-not-reclaimed nodes,
// the quantity bounded by the robustness definitions.
func (s *Stats) Retired() uint64 { return s.retired.Load() }

// MaxActive returns the historical maximum of Active — the paper's
// max_active_E(i).
func (s *Stats) MaxActive() uint64 { return s.maxActive.Load() }

// MaxRetired returns the historical maximum of Retired.
func (s *Stats) MaxRetired() uint64 { return s.maxRetired.Load() }

// UnsafeLoads returns the number of loads through invalid references.
func (s *Stats) UnsafeLoads() uint64 { return s.unsafeLoads.Load() }

// UnsafeStores returns the number of refused stores/CASes through invalid
// references.
func (s *Stats) UnsafeStores() uint64 { return s.unsafeStores.Load() }

// Faults returns the number of simulated segmentation faults (accesses to
// system space).
func (s *Stats) Faults() uint64 { return s.faults.Load() }

// Violations returns the number of life-cycle violations (double retire,
// retire of unallocated memory, ...).
func (s *Stats) Violations() uint64 { return s.violations.Load() }

// OOMs returns the number of failed allocations due to heap exhaustion.
func (s *Stats) OOMs() uint64 { return s.oom.Load() }

// Snapshot is a consistent-enough copy of all counters for reporting.
type Snapshot struct {
	Allocs, Reclaims, Retires uint64
	Active, Retired           uint64
	MaxActive, MaxRetired     uint64
	UnsafeLoads, UnsafeStores uint64
	Faults, Violations, OOMs  uint64
}

// Snapshot copies every counter. Individual counters are atomic; the
// snapshot as a whole is not taken atomically, which is fine for the
// monitors (they evaluate bounds, not exact invariants, while threads run,
// and exact values once threads are quiescent).
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Allocs:       s.allocs.Load(),
		Reclaims:     s.reclaims.Load(),
		Retires:      s.retires.Load(),
		Active:       s.active.Load(),
		Retired:      s.retired.Load(),
		MaxActive:    s.maxActive.Load(),
		MaxRetired:   s.maxRetired.Load(),
		UnsafeLoads:  s.unsafeLoads.Load(),
		UnsafeStores: s.unsafeStores.Load(),
		Faults:       s.faults.Load(),
		Violations:   s.violations.Load(),
		OOMs:         s.oom.Load(),
	}
}

// UnsafeAccesses returns the total number of unsafe accesses (loads,
// refused stores, faults) in the snapshot.
func (sn Snapshot) UnsafeAccesses() uint64 {
	return sn.UnsafeLoads + sn.UnsafeStores + sn.Faults
}
