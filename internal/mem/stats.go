package mem

import "sync/atomic"

// statStripe holds one thread's share of the event counters. Eight words
// fill exactly one cache line; the trailing pad keeps neighbouring stripes
// (and the adjacent-line prefetcher) from sharing.
type statStripe struct {
	allocs       atomic.Uint64
	reclaims     atomic.Uint64
	retires      atomic.Uint64
	unsafeLoads  atomic.Uint64
	unsafeStores atomic.Uint64
	faults       atomic.Uint64
	violations   atomic.Uint64
	oom          atomic.Uint64
	_            [64]byte
}

// Stats holds the arena's accounting counters. The counters are the raw
// material for the paper's property monitors: active and retired node
// counts drive the robustness bound of Definitions 5.1–5.2, and the unsafe
// access counters drive the safety check of Definitions 4.1–4.2.
//
// The counters come in two kinds with different scalability treatments:
//
//   - Monotonic event counts (allocs, retires, reclaims, unsafe accesses,
//     faults, violations, OOMs) are striped per thread and aggregated on
//     read. They sit on the hot path of every benchmark operation, and a
//     striped add never contends; the aggregate is exact whenever the
//     readers care (at quiescence, and within the usual snapshot slack
//     while threads run).
//   - Level gauges and their watermarks (active/maxActive,
//     retired/maxRetired) stay global. The watermarks are the monitors'
//     primary observable — max_active_E and the retired backlog peak of
//     Definitions 5.1–5.2 — and must be exact even mid-execution, which a
//     striped gauge cannot provide. They cost one uncontended load plus a
//     rare CAS once the maximum stabilizes.
type Stats struct {
	stripes []statStripe
	// The pad keeps the read-mostly slice header off the gauges' cache
	// lines: every striped add loads the header, every gauge update would
	// otherwise invalidate it.
	_ pad

	active     atomic.Uint64 // allocated and not yet retired
	_          pad
	retired    atomic.Uint64 // retired and not yet reclaimed
	_          pad
	maxActive  atomic.Uint64
	_          pad
	maxRetired atomic.Uint64
	_          pad
}

// init sizes the per-thread stripes. Called once by NewArena.
func (s *Stats) init(threads int) {
	if threads <= 0 {
		threads = 1
	}
	s.stripes = make([]statStripe, threads)
}

// stripe returns thread tid's counter stripe. Counters recorded outside
// any thread context (life-cycle checks without a tid) use stripe 0.
func (s *Stats) stripe(tid int) *statStripe {
	if tid < 0 || tid >= len(s.stripes) {
		tid = 0
	}
	return &s.stripes[tid]
}

func (s *Stats) sum(f func(*statStripe) *atomic.Uint64) uint64 {
	var v uint64
	for i := range s.stripes {
		v += f(&s.stripes[i]).Load()
	}
	return v
}

func (s *Stats) bumpMaxActive(v uint64) {
	for {
		m := s.maxActive.Load()
		if v <= m || s.maxActive.CompareAndSwap(m, v) {
			return
		}
	}
}

func (s *Stats) bumpMaxRetired(v uint64) {
	for {
		m := s.maxRetired.Load()
		if v <= m || s.maxRetired.CompareAndSwap(m, v) {
			return
		}
	}
}

// Active returns the current number of active (allocated, not retired)
// nodes — the paper's active_E(i).
func (s *Stats) Active() uint64 { return s.active.Load() }

// Allocs returns the total number of allocations.
func (s *Stats) Allocs() uint64 {
	return s.sum(func(t *statStripe) *atomic.Uint64 { return &t.allocs })
}

// Reclaims returns the total number of reclamations.
func (s *Stats) Reclaims() uint64 {
	return s.sum(func(t *statStripe) *atomic.Uint64 { return &t.reclaims })
}

// Retires returns the total number of retirements.
func (s *Stats) Retires() uint64 {
	return s.sum(func(t *statStripe) *atomic.Uint64 { return &t.retires })
}

// Retired returns the current number of retired-but-not-reclaimed nodes,
// the quantity bounded by the robustness definitions.
func (s *Stats) Retired() uint64 { return s.retired.Load() }

// MaxActive returns the historical maximum of Active — the paper's
// max_active_E(i).
func (s *Stats) MaxActive() uint64 { return s.maxActive.Load() }

// MaxRetired returns the historical maximum of Retired.
func (s *Stats) MaxRetired() uint64 { return s.maxRetired.Load() }

// UnsafeLoads returns the number of loads through invalid references.
func (s *Stats) UnsafeLoads() uint64 {
	return s.sum(func(t *statStripe) *atomic.Uint64 { return &t.unsafeLoads })
}

// UnsafeStores returns the number of refused stores/CASes through invalid
// references.
func (s *Stats) UnsafeStores() uint64 {
	return s.sum(func(t *statStripe) *atomic.Uint64 { return &t.unsafeStores })
}

// Faults returns the number of simulated segmentation faults (accesses to
// system space).
func (s *Stats) Faults() uint64 {
	return s.sum(func(t *statStripe) *atomic.Uint64 { return &t.faults })
}

// Violations returns the number of life-cycle violations (double retire,
// retire of unallocated memory, ...).
func (s *Stats) Violations() uint64 {
	return s.sum(func(t *statStripe) *atomic.Uint64 { return &t.violations })
}

// OOMs returns the number of failed allocations due to heap exhaustion.
func (s *Stats) OOMs() uint64 { return s.sum(func(t *statStripe) *atomic.Uint64 { return &t.oom }) }

// Snapshot is a consistent-enough copy of all counters for reporting.
type Snapshot struct {
	Allocs, Reclaims, Retires uint64
	Active, Retired           uint64
	MaxActive, MaxRetired     uint64
	UnsafeLoads, UnsafeStores uint64
	Faults, Violations, OOMs  uint64
}

// Snapshot copies every counter. Individual counters are atomic; the
// snapshot as a whole is not taken atomically, which is fine for the
// monitors (they evaluate bounds, not exact invariants, while threads run,
// and exact values once threads are quiescent).
func (s *Stats) Snapshot() Snapshot {
	sn := Snapshot{
		Active:     s.active.Load(),
		Retired:    s.retired.Load(),
		MaxActive:  s.maxActive.Load(),
		MaxRetired: s.maxRetired.Load(),
	}
	for i := range s.stripes {
		t := &s.stripes[i]
		sn.Allocs += t.allocs.Load()
		sn.Reclaims += t.reclaims.Load()
		sn.Retires += t.retires.Load()
		sn.UnsafeLoads += t.unsafeLoads.Load()
		sn.UnsafeStores += t.unsafeStores.Load()
		sn.Faults += t.faults.Load()
		sn.Violations += t.violations.Load()
		sn.OOMs += t.oom.Load()
	}
	return sn
}

// UnsafeAccesses returns the total number of unsafe accesses (loads,
// refused stores, faults) in the snapshot.
func (sn Snapshot) UnsafeAccesses() uint64 {
	return sn.UnsafeLoads + sn.UnsafeStores + sn.Faults
}
