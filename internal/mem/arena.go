package mem

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// State is a node's position in the life-cycle of Section 4.1 of the paper.
type State uint8

// Life-cycle states. System is not a paper life-cycle state: it models a
// slot whose memory was returned to the operating system ("system space",
// Section 4.2); any access to it is a simulated segmentation fault.
const (
	Unallocated State = iota
	Local
	Shared
	Retired
	System
)

// String returns the lower-case state name.
func (s State) String() string {
	switch s {
	case Unallocated:
		return "unallocated"
	case Local:
		return "local"
	case Shared:
		return "shared"
	case Retired:
		return "retired"
	case System:
		return "system"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// ReclaimMode selects what happens to a slot when it is reclaimed.
type ReclaimMode uint8

const (
	// Reuse keeps reclaimed slots in program space for re-allocation.
	// Stale reads through invalid references return whatever currently
	// occupies the slot (they are still accounted as unsafe accesses).
	Reuse ReclaimMode = iota
	// Unmap returns reclaimed slots to system space. Any subsequent
	// access through an invalid reference is a simulated segmentation
	// fault, and the slot is never re-allocated.
	Unmap
)

// Errors reported by Arena accesses. ErrInvalid and ErrFault are the two
// faces of an unsafe access (Definition 4.1): the first is a stale access
// to program space, the second an access to system space.
var (
	ErrInvalid   = errors.New("mem: unsafe access through invalid reference")
	ErrFault     = errors.New("mem: segmentation fault (access to system space)")
	ErrOOM       = errors.New("mem: out of memory (no free slots)")
	ErrLifecycle = errors.New("mem: node life-cycle violation")
)

// Config configures an Arena.
type Config struct {
	// Slots is the total number of node slots (the heap size).
	Slots int
	// PayloadWords is the number of 64-bit data words per node. The data
	// structure owns these words (key, links, values).
	PayloadWords int
	// MetaWords is the number of 64-bit scheme-private words per node
	// (birth era, retire era, version, reference count, ...). These model
	// the fields an SMR scheme may add to the node layout (Definition
	// 5.3, Condition 5); they are not part of node memory and survive
	// reclamation.
	MetaWords int
	// Threads is the number of executing threads (per-thread free caches).
	Threads int
	// Mode selects reclamation into program space (Reuse) or system
	// space (Unmap).
	Mode ReclaimMode
	// Trace enables per-thread access tracing (used by the access-aware
	// verifier). Off by default; it allocates on every access.
	Trace bool
	// CacheSize is the per-thread free-slot cache capacity (default 32).
	CacheSize int
}

const hdrStateBits = 3

// pad keeps hot atomics on separate cache lines.
type pad [56]byte

type threadCache struct {
	slots []int
	_     pad
}

// freeStripe is one shard of the free list. Each thread owns one stripe
// (its home for pushes and the first stop for pops) and steals from the
// others only when its own runs dry, so free-list traffic stays
// thread-local until the heap is nearly exhausted.
type freeStripe struct {
	head atomic.Uint64 // stamp<<32 | (slot+1); 0 means empty
	// Pad to 128 bytes so neighbouring stripes don't share an
	// adjacent-line prefetch pair (the head CAS is the hottest shared
	// word the sharding exists to de-contend).
	_ [120]byte
}

// Arena is the simulated manually-managed heap: a fixed slab of node slots
// with explicit allocation, retirement and reclamation, and validity
// checking on every access.
//
// Each slot has a header word packing (sequence number << 3 | state). The
// sequence number increments exactly when the slot is reclaimed, so a Ref
// whose tag disagrees with the header is invalid in the sense of
// Definition 4.1 — the node it referenced was unallocated at some point
// after the reference was created.
type Arena struct {
	cfg  Config
	hdr  []atomic.Uint64 // per-slot: seq<<3 | state
	data []atomic.Uint64 // Slots * PayloadWords
	meta []atomic.Uint64 // Slots * MetaWords

	free     []freeStripe // per-thread-striped free-list heads
	freeNext []atomic.Uint32
	caches   []threadCache

	stats  Stats
	tracer *Tracer
}

// NewArena builds an arena per cfg. All slots start unallocated and free.
func NewArena(cfg Config) *Arena {
	if cfg.Slots <= 0 {
		panic("mem: Config.Slots must be positive")
	}
	if cfg.Slots >= slotMask {
		panic("mem: Config.Slots exceeds Ref slot capacity")
	}
	if cfg.PayloadWords <= 0 {
		panic("mem: Config.PayloadWords must be positive")
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 32
	}
	a := &Arena{
		cfg:      cfg,
		hdr:      make([]atomic.Uint64, cfg.Slots),
		data:     make([]atomic.Uint64, cfg.Slots*cfg.PayloadWords),
		free:     make([]freeStripe, cfg.Threads),
		freeNext: make([]atomic.Uint32, cfg.Slots),
		caches:   make([]threadCache, cfg.Threads),
	}
	a.stats.init(cfg.Threads)
	if cfg.MetaWords > 0 {
		a.meta = make([]atomic.Uint64, cfg.Slots*cfg.MetaWords)
	}
	if cfg.Trace {
		a.tracer = NewTracer(cfg.Threads)
	}
	// Partition the slots into one contiguous block per stripe and chain
	// each block: slot i -> slot i+1 within the block.
	stripes := len(a.free)
	per := cfg.Slots / stripes
	for k := 0; k < stripes; k++ {
		lo := k * per
		hi := lo + per
		if k == stripes-1 {
			hi = cfg.Slots
		}
		if lo >= hi {
			continue
		}
		for i := lo; i < hi-1; i++ {
			a.freeNext[i].Store(uint32(i + 2))
		}
		a.free[k].head.Store(uint64(lo + 1)) // stamp 0, head slot lo
	}
	return a
}

// Config returns the configuration the arena was built with.
func (a *Arena) Config() Config { return a.cfg }

// Tracer returns the access tracer, or nil when tracing is disabled.
func (a *Arena) Tracer() *Tracer { return a.tracer }

// Stats returns the arena's statistics counters.
func (a *Arena) Stats() *Stats { return &a.stats }

func packHdr(seq uint64, st State) uint64 { return seq<<hdrStateBits | uint64(st) }
func unpackHdr(h uint64) (seq uint64, st State) {
	return h >> hdrStateBits, State(h & (1<<hdrStateBits - 1))
}

// SeqOf returns the current allocation sequence number of slot.
func (a *Arena) SeqOf(slot int) uint64 { seq, _ := unpackHdr(a.hdr[slot].Load()); return seq }

// StateOf returns the current life-cycle state of slot.
func (a *Arena) StateOf(slot int) State { _, st := unpackHdr(a.hdr[slot].Load()); return st }

// Valid reports whether r is currently a valid reference per Definition
// 4.1: the node has not been reclaimed since the reference was created.
func (a *Arena) Valid(r Ref) bool {
	if r.IsNil() {
		return false
	}
	seq, st := unpackHdr(a.hdr[r.Slot()].Load())
	return seq&TagMask == r.Tag() && st != Unallocated && st != System
}

// --- free-list management -------------------------------------------------

func (a *Arena) pushFreeStripe(k, slot int) {
	h := &a.free[k].head
	for {
		old := h.Load()
		a.freeNext[slot].Store(uint32(old))
		stamp := old>>32 + 1
		if h.CompareAndSwap(old, stamp<<32|uint64(slot+1)) {
			return
		}
	}
}

func (a *Arena) popFreeStripe(k int) (int, bool) {
	h := &a.free[k].head
	for {
		old := h.Load()
		head := uint32(old)
		if head == 0 {
			return 0, false
		}
		next := a.freeNext[head-1].Load()
		stamp := old>>32 + 1
		if h.CompareAndSwap(old, stamp<<32|uint64(next)) {
			return int(head - 1), true
		}
	}
}

// pushFree returns slot to thread tid's home stripe.
func (a *Arena) pushFree(tid, slot int) {
	a.pushFreeStripe(tid%len(a.free), slot)
}

// popFree takes a free slot for thread tid: from its home stripe when
// possible, stealing round-robin from the other stripes when the home is
// empty. The all-stripes-empty check is not linearizable (a slot can cycle
// onto an already-scanned stripe mid-scan), so a failed scan retries once
// before declaring exhaustion; a genuinely empty heap still fails fast,
// and residual spurious failures match the transient-exhaustion semantics
// the per-thread caches already give the heap (a free slot parked in
// another thread's cache has never been visible here).
func (a *Arena) popFree(tid int) (int, bool) {
	n := len(a.free)
	home := tid % n
	for round := 0; round < 2; round++ {
		for i := 0; i < n; i++ {
			if slot, ok := a.popFreeStripe((home + i) % n); ok {
				return slot, true
			}
		}
	}
	return 0, false
}

// --- life-cycle operations --------------------------------------------------

// Alloc allocates a fresh node for thread tid and returns a valid reference
// to it. The node starts Local with zeroed payload words. Scheme metadata
// words are preserved across reallocation (type preservation, as required
// by optimistic schemes such as VBR). Alloc fails with ErrOOM when the heap
// is exhausted — which is itself a meaningful experimental outcome for
// non-robust schemes.
func (a *Arena) Alloc(tid int) (Ref, error) {
	c := &a.caches[tid]
	var slot int
	if n := len(c.slots); n > 0 {
		slot = c.slots[n-1]
		c.slots = c.slots[:n-1]
	} else {
		s, ok := a.popFree(tid)
		if !ok {
			a.stats.stripe(tid).oom.Add(1)
			return NilRef, ErrOOM
		}
		slot = s
	}
	h := a.hdr[slot].Load()
	seq, st := unpackHdr(h)
	if st != Unallocated {
		a.stats.stripe(tid).violations.Add(1)
		return NilRef, fmt.Errorf("%w: allocating slot %d in state %v", ErrLifecycle, slot, st)
	}
	// Zero payload words before publishing the node.
	base := slot * a.cfg.PayloadWords
	for w := 0; w < a.cfg.PayloadWords; w++ {
		a.data[base+w].Store(0)
	}
	a.hdr[slot].Store(packHdr(seq, Local))
	a.stats.stripe(tid).allocs.Add(1)
	act := a.stats.active.Add(1)
	a.stats.bumpMaxActive(act)
	r := MakeRef(slot, seq)
	if a.tracer != nil {
		a.tracer.record(tid, TraceEvent{Kind: EvAlloc, Slot: slot, Ref: r})
	}
	return r, nil
}

// MarkShared transitions a Local node to Shared. It is called by the data
// structure when the node is about to become reachable. Idempotent for
// already-Shared nodes.
func (a *Arena) MarkShared(r Ref) error {
	slot := r.Slot()
	for {
		h := a.hdr[slot].Load()
		seq, st := unpackHdr(h)
		if seq&TagMask != r.Tag() {
			a.stats.stripe(0).violations.Add(1)
			return fmt.Errorf("%w: sharing through invalid reference %v", ErrLifecycle, r)
		}
		switch st {
		case Shared:
			return nil
		case Local:
			if a.hdr[slot].CompareAndSwap(h, packHdr(seq, Shared)) {
				return nil
			}
		default:
			a.stats.stripe(0).violations.Add(1)
			return fmt.Errorf("%w: sharing node in state %v", ErrLifecycle, st)
		}
	}
}

// Retire transitions an active (Local or Shared) node to Retired,
// announcing it is a candidate for reclamation. Double retirement is a
// life-cycle violation (Section 4.1: a node cannot be retired again).
func (a *Arena) Retire(tid int, r Ref) error {
	slot := r.Slot()
	for {
		h := a.hdr[slot].Load()
		seq, st := unpackHdr(h)
		if seq&TagMask != r.Tag() {
			a.stats.stripe(tid).violations.Add(1)
			return fmt.Errorf("%w: retiring through invalid reference %v", ErrLifecycle, r)
		}
		if st != Local && st != Shared {
			a.stats.stripe(tid).violations.Add(1)
			return fmt.Errorf("%w: retiring node in state %v", ErrLifecycle, st)
		}
		if a.hdr[slot].CompareAndSwap(h, packHdr(seq, Retired)) {
			a.stats.stripe(tid).retires.Add(1)
			a.stats.active.Add(^uint64(0))
			ret := a.stats.retired.Add(1)
			a.stats.bumpMaxRetired(ret)
			if a.tracer != nil {
				a.tracer.record(tid, TraceEvent{Kind: EvRetire, Slot: slot, Ref: r})
			}
			return nil
		}
	}
}

// Reclaim makes a Retired node's memory available again. In Reuse mode the
// slot returns to the free list (program space); in Unmap mode it moves to
// system space and is never re-allocated. Reclaiming bumps the slot's
// sequence number, invalidating all outstanding references to the node.
func (a *Arena) Reclaim(tid int, r Ref) error {
	slot := r.Slot()
	for {
		h := a.hdr[slot].Load()
		seq, st := unpackHdr(h)
		if seq&TagMask != r.Tag() {
			a.stats.stripe(tid).violations.Add(1)
			return fmt.Errorf("%w: reclaiming through invalid reference %v", ErrLifecycle, r)
		}
		if st != Retired {
			a.stats.stripe(tid).violations.Add(1)
			return fmt.Errorf("%w: reclaiming node in state %v", ErrLifecycle, st)
		}
		next := Unallocated
		if a.cfg.Mode == Unmap {
			next = System
		}
		if a.hdr[slot].CompareAndSwap(h, packHdr(seq+1, next)) {
			a.stats.stripe(tid).reclaims.Add(1)
			a.stats.retired.Add(^uint64(0))
			if a.tracer != nil {
				a.tracer.record(tid, TraceEvent{Kind: EvReclaim, Slot: slot, Ref: r})
			}
			if a.cfg.Mode == Reuse {
				c := &a.caches[tid]
				if len(c.slots) < a.cfg.CacheSize {
					c.slots = append(c.slots, slot)
				} else {
					a.pushFree(tid, slot)
				}
			}
			return nil
		}
	}
}

// --- payload access ---------------------------------------------------------

func (a *Arena) check(r Ref) error {
	if r.IsNil() {
		return fmt.Errorf("%w: nil dereference", ErrFault)
	}
	seq, st := unpackHdr(a.hdr[r.Slot()].Load())
	if st == System {
		return ErrFault
	}
	if seq&TagMask != r.Tag() || st == Unallocated {
		return ErrInvalid
	}
	return nil
}

// Load reads payload word w of the node referenced by r (the mark bit of r
// is ignored). If r is invalid the access is recorded as unsafe: in Reuse
// mode the (stale) current contents are still returned together with
// ErrInvalid — optimistic schemes read reclaimed memory and discard the
// value — while accesses to system space return ErrFault and no data.
func (a *Arena) Load(tid int, r Ref, w int) (uint64, error) {
	err := a.check(r)
	if err != nil {
		if errors.Is(err, ErrFault) {
			a.stats.stripe(tid).faults.Add(1)
			a.trace(tid, EvLoad, r, w, 0, true)
			return 0, err
		}
		a.stats.stripe(tid).unsafeLoads.Add(1)
		v := a.data[r.Slot()*a.cfg.PayloadWords+w].Load()
		a.trace(tid, EvLoad, r, w, v, true)
		return v, err
	}
	v := a.data[r.Slot()*a.cfg.PayloadWords+w].Load()
	a.trace(tid, EvLoad, r, w, v, false)
	return v, nil
}

// Store writes payload word w of the node referenced by r. Unsafe stores
// are refused (Definition 4.2, Condition 2: an SMR may never modify a
// node's content through an invalid pointer) and accounted.
func (a *Arena) Store(tid int, r Ref, w int, v uint64) error {
	if err := a.check(r); err != nil {
		if errors.Is(err, ErrFault) {
			a.stats.stripe(tid).faults.Add(1)
		} else {
			a.stats.stripe(tid).unsafeStores.Add(1)
		}
		a.trace(tid, EvStore, r, w, v, true)
		return err
	}
	a.data[r.Slot()*a.cfg.PayloadWords+w].Store(v)
	a.trace(tid, EvStore, r, w, v, false)
	return nil
}

// CAS atomically compares-and-swaps payload word w of the node referenced
// by r. Unsafe CASes are refused and fail, modelling VBR's guarantee that
// updates through invalid pointers never take effect (real VBR obtains
// this from a hardware wide-CAS that covers the version word; we obtain it
// by validating the reference around the CAS and compensating if the node
// was reclaimed concurrently — see DESIGN.md, simulation limitations).
func (a *Arena) CAS(tid int, r Ref, w int, old, new uint64) (bool, error) {
	if err := a.check(r); err != nil {
		if errors.Is(err, ErrFault) {
			a.stats.stripe(tid).faults.Add(1)
		} else {
			a.stats.stripe(tid).unsafeStores.Add(1)
		}
		a.trace(tid, EvCAS, r, w, new, true)
		return false, err
	}
	ok := a.data[r.Slot()*a.cfg.PayloadWords+w].CompareAndSwap(old, new)
	if err := a.check(r); err != nil {
		// The node was reclaimed between the validity check and now. The
		// CAS must appear to have failed; if it took effect on recycled
		// memory, undo it (the undo can only fail if another thread has
		// already overwritten the word, in which case it observed a value
		// we are no longer responsible for).
		if ok {
			a.data[r.Slot()*a.cfg.PayloadWords+w].CompareAndSwap(new, old)
		}
		if errors.Is(err, ErrFault) {
			a.stats.stripe(tid).faults.Add(1)
		} else {
			a.stats.stripe(tid).unsafeStores.Add(1)
		}
		a.trace(tid, EvCAS, r, w, new, true)
		return false, err
	}
	a.trace(tid, EvCAS, r, w, new, false)
	return ok, nil
}

func (a *Arena) trace(tid int, k EventKind, r Ref, w int, v uint64, unsafe bool) {
	if a.tracer != nil {
		a.tracer.record(tid, TraceEvent{Kind: k, Slot: r.Slot(), Ref: r, Word: w, Value: v, Unsafe: unsafe})
	}
}

// --- scheme metadata access ---------------------------------------------------
//
// Metadata words belong to the SMR scheme runtime, not to node memory: they
// model the fields a scheme adds to the layout (Definition 5.3, Condition
// 5). They are addressed by slot, never validated, and survive reclamation
// (type preservation).

// MetaLoad reads scheme word w of slot.
func (a *Arena) MetaLoad(slot, w int) uint64 { return a.meta[slot*a.cfg.MetaWords+w].Load() }

// MetaStore writes scheme word w of slot.
func (a *Arena) MetaStore(slot, w int, v uint64) { a.meta[slot*a.cfg.MetaWords+w].Store(v) }

// MetaCAS compares-and-swaps scheme word w of slot.
func (a *Arena) MetaCAS(slot, w int, old, new uint64) bool {
	return a.meta[slot*a.cfg.MetaWords+w].CompareAndSwap(old, new)
}

// MetaAdd atomically adds delta to scheme word w of slot and returns the
// new value.
func (a *Arena) MetaAdd(slot, w int, delta uint64) uint64 {
	return a.meta[slot*a.cfg.MetaWords+w].Add(delta)
}
