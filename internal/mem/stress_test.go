package mem

import (
	"sync"
	"testing"
)

// TestConcurrentLifecycleAccounting hammers the arena from several
// goroutines and checks the conservation law: every allocation is exactly
// one of {active, retired, reclaimed} at the end, with no life-cycle
// violations.
func TestConcurrentLifecycleAccounting(t *testing.T) {
	const (
		threads = 8
		perT    = 20000
	)
	a := NewArena(Config{Slots: 1 << 10, PayloadWords: 2, Threads: threads, Mode: Reuse})
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			var live []Ref
			for i := 0; i < perT; i++ {
				if len(live) < 16 {
					r, err := a.Alloc(tid)
					if err != nil {
						continue // transient OOM under contention is fine
					}
					if err := a.Store(tid, r, 0, uint64(i)); err != nil {
						t.Errorf("store on fresh node: %v", err)
						return
					}
					live = append(live, r)
					continue
				}
				r := live[0]
				live = live[1:]
				if err := a.Retire(tid, r); err != nil {
					t.Errorf("retire: %v", err)
					return
				}
				if err := a.Reclaim(tid, r); err != nil {
					t.Errorf("reclaim: %v", err)
					return
				}
			}
			for _, r := range live {
				if err := a.Retire(tid, r); err != nil {
					t.Errorf("final retire: %v", err)
				}
			}
		}(tid)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	sn := a.Stats().Snapshot()
	if sn.Violations != 0 {
		t.Fatalf("%d life-cycle violations", sn.Violations)
	}
	if sn.Allocs != sn.Reclaims+sn.Active+sn.Retired {
		t.Fatalf("conservation broken: allocs %d != reclaims %d + active %d + retired %d",
			sn.Allocs, sn.Reclaims, sn.Active, sn.Retired)
	}
	if sn.Active != 0 {
		t.Fatalf("active = %d after retiring everything", sn.Active)
	}
}

// TestConcurrentTagInvalidation: references taken before a reclaim are
// invalid after it, even while other threads churn the same slots.
func TestConcurrentTagInvalidation(t *testing.T) {
	a := NewArena(Config{Slots: 8, PayloadWords: 1, Threads: 2, Mode: Reuse})
	var stale []Ref
	for round := 0; round < 2000; round++ {
		r, err := a.Alloc(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Retire(0, r); err != nil {
			t.Fatal(err)
		}
		if err := a.Reclaim(0, r); err != nil {
			t.Fatal(err)
		}
		stale = append(stale, r)
		if len(stale) > 64 {
			stale = stale[1:]
		}
		for _, s := range stale {
			if a.Valid(s) {
				t.Fatalf("round %d: stale reference %v still valid", round, s)
			}
		}
	}
	if a.Stats().UnsafeLoads() != 0 {
		t.Fatal("Valid() must not count as an access")
	}
}

// TestUnmapModeShrinksHeap: system-space slots never return.
func TestUnmapModeShrinksHeap(t *testing.T) {
	const slots = 64
	a := NewArena(Config{Slots: slots, PayloadWords: 1, Threads: 1, Mode: Unmap})
	for i := 0; i < slots; i++ {
		r, err := a.Alloc(0)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if err := a.Retire(0, r); err != nil {
			t.Fatal(err)
		}
		if err := a.Reclaim(0, r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("allocation succeeded after the whole heap moved to system space")
	}
}
