package mem

import (
	"testing"
	"testing/quick"
)

func TestNilRef(t *testing.T) {
	if !NilRef.IsNil() {
		t.Fatal("NilRef must be nil")
	}
	if NilRef.Marked() {
		t.Fatal("NilRef must be unmarked")
	}
	if !NilRef.WithMark().IsNil() {
		t.Fatal("marked nil must still be nil")
	}
	if !NilRef.WithMark().Marked() {
		t.Fatal("marked nil must be marked")
	}
}

func TestMakeRefRoundTrip(t *testing.T) {
	cases := []struct {
		slot int
		seq  uint64
	}{
		{0, 0}, {1, 1}, {7, 12345}, {1 << 20, 1 << 40}, {slotMask - 2, TagMask},
	}
	for _, c := range cases {
		r := MakeRef(c.slot, c.seq)
		if r.IsNil() {
			t.Fatalf("MakeRef(%d,%d) is nil", c.slot, c.seq)
		}
		if r.Slot() != c.slot {
			t.Fatalf("slot: got %d want %d", r.Slot(), c.slot)
		}
		if r.Tag() != c.seq&TagMask {
			t.Fatalf("tag: got %d want %d", r.Tag(), c.seq&TagMask)
		}
		if r.Marked() {
			t.Fatalf("fresh ref marked: %v", r)
		}
	}
}

func TestMarkRoundTrip(t *testing.T) {
	f := func(slot uint32, seq uint64) bool {
		r := MakeRef(int(slot)%1024, seq)
		m := r.WithMark()
		return m.Marked() &&
			!m.WithoutMark().Marked() &&
			m.WithoutMark() == r &&
			m.Slot() == r.Slot() &&
			m.Tag() == r.Tag() &&
			m.SameNode(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAuxRoundTrip(t *testing.T) {
	f := func(slot uint32, seq uint64) bool {
		r := MakeRef(int(slot)%1024, seq)
		a := r.WithAux()
		both := r.WithMark().WithAux()
		return a.Aux() &&
			!a.Marked() &&
			!a.WithoutAux().Aux() &&
			a.WithoutAux() == r &&
			a.Slot() == r.Slot() &&
			a.Tag() == r.Tag() &&
			both.Marked() && both.Aux() &&
			both.Bare() == r &&
			both.SameNode(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAuxString(t *testing.T) {
	r := MakeRef(3, 2)
	if got := r.WithAux().String(); got != "ref(3#2)!a" {
		t.Fatalf("got %q", got)
	}
	if got := r.WithMark().WithAux().String(); got != "ref(3#2)!m!a" {
		t.Fatalf("got %q", got)
	}
}

func TestSameNodeIgnoresMark(t *testing.T) {
	a := MakeRef(5, 9)
	if !a.SameNode(a.WithMark()) {
		t.Fatal("SameNode must ignore mark bits")
	}
	b := MakeRef(5, 10)
	if a.SameNode(b) {
		t.Fatal("different tags are different nodes")
	}
	c := MakeRef(6, 9)
	if a.SameNode(c) {
		t.Fatal("different slots are different nodes")
	}
}

func TestRefString(t *testing.T) {
	if NilRef.String() != "nil" {
		t.Fatalf("got %q", NilRef.String())
	}
	r := MakeRef(3, 2)
	if r.String() != "ref(3#2)" {
		t.Fatalf("got %q", r.String())
	}
	if r.WithMark().String() != "ref(3#2)!m" {
		t.Fatalf("got %q", r.WithMark().String())
	}
}
