package mem

// EventKind identifies the kind of a traced memory access.
type EventKind uint8

// Trace event kinds.
const (
	EvAlloc EventKind = iota
	EvLoad
	EvStore
	EvCAS
	EvRetire
	EvReclaim
	// EvNote is a marker event injected by instrumentation (for example a
	// phase boundary for the access-aware verifier).
	EvNote
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EvAlloc:
		return "alloc"
	case EvLoad:
		return "load"
	case EvStore:
		return "store"
	case EvCAS:
		return "cas"
	case EvRetire:
		return "retire"
	case EvReclaim:
		return "reclaim"
	case EvNote:
		return "note"
	}
	return "?"
}

// TraceEvent is one recorded memory access. The access-aware verifier
// (Appendix C/D of the paper) consumes per-thread event streams to check
// the read-phase/write-phase discipline.
type TraceEvent struct {
	Kind   EventKind
	Slot   int
	Word   int
	Value  uint64
	Ref    Ref
	Unsafe bool
	// Phase annotations are attached by the data structure through
	// Tracer.Annotate; zero means "no annotation".
	Note string
}

// Tracer records per-thread access streams. Each thread appends to its own
// slice, so recording needs no synchronization as long as a thread id is
// driven by a single goroutine at a time (which the harness guarantees).
type Tracer struct {
	perThread [][]TraceEvent
}

// NewTracer builds a tracer for n threads.
func NewTracer(n int) *Tracer {
	return &Tracer{perThread: make([][]TraceEvent, n)}
}

func (t *Tracer) record(tid int, ev TraceEvent) {
	t.perThread[tid] = append(t.perThread[tid], ev)
}

// Annotate appends a marker event (for example a phase boundary) to thread
// tid's stream.
func (t *Tracer) Annotate(tid int, note string) {
	t.perThread[tid] = append(t.perThread[tid], TraceEvent{Kind: EvNote, Slot: -1, Note: note})
}

// Events returns thread tid's recorded stream. The returned slice is owned
// by the tracer; callers must not mutate it.
func (t *Tracer) Events(tid int) []TraceEvent { return t.perThread[tid] }

// Reset clears all recorded streams.
func (t *Tracer) Reset() {
	for i := range t.perThread {
		t.perThread[i] = t.perThread[i][:0]
	}
}
