package chaos

import (
	"sync"
	"time"

	"repro/internal/obs/rec"
)

// Schedule paces a fault's episodes over a run.
type Schedule struct {
	// After is the delay before the first episode.
	After time.Duration `json:"after_ns"`
	// Period is the time between episode starts; 0 makes the fault
	// one-shot.
	Period time.Duration `json:"period_ns"`
	// Episodes caps the number of firings; 0 means once for one-shot
	// schedules and unlimited (until Stop) for periodic ones.
	Episodes int `json:"episodes"`
	// Hold is how long an episode stays injected before it is healed;
	// 0 holds until the engine stops.
	Hold time.Duration `json:"hold_ns"`
	// Ramp grows the intensity across episodes: episode i fires with
	// intensity 1 + Ramp×i. 0 keeps every episode at intensity 1.
	Ramp float64 `json:"ramp"`
}

// OneShot fires once after the delay and holds until the engine stops.
func OneShot(after time.Duration) Schedule {
	return Schedule{After: after}
}

// Periodic fires every period, holding each episode for hold.
func Periodic(after, period, hold time.Duration) Schedule {
	return Schedule{After: after, Period: period, Hold: hold}
}

// Ramp is Periodic with intensity growing by step per episode.
func Ramp(after, period, hold time.Duration, step float64) Schedule {
	return Schedule{After: after, Period: period, Hold: hold, Ramp: step}
}

// Event records one episode for the run report: what fired, where, when,
// and when it was healed.
type Event struct {
	Fault   string `json:"fault"`
	Shard   int    `json:"shard"`
	Episode int    `json:"episode"`
	// At is the injection time relative to Engine.Start.
	At time.Duration `json:"at_ns"`
	// Healed is the heal time relative to Engine.Start; 0 while held.
	Healed time.Duration `json:"healed_ns"`
	// Err records an episode that failed to inject.
	Err string `json:"err,omitempty"`
	// Intensity is the episode's ramped intensity.
	Intensity float64 `json:"intensity"`
}

type injection struct {
	fault Fault
	sched Schedule
}

// Engine drives scheduled fault injections against one target. Add
// injections, Start, run traffic, Stop: Stop heals everything still
// outstanding and waits for the fault goroutines to drain.
type Engine struct {
	target     *Target
	injections []injection

	// clock is the run clock events are stamped on. Engines used to keep
	// a private time.Since zero here; sharing one rec.Clock with the
	// telemetry sampler and the adapt controller is what lets the four
	// logs merge without skew. Start installs a fresh clock when the
	// harness did not provide one.
	clock   *rec.Clock
	rec     *rec.Recorder
	stop    chan struct{}
	wg      sync.WaitGroup
	stopped sync.Once

	mu     sync.Mutex
	events []Event
}

// NewEngine builds an engine over the target.
func NewEngine(t *Target) *Engine {
	return &Engine{target: t, stop: make(chan struct{})}
}

// SetObs points the engine at the shared run clock and, when r is
// non-nil, mirrors every fault fire/heal into the flight recorder. Call
// before Start.
func (e *Engine) SetObs(c *rec.Clock, r *rec.Recorder) {
	e.clock = c
	e.rec = r
}

// now is the event timestamp source: the shared clock when one is
// installed, the engine-private zero otherwise.
func (e *Engine) now() time.Duration { return e.clock.Now() }

// Add registers the named fault (resolved through the registry) on the
// schedule. Must be called before Start.
func (e *Engine) Add(name string, p Params, s Schedule) error {
	f, err := New(name, p)
	if err != nil {
		return err
	}
	e.AddFault(f, s)
	return nil
}

// AddFault registers a pre-built fault on the schedule. Must be called
// before Start.
func (e *Engine) AddFault(f Fault, s Schedule) {
	e.injections = append(e.injections, injection{fault: f, sched: s})
}

// Events returns a copy of the episode log, in firing order.
func (e *Engine) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Event, len(e.events))
	copy(out, e.events)
	return out
}

// record appends an event and returns its index for later completion.
func (e *Engine) record(ev Event) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.events = append(e.events, ev)
	return len(e.events) - 1
}

func (e *Engine) setHealed(i int) {
	e.mu.Lock()
	ev := e.events[i]
	e.events[i].Healed = e.now()
	e.mu.Unlock()
	e.rec.Record(rec.KindFaultHeal, ev.Shard, 0, uint64(ev.Episode), 0, ev.Fault)
}

func (e *Engine) setErr(i int, err error) {
	e.mu.Lock()
	e.events[i].Err = err.Error()
	e.mu.Unlock()
}

// sleep waits for d or until the engine stops; it reports false on stop.
// A non-positive d returns true immediately.
func (e *Engine) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	select {
	case <-e.stop:
		return false
	case <-time.After(d):
		return true
	}
}

// Start launches one runner per injection. Schedules are relative to
// now; event timestamps read the shared clock when SetObs installed one
// (so they line up with telemetry samples), else a private zero at now.
func (e *Engine) Start() {
	if e.clock == nil {
		e.clock = rec.NewClock()
	}
	for _, inj := range e.injections {
		e.wg.Add(1)
		go e.run(inj)
	}
}

// Stop ends the run: periodic runners cease, held episodes are healed,
// and Stop returns once every runner has drained. Idempotent.
func (e *Engine) Stop() {
	e.stopped.Do(func() { close(e.stop) })
	e.wg.Wait()
}

// run is one injection's lifecycle.
func (e *Engine) run(inj injection) {
	defer e.wg.Done()
	if !e.sleep(inj.sched.After) {
		return
	}
	for ep := 0; ; ep++ {
		if inj.sched.Episodes > 0 && ep >= inj.sched.Episodes {
			return
		}
		if inj.sched.Period <= 0 && ep >= 1 {
			return
		}
		intensity := 1 + inj.sched.Ramp*float64(ep)
		fired := time.Now()
		idx := e.record(Event{
			Fault:     inj.fault.Name(),
			Shard:     inj.fault.Shard(),
			Episode:   ep,
			At:        e.now(),
			Intensity: intensity,
		})
		heal, err := inj.fault.Inject(e.target, intensity)
		if err != nil {
			e.setErr(idx, err)
		} else {
			e.rec.Record(rec.KindFaultFire, inj.fault.Shard(), 0,
				uint64(ep), uint64(intensity*1000), inj.fault.Name())
			if inj.sched.Hold > 0 {
				e.sleep(inj.sched.Hold)
				heal()
				e.setHealed(idx)
			} else {
				// Hold until the engine stops. One-shot holds pin this
				// runner; periodic schedules need a Hold to make sense,
				// so treat hold-until-stop as terminal either way.
				<-e.stop
				heal()
				e.setHealed(idx)
				return
			}
		}
		if inj.sched.Period <= 0 {
			return
		}
		if !e.sleep(inj.sched.Period - time.Since(fired)) {
			return
		}
	}
}
