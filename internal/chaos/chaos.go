// Package chaos injects faults into the sharded store and keeps them on a
// schedule — the adversity half of the live robustness audit.
//
// The ERA theorem's robustness axis is a worst-case property: Definitions
// 5.1–5.2 quantify over *all* executions, including those where a thread
// stalls at the worst possible moment. Healthy benchmark traffic never
// visits those executions, so a scheme's RobustnessClass cannot be audited
// from healthy telemetry — every scheme looks bounded when nobody stalls.
// This package manufactures the bad executions in production shape: named
// faults, selected through a registry that mirrors internal/workload's
// (a new fault is a registry entry, not harness code), fired by an Engine
// on one-shot, periodic, or ramping schedules against a live store while
// internal/telemetry watches the backlog.
//
// The faults:
//
//   - "stall": parks one shard worker mid-operation at a sched.Breakpoints
//     execution point — the Figure 1 reclamation-critical stall, landing
//     inside a serving store instead of a closed micro-loop;
//   - "slow-client": a drip of single-operation batches, the slow consumer
//     every service eventually meets;
//   - "hotspot": sustained traffic skew onto one shard;
//   - "churn": closes a shard mid-run and reopens it cold (restart
//     semantics — the cache-miss storm included);
//   - "delayed-release": a stall pulse combined with an update storm, so a
//     retire burst lands exactly while protection release is delayed.
package chaos

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sched"
	"repro/internal/store"
)

// Target is what faults act on: the store under test, its per-shard
// injection gates, and the key universe traffic-shaped faults draw from.
type Target struct {
	// Store is the service under chaos.
	Store *store.Store
	// Gates holds one Breakpoints instance per shard (the value passed as
	// that shard's ShardSpec.Gate). A nil entry means the shard is not
	// instrumented; stall-family faults refuse to target it.
	Gates []*sched.Breakpoints
	// KeyRange is the key universe [0, KeyRange) used to synthesize
	// shard-targeted traffic.
	KeyRange int

	mu      sync.Mutex
	keysFor map[int]*shardKeys
}

// shardKeys caches one shard's discovered keys plus the scan cursor, so
// growing the cache resumes where the last scan stopped instead of
// re-collecting (and duplicating) the keys already found.
type shardKeys struct {
	keys []int64
	next int64
}

// Gate returns shard s's breakpoint gate, or an error when the shard is
// not instrumented.
func (t *Target) Gate(s int) (*sched.Breakpoints, error) {
	if s < 0 || s >= len(t.Gates) || t.Gates[s] == nil {
		return nil, fmt.Errorf("chaos: shard %d has no injection gate", s)
	}
	return t.Gates[s], nil
}

// KeysFor returns up to n distinct keys the store routes to shard s,
// scanning the key range incrementally and caching what it finds.
func (t *Target) KeysFor(s, n int) []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.keysFor == nil {
		t.keysFor = make(map[int]*shardKeys)
	}
	sk := t.keysFor[s]
	if sk == nil {
		sk = &shardKeys{}
		t.keysFor[s] = sk
	}
	for ; len(sk.keys) < n && sk.next < int64(t.KeyRange); sk.next++ {
		if t.Store.ShardFor(sk.next) == s {
			sk.keys = append(sk.keys, sk.next)
		}
	}
	keys := sk.keys
	if len(keys) > n {
		keys = keys[:n]
	}
	return keys
}

// Params configures one fault instance. Faults read the fields they need
// and default the rest; unknown combinations are not an error.
type Params struct {
	// Shard is the target shard.
	Shard int
	// Amount is the fault's magnitude in fault-specific units (operations
	// per storm, keys in the hot set); 0 selects the fault's default.
	Amount int
	// IntervalNs is the pacing of drip-style faults in nanoseconds
	// between operations; 0 selects the fault's default.
	IntervalNs int64
}

// Fault is one named failure mode. Inject applies one episode against the
// target and returns a heal function that undoes it; the engine calls
// heal exactly once per successful Inject. intensity starts at 1 and
// grows along ramp schedules; faults scale their magnitude by it.
type Fault interface {
	Name() string
	// Shard reports the fault's target shard (for event labeling).
	Shard() int
	Inject(t *Target, intensity float64) (heal func(), err error)
}

// Factory builds a fault instance from params.
type Factory func(p Params) (Fault, error)

var factories = map[string]Factory{
	"stall":           newStall,
	"slow-client":     newSlowClient,
	"hotspot":         newHotspot,
	"churn":           newChurn,
	"delayed-release": newDelayedRelease,
}

// Names returns every registered fault name, sorted — the listing is
// deterministic so fault sweeps and reports order stably across runs.
func Names() []string {
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// New builds the named fault.
func New(name string, p Params) (Fault, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("chaos: unknown fault %q (have %v)", name, Names())
	}
	return f(p)
}

// ParksWorker reports whether the named fault permanently parks one shard
// worker while injected (the stall family). Harnesses size worker pools
// from this: composing k parking faults on one shard needs k+1 workers,
// or the shard freezes entirely and the audit reads a vacuous flat line.
func ParksWorker(name string) bool {
	switch name {
	case "stall", "delayed-release":
		return true
	}
	return false
}
