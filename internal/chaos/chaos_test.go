package chaos

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/ds"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/workload"
)

// newTarget builds a 2-shard gated store for fault tests. Each shard runs
// two workers so a parked worker leaves the shard serving.
func newTarget(t *testing.T, scheme string) *Target {
	t.Helper()
	gates := []*sched.Breakpoints{sched.NewBreakpoints(), sched.NewBreakpoints()}
	specs := make([]store.ShardSpec, 2)
	for i := range specs {
		specs[i] = store.ShardSpec{
			Scheme: scheme, Structure: "michael", Workers: 2, Threshold: 16,
			Slots: 4096, Gate: gates[i],
		}
	}
	st, err := store.New(store.Config{Shards: specs, KeyRange: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return &Target{Store: st, Gates: gates, KeyRange: 256}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("fault names not sorted: %v", names)
	}
	if len(names) != 5 {
		t.Fatalf("fault registry has %d entries, want 5: %v", len(names), names)
	}
	for _, n := range names {
		if _, err := New(n, Params{}); err != nil {
			t.Errorf("New(%q): %v", n, err)
		}
	}
	if _, err := New("nope", Params{}); err == nil {
		t.Fatal("unknown fault accepted")
	}
}

func TestKeysForRoutesToShard(t *testing.T) {
	tg := newTarget(t, "ebr")
	for s := 0; s < 2; s++ {
		keys := tg.KeysFor(s, 8)
		if len(keys) == 0 {
			t.Fatalf("no keys for shard %d", s)
		}
		for _, k := range keys {
			if tg.Store.ShardFor(k) != s {
				t.Fatalf("key %d routes to %d, not %d", k, tg.Store.ShardFor(k), s)
			}
		}
	}
}

// TestStallFaultGrowsEBRBacklog is the subsystem's core mechanism in
// miniature: a stall on an EBR shard makes churn accumulate retired
// nodes; healing lets the backlog settle.
func TestStallFaultGrowsEBRBacklog(t *testing.T) {
	tg := newTarget(t, "ebr")
	f, err := New("stall", Params{Shard: 0})
	if err != nil {
		t.Fatal(err)
	}
	heal, err := f.Inject(tg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Churn the stalled shard from background clients: the client whose
	// batch lands on the parked worker blocks until heal — exactly what a
	// real stalled server does to its callers — so churn must not run on
	// the test goroutine.
	keys := tg.KeysFor(0, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[(i+c)%len(keys)]
				submit(tg, []store.Op{
					{Kind: workload.OpInsert, Key: k},
					{Kind: workload.OpDelete, Key: k},
				})
			}
		}(c)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tg.Store.Gauges()[0].Retired < 100 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	mid := tg.Store.Gauges()[0]
	heal()
	if mid.Retired < 100 {
		close(stop)
		wg.Wait()
		t.Fatalf("stalled EBR shard retains %d, want the churn's worth (≥100)", mid.Retired)
	}
	// After healing, continued churn lets the epoch advance and the
	// backlog collapse back toward the scan threshold's slack.
	deadline = time.Now().Add(5 * time.Second)
	for tg.Store.Gauges()[0].Retired >= mid.Retired/2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	after := tg.Store.Gauges()[0]
	close(stop)
	wg.Wait()
	if after.Retired >= mid.Retired {
		t.Fatalf("backlog did not recede after heal: %d → %d", mid.Retired, after.Retired)
	}
}

// TestStallHealWithoutPark checks the unhappy path: healing a stall whose
// park never happened (no traffic) must not hang or panic.
func TestStallHealWithoutPark(t *testing.T) {
	tg := newTarget(t, "ebr")
	f, _ := New("stall", Params{Shard: 1})
	heal, err := f.Inject(tg, 1)
	if err != nil {
		t.Fatal(err)
	}
	heal() // immediately, likely before any probe parked
	// The shard still serves afterwards.
	keys := tg.KeysFor(1, 1)
	if ok, err := tg.Store.Insert(keys[0]); err != nil || !ok {
		t.Fatalf("insert after heal: %v, %v", ok, err)
	}
}

func TestChurnFaultCloseReopen(t *testing.T) {
	tg := newTarget(t, "ebr")
	keys := tg.KeysFor(0, 1)
	if ok, err := tg.Store.Insert(keys[0]); err != nil || !ok {
		t.Fatalf("setup insert: %v, %v", ok, err)
	}
	f, _ := New("churn", Params{Shard: 0})
	heal, err := f.Inject(tg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tg.Store.Contains(keys[0]); err == nil {
		t.Fatal("closed shard still serving")
	}
	// Double injection while closed must fail cleanly.
	if _, err := f.Inject(tg, 1); err == nil {
		t.Fatal("closing a closed shard must error")
	}
	heal()
	if ok, err := tg.Store.Contains(keys[0]); err != nil || ok {
		t.Fatalf("reopened shard: contains = %v, %v; want clean miss", ok, err)
	}
}

func TestHotspotSkewsTraffic(t *testing.T) {
	tg := newTarget(t, "ebr")
	f, _ := New("hotspot", Params{Shard: 1, Amount: 8})
	heal, err := f.Inject(tg, 2) // two blasters
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	heal()
	g := tg.Store.Gauges()
	if g[1].Ops == 0 {
		t.Fatal("hotspot sent no traffic to its shard")
	}
	if g[0].Ops > g[1].Ops/4 {
		t.Fatalf("skew too weak: shard0=%d shard1=%d", g[0].Ops, g[1].Ops)
	}
}

func TestSlowClientDrips(t *testing.T) {
	tg := newTarget(t, "ebr")
	f, _ := New("slow-client", Params{Shard: 0, IntervalNs: int64(time.Millisecond)})
	heal, err := f.Inject(tg, 1)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	heal()
	if ops := tg.Store.Gauges()[0].Ops; ops == 0 || ops > 100 {
		t.Fatalf("drip sent %d ops; want a slow trickle", ops)
	}
}

func TestDelayedReleaseStorm(t *testing.T) {
	tg := newTarget(t, "ebr")
	f, _ := New("delayed-release", Params{Shard: 0, Amount: 200})
	heal, err := f.Inject(tg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Give the storm time to land while the park holds.
	deadline := time.Now().Add(2 * time.Second)
	for tg.Store.Gauges()[0].MaxRetired < 50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	peak := tg.Store.Gauges()[0].MaxRetired
	heal()
	if peak < 50 {
		t.Fatalf("storm under stall peaked at %d retired, want ≥50", peak)
	}
}

// TestEngineSchedules drives a periodic fault and checks the event log
// shape: every episode healed, ramped intensity recorded.
func TestEngineSchedules(t *testing.T) {
	tg := newTarget(t, "ebr")
	e := NewEngine(tg)
	if err := e.Add("slow-client", Params{Shard: 0, IntervalNs: int64(500 * time.Microsecond)},
		Ramp(0, 10*time.Millisecond, 5*time.Millisecond, 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Add("nope", Params{}, OneShot(0)); err == nil {
		t.Fatal("unknown fault added")
	}
	e.Start()
	time.Sleep(35 * time.Millisecond)
	e.Stop()
	e.Stop() // idempotent
	evs := e.Events()
	if len(evs) < 2 {
		t.Fatalf("periodic fault fired %d times in 35ms with 10ms period", len(evs))
	}
	for i, ev := range evs {
		if ev.Fault != "slow-client" || ev.Shard != 0 {
			t.Fatalf("event %d mislabeled: %+v", i, ev)
		}
		if ev.Err == "" && ev.Healed == 0 {
			t.Fatalf("event %d never healed: %+v", i, ev)
		}
		if want := 1 + float64(i); ev.Intensity != want {
			t.Fatalf("event %d intensity = %f, want %f", i, ev.Intensity, want)
		}
	}
}

// TestEngineStopHealsHeldFault checks that Stop heals a hold-until-stop
// episode (the one-shot stall the audit uses).
func TestEngineStopHealsHeldFault(t *testing.T) {
	tg := newTarget(t, "ebr")
	e := NewEngine(tg)
	if err := e.Add("stall", Params{Shard: 0}, OneShot(0)); err != nil {
		t.Fatal(err)
	}
	e.Start()
	time.Sleep(5 * time.Millisecond)
	e.Stop()
	evs := e.Events()
	if len(evs) != 1 {
		t.Fatalf("one-shot fired %d times", len(evs))
	}
	if evs[0].Err != "" {
		t.Fatalf("stall failed: %s", evs[0].Err)
	}
	if evs[0].Healed == 0 {
		t.Fatal("Stop did not heal the held stall")
	}
	// The worker is unparked: serving resumes on both workers.
	keys := tg.KeysFor(0, 1)
	if ok, err := tg.Store.Insert(keys[0]); err != nil || !ok {
		t.Fatalf("insert after stop: %v, %v", ok, err)
	}
}

// TestKeysForGrowsWithoutDuplicates: a small lookup followed by a larger
// one must extend the cache, not re-collect the keys already found.
func TestKeysForGrowsWithoutDuplicates(t *testing.T) {
	tg := newTarget(t, "ebr")
	one := tg.KeysFor(0, 1)
	if len(one) != 1 {
		t.Fatalf("KeysFor(0,1) = %v", one)
	}
	many := tg.KeysFor(0, 16)
	seen := map[int64]bool{}
	for _, k := range many {
		if seen[k] {
			t.Fatalf("duplicate key %d in %v", k, many)
		}
		seen[k] = true
		if tg.Store.ShardFor(k) != 0 {
			t.Fatalf("key %d routes off-shard", k)
		}
	}
	if len(many) != 16 {
		t.Fatalf("KeysFor(0,16) found %d keys", len(many))
	}
}

// TestStallFaultsCoexistOnOneShard: two stall-family parks on the same
// shard must claim distinct workers — neither clobbers the other's
// breakpoint — and with both landed the shard's third worker still
// serves. Heals are deferred so a failing assertion cannot leave parked
// workers behind to deadlock the store's cleanup Close.
func TestStallFaultsCoexistOnOneShard(t *testing.T) {
	gate := sched.NewBreakpoints()
	st, err := store.New(store.Config{
		Shards: []store.ShardSpec{{
			Scheme: "ebr", Structure: "michael", Workers: 3, Threshold: 16,
			Slots: 4096, Gate: gate,
		}},
		KeyRange: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	tg := &Target{Store: st, Gates: []*sched.Breakpoints{gate}, KeyRange: 256}

	p1, err := parkWorker(tg, 0, ds.PointSearchHead)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.release()
	p2, err := parkWorker(tg, 0, ds.PointSearchHead)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.release()
	if p1.tid == p2.tid {
		t.Fatalf("both parks claimed worker %d", p1.tid)
	}
	// The probe pumps alone trigger the parks; wait for both to land
	// before asserting anything about service.
	for _, p := range []*park{p1, p2} {
		select {
		case <-p.stall.Reached():
		case <-time.After(10 * time.Second):
			t.Fatalf("park on worker %d never landed", p.tid)
		}
	}
	// Two of three workers parked: the shard must still serve. Safe to
	// submit synchronously — both breakpoints have fired, so this op
	// cannot become a third victim.
	keys := tg.KeysFor(0, 1)
	if ok, err := st.Insert(keys[0]); err != nil || !ok {
		t.Fatalf("insert with two parked workers: %v, %v", ok, err)
	}
	p1.release()
	p2.release()
	// The heals disarmed cleanly: a fresh park claims a worker again.
	p3, err := parkWorker(tg, 0, ds.PointSearchHead)
	if err != nil {
		t.Fatalf("post-heal park refused: %v", err)
	}
	p3.release()
}
