package chaos

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ds"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/workload"
)

// submit fires one batch and swallows routing errors: fault traffic must
// keep flowing (or quietly stop) when its target shard is itself under a
// churn fault, not crash the engine.
func submit(t *Target, ops []store.Op) {
	_, _ = t.Store.Do(ops)
}

// --- stall ---------------------------------------------------------------

// stallFault parks shard worker 0 mid-operation: the worker is stopped at
// a named execution point inside an operation bracket, so for epoch-style
// schemes the whole shard domain stops advancing while every other worker
// keeps retiring — the paper's reclamation-critical stall. The worker
// stays parked until heal.
type stallFault struct {
	p     Params
	point string
}

func newStall(p Params) (Fault, error) { return &stallFault{p: p, point: ds.PointSearchHead}, nil }

func (f *stallFault) Name() string { return "stall" }
func (f *stallFault) Shard() int   { return f.p.Shard }

// park is one claimed-and-armed worker stall: the thread id it claimed,
// the stall to await the park on, and the release that heals it.
type park struct {
	tid     int
	stall   *sched.Stall
	release func()
}

// parkWorker claims a free worker thread on the shard's gate, arms its
// breakpoint, and pumps single-op probes at the shard until that worker
// picks one up and parks. Claiming (ArmIfFree) rather than arming tid 0
// outright lets several stall-family faults coexist on one shard — each
// parks its own worker instead of silently replacing the other's
// breakpoint. The release disarms and unparks; it is safe to call even
// if the park never happened. Note parkWorker returns as soon as the
// breakpoint is armed — the park itself lands when worker traffic next
// hits it (await p.stall.Reached() to observe it).
func parkWorker(t *Target, shard int, point string) (*park, error) {
	gate, err := t.Gate(shard)
	if err != nil {
		return nil, err
	}
	keys := t.KeysFor(shard, 1)
	if len(keys) == 0 {
		return nil, errors.New("chaos: no key routes to the target shard")
	}
	spec, err := t.Store.Spec(shard)
	if err != nil {
		return nil, err
	}
	var stall *sched.Stall
	tid := -1
	for w := 0; w < spec.Workers; w++ {
		if s, ok := gate.ArmIfFree(w, point, nil, 0); ok {
			stall, tid = s, w
			break
		}
	}
	if stall == nil {
		return nil, fmt.Errorf("chaos: all %d workers of shard %d already have armed breakpoints", spec.Workers, shard)
	}
	stop := make(chan struct{})
	var pump sync.WaitGroup
	pump.Add(1)
	go func() {
		defer pump.Done()
		for {
			select {
			case <-stall.Reached():
				return
			case <-stop:
				return
			case <-time.After(200 * time.Microsecond):
			}
			// Each probe may itself be the op that parks, blocking its
			// Do until release — so probes fly on their own goroutines,
			// fire-and-forget. Release must NOT wait for them: a probe
			// can be held hostage by *another* fault's parked worker on
			// the same shard, and waiting would chain this fault's heal
			// to that one's. Probes drain once every park heals and the
			// store closes; a post-close probe fails fast in submit.
			go submit(t, []store.Op{{Kind: workload.OpContains, Key: keys[0]}})
		}
	}()
	var once sync.Once
	release := func() {
		once.Do(func() {
			// Disarm before Release: no *new* park can start, and a park
			// racing with the disarm falls through on the already-closed
			// release channel. DisarmStall (not Disarm) so a breakpoint
			// another fault armed on this tid after ours fired survives.
			gate.DisarmStall(tid, stall)
			stall.Release()
			close(stop)
			pump.Wait()
		})
	}
	return &park{tid: tid, stall: stall, release: release}, nil
}

func (f *stallFault) Inject(t *Target, intensity float64) (func(), error) {
	p, err := parkWorker(t, f.p.Shard, f.point)
	if err != nil {
		return nil, err
	}
	return p.release, nil
}

// --- slow-client ---------------------------------------------------------

// slowClientFault drips single-operation batches at a slow, steady rate —
// the classic slow consumer. It adds tail pressure without volume;
// intensity speeds the drip.
type slowClientFault struct{ p Params }

func newSlowClient(p Params) (Fault, error) { return &slowClientFault{p: p}, nil }

func (f *slowClientFault) Name() string { return "slow-client" }
func (f *slowClientFault) Shard() int   { return f.p.Shard }

func (f *slowClientFault) Inject(t *Target, intensity float64) (func(), error) {
	interval := time.Duration(f.p.IntervalNs)
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	if intensity > 1 {
		interval = time.Duration(float64(interval) / intensity)
	}
	keys := t.KeysFor(f.p.Shard, 8)
	if len(keys) == 0 {
		return nil, errors.New("chaos: no key routes to the target shard")
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
				submit(t, []store.Op{{Kind: workload.OpContains, Key: keys[i%len(keys)]}})
			}
		}
	}()
	return func() { close(stop); wg.Wait() }, nil
}

// --- hotspot -------------------------------------------------------------

// hotspotFault aims sustained update-heavy traffic at one shard: every
// operation keys into the target shard's slice of the key space, so that
// shard saturates (queueing, retire churn) while its neighbours idle.
type hotspotFault struct{ p Params }

func newHotspot(p Params) (Fault, error) { return &hotspotFault{p: p}, nil }

func (f *hotspotFault) Name() string { return "hotspot" }
func (f *hotspotFault) Shard() int   { return f.p.Shard }

func (f *hotspotFault) Inject(t *Target, intensity float64) (func(), error) {
	hot := f.p.Amount
	if hot <= 0 {
		hot = 16
	}
	keys := t.KeysFor(f.p.Shard, hot)
	if len(keys) == 0 {
		return nil, errors.New("chaos: no key routes to the target shard")
	}
	blasters := 1
	if intensity > 1 {
		blasters = int(intensity)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for b := 0; b < blasters; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			rng := workload.RNG(uint64(0xbeef + b))
			batch := make([]store.Op, 0, 16)
			for {
				select {
				case <-stop:
					return
				default:
				}
				batch = batch[:0]
				for len(batch) < cap(batch) {
					key := keys[rng.Next()%uint64(len(keys))]
					kind := workload.OpInsert
					if rng.Next()%2 == 0 {
						kind = workload.OpDelete
					}
					batch = append(batch, store.Op{Kind: kind, Key: key})
				}
				submit(t, batch)
			}
		}(b)
	}
	return func() { close(stop); wg.Wait() }, nil
}

// --- churn ---------------------------------------------------------------

// churnFault closes the target shard mid-run and reopens it cold on heal:
// in-flight batches complete, new operations fail with ErrShardClosed,
// and the reopened shard serves from an empty structure (restart
// semantics — the backlog is gone, and so is the data).
type churnFault struct{ p Params }

func newChurn(p Params) (Fault, error) { return &churnFault{p: p}, nil }

func (f *churnFault) Name() string { return "churn" }
func (f *churnFault) Shard() int   { return f.p.Shard }

func (f *churnFault) Inject(t *Target, intensity float64) (func(), error) {
	if err := t.Store.CloseShard(f.p.Shard); err != nil {
		return nil, err
	}
	return func() {
		// Reopen can only fail if the whole store closed underneath us,
		// at which point there is nothing left to heal.
		_ = t.Store.ReopenShard(f.p.Shard)
	}, nil
}

// --- delayed-release -----------------------------------------------------

// delayedReleaseFault is the storm variant of the stall: it parks a
// worker (delaying that thread's protection release) and, while the park
// holds, lands a burst of insert/delete pairs on the same shard — a
// retire storm arriving exactly when reclamation is least able to keep
// up. Robust schemes absorb it with a bounded bump; non-robust schemes
// convert the whole storm into backlog.
type delayedReleaseFault struct{ p Params }

func newDelayedRelease(p Params) (Fault, error) { return &delayedReleaseFault{p: p}, nil }

func (f *delayedReleaseFault) Name() string { return "delayed-release" }
func (f *delayedReleaseFault) Shard() int   { return f.p.Shard }

func (f *delayedReleaseFault) Inject(t *Target, intensity float64) (func(), error) {
	p, err := parkWorker(t, f.p.Shard, ds.PointSearchHead)
	if err != nil {
		return nil, err
	}
	storm := f.p.Amount
	if storm <= 0 {
		storm = 256
	}
	if intensity > 1 {
		storm = int(float64(storm) * intensity)
	}
	keys := t.KeysFor(f.p.Shard, 16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Several senders: the batch the parked worker holds blocks its
	// sender until heal, and the rest of the storm must keep landing
	// through the shard's surviving workers.
	const senders = 3
	for c := 0; c < senders; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := workload.RNG(uint64(0x5701 + c))
			batch := make([]store.Op, 0, 16)
			for sent := 0; sent < storm/senders; {
				select {
				case <-stop:
					return
				default:
				}
				batch = batch[:0]
				for len(batch) < cap(batch) && sent+len(batch) < storm/senders {
					key := keys[rng.Next()%uint64(len(keys))]
					batch = append(batch,
						store.Op{Kind: workload.OpInsert, Key: key},
						store.Op{Kind: workload.OpDelete, Key: key})
				}
				submit(t, batch)
				sent += len(batch)
			}
		}(c)
	}
	return func() {
		// Unpark before waiting: the storm goroutine may itself be
		// blocked on the batch the parked worker holds.
		close(stop)
		p.release()
		wg.Wait()
	}, nil
}
