// Package rc implements lock-free reference counting in the style of
// Valois / Detlefs et al. / Gidenstam et al.
//
// Every node carries a reference count covering (a) incoming links from
// other nodes and (b) thread-held references acquired during traversal.
// Link updates go through the WritePtr/CASPtr barriers, which adjust the
// counts of the old and new targets; a retired node whose count drains to
// zero is reclaimed immediately, cascading decrements to its link targets.
//
// RC's integration is automatic (barrier replacements, an added field) and
// it is safe on traversal-through-deleted-nodes structures: a thread
// holding the head of a retired chain keeps the whole chain alive through
// the link counts. That is precisely why it is not robust (Section 2 of
// the paper: "reference counting-based schemes are usually not robust,
// mainly due to the existence of cyclic structures of retired objects"):
// one stalled thread pins an unbounded chain.
package rc

import (
	"repro/internal/mem"
	"repro/internal/smr"
)

// claimed marks a count word whose node is being reclaimed.
const claimed = ^uint64(0)

// RC is the reference-counting scheme. Construct with New and register the
// data structure's link words with SetLinkWords before use (the cascade
// must know which payload words hold references).
type RC struct {
	smr.Base
	linkWords []int
	held      [][]mem.Ref
}

var _ smr.Scheme = (*RC)(nil)

// New builds an RC instance over arena a for n threads. linkWords lists
// the payload word indices that hold mem.Ref values; it may be extended
// later with SetLinkWords.
func New(a *mem.Arena, n, threshold int, linkWords ...int) *RC {
	return &RC{
		Base:      smr.NewBase(a, n, threshold),
		linkWords: linkWords,
		held:      make([][]mem.Ref, n),
	}
}

// SetLinkWords declares which payload words hold references. Call before
// any operation runs.
func (c *RC) SetLinkWords(words []int) { c.linkWords = words }

// Name implements smr.Scheme.
func (c *RC) Name() string { return "rc" }

// Props implements smr.Scheme.
func (c *RC) Props() smr.Props {
	return smr.Props{
		SelfContained: true,
		MetaWordsUsed: 1, // the count
		Robustness:    smr.NotRobust,
		Applicability: smr.WidelyApplicable,
	}
}

// rcInc increments r's count unless the node is being reclaimed.
func (c *RC) rcInc(r mem.Ref) bool {
	slot := r.Slot()
	for {
		v := c.Arena.MetaLoad(slot, smr.MetaVersion)
		if v == claimed {
			return false
		}
		if c.Arena.MetaCAS(slot, smr.MetaVersion, v, v+1) {
			return true
		}
	}
}

// rcDec decrements r's count and reclaims the node if it drained to zero
// while retired.
func (c *RC) rcDec(tid int, r mem.Ref) {
	slot := r.Slot()
	for {
		v := c.Arena.MetaLoad(slot, smr.MetaVersion)
		if v == claimed || v == 0 {
			return // already being reclaimed, or a count we do not own
		}
		if c.Arena.MetaCAS(slot, smr.MetaVersion, v, v-1) {
			if v-1 == 0 {
				c.maybeFree(tid, r)
			}
			return
		}
	}
}

// maybeFree claims and reclaims r if it is retired with a zero count,
// cascading decrements through its link words.
func (c *RC) maybeFree(tid int, r mem.Ref) {
	stack := []mem.Ref{r}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !c.Arena.Valid(n) || c.Arena.StateOf(n.Slot()) != mem.Retired {
			continue
		}
		if c.Arena.MetaLoad(n.Slot(), smr.MetaVersion) != 0 {
			continue
		}
		if !c.Arena.MetaCAS(n.Slot(), smr.MetaVersion, 0, claimed) {
			continue
		}
		// Collect link targets before the memory is recycled.
		var targets []mem.Ref
		for _, w := range c.linkWords {
			if v, err := c.Arena.Load(tid, n.WithoutMark(), w); err == nil {
				if t := mem.Ref(v).WithoutMark(); !t.IsNil() {
					targets = append(targets, t)
				}
			}
		}
		if c.Arena.Reclaim(tid, n) != nil {
			continue
		}
		// The count word is meta and survives reclamation: reset it for
		// the next occupant of the slot.
		c.Arena.MetaStore(n.Slot(), smr.MetaVersion, 0)
		for _, t := range targets {
			slot := t.Slot()
			for {
				v := c.Arena.MetaLoad(slot, smr.MetaVersion)
				if v == claimed || v == 0 {
					break
				}
				if c.Arena.MetaCAS(slot, smr.MetaVersion, v, v-1) {
					if v-1 == 0 {
						stack = append(stack, t)
					}
					break
				}
			}
		}
	}
}

// BeginOp implements smr.Scheme.
func (c *RC) BeginOp(tid int) {}

// EndOp releases every thread-held reference acquired during the
// operation.
func (c *RC) EndOp(tid int) {
	for _, r := range c.held[tid] {
		c.rcDec(tid, r)
	}
	c.held[tid] = c.held[tid][:0]
}

// Alloc implements smr.Scheme.
func (c *RC) Alloc(tid int) (mem.Ref, error) { return c.Arena.Alloc(tid) }

// Retire implements smr.Scheme. If the count already drained (the unlink
// removed the last reference), reclaim immediately.
func (c *RC) Retire(tid int, r mem.Ref) {
	if c.Arena.Retire(tid, r) != nil {
		return
	}
	if c.Arena.MetaLoad(r.Slot(), smr.MetaVersion) == 0 {
		c.maybeFree(tid, r)
	}
}

// Flush implements smr.Scheme; RC reclaims eagerly and keeps no lists.
func (c *RC) Flush(tid int) {}

// Read implements smr.Scheme.
func (c *RC) Read(tid int, r mem.Ref, w int) (uint64, bool) {
	return c.TransparentRead(tid, r, w)
}

// ReadPtr loads a link and acquires a thread reference on the target,
// validating afterwards that the target was not reclaimed concurrently;
// on a lost race it re-reads the link.
func (c *RC) ReadPtr(tid, idx int, src mem.Ref, w int) (mem.Ref, bool) {
	for attempt := 0; ; attempt++ {
		v, err := c.Arena.Load(tid, src.WithoutMark(), w)
		if err != nil {
			c.S.StaleUses.Add(1)
			return mem.Ref(v), true
		}
		t := mem.Ref(v)
		if t.IsNil() {
			return t, true
		}
		if c.rcInc(t.WithoutMark()) {
			if c.Arena.Valid(t.WithoutMark()) {
				c.held[tid] = append(c.held[tid], t.WithoutMark())
				return t, true
			}
			c.rcDec(tid, t.WithoutMark())
		}
		if attempt >= 64 {
			// The link keeps pointing at a node we cannot pin: give up
			// and let the stale value escape (the monitors will see it).
			c.S.StaleUses.Add(1)
			return t, true
		}
	}
}

// Write implements smr.Scheme.
func (c *RC) Write(tid int, r mem.Ref, w int, v uint64) bool {
	return c.TransparentWrite(tid, r, w, v)
}

// WritePtr stores a link, transferring counts from the old target to the
// new one. It is only legal on nodes the operation owns (local
// initialization), so the read-modify-write needs no atomicity.
func (c *RC) WritePtr(tid int, r mem.Ref, w int, v mem.Ref) bool {
	old, err := c.Arena.Load(tid, r.WithoutMark(), w)
	if err != nil {
		c.S.StaleUses.Add(1)
	}
	if t := v.WithoutMark(); !t.IsNil() {
		c.rcInc(t)
	}
	if err := c.Arena.Store(tid, r.WithoutMark(), w, uint64(v)); err != nil {
		c.S.StaleUses.Add(1)
	}
	if t := mem.Ref(old).WithoutMark(); !t.IsNil() {
		c.rcDec(tid, t)
	}
	return true
}

// CAS implements smr.Scheme.
func (c *RC) CAS(tid int, r mem.Ref, w int, old, new uint64) (bool, bool) {
	return c.TransparentCAS(tid, r, w, old, new)
}

// CASPtr swings a link, transferring counts: the new target is pinned
// before the CAS; on success the old target loses its link count, on
// failure the new target's pin is dropped.
func (c *RC) CASPtr(tid int, r mem.Ref, w int, old, new mem.Ref) (bool, bool) {
	nt := new.WithoutMark()
	if !nt.IsNil() {
		if !c.rcInc(nt) || !c.Arena.Valid(nt) {
			// Installing a link to a node that is already being
			// reclaimed must not happen; fail the CAS.
			if !nt.IsNil() && c.Arena.Valid(nt) {
				c.rcDec(tid, nt)
			}
			return false, true
		}
	}
	swapped, err := c.Arena.CAS(tid, r.WithoutMark(), w, uint64(old), uint64(new))
	if err != nil {
		c.S.StaleUses.Add(1)
	}
	if swapped {
		if ot := old.WithoutMark(); !ot.IsNil() {
			c.rcDec(tid, ot)
		}
	} else if !nt.IsNil() {
		c.rcDec(tid, nt)
	}
	return swapped, true
}

// Reserve implements smr.Scheme.
func (c *RC) Reserve(tid int, refs ...mem.Ref) bool { return true }
