package rc_test

import (
	"testing"

	"repro/internal/ds"
	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/rc"
	"repro/internal/smr/smrtest"
)

// TestHeldReferenceBlocksReclamation: a thread-held reference (acquired
// via ReadPtr) keeps a retired node alive until EndOp releases it.
func TestHeldReferenceBlocksReclamation(t *testing.T) {
	a := smrtest.NewArena(2, 1<<10, mem.Reuse)
	s := rc.New(a, 2, 0, ds.WNext)

	anchor, err := smrtest.AllocShared(s, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := smrtest.AllocShared(s, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginOp(1)
	if !s.WritePtr(1, anchor, ds.WNext, victim) { // link count -> 1
		t.Fatal("link failed")
	}
	s.EndOp(1)

	s.BeginOp(0)
	got, ok := s.ReadPtr(0, 0, anchor, ds.WNext) // held count -> 2
	if !ok || got.WithoutMark() != victim {
		t.Fatalf("ReadPtr = %v, %v", got, ok)
	}

	// Unlink and retire: the link count drops, the held count remains.
	s.BeginOp(1)
	if !s.WritePtr(1, anchor, ds.WNext, mem.NilRef) {
		t.Fatal("unlink failed")
	}
	s.Retire(1, victim)
	s.EndOp(1)

	if st := a.StateOf(victim.Slot()); st != mem.Retired {
		t.Fatalf("held node state = %v, want retired", st)
	}
	if v, err := a.Load(0, victim, 0); err != nil || v != 7 {
		t.Fatalf("reading held node: %d, %v", v, err)
	}

	s.EndOp(0) // releases the held count: the node frees
	if a.Valid(victim) {
		t.Fatal("victim still valid after release")
	}
}

// TestCascade: freeing a chain head cascades through link words.
func TestCascade(t *testing.T) {
	a := smrtest.NewArena(1, 1<<10, mem.Reuse)
	s := rc.New(a, 1, 0, ds.WNext)

	// c <- b <- a: retire in reverse so links hold each alive.
	c, err := smrtest.AllocShared(s, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := smrtest.AllocShared(s, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, err := smrtest.AllocShared(s, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginOp(0)
	s.WritePtr(0, b, ds.WNext, c) // c count 1
	s.WritePtr(0, x, ds.WNext, b) // b count 1
	s.Retire(0, c)
	s.Retire(0, b)
	if !a.Valid(b) || !a.Valid(c) {
		t.Fatal("linked nodes must survive their own retirement")
	}
	s.Retire(0, x) // head count 0: frees x -> b -> c
	s.EndOp(0)
	if a.Valid(x) || a.Valid(b) || a.Valid(c) {
		t.Fatalf("cascade incomplete: x=%v b=%v c=%v", a.Valid(x), a.Valid(b), a.Valid(c))
	}
}

// TestCycleLeak pins RC's classic non-robustness: a retired cycle is never
// reclaimed (Section 2 of the paper).
func TestCycleLeak(t *testing.T) {
	a := smrtest.NewArena(1, 1<<10, mem.Reuse)
	s := rc.New(a, 1, 0, ds.WNext)

	n1, err := smrtest.AllocShared(s, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := smrtest.AllocShared(s, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginOp(0)
	s.WritePtr(0, n1, ds.WNext, n2)
	s.WritePtr(0, n2, ds.WNext, n1)
	s.Retire(0, n1)
	s.Retire(0, n2)
	s.EndOp(0)
	s.Flush(0)
	if !a.Valid(n1) || !a.Valid(n2) {
		t.Fatal("cycle members reclaimed — RC should leak cycles")
	}
	if got := a.Stats().Retired(); got != 2 {
		t.Fatalf("retired backlog = %d, want the 2 leaked cycle members", got)
	}
}

// TestProps pins RC's classification.
func TestProps(t *testing.T) {
	s := rc.New(smrtest.NewArena(1, 64, mem.Reuse), 1, 0)
	p := s.Props()
	if !p.EasyIntegration() {
		t.Error("RC must classify as easily integrated")
	}
	if p.Robustness != smr.NotRobust {
		t.Errorf("RC robustness = %v, want not-robust (cycles)", p.Robustness)
	}
}
