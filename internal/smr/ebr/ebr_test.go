package ebr_test

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/ebr"
	"repro/internal/smr/smrtest"
)

// TestReclaimsWhenQuiescent checks that a single-threaded churn reclaims
// everything once flushed: epochs advance freely with no stragglers.
func TestReclaimsWhenQuiescent(t *testing.T) {
	a := smrtest.NewArena(1, 1<<12, mem.Reuse)
	s := ebr.New(a, 1, 8)
	if err := smrtest.Churn(s, 0, 500); err != nil {
		t.Fatal(err)
	}
	smrtest.DrainAll(s, 1, 3)
	if got := a.Stats().Retired(); got != 0 {
		t.Fatalf("retired backlog after drain = %d, want 0", got)
	}
	if a.Stats().Reclaims() == 0 {
		t.Fatal("no reclamations happened")
	}
}

// TestStalledThreadBlocksReclamation is the paper's Section 5.1 claim that
// EBR is not even weakly robust: one thread parked inside an operation
// pins the epoch, and every node retired after its announcement stays
// unreclaimed forever — until the thread resumes.
func TestStalledThreadBlocksReclamation(t *testing.T) {
	a := smrtest.NewArena(2, 1<<13, mem.Reuse)
	s := ebr.New(a, 2, 8)

	s.BeginOp(1) // T1 stalls inside an operation, announcing the epoch

	const churn = 1000
	if err := smrtest.Churn(s, 0, churn); err != nil {
		t.Fatal(err)
	}
	smrtest.DrainAll(s, 1, 3)
	// The epoch advanced at most once past T1's announcement, so no node
	// retired after the stall can satisfy retireEpoch+2 <= current.
	if got := a.Stats().Retired(); got < churn-2*8 {
		t.Fatalf("retired backlog with stalled thread = %d, want ≥ %d", got, churn-2*8)
	}

	s.EndOp(1) // T1 resumes: quiescent
	smrtest.DrainAll(s, 2, 3)
	if got := a.Stats().Retired(); got != 0 {
		t.Fatalf("retired backlog after resume = %d, want 0", got)
	}
}

// TestGrowthIsUnbounded checks the backlog scales with the churn length,
// not with the data-structure size — the defining non-robustness shape.
func TestGrowthIsUnbounded(t *testing.T) {
	for _, churn := range []int{100, 400, 1600} {
		a := smrtest.NewArena(2, 1<<13, mem.Reuse)
		s := ebr.New(a, 2, 8)
		s.BeginOp(1)
		if err := smrtest.Churn(s, 0, churn); err != nil {
			t.Fatal(err)
		}
		got := int(a.Stats().Retired())
		if got < churn-16 {
			t.Fatalf("churn %d: backlog %d does not track churn", churn, got)
		}
	}
}

// TestProps pins the claimed classification.
func TestProps(t *testing.T) {
	s := ebr.New(smrtest.NewArena(1, 64, mem.Reuse), 1, 0)
	p := s.Props()
	if !p.EasyIntegration() {
		t.Error("EBR must classify as easily integrated")
	}
	if p.Robustness != smr.NotRobust {
		t.Errorf("EBR robustness = %v, want not-robust", p.Robustness)
	}
	if p.Applicability != smr.StronglyApplicable {
		t.Errorf("EBR applicability = %v, want strong", p.Applicability)
	}
}
