// Package ebr implements epoch-based reclamation, the seminal scheme of
// Fraser and Harris.
//
// EBR is the paper's witness for "easy integration + strong applicability"
// (Appendix A): its API is exactly beginOp/endOp/alloc/retire, all reads
// and writes pass through untouched, and it is safe for *every* plain
// implementation. Its price is robustness: a thread that stalls inside an
// operation pins its announced epoch forever, so nodes retired from then
// on are never reclaimed (Section 5.1: "EBR is not even weakly robust").
package ebr

import (
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/smr"
)

type pad [56]byte

type announcement struct {
	// epoch<<1 | active
	word atomic.Uint64
	_    pad
}

// EBR is the epoch-based reclamation scheme.
type EBR struct {
	smr.Base
	epoch    atomic.Uint64
	announce []announcement
	// opsSinceAdvance throttles epoch-advance attempts.
	counters []counter
}

type counter struct {
	n uint64
	_ pad
}

const advancePeriod = 16

var _ smr.Scheme = (*EBR)(nil)

// New builds an EBR instance over arena a for n threads. threshold <= 0
// selects the default retire-list scan threshold.
func New(a *mem.Arena, n, threshold int) *EBR {
	e := &EBR{
		Base:     smr.NewBase(a, n, threshold),
		announce: make([]announcement, n),
		counters: make([]counter, n),
	}
	e.epoch.Store(2) // start above the reclamation horizon
	return e
}

// Name implements smr.Scheme.
func (e *EBR) Name() string { return "ebr" }

// Props implements smr.Scheme.
func (e *EBR) Props() smr.Props {
	return smr.Props{
		SelfContained: true,
		MetaWordsUsed: 1, // retire epoch
		Robustness:    smr.NotRobust,
		Applicability: smr.StronglyApplicable,
	}
}

// BeginOp announces the current global epoch and marks the thread active.
func (e *EBR) BeginOp(tid int) {
	e.announce[tid].word.Store(e.epoch.Load()<<1 | 1)
}

// EndOp announces a quiescent state.
func (e *EBR) EndOp(tid int) {
	e.announce[tid].word.Store(e.epoch.Load() << 1)
}

// Rebracket renews the bracket inside a fused window with one store:
// re-announcing the current epoch is exactly EndOp followed by BeginOp
// (the transient quiescent announcement between them is unobservable —
// reclaimers only compare announced epochs against the grace bound).
func (e *EBR) Rebracket(tid int) {
	e.announce[tid].word.Store(e.epoch.Load()<<1 | 1)
}

// tryAdvance increments the global epoch if every active thread has
// announced it.
func (e *EBR) tryAdvance() {
	cur := e.epoch.Load()
	for i := range e.announce {
		w := e.announce[i].word.Load()
		if w&1 == 1 && w>>1 != cur {
			return // a straggler pins the epoch
		}
	}
	e.epoch.CompareAndSwap(cur, cur+1)
}

// Alloc implements smr.Scheme.
func (e *EBR) Alloc(tid int) (mem.Ref, error) { return e.Arena.Alloc(tid) }

// Retire stamps the node with the current epoch and appends it to the
// thread's retire list; full lists trigger an advance attempt and a scan.
func (e *EBR) Retire(tid int, r mem.Ref) {
	e.Arena.MetaStore(r.Slot(), smr.MetaRetire, e.epoch.Load())
	if e.Arena.Retire(tid, r) != nil {
		return
	}
	if e.PushRetired(tid, r) {
		e.tryAdvance()
		e.scan(tid)
	}
}

// scan reclaims every node in tid's retire list whose retire epoch is at
// least two epochs old: every thread active then has since announced a
// newer epoch or quiescence, so no reference to the node survives.
func (e *EBR) scan(tid int) {
	cur := e.epoch.Load()
	l := &e.Lists[tid].Refs
	scanned := len(*l)
	kept := (*l)[:0]
	for _, r := range *l {
		if e.Arena.MetaLoad(r.Slot(), smr.MetaRetire)+2 <= cur {
			_ = e.Arena.Reclaim(tid, r)
		} else {
			kept = append(kept, r)
		}
	}
	*l = kept
	e.NoteScan(tid, scanned, scanned-len(kept))
}

// Flush attempts an epoch advance and a scan regardless of list length.
func (e *EBR) Flush(tid int) {
	e.tryAdvance()
	e.scan(tid)
}

// Read implements smr.Scheme; EBR leaves reads untouched.
func (e *EBR) Read(tid int, r mem.Ref, w int) (uint64, bool) {
	return e.TransparentRead(tid, r, w)
}

// ReadPtr implements smr.Scheme; EBR needs no per-pointer protection.
func (e *EBR) ReadPtr(tid, idx int, src mem.Ref, w int) (mem.Ref, bool) {
	e.maybeAdvance(tid)
	return e.TransparentReadPtr(tid, src, w)
}

func (e *EBR) maybeAdvance(tid int) {
	c := &e.counters[tid]
	c.n++
	if c.n%advancePeriod == 0 {
		e.tryAdvance()
	}
}

// Write implements smr.Scheme.
func (e *EBR) Write(tid int, r mem.Ref, w int, v uint64) bool {
	return e.TransparentWrite(tid, r, w, v)
}

// CAS implements smr.Scheme.
func (e *EBR) CAS(tid int, r mem.Ref, w int, old, new uint64) (bool, bool) {
	return e.TransparentCAS(tid, r, w, old, new)
}

// CASPtr implements smr.Scheme.
func (e *EBR) CASPtr(tid int, r mem.Ref, w int, old, new mem.Ref) (bool, bool) {
	return e.TransparentCAS(tid, r, w, uint64(old), uint64(new))
}

// WritePtr implements smr.Scheme.
func (e *EBR) WritePtr(tid int, r mem.Ref, w int, v mem.Ref) bool {
	return e.TransparentWrite(tid, r, w, uint64(v))
}

// Reserve implements smr.Scheme; EBR has no reservations.
func (e *EBR) Reserve(tid int, refs ...mem.Ref) bool { return true }
