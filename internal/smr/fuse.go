package smr

// Fused bracket windows: one BeginOp per batch of point operations
// instead of one per op, re-bracketing every K ops so the epoch (or
// hazard-slot) pin stays bounded exactly like the iterator's 512-key
// re-bracketing. The rollback contract makes this safe for every
// scheme: operations already tolerate "drop all references and restart
// from the entry point" at any step, so an EndOp/BeginOp pair between
// two ops of a batch is indistinguishable from two ops run by an
// unlucky thread. What fusion changes is only how often the pair is
// paid: once per K ops instead of once per op. Between re-brackets a
// window pins at most one epoch (EBR/QSBR/IBR/HE eras) or K ops' worth
// of hazard-slot reuse (HP), so each scheme's declared robustness class
// survives with the same bound the PR-5 iterator already established.

// DefaultWindow is the re-bracket cadence used when the caller does not
// choose one: the same 512-op pin bound as the iterator contract.
const DefaultWindow = 512

// Rebracketer is an optional scheme fast path: a single-store (or
// near-single-store) equivalent of EndOp+BeginOp for schemes whose
// bracket edges collapse (EBR and friends re-announce the current
// epoch; QSBR bumps its quiescence counter while staying online).
// Schemes without it fall back to an explicit EndOp+BeginOp pair,
// which is always correct.
type Rebracketer interface {
	Rebracket(tid int)
}

// WindowCapper is an optional scheme bound on the fused cadence: a
// scheme whose protocol punishes long-held brackets returns the largest
// window it tolerates and BeginOps clamps the caller's choice to it.
// Safety never needs this — the rollback contract covers any cadence —
// but liveness can: an ejection-based scheme (PEBR) treats a stale
// active announcement as a stalled thread, so a fleet of fused windows
// all pinning old epochs ejects every thread continuously and turns
// the batch into a restart storm. A small cap keeps the announcement
// fresh at per-op-like rates while the batch still skips the rest of
// the bracket cost.
type WindowCapper interface {
	FusedWindowCap() int
}

// Window is one fused bracket covering a batch of operations on a
// single thread. Zero-cost to create on the stack; not safe for
// concurrent use (it is per-tid by construction).
type Window struct {
	s  Scheme
	rb Rebracketer
	// tid is the owning thread slot.
	tid int
	// k is the re-bracket cadence (ops between bracket renewals).
	k int
	// n counts ops stepped since the last renewal.
	n int
	// rebrackets counts renewals performed over the window's lifetime.
	rebrackets uint64
}

// BeginOps opens a fused window for tid, issuing the single BeginOp
// that covers the batch. k <= 0 selects DefaultWindow. The caller must
// close the window with EndOps (not deferred in hot paths — a deferred
// method value on a stack Window escapes).
func BeginOps(s Scheme, tid, k int) Window {
	if k <= 0 {
		k = DefaultWindow
	}
	if c, ok := s.(WindowCapper); ok {
		if cap := c.FusedWindowCap(); cap > 0 && cap < k {
			k = cap
		}
	}
	s.BeginOp(tid)
	rb, _ := s.(Rebracketer)
	return Window{s: s, rb: rb, tid: tid, k: k}
}

// Step advances the window by one operation and renews the bracket
// when the cadence expires. It returns true exactly when a renewal
// happened — the caller MUST then drop every cached node reference
// (validated-predecessor caches included) before touching shared
// memory again, because the renewal may have cleared hazard slots or
// released the pinned epoch.
func (w *Window) Step() bool {
	w.n++
	if w.n < w.k {
		return false
	}
	w.n = 0
	w.rebrackets++
	if w.rb != nil {
		w.rb.Rebracket(w.tid)
	} else {
		w.s.EndOp(w.tid)
		w.s.BeginOp(w.tid)
	}
	return true
}

// EndOps closes the window, issuing the single EndOp that covers the
// batch tail.
func (w *Window) EndOps() {
	w.s.EndOp(w.tid)
}

// Rebrackets reports how many bracket renewals the window performed.
func (w *Window) Rebrackets() uint64 {
	return w.rebrackets
}
