// Package none implements the no-reclamation baseline: retired nodes are
// never reclaimed.
//
// "none" is trivially safe (nothing is ever recycled, so every reference
// stays valid forever), trivially easy to integrate and strongly
// applicable — and maximally non-robust: the retired backlog equals the
// total number of retirements, and a long run exhausts the heap. It
// anchors the robustness axis of every experiment and isolates the cost of
// reclamation machinery in the throughput benches.
package none

import (
	"repro/internal/mem"
	"repro/internal/smr"
)

// None is the leak-everything baseline.
type None struct {
	smr.Base
}

var _ smr.Scheme = (*None)(nil)

// New builds a None instance over arena a for n threads.
func New(a *mem.Arena, n, threshold int) *None {
	return &None{Base: smr.NewBase(a, n, threshold)}
}

// Name implements smr.Scheme.
func (s *None) Name() string { return "none" }

// Props implements smr.Scheme.
func (s *None) Props() smr.Props {
	return smr.Props{
		SelfContained: true,
		Robustness:    smr.NotRobust,
		Applicability: smr.StronglyApplicable,
	}
}

// BeginOp implements smr.Scheme.
func (s *None) BeginOp(tid int) {}

// EndOp implements smr.Scheme.
func (s *None) EndOp(tid int) {}

// Alloc implements smr.Scheme.
func (s *None) Alloc(tid int) (mem.Ref, error) { return s.Arena.Alloc(tid) }

// Retire marks the node retired and forgets it.
func (s *None) Retire(tid int, r mem.Ref) { _ = s.Arena.Retire(tid, r) }

// Flush implements smr.Scheme.
func (s *None) Flush(tid int) {}

// Read implements smr.Scheme.
func (s *None) Read(tid int, r mem.Ref, w int) (uint64, bool) {
	return s.TransparentRead(tid, r, w)
}

// ReadPtr implements smr.Scheme.
func (s *None) ReadPtr(tid, idx int, src mem.Ref, w int) (mem.Ref, bool) {
	return s.TransparentReadPtr(tid, src, w)
}

// Write implements smr.Scheme.
func (s *None) Write(tid int, r mem.Ref, w int, v uint64) bool {
	return s.TransparentWrite(tid, r, w, v)
}

// WritePtr implements smr.Scheme.
func (s *None) WritePtr(tid int, r mem.Ref, w int, v mem.Ref) bool {
	return s.TransparentWrite(tid, r, w, uint64(v))
}

// CAS implements smr.Scheme.
func (s *None) CAS(tid int, r mem.Ref, w int, old, new uint64) (bool, bool) {
	return s.TransparentCAS(tid, r, w, old, new)
}

// CASPtr implements smr.Scheme.
func (s *None) CASPtr(tid int, r mem.Ref, w int, old, new mem.Ref) (bool, bool) {
	return s.TransparentCAS(tid, r, w, uint64(old), uint64(new))
}

// Reserve implements smr.Scheme.
func (s *None) Reserve(tid int, refs ...mem.Ref) bool { return true }
