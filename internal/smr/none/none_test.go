package none_test

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/none"
	"repro/internal/smr/smrtest"
)

// TestNeverReclaims: the leak baseline retires but never frees.
func TestNeverReclaims(t *testing.T) {
	a := smrtest.NewArena(1, 1<<12, mem.Reuse)
	s := none.New(a, 1, 0)
	const churn = 500
	if err := smrtest.Churn(s, 0, churn); err != nil {
		t.Fatal(err)
	}
	smrtest.DrainAll(s, 1, 3)
	if got := a.Stats().Retired(); got != churn {
		t.Fatalf("retired backlog = %d, want %d (nothing reclaims)", got, churn)
	}
	if a.Stats().Reclaims() != 0 {
		t.Fatal("the leak baseline must never reclaim")
	}
}

// TestExhaustsHeap: without reclamation the heap eventually OOMs — the
// concrete failure the robustness definitions guard against.
func TestExhaustsHeap(t *testing.T) {
	a := smrtest.NewArena(1, 128, mem.Reuse)
	s := none.New(a, 1, 0)
	err := smrtest.Churn(s, 0, 200)
	if err == nil {
		t.Fatal("expected OOM churning 200 nodes through a 128-slot heap")
	}
	if a.Stats().OOMs() == 0 {
		t.Fatal("OOM not recorded")
	}
}

// TestProps pins the baseline's classification.
func TestProps(t *testing.T) {
	s := none.New(smrtest.NewArena(1, 64, mem.Reuse), 1, 0)
	p := s.Props()
	if !p.EasyIntegration() {
		t.Error("the leak baseline is trivially easy to integrate")
	}
	if p.Robustness != smr.NotRobust {
		t.Errorf("robustness = %v, want not-robust", p.Robustness)
	}
	if p.Applicability != smr.StronglyApplicable {
		t.Errorf("applicability = %v, want strong (it never frees)", p.Applicability)
	}
}
