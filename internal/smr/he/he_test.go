package he_test

import (
	"testing"

	"repro/internal/ds"
	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/he"
	"repro/internal/smr/smrtest"
)

// TestEraProtection checks that a node whose lifetime contains a published
// era survives scans and reclaims once the era slot clears.
func TestEraProtection(t *testing.T) {
	a := smrtest.NewArena(2, 1<<12, mem.Reuse)
	s := he.New(a, 2, 4)

	anchor, err := smrtest.AllocShared(s, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := smrtest.AllocShared(s, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginOp(1)
	s.WritePtr(1, anchor, ds.WNext, victim)
	s.EndOp(1)

	s.BeginOp(0)
	if _, ok := s.ReadPtr(0, 0, anchor, ds.WNext); !ok {
		t.Fatal("ReadPtr failed")
	}
	s.BeginOp(1)
	s.Retire(1, victim)
	s.EndOp(1)
	smrtest.DrainAll(s, 2, 2)
	if st := a.StateOf(victim.Slot()); st != mem.Retired {
		t.Fatalf("era-protected node state = %v, want retired", st)
	}

	s.EndOp(0)
	smrtest.DrainAll(s, 2, 2)
	if a.Valid(victim) {
		t.Fatal("victim still valid after era cleared")
	}
}

// TestStalledEraBound: a stalled thread's published era pins only nodes
// whose lifetime contains that era; later allocations reclaim freely.
func TestStalledEraBound(t *testing.T) {
	const threshold = 16
	a := smrtest.NewArena(2, 1<<14, mem.Reuse)
	s := he.New(a, 2, threshold)

	anchor, err := smrtest.AllocShared(s, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginOp(0)
	if _, ok := s.ReadPtr(0, 0, anchor, ds.WNext); !ok {
		t.Fatal("publishing an era failed")
	}
	// T0 stalls with a published era.

	for _, churn := range []int{200, 800, 3200} {
		if err := smrtest.Churn(s, 1, churn); err != nil {
			t.Fatal(err)
		}
		bound := uint64(threshold + 64)
		if got := a.Stats().Retired(); got > bound {
			t.Fatalf("churn %d: retired backlog %d exceeds HE bound %d", churn, got, bound)
		}
	}

	s.EndOp(0)
	smrtest.DrainAll(s, 2, 2)
	if got := a.Stats().Retired(); got > uint64(threshold) {
		t.Fatalf("backlog after eras cleared = %d", got)
	}
}

// TestProps pins HE's classification.
func TestProps(t *testing.T) {
	s := he.New(smrtest.NewArena(1, 64, mem.Reuse), 1, 0)
	p := s.Props()
	if !p.EasyIntegration() {
		t.Error("HE must classify as easily integrated")
	}
	if p.Robustness != smr.WeaklyRobust {
		t.Errorf("HE robustness = %v, want weakly-robust (a published era pins everything alive at it)", p.Robustness)
	}
	if p.Applicability != smr.Restricted {
		t.Errorf("HE applicability = %v, want restricted", p.Applicability)
	}
}
