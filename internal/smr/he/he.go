// Package he implements hazard eras (Ramalhete & Correia, SPAA 2017).
//
// Hazard eras marries hazard pointers with epochs: instead of publishing
// the address it is about to dereference, a thread publishes the *era* in
// which it read the pointer, one era per hazard slot. A retired node is
// reclaimable when no published era falls inside its [birth, retire]
// lifetime. Protection therefore costs one store per read (like HP) but
// protects every node alive at that era at once.
//
// HE is robust (the retired backlog is bounded by eras pinned by hazard
// slots times the allocation rate per era) and easily integrated, and —
// like HP and IBR — not widely applicable: eras published during a Harris
// traversal do not cover nodes born after the traversal's eras that die
// before it reaches them (Appendix E of the paper).
package he

import (
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/smr"
)

type pad [56]byte

type eraSlot struct {
	era atomic.Uint64
	_   pad
}

// K is the number of era slots per thread.
const K = 8

// noEra marks an empty slot.
const noEra = uint64(0)

// epochFreq is the number of retirements between era advances.
const epochFreq = 8

// HE is the hazard-eras scheme.
type HE struct {
	smr.Base
	era     atomic.Uint64
	slots   []eraSlot // N*K row-major
	retires []retireCounter
}

type retireCounter struct {
	n uint64
	_ pad
}

var _ smr.Scheme = (*HE)(nil)

// New builds an HE instance over arena a for n threads.
func New(a *mem.Arena, n, threshold int) *HE {
	h := &HE{
		Base:    smr.NewBase(a, n, threshold),
		slots:   make([]eraSlot, n*K),
		retires: make([]retireCounter, n),
	}
	h.era.Store(1)
	return h
}

// Name implements smr.Scheme.
func (h *HE) Name() string { return "he" }

// Props implements smr.Scheme.
func (h *HE) Props() smr.Props {
	return smr.Props{
		SelfContained: true,
		MetaWordsUsed: 2, // birth and retire eras
		// Weakly robust, not robust: a published era pins every node whose
		// lifetime contains it — up to the whole structure alive at that
		// era, i.e. linear in max_active (the paper's §2 calls this a
		// "liberal bound"). The EXP-SCALE experiment measures exactly
		// that: backlog == structure size under a stalled reader.
		Robustness:    smr.WeaklyRobust,
		Applicability: smr.Restricted,
	}
}

// BeginOp implements smr.Scheme.
func (h *HE) BeginOp(tid int) {}

// EndOp clears the thread's era slots.
func (h *HE) EndOp(tid int) {
	for i := 0; i < K; i++ {
		h.slots[tid*K+i].era.Store(noEra)
	}
}

// Alloc stamps the node's birth era.
func (h *HE) Alloc(tid int) (mem.Ref, error) {
	r, err := h.Arena.Alloc(tid)
	if err != nil {
		return r, err
	}
	h.Arena.MetaStore(r.Slot(), smr.MetaBirth, h.era.Load())
	return r, nil
}

// Retire stamps the node's retire era and advances the era every
// epochFreq retirements.
func (h *HE) Retire(tid int, r mem.Ref) {
	h.Arena.MetaStore(r.Slot(), smr.MetaRetire, h.era.Load())
	if h.Arena.Retire(tid, r) != nil {
		return
	}
	c := &h.retires[tid]
	c.n++
	if c.n%epochFreq == 0 {
		h.era.Add(1)
	}
	if h.PushRetired(tid, r) {
		h.scan(tid)
	}
}

// scan reclaims retired nodes whose lifetime contains no published era.
func (h *HE) scan(tid int) {
	eras := make([]uint64, 0, len(h.slots))
	for i := range h.slots {
		if e := h.slots[i].era.Load(); e != noEra {
			eras = append(eras, e)
		}
	}
	l := &h.Lists[tid].Refs
	scanned := len(*l)
	kept := (*l)[:0]
	for _, r := range *l {
		birth := h.Arena.MetaLoad(r.Slot(), smr.MetaBirth)
		retire := h.Arena.MetaLoad(r.Slot(), smr.MetaRetire)
		conflict := false
		for _, e := range eras {
			if birth <= e && e <= retire {
				conflict = true
				break
			}
		}
		if conflict {
			kept = append(kept, r)
		} else {
			_ = h.Arena.Reclaim(tid, r)
		}
	}
	*l = kept
	h.NoteScan(tid, scanned, scanned-len(kept))
}

// Flush implements smr.Scheme.
func (h *HE) Flush(tid int) { h.scan(tid) }

// Read implements smr.Scheme.
func (h *HE) Read(tid int, r mem.Ref, w int) (uint64, bool) {
	return h.TransparentRead(tid, r, w)
}

// ReadPtr publishes the current era in slot idx, loads the target, and
// retries until the global era is stable across the load — the HE
// protect-and-validate loop.
func (h *HE) ReadPtr(tid, idx int, src mem.Ref, w int) (mem.Ref, bool) {
	slot := &h.slots[tid*K+idx].era
	prev := slot.Load()
	for {
		e1 := h.era.Load()
		if e1 != prev {
			slot.Store(e1)
			prev = e1
		}
		v, err := h.Arena.Load(tid, src.WithoutMark(), w)
		if err != nil {
			h.S.StaleUses.Add(1)
			return mem.Ref(v), true
		}
		if h.era.Load() == e1 {
			return mem.Ref(v), true
		}
	}
}

// Write implements smr.Scheme.
func (h *HE) Write(tid int, r mem.Ref, w int, v uint64) bool {
	return h.TransparentWrite(tid, r, w, v)
}

// CAS implements smr.Scheme.
func (h *HE) CAS(tid int, r mem.Ref, w int, old, new uint64) (bool, bool) {
	return h.TransparentCAS(tid, r, w, old, new)
}

// CASPtr implements smr.Scheme.
func (h *HE) CASPtr(tid int, r mem.Ref, w int, old, new mem.Ref) (bool, bool) {
	return h.TransparentCAS(tid, r, w, uint64(old), uint64(new))
}

// WritePtr implements smr.Scheme.
func (h *HE) WritePtr(tid int, r mem.Ref, w int, v mem.Ref) bool {
	return h.TransparentWrite(tid, r, w, uint64(v))
}

// Reserve implements smr.Scheme.
func (h *HE) Reserve(tid int, refs ...mem.Ref) bool { return true }
