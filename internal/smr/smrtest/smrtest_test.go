package smrtest_test

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/smr/all"
	"repro/internal/smr/smrtest"
)

// TestNewArenaFitsEveryScheme checks the helper's arena layout carries the
// full scheme-metadata block: every registered scheme must construct over
// it and complete a basic operation bracket.
func TestNewArenaFitsEveryScheme(t *testing.T) {
	for _, name := range all.Names() {
		a := smrtest.NewArena(2, 64, mem.Reuse)
		s := all.MustNew(name, a, 2, 0)
		if _, err := smrtest.AllocShared(s, 0, 42); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestChurnAccounting checks Churn does what the per-scheme tests rely
// on: ops full allocate-publish-retire lifecycles, all well-formed (no
// violations, no unsafe accesses), with retirement visible in the arena
// counters.
func TestChurnAccounting(t *testing.T) {
	for _, name := range []string{"ebr", "hp", "vbr", "none"} {
		t.Run(name, func(t *testing.T) {
			a := smrtest.NewArena(2, 512, mem.Reuse)
			s := all.MustNew(name, a, 2, 16)
			const ops = 100
			if err := smrtest.Churn(s, 0, ops); err != nil {
				t.Fatal(err)
			}
			sn := a.Stats().Snapshot()
			if sn.Allocs < ops {
				t.Errorf("allocs = %d, want >= %d", sn.Allocs, ops)
			}
			if sn.Retires != ops {
				t.Errorf("retires = %d, want %d", sn.Retires, ops)
			}
			if sn.Retires != sn.Retired+sn.Reclaims {
				t.Errorf("conservation: retires %d != retired %d + reclaims %d",
					sn.Retires, sn.Retired, sn.Reclaims)
			}
			if sn.Violations != 0 || sn.UnsafeAccesses() != 0 {
				t.Errorf("violations=%d unsafe=%d", sn.Violations, sn.UnsafeAccesses())
			}
		})
	}
}

// TestChurnSurfacesExhaustion checks Churn reports heap exhaustion rather
// than hiding it — the property the space-bound tests depend on when they
// size arenas tightly under the leak baseline.
func TestChurnSurfacesExhaustion(t *testing.T) {
	a := smrtest.NewArena(1, 8, mem.Reuse)
	s := all.MustNew("none", a, 1, 0) // never reclaims
	if err := smrtest.Churn(s, 0, 64); err == nil {
		t.Fatal("churn past heap capacity reported no error")
	}
	if a.Stats().OOMs() == 0 {
		t.Error("exhaustion not counted as OOM")
	}
}

// TestAllocSharedVisible checks AllocShared publishes a node whose value
// a guarded read observes.
func TestAllocSharedVisible(t *testing.T) {
	for _, name := range []string{"ebr", "none"} {
		a := smrtest.NewArena(1, 16, mem.Reuse)
		s := all.MustNew(name, a, 1, 0)
		r, err := smrtest.AllocShared(s, 0, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s.BeginOp(0)
		v, ok := s.Read(0, r, 0)
		s.EndOp(0)
		if !ok || v != 7 {
			t.Errorf("%s: read = %d, %v; want 7, true", name, v, ok)
		}
	}
}

// TestDrainAllSettlesBacklog checks DrainAll empties a quiescent EBR
// backlog — the post-churn cleanup every conformance test performs.
func TestDrainAllSettlesBacklog(t *testing.T) {
	a := smrtest.NewArena(2, 512, mem.Reuse)
	s := all.MustNew("ebr", a, 2, 1000) // threshold high: nothing reclaims mid-churn
	if err := smrtest.Churn(s, 0, 50); err != nil {
		t.Fatal(err)
	}
	if a.Stats().Retired() == 0 {
		t.Fatal("churn left no backlog — drain would be vacuous")
	}
	smrtest.DrainAll(s, 2, 4)
	if got := a.Stats().Retired(); got != 0 {
		t.Errorf("backlog after drain = %d, want 0", got)
	}
}
