// Package smrtest provides shared helpers for the per-scheme test
// packages: arena construction and synthetic allocate/retire churn that
// exercises reclamation without a data structure on top.
package smrtest

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/smr"
)

// NewArena builds a test arena with the standard scheme metadata layout.
func NewArena(n, slots int, mode mem.ReclaimMode) *mem.Arena {
	return mem.NewArena(mem.Config{
		Slots:        slots,
		PayloadWords: 2,
		MetaWords:    smr.MetaWords,
		Threads:      n,
		Mode:         mode,
	})
}

// Churn runs ops allocate-write-retire cycles on behalf of thread tid,
// each inside its own operation bracket.
func Churn(s smr.Scheme, tid, ops int) error {
	for i := 0; i < ops; i++ {
		s.BeginOp(tid)
		r, err := s.Alloc(tid)
		if err != nil {
			s.EndOp(tid)
			return fmt.Errorf("churn op %d: %w", i, err)
		}
		if !s.Write(tid, r, 0, uint64(i)) {
			s.EndOp(tid)
			return fmt.Errorf("churn op %d: write rolled back on a local node", i)
		}
		if err := s.Heap().MarkShared(r); err != nil {
			s.EndOp(tid)
			return err
		}
		s.Retire(tid, r)
		s.EndOp(tid)
	}
	return nil
}

// AllocShared allocates a node, writes val into word 0, and publishes it.
func AllocShared(s smr.Scheme, tid int, val uint64) (mem.Ref, error) {
	s.BeginOp(tid)
	defer s.EndOp(tid)
	r, err := s.Alloc(tid)
	if err != nil {
		return mem.NilRef, err
	}
	if !s.Write(tid, r, 0, val) {
		return mem.NilRef, fmt.Errorf("write rolled back on a local node")
	}
	if err := s.Heap().MarkShared(r); err != nil {
		return mem.NilRef, err
	}
	return r, nil
}

// DrainAll flushes every thread's retire list rounds times.
func DrainAll(s smr.Scheme, n, rounds int) {
	for i := 0; i < rounds; i++ {
		for tid := 0; tid < n; tid++ {
			s.Flush(tid)
		}
	}
}
