package smr

import "repro/internal/mem"

type pad [56]byte

// RetireList is a per-thread list of retired-but-unreclaimed nodes, the
// standard building block of every scheme in the literature ("retired
// nodes are typically held in per-thread retire lists").
type RetireList struct {
	Refs []mem.Ref
	_    pad
}

// Observer receives scheme-level reclamation events. The observability
// plane (internal/obs) wires its flight recorder in through this; the
// scheme side stays dependency-free. Implementations are called on the
// reclaiming thread's hot path and must be cheap and non-blocking.
type Observer interface {
	// SMRScan reports one reclamation scan by thread tid: how many
	// retired nodes it examined and how many it reclaimed.
	SMRScan(tid, scanned, reclaimed int)
}

// Base carries the state every scheme shares: the arena, the thread count,
// per-thread retire lists and the event counters.
type Base struct {
	Arena     *mem.Arena
	N         int
	Threshold int // retire-list length that triggers a reclamation scan
	Lists     []RetireList
	S         Stats
	Obs       Observer // nil unless an observability plane is attached
}

// SetObserver attaches (or, with nil, detaches) the scan observer. Set it
// before the scheme's threads start running — the field is read unfenced
// on the scan path.
func (b *Base) SetObserver(o Observer) { b.Obs = o }

// NoteScan counts one reclamation scan and forwards it to the observer.
// Every scheme's scan calls this exactly where it used to bump S.Scans,
// so the counter semantics are unchanged with observability off.
func (b *Base) NoteScan(tid, scanned, reclaimed int) {
	b.S.Scans.Add(1)
	if b.Obs != nil {
		b.Obs.SMRScan(tid, scanned, reclaimed)
	}
}

// NewBase initializes a Base for n threads. threshold <= 0 selects a
// default proportional to the thread count.
func NewBase(a *mem.Arena, n, threshold int) Base {
	if threshold <= 0 {
		threshold = 2 * n * 8
	}
	return Base{Arena: a, N: n, Threshold: threshold, Lists: make([]RetireList, n)}
}

// Stats returns the shared counters.
func (b *Base) Stats() *Stats { return &b.S }

// Heap returns the arena the scheme is bound to.
func (b *Base) Heap() *mem.Arena { return b.Arena }

// PushRetired appends r to tid's retire list and reports whether the list
// reached the scan threshold.
//
// Deliberately "every push past the threshold", not an amortized "every
// Threshold-th push": a thread can stall *inside* one operation for a
// long stretch (a parked worker, or a traversal riding a restart storm),
// pinning epoch-style reclamation meanwhile, and the eager re-scan is
// what collapses the accumulated backlog the instant the pin lifts. An
// amortized trigger was tried and measured: it lets the backlog of such
// an episode run a shard heap dry before the next scan comes due.
func (b *Base) PushRetired(tid int, r mem.Ref) bool {
	l := &b.Lists[tid]
	l.Refs = append(l.Refs, r)
	return len(l.Refs) >= b.Threshold
}

// TransparentRead is the guarded load used by schemes that claim all
// accesses are safe (EBR, HP, IBR, HE, and the baselines): the value is
// always handed to the data structure. If the reference turned out to be
// invalid, handing the value over *uses* a stale value — a safety
// violation under Definition 4.2 that the monitors pick up via StaleUses.
func (b *Base) TransparentRead(tid int, r mem.Ref, w int) (uint64, bool) {
	v, err := b.Arena.Load(tid, r.WithoutMark(), w)
	if err != nil {
		b.S.StaleUses.Add(1)
	}
	return v, true
}

// TransparentReadPtr is TransparentRead for link words.
func (b *Base) TransparentReadPtr(tid int, src mem.Ref, w int) (mem.Ref, bool) {
	v, _ := b.TransparentRead(tid, src, w)
	return mem.Ref(v), true
}

// TransparentWrite is the guarded store for transparent schemes.
func (b *Base) TransparentWrite(tid int, r mem.Ref, w int, v uint64) bool {
	if err := b.Arena.Store(tid, r.WithoutMark(), w, v); err != nil {
		b.S.StaleUses.Add(1)
	}
	return true
}

// TransparentCAS is the guarded compare-and-swap for transparent schemes.
// An invalid reference makes the CAS fail (the arena refuses the update),
// which the data structure observes as an ordinary CAS failure.
func (b *Base) TransparentCAS(tid int, r mem.Ref, w int, old, new uint64) (bool, bool) {
	ok, err := b.Arena.CAS(tid, r.WithoutMark(), w, old, new)
	if err != nil {
		// The scheme believed this node could not be reclaimed while in
		// use; a refused CAS through an invalid reference is an unsafe
		// update attempt (Definition 4.2, Condition 2).
		b.S.StaleUses.Add(1)
	}
	return ok, true
}
