// Package smr defines the uniform interface all safe-memory-reclamation
// schemes in this repository implement, together with the property
// metadata the ERA machinery classifies them by.
//
// The interface mirrors Definition 5.3 of the paper: a reclamation scheme
// is an object whose API operations are inserted (1) at operation begin and
// end, (2) as replacements for alloc() and retire(), and (3) as
// replacements for primitive memory accesses. Data structures are written
// once against this interface; whether a scheme is *easily integrated* is
// then visible in its behaviour: schemes that never request control-flow
// restarts (rollbacks) satisfy the definition, schemes that do (VBR, NBR)
// do not.
//
// # Integration contract for data structures
//
//   - Payload word 0 holds the key; link words hold mem.Ref values.
//   - Shared-node accesses go through Read/ReadPtr/Write/CAS/CASPtr.
//     Initialization of still-local nodes may use Write (schemes pass it
//     through).
//   - ReadPtr's idx names the protection slot to use (hazard-pointer
//     rotation); schemes without per-pointer protection ignore it.
//   - Before the first shared write of an operation, call Reserve with
//     every node reference the write phase will dereference (the
//     neutralization-based scheme publishes them; others ignore it).
//   - Whenever a guarded call reports ok == false, the operation must drop
//     all node references obtained so far and restart from its entry point
//     (the paper's rollback to a checkpoint).
package smr

import (
	"sync/atomic"

	"repro/internal/mem"
)

// RobustnessClass is a scheme's claimed robustness level per Definitions
// 5.1 and 5.2 of the paper.
type RobustnessClass uint8

// Robustness classes.
const (
	// NotRobust: a stalled thread can prevent reclamation of an unbounded
	// number of retired nodes (EBR).
	NotRobust RobustnessClass = iota
	// WeaklyRobust: the number of unreclaimable retired nodes is bounded
	// by a polynomial in max_active times the thread count (IBR).
	WeaklyRobust
	// Robust: the bound is asymptotically smaller than max_active times
	// the thread count (HP, VBR, NBR).
	Robust
)

// String returns the class name.
func (r RobustnessClass) String() string {
	switch r {
	case Robust:
		return "robust"
	case WeaklyRobust:
		return "weakly-robust"
	}
	return "not-robust"
}

// ApplicabilityClass is a scheme's claimed applicability level per
// Definitions 5.4–5.6.
type ApplicabilityClass uint8

// Applicability classes.
const (
	// Restricted: not applicable to all access-aware implementations
	// (HP, IBR, HE fail on Harris's linked-list; Appendix E).
	Restricted ApplicabilityClass = iota
	// WidelyApplicable: applicable to every access-aware implementation
	// (NBR, VBR).
	WidelyApplicable
	// StronglyApplicable: applicable to every plain implementation
	// (EBR; Appendix A).
	StronglyApplicable
	// Unsafe: not an SMR at all (the immediate-free baseline).
	Unsafe
)

// String returns the class name.
func (a ApplicabilityClass) String() string {
	switch a {
	case WidelyApplicable:
		return "wide"
	case StronglyApplicable:
		return "strong"
	case Unsafe:
		return "unsafe"
	}
	return "restricted"
}

// Props is the static property sheet of a scheme. The ERA integration
// classifier (Definition 5.3) derives ease of integration from the
// Requires* fields, and the empirical harness validates the claims.
type Props struct {
	// RequiresRollback reports that guarded accesses may return ok=false,
	// demanding a control-flow restart. This violates Condition 4 of
	// Definition 5.3 (well-formedness of the integrated implementation).
	RequiresRollback bool
	// RequiresPhases reports that the scheme needs the read/write phase
	// discipline of access-aware implementations (Appendix C), including
	// Reserve calls before write phases.
	RequiresPhases bool
	// SelfContained is false when the real scheme needs OS or hardware
	// support (signals for NBR, wide CAS for VBR); the simulation
	// substitutes for it (see DESIGN.md).
	SelfContained bool
	// TypePreserving reports that the scheme relies on reclaimed memory
	// staying in program space for re-allocation to the same node type
	// (the optimistic schemes: their discarded stale reads must not
	// fault). Arenas hosting such a scheme must use mem.Reuse.
	TypePreserving bool
	// MetaWordsUsed is how many scheme-private per-node words the scheme
	// adds to the layout (allowed by Condition 5 of Definition 5.3).
	MetaWordsUsed int
	// Robustness is the claimed robustness class.
	Robustness RobustnessClass
	// Applicability is the claimed applicability class.
	Applicability ApplicabilityClass
}

// EasyIntegration reports whether the scheme satisfies Definition 5.3:
// it is provided as an object, its operations slot into the allowed code
// locations, and it never moves control out of its own operations
// (no rollbacks, no bespoke phase restructuring).
func (p Props) EasyIntegration() bool {
	return !p.RequiresRollback && !p.RequiresPhases
}

// Stats counts scheme-level events of interest to the monitors.
type Stats struct {
	// Restarts is the number of ok=false results handed to the data
	// structure (rollbacks taken).
	Restarts atomic.Uint64
	// StaleUses is the number of times the scheme let a value read
	// through an invalid reference escape to the data structure. Any
	// nonzero value is a safety violation for the scheme (Definition
	// 4.2, Condition 3).
	StaleUses atomic.Uint64
	// Neutralizations is the number of simulated signals taken (NBR).
	Neutralizations atomic.Uint64
	// Scans is the number of reclamation scans performed.
	Scans atomic.Uint64
}

// StatsSnapshot is a plain copy of Stats.
type StatsSnapshot struct {
	Restarts, StaleUses, Neutralizations, Scans uint64
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Restarts:        s.Restarts.Load(),
		StaleUses:       s.StaleUses.Load(),
		Neutralizations: s.Neutralizations.Load(),
		Scans:           s.Scans.Load(),
	}
}

// Scheme is a safe memory reclamation scheme bound to one arena and a
// fixed thread count. Thread ids must each be driven by a single goroutine
// at a time.
type Scheme interface {
	// Name returns the scheme's short name ("ebr", "hp", ...).
	Name() string
	// Heap returns the arena the scheme is bound to.
	Heap() *mem.Arena
	// Props returns the scheme's static property sheet.
	Props() Props
	// Stats returns the scheme's event counters.
	Stats() *Stats

	// BeginOp brackets the start of a data-structure operation.
	BeginOp(tid int)
	// EndOp brackets the end of a data-structure operation.
	EndOp(tid int)

	// Alloc allocates a node (replacement for alloc()).
	Alloc(tid int) (mem.Ref, error)
	// Retire announces a detached node as a reclamation candidate
	// (replacement for retire()). The scheme decides when the node is
	// actually reclaimed.
	Retire(tid int, r mem.Ref)

	// Read performs a guarded load of payload word w of node r.
	Read(tid int, r mem.Ref, w int) (val uint64, ok bool)
	// ReadPtr performs a guarded load of the reference stored in payload
	// word w of node src, establishing whatever protection the scheme
	// uses, in protection slot idx. The returned reference preserves the
	// mark bit.
	ReadPtr(tid int, idx int, src mem.Ref, w int) (tgt mem.Ref, ok bool)
	// Write performs a guarded store of a scalar word.
	Write(tid int, r mem.Ref, w int, v uint64) (ok bool)
	// WritePtr performs a guarded store of a link word (schemes that
	// track links, such as reference counting, hook it).
	WritePtr(tid int, r mem.Ref, w int, v mem.Ref) (ok bool)
	// CAS performs a guarded compare-and-swap of a scalar word.
	CAS(tid int, r mem.Ref, w int, old, new uint64) (swapped bool, ok bool)
	// CASPtr performs a guarded compare-and-swap of a link word.
	CASPtr(tid int, r mem.Ref, w int, old, new mem.Ref) (swapped bool, ok bool)
	// Reserve publishes the references the upcoming write phase will
	// dereference.
	Reserve(tid int, refs ...mem.Ref) (ok bool)
	// Flush makes the scheme attempt reclamation of thread tid's retire
	// list immediately (used by harnesses between rounds; not part of
	// the paper's API surface).
	Flush(tid int)
}

// Meta word layout shared by the schemes (each arena serves one scheme, so
// words can be reused across schemes without collision).
const (
	// MetaBirth is the era/epoch at allocation (IBR, HE).
	MetaBirth = 0
	// MetaRetire is the era/epoch at retirement (IBR, HE, EBR).
	MetaRetire = 1
	// MetaVersion is the node version (VBR) or reference count (RC).
	MetaVersion = 2
	// MetaSpare is scratch space.
	MetaSpare = 3
	// MetaWords is the number of scheme words every arena must provide.
	MetaWords = 4
)
