package smr_test

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/smr"
)

// TestEasyIntegration pins Definition 5.3's derivation from the property
// sheet: any rollback or phase requirement disqualifies a scheme.
func TestEasyIntegration(t *testing.T) {
	cases := []struct {
		name string
		p    smr.Props
		want bool
	}{
		{"plain", smr.Props{}, true},
		{"rollback", smr.Props{RequiresRollback: true}, false},
		{"phases", smr.Props{RequiresPhases: true}, false},
		{"both", smr.Props{RequiresRollback: true, RequiresPhases: true}, false},
		{"meta-words-allowed", smr.Props{MetaWordsUsed: 3}, true},
	}
	for _, c := range cases {
		if got := c.p.EasyIntegration(); got != c.want {
			t.Errorf("%s: EasyIntegration() = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestClassStrings covers the enum formatting used in reports.
func TestClassStrings(t *testing.T) {
	if smr.Robust.String() != "robust" || smr.WeaklyRobust.String() != "weakly-robust" || smr.NotRobust.String() != "not-robust" {
		t.Error("RobustnessClass strings wrong")
	}
	if smr.StronglyApplicable.String() != "strong" || smr.WidelyApplicable.String() != "wide" ||
		smr.Restricted.String() != "restricted" || smr.Unsafe.String() != "unsafe" {
		t.Error("ApplicabilityClass strings wrong")
	}
}

// TestRetireListThreshold checks the Base building block.
func TestRetireListThreshold(t *testing.T) {
	a := mem.NewArena(mem.Config{Slots: 64, PayloadWords: 1, Threads: 1})
	b := smr.NewBase(a, 1, 3)
	r1, _ := a.Alloc(0)
	r2, _ := a.Alloc(0)
	r3, _ := a.Alloc(0)
	if b.PushRetired(0, r1) {
		t.Error("threshold hit after 1 push")
	}
	if b.PushRetired(0, r2) {
		t.Error("threshold hit after 2 pushes")
	}
	if !b.PushRetired(0, r3) {
		t.Error("threshold not hit after 3 pushes")
	}
}

// TestStatsSnapshot checks counter copying.
func TestStatsSnapshot(t *testing.T) {
	var s smr.Stats
	s.Restarts.Add(2)
	s.StaleUses.Add(3)
	s.Neutralizations.Add(5)
	s.Scans.Add(7)
	sn := s.Snapshot()
	if sn.Restarts != 2 || sn.StaleUses != 3 || sn.Neutralizations != 5 || sn.Scans != 7 {
		t.Errorf("snapshot = %+v", sn)
	}
}
