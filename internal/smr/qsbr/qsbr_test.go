package qsbr_test

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/qsbr"
	"repro/internal/smr/smrtest"
)

// TestReclaimsAfterGracePeriod checks the two-bucket rotation: retired
// nodes wait one full grace period, then reclaim.
func TestReclaimsAfterGracePeriod(t *testing.T) {
	a := smrtest.NewArena(1, 1<<12, mem.Reuse)
	s := qsbr.New(a, 1, 8)
	if err := smrtest.Churn(s, 0, 500); err != nil {
		t.Fatal(err)
	}
	smrtest.DrainAll(s, 1, 3)
	if got := a.Stats().Retired(); got != 0 {
		t.Fatalf("retired backlog after drain = %d, want 0", got)
	}
}

// TestStalledThreadBlocksGracePeriod: QSBR shares EBR's failure mode — a
// thread that never passes a quiescent state blocks every grace period.
func TestStalledThreadBlocksGracePeriod(t *testing.T) {
	a := smrtest.NewArena(2, 1<<13, mem.Reuse)
	s := qsbr.New(a, 2, 8)

	s.BeginOp(1) // T1 enters a critical section and stalls

	const churn = 1000
	if err := smrtest.Churn(s, 0, churn); err != nil {
		t.Fatal(err)
	}
	smrtest.DrainAll(s, 1, 3)
	// The first scan's snapshot predates the stall only if taken before
	// BeginOp(1); here it is taken during churn, so T1 is online in every
	// snapshot and no grace period ever elapses beyond the first rotation.
	if got := a.Stats().Retired(); got < churn-3*8 {
		t.Fatalf("retired backlog with stalled thread = %d, want ≥ %d", got, churn-3*8)
	}

	s.EndOp(1)
	smrtest.DrainAll(s, 2, 3)
	if got := a.Stats().Retired(); got != 0 {
		t.Fatalf("retired backlog after resume = %d, want 0", got)
	}
}

// TestProps pins QSBR's classification.
func TestProps(t *testing.T) {
	s := qsbr.New(smrtest.NewArena(1, 64, mem.Reuse), 1, 0)
	p := s.Props()
	if !p.EasyIntegration() {
		t.Error("QSBR must classify as easily integrated")
	}
	if p.Robustness != smr.NotRobust {
		t.Errorf("QSBR robustness = %v, want not-robust", p.Robustness)
	}
}
