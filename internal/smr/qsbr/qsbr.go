// Package qsbr implements quiescent-state-based reclamation, the
// read-copy-update-style sibling of EBR.
//
// QSBR differs from EBR only in where quiescence is announced: there is no
// per-operation epoch announcement; a thread passes through a quiescent
// state between operations (EndOp), and a retired node is reclaimable once
// every thread has been quiescent since its retirement. Like EBR it is
// easily integrated and strongly applicable but not robust: a stalled
// thread never again reaches a quiescent state, so nothing retired after
// its last quiescent state is ever reclaimed.
package qsbr

import (
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/smr"
)

type pad [56]byte

type slot struct {
	// counter<<1 | online; the counter increments at each quiescent state.
	word atomic.Uint64
	_    pad
}

// QSBR is the quiescent-state-based reclamation scheme. Each thread keeps
// two retire buckets: pending (retired since the last grace-period
// snapshot) and waiting (retired before it). When every thread has been
// quiescent since the snapshot, the waiting bucket is reclaimed and the
// pending bucket becomes the new waiting bucket under a fresh snapshot.
type QSBR struct {
	smr.Base  // Lists holds the pending buckets
	quiescent []slot
	waiting   [][]mem.Ref
	snaps     [][]uint64
}

var _ smr.Scheme = (*QSBR)(nil)

// New builds a QSBR instance over arena a for n threads.
func New(a *mem.Arena, n, threshold int) *QSBR {
	q := &QSBR{
		Base:      smr.NewBase(a, n, threshold),
		quiescent: make([]slot, n),
		waiting:   make([][]mem.Ref, n),
		snaps:     make([][]uint64, n),
	}
	for i := range q.snaps {
		q.snaps[i] = make([]uint64, n)
	}
	return q
}

// Name implements smr.Scheme.
func (q *QSBR) Name() string { return "qsbr" }

// Props implements smr.Scheme.
func (q *QSBR) Props() smr.Props {
	return smr.Props{
		SelfContained: true,
		MetaWordsUsed: 0,
		Robustness:    smr.NotRobust,
		Applicability: smr.StronglyApplicable,
	}
}

// BeginOp marks the thread online (inside a critical section).
func (q *QSBR) BeginOp(tid int) {
	w := q.quiescent[tid].word.Load()
	q.quiescent[tid].word.Store(w | 1)
}

// EndOp passes through a quiescent state: the counter increments and the
// thread goes offline.
func (q *QSBR) EndOp(tid int) {
	w := q.quiescent[tid].word.Load()
	q.quiescent[tid].word.Store((w>>1 + 1) << 1)
}

// Rebracket renews the bracket inside a fused window with one store:
// bump the quiescence counter (proving a pass through a quiescent
// state, which is what grace periods wait for) while staying online.
func (q *QSBR) Rebracket(tid int) {
	w := q.quiescent[tid].word.Load()
	q.quiescent[tid].word.Store((w>>1+1)<<1 | 1)
}

// Alloc implements smr.Scheme.
func (q *QSBR) Alloc(tid int) (mem.Ref, error) { return q.Arena.Alloc(tid) }

// Retire appends to the thread's pending bucket; a full bucket triggers a
// grace-period check.
func (q *QSBR) Retire(tid int, r mem.Ref) {
	if q.Arena.Retire(tid, r) != nil {
		return
	}
	if q.PushRetired(tid, r) {
		q.scan(tid)
	}
}

// graceElapsed reports whether every thread has either been offline at the
// snapshot or since passed a quiescent state. A thread that has been
// inside the same critical section continuously since the snapshot blocks
// the grace period.
func (q *QSBR) graceElapsed(snap []uint64) bool {
	for i := range q.quiescent {
		w := q.quiescent[i].word.Load()
		if snap[i]&1 == 1 && w == snap[i] {
			return false
		}
	}
	return true
}

// scan reclaims the waiting bucket if its grace period elapsed, then
// rotates pending into waiting under a fresh snapshot. Nodes therefore
// wait at least one full grace period after retirement: the snapshot is
// always taken after every node in the bucket was retired, and a node
// retired before the snapshot cannot be reached by any critical section
// that started after it (the node was unlinked before retirement).
func (q *QSBR) scan(tid int) {
	snap := q.snaps[tid]
	if !q.graceElapsed(snap) {
		q.NoteScan(tid, 0, 0)
		return
	}
	reclaimed := len(q.waiting[tid])
	q.NoteScan(tid, reclaimed, reclaimed)
	for _, r := range q.waiting[tid] {
		_ = q.Arena.Reclaim(tid, r)
	}
	pending := &q.Lists[tid].Refs
	q.waiting[tid] = append(q.waiting[tid][:0], *pending...)
	*pending = (*pending)[:0]
	for i := range q.quiescent {
		snap[i] = q.quiescent[i].word.Load()
	}
}

// Flush implements smr.Scheme.
func (q *QSBR) Flush(tid int) { q.scan(tid) }

// Read implements smr.Scheme.
func (q *QSBR) Read(tid int, r mem.Ref, w int) (uint64, bool) {
	return q.TransparentRead(tid, r, w)
}

// ReadPtr implements smr.Scheme.
func (q *QSBR) ReadPtr(tid, idx int, src mem.Ref, w int) (mem.Ref, bool) {
	return q.TransparentReadPtr(tid, src, w)
}

// Write implements smr.Scheme.
func (q *QSBR) Write(tid int, r mem.Ref, w int, v uint64) bool {
	return q.TransparentWrite(tid, r, w, v)
}

// CAS implements smr.Scheme.
func (q *QSBR) CAS(tid int, r mem.Ref, w int, old, new uint64) (bool, bool) {
	return q.TransparentCAS(tid, r, w, old, new)
}

// CASPtr implements smr.Scheme.
func (q *QSBR) CASPtr(tid int, r mem.Ref, w int, old, new mem.Ref) (bool, bool) {
	return q.TransparentCAS(tid, r, w, uint64(old), uint64(new))
}

// WritePtr implements smr.Scheme.
func (q *QSBR) WritePtr(tid int, r mem.Ref, w int, v mem.Ref) bool {
	return q.TransparentWrite(tid, r, w, uint64(v))
}

// Reserve implements smr.Scheme.
func (q *QSBR) Reserve(tid int, refs ...mem.Ref) bool { return true }
