package all_test

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/all"
)

func newArena(n int) *mem.Arena {
	return mem.NewArena(mem.Config{Slots: 256, PayloadWords: 2, MetaWords: smr.MetaWords, Threads: n})
}

// TestEverySchemeConstructs builds each registered scheme and checks the
// interface basics hold.
func TestEverySchemeConstructs(t *testing.T) {
	for _, name := range all.Names() {
		s, err := all.New(name, newArena(2), 2, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("scheme %q reports name %q", name, s.Name())
		}
		if s.Heap() == nil {
			t.Errorf("%s: nil heap", name)
		}
		// A basic allocate/publish/read cycle must work on every scheme.
		s.BeginOp(0)
		r, err := s.Alloc(0)
		if err != nil {
			t.Fatalf("%s: alloc: %v", name, err)
		}
		if !s.Write(0, r, 0, 11) {
			t.Fatalf("%s: write to local node rolled back", name)
		}
		if v, ok := s.Read(0, r, 0); !ok || v != 11 {
			t.Fatalf("%s: read = %d, %v", name, v, ok)
		}
		s.EndOp(0)
	}
}

// TestUnknownScheme checks the error path.
func TestUnknownScheme(t *testing.T) {
	if _, err := all.New("gc", newArena(1), 1, 0); err == nil {
		t.Fatal("expected an error for an unknown scheme")
	}
}

// TestSafeNamesExcludesBaseline ensures the failure-injection baseline is
// excluded from the safe enumeration.
func TestSafeNamesExcludesBaseline(t *testing.T) {
	for _, n := range all.SafeNames() {
		if n == "unsafefree" {
			t.Fatal("unsafefree listed among safe schemes")
		}
	}
	if len(all.SafeNames()) != len(all.Names())-1 {
		t.Fatalf("SafeNames = %v, Names = %v", all.SafeNames(), all.Names())
	}
}

// TestClaimedPropertiesMatchERA: per the ERA theorem, no scheme may claim
// all three of easy integration, (weak) robustness, and wide/strong
// applicability. This is the static half of the ERA matrix; the empirical
// half lives in internal/core.
func TestClaimedPropertiesMatchERA(t *testing.T) {
	for _, name := range all.SafeNames() {
		s, err := all.New(name, newArena(1), 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		p := s.Props()
		easy := p.EasyIntegration()
		robust := p.Robustness != smr.NotRobust // weak robustness suffices for the theorem
		wide := p.Applicability == smr.WidelyApplicable || p.Applicability == smr.StronglyApplicable
		if easy && robust && wide {
			t.Errorf("%s claims all three ERA properties — contradicts Theorem 6.1", name)
		}
	}
}
