// Package all registers every reclamation scheme in the repository behind
// a by-name factory, so harnesses, benchmarks and command-line tools can
// enumerate schemes uniformly.
package all

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/ebr"
	"repro/internal/smr/he"
	"repro/internal/smr/hp"
	"repro/internal/smr/ibr"
	"repro/internal/smr/nbr"
	"repro/internal/smr/none"
	"repro/internal/smr/pebr"
	"repro/internal/smr/qsbr"
	"repro/internal/smr/rc"
	"repro/internal/smr/unsafefree"
	"repro/internal/smr/vbr"
)

// Factory builds a scheme instance over an arena for n threads; threshold
// <= 0 selects the scheme's default retire-list scan threshold.
type Factory func(a *mem.Arena, n, threshold int) smr.Scheme

var factories = map[string]Factory{
	"ebr":        func(a *mem.Arena, n, t int) smr.Scheme { return ebr.New(a, n, t) },
	"qsbr":       func(a *mem.Arena, n, t int) smr.Scheme { return qsbr.New(a, n, t) },
	"hp":         func(a *mem.Arena, n, t int) smr.Scheme { return hp.New(a, n, t) },
	"ibr":        func(a *mem.Arena, n, t int) smr.Scheme { return ibr.New(a, n, t) },
	"he":         func(a *mem.Arena, n, t int) smr.Scheme { return he.New(a, n, t) },
	"vbr":        func(a *mem.Arena, n, t int) smr.Scheme { return vbr.New(a, n, t) },
	"nbr":        func(a *mem.Arena, n, t int) smr.Scheme { return nbr.New(a, n, t) },
	"rc":         func(a *mem.Arena, n, t int) smr.Scheme { return rc.New(a, n, t) },
	"none":       func(a *mem.Arena, n, t int) smr.Scheme { return none.New(a, n, t) },
	"pebr":       func(a *mem.Arena, n, t int) smr.Scheme { return pebr.New(a, n, t) },
	"unsafefree": func(a *mem.Arena, n, t int) smr.Scheme { return unsafefree.New(a, n, t) },
}

// Names returns every registered scheme name, sorted.
func Names() []string {
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SafeNames returns every scheme that claims to be an SMR (everything but
// the failure-injection baseline).
func SafeNames() []string {
	var names []string
	for _, n := range Names() {
		if n != "unsafefree" {
			names = append(names, n)
		}
	}
	return names
}

// New builds the named scheme.
func New(name string, a *mem.Arena, n, threshold int) (smr.Scheme, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("smr: unknown scheme %q (have %v)", name, Names())
	}
	return f(a, n, threshold), nil
}

// Props returns the named scheme's static property sheet without binding
// it to a real heap (a probe instance is built over a throwaway arena).
func Props(name string) (smr.Props, error) {
	f, ok := factories[name]
	if !ok {
		return smr.Props{}, fmt.Errorf("smr: unknown scheme %q (have %v)", name, Names())
	}
	a := mem.NewArena(mem.Config{Slots: 1, PayloadWords: 1, MetaWords: smr.MetaWords, Threads: 1})
	return f(a, 1, 0).Props(), nil
}

// MustNew is New for tests and tools with static names.
func MustNew(name string, a *mem.Arena, n, threshold int) smr.Scheme {
	s, err := New(name, a, n, threshold)
	if err != nil {
		panic(err)
	}
	return s
}
