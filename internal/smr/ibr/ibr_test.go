package ibr_test

import (
	"testing"

	"repro/internal/ds"
	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/ibr"
	"repro/internal/smr/smrtest"
)

// TestIntervalProtection checks that a node whose [birth, retire] interval
// overlaps an active reservation survives scans and is reclaimed after the
// reader finishes.
func TestIntervalProtection(t *testing.T) {
	a := smrtest.NewArena(2, 1<<12, mem.Reuse)
	s := ibr.New(a, 2, 4)

	anchor, err := smrtest.AllocShared(s, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := smrtest.AllocShared(s, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginOp(1)
	s.WritePtr(1, anchor, ds.WNext, victim)
	s.EndOp(1)

	s.BeginOp(0) // reservation starts at the current era
	if _, ok := s.ReadPtr(0, 0, anchor, ds.WNext); !ok {
		t.Fatal("ReadPtr failed")
	}
	s.BeginOp(1)
	s.Retire(1, victim) // retire era >= reservation lower bound
	s.EndOp(1)
	smrtest.DrainAll(s, 2, 2)
	if st := a.StateOf(victim.Slot()); st != mem.Retired {
		t.Fatalf("reserved-interval node state = %v, want retired", st)
	}

	s.EndOp(0)
	smrtest.DrainAll(s, 2, 2)
	if a.Valid(victim) {
		t.Fatal("victim still valid after reservation cleared")
	}
}

// TestStalledReaderDoesNotPinNewNodes is the weak-robustness shape: a
// stalled reservation holds only nodes born before its upper bound; nodes
// allocated afterwards reclaim freely, so the backlog stays bounded while
// churn is unbounded (contrast with EBR's unbounded backlog).
func TestStalledReaderDoesNotPinNewNodes(t *testing.T) {
	const threshold = 16
	a := smrtest.NewArena(2, 1<<14, mem.Reuse)
	s := ibr.New(a, 2, threshold)

	s.BeginOp(0) // T0 stalls with a reservation at the current era

	var lastBacklog uint64
	for _, churn := range []int{200, 800, 3200} {
		if err := smrtest.Churn(s, 1, churn); err != nil {
			t.Fatal(err)
		}
		lastBacklog = a.Stats().Retired()
		// Nodes born after T0's reservation upper bound have birth > upper
		// and are reclaimed on scan; the pinned set is those alive around
		// the stall, bounded by threshold plus the per-era allocation rate.
		bound := uint64(threshold + 64)
		if lastBacklog > bound {
			t.Fatalf("churn %d: retired backlog %d exceeds IBR bound %d", churn, lastBacklog, bound)
		}
	}

	s.EndOp(0)
	smrtest.DrainAll(s, 2, 2)
	if got := a.Stats().Retired(); got > uint64(threshold) {
		t.Fatalf("backlog after reader finished = %d", got)
	}
}

// TestProps pins IBR's classification: weakly robust, easy, restricted.
func TestProps(t *testing.T) {
	s := ibr.New(smrtest.NewArena(1, 64, mem.Reuse), 1, 0)
	p := s.Props()
	if !p.EasyIntegration() {
		t.Error("IBR must classify as easily integrated")
	}
	if p.Robustness != smr.WeaklyRobust {
		t.Errorf("IBR robustness = %v, want weakly-robust", p.Robustness)
	}
	if p.Applicability != smr.Restricted {
		t.Errorf("IBR applicability = %v, want restricted", p.Applicability)
	}
}
