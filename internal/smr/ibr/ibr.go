// Package ibr implements 2GE interval-based reclamation (Wen, Izraelevitz,
// Cai, Beadle & Scott, PPoPP 2018).
//
// Every node carries a birth era and a retire era; every thread publishes
// a reservation interval [lower, upper] of eras it may be holding nodes
// from. A retired node is reclaimable when its lifetime interval
// [birth, retire] intersects no thread's reservation. The global era
// advances every few allocations, so the number of nodes alive during any
// reservation is bounded by the allocation rate times the interval length
// — which is how IBR earns *weak* robustness (Section 5.1 of the paper:
// "the number of retired nodes in a configuration is linear in
// max_active·N").
//
// Like HP and HE, IBR is easily integrated but not widely applicable: a
// traversal that entered the structure in era e never protects nodes born
// after e that are retired before the traversal reaches them (Appendix E).
package ibr

import (
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/smr"
)

type pad [48]byte

type reservation struct {
	lower atomic.Uint64
	upper atomic.Uint64
	_     pad
}

// epochFreq is the number of allocations between era advances.
const epochFreq = 8

// noReservation marks an inactive thread.
const noReservation = ^uint64(0)

// IBR is the 2GE interval-based reclamation scheme.
type IBR struct {
	smr.Base
	era    atomic.Uint64
	resv   []reservation
	allocs []allocCounter
}

type allocCounter struct {
	n uint64
	_ pad
}

var _ smr.Scheme = (*IBR)(nil)

// New builds an IBR instance over arena a for n threads.
func New(a *mem.Arena, n, threshold int) *IBR {
	i := &IBR{
		Base:   smr.NewBase(a, n, threshold),
		resv:   make([]reservation, n),
		allocs: make([]allocCounter, n),
	}
	i.era.Store(1)
	for t := range i.resv {
		i.resv[t].lower.Store(noReservation)
		i.resv[t].upper.Store(noReservation)
	}
	return i
}

// Name implements smr.Scheme.
func (i *IBR) Name() string { return "ibr" }

// Props implements smr.Scheme.
func (i *IBR) Props() smr.Props {
	return smr.Props{
		SelfContained: true,
		MetaWordsUsed: 2, // birth and retire eras
		Robustness:    smr.WeaklyRobust,
		Applicability: smr.Restricted,
	}
}

// BeginOp starts a reservation at the current era.
func (i *IBR) BeginOp(tid int) {
	e := i.era.Load()
	i.resv[tid].lower.Store(e)
	i.resv[tid].upper.Store(e)
}

// EndOp clears the reservation.
func (i *IBR) EndOp(tid int) {
	i.resv[tid].lower.Store(noReservation)
	i.resv[tid].upper.Store(noReservation)
}

// Rebracket renews the bracket inside a fused window: collapse the
// reservation interval back to the current era (two stores instead of
// EndOp+BeginOp's four). Nodes retired before the renewal stop being
// covered, exactly as if the thread had gone quiescent and restarted.
func (i *IBR) Rebracket(tid int) {
	e := i.era.Load()
	i.resv[tid].lower.Store(e)
	i.resv[tid].upper.Store(e)
}

// Alloc stamps the node's birth era and advances the era every epochFreq
// allocations.
func (i *IBR) Alloc(tid int) (mem.Ref, error) {
	r, err := i.Arena.Alloc(tid)
	if err != nil {
		return r, err
	}
	e := i.era.Load()
	i.Arena.MetaStore(r.Slot(), smr.MetaBirth, e)
	c := &i.allocs[tid]
	c.n++
	if c.n%epochFreq == 0 {
		i.era.Add(1)
	}
	return r, nil
}

// Retire stamps the node's retire era.
func (i *IBR) Retire(tid int, r mem.Ref) {
	i.Arena.MetaStore(r.Slot(), smr.MetaRetire, i.era.Load())
	if i.Arena.Retire(tid, r) != nil {
		return
	}
	if i.PushRetired(tid, r) {
		i.scan(tid)
	}
}

// scan reclaims retired nodes whose [birth, retire] interval intersects no
// thread's reservation interval.
func (i *IBR) scan(tid int) {
	lowers := make([]uint64, i.N)
	uppers := make([]uint64, i.N)
	for t := 0; t < i.N; t++ {
		lowers[t] = i.resv[t].lower.Load()
		uppers[t] = i.resv[t].upper.Load()
	}
	l := &i.Lists[tid].Refs
	scanned := len(*l)
	kept := (*l)[:0]
	for _, r := range *l {
		birth := i.Arena.MetaLoad(r.Slot(), smr.MetaBirth)
		retire := i.Arena.MetaLoad(r.Slot(), smr.MetaRetire)
		conflict := false
		for t := 0; t < i.N; t++ {
			if lowers[t] == noReservation {
				continue
			}
			if birth <= uppers[t] && lowers[t] <= retire {
				conflict = true
				break
			}
		}
		if conflict {
			kept = append(kept, r)
		} else {
			_ = i.Arena.Reclaim(tid, r)
		}
	}
	*l = kept
	i.NoteScan(tid, scanned, scanned-len(kept))
}

// Flush implements smr.Scheme.
func (i *IBR) Flush(tid int) { i.scan(tid) }

// Read implements smr.Scheme.
func (i *IBR) Read(tid int, r mem.Ref, w int) (uint64, bool) {
	return i.TransparentRead(tid, r, w)
}

// ReadPtr extends the thread's reservation to the current era around the
// load, retrying until the era is stable across it. A node that was alive
// at any point inside the reservation interval is protected; a node born
// later and already retired (the Harris traversal case) is not.
func (i *IBR) ReadPtr(tid, idx int, src mem.Ref, w int) (mem.Ref, bool) {
	for {
		e1 := i.era.Load()
		if i.resv[tid].upper.Load() < e1 {
			i.resv[tid].upper.Store(e1)
		}
		v, err := i.Arena.Load(tid, src.WithoutMark(), w)
		if err != nil {
			i.S.StaleUses.Add(1)
			return mem.Ref(v), true
		}
		if i.era.Load() == e1 {
			return mem.Ref(v), true
		}
	}
}

// Write implements smr.Scheme.
func (i *IBR) Write(tid int, r mem.Ref, w int, v uint64) bool {
	return i.TransparentWrite(tid, r, w, v)
}

// CAS implements smr.Scheme.
func (i *IBR) CAS(tid int, r mem.Ref, w int, old, new uint64) (bool, bool) {
	return i.TransparentCAS(tid, r, w, old, new)
}

// CASPtr implements smr.Scheme.
func (i *IBR) CASPtr(tid int, r mem.Ref, w int, old, new mem.Ref) (bool, bool) {
	return i.TransparentCAS(tid, r, w, uint64(old), uint64(new))
}

// WritePtr implements smr.Scheme.
func (i *IBR) WritePtr(tid int, r mem.Ref, w int, v mem.Ref) bool {
	return i.TransparentWrite(tid, r, w, uint64(v))
}

// Reserve implements smr.Scheme.
func (i *IBR) Reserve(tid int, refs ...mem.Ref) bool { return true }
