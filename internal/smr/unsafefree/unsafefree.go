// Package unsafefree implements the failure-injection baseline: retire()
// reclaims immediately, with no protection whatsoever.
//
// It is *not* a safe memory reclamation scheme (Definition 4.2): any
// concurrent reader of a retired node dereferences reclaimed memory. The
// baseline exists to validate the monitors — every experiment must detect
// its unsafety — and to measure the ceiling of reclamation eagerness.
package unsafefree

import (
	"repro/internal/mem"
	"repro/internal/smr"
)

// Free is the immediate-free baseline.
type Free struct {
	smr.Base
}

var _ smr.Scheme = (*Free)(nil)

// New builds a Free instance over arena a for n threads.
func New(a *mem.Arena, n, threshold int) *Free {
	return &Free{Base: smr.NewBase(a, n, threshold)}
}

// Name implements smr.Scheme.
func (s *Free) Name() string { return "unsafefree" }

// Props implements smr.Scheme.
func (s *Free) Props() smr.Props {
	return smr.Props{
		SelfContained: true,
		Robustness:    smr.Robust, // the backlog is always zero
		Applicability: smr.Unsafe,
	}
}

// BeginOp implements smr.Scheme.
func (s *Free) BeginOp(tid int) {}

// EndOp implements smr.Scheme.
func (s *Free) EndOp(tid int) {}

// Alloc implements smr.Scheme.
func (s *Free) Alloc(tid int) (mem.Ref, error) { return s.Arena.Alloc(tid) }

// Retire reclaims immediately.
func (s *Free) Retire(tid int, r mem.Ref) {
	if s.Arena.Retire(tid, r) != nil {
		return
	}
	_ = s.Arena.Reclaim(tid, r)
}

// Flush implements smr.Scheme.
func (s *Free) Flush(tid int) {}

// Read implements smr.Scheme.
func (s *Free) Read(tid int, r mem.Ref, w int) (uint64, bool) {
	return s.TransparentRead(tid, r, w)
}

// ReadPtr implements smr.Scheme.
func (s *Free) ReadPtr(tid, idx int, src mem.Ref, w int) (mem.Ref, bool) {
	return s.TransparentReadPtr(tid, src, w)
}

// Write implements smr.Scheme.
func (s *Free) Write(tid int, r mem.Ref, w int, v uint64) bool {
	return s.TransparentWrite(tid, r, w, v)
}

// WritePtr implements smr.Scheme.
func (s *Free) WritePtr(tid int, r mem.Ref, w int, v mem.Ref) bool {
	return s.TransparentWrite(tid, r, w, uint64(v))
}

// CAS implements smr.Scheme.
func (s *Free) CAS(tid int, r mem.Ref, w int, old, new uint64) (bool, bool) {
	return s.TransparentCAS(tid, r, w, old, new)
}

// CASPtr implements smr.Scheme.
func (s *Free) CASPtr(tid int, r mem.Ref, w int, old, new mem.Ref) (bool, bool) {
	return s.TransparentCAS(tid, r, w, uint64(old), uint64(new))
}

// Reserve implements smr.Scheme.
func (s *Free) Reserve(tid int, refs ...mem.Ref) bool { return true }
