package unsafefree_test

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/smrtest"
	"repro/internal/smr/unsafefree"
)

// TestImmediateFree: retire reclaims instantly, invalidating every
// outstanding reference.
func TestImmediateFree(t *testing.T) {
	a := smrtest.NewArena(1, 1<<10, mem.Reuse)
	s := unsafefree.New(a, 1, 0)
	r, err := smrtest.AllocShared(s, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginOp(0)
	s.Retire(0, r)
	s.EndOp(0)
	if a.Valid(r) {
		t.Fatal("reference still valid after immediate free")
	}
	if got := a.Stats().Retired(); got != 0 {
		t.Fatalf("retired backlog = %d, want 0", got)
	}
}

// TestUseAfterFreeDetected: reading through the dangling reference is the
// failure-injection point — the arena accounts an unsafe access, and the
// scheme hands the stale value over (a Definition 4.2 violation).
func TestUseAfterFreeDetected(t *testing.T) {
	a := smrtest.NewArena(1, 1<<10, mem.Reuse)
	s := unsafefree.New(a, 1, 0)
	r, err := smrtest.AllocShared(s, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginOp(0)
	s.Retire(0, r)
	if _, ok := s.Read(0, r, 0); !ok {
		t.Fatal("the unsafe baseline never rolls back")
	}
	s.EndOp(0)
	if a.Stats().UnsafeLoads() == 0 {
		t.Fatal("use-after-free not accounted as an unsafe load")
	}
	if s.Stats().Snapshot().StaleUses == 0 {
		t.Fatal("stale value escape not accounted")
	}
}

// TestSegfaultInUnmapMode: with reclamation to system space, the dangling
// read is a simulated segmentation fault.
func TestSegfaultInUnmapMode(t *testing.T) {
	a := smrtest.NewArena(1, 1<<10, mem.Unmap)
	s := unsafefree.New(a, 1, 0)
	r, err := smrtest.AllocShared(s, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginOp(0)
	s.Retire(0, r)
	s.Read(0, r, 0)
	s.EndOp(0)
	if a.Stats().Faults() == 0 {
		t.Fatal("access to system space not recorded as a fault")
	}
}

// TestProps: the baseline reports itself unsafe.
func TestProps(t *testing.T) {
	s := unsafefree.New(smrtest.NewArena(1, 64, mem.Reuse), 1, 0)
	if s.Props().Applicability != smr.Unsafe {
		t.Errorf("applicability = %v, want unsafe", s.Props().Applicability)
	}
}
