// Package nbr implements neutralization-based reclamation (Singh, Brown &
// Mashtizadeh, PPoPP 2021).
//
// NBR is the paper's witness for "robust + widely applicable": it works on
// every access-aware data structure (implementations divisible into
// read-only and write phases, Appendix C) and bounds the retired backlog,
// but integration is hard — the reclaimer *neutralizes* other threads,
// forcing them to roll back to a checkpoint, and the code must publish
// reservations before each write phase.
//
// The real scheme uses POSIX signals: the reclaimer signals every thread
// and the handler longjmps to the checkpoint unless the thread is in a
// write phase. The simulation substitutes a per-thread neutralization flag
// polled by every guarded access *after* its load: because the reclaimer
// raises all flags before reclaiming, any load that observed reclaimed
// memory is followed by a flag check that observes the flag, so the stale
// value is discarded and the operation restarts — Definition 4.2 is
// satisfied without the value ever being used.
package nbr

import (
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/smr"
)

type pad [56]byte

type flag struct {
	raised atomic.Bool
	_      pad
}

// K is the number of reservation slots per thread.
const K = 8

type reservation struct {
	refs [K]atomic.Uint64
	_    pad
}

// NBR is the neutralization-based reclamation scheme.
type NBR struct {
	smr.Base
	flags []flag
	resv  []reservation
}

var _ smr.Scheme = (*NBR)(nil)

// New builds an NBR instance over arena a for n threads.
func New(a *mem.Arena, n, threshold int) *NBR {
	return &NBR{
		Base:  smr.NewBase(a, n, threshold),
		flags: make([]flag, n),
		resv:  make([]reservation, n),
	}
}

// Name implements smr.Scheme.
func (s *NBR) Name() string { return "nbr" }

// Props implements smr.Scheme.
func (s *NBR) Props() smr.Props {
	return smr.Props{
		RequiresRollback: true,
		RequiresPhases:   true,
		// The real scheme's signals interrupt a thread *before* it can
		// touch freed memory; the simulation polls the flag after the
		// load, so the (discarded) load physically happens and must land
		// in program space. See DESIGN.md, simulation limitations.
		TypePreserving: true,
		SelfContained:  false, // real NBR relies on OS signals
		MetaWordsUsed:  0,
		Robustness:     smr.Robust,
		Applicability:  smr.WidelyApplicable,
	}
}

// BeginOp consumes any neutralization that arrived between operations (the
// thread is at its checkpoint already) and clears stale reservations.
func (s *NBR) BeginOp(tid int) {
	s.flags[tid].raised.Store(false)
	for i := 0; i < K; i++ {
		s.resv[tid].refs[i].Store(0)
	}
}

// EndOp implements smr.Scheme.
func (s *NBR) EndOp(tid int) {
	for i := 0; i < K; i++ {
		s.resv[tid].refs[i].Store(0)
	}
}

// neutralized polls-and-consumes the thread's flag.
func (s *NBR) neutralized(tid int) bool {
	if s.flags[tid].raised.Load() {
		s.flags[tid].raised.Store(false)
		s.S.Neutralizations.Add(1)
		s.S.Restarts.Add(1)
		return true
	}
	return false
}

// Alloc implements smr.Scheme.
func (s *NBR) Alloc(tid int) (mem.Ref, error) { return s.Arena.Alloc(tid) }

// Retire appends to the retire list; a full list neutralizes every other
// thread ("sends signals") and reclaims everything unreserved. The
// reclaimer never waits for acknowledgements, preserving lock freedom.
func (s *NBR) Retire(tid int, r mem.Ref) {
	if s.Arena.Retire(tid, r) != nil {
		return
	}
	if s.PushRetired(tid, r) {
		s.scan(tid)
	}
}

// scan raises every other thread's neutralization flag, then reclaims all
// retired nodes not covered by a published reservation. Ordering argument:
// a thread publishes reservations and then checks its flag (Reserve); the
// reclaimer raises flags and then reads reservations. Either the reclaimer
// sees the reservation, or the thread sees the flag and rolls back before
// entering its write phase.
func (s *NBR) scan(tid int) {
	for t := range s.flags {
		if t != tid {
			s.flags[t].raised.Store(true)
		}
	}
	reserved := make(map[mem.Ref]struct{}, s.N*K)
	for t := range s.resv {
		for i := 0; i < K; i++ {
			if v := s.resv[t].refs[i].Load(); v != 0 {
				reserved[mem.Ref(v).WithoutMark()] = struct{}{}
			}
		}
	}
	l := &s.Lists[tid].Refs
	scanned := len(*l)
	kept := (*l)[:0]
	for _, r := range *l {
		if _, ok := reserved[r.WithoutMark()]; ok {
			kept = append(kept, r)
		} else {
			_ = s.Arena.Reclaim(tid, r)
		}
	}
	*l = kept
	s.NoteScan(tid, scanned, scanned-len(kept))
}

// Flush implements smr.Scheme.
func (s *NBR) Flush(tid int) { s.scan(tid) }

// Read loads, then polls the neutralization flag; a raised flag discards
// the value and rolls the operation back.
func (s *NBR) Read(tid int, r mem.Ref, w int) (uint64, bool) {
	val, err := s.Arena.Load(tid, r.WithoutMark(), w)
	if s.neutralized(tid) {
		return 0, false
	}
	if err != nil {
		// A stale load without a raised flag cannot happen under the
		// flags-before-reclaim protocol; count it as a violation so the
		// monitors would expose a protocol bug.
		s.S.StaleUses.Add(1)
	}
	return val, true
}

// ReadPtr implements smr.Scheme; reads need no reservations, safety comes
// from neutralization.
func (s *NBR) ReadPtr(tid, idx int, src mem.Ref, w int) (mem.Ref, bool) {
	val, ok := s.Read(tid, src, w)
	return mem.Ref(val), ok
}

// Reserve publishes the references the write phase will access, then
// polls the flag: if a neutralization arrived first, the reservations may
// have been missed by a concurrent scan and the operation must roll back.
func (s *NBR) Reserve(tid int, refs ...mem.Ref) bool {
	if len(refs) > K {
		refs = refs[:K]
	}
	for i, r := range refs {
		s.resv[tid].refs[i].Store(uint64(r.WithoutMark()))
	}
	for i := len(refs); i < K; i++ {
		s.resv[tid].refs[i].Store(0)
	}
	if s.neutralized(tid) {
		return false
	}
	return true
}

// Write implements smr.Scheme. Write-phase accesses touch only reserved
// nodes, so they do not poll the flag (signals are deferred during write
// phases in the real scheme).
func (s *NBR) Write(tid int, r mem.Ref, w int, v uint64) bool {
	if err := s.Arena.Store(tid, r.WithoutMark(), w, v); err != nil {
		s.S.StaleUses.Add(1)
	}
	return true
}

// WritePtr implements smr.Scheme.
func (s *NBR) WritePtr(tid int, r mem.Ref, w int, v mem.Ref) bool {
	return s.Write(tid, r, w, uint64(v))
}

// CAS implements smr.Scheme.
func (s *NBR) CAS(tid int, r mem.Ref, w int, old, new uint64) (bool, bool) {
	swapped, err := s.Arena.CAS(tid, r.WithoutMark(), w, old, new)
	if err != nil {
		s.S.StaleUses.Add(1)
	}
	return swapped, true
}

// CASPtr implements smr.Scheme.
func (s *NBR) CASPtr(tid int, r mem.Ref, w int, old, new mem.Ref) (bool, bool) {
	return s.CAS(tid, r, w, uint64(old), uint64(new))
}
