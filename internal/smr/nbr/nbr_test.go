package nbr_test

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/nbr"
	"repro/internal/smr/smrtest"
)

// TestNeutralizationRollsBack: a reclamation scan raises every other
// thread's flag; the victim's next read discards its value and rolls back.
func TestNeutralizationRollsBack(t *testing.T) {
	const threshold = 4
	a := smrtest.NewArena(2, 1<<12, mem.Reuse)
	s := nbr.New(a, 2, threshold)

	anchor, err := smrtest.AllocShared(s, 0, 42)
	if err != nil {
		t.Fatal(err)
	}

	s.BeginOp(0)
	if _, ok := s.Read(0, anchor, 0); !ok {
		t.Fatal("read before any scan must succeed")
	}
	// T1 fills its retire list, triggering a scan that "signals" T0.
	if err := smrtest.Churn(s, 1, threshold+1); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Read(0, anchor, 0); ok {
		t.Fatal("read after neutralization must roll back")
	}
	st := s.Stats().Snapshot()
	if st.Neutralizations == 0 {
		t.Fatal("no neutralization recorded")
	}
	if st.Restarts == 0 {
		t.Fatal("no restart recorded")
	}
	// After the rollback the thread re-enters from its checkpoint.
	s.BeginOp(0)
	if _, ok := s.Read(0, anchor, 0); !ok {
		t.Fatal("read after restart must succeed")
	}
	s.EndOp(0)
}

// TestReservationBlocksReclamation: reserved nodes survive scans until the
// reserving operation ends.
func TestReservationBlocksReclamation(t *testing.T) {
	a := smrtest.NewArena(2, 1<<12, mem.Reuse)
	s := nbr.New(a, 2, 4)

	victim, err := smrtest.AllocShared(s, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginOp(0)
	if !s.Reserve(0, victim) {
		t.Fatal("first reservation must succeed (no pending signal)")
	}

	s.BeginOp(1)
	s.Retire(1, victim)
	s.EndOp(1)
	smrtest.DrainAll(s, 2, 2)
	if st := a.StateOf(victim.Slot()); st != mem.Retired {
		t.Fatalf("reserved node state = %v, want retired", st)
	}

	s.EndOp(0)
	smrtest.DrainAll(s, 2, 2)
	if a.Valid(victim) {
		t.Fatal("victim still valid after reservation dropped")
	}
}

// TestRobustnessBound: the backlog never exceeds threshold + N*K reserved
// slots regardless of churn and stalled readers (the stalled reader gets
// neutralized rather than pinning memory).
func TestRobustnessBound(t *testing.T) {
	const threshold = 16
	a := smrtest.NewArena(2, 1<<14, mem.Reuse)
	s := nbr.New(a, 2, threshold)

	s.BeginOp(0) // stalled inside an operation, holding no reservations
	for _, churn := range []int{200, 800, 3200} {
		if err := smrtest.Churn(s, 1, churn); err != nil {
			t.Fatal(err)
		}
		bound := uint64(threshold + 2*8)
		if got := a.Stats().Retired(); got > bound {
			t.Fatalf("churn %d: retired backlog %d exceeds NBR bound %d", churn, got, bound)
		}
	}
}

// TestProps pins NBR's classification: robust + widely applicable, not
// easily integrated (rollbacks and phase discipline).
func TestProps(t *testing.T) {
	s := nbr.New(smrtest.NewArena(1, 64, mem.Reuse), 1, 0)
	p := s.Props()
	if p.EasyIntegration() {
		t.Error("NBR must not classify as easily integrated")
	}
	if !p.RequiresPhases {
		t.Error("NBR requires the read/write phase discipline")
	}
	if p.Robustness != smr.Robust {
		t.Errorf("NBR robustness = %v, want robust", p.Robustness)
	}
	if p.Applicability != smr.WidelyApplicable {
		t.Errorf("NBR applicability = %v, want wide", p.Applicability)
	}
}
