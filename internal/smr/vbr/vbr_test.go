package vbr_test

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/smrtest"
	"repro/internal/smr/vbr"
)

// TestImmediateReclamation: VBR reclaims wholesale the moment the retire
// list fills; no grace period, no protection.
func TestImmediateReclamation(t *testing.T) {
	const threshold = 8
	a := smrtest.NewArena(1, 1<<12, mem.Reuse)
	s := vbr.New(a, 1, threshold)
	if err := smrtest.Churn(s, 0, 500); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Retired(); got >= threshold {
		t.Fatalf("retired backlog = %d, want < %d at all times", got, threshold)
	}
}

// TestStaleReadRollsBack: reading through a reference to a reclaimed node
// returns ok=false (the rollback signal) and never hands the stale value
// to the caller.
func TestStaleReadRollsBack(t *testing.T) {
	a := smrtest.NewArena(1, 1<<10, mem.Reuse)
	s := vbr.New(a, 1, 4)
	r, err := smrtest.AllocShared(s, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginOp(0)
	s.Retire(0, r)
	s.EndOp(0)
	s.Flush(0)
	if a.Valid(r) {
		t.Fatal("node should be reclaimed after flush")
	}
	restartsBefore := s.Stats().Snapshot().Restarts
	if _, ok := s.Read(0, r, 0); ok {
		t.Fatal("stale read returned ok=true")
	}
	if got := s.Stats().Snapshot().Restarts; got != restartsBefore+1 {
		t.Fatalf("restarts = %d, want %d", got, restartsBefore+1)
	}
}

// TestStaleCASFails: an update attempt through an invalid reference is
// guaranteed to fail (the paper's description of VBR's write handling).
func TestStaleCASFails(t *testing.T) {
	a := smrtest.NewArena(1, 1<<10, mem.Reuse)
	s := vbr.New(a, 1, 4)
	r, err := smrtest.AllocShared(s, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginOp(0)
	s.Retire(0, r)
	s.EndOp(0)
	s.Flush(0)
	swapped, ok := s.CAS(0, r, 0, 5, 6)
	if swapped || ok {
		t.Fatalf("stale CAS: swapped=%v ok=%v, want false/false", swapped, ok)
	}
	if s.Stats().Snapshot().StaleUses != 0 {
		t.Fatal("a refused stale CAS must not count as a stale use")
	}
}

// TestStallImmune: a stalled thread cannot delay VBR reclamation at all —
// the strongest robustness in the repository.
func TestStallImmune(t *testing.T) {
	const threshold = 8
	a := smrtest.NewArena(2, 1<<13, mem.Reuse)
	s := vbr.New(a, 2, threshold)
	s.BeginOp(1) // stalled mid-operation
	for _, churn := range []int{200, 800, 3200} {
		if err := smrtest.Churn(s, 0, churn); err != nil {
			t.Fatal(err)
		}
		if got := a.Stats().Retired(); got >= threshold {
			t.Fatalf("churn %d: retired backlog %d, want < %d", churn, got, threshold)
		}
	}
}

// TestProps pins VBR's classification: robust + widely applicable, not
// easily integrated (rollbacks).
func TestProps(t *testing.T) {
	s := vbr.New(smrtest.NewArena(1, 64, mem.Reuse), 1, 0)
	p := s.Props()
	if p.EasyIntegration() {
		t.Error("VBR must not classify as easily integrated (rollbacks)")
	}
	if p.Robustness != smr.Robust {
		t.Errorf("VBR robustness = %v, want robust", p.Robustness)
	}
	if p.Applicability != smr.WidelyApplicable {
		t.Errorf("VBR applicability = %v, want wide", p.Applicability)
	}
	if p.SelfContained {
		t.Error("VBR must report SelfContained=false (needs wide CAS)")
	}
}
