// Package vbr implements version-based reclamation in the style of
// Sheffi, Herlihy & Petrank (DISC 2021).
//
// VBR is fully optimistic: nodes are reclaimed *immediately* when the
// retire list fills — no grace periods, no per-pointer protection — and
// correctness is recovered by versioning. Every reference carries the
// version (allocation sequence number) of the node it was created for;
// every read validates the version after loading and every update is
// version-checked so that updates through stale references are guaranteed
// to fail. When validation fails the operation rolls back to its
// checkpoint (in this codebase: the operation entry point) and re-executes.
//
// In the simulation the arena's tagged references *are* the version
// mechanism: the tag is the node version, reads through stale tags return
// mem.ErrInvalid, and the arena's CAS refuses updates through invalid
// references (standing in for the wide CAS the real scheme needs — see
// DESIGN.md). This gives VBR the strongest robustness in the repository
// (the retired backlog never exceeds the retire-list threshold per thread)
// and wide applicability, at the price of rollbacks: it is not easily
// integrated per Definition 5.3.
package vbr

import (
	"repro/internal/mem"
	"repro/internal/smr"
)

// VBR is the version-based reclamation scheme.
type VBR struct {
	smr.Base
}

var _ smr.Scheme = (*VBR)(nil)

// New builds a VBR instance over arena a for n threads.
func New(a *mem.Arena, n, threshold int) *VBR {
	return &VBR{Base: smr.NewBase(a, n, threshold)}
}

// Name implements smr.Scheme.
func (v *VBR) Name() string { return "vbr" }

// Props implements smr.Scheme.
func (v *VBR) Props() smr.Props {
	return smr.Props{
		RequiresRollback: true,
		SelfContained:    false, // real VBR relies on a wide CAS
		TypePreserving:   true,  // stale reads must land in program space
		MetaWordsUsed:    1,     // the version (the arena tag in this simulation)
		Robustness:       smr.Robust,
		Applicability:    smr.WidelyApplicable,
	}
}

// BeginOp implements smr.Scheme.
func (v *VBR) BeginOp(tid int) {}

// EndOp implements smr.Scheme.
func (v *VBR) EndOp(tid int) {}

// Alloc implements smr.Scheme. Type preservation comes from the arena:
// slots are recycled with their metadata intact.
func (v *VBR) Alloc(tid int) (mem.Ref, error) { return v.Arena.Alloc(tid) }

// Retire appends to the retire list; a full list is reclaimed wholesale,
// immediately. This is the scheme's robustness: the backlog per thread
// never exceeds the threshold.
func (v *VBR) Retire(tid int, r mem.Ref) {
	if v.Arena.Retire(tid, r) != nil {
		return
	}
	if v.PushRetired(tid, r) {
		v.Flush(tid)
	}
}

// Flush reclaims the thread's whole retire list.
func (v *VBR) Flush(tid int) {
	l := &v.Lists[tid].Refs
	v.NoteScan(tid, len(*l), len(*l))
	for _, r := range *l {
		_ = v.Arena.Reclaim(tid, r)
	}
	*l = (*l)[:0]
}

// Read loads and then validates the version. A stale read is discarded and
// the operation is rolled back, satisfying Definition 4.2: the value read
// through an invalid pointer is never used.
func (v *VBR) Read(tid int, r mem.Ref, w int) (uint64, bool) {
	val, err := v.Arena.Load(tid, r.WithoutMark(), w)
	if err != nil {
		v.S.Restarts.Add(1)
		return 0, false
	}
	return val, true
}

// ReadPtr implements smr.Scheme; same validation as Read.
func (v *VBR) ReadPtr(tid, idx int, src mem.Ref, w int) (mem.Ref, bool) {
	val, ok := v.Read(tid, src, w)
	return mem.Ref(val), ok
}

// Write implements smr.Scheme. Stores are only used on nodes the operation
// owns (pre-publication initialization); a stale target rolls back.
func (v *VBR) Write(tid int, r mem.Ref, w int, val uint64) bool {
	if err := v.Arena.Store(tid, r.WithoutMark(), w, val); err != nil {
		v.S.Restarts.Add(1)
		return false
	}
	return true
}

// WritePtr implements smr.Scheme.
func (v *VBR) WritePtr(tid int, r mem.Ref, w int, val mem.Ref) bool {
	return v.Write(tid, r, w, uint64(val))
}

// CAS implements smr.Scheme. An update through an invalid reference is
// guaranteed to fail (the version check); the operation rolls back.
func (v *VBR) CAS(tid int, r mem.Ref, w int, old, new uint64) (bool, bool) {
	swapped, err := v.Arena.CAS(tid, r.WithoutMark(), w, old, new)
	if err != nil {
		v.S.Restarts.Add(1)
		return false, false
	}
	return swapped, true
}

// CASPtr implements smr.Scheme. Beyond CAS's version check on the *source*
// word, a link installation must also cover the *target*: between reading
// a reference and linking it, the target may have been reclaimed, and
// publishing such a reference would leave a permanently stale edge that
// livelocks every traversal crossing it. The real scheme's wide CAS covers
// the target's version atomically; the simulation validates after the swap
// and undoes on failure (a best-effort stand-in — see DESIGN.md).
func (v *VBR) CASPtr(tid int, r mem.Ref, w int, old, new mem.Ref) (bool, bool) {
	swapped, ok := v.CAS(tid, r, w, uint64(old), uint64(new))
	if swapped && ok {
		if t := new.Bare(); !t.IsNil() && !v.Arena.Valid(t) {
			_, _ = v.Arena.CAS(tid, r.WithoutMark(), w, uint64(new), uint64(old))
			v.S.Restarts.Add(1)
			return false, false
		}
	}
	return swapped, ok
}

// Reserve implements smr.Scheme; VBR needs no reservations.
func (v *VBR) Reserve(tid int, refs ...mem.Ref) bool { return true }
