package hp_test

import (
	"testing"

	"repro/internal/ds"
	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/hp"
	"repro/internal/smr/smrtest"
)

// TestProtectionBlocksReclamation checks the core HP guarantee: a node
// covered by a published hazard pointer survives scans, and is reclaimed
// as soon as the protection is dropped.
func TestProtectionBlocksReclamation(t *testing.T) {
	a := smrtest.NewArena(2, 1<<10, mem.Reuse)
	s := hp.New(a, 2, 4)

	// A shared anchor holds a link to the victim so T0 can protect it
	// through ReadPtr (protection is established via a source pointer).
	anchor, err := smrtest.AllocShared(s, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := smrtest.AllocShared(s, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginOp(1)
	if !s.WritePtr(1, anchor, ds.WNext, victim) {
		t.Fatal("linking victim failed")
	}
	s.EndOp(1)

	s.BeginOp(0)
	got, ok := s.ReadPtr(0, 0, anchor, ds.WNext)
	if !ok || got != victim {
		t.Fatalf("ReadPtr = %v, %v; want %v", got, ok, victim)
	}

	s.BeginOp(1)
	s.Retire(1, victim)
	s.EndOp(1)
	smrtest.DrainAll(s, 2, 2) // scans must spare the protected node

	if st := a.StateOf(victim.Slot()); st != mem.Retired {
		t.Fatalf("protected node state = %v, want retired", st)
	}
	if v, err := a.Load(0, victim, 0); err != nil || v != 7 {
		t.Fatalf("reading protected node: %d, %v", v, err)
	}

	s.EndOp(0) // drops the hazard pointers
	smrtest.DrainAll(s, 2, 2)
	if a.Valid(victim) {
		t.Fatal("victim still valid after protection dropped and scan ran")
	}
}

// TestRobustnessBound checks HP's bound: with a stalled thread holding
// hazard pointers, the retired backlog stays below threshold + N*K no
// matter how long the churn runs (Definition 5.1).
func TestRobustnessBound(t *testing.T) {
	const threshold = 16
	a := smrtest.NewArena(2, 1<<14, mem.Reuse)
	s := hp.New(a, 2, threshold)

	anchor, err := smrtest.AllocShared(s, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	node, err := smrtest.AllocShared(s, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginOp(0)
	s.WritePtr(0, anchor, ds.WNext, node)
	if _, ok := s.ReadPtr(0, 0, anchor, ds.WNext); !ok {
		t.Fatal("protect failed")
	}
	// T0 now stalls holding its hazard pointer; it never calls EndOp.

	for _, churn := range []int{200, 800, 3200} {
		if err := smrtest.Churn(s, 1, churn); err != nil {
			t.Fatal(err)
		}
		bound := uint64(threshold + 2*hp.K + 2) // +2 for anchor/node retired later
		if got := a.Stats().Retired(); got > bound {
			t.Fatalf("churn %d: retired backlog %d exceeds HP bound %d", churn, got, bound)
		}
	}
}

// TestValidationRetries checks the protect-and-validate loop: a source
// word that changes between protection and validation is re-read, and the
// final returned target matches the final source contents.
func TestValidationRetries(t *testing.T) {
	a := smrtest.NewArena(2, 1<<10, mem.Reuse)
	s := hp.New(a, 2, 4)
	anchor, err := smrtest.AllocShared(s, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := smrtest.AllocShared(s, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginOp(0)
	s.WritePtr(0, anchor, ds.WNext, n1)
	got, ok := s.ReadPtr(0, 0, anchor, ds.WNext)
	if !ok || got != n1 {
		t.Fatalf("ReadPtr = %v, want %v", got, n1)
	}
	s.EndOp(0)
}

// TestProps pins HP's classification: robust, easy, restricted.
func TestProps(t *testing.T) {
	s := hp.New(smrtest.NewArena(1, 64, mem.Reuse), 1, 0)
	p := s.Props()
	if !p.EasyIntegration() {
		t.Error("HP must classify as easily integrated")
	}
	if p.Robustness != smr.Robust {
		t.Errorf("HP robustness = %v, want robust", p.Robustness)
	}
	if p.Applicability != smr.Restricted {
		t.Errorf("HP applicability = %v, want restricted", p.Applicability)
	}
}
