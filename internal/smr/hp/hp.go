// Package hp implements Michael's hazard pointers.
//
// HP is the paper's witness for "robust + easy integration": the number of
// unreclaimable retired nodes is bounded by the number of hazard slots
// (plus retire-list slack), and integration consists of replacing pointer
// reads with a protect-and-validate loop. What HP gives up is wide
// applicability: validation re-reads the *source* pointer, and a stable
// source does not imply the target is still protected when the data
// structure traverses logically deleted nodes. On Harris's linked-list
// this lets a thread dereference reclaimed memory (Figure 2 and Appendix E
// of the paper); the monitors observe it as StaleUses (or a segmentation
// fault in Unmap mode).
package hp

import (
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/smr"
)

type pad [56]byte

type hazard struct {
	ref atomic.Uint64
	_   pad
}

// K is the number of hazard slots per thread. Three suffice for the list
// structures (pred/curr/next); the skip list uses more.
const K = 8

// HP is the hazard-pointers scheme.
type HP struct {
	smr.Base
	hazards []hazard // N*K, row-major by thread
}

var _ smr.Scheme = (*HP)(nil)

// New builds an HP instance over arena a for n threads.
func New(a *mem.Arena, n, threshold int) *HP {
	return &HP{
		Base:    smr.NewBase(a, n, threshold),
		hazards: make([]hazard, n*K),
	}
}

// Name implements smr.Scheme.
func (h *HP) Name() string { return "hp" }

// Props implements smr.Scheme.
func (h *HP) Props() smr.Props {
	return smr.Props{
		SelfContained: true,
		MetaWordsUsed: 0,
		Robustness:    smr.Robust,
		Applicability: smr.Restricted,
	}
}

// BeginOp implements smr.Scheme; HP has no per-operation bracket work.
func (h *HP) BeginOp(tid int) {}

// EndOp clears the thread's hazard slots.
func (h *HP) EndOp(tid int) {
	for i := 0; i < K; i++ {
		h.hazards[tid*K+i].ref.Store(0)
	}
}

// Alloc implements smr.Scheme.
func (h *HP) Alloc(tid int) (mem.Ref, error) { return h.Arena.Alloc(tid) }

// Retire implements smr.Scheme.
func (h *HP) Retire(tid int, r mem.Ref) {
	if h.Arena.Retire(tid, r) != nil {
		return
	}
	if h.PushRetired(tid, r) {
		h.scan(tid)
	}
}

// scan reclaims every node in tid's retire list that no hazard slot
// protects. At most N*K nodes survive a scan, which is the robustness
// bound of the scheme.
func (h *HP) scan(tid int) {
	protected := make(map[mem.Ref]struct{}, len(h.hazards))
	for i := range h.hazards {
		if v := h.hazards[i].ref.Load(); v != 0 {
			protected[mem.Ref(v)] = struct{}{}
		}
	}
	l := &h.Lists[tid].Refs
	scanned := len(*l)
	kept := (*l)[:0]
	for _, r := range *l {
		if _, ok := protected[r.WithoutMark()]; ok {
			kept = append(kept, r)
		} else {
			_ = h.Arena.Reclaim(tid, r)
		}
	}
	*l = kept
	h.NoteScan(tid, scanned, scanned-len(kept))
}

// Flush implements smr.Scheme.
func (h *HP) Flush(tid int) { h.scan(tid) }

// Read implements smr.Scheme. Plain word reads are left untouched; the
// node is expected to be protected by an earlier ReadPtr.
func (h *HP) Read(tid int, r mem.Ref, w int) (uint64, bool) {
	return h.TransparentRead(tid, r, w)
}

// ReadPtr is HP's protect-and-validate loop: read the target, publish a
// hazard pointer to it in slot idx, and re-read the source word to confirm
// the target is still referenced (and therefore, under HP's integration
// assumptions, not yet retired). The loop retries internally until the
// source word is stable across the protection, so it never requests a
// data-structure rollback — this is what makes HP easily integrable.
func (h *HP) ReadPtr(tid, idx int, src mem.Ref, w int) (mem.Ref, bool) {
	slot := &h.hazards[tid*K+idx].ref
	v, err := h.Arena.Load(tid, src.WithoutMark(), w)
	if err != nil {
		// The source node itself was reclaimed under us: HP's protection
		// assumption already failed (this happens exactly on structures
		// HP is not applicable to). The stale value escapes.
		h.S.StaleUses.Add(1)
		slot.Store(uint64(mem.Ref(v).WithoutMark()))
		return mem.Ref(v), true
	}
	for {
		tgt := mem.Ref(v)
		slot.Store(uint64(tgt.WithoutMark()))
		v2, err2 := h.Arena.Load(tid, src.WithoutMark(), w)
		if err2 != nil {
			h.S.StaleUses.Add(1)
			return mem.Ref(v2), true
		}
		if v2 == v {
			return tgt, true
		}
		v = v2
	}
}

// Write implements smr.Scheme.
func (h *HP) Write(tid int, r mem.Ref, w int, v uint64) bool {
	return h.TransparentWrite(tid, r, w, v)
}

// CAS implements smr.Scheme.
func (h *HP) CAS(tid int, r mem.Ref, w int, old, new uint64) (bool, bool) {
	return h.TransparentCAS(tid, r, w, old, new)
}

// CASPtr implements smr.Scheme.
func (h *HP) CASPtr(tid int, r mem.Ref, w int, old, new mem.Ref) (bool, bool) {
	return h.TransparentCAS(tid, r, w, uint64(old), uint64(new))
}

// WritePtr implements smr.Scheme.
func (h *HP) WritePtr(tid int, r mem.Ref, w int, v mem.Ref) bool {
	return h.TransparentWrite(tid, r, w, uint64(v))
}

// Reserve implements smr.Scheme; HP's protection lives in ReadPtr.
func (h *HP) Reserve(tid int, refs ...mem.Ref) bool { return true }
