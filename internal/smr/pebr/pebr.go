// Package pebr implements a pointer/epoch hybrid in the spirit of Kang &
// Jung's PEBR (PLDI 2020), the paper's reference [27]: epoch-based
// reclamation made robust by *ejecting* stalled threads.
//
// Plain EBR lets one stalled thread pin the global epoch forever. Here the
// epoch advancer tracks how long each active thread has blocked
// advancement; past a threshold the thread is ejected — the epoch advances
// without it and its announcement no longer protects anything. An ejected
// thread discovers its ejection at its next guarded access and must roll
// the operation back to its entry point; every access additionally
// validates the reference (reads of since-reclaimed nodes restart rather
// than surface stale values).
//
// The ERA position this buys: robust (a stalled thread is ejected, so the
// backlog is bounded) and widely applicable (the rollback discipline is
// safe on Harris's list), but *not* easily integrated — ejection is a
// control-flow restart, exactly what Condition 4 of Definition 5.3
// forbids. The real scheme needs process-wide memory fences for its
// ejection handshake (the paper lists PEBR among the non-self-contained
// schemes); the simulation substitutes the arena's reference validation.
package pebr

import (
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/smr"
)

type pad [56]byte

type announcement struct {
	// word packs epoch<<1 | active.
	word atomic.Uint64
	_    pad
}

type ejectState struct {
	// flag is raised by the advancer, consumed by the owner.
	flag atomic.Bool
	// stuck counts consecutive advance attempts this thread blocked.
	stuck atomic.Uint64
	_     pad
}

// EjectAfter is the number of consecutive blocked advance attempts after
// which a thread is ejected.
const EjectAfter = 3

// PEBR is the ejection-based epoch scheme.
type PEBR struct {
	smr.Base
	epoch    atomic.Uint64
	announce []announcement
	eject    []ejectState
}

var _ smr.Scheme = (*PEBR)(nil)

// New builds a PEBR instance over arena a for n threads.
func New(a *mem.Arena, n, threshold int) *PEBR {
	return &PEBR{
		Base:     smr.NewBase(a, n, threshold),
		announce: make([]announcement, n),
		eject:    make([]ejectState, n),
	}
}

// Name implements smr.Scheme.
func (p *PEBR) Name() string { return "pebr" }

// Props implements smr.Scheme.
func (p *PEBR) Props() smr.Props {
	return smr.Props{
		RequiresRollback: true,  // ejection forces restarts
		SelfContained:    false, // real PEBR needs process-wide fences
		TypePreserving:   true,  // post-ejection stale reads are discarded
		MetaWordsUsed:    1,     // retire epoch
		Robustness:       smr.Robust,
		Applicability:    smr.WidelyApplicable,
	}
}

// BeginOp announces the current epoch and clears any stale ejection.
func (p *PEBR) BeginOp(tid int) {
	p.eject[tid].flag.Store(false)
	p.eject[tid].stuck.Store(0)
	p.announce[tid].word.Store(p.epoch.Load()<<1 | 1)
}

// EndOp announces quiescence.
func (p *PEBR) EndOp(tid int) {
	p.announce[tid].word.Store(p.epoch.Load() << 1)
}

// Rebracket renews the bracket inside a fused window: re-announce the
// current epoch and re-arm the ejection state, same effect as
// EndOp+BeginOp in two stores fewer. A thread ejected mid-window
// rejoins here, which is exactly the per-op behaviour.
func (p *PEBR) Rebracket(tid int) {
	p.eject[tid].flag.Store(false)
	p.eject[tid].stuck.Store(0)
	p.announce[tid].word.Store(p.epoch.Load()<<1 | 1)
}

// FusedWindowCap bounds the fused cadence: the ejection protocol reads
// a long-held active announcement as a stalled thread, so a fleet of
// wide fused windows keeps every thread's stuck counter past EjectAfter
// and the whole batch degenerates into rollback storms (observed as
// traversal-guard trips on the skip list). Re-announcing every few ops
// keeps announcements fresh enough that ejections stay what they are
// meant to be — a response to genuinely stalled threads.
func (p *PEBR) FusedWindowCap() int { return 2 * EjectAfter }

// tryAdvance advances the epoch if every active thread announced it,
// ejecting threads that have blocked advancement EjectAfter times in a
// row. Ejected threads stop counting as blockers.
func (p *PEBR) tryAdvance() {
	cur := p.epoch.Load()
	blocked := false
	for i := range p.announce {
		w := p.announce[i].word.Load()
		if w&1 == 1 && w>>1 != cur && !p.eject[i].flag.Load() {
			if p.eject[i].stuck.Add(1) >= EjectAfter {
				p.eject[i].flag.Store(true)
				continue
			}
			blocked = true
		}
	}
	if !blocked {
		p.epoch.CompareAndSwap(cur, cur+1)
	}
}

// ejected polls-and-consumes the thread's ejection flag, re-announcing at
// the current epoch so the thread rejoins the protocol as it rolls back.
func (p *PEBR) ejected(tid int) bool {
	if p.eject[tid].flag.Load() {
		p.eject[tid].flag.Store(false)
		p.eject[tid].stuck.Store(0)
		p.announce[tid].word.Store(p.epoch.Load()<<1 | 1)
		p.S.Restarts.Add(1)
		return true
	}
	return false
}

// Alloc implements smr.Scheme.
func (p *PEBR) Alloc(tid int) (mem.Ref, error) { return p.Arena.Alloc(tid) }

// Retire stamps the retire epoch; full lists advance and scan.
func (p *PEBR) Retire(tid int, r mem.Ref) {
	p.Arena.MetaStore(r.Slot(), smr.MetaRetire, p.epoch.Load())
	if p.Arena.Retire(tid, r) != nil {
		return
	}
	if p.PushRetired(tid, r) {
		p.tryAdvance()
		p.scan(tid)
	}
}

// scan reclaims nodes at least two epochs old (ejection guarantees the
// epoch keeps moving).
func (p *PEBR) scan(tid int) {
	cur := p.epoch.Load()
	l := &p.Lists[tid].Refs
	scanned := len(*l)
	kept := (*l)[:0]
	for _, r := range *l {
		if p.Arena.MetaLoad(r.Slot(), smr.MetaRetire)+2 <= cur {
			_ = p.Arena.Reclaim(tid, r)
		} else {
			kept = append(kept, r)
		}
	}
	*l = kept
	p.NoteScan(tid, scanned, scanned-len(kept))
}

// Flush implements smr.Scheme.
func (p *PEBR) Flush(tid int) {
	p.tryAdvance()
	p.scan(tid)
}

// Read validates both the ejection flag and the reference: either failure
// discards the value and rolls the operation back.
func (p *PEBR) Read(tid int, r mem.Ref, w int) (uint64, bool) {
	v, err := p.Arena.Load(tid, r.WithoutMark(), w)
	if p.ejected(tid) {
		return 0, false
	}
	if err != nil {
		// Only possible after an ejection whose flag a concurrent
		// advance re-raised; the value is discarded either way.
		p.S.Restarts.Add(1)
		return 0, false
	}
	return v, true
}

// ReadPtr implements smr.Scheme.
func (p *PEBR) ReadPtr(tid, idx int, src mem.Ref, w int) (mem.Ref, bool) {
	v, ok := p.Read(tid, src, w)
	return mem.Ref(v), ok
}

// Write implements smr.Scheme.
func (p *PEBR) Write(tid int, r mem.Ref, w int, v uint64) bool {
	if err := p.Arena.Store(tid, r.WithoutMark(), w, v); err != nil {
		p.S.Restarts.Add(1)
		return false
	}
	return true
}

// WritePtr implements smr.Scheme.
func (p *PEBR) WritePtr(tid int, r mem.Ref, w int, v mem.Ref) bool {
	return p.Write(tid, r, w, uint64(v))
}

// CAS implements smr.Scheme; updates through invalid references fail and
// roll back.
func (p *PEBR) CAS(tid int, r mem.Ref, w int, old, new uint64) (bool, bool) {
	swapped, err := p.Arena.CAS(tid, r.WithoutMark(), w, old, new)
	if err != nil {
		p.S.Restarts.Add(1)
		return false, false
	}
	return swapped, true
}

// CASPtr implements smr.Scheme. Like VBR, a post-ejection link must not
// publish a reference whose target was reclaimed between read and link
// (it would leave a permanently stale edge); validate after the swap and
// undo on failure.
func (p *PEBR) CASPtr(tid int, r mem.Ref, w int, old, new mem.Ref) (bool, bool) {
	swapped, ok := p.CAS(tid, r, w, uint64(old), uint64(new))
	if swapped && ok {
		if t := new.Bare(); !t.IsNil() && !p.Arena.Valid(t) {
			_, _ = p.Arena.CAS(tid, r.WithoutMark(), w, uint64(new), uint64(old))
			p.S.Restarts.Add(1)
			return false, false
		}
	}
	return swapped, ok
}

// Reserve implements smr.Scheme; PEBR has no reservations, but polls the
// ejection flag at the phase boundary.
func (p *PEBR) Reserve(tid int, refs ...mem.Ref) bool {
	return !p.ejected(tid)
}
