package pebr_test

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/smr"
	"repro/internal/smr/pebr"
	"repro/internal/smr/smrtest"
)

// TestReclaimsWhenQuiescent: plain EBR behaviour with no stalls.
func TestReclaimsWhenQuiescent(t *testing.T) {
	a := smrtest.NewArena(1, 1<<12, mem.Reuse)
	s := pebr.New(a, 1, 8)
	if err := smrtest.Churn(s, 0, 500); err != nil {
		t.Fatal(err)
	}
	smrtest.DrainAll(s, 1, 3)
	if got := a.Stats().Retired(); got != 0 {
		t.Fatalf("retired backlog after drain = %d, want 0", got)
	}
}

// TestEjectionUnblocksReclamation is the scheme's reason to exist: a
// stalled thread is ejected after EjectAfter blocked advances and the
// backlog stays bounded where EBR's would grow without bound.
func TestEjectionUnblocksReclamation(t *testing.T) {
	const threshold = 16
	a := smrtest.NewArena(2, 1<<14, mem.Reuse)
	s := pebr.New(a, 2, threshold)

	s.BeginOp(1) // T1 stalls inside an operation

	for _, churn := range []int{200, 800, 3200} {
		if err := smrtest.Churn(s, 0, churn); err != nil {
			t.Fatal(err)
		}
		// Ejection keeps the epoch moving: the backlog is bounded by the
		// retire threshold plus the two-epoch reclamation lag.
		bound := uint64(threshold * (pebr.EjectAfter + 3))
		if got := a.Stats().Retired(); got > bound {
			t.Fatalf("churn %d: retired backlog %d exceeds PEBR bound %d", churn, got, bound)
		}
	}

	// The stalled thread's next access observes the ejection and rolls
	// back instead of touching possibly reclaimed memory.
	anchor, err := smrtest.AllocShared(s, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Read(1, anchor, 0); ok {
		t.Fatal("ejected thread's read must roll back")
	}
	if s.Stats().Snapshot().Restarts == 0 {
		t.Fatal("no restart recorded for the ejection")
	}
	// After the rollback the thread has rejoined the protocol.
	if _, ok := s.Read(1, anchor, 0); !ok {
		t.Fatal("read after rejoining must succeed")
	}
	s.EndOp(1)
}

// TestStaleReadRollsBack: post-ejection reads of reclaimed nodes restart
// and never surface stale values.
func TestStaleReadRollsBack(t *testing.T) {
	a := smrtest.NewArena(1, 1<<10, mem.Reuse)
	s := pebr.New(a, 1, 4)
	r, err := smrtest.AllocShared(s, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginOp(0)
	s.Retire(0, r)
	s.EndOp(0)
	smrtest.DrainAll(s, 1, 4)
	if a.Valid(r) {
		t.Fatal("node should be reclaimed after drains")
	}
	if _, ok := s.Read(0, r, 0); ok {
		t.Fatal("stale read returned ok=true")
	}
	if s.Stats().Snapshot().StaleUses != 0 {
		t.Fatal("stale value escaped")
	}
}

// TestProps pins the classification: robust + wide, not easy.
func TestProps(t *testing.T) {
	s := pebr.New(smrtest.NewArena(1, 64, mem.Reuse), 1, 0)
	p := s.Props()
	if p.EasyIntegration() {
		t.Error("PEBR must not classify as easily integrated (ejection restarts)")
	}
	if p.Robustness != smr.Robust {
		t.Errorf("PEBR robustness = %v, want robust", p.Robustness)
	}
	if p.Applicability != smr.WidelyApplicable {
		t.Errorf("PEBR applicability = %v, want wide", p.Applicability)
	}
	if p.SelfContained {
		t.Error("PEBR must report SelfContained=false (needs process-wide fences)")
	}
}
