package michael_test

import (
	"sort"
	"testing"

	"repro/internal/ds"
	"repro/internal/ds/dstest"
	"repro/internal/ds/michael"
	"repro/internal/mem"
)

func TestSuite(t *testing.T) { dstest.RunSetSuite(t, "michael") }

// TestSortedInvariant checks ordering after heavy churn.
func TestSortedInvariant(t *testing.T) {
	env := dstest.NewEnv(t, "hp", 4, 1<<16, 2, mem.Reuse)
	l, err := michael.New(env.S, ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dstest.DisjointChurnSet(t, env, l, 2000, 64)
	keys := l.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("keys not sorted: %v", keys)
	}
	env.AssertSafe(t)
}

// TestRestartStorm is the regression test for ROADMAP item 5: long-chain
// churn under EBR. With head-restart finds a single operation could spin
// through millions of steps inside one epoch-pinning bracket, ballooning
// the retired backlog with no fault injected. Bounded restarts must keep
// the worst op within a small multiple of the chain length and the
// backlog near the scan threshold.
func TestRestartStorm(t *testing.T) {
	env := dstest.NewEnv(t, "ebr", 4, 1<<16, 2, mem.Reuse)
	l, err := michael.New(env.S, ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ops := 6000
	if testing.Short() {
		ops = 2000
	}
	dstest.RestartStormSet(t, env, l, 256, ops, 8192)
	env.AssertSafe(t)
}

// TestHPCompatibility pins the contrast with Harris's list (Section 6
// Discussion): Michael's list never traverses a retired node, so hazard
// pointers stay safe even in Unmap mode, where any access to reclaimed
// memory would be a simulated segfault.
func TestHPCompatibility(t *testing.T) {
	env := dstest.NewEnv(t, "hp", 4, 1<<16, 2, mem.Unmap)
	l, err := michael.New(env.S, ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dstest.DisjointChurnSet(t, env, l, 1500, 32)
	if f := env.A.Stats().Faults(); f != 0 {
		t.Fatalf("HP on Michael's list took %d segfaults", f)
	}
	env.AssertSafe(t)
}
