// Package michael implements Michael's lock-free linked-list set (Michael,
// SPAA 2002) — the hazard-pointer-compatible modification of Harris's list
// that the paper's Section 6 discussion refers to.
//
// The difference from Harris's list is exactly the one the ERA theorem
// turns on: a traversal never walks through a marked node. On meeting one
// it immediately unlinks that single node (restarting on contention), so
// at every step the traversal only holds references to nodes that a
// protect-and-validate read could certify as un-retired. This makes the
// list applicable to HP/HE/IBR — and slower under deletion-heavy loads,
// because every traversal does the deleters' unlinking work one CAS at a
// time (the effect EXP-MICHAEL measures).
package michael

import (
	"repro/internal/ds"
	"repro/internal/mem"
	"repro/internal/smr"
)

// List is Michael's lock-free linked-list set.
type List struct {
	ds.Instr
	s          smr.Scheme
	head, tail mem.Ref
}

var _ ds.Set = (*List)(nil)

// New builds an empty list over scheme s.
func New(s smr.Scheme, opt ds.Options) (*List, error) {
	l := &List{Instr: ds.Instr{Opt: opt, A: s.Heap()}, s: s}
	ds.RegisterLinks(s, []int{ds.WNext})
	var err error
	if l.tail, err = ds.NewSentinel(s, 0, ds.KeyMax); err != nil {
		return nil, err
	}
	if l.head, err = ds.NewSentinel(s, 0, ds.KeyMin); err != nil {
		return nil, err
	}
	if !s.WritePtr(0, l.head, ds.WNext, l.tail) {
		return nil, ds.ErrCorrupted
	}
	return l, nil
}

// Name implements ds.Set.
func (l *List) Name() string { return "michael" }

// Head returns the head sentinel (used by verifiers and adversaries).
func (l *List) Head() mem.Ref { return l.head }

// Tail returns the tail sentinel.
func (l *List) Tail() mem.Ref { return l.tail }

const maxSteps = 1 << 22

// iterBatch bounds how many keys one Iterate operation bracket emits, so
// a full scan re-brackets periodically instead of pinning one reclamation
// epoch for the whole structure.
const iterBatch = 512

// cursor caches the last validated predecessor across the ops of a
// fused batch (ds.BatchSet). Within one smr bracket window the cached
// pred stays protected — no EndOp ran since it was read — so the next
// op of a key-sorted batch resumes its traversal from it instead of
// from the head, turning k ops into one amortized sweep. The cache is
// only consulted when cu.key < key (pred strictly precedes the new
// target) and is invalidated at every bracket renewal, where hazard
// slots may be cleared and the pinned epoch released.
type cursor struct {
	pred mem.Ref
	key  int64 // pred's key, for the cu.key < key resume check
	slot int   // scheme slot still protecting pred
	ok   bool
}

// find locates the window (pred, curr) for key: curr is the first unmarked
// node with key >= key and pred directly precedes it. Marked nodes are
// unlinked one at a time as they are met — never traversed through (the
// Michael discipline).
//
// Restart policy (the bounded-restart overhaul, ROADMAP item 5): losing
// the unlink CAS to a concurrent writer resumes the traversal from the
// validated cached pred instead of rewinding to the head, so contention
// anywhere on a long chain costs O(1) re-reads rather than O(chain)
// re-walks inside one epoch-pinning operation bracket. The resume is only
// legal because pred is revalidated on re-entry: its next pointer is
// re-read through the barrier and must be unmarked — an unmarked Michael
// node is still linked (marking strictly precedes unlinking), so a
// protect-and-validate scheme can certify everything reached from it. A
// marked pred may already be detached and falls back to the head. Scheme
// rollbacks (ok == false) always rewind to the head: per the smr contract
// the operation must drop every reference it obtained and restart from
// its entry point.
// A non-nil cu resumes from the batch cursor when valid and records the
// final validated pred back into it on success.
func (l *List) find(tid int, key int64, cu *cursor) (pred, curr mem.Ref, err error) {
	var steps, restarts, headRestarts uint64
	defer func() { l.Trav.Record(steps, restarts, headRestarts) }()
	sp, sc := 0, 1
	pred = l.head
	predKey := int64(ds.KeyMin)
	if cu != nil {
		if cu.ok && cu.key < key {
			pred, predKey, sp = cu.pred, cu.key, cu.slot
			sc = (sp + 1) % 3
		}
		cu.ok = false
	}
	rewind := func() {
		pred, predKey, sp, sc = l.head, int64(ds.KeyMin), 0, 1
		restarts++
		headRestarts++
	}
retry:
	for {
		if steps++; steps > maxSteps {
			return mem.NilRef, mem.NilRef, l.GuardTrip("michael", "find", steps, restarts)
		}
		l.Phase(tid, ds.PhaseRead)
		pn, ok := l.s.ReadPtr(tid, sc, pred, ds.WNext)
		if !ok {
			rewind()
			continue
		}
		if pred == l.head {
			l.Hit(tid, ds.PointSearchHead, uint64(key))
		} else if pn.Marked() {
			// The cached pred was deleted behind our back; resuming from
			// it would traverse a possibly-detached node. Fall back.
			rewind()
			continue
		}
		curr = pn.WithoutMark()
		for {
			if steps++; steps > maxSteps {
				return mem.NilRef, mem.NilRef, l.GuardTrip("michael", "find", steps, restarts)
			}
			if curr.IsNil() {
				return mem.NilRef, mem.NilRef, ds.ErrCorrupted
			}
			sn := 3 - sp - sc
			cn, ok := l.s.ReadPtr(tid, sn, curr, ds.WNext)
			if !ok {
				rewind()
				continue retry
			}
			if cn.Marked() {
				// Unlink this single marked node before proceeding.
				if !l.s.Reserve(tid, pred, curr) {
					rewind()
					continue retry
				}
				l.Phase(tid, ds.PhaseWrite)
				swapped, ok := l.s.CASPtr(tid, pred, ds.WNext, curr, cn.WithoutMark())
				if !ok {
					rewind()
					continue retry
				}
				if !swapped {
					// Contention, not a rollback: pred is still protected
					// in slot sp. Resume from it (re-validating at the
					// top) instead of rewinding the whole chain.
					restarts++
					if l.Opt.HeadRestart {
						pred, predKey, sp, sc = l.head, int64(ds.KeyMin), 0, 1
						headRestarts++
					}
					continue retry
				}
				l.Phase(tid, ds.PhaseRead)
				curr = cn.WithoutMark()
				sc = sn
				continue
			}
			ckey, ok := l.s.Read(tid, curr, ds.WKey)
			if !ok {
				rewind()
				continue retry
			}
			l.Hit(tid, ds.PointSearchVisit, ckey)
			if int64(ckey) >= key {
				if cu != nil {
					cu.pred, cu.key, cu.slot, cu.ok = pred, predKey, sp, true
				}
				return pred, curr, nil
			}
			pred = curr
			predKey = int64(ckey)
			sp, sc = sc, sn
			curr = cn.WithoutMark()
		}
	}
}

// Contains implements ds.Set.
func (l *List) Contains(tid int, key int64) (bool, error) {
	l.s.BeginOp(tid)
	defer l.s.EndOp(tid)
	return l.containsAt(tid, key, nil)
}

// containsAt is Contains without the bracket: the caller holds an open
// operation bracket for tid (per-op or a fused window).
func (l *List) containsAt(tid int, key int64, cu *cursor) (bool, error) {
	for {
		_, curr, err := l.find(tid, key, cu)
		if err != nil {
			return false, err
		}
		cn, ok := l.s.Read(tid, curr, ds.WNext)
		if !ok {
			continue
		}
		ckey, ok := l.s.Read(tid, curr, ds.WKey)
		if !ok {
			continue
		}
		return !mem.Ref(cn).Marked() && int64(ckey) == key, nil
	}
}

// Insert implements ds.Set.
func (l *List) Insert(tid int, key int64) (bool, error) {
	l.s.BeginOp(tid)
	defer l.s.EndOp(tid)
	return l.insertAt(tid, key, nil)
}

// insertAt is Insert without the bracket.
func (l *List) insertAt(tid int, key int64, cu *cursor) (bool, error) {
	n, err := l.s.Alloc(tid)
	if err != nil {
		return false, err
	}
	l.s.Write(tid, n, ds.WKey, uint64(key))
	for {
		pred, curr, err := l.find(tid, key, cu)
		if err != nil {
			return false, err
		}
		ckey, ok := l.s.Read(tid, curr, ds.WKey)
		if !ok {
			continue
		}
		if int64(ckey) == key {
			l.s.Retire(tid, n)
			return false, nil
		}
		if !l.s.WritePtr(tid, n, ds.WNext, curr) {
			continue
		}
		if !l.s.Reserve(tid, pred, curr) {
			continue
		}
		l.Phase(tid, ds.PhaseWrite)
		if err := l.A.MarkShared(n); err != nil {
			return false, err
		}
		swapped, ok := l.s.CASPtr(tid, pred, ds.WNext, curr, n)
		if !ok {
			continue
		}
		if swapped {
			return true, nil
		}
	}
}

// Delete implements ds.Set.
func (l *List) Delete(tid int, key int64) (bool, error) {
	l.s.BeginOp(tid)
	defer l.s.EndOp(tid)
	return l.deleteAt(tid, key, nil)
}

// deleteAt is Delete without the bracket.
func (l *List) deleteAt(tid int, key int64, cu *cursor) (bool, error) {
	for {
		pred, curr, err := l.find(tid, key, cu)
		if err != nil {
			return false, err
		}
		ckey, ok := l.s.Read(tid, curr, ds.WKey)
		if !ok {
			continue
		}
		if int64(ckey) != key {
			return false, nil
		}
		cn, ok := l.s.ReadPtr(tid, 3, curr, ds.WNext)
		if !ok {
			continue
		}
		if cn.Marked() {
			continue
		}
		succ := cn
		if !l.s.Reserve(tid, pred, curr, succ.WithoutMark()) {
			continue
		}
		l.Phase(tid, ds.PhaseWrite)
		swapped, ok := l.s.CASPtr(tid, curr, ds.WNext, succ, succ.WithMark())
		if !ok || !swapped {
			continue
		}
		// Linearized. Unlink (or let a traversal do it), then retire.
		if swapped, _ := l.s.CASPtr(tid, pred, ds.WNext, curr, succ); !swapped {
			if _, _, err := l.find(tid, key, cu); err != nil {
				return false, err
			}
		}
		l.s.Retire(tid, curr)
		return true, nil
	}
}

var (
	_ ds.Iterator = (*List)(nil)
	_ ds.BatchSet = (*List)(nil)
	_ ds.StepSet  = (*List)(nil)
)

// StepOp implements ds.StepSet: one unbracketed op under a
// caller-held bracket, without the cross-op predecessor cache.
func (l *List) StepOp(tid int, kind ds.BatchKind, key int64) (bool, error) {
	switch kind {
	case ds.BatchContains:
		return l.containsAt(tid, key, nil)
	case ds.BatchInsert:
		return l.insertAt(tid, key, nil)
	case ds.BatchDelete:
		return l.deleteAt(tid, key, nil)
	}
	return false, ds.ErrBadBatchOp
}

// ApplyBatch implements ds.BatchSet: one fused bracket window over the
// whole batch, with the validated-predecessor cursor carried across
// consecutive ops so a key-sorted batch walks the chain once. The
// cursor drops at every bracket renewal (Step returning true): the
// renewal may clear hazard slots or release the pinned epoch, so the
// cached pred is no longer certifiably protected.
func (l *List) ApplyBatch(tid int, ops []ds.BatchOp, res []ds.BatchResult) uint64 {
	w := smr.BeginOps(l.s, tid, 0)
	var cu cursor
	for i := range ops {
		if i > 0 && w.Step() {
			cu.ok = false
		}
		var ok bool
		var err error
		switch ops[i].Kind {
		case ds.BatchContains:
			ok, err = l.containsAt(tid, ops[i].Key, &cu)
		case ds.BatchInsert:
			ok, err = l.insertAt(tid, ops[i].Key, &cu)
		case ds.BatchDelete:
			ok, err = l.deleteAt(tid, ops[i].Key, &cu)
		default:
			err = ds.ErrBadBatchOp
		}
		res[i] = ds.BatchResult{OK: ok, Err: err}
	}
	w.EndOps()
	return w.Rebrackets()
}

// Iterate implements ds.Iterator: an ascending barrier-based scan.
// Emission is monotonic — each chunk only reports keys greater than the
// last emitted one — so interference degrades into a validated resume
// (rewind the walk, not the emission cursor) and a key can never be
// reported twice. A quiescent list is swept in one ascending pass.
func (l *List) Iterate(tid int, fn func(key int64) bool) error {
	after := int64(ds.KeyMin)
	for {
		l.s.BeginOp(tid)
		done, err := l.iterChunk(tid, &after, fn)
		l.s.EndOp(tid)
		if done || err != nil {
			return err
		}
	}
}

// iterChunk emits up to iterBatch unmarked keys greater than *after inside
// one operation bracket. It follows the same traversal discipline as find
// (unlink marked nodes, never walk through them); any contention or
// rollback rewinds the walk to the head, which is harmless for emission
// because *after only moves forward.
func (l *List) iterChunk(tid int, after *int64, fn func(key int64) bool) (done bool, err error) {
	var steps, restarts uint64
	defer func() { l.Trav.Record(steps, restarts, restarts) }()
	emitted := 0
	for {
		if steps++; steps > maxSteps {
			return false, l.GuardTrip("michael", "iterate", steps, restarts)
		}
		l.Phase(tid, ds.PhaseRead)
		sp, sc := 0, 1
		pred := l.head
		pn, ok := l.s.ReadPtr(tid, sc, pred, ds.WNext)
		if !ok {
			restarts++
			continue
		}
		curr := pn.WithoutMark()
	walk:
		for {
			if steps++; steps > maxSteps {
				return false, l.GuardTrip("michael", "iterate", steps, restarts)
			}
			if curr.IsNil() {
				return false, ds.ErrCorrupted
			}
			sn := 3 - sp - sc
			cn, ok := l.s.ReadPtr(tid, sn, curr, ds.WNext)
			if !ok {
				restarts++
				break walk
			}
			if cn.Marked() {
				if !l.s.Reserve(tid, pred, curr) {
					restarts++
					break walk
				}
				l.Phase(tid, ds.PhaseWrite)
				swapped, ok := l.s.CASPtr(tid, pred, ds.WNext, curr, cn.WithoutMark())
				if !ok || !swapped {
					restarts++
					break walk
				}
				l.Phase(tid, ds.PhaseRead)
				curr = cn.WithoutMark()
				sc = sn
				continue
			}
			ckey, ok := l.s.Read(tid, curr, ds.WKey)
			if !ok {
				restarts++
				break walk
			}
			k := int64(ckey)
			if k == ds.KeyMax {
				return true, nil // tail sentinel: sweep complete
			}
			if k > *after {
				*after = k
				if !fn(k) {
					return true, nil
				}
				if emitted++; emitted >= iterBatch {
					return false, nil // re-bracket before continuing
				}
			}
			pred = curr
			sp, sc = sc, sn
			curr = cn.WithoutMark()
		}
	}
}

// Keys walks the list without barriers; quiescent use only.
func (l *List) Keys() []int64 {
	var keys []int64
	a := l.A
	cur, _ := a.Load(0, l.head, ds.WNext)
	for {
		r := mem.Ref(cur).WithoutMark()
		if r.IsNil() || r == l.tail {
			return keys
		}
		k, err := a.Load(0, r, ds.WKey)
		if err != nil {
			return keys
		}
		next, err := a.Load(0, r, ds.WNext)
		if err != nil {
			return keys
		}
		if !mem.Ref(next).Marked() {
			keys = append(keys, int64(k))
		}
		cur = next
	}
}
