package harris_test

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ds"
	"repro/internal/ds/dstest"
	"repro/internal/ds/harris"
	"repro/internal/mem"
)

func TestSuite(t *testing.T) { dstest.RunSetSuite(t, "harris") }

// TestSortedInvariant checks the core list invariant after heavy churn:
// unmarked keys appear in strictly increasing order.
func TestSortedInvariant(t *testing.T) {
	env := dstest.NewEnv(t, "ebr", 4, 1<<16, 2, mem.Reuse)
	l, err := harris.New(env.S, ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dstest.DisjointChurnSet(t, env, l, 2000, 64)
	keys := l.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("keys not sorted: %v", keys)
	}
	env.AssertSafe(t)
}

// TestInsertDeleteIdempotence property-checks double-insert / double-delete
// semantics against a fresh list for arbitrary key sequences.
func TestInsertDeleteIdempotence(t *testing.T) {
	check := func(keys []uint8) bool {
		env := dstest.NewEnv(t, "ebr", 1, 1<<12, 2, mem.Reuse)
		l, err := harris.New(env.S, ds.Options{})
		if err != nil {
			return false
		}
		for _, k := range keys {
			key := int64(k)
			first, err := l.Insert(0, key)
			if err != nil {
				return false
			}
			second, err := l.Insert(0, key)
			if err != nil || second {
				return false // second insert of the same key must fail
			}
			if !first {
				// Key was already present; delete once and retry.
				if ok, err := l.Delete(0, key); err != nil || !ok {
					return false
				}
				continue
			}
			del1, err := l.Delete(0, key)
			if err != nil || !del1 {
				return false
			}
			del2, err := l.Delete(0, key)
			if err != nil || del2 {
				return false // second delete must fail
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMarkedTraversal pins the property that distinguishes Harris from
// Michael: after marking a run of nodes without unlinking them, a search
// still completes and subsequent operations observe a consistent set.
func TestMarkedTraversal(t *testing.T) {
	env := dstest.NewEnv(t, "none", 1, 1<<12, 2, mem.Reuse)
	l, err := harris.New(env.S, ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k <= 10; k++ {
		if ok, err := l.Insert(0, k); err != nil || !ok {
			t.Fatalf("insert(%d) = %v, %v", k, ok, err)
		}
	}
	// Delete 2..9: the deleter marks and (usually) unlinks. To force a
	// marked run we delete middle keys; Harris may unlink each, so assert
	// only the abstract state here — the deterministic marked-run
	// scenarios live in the adversary package, which controls unlinking.
	for k := int64(2); k <= 9; k++ {
		if ok, err := l.Delete(0, k); err != nil || !ok {
			t.Fatalf("delete(%d) = %v, %v", k, ok, err)
		}
	}
	want := []int64{1, 10}
	got := l.Keys()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("keys = %v, want %v", got, want)
	}
	for k := int64(2); k <= 9; k++ {
		if ok, _ := l.Contains(0, k); ok {
			t.Fatalf("contains(%d) true after delete", k)
		}
	}
}

// TestHeapExhaustion checks that a full heap surfaces as mem.ErrOOM rather
// than corruption, and that reclamation recovers the heap.
func TestHeapExhaustion(t *testing.T) {
	env := dstest.NewEnv(t, "vbr", 1, 70, 2, mem.Reuse)
	l, err := harris.New(env.S, ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var inserted []int64
	var oom bool
	for k := int64(0); k < 200; k++ {
		ok, err := l.Insert(0, k)
		if err != nil {
			oom = true
			break
		}
		if ok {
			inserted = append(inserted, k)
		}
	}
	if !oom {
		t.Fatal("expected OOM on a 70-slot heap after 200 inserts")
	}
	// Delete everything; VBR reclaims aggressively, freeing the heap.
	for _, k := range inserted {
		if ok, err := l.Delete(0, k); err != nil || !ok {
			t.Fatalf("delete(%d) = %v, %v", k, ok, err)
		}
	}
	env.S.Flush(0)
	if ok, err := l.Insert(0, 999); err != nil || !ok {
		t.Fatalf("insert after reclamation = %v, %v", ok, err)
	}
}
